// Unit tests for lingxi_logstore: record framing (in-memory and streaming),
// primitive codecs, session-log error paths and the durable per-user state
// store.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "logstore/record.h"
#include "logstore/session_log.h"
#include "logstore/state_store.h"

namespace lingxi::logstore {
namespace {

TEST(Record, RoundTrip) {
  std::vector<unsigned char> payload{1, 2, 3, 4, 5};
  std::vector<unsigned char> bytes;
  write_record(bytes, payload);
  std::size_t pos = 0;
  const auto r = read_record(bytes, pos);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, payload);
  EXPECT_EQ(pos, bytes.size());
}

TEST(Record, MultipleRecordsSequential) {
  std::vector<unsigned char> bytes;
  write_record(bytes, {10});
  write_record(bytes, {20, 21});
  std::size_t pos = 0;
  const auto a = read_record(bytes, pos);
  const auto b = read_record(bytes, pos);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(b->size(), 2u);
  EXPECT_EQ(pos, bytes.size());
}

TEST(Record, EmptyPayloadAllowed) {
  std::vector<unsigned char> bytes;
  write_record(bytes, {});
  std::size_t pos = 0;
  const auto r = read_record(bytes, pos);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->empty());
}

TEST(Record, DetectsBitFlipInPayload) {
  std::vector<unsigned char> bytes;
  write_record(bytes, {1, 2, 3, 4});
  bytes[13] ^= 0x01;  // somewhere inside the payload
  std::size_t pos = 0;
  const auto r = read_record(bytes, pos);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, Error::Code::kCorrupt);
}

TEST(Record, DetectsTruncation) {
  std::vector<unsigned char> bytes;
  write_record(bytes, {1, 2, 3, 4});
  bytes.resize(bytes.size() - 2);
  std::size_t pos = 0;
  EXPECT_FALSE(read_record(bytes, pos).has_value());
}

TEST(Record, DetectsBadMagic) {
  std::vector<unsigned char> bytes;
  write_record(bytes, {1});
  bytes[0] = 'Z';
  std::size_t pos = 0;
  EXPECT_FALSE(read_record(bytes, pos).has_value());
}

TEST(Record, DetectsBadVersion) {
  std::vector<unsigned char> bytes;
  write_record(bytes, {1, 2, 3});
  bytes[4] = 0x63;  // version is the little-endian u32 right after the magic
  std::size_t pos = 0;
  const auto r = read_record(bytes, pos);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, Error::Code::kCorrupt);
}

TEST(Record, StreamingRoundTrip) {
  std::vector<unsigned char> bytes;
  write_record(bytes, {10});
  write_record(bytes, {20, 21});
  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  const auto a = read_record(in);
  const auto b = read_record(in);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(b->size(), 2u);
  EXPECT_EQ(in.peek(), std::char_traits<char>::eof());
}

TEST(Record, StreamingDetectsTruncationAndBitFlip) {
  std::vector<unsigned char> bytes;
  write_record(bytes, {1, 2, 3, 4});
  {
    std::istringstream in(std::string(bytes.begin(), bytes.end() - 2));
    const auto r = read_record(in);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, Error::Code::kCorrupt);
  }
  {
    auto flipped = bytes;
    flipped[13] ^= 0x01;
    std::istringstream in(std::string(flipped.begin(), flipped.end()));
    const auto r = read_record(in);
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, Error::Code::kCorrupt);
  }
}

TEST(Primitives, RoundTripAllTypes) {
  std::vector<unsigned char> buf;
  put_u32(buf, 0xdeadbeefu);
  put_u64(buf, 0x0123456789abcdefULL);
  put_f64(buf, -3.14159);
  std::size_t pos = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  double c = 0.0;
  ASSERT_TRUE(get_u32(buf, pos, a));
  ASSERT_TRUE(get_u64(buf, pos, b));
  ASSERT_TRUE(get_f64(buf, pos, c));
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(c, -3.14159);
  EXPECT_EQ(pos, buf.size());
}

TEST(Primitives, ReadPastEndFails) {
  std::vector<unsigned char> buf{1, 2};
  std::size_t pos = 0;
  std::uint32_t v = 0;
  EXPECT_FALSE(get_u32(buf, pos, v));
}

SessionLogEntry sample_entry() {
  SessionLogEntry e;
  e.user_id = 9;
  e.timestamp = 86401;
  e.video_duration = 30.0;
  e.session.exited = true;
  e.session.watch_time = 12.5;
  e.session.startup_delay = 0.8;
  e.session.total_stall = 2.25;
  e.session.stall_events = 3;
  e.session.quality_switches = 4;
  e.session.mean_bitrate = 1850.0;
  sim::SegmentRecord seg;
  seg.level = 2;
  seg.bitrate = 1850.0;
  seg.stall_time = 1.5;
  seg.buffer_after = 3.0;
  e.session.segments = {seg};
  return e;
}

TEST(SessionLog, CodecPreservesSessionAggregates) {
  const SessionLogEntry e = sample_entry();
  const auto decoded = decode_session(encode_session(e));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, e);
  EXPECT_EQ(decoded->session.stall_events, 3u);
  EXPECT_EQ(decoded->session.quality_switches, 4u);
  EXPECT_DOUBLE_EQ(decoded->session.mean_bitrate, 1850.0);
}

TEST(SessionLog, LoadRejectsTruncatedFile) {
  SessionLogWriter writer;
  writer.append(sample_entry());
  const std::string path = ::testing::TempDir() + "/lingxi_session_trunc.bin";
  ASSERT_TRUE(writer.save(path).ok());
  auto bytes = read_file(path);
  ASSERT_TRUE(bytes.has_value());
  bytes->resize(bytes->size() - 5);
  ASSERT_TRUE(write_file(path, *bytes).ok());
  const auto loaded = SessionLogReader::load(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kCorrupt);
}

TEST(SessionLog, LoadRejectsFlippedCrcByte) {
  SessionLogWriter writer;
  writer.append(sample_entry());
  const std::string path = ::testing::TempDir() + "/lingxi_session_crc.bin";
  ASSERT_TRUE(writer.save(path).ok());
  auto bytes = read_file(path);
  ASSERT_TRUE(bytes.has_value());
  bytes->back() ^= 0xff;  // last byte of the trailing CRC
  ASSERT_TRUE(write_file(path, *bytes).ok());
  const auto loaded = SessionLogReader::load(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kCorrupt);
}

TEST(SessionLog, LoadRejectsBadRecordVersion) {
  SessionLogWriter writer;
  writer.append(sample_entry());
  const std::string path = ::testing::TempDir() + "/lingxi_session_version.bin";
  ASSERT_TRUE(writer.save(path).ok());
  auto bytes = read_file(path);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[4] = 0x63;  // record version field
  ASSERT_TRUE(write_file(path, *bytes).ok());
  const auto loaded = SessionLogReader::load(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kCorrupt);
}

UserState sample_state() {
  UserState s;
  s.engagement.stall_durations = {1.5, 3.25};
  s.engagement.stall_intervals = {42.0};
  s.engagement.stall_exit_intervals = {100.0, 250.0, 400.0};
  s.engagement.total_watch_time = 1234.5;
  s.engagement.total_stall_events = 17;
  s.engagement.total_stall_exits = 3;
  s.best_params.stall_penalty = 9.5;
  s.best_params.switch_penalty = 1.25;
  s.best_params.hyb_beta = 0.65;
  s.has_params = true;
  return s;
}

TEST(StateStore, EncodeDecodeRoundTrip) {
  const UserState s = sample_state();
  const auto payload = StateStore::encode(77, s);
  const auto decoded = StateStore::decode(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, 77u);
  EXPECT_EQ(decoded->second, s);
}

TEST(StateStore, DecodeRejectsTruncatedPayload) {
  auto payload = StateStore::encode(1, sample_state());
  payload.resize(payload.size() - 3);
  EXPECT_FALSE(StateStore::decode(payload).has_value());
}

TEST(StateStore, DecodeRejectsTrailingGarbage) {
  auto payload = StateStore::encode(1, sample_state());
  payload.push_back(0xab);
  EXPECT_FALSE(StateStore::decode(payload).has_value());
}

TEST(StateStore, PutGetContains) {
  StateStore store;
  EXPECT_FALSE(store.contains(5));
  store.put(5, sample_state());
  EXPECT_TRUE(store.contains(5));
  const auto got = store.get(5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, sample_state());
  EXPECT_FALSE(store.get(6).has_value());
}

TEST(StateStore, OverwriteReplaces) {
  StateStore store;
  store.put(1, sample_state());
  UserState other = sample_state();
  other.best_params.hyb_beta = 0.4;
  store.put(1, other);
  EXPECT_DOUBLE_EQ(store.get(1)->best_params.hyb_beta, 0.4);
  EXPECT_EQ(store.size(), 1u);
}

TEST(StateStore, SaveLoadRoundTrip) {
  StateStore store;
  store.put(1, sample_state());
  UserState s2 = sample_state();
  s2.has_params = false;
  s2.engagement.total_stall_events = 99;
  store.put(2, s2);

  const std::string path = ::testing::TempDir() + "/lingxi_state_store.bin";
  ASSERT_TRUE(store.save(path).ok());

  StateStore loaded;
  ASSERT_TRUE(loaded.load(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(*loaded.get(1), sample_state());
  EXPECT_EQ(*loaded.get(2), s2);
}

TEST(StateStore, LoadMissingFileIsIoError) {
  StateStore store;
  const auto status = store.load("/nonexistent/state.bin");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kIo);
}

TEST(StateStore, LoadCorruptFileFailsAndPreservesNothingPartial) {
  StateStore store;
  store.put(1, sample_state());
  const std::string path = ::testing::TempDir() + "/lingxi_state_corrupt.bin";
  ASSERT_TRUE(store.save(path).ok());

  // Flip a byte in the middle of the file.
  auto bytes = read_file(path);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] ^= 0xff;
  ASSERT_TRUE(write_file(path, *bytes).ok());

  StateStore loaded;
  EXPECT_FALSE(loaded.load(path).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

// ---------------------------------------------------------------------------
// write_file atomicity (temp + fsync + checked close + rename).
// ---------------------------------------------------------------------------

TEST(WriteFile, CommitsAtomicallyAndCleansUpTemp) {
  const std::string path = ::testing::TempDir() + "/lingxi_write_file_atomic.bin";
  std::filesystem::remove(path);
  const std::vector<unsigned char> bytes = {1, 2, 3, 4, 5};
  ASSERT_TRUE(write_file(path, bytes).ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
  // The commit renames the temp file over the target; success must not leave
  // the staging name behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Rewriting replaces the previous content through the same protocol.
  const std::vector<unsigned char> next = {9, 8, 7};
  ASSERT_TRUE(write_file(path, next).ok());
  back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, next);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(WriteFile, OpenFailureIsIoErrorNamingTheStage) {
  const std::string path =
      ::testing::TempDir() + "/lingxi_no_such_dir/write_file.bin";
  const auto status = write_file(path, {1, 2, 3});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kIo);
  EXPECT_NE(status.error().message.find("cannot open"), std::string::npos);
}

TEST(WriteFile, RenameFailureIsDistinctErrorAndRemovesTemp) {
  // A directory at the target path makes the final rename fail (the write
  // itself succeeds), exercising the commit stage's distinct error.
  const std::string path = ::testing::TempDir() + "/lingxi_write_file_dir_target";
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path + "/occupied");
  const auto status = write_file(path, {1, 2, 3});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kIo);
  EXPECT_NE(status.error().message.find("rename failed"), std::string::npos);
  // The failed commit does not strand its staging file.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove_all(path);
}

TEST(FsyncDirectory, SucceedsOnRealDirAndFailsOnMissing) {
  EXPECT_TRUE(fsync_directory(::testing::TempDir()).ok());
  const auto status = fsync_directory(::testing::TempDir() + "/lingxi_absent_dir");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kIo);
}

}  // namespace
}  // namespace lingxi::logstore
