// Crash-safe checkpointing: AutoCheckpointer policy (cadence, retention,
// serving-style failure handling), the transactional save commit under
// injected crashes at every stage, torn-write recovery via
// find_latest_valid, and a real fork + SIGKILL round trip — all pinned to
// the bitwise-parity contract (resumed accumulator checksums AND archive
// bytes match an uninterrupted run).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "abr/hyb.h"
#include "common/rng.h"
#include "logstore/record.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"
#include "sim/fleet_runner.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"
#include "telemetry/capture.h"

namespace lingxi {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lingxi_crash_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Small stall-prone LingXi fleet (single-threaded: the kill test forks).
sim::FleetConfig fleet_config() {
  sim::FleetConfig cfg;
  cfg.users = 8;
  cfg.days = 4;
  cfg.sessions_per_user_day = 5;
  cfg.users_per_shard = 3;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.intervention_day = 1;
  cfg.network.median_bandwidth = 1100.0;
  cfg.network.sigma = 0.4;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.lingxi.obo_rounds = 2;
  cfg.lingxi.monte_carlo.samples = 6;
  cfg.lingxi.monte_carlo.sample_duration = 12.0;
  cfg.lingxi.monte_carlo.min_samples_before_prune = 3;
  return cfg;
}

sim::FleetRunner::PredictorFactory predictor_factory(std::uint64_t net_seed = 4242) {
  return [net_seed] {
    Rng net_rng(net_seed);
    return predictor::HybridExitPredictor(
        std::make_shared<predictor::StallExitNet>(net_rng),
        std::make_shared<predictor::OverallStatsModel>());
  };
}

sim::FleetRunner make_runner(const sim::FleetConfig& cfg) {
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory(predictor_factory());
  return runner;
}

struct Reference {
  sim::FleetAccumulator acc;
  telemetry::FleetArchive archive;
};

/// One uninterrupted run with a capture — the parity baseline.
Reference reference_run(const sim::FleetConfig& cfg, std::uint64_t seed) {
  sim::FleetRunner runner = make_runner(cfg);
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
  runner.set_telemetry_sink(&capture);
  Reference ref;
  ref.acc = runner.run(seed);
  ref.archive = capture.finish();
  return ref;
}

/// Recover the newest valid checkpoint under `root` and resume to the
/// horizon in a fresh runner/capture ("new process" discipline), asserting
/// bitwise parity against the reference.
void resume_and_expect_parity(const std::string& root, const sim::FleetConfig& cfg,
                              std::uint64_t seed, const Reference& ref,
                              std::size_t expect_resume_day) {
  auto recovered = snapshot::find_latest_valid(root);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().message;
  EXPECT_EQ(recovered->snapshot.state.next_day, expect_resume_day);
  ASSERT_TRUE(snapshot::check_compatible(recovered->snapshot, cfg, seed).ok());

  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory(snapshot::resume_predictor_factory(
      predictor_factory(), recovered->snapshot.net_model));
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
  ASSERT_TRUE(snapshot::restore_capture(capture, cfg, recovered->snapshot.seed,
                                        std::move(recovered->snapshot.capture))
                  .ok());
  runner.set_telemetry_sink(&capture);
  const sim::FleetAccumulator resumed = runner.run_days(
      seed, recovered->snapshot.state.next_day, cfg.days, &recovered->snapshot.state);
  EXPECT_EQ(resumed.checksum(), ref.acc.checksum());
  EXPECT_FALSE(resumed.has_overflow());

  const telemetry::FleetArchive archive = capture.finish();
  EXPECT_EQ(archive.checksum(), ref.archive.checksum());
  ASSERT_EQ(archive.shards.size(), ref.archive.shards.size());
  for (std::size_t s = 0; s < archive.shards.size(); ++s) {
    EXPECT_TRUE(archive.shards[s] == ref.archive.shards[s]) << "shard " << s;
  }
}

/// Run [0, days) with an AutoCheckpointer armed (capture attached). Returns
/// the accumulator; `committed`/`status` receive the checkpointer's final
/// state when non-null.
sim::FleetAccumulator checkpointed_run(const sim::FleetConfig& cfg, std::uint64_t seed,
                                       snapshot::CheckpointPolicy policy,
                                       std::size_t* committed = nullptr,
                                       Status* status = nullptr) {
  sim::FleetRunner runner = make_runner(cfg);
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
  runner.set_telemetry_sink(&capture);
  snapshot::AutoCheckpointer ckpt(runner, seed, std::move(policy), &capture);
  ckpt.arm(runner);
  const sim::FleetAccumulator acc = runner.run_days(seed, 0, cfg.days, nullptr, nullptr);
  capture.finish();
  if (committed != nullptr) *committed = ckpt.checkpoints_committed();
  if (status != nullptr) *status = ckpt.status();
  return acc;
}

// Commit-hook crash plan (file-scope: SaveCommitHook is a plain function
// pointer). Aborts (or SIGKILLs) at `stage` of the `at_save`-th save — and
// stays "crashed" for every later stage: a dead process writes nothing after
// the crash point, so later boundary saves must abort immediately too (their
// staging dirs end up torn, exactly like a kill would leave nothing at all —
// either way recovery must not see a valid newer checkpoint).
int g_abort_at_save = 0;
int g_abort_stage = -1;
int g_saves_seen = 0;
bool g_abort_with_sigkill = false;
bool g_crashed = false;

bool crash_hook(snapshot::SaveStage stage) {
  if (g_crashed) return false;
  if (stage == snapshot::SaveStage::kStateFilesStaged) ++g_saves_seen;
  if (g_saves_seen == g_abort_at_save &&
      stage == static_cast<snapshot::SaveStage>(g_abort_stage)) {
    if (g_abort_with_sigkill) std::raise(SIGKILL);
    g_crashed = true;
    return false;
  }
  return true;
}

void arm_crash_hook(int at_save, snapshot::SaveStage stage, bool sigkill = false) {
  g_abort_at_save = at_save;
  g_abort_stage = static_cast<int>(stage);
  g_saves_seen = 0;
  g_abort_with_sigkill = sigkill;
  g_crashed = false;
  snapshot::set_save_commit_hook(&crash_hook);
}

void disarm_crash_hook() { snapshot::set_save_commit_hook(nullptr); }

// ---------------------------------------------------------------------------
// Policy mechanics.
// ---------------------------------------------------------------------------

TEST(Checkpoint, DirnameIsDayOrdered) {
  EXPECT_EQ(snapshot::checkpoint_dirname(3), "checkpoint-day-000003");
  EXPECT_EQ(snapshot::checkpoint_dirname(42), "checkpoint-day-000042");
  EXPECT_LT(snapshot::checkpoint_dirname(9), snapshot::checkpoint_dirname(10));
}

TEST(AutoCheckpointer, CutsOnCadencePrunesToRetentionAndStaysBitwise) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 77;
  const Reference ref = reference_run(cfg, kSeed);

  const std::string root = fresh_dir("cadence");
  std::size_t committed = 0;
  Status status;
  const sim::FleetAccumulator acc = checkpointed_run(
      cfg, kSeed, {root, /*every_k_days=*/1, /*retain=*/2, /*users_per_shard=*/4},
      &committed, &status);
  EXPECT_TRUE(status.ok()) << status.error().message;
  // Interior boundaries of [0, 4) at k = 1: days 1, 2, 3.
  EXPECT_EQ(committed, 3u);
  // Arming checkpoints must not change results (chunked-run contract).
  EXPECT_EQ(acc.checksum(), ref.acc.checksum());

  // Retention keeps the newest two committed checkpoints; day 1 is pruned.
  EXPECT_FALSE(std::filesystem::exists(root + "/checkpoint-day-000001"));
  EXPECT_TRUE(std::filesystem::exists(root + "/checkpoint-day-000002"));
  EXPECT_TRUE(std::filesystem::exists(root + "/checkpoint-day-000003"));

  resume_and_expect_parity(root, cfg, kSeed, ref, /*expect_resume_day=*/3);
}

TEST(AutoCheckpointer, FailureIsRecordedButRunContinues) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 13;
  const Reference ref = reference_run(cfg, kSeed);

  // A file where the checkpoint root should be: every save fails.
  const std::string root = fresh_dir("blocked-root");
  std::filesystem::create_directories(std::filesystem::path(root).parent_path());
  { std::ofstream(root) << "occupied"; }

  std::size_t committed = 0;
  Status status;
  const sim::FleetAccumulator acc = checkpointed_run(
      cfg, kSeed, {root, /*every_k_days=*/1, /*retain=*/2, /*users_per_shard=*/4},
      &committed, &status);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(committed, 0u);
  // Serving-style: a durability failure never changes (or stops) the run.
  EXPECT_EQ(acc.checksum(), ref.acc.checksum());
  std::filesystem::remove(root);
}

// ---------------------------------------------------------------------------
// Injected crashes inside the commit protocol.
// ---------------------------------------------------------------------------

TEST(CommitCrash, BeforeManifestLeavesTornStagingThatRecoverySkips) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 77;
  const Reference ref = reference_run(cfg, kSeed);

  const std::string root = fresh_dir("torn-staging");
  // Crash the second save after its state files are staged but BEFORE the
  // manifest exists: the staging dir is torn by construction.
  arm_crash_hook(2, snapshot::SaveStage::kStateFilesStaged);
  Status status;
  checkpointed_run(cfg, kSeed,
                   {root, /*every_k_days=*/1, /*retain=*/2, /*users_per_shard=*/4},
                   nullptr, &status);
  disarm_crash_hook();
  EXPECT_FALSE(status.ok());  // the aborted save was recorded

  // The torn staging dir is on disk and manifest-less...
  EXPECT_TRUE(std::filesystem::exists(root + "/checkpoint-day-000002.tmp"));
  EXPECT_FALSE(std::filesystem::exists(root + "/checkpoint-day-000002.tmp/" +
                                       snapshot::manifest_filename()));
  // ...so recovery falls back to the last committed checkpoint (day 1) and
  // still reproduces the reference bitwise.
  resume_and_expect_parity(root, cfg, kSeed, ref, /*expect_resume_day=*/1);
}

TEST(CommitCrash, AfterManifestLeavesCompleteStagingThatRecoveryAdopts) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 77;
  const Reference ref = reference_run(cfg, kSeed);

  const std::string root = fresh_dir("complete-staging");
  // Crash between the staging fsync and the commit rename: the `.tmp` dir is
  // complete (manifest written last), just not renamed.
  arm_crash_hook(2, snapshot::SaveStage::kStagingDurable);
  checkpointed_run(cfg, kSeed,
                   {root, /*every_k_days=*/1, /*retain=*/2, /*users_per_shard=*/4});
  disarm_crash_hook();

  EXPECT_TRUE(std::filesystem::exists(root + "/checkpoint-day-000002.tmp"));
  EXPECT_FALSE(std::filesystem::exists(root + "/checkpoint-day-000002"));
  // Content beats names: the complete staging dir IS the newest checkpoint.
  resume_and_expect_parity(root, cfg, kSeed, ref, /*expect_resume_day=*/2);
}

TEST(CommitCrash, EveryStageLeavesRecoverableState) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 91;
  const Reference ref = reference_run(cfg, kSeed);

  const snapshot::SaveStage stages[] = {
      snapshot::SaveStage::kStateFilesStaged,
      snapshot::SaveStage::kManifestStaged,
      snapshot::SaveStage::kStagingDurable,
      snapshot::SaveStage::kCommitted,
  };
  for (const auto stage : stages) {
    const std::string root =
        fresh_dir("stage-" + std::to_string(static_cast<int>(stage)));
    arm_crash_hook(2, stage);
    checkpointed_run(cfg, kSeed,
                     {root, /*every_k_days=*/1, /*retain=*/2, /*users_per_shard=*/4});
    disarm_crash_hook();

    // Whatever the crash point, SOME checkpoint is recoverable and resuming
    // from it reproduces the reference bitwise. Crashes before the manifest
    // recover day 1; later ones recover day 2.
    const std::size_t expect_day =
        stage == snapshot::SaveStage::kStateFilesStaged ? 1u : 2u;
    resume_and_expect_parity(root, cfg, kSeed, ref, expect_day);
  }
}

// ---------------------------------------------------------------------------
// Torn-write recovery.
// ---------------------------------------------------------------------------

TEST(FindLatestValid, MissingRootIsIoErrorEmptyRootIsNotFound) {
  const auto missing = snapshot::find_latest_valid(fresh_dir("absent"));
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, Error::Code::kIo);

  const std::string empty = fresh_dir("empty");
  std::filesystem::create_directories(empty);
  const auto none = snapshot::find_latest_valid(empty);
  ASSERT_FALSE(none.has_value());
  EXPECT_EQ(none.error().code, Error::Code::kNotFound);
}

TEST(FindLatestValid, TruncatedManifestFallsBackToPriorCheckpoint) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 77;
  const Reference ref = reference_run(cfg, kSeed);

  const std::string root = fresh_dir("torn-manifest");
  checkpointed_run(cfg, kSeed,
                   {root, /*every_k_days=*/1, /*retain=*/3, /*users_per_shard=*/4});

  // Tear the newest checkpoint's manifest mid-byte (a torn write a
  // non-atomic writer could have produced).
  const std::string manifest =
      root + "/checkpoint-day-000003/" + snapshot::manifest_filename();
  auto bytes = logstore::read_file(manifest);
  ASSERT_TRUE(bytes.has_value());
  bytes->resize(bytes->size() / 2);
  ASSERT_TRUE(logstore::write_file(manifest, *bytes).ok());

  // Recovery skips the torn day-3 checkpoint and resumes from day 2.
  resume_and_expect_parity(root, cfg, kSeed, ref, /*expect_resume_day=*/2);
}

TEST(FindLatestValid, TruncatedShardFallsBackToPriorCheckpoint) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 77;
  const Reference ref = reference_run(cfg, kSeed);

  const std::string root = fresh_dir("torn-shard");
  checkpointed_run(cfg, kSeed,
                   {root, /*every_k_days=*/1, /*retain=*/3, /*users_per_shard=*/4});

  const std::string shard =
      root + "/checkpoint-day-000003/" + snapshot::state_filename(0);
  auto bytes = logstore::read_file(shard);
  ASSERT_TRUE(bytes.has_value());
  bytes->resize(bytes->size() - 3);
  ASSERT_TRUE(logstore::write_file(shard, *bytes).ok());

  resume_and_expect_parity(root, cfg, kSeed, ref, /*expect_resume_day=*/2);
}

TEST(FindLatestValid, CommittedNameOutranksLeftoverOfSameDay) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 77;
  const Reference ref = reference_run(cfg, kSeed);

  const std::string root = fresh_dir("exchange-leftover");
  checkpointed_run(cfg, kSeed,
                   {root, /*every_k_days=*/1, /*retain=*/3, /*users_per_shard=*/4});

  // Simulate an exchange leftover: a stale `.old` copy of the newest day.
  std::filesystem::copy(root + "/checkpoint-day-000003",
                        root + "/checkpoint-day-000003.old",
                        std::filesystem::copy_options::recursive);
  auto recovered = snapshot::find_latest_valid(root);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().message;
  EXPECT_EQ(recovered->dir, root + "/checkpoint-day-000003");

  resume_and_expect_parity(root, cfg, kSeed, ref, /*expect_resume_day=*/3);
}

// ---------------------------------------------------------------------------
// Real kill -9 round trip.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, ForkedChildKilledMidCommitResumesBitwise) {
  const sim::FleetConfig cfg = fleet_config();  // threads = 1: fork-safe
  constexpr std::uint64_t kSeed = 77;
  const Reference ref = reference_run(cfg, kSeed);
  const std::string root = fresh_dir("sigkill");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: checkpoint every day, raise SIGKILL inside the second commit
    // right before the rename — dies by signal, no cleanup, no flush.
    arm_crash_hook(2, snapshot::SaveStage::kStagingDurable, /*sigkill=*/true);
    checkpointed_run(cfg, kSeed,
                     {root, /*every_k_days=*/1, /*retain=*/2, /*users_per_shard=*/4});
    _exit(7);  // only reached if the kill never fired
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited instead of dying by signal";
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The kill landed after day 2's staging was complete: recovery adopts it.
  resume_and_expect_parity(root, cfg, kSeed, ref, /*expect_resume_day=*/2);
}

}  // namespace
}  // namespace lingxi
