// Unit tests for src/obs/: registry merge determinism across thread counts,
// histogram bucket boundaries, trace ring overflow semantics, the stable
// JSON schemas, and the disabled fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace lingxi::obs {
namespace {

/// Installs a registry and/or tracer for one test and guarantees the global
/// sinks are cleared on exit, whatever the test body does.
struct InstallGuard {
  explicit InstallGuard(Registry* r, Tracer* t = nullptr) {
    Registry::install(r);
    Tracer::install(t);
  }
  ~InstallGuard() {
    Registry::install(nullptr);
    Tracer::install(nullptr);
  }
};

/// Deterministic synthetic workload: item i contributes the same counter
/// delta and histogram observation regardless of which thread runs it, and
/// every thread pins the gauge to the same value — so the merged snapshot
/// is a pure function of the item set, not of the partition.
void record_items(Registry& reg, std::size_t first, std::size_t last,
                  const HistogramSpec& spec) {
  for (std::size_t i = first; i < last; ++i) {
    reg.add("test.items", (i % 5) + 1);
    reg.add("test.touched");
    reg.observe("test.values", spec, static_cast<double>(i % 50));
  }
  if (first < last) reg.set("test.gauge", 7.5);
}

RegistrySnapshot run_partitioned(std::size_t threads, std::size_t items,
                                 const HistogramSpec& spec) {
  Registry reg;
  if (threads <= 1) {
    record_items(reg, 0, items, spec);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (items + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t first = std::min(t * chunk, items);
      const std::size_t last = std::min(first + chunk, items);
      workers.emplace_back(
          [&reg, first, last, &spec] { record_items(reg, first, last, spec); });
    }
    for (auto& w : workers) w.join();
  }
  return reg.snapshot();
}

TEST(ObsRegistry, MergeDeterministicAcrossThreadCounts) {
  const HistogramSpec spec({4.0, 16.0, 64.0});
  const RegistrySnapshot reference = run_partitioned(1, 240, spec);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const RegistrySnapshot snap = run_partitioned(threads, 240, spec);
    EXPECT_TRUE(snap == reference);
  }
  // Spot-check the reference itself.
  const MetricSnapshot* items = reference.find("test.items");
  ASSERT_NE(items, nullptr);
  EXPECT_EQ(items->count, 240u / 5u * (1u + 2u + 3u + 4u + 5u));
  const MetricSnapshot* touched = reference.find("test.touched");
  ASSERT_NE(touched, nullptr);
  EXPECT_EQ(touched->count, 240u);
  const MetricSnapshot* gauge = reference.find("test.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 7.5);
  const MetricSnapshot* values = reference.find("test.values");
  ASSERT_NE(values, nullptr);
  EXPECT_EQ(values->count, 240u);
}

TEST(ObsRegistry, HistogramBucketBoundaries) {
  // Bucket i counts v <= bounds[i]; past the last bound -> overflow bucket.
  const HistogramSpec spec({1.0, 2.0, 4.0});
  EXPECT_EQ(spec.buckets(), 4u);
  EXPECT_EQ(spec.bucket_for(0.5), 0u);
  EXPECT_EQ(spec.bucket_for(1.0), 0u);  // boundary value lands inclusive
  EXPECT_EQ(spec.bucket_for(1.5), 1u);
  EXPECT_EQ(spec.bucket_for(2.0), 1u);
  EXPECT_EQ(spec.bucket_for(4.0), 2u);
  EXPECT_EQ(spec.bucket_for(4.1), 3u);  // overflow

  Registry reg;
  for (double v : {0.5, 1.0, 1.5, 2.0, 4.0, 4.1, 100.0}) {
    reg.observe("h", spec, v);
  }
  const RegistrySnapshot snap = reg.snapshot();
  const MetricSnapshot* h = snap.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 7u);
  ASSERT_EQ(h->buckets.size(), 4u);
  EXPECT_EQ(h->buckets[0], 2u);
  EXPECT_EQ(h->buckets[1], 2u);
  EXPECT_EQ(h->buckets[2], 1u);
  EXPECT_EQ(h->buckets[3], 2u);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 100.0);
  EXPECT_NEAR(h->value, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1 + 100.0, 1e-12);
}

TEST(ObsRegistry, GaugeMergeHighestUpdateCountWinsTieMaxValue) {
  {
    // Shard A sets three times (last value 1), shard B once (value 9):
    // the busier shard wins regardless of merge order.
    Registry reg;
    reg.set("g", 5.0);
    reg.set("g", 6.0);
    reg.set("g", 1.0);
    std::thread([&reg] { reg.set("g", 9.0); }).join();
    const MetricSnapshot* g = reg.snapshot().find("g");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->value, 1.0);
  }
  {
    // Equal update counts: the larger value wins (order-independent tie).
    Registry reg;
    reg.set("g", 3.0);
    std::thread([&reg] { reg.set("g", 8.0); }).join();
    const MetricSnapshot* g = reg.snapshot().find("g");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->value, 8.0);
  }
}

TEST(ObsRegistry, CounterReadBackSumsShards) {
  Registry reg;
  reg.add("c", 10);
  std::thread([&reg] { reg.add("c", 32); }).join();
  EXPECT_EQ(reg.counter("c"), 42u);
  EXPECT_EQ(reg.counter("missing"), 0u);
}

TEST(ObsRegistry, JsonSchemaGolden) {
  Registry reg;
  reg.add("a.counter", 3);
  reg.set("b.gauge", 2.5);
  const HistogramSpec spec({1.0, 2.0});
  reg.observe("c.hist", spec, 1.5);
  std::ostringstream os;
  reg.write_json(os);
  const std::string expected =
      "{\"schema\": \"lingxi.obs.metrics/v1\", \"metrics\": ["
      "{\"name\": \"a.counter\", \"kind\": \"counter\", \"value\": 3}, "
      "{\"name\": \"b.gauge\", \"kind\": \"gauge\", \"value\": 2.5}, "
      "{\"name\": \"c.hist\", \"kind\": \"histogram\", \"count\": 1, "
      "\"sum\": 1.5, \"min\": 1.5, \"max\": 1.5, \"bounds\": [1, 2], "
      "\"buckets\": [0, 1, 0]}]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ObsRegistry, DisabledSitesAreNoOps) {
  ASSERT_EQ(Registry::active(), nullptr);
  ASSERT_EQ(Tracer::active(), nullptr);
  {
    // Every macro must be safe (and free) with no sinks installed.
    OBS_TIMED("x.y.z_us");
    OBS_SPAN("x.span");
    OBS_TIMED_SPAN("x.both_us");
  }
  Registry reg;
  EXPECT_TRUE(reg.snapshot().metrics.empty());
}

TEST(ObsRegistry, ScopedTimerFeedsHistogramAndSpan) {
  Registry reg;
  Tracer tracer(16);
  InstallGuard guard(&reg, &tracer);
  {
    OBS_TIMED("unit.timer.scope_us");
    OBS_SPAN("unit.span");
  }
  {
    OBS_TIMED_SPAN("unit.both_us");
  }
  const RegistrySnapshot snap = reg.snapshot();
  const MetricSnapshot* timed = snap.find("unit.timer.scope_us");
  ASSERT_NE(timed, nullptr);
  EXPECT_EQ(timed->kind, MetricKind::kHistogram);
  EXPECT_EQ(timed->count, 1u);
  const MetricSnapshot* both = snap.find("unit.both_us");
  ASSERT_NE(both, nullptr);
  EXPECT_EQ(both->count, 1u);
  EXPECT_EQ(tracer.retained_events(), 2u);  // unit.span + unit.both_us
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(ObsTracer, RingOverflowDropsOldestAndCounts) {
  static const char* const kNames[] = {"s0", "s1", "s2", "s3", "s4", "s5"};
  Tracer tracer(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.record(kNames[i], 10 * i, 10 * i + 5);
  }
  EXPECT_EQ(tracer.retained_events(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 2u);
  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  // Oldest two spans are gone; the newest four survive, and the drop count
  // is exported with the trace.
  EXPECT_EQ(json.find("\"s0\""), std::string::npos);
  EXPECT_EQ(json.find("\"s1\""), std::string::npos);
  EXPECT_NE(json.find("\"s2\""), std::string::npos);
  EXPECT_NE(json.find("\"s5\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 2"), std::string::npos);
}

TEST(ObsTracer, ChromeTraceJsonShape) {
  Tracer tracer(8);
  tracer.record("alpha", 100, 250);
  tracer.record("beta", 300, 301);
  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"lingxi.obs.trace/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"alpha\", \"cat\": \"lingxi\", \"ph\": \"X\", "
                      "\"ts\": 100, \"dur\": 150, \"pid\": 0, \"tid\": 0}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"beta\", \"cat\": \"lingxi\", \"ph\": \"X\", "
                      "\"ts\": 300, \"dur\": 1, \"pid\": 0, \"tid\": 0}"),
            std::string::npos);
}

TEST(ObsSampler, GaugesAndRates) {
  Registry reg;
  // Pool counters present -> the sampler derives mean flush occupancy.
  reg.add("predictor.pool.flushes", 4);
  reg.add("predictor.pool.queries", 100);
  PeriodicSampler sampler(&reg, /*base_sessions=*/50);
  sampler.sample(/*next_day=*/2, /*live_users=*/8, /*total_sessions=*/150);
  const RegistrySnapshot snap = reg.snapshot();
  const MetricSnapshot* day = snap.find("sim.fleet.day");
  ASSERT_NE(day, nullptr);
  EXPECT_DOUBLE_EQ(day->value, 2.0);
  const MetricSnapshot* live = snap.find("sim.fleet.live_users");
  ASSERT_NE(live, nullptr);
  EXPECT_DOUBLE_EQ(live->value, 8.0);
  const MetricSnapshot* total = snap.find("sim.fleet.sessions_total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value, 150.0);
  const MetricSnapshot* rate = snap.find("sim.fleet.sessions_per_sec");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->value, 0.0);  // first sample has no rate window yet
  const MetricSnapshot* occ = snap.find("predictor.pool.mean_flush_occupancy");
  ASSERT_NE(occ, nullptr);
  EXPECT_DOUBLE_EQ(occ->value, 25.0);
  // RSS gauge exists and is positive on Linux.
  const MetricSnapshot* rss = snap.find("process.rss_bytes");
  ASSERT_NE(rss, nullptr);
#if defined(__linux__)
  EXPECT_GT(rss->value, 0.0);
#endif
  // A second sample after more sessions reports a positive rate.
  sampler.sample(3, 8, 450);
  const MetricSnapshot* rate2 = reg.snapshot().find("sim.fleet.sessions_per_sec");
  ASSERT_NE(rate2, nullptr);
  EXPECT_GT(rate2->value, 0.0);

  // Null-registry sampler is a no-op.
  PeriodicSampler off(nullptr);
  off.sample(1, 1, 1);
}

TEST(ObsRegistry, WriteJsonFileRoundTripsThroughDisk) {
  Registry reg;
  reg.add("file.counter", 7);
  const std::string path = "obs_metrics_test.json";
  ASSERT_TRUE(reg.write_json_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buf;
  buf << in.rdbuf();
  std::ostringstream direct;
  reg.write_json(direct);
  EXPECT_EQ(buf.str(), direct.str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lingxi::obs
