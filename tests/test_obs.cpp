// Unit tests for src/obs/: registry merge determinism across thread counts,
// histogram bucket boundaries, trace ring overflow semantics, the stable
// JSON schemas, and the disabled fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/expected.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeline.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace lingxi::obs {
namespace {

/// Installs a registry and/or tracer for one test and guarantees the global
/// sinks are cleared on exit, whatever the test body does.
struct InstallGuard {
  explicit InstallGuard(Registry* r, Tracer* t = nullptr) {
    Registry::install(r);
    Tracer::install(t);
  }
  ~InstallGuard() {
    Registry::install(nullptr);
    Tracer::install(nullptr);
  }
};

/// Deterministic synthetic workload: item i contributes the same counter
/// delta and histogram observation regardless of which thread runs it, and
/// every thread pins the gauge to the same value — so the merged snapshot
/// is a pure function of the item set, not of the partition.
void record_items(Registry& reg, std::size_t first, std::size_t last,
                  const HistogramSpec& spec) {
  for (std::size_t i = first; i < last; ++i) {
    reg.add("test.items", (i % 5) + 1);
    reg.add("test.touched");
    reg.observe("test.values", spec, static_cast<double>(i % 50));
  }
  if (first < last) reg.set("test.gauge", 7.5);
}

RegistrySnapshot run_partitioned(std::size_t threads, std::size_t items,
                                 const HistogramSpec& spec) {
  Registry reg;
  if (threads <= 1) {
    record_items(reg, 0, items, spec);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (items + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t first = std::min(t * chunk, items);
      const std::size_t last = std::min(first + chunk, items);
      workers.emplace_back(
          [&reg, first, last, &spec] { record_items(reg, first, last, spec); });
    }
    for (auto& w : workers) w.join();
  }
  return reg.snapshot();
}

TEST(ObsRegistry, MergeDeterministicAcrossThreadCounts) {
  const HistogramSpec spec({4.0, 16.0, 64.0});
  const RegistrySnapshot reference = run_partitioned(1, 240, spec);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const RegistrySnapshot snap = run_partitioned(threads, 240, spec);
    EXPECT_TRUE(snap == reference);
  }
  // Spot-check the reference itself.
  const MetricSnapshot* items = reference.find("test.items");
  ASSERT_NE(items, nullptr);
  EXPECT_EQ(items->count, 240u / 5u * (1u + 2u + 3u + 4u + 5u));
  const MetricSnapshot* touched = reference.find("test.touched");
  ASSERT_NE(touched, nullptr);
  EXPECT_EQ(touched->count, 240u);
  const MetricSnapshot* gauge = reference.find("test.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 7.5);
  const MetricSnapshot* values = reference.find("test.values");
  ASSERT_NE(values, nullptr);
  EXPECT_EQ(values->count, 240u);
}

TEST(ObsRegistry, HistogramBucketBoundaries) {
  // Bucket i counts v <= bounds[i]; past the last bound -> overflow bucket.
  const HistogramSpec spec({1.0, 2.0, 4.0});
  EXPECT_EQ(spec.buckets(), 4u);
  EXPECT_EQ(spec.bucket_for(0.5), 0u);
  EXPECT_EQ(spec.bucket_for(1.0), 0u);  // boundary value lands inclusive
  EXPECT_EQ(spec.bucket_for(1.5), 1u);
  EXPECT_EQ(spec.bucket_for(2.0), 1u);
  EXPECT_EQ(spec.bucket_for(4.0), 2u);
  EXPECT_EQ(spec.bucket_for(4.1), 3u);  // overflow

  Registry reg;
  for (double v : {0.5, 1.0, 1.5, 2.0, 4.0, 4.1, 100.0}) {
    reg.observe("h", spec, v);
  }
  const RegistrySnapshot snap = reg.snapshot();
  const MetricSnapshot* h = snap.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 7u);
  ASSERT_EQ(h->buckets.size(), 4u);
  EXPECT_EQ(h->buckets[0], 2u);
  EXPECT_EQ(h->buckets[1], 2u);
  EXPECT_EQ(h->buckets[2], 1u);
  EXPECT_EQ(h->buckets[3], 2u);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 100.0);
  EXPECT_NEAR(h->value, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1 + 100.0, 1e-12);
}

TEST(ObsRegistry, GaugeMergeHighestUpdateCountWinsTieMaxValue) {
  {
    // Shard A sets three times (last value 1), shard B once (value 9):
    // the busier shard wins regardless of merge order.
    Registry reg;
    reg.set("g", 5.0);
    reg.set("g", 6.0);
    reg.set("g", 1.0);
    std::thread([&reg] { reg.set("g", 9.0); }).join();
    const MetricSnapshot* g = reg.snapshot().find("g");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->value, 1.0);
  }
  {
    // Equal update counts: the larger value wins (order-independent tie).
    Registry reg;
    reg.set("g", 3.0);
    std::thread([&reg] { reg.set("g", 8.0); }).join();
    const MetricSnapshot* g = reg.snapshot().find("g");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->value, 8.0);
  }
}

TEST(ObsRegistry, CounterReadBackSumsShards) {
  Registry reg;
  reg.add("c", 10);
  std::thread([&reg] { reg.add("c", 32); }).join();
  EXPECT_EQ(reg.counter("c"), 42u);
  EXPECT_EQ(reg.counter("missing"), 0u);
}

TEST(ObsRegistry, JsonSchemaGolden) {
  Registry reg;
  reg.add("a.counter", 3);
  reg.set("b.gauge", 2.5);
  const HistogramSpec spec({1.0, 2.0});
  reg.observe("c.hist", spec, 1.5);
  std::ostringstream os;
  reg.write_json(os);
  const std::string expected =
      "{\"schema\": \"lingxi.obs.metrics/v1\", \"metrics\": ["
      "{\"name\": \"a.counter\", \"kind\": \"counter\", \"value\": 3}, "
      "{\"name\": \"b.gauge\", \"kind\": \"gauge\", \"value\": 2.5}, "
      "{\"name\": \"c.hist\", \"kind\": \"histogram\", \"count\": 1, "
      "\"sum\": 1.5, \"min\": 1.5, \"max\": 1.5, "
      "\"p50\": 1.5, \"p95\": 1.5, \"p99\": 1.5, \"bounds\": [1, 2], "
      "\"buckets\": [0, 1, 0]}]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ObsRegistry, DisabledSitesAreNoOps) {
  ASSERT_EQ(Registry::active(), nullptr);
  ASSERT_EQ(Tracer::active(), nullptr);
  {
    // Every macro must be safe (and free) with no sinks installed.
    OBS_TIMED("x.y.z_us");
    OBS_SPAN("x.span");
    OBS_TIMED_SPAN("x.both_us");
  }
  Registry reg;
  EXPECT_TRUE(reg.snapshot().metrics.empty());
}

TEST(ObsRegistry, ScopedTimerFeedsHistogramAndSpan) {
  Registry reg;
  Tracer tracer(16);
  InstallGuard guard(&reg, &tracer);
  {
    OBS_TIMED("unit.timer.scope_us");
    OBS_SPAN("unit.span");
  }
  {
    OBS_TIMED_SPAN("unit.both_us");
  }
  const RegistrySnapshot snap = reg.snapshot();
  const MetricSnapshot* timed = snap.find("unit.timer.scope_us");
  ASSERT_NE(timed, nullptr);
  EXPECT_EQ(timed->kind, MetricKind::kHistogram);
  EXPECT_EQ(timed->count, 1u);
  const MetricSnapshot* both = snap.find("unit.both_us");
  ASSERT_NE(both, nullptr);
  EXPECT_EQ(both->count, 1u);
  EXPECT_EQ(tracer.retained_events(), 2u);  // unit.span + unit.both_us
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(ObsTracer, RingOverflowDropsOldestAndCounts) {
  static const char* const kNames[] = {"s0", "s1", "s2", "s3", "s4", "s5"};
  Tracer tracer(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.record(kNames[i], 10 * i, 10 * i + 5);
  }
  EXPECT_EQ(tracer.retained_events(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 2u);
  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  // Oldest two spans are gone; the newest four survive, and the drop count
  // is exported with the trace.
  EXPECT_EQ(json.find("\"s0\""), std::string::npos);
  EXPECT_EQ(json.find("\"s1\""), std::string::npos);
  EXPECT_NE(json.find("\"s2\""), std::string::npos);
  EXPECT_NE(json.find("\"s5\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 2"), std::string::npos);
}

TEST(ObsTracer, ChromeTraceJsonShape) {
  Tracer tracer(8);
  tracer.record("alpha", 100, 250);
  tracer.record("beta", 300, 301);
  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"lingxi.obs.trace/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"alpha\", \"cat\": \"lingxi\", \"ph\": \"X\", "
                      "\"ts\": 100, \"dur\": 150, \"pid\": 0, \"tid\": 0}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"beta\", \"cat\": \"lingxi\", \"ph\": \"X\", "
                      "\"ts\": 300, \"dur\": 1, \"pid\": 0, \"tid\": 0}"),
            std::string::npos);
}

TEST(ObsSampler, GaugesAndRates) {
  Registry reg;
  // Pool counters present -> the sampler derives mean flush occupancy.
  reg.add("predictor.pool.flushes", 4);
  reg.add("predictor.pool.queries", 100);
  PeriodicSampler sampler(&reg, /*base_sessions=*/50);
  FleetDayFacts facts;
  facts.day = 2;
  facts.live_users = 8;
  facts.sessions_total = 150;
  facts.completed_total = 144;
  facts.mean_bitrate_kbps = 1200.0;
  facts.completion_rate = 0.96;
  sampler.sample_at(facts, /*now_us=*/1'000'000);
  const RegistrySnapshot snap = reg.snapshot();
  const MetricSnapshot* day = snap.find("sim.fleet.day");
  ASSERT_NE(day, nullptr);
  EXPECT_DOUBLE_EQ(day->value, 2.0);
  const MetricSnapshot* live = snap.find("sim.fleet.live_users");
  ASSERT_NE(live, nullptr);
  EXPECT_DOUBLE_EQ(live->value, 8.0);
  const MetricSnapshot* total = snap.find("sim.fleet.sessions_total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value, 150.0);
  const MetricSnapshot* completed = snap.find("sim.fleet.completed_total");
  ASSERT_NE(completed, nullptr);
  EXPECT_DOUBLE_EQ(completed->value, 144.0);
  const MetricSnapshot* bitrate = snap.find("sim.fleet.mean_bitrate_kbps");
  ASSERT_NE(bitrate, nullptr);
  EXPECT_DOUBLE_EQ(bitrate->value, 1200.0);
  // The first sample only establishes the rate window: no rate gauge yet.
  EXPECT_EQ(snap.find("sim.fleet.sessions_per_sec"), nullptr);
  const MetricSnapshot* occ = snap.find("predictor.pool.mean_flush_occupancy");
  ASSERT_NE(occ, nullptr);
  EXPECT_DOUBLE_EQ(occ->value, 25.0);
  // RSS gauges exist; positive on Linux, and the peak bounds the current.
  const MetricSnapshot* rss = snap.find("process.rss_bytes");
  ASSERT_NE(rss, nullptr);
  const MetricSnapshot* peak = snap.find("process.rss_peak_bytes");
  ASSERT_NE(peak, nullptr);
#if defined(__linux__)
  EXPECT_GT(rss->value, 0.0);
  EXPECT_GT(peak->value, 0.0);
  EXPECT_GE(peak->value, rss->value);
#endif

  // A zero-microsecond resample neither publishes a rate (the window would
  // divide by zero) nor collapses the window for the next real sample.
  facts.day = 3;
  facts.sessions_total = 250;
  sampler.sample_at(facts, /*now_us=*/1'000'000);
  EXPECT_EQ(reg.snapshot().find("sim.fleet.sessions_per_sec"), nullptr);

  // A real window: (450 - 150) sessions over 2 elapsed seconds.
  facts.day = 4;
  facts.sessions_total = 450;
  sampler.sample_at(facts, /*now_us=*/3'000'000);
  const RegistrySnapshot snap2 = reg.snapshot();
  const MetricSnapshot* rate = snap2.find("sim.fleet.sessions_per_sec");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->value, 150.0);

  // Null-registry sampler is a no-op.
  PeriodicSampler off(nullptr);
  off.sample(FleetDayFacts{});
}

TEST(ObsSampler, PeakRssBoundsCurrentRss) {
#if defined(__linux__)
  const std::uint64_t rss = process_rss_bytes();
  const std::uint64_t peak = process_peak_rss_bytes();
  EXPECT_GT(rss, 0u);
  EXPECT_GT(peak, 0u);
  EXPECT_GE(peak, rss);
#else
  EXPECT_EQ(process_peak_rss_bytes(), 0u);
#endif
}

TEST(ObsHistogram, QuantileInterpolatesWithinBuckets) {
  Registry reg;
  const HistogramSpec spec({10.0, 20.0});
  // One observation per bucket: [5] | (10, 15] | overflow (30).
  for (double v : {5.0, 15.0, 30.0}) reg.observe("q", spec, v);
  const RegistrySnapshot snap = reg.snapshot();
  const MetricSnapshot* q = snap.find("q");
  ASSERT_NE(q, nullptr);
  // q=0 resolves inside bucket 0, whose lower edge is the observed min.
  EXPECT_DOUBLE_EQ(q->quantile(0.0), 5.0);
  // rank 1.5 lands halfway through bucket 1: lower 10, upper 20.
  EXPECT_DOUBLE_EQ(q->quantile(0.5), 15.0);
  // rank 3 exhausts the overflow bucket, whose upper edge is the observed
  // max — never infinity.
  EXPECT_DOUBLE_EQ(q->quantile(1.0), 30.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(q->quantile(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(q->quantile(2.0), 30.0);
}

TEST(ObsHistogram, QuantileEdgeCases) {
  Registry reg;
  const HistogramSpec spec({10.0, 20.0});
  // Single observation: every quantile is that observation (clamped to
  // [min, max] = [v, v]).
  reg.observe("one", spec, 12.5);
  const RegistrySnapshot snap1 = reg.snapshot();
  const MetricSnapshot* one = snap1.find("one");
  ASSERT_NE(one, nullptr);
  EXPECT_DOUBLE_EQ(one->quantile(0.01), 12.5);
  EXPECT_DOUBLE_EQ(one->quantile(0.99), 12.5);
  // All observations in the overflow bucket: quantiles stay within
  // [min, max] of the real data.
  reg.observe("over", spec, 100.0);
  reg.observe("over", spec, 200.0);
  const RegistrySnapshot snap2 = reg.snapshot();
  const MetricSnapshot* over = snap2.find("over");
  ASSERT_NE(over, nullptr);
  EXPECT_GE(over->quantile(0.5), 100.0);
  EXPECT_LE(over->quantile(0.5), 200.0);
  EXPECT_DOUBLE_EQ(over->quantile(1.0), 200.0);
  // Non-histogram and empty metrics report 0.
  reg.add("ctr", 5);
  reg.set("g", 3.0);
  const RegistrySnapshot snap3 = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap3.find("ctr")->quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap3.find("g")->quantile(0.5), 0.0);
  MetricSnapshot empty;
  empty.kind = MetricKind::kHistogram;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsRegistry, PrometheusExposition) {
  Registry reg;
  reg.add("a.counter", 3);
  reg.set("b.gauge", 2.5);
  const HistogramSpec spec({1.0, 2.0});
  reg.observe("c.hist", spec, 1.5);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string expected =
      "# TYPE a_counter counter\n"
      "a_counter 3\n"
      "# TYPE b_gauge gauge\n"
      "b_gauge 2.5\n"
      "# TYPE c_hist histogram\n"
      "c_hist_bucket{le=\"1\"} 0\n"
      "c_hist_bucket{le=\"2\"} 1\n"
      "c_hist_bucket{le=\"+Inf\"} 1\n"
      "c_hist_sum 1.5\n"
      "c_hist_count 1\n";
  EXPECT_EQ(os.str(), expected);
}

// ---------------------------------------------------------------------------
// Timeline: framing round-trip, section partitioning, corruption handling.
// ---------------------------------------------------------------------------

TEST(ObsTimeline, DeterministicSectionPredicate) {
  EXPECT_TRUE(timeline_deterministic("sim.fleet.day", MetricKind::kGauge));
  EXPECT_TRUE(timeline_deterministic("sim.fleet.sessions_total", MetricKind::kGauge));
  // The rate measures the machine, not the simulation.
  EXPECT_FALSE(timeline_deterministic("sim.fleet.sessions_per_sec", MetricKind::kGauge));
  // Counters reset on restart, so they cannot splice deterministically.
  EXPECT_FALSE(timeline_deterministic("sim.fleet.day", MetricKind::kCounter));
  EXPECT_FALSE(timeline_deterministic("process.rss_bytes", MetricKind::kGauge));
  EXPECT_FALSE(timeline_deterministic("sim.session.step_us", MetricKind::kHistogram));
}

TEST(ObsTimeline, RoundTripDaysAndAlerts) {
  const std::string path = "obs_timeline_roundtrip.bin";
  Registry reg;
  reg.set("sim.fleet.day", 1.0);
  reg.set("sim.fleet.sessions_total", 100.0);
  reg.set("sim.fleet.sessions_per_sec", 42.0);  // wall-clock
  reg.set("process.rss_bytes", 1e6);            // wall-clock
  reg.add("sched.waves", 7);                    // wall-clock (counter)
  const HistogramSpec spec({1.0, 2.0});
  reg.observe("sim.step_us", spec, 1.5);        // wall-clock (histogram)
  {
    TimelineWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    writer.append_day(1, reg.snapshot());
    reg.set("sim.fleet.day", 2.0);
    reg.set("sim.fleet.sessions_total", 220.0);
    writer.append_day(2, reg.snapshot());
    HealthAlert alert;
    alert.day = 2;
    alert.rule = "floor:sim.fleet.completion_rate";
    alert.metric = "sim.fleet.completion_rate";
    alert.observed = 0.4;
    alert.threshold = 0.9;
    alert.message = "completion rate 0.4 below floor 0.9";
    writer.append_alert(alert);
    EXPECT_EQ(writer.days_written(), 2u);
    EXPECT_TRUE(writer.close().ok());
  }
  auto reader = TimelineReader::open(path);
  ASSERT_TRUE(static_cast<bool>(reader));
  auto records = reader->read_all();
  ASSERT_TRUE(static_cast<bool>(records));
  ASSERT_EQ(records->size(), 3u);

  const TimelineRecord& day1 = (*records)[0];
  EXPECT_EQ(day1.type, TimelineRecord::Type::kDay);
  EXPECT_EQ(day1.day, 1u);
  ASSERT_EQ(day1.deterministic.size(), 2u);  // sim.fleet.day, sessions_total
  EXPECT_EQ(day1.deterministic[0].name, "sim.fleet.day");
  EXPECT_DOUBLE_EQ(day1.deterministic[0].value, 1.0);
  EXPECT_EQ(day1.deterministic[1].name, "sim.fleet.sessions_total");
  EXPECT_DOUBLE_EQ(day1.deterministic[1].value, 100.0);
  // Wall-clock section holds the rate, RSS, the counter and the histogram.
  ASSERT_EQ(day1.wallclock.size(), 4u);
  bool saw_rate = false, saw_hist = false;
  for (const MetricSnapshot& m : day1.wallclock) {
    if (m.name == "sim.fleet.sessions_per_sec") {
      saw_rate = true;
      EXPECT_DOUBLE_EQ(m.value, 42.0);
    }
    if (m.name == "sim.step_us") {
      saw_hist = true;
      EXPECT_EQ(m.kind, MetricKind::kHistogram);
      EXPECT_EQ(m.count, 1u);
      ASSERT_EQ(m.bounds.size(), 2u);
      EXPECT_DOUBLE_EQ(m.bounds[0], 1.0);
      ASSERT_EQ(m.buckets.size(), 3u);
      EXPECT_EQ(m.buckets[1], 1u);
    }
  }
  EXPECT_TRUE(saw_rate);
  EXPECT_TRUE(saw_hist);

  const TimelineRecord& day2 = (*records)[1];
  EXPECT_EQ(day2.day, 2u);
  EXPECT_DOUBLE_EQ(day2.deterministic[1].value, 220.0);
  // Same metric set, different values: the deterministic bytes must differ.
  EXPECT_NE(day1.deterministic_bytes, day2.deterministic_bytes);

  const TimelineRecord& alert_rec = (*records)[2];
  EXPECT_EQ(alert_rec.type, TimelineRecord::Type::kAlert);
  EXPECT_EQ(alert_rec.day, 2u);
  EXPECT_EQ(alert_rec.alert.rule, "floor:sim.fleet.completion_rate");
  EXPECT_EQ(alert_rec.alert.metric, "sim.fleet.completion_rate");
  EXPECT_DOUBLE_EQ(alert_rec.alert.observed, 0.4);
  EXPECT_DOUBLE_EQ(alert_rec.alert.threshold, 0.9);
  EXPECT_EQ(alert_rec.alert.message, "completion rate 0.4 below floor 0.9");
  std::remove(path.c_str());
}

namespace {

/// Byte image of a freshly written one-day timeline, for corruption tests.
std::string timeline_bytes(const std::string& path) {
  Registry reg;
  reg.set("sim.fleet.day", 1.0);
  reg.set("sim.fleet.sessions_total", 50.0);
  reg.add("sched.waves", 3);
  TimelineWriter writer(path);
  writer.append_day(1, reg.snapshot());
  EXPECT_TRUE(writer.close().ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Appends one LXTL frame (magic | version | len | payload | crc) to `out`.
void append_raw_frame(std::string& out, const std::vector<unsigned char>& payload,
                      std::uint32_t version = 1) {
  auto put32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  out += "LXTL";
  put32(version);
  put32(static_cast<std::uint32_t>(payload.size()));
  out.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  put32(crc32(payload.data(), payload.size()));
}

/// Schema-header payload for an arbitrary schema string.
std::vector<unsigned char> schema_payload(std::string_view schema) {
  std::vector<unsigned char> p;
  auto put32 = [&p](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
  };
  put32(0);  // kRecSchema
  put32(static_cast<std::uint32_t>(schema.size()));
  p.insert(p.end(), schema.begin(), schema.end());
  return p;
}

}  // namespace

TEST(ObsTimeline, TruncatedFrameIsCorruptNotUb) {
  const std::string path = "obs_timeline_truncated.bin";
  const std::string bytes = timeline_bytes(path);
  ASSERT_GT(bytes.size(), 20u);
  // Cut mid-way through the day frame (past the header frame).
  write_bytes(path, bytes.substr(0, bytes.size() - 7));
  auto reader = TimelineReader::open(path);
  ASSERT_TRUE(static_cast<bool>(reader));  // header frame is intact
  auto records = reader->read_all();
  ASSERT_FALSE(static_cast<bool>(records));
  EXPECT_EQ(records.error().code, Error::Code::kCorrupt);
  std::remove(path.c_str());
}

TEST(ObsTimeline, FlippedBitIsChecksumMismatch) {
  const std::string path = "obs_timeline_crcflip.bin";
  std::string bytes = timeline_bytes(path);
  // Flip a bit deep inside the day frame's payload (well past the header
  // frame, well before the trailing CRC).
  bytes[bytes.size() - 20] = static_cast<char>(bytes[bytes.size() - 20] ^ 0x01);
  write_bytes(path, bytes);
  auto reader = TimelineReader::open(path);
  ASSERT_TRUE(static_cast<bool>(reader));
  auto records = reader->read_all();
  ASSERT_FALSE(static_cast<bool>(records));
  EXPECT_EQ(records.error().code, Error::Code::kCorrupt);
  EXPECT_NE(records.error().message.find("checksum mismatch"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTimeline, UnknownSchemaRejectedAtOpen) {
  const std::string path = "obs_timeline_badschema.bin";
  std::string bytes;
  append_raw_frame(bytes, schema_payload("lingxi.obs.timeline/v999"));
  write_bytes(path, bytes);
  auto reader = TimelineReader::open(path);
  ASSERT_FALSE(static_cast<bool>(reader));
  EXPECT_EQ(reader.error().code, Error::Code::kCorrupt);
  EXPECT_NE(reader.error().message.find("unknown schema"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTimeline, UnsupportedFrameVersionRejected) {
  const std::string path = "obs_timeline_badversion.bin";
  std::string bytes;
  append_raw_frame(bytes, schema_payload(kTimelineSchema), /*version=*/9);
  write_bytes(path, bytes);
  auto reader = TimelineReader::open(path);
  ASSERT_FALSE(static_cast<bool>(reader));
  EXPECT_EQ(reader.error().code, Error::Code::kCorrupt);
  EXPECT_NE(reader.error().message.find("unsupported frame version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTimeline, MissingFileIsIoError) {
  auto reader = TimelineReader::open("obs_timeline_does_not_exist.bin");
  ASSERT_FALSE(static_cast<bool>(reader));
  EXPECT_EQ(reader.error().code, Error::Code::kIo);
}

// ---------------------------------------------------------------------------
// Health monitor: rule grammar, rule kinds, latch semantics.
// ---------------------------------------------------------------------------

TEST(ObsHealth, ParseSloRuleGrammar) {
  auto floor = parse_slo_rule("floor:sim.fleet.completion_rate:0.9");
  ASSERT_TRUE(static_cast<bool>(floor));
  EXPECT_EQ(floor->kind, SloKind::kGaugeFloor);
  EXPECT_EQ(floor->metric, "sim.fleet.completion_rate");
  EXPECT_DOUBLE_EQ(floor->threshold, 0.9);
  EXPECT_EQ(floor->name, "floor:sim.fleet.completion_rate");  // defaulted

  auto ceiling = parse_slo_rule("ceiling:process.rss_bytes:2e9:rss-cap");
  ASSERT_TRUE(static_cast<bool>(ceiling));
  EXPECT_EQ(ceiling->kind, SloKind::kGaugeCeiling);
  EXPECT_DOUBLE_EQ(ceiling->threshold, 2e9);
  EXPECT_EQ(ceiling->name, "rss-cap");

  auto rate = parse_slo_rule("rate:checkpoint.commit.failures:0");
  ASSERT_TRUE(static_cast<bool>(rate));
  EXPECT_EQ(rate->kind, SloKind::kRateCeiling);
  EXPECT_DOUBLE_EQ(rate->threshold, 0.0);

  auto stall = parse_slo_rule("stall:sched.waves");
  ASSERT_TRUE(static_cast<bool>(stall));
  EXPECT_EQ(stall->kind, SloKind::kStall);

  for (const char* bad :
       {"", "floor", "floor:x", "floor:x:notanumber", "bogus:x:1", "stall:"}) {
    auto r = parse_slo_rule(bad);
    EXPECT_FALSE(static_cast<bool>(r)) << "spec '" << bad << "' should not parse";
    if (!r) {
      EXPECT_EQ(r.error().code, Error::Code::kParse);
    }
  }
}

TEST(ObsHealth, GaugeFloorAndCeilingRules) {
  HealthMonitor monitor({{SloKind::kGaugeFloor, "g.floor", 10.0, "f"},
                         {SloKind::kGaugeCeiling, "g.ceil", 100.0, "c"}});
  Registry reg;
  reg.set("g.floor", 20.0);
  reg.set("g.ceil", 50.0);
  monitor.evaluate(1, reg.snapshot());
  EXPECT_TRUE(monitor.healthy());

  reg.set("g.floor", 5.0);    // below floor
  reg.set("g.ceil", 150.0);   // above ceiling
  monitor.evaluate(2, reg.snapshot());
  EXPECT_FALSE(monitor.healthy());
  ASSERT_EQ(monitor.alerts().size(), 2u);
  EXPECT_EQ(monitor.alerts()[0].rule, "f");
  EXPECT_EQ(monitor.alerts()[0].day, 2u);
  EXPECT_DOUBLE_EQ(monitor.alerts()[0].observed, 5.0);
  EXPECT_DOUBLE_EQ(monitor.alerts()[0].threshold, 10.0);
  EXPECT_EQ(monitor.alerts()[1].rule, "c");
}

TEST(ObsHealth, LatchFiresOncePerEpisodeAndRearms) {
  HealthMonitor monitor({{SloKind::kGaugeFloor, "g", 10.0, "floor"}});
  Registry reg;
  reg.set("g", 5.0);
  // Persistent degradation over many days: exactly one alert.
  for (std::uint64_t day = 1; day <= 5; ++day) monitor.evaluate(day, reg.snapshot());
  EXPECT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].day, 1u);
  // Recovery re-arms the rule...
  reg.set("g", 50.0);
  monitor.evaluate(6, reg.snapshot());
  EXPECT_EQ(monitor.alerts().size(), 1u);
  // ...so a relapse fires a second alert.
  reg.set("g", 3.0);
  monitor.evaluate(7, reg.snapshot());
  ASSERT_EQ(monitor.alerts().size(), 2u);
  EXPECT_EQ(monitor.alerts()[1].day, 7u);
  // healthy() stays false once anything has fired.
  EXPECT_FALSE(monitor.healthy());
}

TEST(ObsHealth, RateCeilingNeedsBaselineThenFiresOnDelta) {
  HealthMonitor monitor({{SloKind::kRateCeiling, "errors", 2.0, "err-budget"}});
  Registry reg;
  reg.add("errors", 100);
  // First evaluation only establishes the baseline — a huge absolute count
  // must not fire.
  monitor.evaluate(1, reg.snapshot());
  EXPECT_TRUE(monitor.healthy());
  // +2 per day is within budget.
  reg.add("errors", 2);
  monitor.evaluate(2, reg.snapshot());
  EXPECT_TRUE(monitor.healthy());
  // +5 per day blows the budget.
  reg.add("errors", 5);
  monitor.evaluate(3, reg.snapshot());
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].day, 3u);
  EXPECT_DOUBLE_EQ(monitor.alerts()[0].observed, 5.0);
}

TEST(ObsHealth, StallRuleFiresWhenCounterStopsGrowing) {
  HealthMonitor monitor({{SloKind::kStall, "progress", 0.0, "watchdog"}});
  Registry reg;
  reg.add("progress", 10);
  monitor.evaluate(1, reg.snapshot());  // baseline
  EXPECT_TRUE(monitor.healthy());
  reg.add("progress", 4);
  monitor.evaluate(2, reg.snapshot());  // growing: fine
  EXPECT_TRUE(monitor.healthy());
  monitor.evaluate(3, reg.snapshot());  // no growth: stall
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].rule, "watchdog");
  EXPECT_EQ(monitor.alerts()[0].day, 3u);
  // Latched while stalled; growth re-arms.
  monitor.evaluate(4, reg.snapshot());
  EXPECT_EQ(monitor.alerts().size(), 1u);
  reg.add("progress", 1);
  monitor.evaluate(5, reg.snapshot());
  EXPECT_EQ(monitor.alerts().size(), 1u);
}

TEST(ObsHealth, AbsentGaugeIsNoDataNotViolation) {
  HealthMonitor monitor({{SloKind::kGaugeFloor, "missing.gauge", 10.0, "f"}});
  Registry reg;
  monitor.evaluate(1, reg.snapshot());
  EXPECT_TRUE(monitor.healthy());
}

TEST(ObsHealth, AlertsLandInActiveTimeline) {
  const std::string path = "obs_health_timeline.bin";
  {
    TimelineWriter writer(path);
    TimelineWriter::install(&writer);
    HealthMonitor monitor({{SloKind::kGaugeFloor, "g", 10.0, "floor"}});
    Registry reg;
    reg.set("g", 1.0);
    monitor.evaluate(3, reg.snapshot());
    TimelineWriter::install(nullptr);
    EXPECT_TRUE(writer.close().ok());
    ASSERT_EQ(monitor.alerts().size(), 1u);
  }
  auto reader = TimelineReader::open(path);
  ASSERT_TRUE(static_cast<bool>(reader));
  auto records = reader->read_all();
  ASSERT_TRUE(static_cast<bool>(records));
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].type, TimelineRecord::Type::kAlert);
  EXPECT_EQ((*records)[0].alert.rule, "floor");
  EXPECT_EQ((*records)[0].alert.day, 3u);
}

TEST(ObsRegistry, WriteJsonFileRoundTripsThroughDisk) {
  Registry reg;
  reg.add("file.counter", 7);
  const std::string path = "obs_metrics_test.json";
  ASSERT_TRUE(reg.write_json_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buf;
  buf << in.rdbuf();
  std::ostringstream direct;
  reg.write_json(direct);
  EXPECT_EQ(buf.str(), direct.str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lingxi::obs
