// Unit tests for lingxi_abr: QoE parameter space, throughput estimators and
// all six ABR algorithms (including behavioural/property checks).
#include <gtest/gtest.h>

#include <cmath>

#include "abr/bba.h"
#include "abr/bola.h"
#include "abr/estimator.h"
#include "abr/hyb.h"
#include "abr/pensieve.h"
#include "abr/qoe.h"
#include "abr/rate_based.h"
#include "abr/robust_mpc.h"
#include "common/rng.h"
#include "sim/session.h"
#include "trace/bandwidth.h"

namespace lingxi::abr {
namespace {

sim::AbrObservation make_obs(const trace::Video& video, Seconds buffer,
                             std::vector<Kbps> tput, std::size_t next = 1,
                             std::size_t last_level = 0) {
  sim::AbrObservation obs;
  obs.video = &video;
  obs.buffer = buffer;
  obs.buffer_max = 8.0;
  obs.next_segment = next;
  obs.first_segment = (next == 0);
  obs.last_level = last_level;
  obs.throughput_history = std::move(tput);
  obs.download_time_history.assign(obs.throughput_history.size(), 0.5);
  return obs;
}

// -- ParamSpace -----------------------------------------------------------

TEST(ParamSpace, DimensionsFollowFlags) {
  ParamSpace s;
  s.optimize_stall = true;
  s.optimize_switch = true;
  s.optimize_beta = false;
  EXPECT_EQ(s.dimensions(), 2u);
  s.optimize_beta = true;
  EXPECT_EQ(s.dimensions(), 3u);
}

TEST(ParamSpace, UnitRoundTrip) {
  ParamSpace s;
  s.optimize_stall = s.optimize_switch = s.optimize_beta = true;
  QoeParams p;
  p.stall_penalty = 10.0;
  p.switch_penalty = 2.0;
  p.hyb_beta = 0.7;
  const auto u = s.to_unit(p);
  const QoeParams q = s.from_unit(u, QoeParams{});
  EXPECT_NEAR(q.stall_penalty, 10.0, 1e-9);
  EXPECT_NEAR(q.switch_penalty, 2.0, 1e-9);
  EXPECT_NEAR(q.hyb_beta, 0.7, 1e-9);
}

TEST(ParamSpace, FromUnitKeepsUnsearchedFromBase) {
  ParamSpace s;
  s.optimize_stall = false;
  s.optimize_switch = false;
  s.optimize_beta = true;
  QoeParams base;
  base.stall_penalty = 13.0;
  const QoeParams q = s.from_unit({0.5}, base);
  EXPECT_DOUBLE_EQ(q.stall_penalty, 13.0);
  EXPECT_NEAR(q.hyb_beta, (s.beta_min + s.beta_max) / 2.0, 1e-9);
}

TEST(ParamSpace, ClampBoundsAllCoordinates) {
  ParamSpace s;
  QoeParams p;
  p.stall_penalty = 100.0;
  p.switch_penalty = -1.0;
  p.hyb_beta = 2.0;
  const QoeParams c = s.clamp(p);
  EXPECT_DOUBLE_EQ(c.stall_penalty, s.stall_max);
  EXPECT_DOUBLE_EQ(c.switch_penalty, s.switch_min);
  EXPECT_DOUBLE_EQ(c.hyb_beta, s.beta_max);
}

TEST(ParamSpace, SampleUnitInCube) {
  ParamSpace s;
  s.optimize_stall = s.optimize_switch = s.optimize_beta = true;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto u = s.sample_unit(rng);
    ASSERT_EQ(u.size(), 3u);
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

// -- estimators -----------------------------------------------------------

TEST(Estimator, HarmonicMeanKnown) {
  std::vector<Kbps> xs{1000.0, 2000.0};
  EXPECT_NEAR(harmonic_mean(xs), 4000.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<Kbps>{}), 0.0);
}

TEST(Estimator, HarmonicLessThanArithmetic) {
  std::vector<Kbps> xs{500.0, 1500.0, 4000.0};
  EXPECT_LT(harmonic_mean(xs), 2000.0);
}

TEST(Estimator, RobustEstimateNeverExceedsHarmonic) {
  std::vector<Kbps> xs{1000.0, 3000.0, 500.0, 2000.0};
  EXPECT_LE(robust_estimate(xs), harmonic_mean(xs));
  // Constant series: zero error -> estimates equal.
  std::vector<Kbps> c{1000.0, 1000.0, 1000.0};
  EXPECT_NEAR(robust_estimate(c), harmonic_mean(c), 1e-9);
}

TEST(Estimator, MaxRelativeErrorZeroForConstant) {
  std::vector<Kbps> c{800.0, 800.0, 800.0};
  EXPECT_DOUBLE_EQ(max_relative_error(c), 0.0);
  std::vector<Kbps> v{800.0, 400.0};
  EXPECT_NEAR(max_relative_error(v), 1.0, 1e-9);  // predicted 800, saw 400
}

TEST(Estimator, EwmaWeightsRecent) {
  std::vector<Kbps> xs{1000.0, 1000.0, 5000.0};
  const Kbps e = ewma(xs, 0.5);
  EXPECT_GT(e, 1000.0);
  EXPECT_LT(e, 5000.0);
  EXPECT_NEAR(e, 3000.0, 1e-9);  // ((1000)*0.5+1000*0.5)=1000 -> 0.5*5000+0.5*1000
}

// -- HYB -------------------------------------------------------------------

TEST(Hyb, ConservativeStart) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Hyb hyb;
  auto obs = make_obs(video, 0.0, {}, 0);
  EXPECT_EQ(hyb.select(obs), 0u);
}

TEST(Hyb, PicksHigherWithMoreBuffer) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Hyb hyb;
  auto low = make_obs(video, 0.5, {3000.0, 3000.0});
  auto high = make_obs(video, 8.0, {3000.0, 3000.0});
  EXPECT_LE(hyb.select(low), hyb.select(high));
  EXPECT_GT(hyb.select(high), 0u);
}

TEST(Hyb, BetaMonotone) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  auto obs = make_obs(video, 2.0, {2500.0, 2500.0});
  std::size_t prev = 0;
  for (double beta : {0.2, 0.5, 0.9}) {
    Hyb hyb;
    QoeParams p;
    p.hyb_beta = beta;
    hyb.set_params(p);
    const std::size_t level = hyb.select(obs);
    EXPECT_GE(level, prev);
    prev = level;
  }
}

TEST(Hyb, ExactBudgetBoundary) {
  // With beta*B = 1.0s budget and 1000 kbps estimate, a 750 kbps segment
  // (0.75s download) fits, an 1850 kbps one (1.85s) does not.
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Hyb hyb;
  QoeParams p;
  p.hyb_beta = 0.5;
  hyb.set_params(p);
  auto obs = make_obs(video, 2.0, {1000.0, 1000.0});
  EXPECT_EQ(hyb.select(obs), 1u);
}

// -- BBA -------------------------------------------------------------------

TEST(Bba, ReservoirForcesLowest) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Bba bba;
  auto obs = make_obs(video, 1.0, {9000.0});
  EXPECT_EQ(bba.select(obs), 0u);
}

TEST(Bba, CushionTopForcesHighest) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Bba bba;
  auto obs = make_obs(video, 7.9, {100.0});
  EXPECT_EQ(bba.select(obs), 3u);
}

TEST(Bba, MonotoneInBuffer) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Bba bba;
  std::size_t prev = 0;
  for (double buf = 0.0; buf <= 8.0; buf += 0.5) {
    auto obs = make_obs(video, buf, {1000.0});
    const std::size_t level = bba.select(obs);
    EXPECT_GE(level, prev);
    prev = level;
  }
  EXPECT_EQ(prev, 3u);
}

// -- BOLA ------------------------------------------------------------------

TEST(Bola, ReturnsValidLevel) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Bola bola;
  for (double buf : {0.0, 2.0, 4.0, 8.0}) {
    auto obs = make_obs(video, buf, {2000.0});
    EXPECT_LT(bola.select(obs), 4u);
  }
}

TEST(Bola, LowBufferPicksLow) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Bola bola;
  auto obs = make_obs(video, 0.0, {2000.0});
  EXPECT_EQ(bola.select(obs), 0u);
}

TEST(Bola, MonotoneNonDecreasingInBuffer) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  Bola bola;
  std::size_t prev = 0;
  for (double buf = 0.0; buf <= 8.0; buf += 0.25) {
    auto obs = make_obs(video, buf, {2000.0});
    const std::size_t level = bola.select(obs);
    EXPECT_GE(level, prev) << "buffer " << buf;
    prev = level;
  }
}

// -- RateBased ---------------------------------------------------------------

TEST(RateBased, TracksEstimate) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  RateBased rb;
  auto low = make_obs(video, 4.0, {500.0, 500.0});
  auto mid = make_obs(video, 4.0, {2500.0, 2500.0});
  auto high = make_obs(video, 4.0, {9000.0, 9000.0});
  EXPECT_EQ(rb.select(low), 0u);
  EXPECT_EQ(rb.select(mid), 2u);  // 0.85*2500 = 2125 -> highest below is HD (1850)
  EXPECT_EQ(rb.select(high), 3u);
}

TEST(RateBased, EmptyHistoryConservative) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  RateBased rb;
  auto obs = make_obs(video, 4.0, {}, 0);
  EXPECT_EQ(rb.select(obs), 0u);
}

// -- RobustMPC ---------------------------------------------------------------

TEST(RobustMpc, HighBandwidthHighBufferPicksTop) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 20, 1.0);
  RobustMpc mpc;
  auto obs = make_obs(video, 8.0, {20000.0, 20000.0, 20000.0}, 5, 3);
  EXPECT_EQ(mpc.select(obs), 3u);
}

TEST(RobustMpc, LowBandwidthPicksBottom) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 20, 1.0);
  RobustMpc mpc;
  auto obs = make_obs(video, 0.5, {400.0, 400.0, 400.0}, 5, 0);
  EXPECT_EQ(mpc.select(obs), 0u);
}

TEST(RobustMpc, HigherStallPenaltyNeverLessConservative) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 20, 1.0);
  auto obs = make_obs(video, 1.5, {2000.0, 1800.0, 2200.0}, 5, 2);
  std::size_t prev = 4;
  for (double mu : {1.0, 5.0, 20.0}) {
    RobustMpc mpc;
    QoeParams p;
    p.stall_penalty = mu;
    mpc.set_params(p);
    const std::size_t level = mpc.select(obs);
    EXPECT_LE(level, prev) << "mu " << mu;
    prev = level;
  }
}

TEST(RobustMpc, SwitchPenaltyStabilizes) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 20, 1.0);
  // Previous level 0 with decent bandwidth: a huge switch penalty should
  // hold the selection closer to the previous level.
  auto obs = make_obs(video, 6.0, {4000.0, 4000.0, 4000.0}, 5, 0);
  RobustMpc free_mpc;
  QoeParams free_p;
  free_p.switch_penalty = 0.0;
  free_mpc.set_params(free_p);
  RobustMpc sticky_mpc;
  QoeParams sticky_p;
  sticky_p.switch_penalty = 50.0;
  sticky_mpc.set_params(sticky_p);
  EXPECT_LE(sticky_mpc.select(obs), free_mpc.select(obs));
  EXPECT_EQ(sticky_mpc.select(obs), 0u);
}

TEST(RobustMpc, RobustVariantMoreConservativeUnderNoise) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 20, 1.0);
  auto obs = make_obs(video, 3.0, {4000.0, 1000.0, 4000.0, 1000.0}, 5, 1);
  RobustMpc::Config plain_cfg;
  plain_cfg.robust = false;
  RobustMpc plain(plain_cfg);
  RobustMpc robust;
  EXPECT_LE(robust.select(obs), plain.select(obs));
}

TEST(RobustMpc, CloneCarriesParams) {
  RobustMpc mpc;
  QoeParams p;
  p.stall_penalty = 7.5;
  mpc.set_params(p);
  auto copy = mpc.clone();
  EXPECT_DOUBLE_EQ(copy->params().stall_penalty, 7.5);
}

// -- Pensieve ---------------------------------------------------------------

TEST(Pensieve, FeatureVectorShape) {
  Rng rng(2);
  Pensieve policy(4, rng);
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  auto obs = make_obs(video, 4.0, {1000.0, 2000.0});
  const nn::Tensor f = policy.build_features(obs);
  EXPECT_EQ(f.size(), policy.feature_count());
  // 3 scalars + 2*8 history + 4 sizes + 1 remaining + 3 params = 27.
  EXPECT_EQ(policy.feature_count(), 27u);
}

TEST(Pensieve, SelectIsDeterministic) {
  Rng rng(3);
  Pensieve policy(4, rng);
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  auto obs = make_obs(video, 4.0, {1500.0, 1500.0});
  EXPECT_EQ(policy.select(obs), policy.select(obs));
}

TEST(Pensieve, ParamsChangeFeatures) {
  Rng rng(4);
  Pensieve policy(4, rng);
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  auto obs = make_obs(video, 4.0, {1500.0, 1500.0});
  const nn::Tensor f1 = policy.build_features(obs);
  QoeParams p;
  p.stall_penalty = 19.0;
  policy.set_params(p);
  const nn::Tensor f2 = policy.build_features(obs);
  bool differs = false;
  for (std::size_t i = 0; i < f1.size(); ++i) {
    if (f1[i] != f2[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Pensieve, CloneIsIndependentDeepCopy) {
  Rng rng(5);
  Pensieve policy(4, rng);
  auto copy = policy.clone();
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  auto obs = make_obs(video, 4.0, {1500.0, 1500.0});
  EXPECT_EQ(policy.select(obs), copy->select(obs));
  QoeParams p;
  p.stall_penalty = 19.0;
  copy->set_params(p);
  EXPECT_DOUBLE_EQ(policy.params().stall_penalty, QoeParams{}.stall_penalty);
}

TEST(Pensieve, SampleActionWithinLadder) {
  Rng rng(6);
  Pensieve policy(4, rng);
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  auto obs = make_obs(video, 4.0, {1500.0, 1500.0});
  for (int i = 0; i < 50; ++i) EXPECT_LT(policy.sample_action(obs, rng), 4u);
}

TEST(Pensieve, TrainingRunsAndReportsFiniteReturns) {
  Rng rng(7);
  Pensieve policy(4, rng);
  trace::VideoGenerator::Config vcfg;
  vcfg.mean_duration = 20.0;
  const trace::VideoGenerator videos(vcfg);
  const trace::PopulationModel population;
  PensieveTrainConfig cfg;
  cfg.episodes = 30;
  cfg.max_segments = 20;
  const auto report = train_pensieve(policy, videos, population, cfg, rng);
  EXPECT_TRUE(std::isfinite(report.initial_mean_return));
  EXPECT_TRUE(std::isfinite(report.final_mean_return));
}

}  // namespace
}  // namespace lingxi::abr
