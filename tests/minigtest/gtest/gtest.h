// Minimal GoogleTest-compatible shim — fallback when neither a system
// GoogleTest nor network access for FetchContent is available.
//
// Covers exactly the API surface the lingxi suites use:
//   TEST, TEST_P, INSTANTIATE_TEST_SUITE_P, ::testing::TestWithParam<T>,
//   ::testing::{Values, Bool, Range, Combine}, GTEST_SKIP, TempDir,
//   EXPECT_/ASSERT_{TRUE,FALSE,EQ,NE,LT,LE,GT,GE}, EXPECT_NEAR,
//   EXPECT_DOUBLE_EQ, EXPECT_STREQ, RUN_ALL_TESTS, InitGoogleTest.
// No fixtures with SetUp/TearDown, no matchers, no death tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Test {
 public:
  virtual ~Test() = default;
  virtual void TestBody() = 0;
};

namespace internal {

struct TestCase {
  std::string suite;
  std::string name;
  std::function<void()> run;
};

struct Registry {
  std::vector<TestCase> tests;
  // Deferred hooks that expand parameterized suites into plain test cases.
  std::vector<std::function<void(Registry&)>> expanders;
  bool current_failed = false;
  bool current_skipped = false;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

inline bool add_test(const char* suite, const char* name, std::function<void()> run) {
  Registry::instance().tests.push_back({suite, name, std::move(run)});
  return true;
}

inline void report_failure(const char* file, int line, const std::string& message) {
  std::printf("%s:%d: Failure\n%s\n", file, line, message.c_str());
  Registry::instance().current_failed = true;
}

// Print a value on assertion failure; fall back for non-streamable types.
template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
std::string describe(const T& value) {
  if constexpr (IsStreamable<T>::value) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else if constexpr (std::is_enum_v<T>) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  } else {
    return "<unprintable>";
  }
}

// nullopt = check passed; otherwise the failure summary.
using CheckResult = std::optional<std::string>;

template <typename A, typename B, typename Op>
CheckResult check_binary(const char* expr_a, const char* expr_b, const char* op_name,
                         const A& a, const B& b, Op op) {
  if (op(a, b)) return std::nullopt;
  std::ostringstream os;
  os << "Expected: (" << expr_a << ") " << op_name << " (" << expr_b << ")\n"
     << "  Actual: " << describe(a) << " vs " << describe(b);
  return os.str();
}

inline CheckResult check_always_failed() {
  return std::string("Failed");
}

inline CheckResult check_bool(const char* expr, bool value, bool expected) {
  if (value == expected) return std::nullopt;
  std::ostringstream os;
  os << "Value of: " << expr << "\n  Actual: " << (value ? "true" : "false")
     << "\nExpected: " << (expected ? "true" : "false");
  return os.str();
}

inline CheckResult check_near(const char* expr_a, const char* expr_b, double a, double b,
                              double tol) {
  if (std::fabs(a - b) <= tol) return std::nullopt;
  std::ostringstream os;
  os << "The difference between " << expr_a << " and " << expr_b << " is "
     << std::fabs(a - b) << ", which exceeds " << tol << "\n  " << expr_a << " = " << a
     << "\n  " << expr_b << " = " << b;
  return os.str();
}

// GoogleTest's EXPECT_DOUBLE_EQ: equal within 4 ULPs.
inline CheckResult check_double_eq(const char* expr_a, const char* expr_b, double a,
                                   double b) {
  bool equal = a == b;
  if (!equal && !std::isnan(a) && !std::isnan(b)) {
    const double eps = std::fabs(std::nexttoward(a, b) - a);
    equal = std::fabs(a - b) <= 4.0 * eps;
  }
  if (equal) return std::nullopt;
  std::ostringstream os;
  os << "Expected double equality of " << expr_a << " and " << expr_b
     << "\n  Actual: " << a << " vs " << b;
  return os.str();
}

inline CheckResult check_streq(const char* expr_a, const char* expr_b, const char* a,
                               const char* b) {
  const bool equal = (a == nullptr && b == nullptr) ||
                     (a != nullptr && b != nullptr && std::strcmp(a, b) == 0);
  if (equal) return std::nullopt;
  std::ostringstream os;
  os << "Expected equality of C strings:\n  " << expr_a << " = \"" << (a ? a : "(null)")
     << "\"\n  " << expr_b << " = \"" << (b ? b : "(null)") << "\"";
  return os.str();
}

// --- parameterized test machinery -----------------------------------------

// Generators materialize to std::vector<P> for the fixture's ParamType P.
template <typename... Ts>
struct ValuesGen {
  std::tuple<Ts...> values;
  template <typename P>
  std::vector<P> materialize() const {
    std::vector<P> out;
    std::apply([&out](const auto&... v) { (out.push_back(static_cast<P>(v)), ...); },
               values);
    return out;
  }
};

struct BoolGen {
  template <typename P>
  std::vector<P> materialize() const {
    return {static_cast<P>(false), static_cast<P>(true)};
  }
};

struct RangeGen {
  long long lo, hi, step;
  template <typename P>
  std::vector<P> materialize() const {
    std::vector<P> out;
    for (long long v = lo; v < hi; v += step) out.push_back(static_cast<P>(v));
    return out;
  }
};

template <typename... Gens>
struct CombineGen {
  std::tuple<Gens...> gens;

  template <typename P>
  std::vector<P> materialize() const {
    return expand<P>(std::make_index_sequence<sizeof...(Gens)>{});
  }

 private:
  template <typename P, std::size_t... I>
  std::vector<P> expand(std::index_sequence<I...>) const {
    auto vecs = std::make_tuple(
        std::get<I>(gens).template materialize<std::tuple_element_t<I, P>>()...);
    const std::size_t sizes[] = {std::get<I>(vecs).size()...};
    std::vector<P> out;
    for (std::size_t s : sizes) {
      if (s == 0) return out;
    }
    std::size_t idx[sizeof...(Gens)] = {};
    for (;;) {
      out.push_back(P(std::get<I>(vecs)[idx[I]]...));
      std::size_t d = sizeof...(Gens);
      for (;;) {
        if (d == 0) return out;
        --d;
        if (++idx[d] < sizes[d]) break;
        idx[d] = 0;
      }
    }
  }
};

// Per-fixture registry: TEST_P bodies and INSTANTIATE generators meet here.
template <typename Fixture>
struct ParamRegistry {
  using Param = typename Fixture::ParamType;

  struct Body {
    std::string name;
    std::function<std::unique_ptr<Fixture>()> make;
  };

  std::vector<Body> bodies;

  static ParamRegistry& instance() {
    static ParamRegistry r;
    return r;
  }

  static bool add_body(const char* name, std::function<std::unique_ptr<Fixture>()> make) {
    instance().bodies.push_back({name, std::move(make)});
    return true;
  }

  static bool add_instantiation(const char* prefix, const char* fixture_name,
                                std::vector<Param> params) {
    auto shared = std::make_shared<std::vector<Param>>(std::move(params));
    std::string suite = std::string(prefix) + "/" + fixture_name;
    Registry::instance().expanders.push_back([shared, suite](Registry& reg) {
      auto& self = instance();
      for (const auto& body : self.bodies) {
        for (std::size_t i = 0; i < shared->size(); ++i) {
          auto make = body.make;
          reg.tests.push_back({suite, body.name + "/" + std::to_string(i),
                               [make, shared, i] {
                                 auto t = make();
                                 t->set_param(&(*shared)[i]);
                                 t->TestBody();
                               }});
        }
      }
    });
    return true;
  }
};

}  // namespace internal

/// Streamed user message appended to an assertion failure:
///   EXPECT_LT(x, y) << "context " << x;
class Message {
 public:
  template <typename T>
  Message& operator<<(const T& value) {
    os_ << internal::describe(value);
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

namespace internal {

/// Receives the streamed Message and emits the failure (gtest's trick to let
/// assertion macros end in a streamable expression).
class AssertHelper {
 public:
  AssertHelper(const char* file, int line, std::string summary)
      : file_(file), line_(line), summary_(std::move(summary)) {}
  void operator=(const Message& message) const {
    std::string text = summary_;
    const std::string extra = message.str();
    if (!extra.empty()) text += "\n" + extra;
    report_failure(file_, line_, text);
  }

 private:
  const char* file_;
  int line_;
  std::string summary_;
};

}  // namespace internal

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  const T& GetParam() const { return *param_; }
  void set_param(const T* p) { param_ = p; }

 private:
  const T* param_ = nullptr;
};

template <typename... Ts>
internal::ValuesGen<std::decay_t<Ts>...> Values(Ts&&... values) {
  return {std::make_tuple(std::forward<Ts>(values)...)};
}

inline internal::BoolGen Bool() { return {}; }

inline internal::RangeGen Range(long long lo, long long hi, long long step = 1) {
  return {lo, hi, step};
}

template <typename... Gens>
internal::CombineGen<std::decay_t<Gens>...> Combine(Gens&&... gens) {
  return {std::make_tuple(std::forward<Gens>(gens)...)};
}

inline std::string TempDir() { return "/tmp/"; }

inline void InitGoogleTest(int* = nullptr, char** = nullptr) {}

}  // namespace testing

inline int RUN_ALL_TESTS() {
  auto& reg = ::testing::internal::Registry::instance();
  for (auto& expand : reg.expanders) expand(reg);
  reg.expanders.clear();

  std::size_t passed = 0, skipped = 0;
  std::vector<std::string> failures;
  for (const auto& test : reg.tests) {
    const std::string full = test.suite + "." + test.name;
    std::printf("[ RUN      ] %s\n", full.c_str());
    reg.current_failed = false;
    reg.current_skipped = false;
    test.run();
    if (reg.current_failed) {
      failures.push_back(full);
      std::printf("[  FAILED  ] %s\n", full.c_str());
    } else if (reg.current_skipped) {
      ++skipped;
      std::printf("[  SKIPPED ] %s\n", full.c_str());
    } else {
      ++passed;
      std::printf("[       OK ] %s\n", full.c_str());
    }
  }
  std::printf("[==========] %zu tests: %zu passed, %zu skipped, %zu failed\n",
              reg.tests.size(), passed, skipped, failures.size());
  for (const auto& f : failures) std::printf("[  FAILED  ] %s\n", f.c_str());
  return failures.empty() ? 0 : 1;
}

// --- test definition macros -------------------------------------------------

#define MINIGTEST_CLASS_NAME(suite, name) suite##_##name##_MiniTest

#define TEST(suite, name)                                                         \
  class MINIGTEST_CLASS_NAME(suite, name) : public ::testing::Test {              \
   public:                                                                        \
    void TestBody() override;                                                     \
  };                                                                              \
  static const bool minigtest_reg_##suite##_##name [[maybe_unused]] =             \
      ::testing::internal::add_test(#suite, #name, [] {                           \
        MINIGTEST_CLASS_NAME(suite, name) t;                                      \
        t.TestBody();                                                             \
      });                                                                         \
  void MINIGTEST_CLASS_NAME(suite, name)::TestBody()

#define TEST_P(fixture, name)                                                     \
  class MINIGTEST_CLASS_NAME(fixture, name) : public fixture {                    \
   public:                                                                        \
    void TestBody() override;                                                     \
  };                                                                              \
  static const bool minigtest_preg_##fixture##_##name [[maybe_unused]] =          \
      ::testing::internal::ParamRegistry<fixture>::add_body(                      \
          #name, []() -> std::unique_ptr<fixture> {                               \
            return std::make_unique<MINIGTEST_CLASS_NAME(fixture, name)>();       \
          });                                                                     \
  void MINIGTEST_CLASS_NAME(fixture, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, generator)                      \
  static const bool minigtest_inst_##prefix##_##fixture [[maybe_unused]] =        \
      ::testing::internal::ParamRegistry<fixture>::add_instantiation(             \
          #prefix, #fixture,                                                      \
          (generator).materialize<typename fixture::ParamType>())

#define GTEST_SKIP()                                                              \
  return (void)(::testing::internal::Registry::instance().current_skipped = true)

// --- assertion macros -------------------------------------------------------
//
// Each macro ends in `AssertHelper = Message()` so callers can stream extra
// context (`EXPECT_LT(a, b) << "..."`). `on_fail` is empty for EXPECT_ and
// `return` for ASSERT_. The switch wrapper avoids dangling-else capture.

#define MINIGTEST_CHECK_(result_expr, on_fail)                                    \
  switch (0)                                                                      \
  case 0:                                                                         \
  default:                                                                        \
    if (const ::testing::internal::CheckResult minigtest_result = (result_expr);  \
        !minigtest_result)                                                        \
      ;                                                                           \
    else                                                                          \
      on_fail ::testing::internal::AssertHelper(__FILE__, __LINE__,               \
                                                *minigtest_result) =              \
          ::testing::Message()

#define MINIGTEST_BINARY_(a, b, opname, op, on_fail)                              \
  MINIGTEST_CHECK_(                                                               \
      ::testing::internal::check_binary(                                          \
          #a, #b, opname, (a), (b),                                               \
          [](const auto& x, const auto& y) { return x op y; }),                   \
      on_fail)

#define EXPECT_EQ(a, b) MINIGTEST_BINARY_(a, b, "==", ==, )
#define EXPECT_NE(a, b) MINIGTEST_BINARY_(a, b, "!=", !=, )
#define EXPECT_LT(a, b) MINIGTEST_BINARY_(a, b, "<", <, )
#define EXPECT_LE(a, b) MINIGTEST_BINARY_(a, b, "<=", <=, )
#define EXPECT_GT(a, b) MINIGTEST_BINARY_(a, b, ">", >, )
#define EXPECT_GE(a, b) MINIGTEST_BINARY_(a, b, ">=", >=, )
#define ASSERT_EQ(a, b) MINIGTEST_BINARY_(a, b, "==", ==, return)
#define ASSERT_NE(a, b) MINIGTEST_BINARY_(a, b, "!=", !=, return)
#define ASSERT_LT(a, b) MINIGTEST_BINARY_(a, b, "<", <, return)
#define ASSERT_LE(a, b) MINIGTEST_BINARY_(a, b, "<=", <=, return)
#define ASSERT_GT(a, b) MINIGTEST_BINARY_(a, b, ">", >, return)
#define ASSERT_GE(a, b) MINIGTEST_BINARY_(a, b, ">=", >=, return)

// Unconditional non-fatal failure; streams context like every other check.
#define ADD_FAILURE() MINIGTEST_CHECK_(::testing::internal::check_always_failed(), )

#define EXPECT_TRUE(x) MINIGTEST_CHECK_(::testing::internal::check_bool(#x, bool(x), true), )
#define EXPECT_FALSE(x) \
  MINIGTEST_CHECK_(::testing::internal::check_bool(#x, bool(x), false), )
#define ASSERT_TRUE(x) \
  MINIGTEST_CHECK_(::testing::internal::check_bool(#x, bool(x), true), return)
#define ASSERT_FALSE(x) \
  MINIGTEST_CHECK_(::testing::internal::check_bool(#x, bool(x), false), return)

#define EXPECT_NEAR(a, b, tol)                                                    \
  MINIGTEST_CHECK_(::testing::internal::check_near(#a, #b, static_cast<double>(a), \
                                                   static_cast<double>(b),        \
                                                   static_cast<double>(tol)),     \
                   )
#define ASSERT_NEAR(a, b, tol)                                                    \
  MINIGTEST_CHECK_(::testing::internal::check_near(#a, #b, static_cast<double>(a), \
                                                   static_cast<double>(b),        \
                                                   static_cast<double>(tol)),     \
                   return)

#define EXPECT_DOUBLE_EQ(a, b)                                                    \
  MINIGTEST_CHECK_(::testing::internal::check_double_eq(                          \
                       #a, #b, static_cast<double>(a), static_cast<double>(b)),   \
                   )

#define EXPECT_STREQ(a, b) \
  MINIGTEST_CHECK_(::testing::internal::check_streq(#a, #b, (a), (b)), )
