// Unit tests for lingxi_predictor: engagement state, the 5-branch CNN,
// the OS model, the Eq. 4 hybrid predictor and dataset tooling.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "nn/serialize.h"
#include "predictor/dataset.h"
#include "predictor/engagement_state.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"

namespace lingxi::predictor {
namespace {

sim::SegmentRecord make_segment(Kbps bitrate, Kbps throughput, Seconds stall,
                                std::size_t level = 2) {
  sim::SegmentRecord seg;
  seg.level = level;
  seg.bitrate = bitrate;
  seg.throughput = throughput;
  seg.stall_time = stall;
  return seg;
}

// -- EngagementState -----------------------------------------------------

TEST(EngagementState, FeatureShape) {
  EngagementState s;
  const nn::Tensor f = s.features();
  ASSERT_EQ(f.rank(), 2u);
  EXPECT_EQ(f.dim(0), kChannels);
  EXPECT_EQ(f.dim(1), kHistoryLen);
}

TEST(EngagementState, BitrateChannelRightAligned) {
  EngagementState s;
  s.begin_session();
  s.on_segment(make_segment(4300.0, 8000.0, 0.0), 1.0);
  const nn::Tensor f = s.features();
  // Only the last column is filled; normalized bitrate = 1.0.
  EXPECT_DOUBLE_EQ(f.at(0, kHistoryLen - 1), 1.0);
  for (std::size_t i = 0; i + 1 < kHistoryLen; ++i) EXPECT_DOUBLE_EQ(f.at(0, i), 0.0);
  EXPECT_DOUBLE_EQ(f.at(1, kHistoryLen - 1), 1.0);  // 8000/8000
}

TEST(EngagementState, HistoryWindowKeepsLastEight) {
  EngagementState s;
  s.begin_session();
  for (int i = 0; i < 12; ++i) {
    s.on_segment(make_segment(350.0 + i, 1000.0, 0.0), 1.0);
  }
  const nn::Tensor f = s.features();
  // Most recent bitrate (350+11) in the last column.
  EXPECT_NEAR(f.at(0, kHistoryLen - 1), (350.0 + 11) / 4300.0, 1e-12);
  // Oldest retained (350+4) in the first column.
  EXPECT_NEAR(f.at(0, 0), (350.0 + 4) / 4300.0, 1e-12);
}

TEST(EngagementState, StallEventRecorded) {
  EngagementState s;
  s.begin_session();
  s.on_segment(make_segment(750.0, 500.0, 2.5), 1.0);
  EXPECT_EQ(s.stall_events(), 1u);
  EXPECT_EQ(s.long_term().stall_durations.size(), 1u);
  EXPECT_DOUBLE_EQ(s.long_term().stall_durations.back(), 2.5);
  const nn::Tensor f = s.features();
  EXPECT_NEAR(f.at(2, kHistoryLen - 1), 0.25, 1e-12);  // 2.5 / 10
}

TEST(EngagementState, SubThresholdStallIgnored) {
  EngagementState s;
  s.begin_session();
  s.on_segment(make_segment(750.0, 500.0, 0.01), 1.0);
  EXPECT_EQ(s.stall_events(), 0u);
}

TEST(EngagementState, StallIntervalsTracked) {
  EngagementState s;
  s.begin_session();
  s.on_segment(make_segment(750.0, 500.0, 1.0), 1.0);  // stall at watch=1
  for (int i = 0; i < 9; ++i) s.on_segment(make_segment(750.0, 500.0, 0.0), 1.0);
  s.on_segment(make_segment(750.0, 500.0, 2.0), 1.0);  // stall at watch=11
  ASSERT_EQ(s.long_term().stall_intervals.size(), 1u);
  EXPECT_NEAR(s.long_term().stall_intervals.back(), 10.0, 1e-9);
}

TEST(EngagementState, LongTermPersistsAcrossSessions) {
  EngagementState s;
  s.begin_session();
  s.on_segment(make_segment(750.0, 500.0, 3.0), 1.0);
  s.begin_session();  // new session clears short-term only
  EXPECT_EQ(s.stall_events(), 1u);
  const nn::Tensor f = s.features();
  EXPECT_DOUBLE_EQ(f.at(0, kHistoryLen - 1), 0.0);  // bitrate channel cleared
  EXPECT_GT(f.at(2, kHistoryLen - 1), 0.0);          // stall channel kept
}

TEST(EngagementState, StallExitTracking) {
  EngagementState s;
  s.begin_session();
  s.on_segment(make_segment(750.0, 500.0, 3.0), 1.0);
  s.on_stall_exit();
  EXPECT_EQ(s.long_term().total_stall_exits, 1u);
  // Second exit later creates an interval.
  for (int i = 0; i < 5; ++i) s.on_segment(make_segment(750.0, 500.0, 0.0), 1.0);
  s.on_stall_exit();
  ASSERT_EQ(s.long_term().stall_exit_intervals.size(), 1u);
  EXPECT_NEAR(s.long_term().stall_exit_intervals.back(), 5.0, 1e-9);
}

TEST(EngagementState, RestoreRoundTrip) {
  EngagementState s;
  s.begin_session();
  s.on_segment(make_segment(750.0, 500.0, 3.0), 1.0);
  s.on_stall_exit();
  const LongTermState saved = s.long_term();

  EngagementState fresh;
  fresh.restore_long_term(saved);
  EXPECT_EQ(fresh.long_term(), saved);
}

TEST(EngagementState, WatchTimeAccumulates) {
  EngagementState s;
  s.begin_session();
  for (int i = 0; i < 7; ++i) s.on_segment(make_segment(750.0, 500.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.watch_time(), 14.0);
}

// -- StallExitNet ----------------------------------------------------------

TEST(StallExitNet, OutputIsProbability) {
  Rng rng(1);
  StallExitNet net(rng);
  nn::Tensor f({kChannels, kHistoryLen});
  Rng data(2);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = data.uniform();
  const double p = net.predict(f);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(StallExitNet, DeterministicForward) {
  Rng rng(3);
  StallExitNet net(rng);
  nn::Tensor f({kChannels, kHistoryLen});
  f.fill(0.5);
  EXPECT_DOUBLE_EQ(net.predict(f), net.predict(f));
}

TEST(StallExitNet, WeightsRoundTrip) {
  Rng rng(4);
  StallExitNet net(rng);
  nn::Tensor f({kChannels, kHistoryLen});
  f.fill(0.3);
  const double before = net.predict(f);

  const auto bytes = nn::serialize_tensors(net.weights());
  Rng rng2(99);
  StallExitNet other(rng2);
  EXPECT_NE(other.predict(f), before);  // different init
  const auto tensors = nn::deserialize_tensors(bytes);
  ASSERT_TRUE(tensors.has_value());
  ASSERT_TRUE(other.load_weights(*tensors));
  EXPECT_DOUBLE_EQ(other.predict(f), before);
}

TEST(StallExitNet, LoadRejectsWrongShapes) {
  Rng rng(5);
  StallExitNet net(rng);
  std::vector<nn::Tensor> wrong;
  wrong.emplace_back(std::vector<std::size_t>{3});
  EXPECT_FALSE(net.load_weights(wrong));
}

TEST(StallExitNet, LearnsSimpleSeparableRule) {
  // Synthetic rule: exit iff the latest stall duration channel is high.
  Rng rng(6);
  StallExitNet net(rng);
  Dataset train;
  Rng data(7);
  for (int i = 0; i < 400; ++i) {
    nn::Tensor f({kChannels, kHistoryLen});
    const bool exit_label = (i % 2 == 0);
    const double stall = exit_label ? data.uniform(0.6, 1.0) : data.uniform(0.0, 0.2);
    f.at(2, kHistoryLen - 1) = stall;
    f.at(0, kHistoryLen - 1) = data.uniform();
    train.samples.push_back({f, exit_label});
  }
  TrainConfig cfg;
  cfg.epochs = 12;
  train_exit_net(net, train, cfg, rng);
  const auto m = evaluate(net, train);
  EXPECT_GT(m.accuracy, 0.95);
  EXPECT_GT(m.f1, 0.95);
}

// -- OverallStatsModel -------------------------------------------------------

TEST(OsModel, GlobalRateNeutralPriorWhenEmpty) {
  OverallStatsModel os;
  EXPECT_NEAR(os.global_rate(), 0.05, 1e-12);
}

TEST(OsModel, LearnsBucketRates) {
  OverallStatsModel os;
  for (int i = 0; i < 1000; ++i) os.observe(0, SwitchType::kNone, i % 10 == 0);  // 10%
  for (int i = 0; i < 1000; ++i) os.observe(3, SwitchType::kNone, i % 50 == 0);  // 2%
  EXPECT_GT(os.predict(0, SwitchType::kNone), os.predict(3, SwitchType::kNone));
  EXPECT_NEAR(os.predict(0, SwitchType::kNone), 0.1, 0.01);
}

TEST(OsModel, SmoothingPullsSparseBucketsToGlobal) {
  OverallStatsModel os;
  for (int i = 0; i < 10000; ++i) os.observe(1, SwitchType::kNone, i % 20 == 0);  // 5%
  os.observe(2, SwitchType::kUp, true);  // single catastrophic observation
  // Smoothed rate must be far below 1.0.
  EXPECT_LT(os.predict(2, SwitchType::kUp), 0.15);
}

TEST(OsModel, SwitchTypeClassification) {
  sim::SessionResult s;
  sim::SegmentRecord a, b, c, d;
  a.level = 1;
  b.level = 1;
  c.level = 3;
  d.level = 0;
  s.segments = {a, b, c, d};
  EXPECT_EQ(switch_type(s, 0), SwitchType::kNone);
  EXPECT_EQ(switch_type(s, 1), SwitchType::kNone);
  EXPECT_EQ(switch_type(s, 2), SwitchType::kUp);
  EXPECT_EQ(switch_type(s, 3), SwitchType::kDown);
}

TEST(OsModel, FitSessionCountsExitOnLastSegment) {
  OverallStatsModel os;
  sim::SessionResult s;
  sim::SegmentRecord a, b;
  a.level = 0;
  b.level = 0;
  s.segments = {a, b};
  s.exited = true;
  os.fit_session(s);
  EXPECT_EQ(os.observations(), 2u);
  EXPECT_NEAR(os.global_rate(), 0.5, 1e-12);
}

// -- HybridExitPredictor --------------------------------------------------------

TEST(Hybrid, UsesOsOnlyWithoutStall) {
  Rng rng(8);
  auto net = std::make_shared<StallExitNet>(rng);
  auto os = std::make_shared<OverallStatsModel>();
  for (int i = 0; i < 1000; ++i) os->observe(2, SwitchType::kNone, i % 25 == 0);  // 4%
  const HybridExitPredictor hybrid(net, os);

  EngagementState state;
  state.begin_session();
  auto seg = make_segment(1850.0, 3000.0, 0.0);
  state.on_segment(seg, 1.0);
  const double p = hybrid.predict(state, seg, SwitchType::kNone);
  EXPECT_NEAR(p, os->predict(2, SwitchType::kNone), 1e-12);
}

TEST(Hybrid, AddsNnTermOnStall) {
  Rng rng(9);
  auto net = std::make_shared<StallExitNet>(rng);
  auto os = std::make_shared<OverallStatsModel>();
  const HybridExitPredictor hybrid(net, os);

  EngagementState state;
  state.begin_session();
  auto seg = make_segment(1850.0, 3000.0, 4.0);
  state.on_segment(seg, 1.0);
  const double p = hybrid.predict(state, seg, SwitchType::kNone);
  const double os_only = os->predict(2, SwitchType::kNone);
  EXPECT_GT(p, os_only);  // untrained net adds a positive probability mass
  EXPECT_LE(p, 1.0);
}

TEST(PredictorExitModelBridge, ReSeedsEachSession) {
  Rng rng(10);
  auto net = std::make_shared<StallExitNet>(rng);
  auto os = std::make_shared<OverallStatsModel>();
  EngagementState seed;
  seed.begin_session();
  seed.on_segment(make_segment(750.0, 500.0, 5.0), 1.0);  // history with a stall
  PredictorExitModel bridge(HybridExitPredictor(net, os), seed, 1.0);

  bridge.begin_session();
  const double p1 = bridge.exit_probability(make_segment(750.0, 500.0, 1.0));
  bridge.begin_session();
  const double p2 = bridge.exit_probability(make_segment(750.0, 500.0, 1.0));
  EXPECT_DOUBLE_EQ(p1, p2);  // identical seed -> identical first prediction
}

// -- Dataset tooling -------------------------------------------------------------

TEST(Dataset, FiltersAreNested) {
  Rng rng(11);
  DatasetGenConfig cfg;
  cfg.users = 8;
  cfg.sessions_per_user = 6;
  cfg.filter = DatasetFilter::kAll;
  const Dataset all = generate_dataset(cfg, rng);
  Rng rng2(11);
  cfg.filter = DatasetFilter::kEvent;
  const Dataset event = generate_dataset(cfg, rng2);
  Rng rng3(11);
  cfg.filter = DatasetFilter::kStall;
  const Dataset stall = generate_dataset(cfg, rng3);
  EXPECT_GT(all.size(), event.size());
  EXPECT_GE(event.size(), stall.size());
  EXPECT_GT(stall.size(), 0u);
}

TEST(Dataset, BalanceReachesParity) {
  Dataset d;
  nn::Tensor f({kChannels, kHistoryLen});
  for (int i = 0; i < 90; ++i) d.samples.push_back({f, false});
  for (int i = 0; i < 10; ++i) d.samples.push_back({f, true});
  Rng rng(12);
  const Dataset b = balance(d, rng);
  EXPECT_EQ(b.positives(), 10u);
  EXPECT_EQ(b.negatives(), 10u);
}

TEST(Dataset, StratifiedSplitPreservesClassFractions) {
  Dataset d;
  nn::Tensor f({kChannels, kHistoryLen});
  for (int i = 0; i < 80; ++i) d.samples.push_back({f, false});
  for (int i = 0; i < 20; ++i) d.samples.push_back({f, true});
  Rng rng(13);
  const auto split = stratified_split(d, 0.8, rng);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.positives(), 16u);
  EXPECT_EQ(split.test.positives(), 4u);
}

TEST(Dataset, MetricsOnPerfectPredictor) {
  // evaluate() confusion accounting on trivially separable data.
  Rng rng(14);
  StallExitNet net(rng);
  Dataset train;
  Rng data(15);
  for (int i = 0; i < 200; ++i) {
    nn::Tensor f({kChannels, kHistoryLen});
    const bool label = i % 2 == 0;
    f.at(2, 7) = label ? 1.0 : 0.0;
    train.samples.push_back({f, label});
  }
  TrainConfig cfg;
  cfg.epochs = 10;
  train_exit_net(net, train, cfg, rng);
  const auto m = evaluate(net, train);
  EXPECT_EQ(m.true_pos + m.false_pos + m.true_neg + m.false_neg, 200u);
  EXPECT_GT(m.accuracy, 0.97);
}

TEST(Dataset, FilterNames) {
  EXPECT_STREQ(filter_name(DatasetFilter::kAll), "ALL");
  EXPECT_STREQ(filter_name(DatasetFilter::kEvent), "Event");
  EXPECT_STREQ(filter_name(DatasetFilter::kStall), "Stall");
}

}  // namespace
}  // namespace lingxi::predictor
