// Exhaustive scalar-vs-batched bitwise parity for the batched inference
// engine: nn layers (Dense, Conv1D, activations), the stall-exit net, the
// full hybrid predictor, and the engagement-state feature cache the batched
// assembly path relies on. "Bitwise" means EXPECT_EQ on doubles — the
// batched kernels must reorder no accumulation, which is what keeps batched
// fleet checksums identical to the scalar path (Low & Lapsley's lesson:
// "equivalent" reformulations drift unless parity is pinned exactly).
//
// Batch sizes cover 1, 2, 7 (odd remainder against the 8-row block of
// Dense::forward_batch), 64, and the empty batch.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/tensor.h"
#include "predictor/engagement_state.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"

namespace lingxi {
namespace {

constexpr std::size_t kBatchSizes[] = {0, 1, 2, 7, 64};

std::vector<double> random_values(std::size_t n, Rng& rng, double lo = -2.0,
                                  double hi = 2.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

TEST(DenseBatch, BitwiseParityAcrossBatchSizes) {
  Rng rng(42);
  constexpr std::size_t kIn = 13, kOut = 9;
  nn::Dense layer(kIn, kOut, rng);
  for (const std::size_t batch : kBatchSizes) {
    const std::vector<double> in = random_values(batch * kIn, rng);
    std::vector<double> want;
    want.reserve(batch * kOut);
    for (std::size_t b = 0; b < batch; ++b) {
      const nn::Tensor out = layer.forward(
          nn::Tensor({kIn}, {in.begin() + b * kIn, in.begin() + (b + 1) * kIn}));
      for (std::size_t o = 0; o < kOut; ++o) want.push_back(out[o]);
    }
    std::vector<double> got(batch * kOut, -1.0);
    layer.forward_batch({in.data(), batch, kIn}, {got.data(), batch, kOut});
    for (std::size_t i = 0; i < batch * kOut; ++i) {
      EXPECT_EQ(got[i], want[i]) << "batch " << batch << " element " << i;
    }
  }
}

TEST(DenseBatch, StridedViewsMatchContiguous) {
  Rng rng(7);
  constexpr std::size_t kIn = 6, kOut = 4, kBatch = 7;
  constexpr std::size_t kInStride = 11, kOutStride = 5;
  nn::Dense layer(kIn, kOut, rng);
  const std::vector<double> in = random_values(kBatch * kInStride, rng);
  std::vector<double> got(kBatch * kOutStride, -1.0);
  layer.forward_batch({in.data(), kBatch, kIn, kInStride},
                      {got.data(), kBatch, kOut, kOutStride});
  for (std::size_t b = 0; b < kBatch; ++b) {
    const nn::Tensor out = layer.forward(nn::Tensor(
        {kIn}, {in.begin() + b * kInStride, in.begin() + b * kInStride + kIn}));
    for (std::size_t o = 0; o < kOut; ++o) {
      EXPECT_EQ(got[b * kOutStride + o], out[o]) << "row " << b << " col " << o;
    }
  }
}

TEST(DenseBatch, SimdPanelKernelBitwiseParity) {
  // Batches of >= 8 rows route full blocks through the SIMD panel kernel
  // (lanes across rows, interleaved panel loads); tails fall back to the
  // scalar block templates. Parity must hold bitwise at sizes that mix both
  // paths and at an in_features large enough to exercise long accumulation
  // chains (the fc1-like shape where the kernel matters).
  Rng rng(77);
  constexpr std::size_t kIn = 57, kOut = 11;
  nn::Dense layer(kIn, kOut, rng);
  for (const std::size_t batch : {8, 9, 16, 63, 129}) {
    const std::vector<double> in = random_values(batch * kIn, rng);
    std::vector<double> got(batch * kOut, -1.0);
    layer.forward_batch({in.data(), batch, kIn}, {got.data(), batch, kOut});
    for (std::size_t b = 0; b < batch; ++b) {
      const nn::Tensor want = layer.forward(
          nn::Tensor({kIn}, {in.begin() + b * kIn, in.begin() + (b + 1) * kIn}));
      for (std::size_t o = 0; o < kOut; ++o) {
        EXPECT_EQ(got[b * kOut + o], want[o]) << "batch " << batch << " row " << b
                                              << " col " << o;
      }
    }
  }
}

TEST(DenseBatch, SimdPanelKernelStridedViews) {
  // The panel gather reads through the view's row stride; strided input and
  // output must match the contiguous result exactly, including the 8-row
  // SIMD block (9 rows = one SIMD block + one scalar tail row).
  Rng rng(78);
  constexpr std::size_t kIn = 19, kOut = 6, kBatch = 9;
  constexpr std::size_t kInStride = 23, kOutStride = 10;
  nn::Dense layer(kIn, kOut, rng);
  const std::vector<double> in = random_values(kBatch * kInStride, rng);
  std::vector<double> got(kBatch * kOutStride, -1.0);
  layer.forward_batch({in.data(), kBatch, kIn, kInStride},
                      {got.data(), kBatch, kOut, kOutStride});
  for (std::size_t b = 0; b < kBatch; ++b) {
    const nn::Tensor want = layer.forward(nn::Tensor(
        {kIn}, {in.begin() + b * kInStride, in.begin() + b * kInStride + kIn}));
    for (std::size_t o = 0; o < kOut; ++o) {
      EXPECT_EQ(got[b * kOutStride + o], want[o]) << "row " << b << " col " << o;
    }
  }
}

TEST(DenseBatch, ForcedIsaBitwiseParity) {
  // Every dispatchable ISA must produce byte-identical outputs: lanes run
  // across batch rows, never along the reduction, so changing the vector
  // width changes nothing about any row's accumulation order. Sweeps every
  // supported ISA (skipping unsupported ones) over batch sizes covering the
  // scalar path, padded partial panels (2..7 rows) and full 8-row panels,
  // then restores the dispatch default.
  const nn::DenseIsa before = nn::dense_isa();
  Rng rng(91);
  constexpr std::size_t kIn = 160, kOut = 17;
  nn::Dense layer(kIn, kOut, rng);
  for (const std::size_t batch : {1, 2, 5, 8, 9, 24, 63}) {
    const std::vector<double> in = random_values(batch * kIn, rng);
    ASSERT_EQ(nn::set_dense_isa_for_testing(nn::DenseIsa::kScalar),
              nn::DenseIsa::kScalar);
    std::vector<double> want(batch * kOut, -1.0);
    layer.forward_batch({in.data(), batch, kIn}, {want.data(), batch, kOut});
    for (const nn::DenseIsa isa : {nn::DenseIsa::kSse2, nn::DenseIsa::kAvx2,
                                   nn::DenseIsa::kAvx512}) {
      if (!nn::dense_isa_supported(isa)) continue;
      ASSERT_EQ(nn::set_dense_isa_for_testing(isa), isa);
      std::vector<double> got(batch * kOut, -2.0);
      layer.forward_batch({in.data(), batch, kIn}, {got.data(), batch, kOut});
      for (std::size_t i = 0; i < batch * kOut; ++i) {
        ASSERT_EQ(got[i], want[i]) << nn::dense_isa_name(isa) << " batch " << batch
                                   << " element " << i;
      }
    }
  }
  nn::set_dense_isa_for_testing(before);
}

TEST(DenseIsa, ClampsToSupportAndReportsNames) {
  const nn::DenseIsa before = nn::dense_isa();
  EXPECT_STREQ(nn::dense_isa_name(nn::DenseIsa::kScalar), "scalar");
  EXPECT_STREQ(nn::dense_isa_name(nn::DenseIsa::kSse2), "sse2");
  EXPECT_STREQ(nn::dense_isa_name(nn::DenseIsa::kAvx2), "avx2");
  EXPECT_STREQ(nn::dense_isa_name(nn::DenseIsa::kAvx512), "avx512");
  EXPECT_TRUE(nn::dense_isa_supported(nn::DenseIsa::kScalar));
  // Requesting any ISA yields a supported one no wider than the request.
  for (const nn::DenseIsa isa : {nn::DenseIsa::kScalar, nn::DenseIsa::kSse2,
                                 nn::DenseIsa::kAvx2, nn::DenseIsa::kAvx512}) {
    const nn::DenseIsa got = nn::set_dense_isa_for_testing(isa);
    EXPECT_TRUE(nn::dense_isa_supported(got));
    EXPECT_LE(static_cast<int>(got), static_cast<int>(isa));
    EXPECT_EQ(nn::dense_isa(), got);
  }
  nn::set_dense_isa_for_testing(before);
}

TEST(Conv1DBatch, BitwiseParityAcrossBatchSizes) {
  Rng rng(17);
  constexpr std::size_t kInCh = 2, kOutCh = 5, kKernel = 3, kLen = 10;
  constexpr std::size_t kInCols = kInCh * kLen;
  constexpr std::size_t kOutCols = kOutCh * (kLen - kKernel + 1);
  nn::Conv1D layer(kInCh, kOutCh, kKernel, rng);
  for (const std::size_t batch : kBatchSizes) {
    const std::vector<double> in = random_values(batch * kInCols, rng);
    std::vector<double> want;
    want.reserve(batch * kOutCols);
    for (std::size_t b = 0; b < batch; ++b) {
      const nn::Tensor out = layer.forward(nn::Tensor(
          {kInCh, kLen}, {in.begin() + b * kInCols, in.begin() + (b + 1) * kInCols}));
      for (std::size_t i = 0; i < kOutCols; ++i) want.push_back(out[i]);
    }
    std::vector<double> got(batch * kOutCols, -1.0);
    layer.forward_batch({in.data(), batch, kInCols}, {got.data(), batch, kOutCols});
    for (std::size_t i = 0; i < batch * kOutCols; ++i) {
      EXPECT_EQ(got[i], want[i]) << "batch " << batch << " element " << i;
    }
  }
}

TEST(ActivationBatch, ReluAndSoftmaxRowsMatchScalar) {
  Rng rng(23);
  constexpr std::size_t kCols = 5;
  for (const std::size_t batch : kBatchSizes) {
    const std::vector<double> in = random_values(batch * kCols, rng, -3.0, 3.0);

    std::vector<double> relu_got = in;
    nn::relu_rows({relu_got.data(), batch, kCols});
    std::vector<double> soft_got = in;
    nn::softmax_rows({soft_got.data(), batch, kCols});

    nn::ReLU relu;
    for (std::size_t b = 0; b < batch; ++b) {
      const nn::Tensor row(
          {kCols}, {in.begin() + b * kCols, in.begin() + (b + 1) * kCols});
      const nn::Tensor relu_want = relu.forward(row);
      const nn::Tensor soft_want = nn::softmax(row);
      for (std::size_t i = 0; i < kCols; ++i) {
        EXPECT_EQ(relu_got[b * kCols + i], relu_want[i]);
        EXPECT_EQ(soft_got[b * kCols + i], soft_want[i]);
      }
    }
  }
}

TEST(StallExitNetBatch, BitwiseParityAcrossBatchSizes) {
  Rng rng(99);
  predictor::StallExitNet net(rng);
  constexpr std::size_t kFeat = predictor::kChannels * predictor::kHistoryLen;
  predictor::StallExitNet::BatchWorkspace ws;  // shared across calls
  for (const std::size_t batch : kBatchSizes) {
    const std::vector<double> feats = random_values(batch * kFeat, rng, 0.0, 1.0);
    std::vector<double> got(batch, -1.0);
    net.predict_batch({feats.data(), batch, kFeat}, got.data(), &ws);
    for (std::size_t b = 0; b < batch; ++b) {
      const double want = net.predict(nn::Tensor(
          {predictor::kChannels, predictor::kHistoryLen},
          {feats.begin() + b * kFeat, feats.begin() + (b + 1) * kFeat}));
      EXPECT_EQ(got[b], want) << "batch " << batch << " row " << b;
    }
  }
}

sim::SegmentRecord make_segment(std::size_t index, double bitrate, double throughput,
                                double stall) {
  sim::SegmentRecord seg;
  seg.index = index;
  seg.level = index % 4;
  seg.bitrate = bitrate;
  seg.throughput = throughput;
  seg.stall_time = stall;
  return seg;
}

/// A deterministic engagement history with stalls and stall exits mixed in.
predictor::EngagementState make_state(std::uint64_t seed, std::size_t segments) {
  Rng rng(seed);
  predictor::EngagementState state;
  state.begin_session();
  for (std::size_t i = 0; i < segments; ++i) {
    const double stall = rng.bernoulli(0.3) ? rng.uniform(0.1, 4.0) : 0.0;
    state.on_segment(
        make_segment(i, rng.uniform(300.0, 4000.0), rng.uniform(500.0, 8000.0), stall),
        1.0);
    if (stall > 0.0 && rng.bernoulli(0.25)) state.on_stall_exit();
  }
  return state;
}

TEST(EngagementFeatures, WriteFeaturesMatchesTensorAndCacheStaysFresh) {
  // One state queried after every segment (long-term row cache constantly
  // reused/invalidated) must match a twin fed the same history but queried
  // only once at each step from scratch.
  Rng rng(5);
  predictor::EngagementState cached;
  cached.begin_session();
  predictor::EngagementState shadow;
  shadow.begin_session();
  for (std::size_t i = 0; i < 40; ++i) {
    const double stall = rng.bernoulli(0.4) ? rng.uniform(0.06, 3.0) : 0.0;
    const auto seg =
        make_segment(i, rng.uniform(300.0, 4000.0), rng.uniform(500.0, 8000.0), stall);
    cached.on_segment(seg, 1.0);
    shadow.on_segment(seg, 1.0);
    if (stall > 0.0 && rng.bernoulli(0.3)) {
      cached.on_stall_exit();
      shadow.on_stall_exit();
    }

    const nn::Tensor from_cached = cached.features();  // exercises the cache
    const nn::Tensor from_shadow = shadow.features();
    double raw[predictor::kChannels * predictor::kHistoryLen];
    cached.write_features(raw);
    ASSERT_EQ(from_cached.size(), from_shadow.size());
    for (std::size_t k = 0; k < from_cached.size(); ++k) {
      EXPECT_EQ(from_cached[k], from_shadow[k]) << "segment " << i << " feature " << k;
      EXPECT_EQ(raw[k], from_shadow[k]) << "segment " << i << " feature " << k;
    }
  }
}

TEST(HybridPredictorBatch, BitwiseParityAcrossBatchSizes) {
  Rng rng(123);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os = std::make_shared<predictor::OverallStatsModel>();
  // Seed the OS model so its buckets are non-trivial.
  for (std::size_t i = 0; i < 500; ++i) {
    os->observe(i % 4, static_cast<predictor::SwitchType>(i % 3), rng.bernoulli(0.05));
  }
  const predictor::HybridExitPredictor predictor(net, os);

  // A pool of distinct states; queries mix stalled and non-stalled segments.
  std::vector<predictor::EngagementState> states;
  for (std::uint64_t s = 0; s < 9; ++s) states.push_back(make_state(1000 + s, 30));

  predictor::HybridExitPredictor::BatchScratch scratch;
  for (const std::size_t batch : kBatchSizes) {
    std::vector<predictor::HybridExitPredictor::ExitQuery> queries;
    for (std::size_t i = 0; i < batch; ++i) {
      predictor::HybridExitPredictor::ExitQuery q;
      q.state = &states[i % states.size()];
      q.level = i % 4;
      q.stall_time = i % 3 == 0 ? 0.0 : 0.1 + 0.2 * static_cast<double>(i % 5);
      q.sw = static_cast<predictor::SwitchType>(i % 3);
      queries.push_back(q);
    }
    std::vector<double> got(batch, -1.0);
    predictor.predict_batch(batch, queries.data(), got.data(), &scratch);
    for (std::size_t i = 0; i < batch; ++i) {
      EXPECT_EQ(got[i], predictor.predict(queries[i]))
          << "batch " << batch << " query " << i;
    }
  }
}

}  // namespace
}  // namespace lingxi
