// Unit tests for lingxi_trace: ladders, videos, bandwidth models,
// population sampling, trace file I/O.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "trace/bandwidth.h"
#include "trace/population.h"
#include "trace/trace_io.h"
#include "trace/video.h"

namespace lingxi::trace {
namespace {

TEST(BitrateLadder, DefaultLadderShape) {
  const auto ladder = BitrateLadder::default_ladder();
  EXPECT_EQ(ladder.levels(), 4u);
  EXPECT_DOUBLE_EQ(ladder.min_bitrate(), 350.0);
  EXPECT_DOUBLE_EQ(ladder.max_bitrate(), 4300.0);
}

TEST(BitrateLadder, QualityMetricsMonotone) {
  const auto ladder = BitrateLadder::default_ladder();
  for (auto metric : {QualityMetric::kLinearMbps, QualityMetric::kLog, QualityMetric::kLevel}) {
    for (std::size_t l = 1; l < ladder.levels(); ++l) {
      EXPECT_GT(ladder.quality(l, metric), ladder.quality(l - 1, metric));
    }
  }
}

TEST(BitrateLadder, LinearQualityIsMbps) {
  const auto ladder = BitrateLadder::default_ladder();
  EXPECT_DOUBLE_EQ(ladder.quality(3, QualityMetric::kLinearMbps), 4.3);
  EXPECT_DOUBLE_EQ(ladder.max_quality(QualityMetric::kLinearMbps), 4.3);
}

TEST(BitrateLadder, LogQualityZeroAtBottom) {
  const auto ladder = BitrateLadder::default_ladder();
  EXPECT_DOUBLE_EQ(ladder.quality(0, QualityMetric::kLog), 0.0);
}

TEST(BitrateLadder, HighestLevelBelow) {
  const auto ladder = BitrateLadder::default_ladder();
  EXPECT_EQ(ladder.highest_level_below(100.0), 0u);   // below all -> lowest
  EXPECT_EQ(ladder.highest_level_below(350.0), 0u);
  EXPECT_EQ(ladder.highest_level_below(800.0), 1u);
  EXPECT_EQ(ladder.highest_level_below(4300.0), 3u);
  EXPECT_EQ(ladder.highest_level_below(1e9), 3u);
}

TEST(TierNames, AllDistinct) {
  EXPECT_STREQ(tier_name(QualityTier::kLD), "LD");
  EXPECT_STREQ(tier_name(QualityTier::kFullHD), "Full HD");
}

TEST(Video, CbrSegmentSizes) {
  const Video v(BitrateLadder::default_ladder(), 10, 1.0);
  EXPECT_EQ(v.segment_count(), 10u);
  EXPECT_DOUBLE_EQ(v.duration(), 10.0);
  // 1s at 350 kbps = 43750 bytes.
  EXPECT_DOUBLE_EQ(v.segment_size(0, 0), 43750.0);
  EXPECT_DOUBLE_EQ(v.segment_size(9, 3), 537500.0);
}

TEST(Video, VbrMultiplierBounded) {
  Rng rng(1);
  const Video v = Video::vbr(BitrateLadder::default_ladder(), 200, 1.0, 0.3, rng);
  const double nominal = 43750.0;
  bool saw_variation = false;
  for (std::size_t i = 0; i < v.segment_count(); ++i) {
    const double ratio = v.segment_size(i, 0) / nominal;
    EXPECT_GE(ratio, 0.5);
    EXPECT_LE(ratio, 2.0);
    if (std::fabs(ratio - 1.0) > 0.01) saw_variation = true;
  }
  EXPECT_TRUE(saw_variation);
}

TEST(Video, VbrZeroSigmaIsCbr) {
  Rng rng(2);
  const Video v = Video::vbr(BitrateLadder::default_ladder(), 10, 1.0, 0.0, rng);
  for (std::size_t i = 0; i < v.segment_count(); ++i) {
    EXPECT_DOUBLE_EQ(v.segment_size(i, 2), v.segment_size(0, 2));
  }
}

TEST(Video, VbrScalesAllLevelsTogether) {
  Rng rng(3);
  const Video v = Video::vbr(BitrateLadder::default_ladder(), 20, 1.0, 0.2, rng);
  for (std::size_t i = 0; i < v.segment_count(); ++i) {
    const double r0 = v.segment_size(i, 0) / 43750.0;
    const double r3 = v.segment_size(i, 3) / 537500.0;
    EXPECT_NEAR(r0, r3, 1e-9);
  }
}

TEST(VideoGenerator, DurationsWithinBounds) {
  VideoGenerator::Config cfg;
  cfg.min_duration = 5.0;
  cfg.max_duration = 120.0;
  const VideoGenerator gen(cfg);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Video v = gen.sample(rng);
    EXPECT_GE(v.duration(), 5.0 - 1e-9);
    EXPECT_LE(v.duration(), 120.0 + 1e-9);
  }
}

TEST(VideoGenerator, MeanDurationRoughlyMatches) {
  VideoGenerator::Config cfg;
  cfg.mean_duration = 45.0;
  const VideoGenerator gen(cfg);
  Rng rng(5);
  double total = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) total += gen.sample(rng).duration();
  EXPECT_NEAR(total / n, 45.0, 6.0);  // clamping trims the lognormal tails
}

TEST(ConstantBandwidth, AlwaysSame) {
  ConstantBandwidth bw(1234.0);
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(bw.sample(i * 1.0, rng), 1234.0);
}

TEST(NormalBandwidth, MeanAndFloor) {
  NormalBandwidth bw(1000.0, 400.0, 50.0);
  Rng rng(7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Kbps s = bw.sample(0.0, rng);
    EXPECT_GE(s, 50.0);
    sum += s;
  }
  // Truncation at the floor biases the mean slightly upward.
  EXPECT_NEAR(sum / n, 1000.0, 30.0);
}

TEST(GaussMarkovBandwidth, MeanReversion) {
  GaussMarkovBandwidth::Config cfg;
  cfg.mean = 3000.0;
  cfg.rho = 0.8;
  cfg.noise_sd = 300.0;
  GaussMarkovBandwidth bw(cfg);
  Rng rng(8);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += bw.sample(0.0, rng);
  EXPECT_NEAR(sum / n, 3000.0, 60.0);
}

TEST(GaussMarkovBandwidth, ConsecutiveSamplesCorrelated) {
  GaussMarkovBandwidth::Config cfg;
  cfg.mean = 3000.0;
  cfg.rho = 0.95;
  cfg.noise_sd = 200.0;
  GaussMarkovBandwidth bw(cfg);
  Rng rng(9);
  double prev = bw.sample(0.0, rng);
  double num = 0.0, den = 0.0;
  double mean_est = 3000.0;
  for (int i = 0; i < 20000; ++i) {
    const double cur = bw.sample(0.0, rng);
    num += (prev - mean_est) * (cur - mean_est);
    den += (prev - mean_est) * (prev - mean_est);
    prev = cur;
  }
  EXPECT_GT(num / den, 0.85);
}

TEST(GaussMarkovBandwidth, RespectsFloor) {
  GaussMarkovBandwidth::Config cfg;
  cfg.mean = 100.0;
  cfg.rho = 0.5;
  cfg.noise_sd = 500.0;
  cfg.floor = 50.0;
  GaussMarkovBandwidth bw(cfg);
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(bw.sample(0.0, rng), 50.0);
}

TEST(SteppedBandwidth, Schedule) {
  SteppedBandwidth bw({{0.0, 1000.0}, {10.0, 200.0}, {20.0, 5000.0}});
  Rng rng(11);
  EXPECT_DOUBLE_EQ(bw.sample(0.0, rng), 1000.0);
  EXPECT_DOUBLE_EQ(bw.sample(9.99, rng), 1000.0);
  EXPECT_DOUBLE_EQ(bw.sample(10.0, rng), 200.0);
  EXPECT_DOUBLE_EQ(bw.sample(15.0, rng), 200.0);
  EXPECT_DOUBLE_EQ(bw.sample(25.0, rng), 5000.0);
}

TEST(TraceBandwidth, HoldAndLoop) {
  TraceBandwidth bw({{0.0, 100.0}, {5.0, 200.0}, {10.0, 300.0}});
  Rng rng(12);
  EXPECT_DOUBLE_EQ(bw.sample(0.0, rng), 100.0);
  EXPECT_DOUBLE_EQ(bw.sample(4.0, rng), 100.0);
  EXPECT_DOUBLE_EQ(bw.sample(5.0, rng), 200.0);
  EXPECT_DOUBLE_EQ(bw.sample(10.0, rng), 300.0);
  // Loops: t=12 wraps to t=2.
  EXPECT_DOUBLE_EQ(bw.sample(12.0, rng), 100.0);
  EXPECT_DOUBLE_EQ(bw.sample(16.0, rng), 200.0);
}

TEST(BandwidthClone, IndependentState) {
  GaussMarkovBandwidth::Config cfg;
  GaussMarkovBandwidth bw(cfg);
  Rng rng(13);
  bw.sample(0.0, rng);
  auto copy = bw.clone();
  // Clone starts fresh; both must keep producing valid samples.
  EXPECT_GT(copy->sample(0.0, rng), 0.0);
  EXPECT_GT(bw.sample(0.0, rng), 0.0);
}

TEST(TraceIo, ParseValid) {
  const auto r = parse_trace("0 1000\n1.5 2000 # comment\n# full comment line\n3 1500\n");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_DOUBLE_EQ((*r)[1].time, 1.5);
  EXPECT_DOUBLE_EQ((*r)[1].rate, 2000.0);
}

TEST(TraceIo, RejectsNonIncreasingTime) {
  const auto r = parse_trace("0 1000\n0 2000\n");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, Error::Code::kParse);
}

TEST(TraceIo, RejectsNonPositiveRate) {
  const auto r = parse_trace("0 1000\n1 -5\n");
  ASSERT_FALSE(r.has_value());
}

TEST(TraceIo, RejectsMissingRate) {
  const auto r = parse_trace("0\n");
  ASSERT_FALSE(r.has_value());
}

TEST(TraceIo, RejectsEmpty) {
  const auto r = parse_trace("# nothing here\n");
  ASSERT_FALSE(r.has_value());
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lingxi_trace_test.txt";
  std::vector<TraceBandwidth::Point> points{{0.0, 500.0}, {2.0, 1500.0}, {4.0, 800.0}};
  ASSERT_TRUE(save_trace_file(path, points).ok());
  const auto r = load_trace_file(path);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_DOUBLE_EQ((*r)[2].rate, 800.0);
}

TEST(TraceIo, MissingFileIsIoError) {
  const auto r = load_trace_file("/nonexistent/dir/trace.txt");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, Error::Code::kIo);
}

TEST(Population, SamplesWithinBounds) {
  PopulationModel model;
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    const auto p = model.sample(rng);
    EXPECT_GE(p.mean_bandwidth, model.config().min_bandwidth);
    EXPECT_LE(p.mean_bandwidth, model.config().max_bandwidth);
  }
}

TEST(Population, RoughlyTenPercentBelowMaxBitrate) {
  // Fig. 2(a): ~10% of users sit below the ladder's max bitrate (4300 kbps).
  PopulationModel model;
  Rng rng(15);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng).mean_bandwidth < 4300.0) ++below;
  }
  const double frac = static_cast<double>(below) / n;
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.20);
}

TEST(Population, SessionModelUsable) {
  PopulationModel model;
  Rng rng(16);
  const auto profile = model.sample(rng);
  auto session = profile.make_session_model();
  for (int i = 0; i < 100; ++i) EXPECT_GT(session->sample(0.0, rng), 0.0);
}

TEST(BandwidthBuckets, IndexAndLabels) {
  EXPECT_EQ(bandwidth_bucket(0.0), 0u);
  EXPECT_EQ(bandwidth_bucket(1999.0), 0u);
  EXPECT_EQ(bandwidth_bucket(2000.0), 1u);
  EXPECT_EQ(bandwidth_bucket(9999.0), 4u);
  EXPECT_EQ(bandwidth_bucket(50000.0), 5u);
  EXPECT_EQ(bucket_label(0), "0-2 Mbps");
  EXPECT_EQ(bucket_label(5), "10+ Mbps");
}

}  // namespace
}  // namespace lingxi::trace
