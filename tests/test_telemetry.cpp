// Telemetry subsystem: capture determinism (archive bytes independent of
// thread count and runner shard size), replay fidelity (bitwise accumulator
// reconstruction), archive range scans, and corruption detection.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "abr/hyb.h"
#include "logstore/record.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"
#include "sim/fleet_runner.h"
#include "telemetry/capture.h"
#include "telemetry/replay.h"

namespace lingxi {
namespace {

sim::FleetConfig small_fleet() {
  sim::FleetConfig cfg;
  cfg.users = 24;
  cfg.days = 2;
  cfg.sessions_per_user_day = 4;
  cfg.users_per_shard = 3;
  cfg.warmup_sessions = 2;
  cfg.drift_user_tolerance = true;
  cfg.session_jitter_sigma = 0.3;
  cfg.network.median_bandwidth = 1500.0;
  cfg.network.sigma = 0.5;
  cfg.network.relative_sd = 0.4;
  cfg.video.mean_duration = 20.0;
  return cfg;
}

sim::FleetRunner::AbrFactory hyb_factory() {
  return [] { return std::make_unique<abr::Hyb>(); };
}

sim::FleetRunner::PredictorFactory test_predictor_factory() {
  Rng rng(1234);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os_model = std::make_shared<predictor::OverallStatsModel>();
  for (int i = 0; i < 200; ++i) {
    os_model->observe(1, predictor::SwitchType::kNone, i % 9 == 0);
  }
  return [net, os_model] { return predictor::HybridExitPredictor(net, os_model); };
}

sim::FleetConfig lingxi_fleet() {
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 8;
  cfg.users_per_shard = 2;
  cfg.network.median_bandwidth = 1000.0;  // stalls so the trigger fires
  cfg.enable_lingxi = true;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.lingxi.obo_rounds = 2;
  cfg.lingxi.monte_carlo.samples = 4;
  return cfg;
}

/// Run the fleet with a capture attached; returns the archive and optionally
/// the live accumulator.
telemetry::FleetArchive capture_fleet(sim::FleetConfig cfg, std::size_t threads,
                                      std::uint64_t seed,
                                      sim::FleetAccumulator* live = nullptr) {
  cfg.threads = threads;
  telemetry::ShardedCapture capture;
  sim::FleetRunner runner(cfg, hyb_factory());
  if (cfg.enable_lingxi) runner.set_predictor_factory(test_predictor_factory());
  runner.set_telemetry_sink(&capture);
  const auto acc = runner.run(seed);
  if (live) *live = acc;
  return capture.finish();
}

void expect_identical_archives(const telemetry::FleetArchive& a,
                               const telemetry::FleetArchive& b) {
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_EQ(a.manifest.encode(), b.manifest.encode());
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i], b.shards[i]) << "shard " << i;
  }
}

void expect_identical_accumulators(const sim::FleetAccumulator& a,
                                   const sim::FleetAccumulator& b) {
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.measured_sessions, b.measured_sessions);
  EXPECT_EQ(a.measured_completed, b.measured_completed);
  EXPECT_EQ(a.stall_events, b.stall_events);
  EXPECT_EQ(a.stall_exits, b.stall_exits);
  EXPECT_EQ(a.quality_switches, b.quality_switches);
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.watch_ticks, b.watch_ticks);
  EXPECT_EQ(a.stall_ticks, b.stall_ticks);
  EXPECT_EQ(a.startup_ticks, b.startup_ticks);
  EXPECT_EQ(a.bitrate_time_ticks, b.bitrate_time_ticks);
  EXPECT_EQ(a.lingxi_triggers, b.lingxi_triggers);
  EXPECT_EQ(a.lingxi_optimizations, b.lingxi_optimizations);
  EXPECT_EQ(a.lingxi_mc_evaluations, b.lingxi_mc_evaluations);
  EXPECT_EQ(a.adjusted_user_days, b.adjusted_user_days);
  EXPECT_EQ(a.overflowed, b.overflowed);
}

std::string fresh_dir(const std::string& name) {
  return ::testing::TempDir() + "/lingxi_telemetry_" + name;
}

TEST(ShardedCapture, ArchiveBytesIndependentOfThreadCount) {
  const auto reference = capture_fleet(small_fleet(), 1, 42);
  EXPECT_GT(reference.total_bytes(), 0u);
  for (std::size_t threads : {2, 8}) {
    expect_identical_archives(reference, capture_fleet(small_fleet(), threads, 42));
  }
}

TEST(ShardedCapture, ArchiveBytesIndependentOfRunnerShardSize) {
  const auto reference = capture_fleet(small_fleet(), 2, 42);
  for (std::size_t shard_users : {1, 5, 24, 1000}) {
    sim::FleetConfig cfg = small_fleet();
    cfg.users_per_shard = shard_users;
    expect_identical_archives(reference, capture_fleet(cfg, 2, 42));
  }
}

TEST(ShardedCapture, ArchiveBytesIndependentOfThreadCountWithLingXi) {
  const auto reference = capture_fleet(lingxi_fleet(), 1, 7);
  for (std::size_t threads : {2, 4}) {
    expect_identical_archives(reference, capture_fleet(lingxi_fleet(), threads, 7));
  }
}

TEST(ShardedCapture, DifferentSeedsProduceDifferentArchives) {
  EXPECT_NE(capture_fleet(small_fleet(), 2, 1).checksum(),
            capture_fleet(small_fleet(), 2, 2).checksum());
}

TEST(ShardedCapture, ShardFilesFollowArchiveGranularity) {
  sim::FleetConfig cfg = small_fleet();
  cfg.threads = 2;
  telemetry::ShardedCapture capture({/*users_per_shard=*/10});
  sim::FleetRunner runner(cfg, hyb_factory());
  runner.set_telemetry_sink(&capture);
  runner.run(3);
  const auto archive = capture.finish();
  ASSERT_EQ(archive.shards.size(), 3u);  // 24 users / 10 per shard
  EXPECT_EQ(archive.manifest.shards[0].user_count, 10u);
  EXPECT_EQ(archive.manifest.shards[2].user_count, 4u);
  EXPECT_EQ(archive.manifest.shards[1].first_user, 10u);
  // records per user: sessions + one user summary
  const std::uint64_t per_user = cfg.days * cfg.sessions_per_user_day + 1;
  EXPECT_EQ(archive.manifest.shards[0].record_count, 10 * per_user);
  EXPECT_EQ(capture.session_count(), cfg.users * cfg.days * cfg.sessions_per_user_day);
}

TEST(Replay, AccumulatorBitwiseMatchesLiveRun) {
  sim::FleetAccumulator live;
  const auto archive = capture_fleet(small_fleet(), 4, 99, &live);
  const std::string dir = fresh_dir("replay_plain");
  ASSERT_TRUE(archive.write(dir).ok());
  const auto replayed = telemetry::Replay::run(dir);
  ASSERT_TRUE(replayed.has_value()) << replayed.error().message;
  expect_identical_accumulators(live, replayed->fleet);
}

TEST(Replay, AccumulatorBitwiseMatchesLiveRunWithLingXi) {
  sim::FleetAccumulator live;
  const auto archive = capture_fleet(lingxi_fleet(), 3, 7, &live);
  EXPECT_GT(live.lingxi_triggers, 0u);
  const std::string dir = fresh_dir("replay_lingxi");
  ASSERT_TRUE(archive.write(dir).ok());
  const auto replayed = telemetry::Replay::run(dir);
  ASSERT_TRUE(replayed.has_value()) << replayed.error().message;
  expect_identical_accumulators(live, replayed->fleet);
}

TEST(Replay, DailyMetricsAndUserDaysCoverTheFleet) {
  sim::FleetAccumulator live;
  const sim::FleetConfig cfg = small_fleet();
  const auto archive = capture_fleet(cfg, 2, 11, &live);
  const std::string dir = fresh_dir("replay_metrics");
  ASSERT_TRUE(archive.write(dir).ok());
  telemetry::Replay::Options opts;
  opts.collect_watch_times = true;
  const auto replayed = telemetry::Replay::run(dir, opts);
  ASSERT_TRUE(replayed.has_value()) << replayed.error().message;

  ASSERT_EQ(replayed->daily.size(), cfg.days);
  std::size_t daily_sessions = 0;
  double daily_watch = 0.0;
  for (const auto& day : replayed->daily) {
    daily_sessions += day.sessions();
    daily_watch += day.total_watch_time();
  }
  EXPECT_EQ(daily_sessions, live.sessions);
  EXPECT_NEAR(daily_watch, live.total_watch_time(), 1e-6 * daily_watch + 1e-9);

  EXPECT_EQ(replayed->user_days.size(), cfg.users * cfg.days);
  EXPECT_EQ(replayed->watch_times.size(), live.sessions);
  std::uint64_t binned = 0;
  for (const auto& bin : replayed->exit_by_stall) binned += bin.sessions;
  EXPECT_EQ(binned, live.sessions);
}

TEST(ArchiveReader, PerUserScanReturnsOnlyThatUser) {
  const auto archive = capture_fleet(small_fleet(), 2, 5);
  const std::string dir = fresh_dir("scan_user");
  ASSERT_TRUE(archive.write(dir).ok());
  auto reader = telemetry::ArchiveReader::open(dir);
  ASSERT_TRUE(reader.has_value()) << reader.error().message;

  std::size_t sessions = 0, users = 0;
  const auto status = reader->scan_users(
      5, 5,
      [&](const telemetry::ArchiveSessionRecord& rec) {
        EXPECT_EQ(rec.user, 5u);
        EXPECT_EQ(rec.entry.user_id, 5u);
        ++sessions;
      },
      [&](const telemetry::ArchiveUserRecord& rec) {
        EXPECT_EQ(rec.user, 5u);
        ++users;
      });
  ASSERT_TRUE(status.ok()) << status.error().message;
  const sim::FleetConfig cfg = small_fleet();
  EXPECT_EQ(sessions, cfg.days * cfg.sessions_per_user_day);
  EXPECT_EQ(users, 1u);
}

TEST(ArchiveReader, PerDayScanReturnsOnlyThatDay) {
  const auto archive = capture_fleet(small_fleet(), 2, 5);
  const std::string dir = fresh_dir("scan_day");
  ASSERT_TRUE(archive.write(dir).ok());
  auto reader = telemetry::ArchiveReader::open(dir);
  ASSERT_TRUE(reader.has_value()) << reader.error().message;

  std::size_t sessions = 0;
  const auto status =
      reader->scan_days(1, 1, [&](const telemetry::ArchiveSessionRecord& rec) {
        EXPECT_EQ(rec.day, 1u);
        EXPECT_EQ(rec.entry.timestamp, 86400u + rec.session_in_day);
        ++sessions;
      });
  ASSERT_TRUE(status.ok()) << status.error().message;
  const sim::FleetConfig cfg = small_fleet();
  EXPECT_EQ(sessions, cfg.users * cfg.sessions_per_user_day);
}

TEST(ArchiveReader, MissingManifestIsIoError) {
  const auto opened = telemetry::ArchiveReader::open(fresh_dir("nonexistent"));
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.error().code, Error::Code::kIo);
}

TEST(ArchiveReader, DetectsFlippedByteInShard) {
  const auto archive = capture_fleet(small_fleet(), 1, 13);
  const std::string dir = fresh_dir("flip");
  ASSERT_TRUE(archive.write(dir).ok());
  const std::string shard_path = dir + "/" + telemetry::shard_filename(0);
  auto bytes = logstore::read_file(shard_path);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] ^= 0x01;
  ASSERT_TRUE(logstore::write_file(shard_path, *bytes).ok());

  const auto replayed = telemetry::Replay::run(dir);
  ASSERT_FALSE(replayed.has_value());
  EXPECT_EQ(replayed.error().code, Error::Code::kCorrupt);
}

TEST(ArchiveReader, DetectsTruncatedShard) {
  const auto archive = capture_fleet(small_fleet(), 1, 13);
  const std::string dir = fresh_dir("trunc");
  ASSERT_TRUE(archive.write(dir).ok());
  const std::string shard_path = dir + "/" + telemetry::shard_filename(0);
  auto bytes = logstore::read_file(shard_path);
  ASSERT_TRUE(bytes.has_value());
  bytes->resize(bytes->size() - 7);
  ASSERT_TRUE(logstore::write_file(shard_path, *bytes).ok());

  const auto replayed = telemetry::Replay::run(dir);
  ASSERT_FALSE(replayed.has_value());
  EXPECT_EQ(replayed.error().code, Error::Code::kCorrupt);
}

TEST(ArchiveReader, DetectsFlippedByteInManifest) {
  const auto archive = capture_fleet(small_fleet(), 1, 13);
  const std::string dir = fresh_dir("manifest-flip");
  ASSERT_TRUE(archive.write(dir).ok());
  const std::string path = dir + "/" + telemetry::manifest_filename();
  auto bytes = logstore::read_file(path);
  ASSERT_TRUE(bytes.has_value());
  // Flip one payload byte; the record CRC must catch it at open() instead of
  // scans running against a corrupt shard table.
  (*bytes)[bytes->size() / 2] ^= 0x04;
  ASSERT_TRUE(logstore::write_file(path, *bytes).ok());

  const auto opened = telemetry::ArchiveReader::open(dir);
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.error().code, Error::Code::kCorrupt);
}

TEST(ArchiveReader, DetectsManifestTruncatedMidShardEntry) {
  const auto archive = capture_fleet(small_fleet(), 1, 13);
  ASSERT_GE(archive.manifest.shards.size(), 1u);
  const std::string dir = fresh_dir("manifest-trunc");
  ASSERT_TRUE(archive.write(dir).ok());
  // Chop the payload mid shard-index entry and re-frame it with a valid
  // record CRC, so only the manifest decoder itself can reject it.
  auto payload = archive.manifest.encode();
  payload.resize(payload.size() - 12);
  std::vector<unsigned char> framed;
  logstore::write_record(framed, payload);
  ASSERT_TRUE(
      logstore::write_file(dir + "/" + telemetry::manifest_filename(), framed).ok());

  const auto opened = telemetry::ArchiveReader::open(dir);
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.error().code, Error::Code::kCorrupt);
}

TEST(ArchiveReader, RejectsShardTableNotCoveringUsers) {
  // A manifest whose shard table does not tile [0, users) would make every
  // scan silently yield nothing for the uncovered users; open() must reject
  // it as corrupt instead.
  const auto archive = capture_fleet(small_fleet(), 1, 13);
  const std::string dir = fresh_dir("manifest-holes");
  ASSERT_TRUE(archive.write(dir).ok());
  telemetry::ArchiveManifest manifest = archive.manifest;
  ASSERT_GE(manifest.shards.size(), 1u);
  manifest.shards.clear();  // claims users but covers none
  std::vector<unsigned char> framed;
  logstore::write_record(framed, manifest.encode());
  ASSERT_TRUE(
      logstore::write_file(dir + "/" + telemetry::manifest_filename(), framed).ok());

  const auto opened = telemetry::ArchiveReader::open(dir);
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.error().code, Error::Code::kCorrupt);
}

TEST(ArchiveReader, RejectsBadManifestVersion) {
  const auto archive = capture_fleet(small_fleet(), 1, 13);
  const std::string dir = fresh_dir("badversion");
  ASSERT_TRUE(archive.write(dir).ok());
  // Re-frame the manifest with its format_version field (leading u32 of the
  // payload) clobbered; the record CRC is recomputed so only the version
  // check can reject it.
  auto payload = archive.manifest.encode();
  payload[0] = 0x63;
  std::vector<unsigned char> framed;
  logstore::write_record(framed, payload);
  ASSERT_TRUE(
      logstore::write_file(dir + "/" + telemetry::manifest_filename(), framed).ok());

  const auto opened = telemetry::ArchiveReader::open(dir);
  ASSERT_FALSE(opened.has_value());
  EXPECT_EQ(opened.error().code, Error::Code::kCorrupt);
}

TEST(Replay, RejectsManifestDayCountDisagreeingWithShards) {
  const auto archive = capture_fleet(small_fleet(), 1, 13);
  const std::string dir = fresh_dir("daymismatch");
  ASSERT_TRUE(archive.write(dir).ok());
  // Rewrite the manifest claiming one day fewer than the shards contain.
  telemetry::ArchiveManifest manifest = archive.manifest;
  manifest.days -= 1;
  std::vector<unsigned char> framed;
  logstore::write_record(framed, manifest.encode());
  ASSERT_TRUE(
      logstore::write_file(dir + "/" + telemetry::manifest_filename(), framed).ok());

  const auto replayed = telemetry::Replay::run(dir);
  ASSERT_FALSE(replayed.has_value());
  EXPECT_EQ(replayed.error().code, Error::Code::kCorrupt);
}

TEST(ArchiveManifest, EncodeDecodeRoundTrip) {
  const auto archive = capture_fleet(small_fleet(), 1, 21);
  const auto decoded = telemetry::ArchiveManifest::decode(archive.manifest.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seed, 21u);
  EXPECT_EQ(decoded->users, archive.manifest.users);
  EXPECT_EQ(decoded->config_digest, archive.manifest.config_digest);
  ASSERT_EQ(decoded->shards.size(), archive.manifest.shards.size());
  EXPECT_EQ(decoded->shards.back().byte_count, archive.manifest.shards.back().byte_count);
}

TEST(ArchiveManifest, ConfigDigestIgnoresSchedulingKnobs) {
  sim::FleetConfig a = small_fleet();
  sim::FleetConfig b = small_fleet();
  b.threads = 16;
  b.users_per_shard = 1;
  EXPECT_EQ(telemetry::config_digest(a), telemetry::config_digest(b));
  b.users += 1;
  EXPECT_NE(telemetry::config_digest(a), telemetry::config_digest(b));
}

TEST(Replay, StallEventsCarryGroundTruthTolerance) {
  sim::FleetConfig cfg = lingxi_fleet();
  sim::FleetAccumulator live;
  const auto archive = capture_fleet(cfg, 2, 17, &live);
  const std::string dir = fresh_dir("stall_events");
  ASSERT_TRUE(archive.write(dir).ok());
  telemetry::Replay::Options opts;
  opts.collect_stall_events = true;
  const auto replayed = telemetry::Replay::run(dir, opts);
  ASSERT_TRUE(replayed.has_value()) << replayed.error().message;
  ASSERT_GT(replayed->stall_events.size(), 0u);
  for (const auto& ev : replayed->stall_events) {
    EXPECT_GT(ev.stall_time, 0.05);
    EXPECT_GT(ev.user_tolerance, 0.0);  // patched in from the user summary
    EXPECT_LT(ev.user, cfg.users);
  }
}

TEST(ArchiveReader, ShardReadFailureIsIoErrorNotShortScan) {
  const auto archive = capture_fleet(small_fleet(), 1, 13);
  const std::string dir = fresh_dir("shard-io");
  // This test turns the shard file into a directory below, which a plain
  // rewrite on the next run cannot replace — clear the dir for idempotence.
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(archive.write(dir).ok());
  const std::string shard_path = dir + "/" + telemetry::shard_filename(0);
  // Replace the shard with a directory: the stream opens but every read
  // fails (badbit) without tripping eofbit. That must surface as kIo — a
  // stream failing mid-scan — and never fall through to the record-count
  // cross-check as a "clean but short" scan (kCorrupt).
  std::filesystem::remove(shard_path);
  std::filesystem::create_directory(shard_path);

  const auto replayed = telemetry::Replay::run(dir);
  ASSERT_FALSE(replayed.has_value());
  EXPECT_EQ(replayed.error().code, Error::Code::kIo);
}

}  // namespace
}  // namespace lingxi
