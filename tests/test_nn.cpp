// Unit tests for lingxi_nn: tensors, layers (with numeric gradient checks),
// losses, optimizers and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "common/crc32.h"
#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/tensor.h"

namespace lingxi::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 0.0);
}

TEST(Tensor, IndexingRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(t[5], 7.0);
  Tensor u({2, 2, 2});
  u.at(1, 0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(u[5], 3.0);
}

TEST(Tensor, FillAddScale) {
  Tensor a({3});
  a.fill(2.0);
  Tensor b = Tensor::vector({1.0, 2.0, 3.0});
  a.add(b);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[2], 5.0);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a[0], 1.5);
}

TEST(Tensor, Reshape) {
  Tensor t = Tensor::vector({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  Tensor r = t.reshaped({2, 3});
  EXPECT_DOUBLE_EQ(r.at(1, 0), 4.0);
}

TEST(Tensor, Concat) {
  Tensor a = Tensor::vector({1.0, 2.0});
  Tensor b = Tensor::vector({3.0});
  Tensor c = concat({a, b});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
}

TEST(Dense, ForwardKnownWeights) {
  Rng rng(1);
  Dense d(2, 2, rng);
  // Overwrite weights deterministically: W = [[1,2],[3,4]], b = [0.5, -0.5].
  auto params = d.parameters();
  (*params[0])[0] = 1.0;
  (*params[0])[1] = 2.0;
  (*params[0])[2] = 3.0;
  (*params[0])[3] = 4.0;
  (*params[1])[0] = 0.5;
  (*params[1])[1] = -0.5;
  const Tensor y = d.forward(Tensor::vector({1.0, 1.0}));
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], 6.5);
}

/// Central-difference gradient check of a scalar loss through a layer.
void check_layer_gradients(Layer& layer, const Tensor& input) {
  // Scalar loss L = sum(output^2) / 2; dL/dout = out.
  Tensor out = layer.forward(input);
  Tensor grad_out = out;
  layer.zero_grad();
  const Tensor grad_in = layer.backward(grad_out);

  auto loss_at = [&](const Tensor& x) {
    Tensor o = layer.forward(x);
    double l = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) l += 0.5 * o[i] * o[i];
    return l;
  };

  // Check input gradient at a few coordinates.
  const double eps = 1e-6;
  for (std::size_t i = 0; i < std::min<std::size_t>(input.size(), 6); ++i) {
    Tensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps);
    EXPECT_NEAR(grad_in[i], numeric, 1e-4) << "input grad " << i;
  }

  // Check a few parameter gradients (backward above already accumulated;
  // re-run forward/backward after each perturbation).
  auto grads = layer.gradients();
  auto params = layer.parameters();
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::size_t i = 0; i < std::min<std::size_t>(params[p]->size(), 4); ++i) {
      const double saved = (*params[p])[i];
      (*params[p])[i] = saved + eps;
      const double lp = loss_at(input);
      (*params[p])[i] = saved - eps;
      const double lm = loss_at(input);
      (*params[p])[i] = saved;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR((*grads[p])[i], numeric, 1e-4) << "param " << p << " grad " << i;
    }
  }
}

TEST(Dense, GradientCheck) {
  Rng rng(2);
  Dense d(4, 3, rng);
  check_layer_gradients(d, Tensor::vector({0.5, -1.0, 2.0, 0.1}));
}

TEST(Conv1D, ForwardKnownWeights) {
  Rng rng(3);
  Conv1D c(1, 1, 2, rng);
  auto params = c.parameters();
  (*params[0])[0] = 1.0;  // w[0,0,0]
  (*params[0])[1] = -1.0;
  (*params[1])[0] = 0.5;  // bias
  Tensor in({1, 4}, {1.0, 2.0, 3.0, 5.0});
  const Tensor out = c.forward(in);
  ASSERT_EQ(out.dim(0), 1u);
  ASSERT_EQ(out.dim(1), 3u);
  // y_t = x_t - x_{t+1} + 0.5
  EXPECT_DOUBLE_EQ(out.at(0, 0), -0.5);
  EXPECT_DOUBLE_EQ(out.at(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(out.at(0, 2), -1.5);
}

TEST(Conv1D, OutputShape) {
  Rng rng(4);
  Conv1D c(3, 8, 4, rng);
  Tensor in({3, 8});
  const Tensor out = c.forward(in);
  EXPECT_EQ(out.dim(0), 8u);
  EXPECT_EQ(out.dim(1), 5u);
}

TEST(Conv1D, GradientCheck) {
  Rng rng(5);
  Conv1D c(2, 3, 3, rng);
  Tensor in({2, 6});
  Rng data_rng(6);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = data_rng.normal();
  check_layer_gradients(c, in);
}

TEST(ReLU, ForwardAndBackward) {
  ReLU r;
  const Tensor out = r.forward(Tensor::vector({-1.0, 0.0, 2.0}));
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 2.0);
  const Tensor grad = r.backward(Tensor::vector({1.0, 1.0, 1.0}));
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.0);  // not differentiable at 0; we use 0
  EXPECT_DOUBLE_EQ(grad[2], 1.0);
}

TEST(Softmax, SumsToOne) {
  const Tensor p = softmax(Tensor::vector({1.0, 2.0, 3.0}));
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GT(p[i], 0.0);
    sum += p[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Tensor p = softmax(Tensor::vector({1000.0, 1001.0}));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(CrossEntropy, KnownValueAndGradient) {
  Tensor grad;
  const Tensor logits = Tensor::vector({0.0, 0.0});
  const double loss = softmax_cross_entropy(logits, 1, grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(grad[0], 0.5, 1e-12);
  EXPECT_NEAR(grad[1], -0.5, 1e-12);
}

TEST(CrossEntropy, GradientSumsToZero) {
  Tensor grad;
  softmax_cross_entropy(Tensor::vector({0.3, -1.2, 2.0}), 0, grad);
  EXPECT_NEAR(grad[0] + grad[1] + grad[2], 0.0, 1e-12);
}

TEST(PolicyGradient, ScalesWithAdvantage) {
  const Tensor logits = Tensor::vector({0.0, 0.0});
  const Tensor g1 = policy_gradient(logits, 0, 1.0);
  const Tensor g2 = policy_gradient(logits, 0, -2.0);
  EXPECT_NEAR(g2[0], -2.0 * g1[0], 1e-12);
  EXPECT_NEAR(g2[1], -2.0 * g1[1], 1e-12);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 via parameter tensor of size 1.
  Tensor x = Tensor::vector({0.0});
  Tensor g = Tensor::vector({0.0});
  Sgd opt({&x}, {&g}, 0.1);
  for (int i = 0; i < 200; ++i) {
    g[0] = 2.0 * (x[0] - 3.0);
    opt.step();
  }
  EXPECT_NEAR(x[0], 3.0, 1e-6);
}

TEST(Adam, ConvergesOnQuadraticBowl) {
  Tensor x = Tensor::vector({5.0, -4.0});
  Tensor g = Tensor::vector({0.0, 0.0});
  Adam::Config cfg;
  cfg.lr = 0.1;
  Adam opt({&x}, {&g}, cfg);
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0 * (x[0] - 1.0);
    g[1] = 8.0 * (x[1] + 2.0);
    opt.step();
  }
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], -2.0, 1e-3);
}

TEST(ParamSet, CollectsAndZeros) {
  Rng rng(7);
  Dense d1(2, 2, rng), d2(2, 1, rng);
  ParamSet set;
  set.add(d1);
  set.add(d2);
  EXPECT_EQ(set.params.size(), 4u);
  EXPECT_EQ(set.grads.size(), 4u);
  (*set.grads[0])[0] = 42.0;
  set.zero_grad();
  EXPECT_DOUBLE_EQ((*set.grads[0])[0], 0.0);
}

TEST(Serialize, RoundTrip) {
  Tensor a = Tensor::vector({1.5, -2.5, 3.25});
  Tensor b({2, 2}, {1.0, 2.0, 3.0, 4.0});
  const auto bytes = serialize_tensors({&a, &b});
  const auto restored = deserialize_tensors(bytes);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_TRUE((*restored)[0].same_shape(a));
  EXPECT_DOUBLE_EQ((*restored)[0][1], -2.5);
  EXPECT_TRUE((*restored)[1].same_shape(b));
  EXPECT_DOUBLE_EQ((*restored)[1].at(1, 1), 4.0);
}

TEST(Serialize, DetectsCorruption) {
  Tensor a = Tensor::vector({1.0, 2.0});
  auto bytes = serialize_tensors({&a});
  bytes[bytes.size() / 2] ^= 0xff;
  const auto r = deserialize_tensors(bytes);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, Error::Code::kCorrupt);
}

TEST(Serialize, DetectsTruncation) {
  Tensor a = Tensor::vector({1.0, 2.0, 3.0});
  auto bytes = serialize_tensors({&a});
  bytes.resize(bytes.size() - 8);
  EXPECT_FALSE(deserialize_tensors(bytes).has_value());
}

TEST(Serialize, DetectsBadMagic) {
  Tensor a = Tensor::vector({1.0});
  auto bytes = serialize_tensors({&a});
  bytes[0] = 'X';
  EXPECT_FALSE(deserialize_tensors(bytes).has_value());
}

TEST(Serialize, FileRoundTrip) {
  Tensor a = Tensor::vector({9.0, 8.0});
  const std::string path = ::testing::TempDir() + "/lingxi_nn_weights.bin";
  ASSERT_TRUE(save_tensors(path, {&a}).ok());
  const auto r = load_tensors(path);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ((*r)[0][0], 9.0);
}

// -- versioned model container + typed layer checkpoints ---------------------

TEST(SerializeModel, DenseRoundTripIsBitwise) {
  Rng rng(11);
  Dense src(7, 3, rng);
  const auto bytes = serialize_dense(src);

  Dense dst(7, 3, rng);  // different He-initialized weights
  ASSERT_TRUE(load_dense(dst, bytes).ok());
  for (std::size_t i = 0; i < src.weight().size(); ++i) {
    EXPECT_EQ(dst.weight()[i], src.weight()[i]) << "weight " << i;
  }
  for (std::size_t i = 0; i < src.bias().size(); ++i) {
    EXPECT_EQ(dst.bias()[i], src.bias()[i]);
  }
  // Forward passes through the restored layer are bitwise identical.
  Tensor in = Tensor::vector({0.3, -1.0, 2.0, 0.7, 0.0, -0.25, 1.5});
  const Tensor a = src.forward(in);
  const Tensor b = dst.forward(in);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(SerializeModel, Conv1DRoundTripIsBitwise) {
  Rng rng(12);
  Conv1D src(2, 5, 3, rng);
  const auto bytes = serialize_conv1d(src);

  Conv1D dst(2, 5, 3, rng);
  ASSERT_TRUE(load_conv1d(dst, bytes).ok());
  Tensor in({2, 8});
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = 0.1 * static_cast<double>(i) - 0.5;
  const Tensor a = src.forward(in);
  const Tensor b = dst.forward(in);
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(SerializeModel, RejectsBadContainerVersionWithError) {
  Rng rng(13);
  Dense layer(4, 2, rng);
  auto bytes = serialize_dense(layer);
  // The container version is the u32 right after the 4-byte magic. Clobber
  // it and re-stamp the trailing CRC so only the version check can object —
  // the failure must be an Expected error, never an assert.
  bytes[4] = 0x7f;
  const std::uint32_t crc = crc32(bytes.data() + 4, bytes.size() - 4 - sizeof(std::uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(std::uint32_t), &crc, sizeof(crc));
  const auto status = load_dense(layer, bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kCorrupt);
}

TEST(SerializeModel, RejectsKindMismatch) {
  Rng rng(14);
  Dense dense(4, 2, rng);
  Conv1D conv(1, 2, 3, rng);
  // A Dense checkpoint must not load into a Conv1D (and vice versa): the
  // kind tag in the container header catches it before any shape check.
  const auto status = load_conv1d(conv, serialize_dense(dense));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kCorrupt);
}

TEST(SerializeModel, RejectsShapeMismatch) {
  Rng rng(15);
  Dense src(4, 2, rng);
  Dense dst(5, 2, rng);
  const auto status = load_dense(dst, serialize_dense(src));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kCorrupt);
}

TEST(SerializeModel, RejectsCrcFlip) {
  Rng rng(16);
  Conv1D layer(1, 3, 2, rng);
  auto bytes = serialize_conv1d(layer);
  bytes[bytes.size() / 2] ^= 0x10;
  const auto status = load_conv1d(layer, bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kCorrupt);
}

TEST(HeInit, BoundsRespectFanIn) {
  Rng rng(8);
  Tensor w({100, 100});
  he_init(w, 100, rng);
  const double limit = std::sqrt(6.0 / 100.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -limit);
    EXPECT_LE(w[i], limit);
  }
}

TEST(TrainingSmoke, LearnsXorWithHiddenLayer) {
  // End-to-end sanity: a 2-4-2 net learns XOR classification.
  Rng rng(9);
  Dense d1(2, 8, rng);
  ReLU r1;
  Dense d2(8, 2, rng);
  ParamSet set;
  set.add(d1);
  set.add(d2);
  Adam::Config cfg;
  cfg.lr = 0.02;
  Adam opt(set.params, set.grads, cfg);

  const std::vector<std::pair<std::vector<double>, std::size_t>> data = {
      {{0.0, 0.0}, 0}, {{0.0, 1.0}, 1}, {{1.0, 0.0}, 1}, {{1.0, 1.0}, 0}};

  for (int epoch = 0; epoch < 800; ++epoch) {
    set.zero_grad();
    for (const auto& [x, label] : data) {
      const Tensor logits = d2.forward(r1.forward(d1.forward(Tensor::vector(x))));
      Tensor grad;
      softmax_cross_entropy(logits, label, grad);
      d1.backward(r1.backward(d2.backward(grad)));
    }
    opt.step();
  }
  int correct = 0;
  for (const auto& [x, label] : data) {
    const Tensor logits = d2.forward(r1.forward(d1.forward(Tensor::vector(x))));
    correct += (logits[1] > logits[0] ? 1u : 0u) == label ? 1 : 0;
  }
  EXPECT_EQ(correct, 4);
}

}  // namespace
}  // namespace lingxi::nn
