// Parameterized property tests (TEST_P sweeps) across module invariants:
// player dynamics, ABR decision validity, parameter-space round trips,
// user-model hazards, GP posteriors, predictor outputs, serialization, and
// the session log.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <tuple>

#include "abr/bba.h"
#include "abr/bola.h"
#include "abr/hyb.h"
#include "abr/pensieve.h"
#include "abr/rate_based.h"
#include "abr/robust_mpc.h"
#include "bayesopt/gp.h"
#include "common/rng.h"
#include "logstore/session_log.h"
#include "nn/dense.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"
#include "scenario/scenario.h"
#include "sim/fleet_runner.h"
#include "sim/monte_carlo.h"
#include "sim/player_env.h"
#include "sim/session.h"
#include "snapshot/snapshot.h"
#include "stats/ecdf.h"
#include "telemetry/capture.h"
#include "trace/bandwidth.h"
#include "trace/video.h"
#include "user/data_driven.h"

namespace lingxi {
namespace {

// ---------------------------------------------------------------------------
// PlayerEnv invariants over a (bandwidth, segment bitrate, buffer) grid.
// ---------------------------------------------------------------------------

using PlayerCase = std::tuple<double /*bandwidth*/, double /*bitrate*/, double /*buffer*/>;

class PlayerEnvProperty : public ::testing::TestWithParam<PlayerCase> {};

TEST_P(PlayerEnvProperty, Eq3InvariantsHold) {
  const auto [bandwidth, bitrate, buffer0] = GetParam();
  sim::PlayerConfig cfg;
  cfg.startup_buffer = buffer0;
  sim::PlayerEnv env(cfg);

  const Bytes size = units::segment_bytes(bitrate, 1.0);
  const auto r = env.step(size, 1.0, bandwidth);

  // Download time is exactly size / bandwidth.
  EXPECT_NEAR(r.download_time, units::download_time(size, bandwidth), 1e-12);
  // Stall is the buffer shortfall, never negative.
  EXPECT_NEAR(r.stall_time, std::max(0.0, r.download_time - buffer0), 1e-12);
  // Buffer stays within [0, B_max].
  EXPECT_GE(r.buffer_after, 0.0);
  EXPECT_LE(r.buffer_after, env.buffer_max() + 1e-9);
  // Wait always includes the RTT.
  EXPECT_GE(r.wait_time, cfg.rtt - 1e-12);
  // Wall clock advanced by download + wait.
  EXPECT_NEAR(env.wall_clock(), r.download_time + r.wait_time, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlayerEnvProperty,
    ::testing::Combine(::testing::Values(200.0, 800.0, 2000.0, 10000.0),
                       ::testing::Values(350.0, 750.0, 1850.0, 4300.0),
                       ::testing::Values(0.0, 0.5, 4.0, 8.0)));

// ---------------------------------------------------------------------------
// Every ABR returns a valid ladder level for any sane observation, and is
// deterministic given the same observation.
// ---------------------------------------------------------------------------

enum class AbrKind { kHyb, kBba, kBola, kRateBased, kMpc, kPensieve };

using AbrCase = std::tuple<AbrKind, double /*buffer*/, double /*bandwidth*/>;

class AbrValidity : public ::testing::TestWithParam<AbrCase> {
 protected:
  static std::unique_ptr<abr::AbrAlgorithm> make(AbrKind kind) {
    static Rng rng(999);
    switch (kind) {
      case AbrKind::kHyb: return std::make_unique<abr::Hyb>();
      case AbrKind::kBba: return std::make_unique<abr::Bba>();
      case AbrKind::kBola: return std::make_unique<abr::Bola>();
      case AbrKind::kRateBased: return std::make_unique<abr::RateBased>();
      case AbrKind::kMpc: return std::make_unique<abr::RobustMpc>();
      case AbrKind::kPensieve: return std::make_unique<abr::Pensieve>(4, rng);
    }
    return nullptr;
  }
};

TEST_P(AbrValidity, SelectsValidLevelDeterministically) {
  const auto [kind, buffer, bandwidth] = GetParam();
  const trace::Video video(trace::BitrateLadder::default_ladder(), 30, 1.0);
  auto algo = make(kind);

  sim::AbrObservation obs;
  obs.video = &video;
  obs.buffer = buffer;
  obs.buffer_max = 8.0;
  obs.next_segment = 3;
  obs.first_segment = false;
  obs.last_level = 1;
  obs.throughput_history = {bandwidth, bandwidth * 0.9, bandwidth * 1.1};
  obs.download_time_history = {0.5, 0.6, 0.4};

  const std::size_t level = algo->select(obs);
  EXPECT_LT(level, video.ladder().levels());
  EXPECT_EQ(algo->select(obs), level);  // deterministic

  // Clones behave identically.
  EXPECT_EQ(algo->clone()->select(obs), level);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbrValidity,
    ::testing::Combine(::testing::Values(AbrKind::kHyb, AbrKind::kBba, AbrKind::kBola,
                                         AbrKind::kRateBased, AbrKind::kMpc,
                                         AbrKind::kPensieve),
                       ::testing::Values(0.0, 2.0, 8.0),
                       ::testing::Values(400.0, 2000.0, 9000.0)));

// ---------------------------------------------------------------------------
// ParamSpace: from_unit(to_unit(p)) == clamp(p) for every flag combination.
// ---------------------------------------------------------------------------

class ParamSpaceRoundTrip
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, int>> {};

TEST_P(ParamSpaceRoundTrip, UnitCubeRoundTrip) {
  const auto [opt_stall, opt_switch, opt_beta, seed] = GetParam();
  if (!opt_stall && !opt_switch && !opt_beta) GTEST_SKIP();
  abr::ParamSpace space;
  space.optimize_stall = opt_stall;
  space.optimize_switch = opt_switch;
  space.optimize_beta = opt_beta;

  Rng rng(static_cast<std::uint64_t>(seed));
  abr::QoeParams p;
  p.stall_penalty = rng.uniform(space.stall_min, space.stall_max);
  p.switch_penalty = rng.uniform(space.switch_min, space.switch_max);
  p.hyb_beta = rng.uniform(space.beta_min, space.beta_max);

  const auto u = space.to_unit(p);
  ASSERT_EQ(u.size(), space.dimensions());
  const abr::QoeParams q = space.from_unit(u, p);
  EXPECT_NEAR(q.stall_penalty, p.stall_penalty, 1e-9);
  EXPECT_NEAR(q.switch_penalty, p.switch_penalty, 1e-9);
  EXPECT_NEAR(q.hyb_beta, p.hyb_beta, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, ParamSpaceRoundTrip,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                                            ::testing::Bool(), ::testing::Range(1, 5)));

// ---------------------------------------------------------------------------
// DataDrivenUser: hazards are monotone in stall time and bounded, for every
// archetype x tolerance combination.
// ---------------------------------------------------------------------------

using UserCase = std::tuple<user::StallArchetype, double /*tolerance*/>;

class UserHazardProperty : public ::testing::TestWithParam<UserCase> {};

TEST_P(UserHazardProperty, MonotoneAndBounded) {
  const auto [archetype, tolerance] = GetParam();
  user::DataDrivenUser::Config cfg;
  cfg.stall_archetype = archetype;
  cfg.tolerance = tolerance;
  user::DataDrivenUser u(cfg);
  double prev = -1.0;
  for (double s = 0.0; s <= 25.0; s += 0.25) {
    const double h = u.stall_hazard(s, 1);
    EXPECT_GE(h, prev - 1e-12);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
    prev = h;
  }
  // More stall events never reduce the hazard.
  EXPECT_GE(u.stall_hazard(5.0, 4), u.stall_hazard(5.0, 1) - 1e-12);
}

TEST_P(UserHazardProperty, ExitProbabilityIsProbability) {
  const auto [archetype, tolerance] = GetParam();
  user::DataDrivenUser::Config cfg;
  cfg.stall_archetype = archetype;
  cfg.tolerance = tolerance;
  user::DataDrivenUser u(cfg);
  u.begin_session();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    sim::SegmentRecord seg;
    seg.level = static_cast<std::size_t>(rng.uniform_int(0, 3));
    seg.bitrate = trace::BitrateLadder::default_ladder().bitrate(seg.level);
    seg.position = rng.uniform(0.0, 120.0);
    seg.stall_time = rng.bernoulli(0.3) ? rng.uniform(0.1, 8.0) : 0.0;
    seg.cumulative_stall = seg.stall_time + rng.uniform(0.0, 10.0);
    seg.cumulative_stall_events = static_cast<std::size_t>(rng.uniform_int(0, 6));
    const double p = u.exit_probability(seg);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UserHazardProperty,
    ::testing::Combine(::testing::Values(user::StallArchetype::kSensitive,
                                         user::StallArchetype::kThreshold,
                                         user::StallArchetype::kInsensitive),
                       ::testing::Values(1.0, 3.0, 6.0, 12.0)));

// ---------------------------------------------------------------------------
// Gaussian process: posterior interpolates data and variance is bounded by
// the prior, across kernel hyperparameters.
// ---------------------------------------------------------------------------

using GpCase = std::tuple<double /*length_scale*/, double /*noise*/>;

class GpPosteriorProperty : public ::testing::TestWithParam<GpCase> {};

TEST_P(GpPosteriorProperty, PosteriorSaneAcrossHyperparameters) {
  const auto [length_scale, noise] = GetParam();
  bayesopt::GpConfig cfg;
  cfg.length_scale = length_scale;
  cfg.noise_variance = noise;
  bayesopt::GaussianProcess gp(cfg);
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    const double x = rng.uniform();
    gp.observe({x}, std::sin(6.0 * x));
  }
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const auto p = gp.predict({x});
    EXPECT_GE(p.variance, 0.0);
    EXPECT_LE(p.variance, cfg.signal_variance + 1e-9);
    EXPECT_TRUE(std::isfinite(p.mean));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GpPosteriorProperty,
                         ::testing::Combine(::testing::Values(0.05, 0.15, 0.3, 0.6),
                                            ::testing::Values(1e-6, 1e-4, 1e-2)));

// ---------------------------------------------------------------------------
// Exit net: outputs are probabilities for any bounded input, across seeds.
// ---------------------------------------------------------------------------

class ExitNetProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExitNetProperty, OutputsAreProbabilities) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  predictor::StallExitNet net(rng);
  Rng data(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  for (int i = 0; i < 25; ++i) {
    nn::Tensor f({predictor::kChannels, predictor::kHistoryLen});
    for (std::size_t j = 0; j < f.size(); ++j) f[j] = data.uniform(-1.0, 2.0);
    const double p = net.predict(f);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_TRUE(std::isfinite(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExitNetProperty, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Session simulation conservation laws over (bandwidth model x video length).
// ---------------------------------------------------------------------------

using SessionCase = std::tuple<double /*mean bw*/, std::size_t /*segments*/>;

class SessionConservation : public ::testing::TestWithParam<SessionCase> {};

TEST_P(SessionConservation, AccountingConsistent) {
  const auto [mean_bw, segments] = GetParam();
  const trace::Video video(trace::BitrateLadder::default_ladder(), segments, 1.0);
  trace::GaussMarkovBandwidth bw({.mean = mean_bw, .rho = 0.9, .noise_sd = mean_bw * 0.2});
  abr::Hyb hyb;
  const sim::SessionSimulator sim({});
  Rng rng(11);
  const auto result = sim.run(video, hyb, bw, nullptr, rng);

  ASSERT_EQ(result.segments.size(), segments);
  EXPECT_DOUBLE_EQ(result.watch_time, static_cast<double>(segments));
  double stall_sum = 0.0;
  std::size_t events = 0;
  double bitrate_sum = 0.0;
  for (const auto& seg : result.segments) {
    stall_sum += seg.stall_time;
    if (seg.stall_time > 0.05) ++events;
    bitrate_sum += seg.bitrate;
    EXPECT_GE(seg.buffer_after, 0.0);
    EXPECT_GT(seg.throughput, 0.0);
  }
  EXPECT_NEAR(result.total_stall, stall_sum, 1e-9);
  EXPECT_EQ(result.stall_events, events);
  EXPECT_NEAR(result.mean_bitrate, bitrate_sum / static_cast<double>(segments), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, SessionConservation,
                         ::testing::Combine(::testing::Values(500.0, 1500.0, 6000.0),
                                            ::testing::Values(std::size_t{5},
                                                              std::size_t{30},
                                                              std::size_t{120})));

// ---------------------------------------------------------------------------
// Session log: encode/decode round trip across session shapes.
// ---------------------------------------------------------------------------

class SessionLogRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SessionLogRoundTrip, RoundTripsThroughBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto segments = static_cast<std::size_t>(rng.uniform_int(1, 60));
  const trace::Video video(trace::BitrateLadder::default_ladder(), segments, 1.0);
  trace::GaussMarkovBandwidth bw({.mean = rng.uniform(400.0, 8000.0)});
  abr::Bba bba;
  const sim::SessionSimulator sim({});

  logstore::SessionLogEntry entry;
  entry.user_id = rng.next();
  entry.timestamp = 1760000000 + static_cast<std::uint64_t>(GetParam());
  entry.video_duration = video.duration();
  entry.session = sim.run(video, bba, bw, nullptr, rng);

  logstore::SessionLogWriter writer;
  writer.append(entry);
  ASSERT_EQ(writer.size(), 1u);
  const auto read = logstore::SessionLogReader::read_bytes(writer.bytes());
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ(read->front(), entry);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionLogRoundTrip, ::testing::Range(1, 9));

TEST(SessionLog, MultipleEntriesAndFileRoundTrip) {
  Rng rng(3);
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  trace::ConstantBandwidth bw(2000.0);
  abr::Hyb hyb;
  const sim::SessionSimulator sim({});

  logstore::SessionLogWriter writer;
  for (int i = 0; i < 5; ++i) {
    logstore::SessionLogEntry e;
    e.user_id = static_cast<std::uint64_t>(i);
    e.timestamp = 1700000000u + static_cast<std::uint64_t>(i);
    e.video_duration = video.duration();
    e.session = sim.run(video, hyb, bw, nullptr, rng);
    writer.append(e);
  }
  const std::string path = ::testing::TempDir() + "/lingxi_session_log.bin";
  ASSERT_TRUE(writer.save(path).ok());
  const auto loaded = logstore::SessionLogReader::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 5u);
  EXPECT_EQ((*loaded)[4].user_id, 4u);
}

TEST(SessionLog, CorruptionDetected) {
  logstore::SessionLogWriter writer;
  logstore::SessionLogEntry e;
  e.user_id = 1;
  sim::SegmentRecord seg;
  seg.bitrate = 750.0;
  e.session.segments.push_back(seg);
  writer.append(e);
  auto bytes = writer.bytes();
  bytes[bytes.size() / 2] ^= 0x10;
  EXPECT_FALSE(logstore::SessionLogReader::read_bytes(bytes).has_value());
}

// ---------------------------------------------------------------------------
// ECDF properties: monotone, 0/1 at the extremes, inverse is a quantile.
// ---------------------------------------------------------------------------

class EcdfProperty : public ::testing::TestWithParam<int> {};

TEST_P(EcdfProperty, MonotoneAndInverseConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17);
  std::vector<double> xs;
  const int n = 50 + GetParam() * 37;
  for (int i = 0; i < n; ++i) xs.push_back(rng.normal(10.0, 4.0));
  const stats::Ecdf cdf(xs);

  double prev = 0.0;
  for (double x = -10.0; x <= 30.0; x += 0.5) {
    const double v = cdf(x);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double xq = cdf.inverse(q);
    EXPECT_GE(cdf(xq), q - 1e-12);  // quantile property
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProperty, ::testing::Range(1, 8));

// ---------------------------------------------------------------------------
// Monte Carlo pruning soundness: early exit may only trigger when even an
// exit-free completion of the remaining rollouts could not beat the best
// known exit rate — so pruning can never flip the sign of a candidate
// comparison versus the unpruned evaluator.
// ---------------------------------------------------------------------------

class McPruningProperty : public ::testing::TestWithParam<int> {
 public:
  static sim::MonteCarloConfig mc_config(bool pruning) {
    sim::MonteCarloConfig mc;
    mc.samples = 24;
    mc.sample_duration = 20.0;
    mc.enable_pruning = pruning;
    mc.min_samples_before_prune = 4;
    return mc;
  }

  /// Evaluate a HYB candidate with the given beta from a fixed seed. The Rng
  /// is re-seeded per call so pruned and unpruned runs draw identical
  /// rollouts up to the prune point.
  static sim::MonteCarloResult evaluate(double beta, bool pruning, double best_known,
                                        std::uint64_t seed) {
    const sim::MonteCarloEvaluator eval(mc_config(pruning), {});
    const auto video =
        eval.make_virtual_video(trace::BitrateLadder::default_ladder(), 1.0);
    abr::Hyb hyb;
    abr::QoeParams params;
    params.hyb_beta = beta;
    hyb.set_params(params);
    // Stall-sensitive user over a weak link: exits actually happen, so the
    // comparison is non-trivial.
    user::DataDrivenUser::Config ucfg;
    ucfg.stall_archetype = user::StallArchetype::kSensitive;
    ucfg.tolerance = 1.5;
    user::DataDrivenUser exit_model(ucfg);
    trace::NormalBandwidth bandwidth(650.0, 280.0);
    Rng rng(seed);
    return eval.evaluate(video, hyb, exit_model, bandwidth, 1.0, best_known, rng);
  }
};

TEST_P(McPruningProperty, PruningPreservesComparisonSign) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr double kIncumbentBeta = 0.5;
  constexpr double kChallengerBeta = 0.95;
  const double incumbent =
      evaluate(kIncumbentBeta, false, std::numeric_limits<double>::infinity(), seed)
          .exit_rate;
  const double challenger_full =
      evaluate(kChallengerBeta, false, std::numeric_limits<double>::infinity(), seed + 1)
          .exit_rate;

  // Challenger judged against the incumbent's unpruned rate, and against
  // tighter/looser thresholds around it.
  for (double best_known : {incumbent, incumbent * 0.5, incumbent * 0.25,
                            incumbent * 2.0, 1e-3}) {
    if (best_known <= 0.0) continue;
    const auto pruned = evaluate(kChallengerBeta, true, best_known, seed + 1);
    EXPECT_EQ(pruned.exit_rate < best_known, challenger_full < best_known)
        << "best_known=" << best_known << " pruned=" << pruned.exit_rate
        << " full=" << challenger_full << " was_pruned=" << pruned.pruned;
    // A run that was NOT pruned must reproduce the unpruned estimate.
    if (!pruned.pruned) {
      EXPECT_DOUBLE_EQ(pruned.exit_rate, challenger_full);
      EXPECT_EQ(pruned.samples_run, mc_config(true).samples);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McPruningProperty, ::testing::Range(1, 11));

TEST(McPruning, EngagesAgainstUnbeatableBaseline) {
  // With a near-zero best-known exit rate, a bad candidate must prune early.
  bool any_pruned = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result = McPruningProperty::evaluate(0.95, true, 1e-4, seed);
    any_pruned = any_pruned || result.pruned;
    if (result.pruned) {
      EXPECT_LT(result.samples_run, McPruningProperty::mc_config(true).samples);
    }
  }
  EXPECT_TRUE(any_pruned);
}

// ---------------------------------------------------------------------------
// Batched-inference invariance (the tentpole contract): a LingXi fleet's
// merged FleetAccumulator is bitwise identical for every (Monte Carlo batch
// size, thread count) combination — the batched path may regroup predictor
// forwards but must not change a single bit of any result.
// ---------------------------------------------------------------------------

using BatchThreadCase = std::tuple<int /*batch*/, int /*threads*/>;

class FleetBatchingInvariance : public ::testing::TestWithParam<BatchThreadCase> {
 public:
  static sim::FleetConfig fleet_config() {
    sim::FleetConfig cfg;
    cfg.users = 8;
    cfg.days = 2;
    cfg.sessions_per_user_day = 6;
    cfg.users_per_shard = 2;
    // Pin the per-user schedule: this grid is the per-optimization batching
    // contract (sequential batch<=1 path and pooled batch>1 path both live
    // here); CrossUserWaveInvariance below covers the cohort schedule.
    cfg.scheduler = sim::SchedulerMode::kPerUser;
    cfg.enable_lingxi = true;
    cfg.drift_user_tolerance = true;
    // Weak links so stalls (and therefore optimizations + net forwards)
    // actually happen — otherwise the property would be vacuous.
    cfg.network.median_bandwidth = 1100.0;
    cfg.network.sigma = 0.4;
    cfg.lingxi.space.optimize_stall = false;
    cfg.lingxi.space.optimize_switch = false;
    cfg.lingxi.space.optimize_beta = true;
    cfg.lingxi.obo_rounds = 2;
    cfg.lingxi.monte_carlo.samples = 6;
    cfg.lingxi.monte_carlo.sample_duration = 12.0;
    cfg.lingxi.monte_carlo.min_samples_before_prune = 3;
    return cfg;
  }

  static sim::FleetAccumulator run(std::size_t batch, std::size_t threads) {
    sim::FleetConfig cfg = fleet_config();
    cfg.predictor_batch = batch;
    cfg.threads = threads;
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory([] {
      Rng net_rng(4242);
      return predictor::HybridExitPredictor(
          std::make_shared<predictor::StallExitNet>(net_rng),
          std::make_shared<predictor::OverallStatsModel>());
    });
    return runner.run(77);
  }
};

TEST_P(FleetBatchingInvariance, ChecksumMatchesScalarSingleThread) {
  static const sim::FleetAccumulator reference = run(1, 1);
  // The property is only meaningful if the predictor actually ran.
  ASSERT_GT(reference.lingxi_optimizations, 0u);
  ASSERT_GT(reference.lingxi_mc_evaluations, 0u);

  const auto [batch, threads] = GetParam();
  const sim::FleetAccumulator acc =
      run(static_cast<std::size_t>(batch), static_cast<std::size_t>(threads));
  EXPECT_EQ(acc.checksum(), reference.checksum())
      << "batch=" << batch << " threads=" << threads;
  // Spot-check raw fields too, in case of an unlikely CRC collision.
  EXPECT_EQ(acc.watch_ticks, reference.watch_ticks);
  EXPECT_EQ(acc.stall_ticks, reference.stall_ticks);
  EXPECT_EQ(acc.bitrate_time_ticks, reference.bitrate_time_ticks);
  EXPECT_EQ(acc.lingxi_mc_evaluations, reference.lingxi_mc_evaluations);
  EXPECT_EQ(acc.lingxi_mc_rollouts_pruned, reference.lingxi_mc_rollouts_pruned);
}

INSTANTIATE_TEST_SUITE_P(BatchByThreads, FleetBatchingInvariance,
                         ::testing::Combine(::testing::Values(1, 2, 7, 64),
                                            ::testing::Values(1, 4)));

// ---------------------------------------------------------------------------
// Cross-user wave scheduler invariance: the cohort schedule (users of a
// shard interleaved as pausable tasks, exit queries pooled across users into
// per-net sub-batches) must reproduce the per-user schedule's merged
// accumulator bit for bit over the whole (threads x users_per_shard x
// predictor_batch) grid — and the telemetry archive bytes with it.
// ---------------------------------------------------------------------------

using WaveCase =
    std::tuple<int /*threads*/, int /*users_per_shard*/, int /*batch*/, int /*opt_threads*/>;

class CrossUserWaveInvariance : public ::testing::TestWithParam<WaveCase> {
 public:
  static sim::FleetAccumulator run(sim::SchedulerMode mode, std::size_t threads,
                                   std::size_t users_per_shard, std::size_t batch,
                                   telemetry::TelemetrySink* sink = nullptr,
                                   std::size_t optimizer_threads = 0) {
    sim::FleetConfig cfg = FleetBatchingInvariance::fleet_config();
    cfg.scheduler = mode;
    cfg.threads = threads;
    cfg.users_per_shard = users_per_shard;
    cfg.predictor_batch = batch;
    cfg.optimizer_threads = optimizer_threads;
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory([] {
      Rng net_rng(4242);
      return predictor::HybridExitPredictor(
          std::make_shared<predictor::StallExitNet>(net_rng),
          std::make_shared<predictor::OverallStatsModel>());
    });
    if (sink != nullptr) runner.set_telemetry_sink(sink);
    return runner.run(77);
  }
};

TEST_P(CrossUserWaveInvariance, ChecksumMatchesPerUserSchedule) {
  static const sim::FleetAccumulator reference =
      run(sim::SchedulerMode::kPerUser, 1, 2, 0);
  // Meaningful only if optimizations (and so pooled forwards) actually ran.
  ASSERT_GT(reference.lingxi_optimizations, 0u);

  const auto [threads, users_per_shard, batch, opt_threads] = GetParam();
  const sim::FleetAccumulator acc =
      run(sim::SchedulerMode::kCohortWaves, static_cast<std::size_t>(threads),
          static_cast<std::size_t>(users_per_shard), static_cast<std::size_t>(batch),
          nullptr, static_cast<std::size_t>(opt_threads));
  EXPECT_EQ(acc.checksum(), reference.checksum())
      << "threads=" << threads << " users_per_shard=" << users_per_shard
      << " batch=" << batch << " optimizer_threads=" << opt_threads;
  EXPECT_EQ(acc.watch_ticks, reference.watch_ticks);
  EXPECT_EQ(acc.stall_ticks, reference.stall_ticks);
  EXPECT_EQ(acc.bitrate_time_ticks, reference.bitrate_time_ticks);
  EXPECT_EQ(acc.lingxi_optimizations, reference.lingxi_optimizations);
  EXPECT_EQ(acc.lingxi_mc_evaluations, reference.lingxi_mc_evaluations);
  EXPECT_EQ(acc.lingxi_mc_rollouts_pruned, reference.lingxi_mc_rollouts_pruned);
  EXPECT_EQ(acc.adjusted_user_days, reference.adjusted_user_days);
}

INSTANTIATE_TEST_SUITE_P(Grid, CrossUserWaveInvariance,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Values(1, 3, 8),
                                            ::testing::Values(0, 1, 7, 64),
                                            ::testing::Values(0, 2)));

// The dense kernel's ISA dispatch (nn::dense_isa) must be invisible to
// fleet results: every supported ISA reproduces the scalar checksum bit for
// bit. The override is process-global, so the sweep runs inside one test.
TEST(CrossUserWaveInvariance, ChecksumInvariantAcrossDenseIsa) {
  const nn::DenseIsa before = nn::dense_isa();
  ASSERT_EQ(nn::set_dense_isa_for_testing(nn::DenseIsa::kScalar), nn::DenseIsa::kScalar);
  const sim::FleetAccumulator reference =
      CrossUserWaveInvariance::run(sim::SchedulerMode::kCohortWaves, 1, 3, 7);
  ASSERT_GT(reference.lingxi_optimizations, 0u);
  for (const nn::DenseIsa isa : {nn::DenseIsa::kSse2, nn::DenseIsa::kAvx2,
                                 nn::DenseIsa::kAvx512}) {
    if (!nn::dense_isa_supported(isa)) continue;
    ASSERT_EQ(nn::set_dense_isa_for_testing(isa), isa);
    const sim::FleetAccumulator acc =
        CrossUserWaveInvariance::run(sim::SchedulerMode::kCohortWaves, 1, 3, 7);
    EXPECT_EQ(acc.checksum(), reference.checksum()) << nn::dense_isa_name(isa);
    EXPECT_EQ(acc.watch_ticks, reference.watch_ticks) << nn::dense_isa_name(isa);
  }
  nn::set_dense_isa_for_testing(before);
}

TEST(CrossUserWaveArchive, BytesIdenticalUnderInterleavedExecution) {
  // ShardedCapture buffers per user, so interleaving users within a shard
  // must leave the merged archive — manifest and every shard byte stream —
  // untouched. Archive shard granularity is fixed; only the execution
  // schedule varies.
  const auto capture_run = [](sim::SchedulerMode mode, std::size_t threads,
                              std::size_t users_per_shard, std::size_t batch,
                              std::size_t optimizer_threads = 0) {
    telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
    CrossUserWaveInvariance::run(mode, threads, users_per_shard, batch, &capture,
                                 optimizer_threads);
    return capture.finish();
  };

  const telemetry::FleetArchive reference =
      capture_run(sim::SchedulerMode::kPerUser, 1, 2, 0);
  ASSERT_GT(reference.total_bytes(), 0u);

  const WaveCase interleaved_cases[] = {
      {1, 3, 7, 0}, {4, 8, 64, 0}, {2, 1, 1, 0}, {1, 8, 7, 2}};
  for (const auto& [threads, users_per_shard, batch, opt_threads] : interleaved_cases) {
    const telemetry::FleetArchive archive = capture_run(
        sim::SchedulerMode::kCohortWaves, static_cast<std::size_t>(threads),
        static_cast<std::size_t>(users_per_shard), static_cast<std::size_t>(batch),
        static_cast<std::size_t>(opt_threads));
    EXPECT_EQ(archive.checksum(), reference.checksum())
        << "threads=" << threads << " users_per_shard=" << users_per_shard
        << " batch=" << batch << " optimizer_threads=" << opt_threads;
    ASSERT_EQ(archive.shards.size(), reference.shards.size());
    for (std::size_t s = 0; s < reference.shards.size(); ++s) {
      EXPECT_TRUE(archive.shards[s] == reference.shards[s]) << "shard " << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Observability parity: installing the obs registry + tracer must not change
// a single result bit. For a grid of (scheduler x threads) cases, the merged
// accumulator checksum AND the telemetry archive bytes of an instrumented
// run are compared against the obs-off run — while asserting the registry
// actually recorded the hot-path metrics (so the property is not vacuous).
// ---------------------------------------------------------------------------

TEST(ObservabilityParity, ChecksumAndArchiveBytesIdenticalWithObsEnabled) {
  struct ObsCase {
    sim::SchedulerMode mode;
    std::size_t threads;
    std::size_t users_per_shard;
    std::size_t batch;
  };
  const ObsCase cases[] = {
      {sim::SchedulerMode::kPerUser, 1, 2, 0},
      {sim::SchedulerMode::kPerUser, 4, 3, 7},
      {sim::SchedulerMode::kCohortWaves, 1, 3, 7},
      {sim::SchedulerMode::kCohortWaves, 4, 8, 64},
  };
  const auto capture_run = [](const ObsCase& c) {
    telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
    const sim::FleetAccumulator acc = CrossUserWaveInvariance::run(
        c.mode, c.threads, c.users_per_shard, c.batch, &capture);
    return std::make_pair(acc, capture.finish());
  };
  for (const ObsCase& c : cases) {
    const auto [ref_acc, ref_archive] = capture_run(c);

    // The FULL health plane: registry + tracer + per-day timeline + SLO
    // monitor. The timeline forces run_days onto 1-day chained legs, so this
    // also pins that the chunking is bitwise invisible.
    const std::string timeline_path =
        ::testing::TempDir() + "/lingxi_obs_parity_timeline.bin";
    obs::Registry registry;
    obs::Tracer tracer;
    obs::TimelineWriter timeline(timeline_path);
    obs::HealthMonitor monitor(
        {{obs::SloKind::kGaugeFloor, "sim.fleet.sessions_total", 1.0, "sessions-floor"}});
    obs::Registry::install(&registry);
    obs::Tracer::install(&tracer);
    obs::TimelineWriter::install(&timeline);
    obs::HealthMonitor::install(&monitor);
    const auto [obs_acc, obs_archive] = capture_run(c);
    obs::Registry::install(nullptr);
    obs::Tracer::install(nullptr);
    obs::TimelineWriter::install(nullptr);
    obs::HealthMonitor::install(nullptr);
    EXPECT_TRUE(timeline.close().ok());
    EXPECT_EQ(timeline.days_written(), 2u);  // one record per fleet day
    EXPECT_TRUE(monitor.healthy());
    std::filesystem::remove(timeline_path);

    EXPECT_EQ(obs_acc.checksum(), ref_acc.checksum())
        << "threads=" << c.threads << " users_per_shard=" << c.users_per_shard
        << " batch=" << c.batch;
    EXPECT_EQ(obs_archive.checksum(), ref_archive.checksum());
    ASSERT_EQ(obs_archive.shards.size(), ref_archive.shards.size());
    for (std::size_t s = 0; s < ref_archive.shards.size(); ++s) {
      EXPECT_TRUE(obs_archive.shards[s] == ref_archive.shards[s]) << "shard " << s;
    }

    // Not vacuous: the instrumented run recorded sessions and (for pooled
    // cases) predictor flushes, and the tracer saw spans.
    const obs::RegistrySnapshot snap = registry.snapshot();
    const obs::MetricSnapshot* steps = snap.find("sim.session.step_us");
    ASSERT_NE(steps, nullptr);
    EXPECT_EQ(steps->count, obs_acc.sessions);
    if (c.mode == sim::SchedulerMode::kCohortWaves || c.batch > 1) {
      EXPECT_GT(registry.counter("predictor.pool.flushes"), 0u);
      EXPECT_GE(registry.counter("predictor.pool.queries"),
                registry.counter("predictor.pool.flushes"));
      EXPECT_GT(tracer.retained_events() + tracer.dropped_events(), 0u);
    }
    EXPECT_GT(registry.counter("core.optimization.rounds"), 0u);
  }
}

// ---------------------------------------------------------------------------
// Snapshot/resume parity (the snapshot subsystem's headline contract): for
// any (scheduler mode x threads x users_per_shard x predictor_batch) grid
// point, simulating days [0, D+K) in one run vs. snapshot-at-D (through a
// disk round trip) then resume must produce a bitwise-identical
// FleetAccumulator AND bitwise-identical telemetry archive bytes.
// ---------------------------------------------------------------------------

using SnapshotCase =
    std::tuple<int /*scheduler*/, int /*threads*/, int /*users_per_shard*/, int /*batch*/>;

class SnapshotResumeParity : public ::testing::TestWithParam<SnapshotCase> {
 public:
  static constexpr std::uint64_t kSeed = 77;
  static constexpr std::size_t kBoundary = 2;  // D = 2, K = 2 over 4 days

  static sim::FleetConfig grid_config(int scheduler, int threads, int users_per_shard,
                                      int batch) {
    sim::FleetConfig cfg = FleetBatchingInvariance::fleet_config();
    cfg.days = 4;
    cfg.scheduler = scheduler == 0 ? sim::SchedulerMode::kPerUser
                                   : sim::SchedulerMode::kCohortWaves;
    cfg.threads = static_cast<std::size_t>(threads);
    cfg.users_per_shard = static_cast<std::size_t>(users_per_shard);
    cfg.predictor_batch = static_cast<std::size_t>(batch);
    return cfg;
  }

  static sim::FleetRunner::PredictorFactory predictor_factory() {
    return [] {
      Rng net_rng(4242);
      return predictor::HybridExitPredictor(
          std::make_shared<predictor::StallExitNet>(net_rng),
          std::make_shared<predictor::OverallStatsModel>());
    };
  }

  static sim::FleetRunner make_runner(const sim::FleetConfig& cfg) {
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory(predictor_factory());
    return runner;
  }
};

TEST_P(SnapshotResumeParity, DiskResumeMatchesFullRunBitwise) {
  const auto [scheduler, threads, users_per_shard, batch] = GetParam();
  const sim::FleetConfig cfg = grid_config(scheduler, threads, users_per_shard, batch);

  // Reference: the uninterrupted [0, D+K) run, captured.
  sim::FleetRunner full_runner = make_runner(cfg);
  telemetry::ShardedCapture full_capture(telemetry::ShardedCapture::Config{4});
  full_runner.set_telemetry_sink(&full_capture);
  const sim::FleetAccumulator full = full_runner.run(kSeed);
  const telemetry::FleetArchive full_archive = full_capture.finish();
  ASSERT_GT(full.lingxi_optimizations, 0u);

  // Leg 1: [0, D), snapshotted to disk.
  sim::FleetRunner leg_runner = make_runner(cfg);
  telemetry::ShardedCapture leg_capture(telemetry::ShardedCapture::Config{4});
  leg_runner.set_telemetry_sink(&leg_capture);
  sim::FleetDayState state;
  leg_runner.run_days(kSeed, 0, kBoundary, nullptr, &state);
  auto snap = snapshot::capture_snapshot(leg_runner, kSeed, std::move(state), &leg_capture);
  ASSERT_TRUE(snap.has_value()) << snap.error().message;
  const std::string dir = ::testing::TempDir() + "/lingxi_prop_snap_" +
                          std::to_string(scheduler) + "_" + std::to_string(threads) + "_" +
                          std::to_string(users_per_shard) + "_" + std::to_string(batch);
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(snapshot::save_snapshot(*snap, dir, 3).ok());

  // Leg 2: load, verify compatibility, resume [D, D+K) with a fresh runner,
  // wrapped factory and restored capture — the cross-process shape.
  auto loaded = snapshot::load_snapshot(dir);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  ASSERT_TRUE(snapshot::check_compatible(*loaded, cfg, kSeed).ok());
  sim::FleetRunner resumed_runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  resumed_runner.set_predictor_factory(
      snapshot::resume_predictor_factory(predictor_factory(), loaded->net_model));
  telemetry::ShardedCapture resumed_capture(telemetry::ShardedCapture::Config{4});
  ASSERT_TRUE(snapshot::restore_capture(resumed_capture, cfg, *loaded).ok());
  resumed_runner.set_telemetry_sink(&resumed_capture);
  const sim::FleetAccumulator resumed =
      resumed_runner.run_days(kSeed, kBoundary, cfg.days, &loaded->state);

  EXPECT_EQ(resumed.checksum(), full.checksum())
      << "scheduler=" << scheduler << " threads=" << threads
      << " users_per_shard=" << users_per_shard << " batch=" << batch;
  EXPECT_EQ(resumed.watch_ticks, full.watch_ticks);
  EXPECT_EQ(resumed.stall_ticks, full.stall_ticks);
  EXPECT_EQ(resumed.bitrate_time_ticks, full.bitrate_time_ticks);
  EXPECT_EQ(resumed.lingxi_optimizations, full.lingxi_optimizations);
  EXPECT_EQ(resumed.lingxi_mc_evaluations, full.lingxi_mc_evaluations);
  EXPECT_EQ(resumed.adjusted_user_days, full.adjusted_user_days);

  const telemetry::FleetArchive resumed_archive = resumed_capture.finish();
  EXPECT_EQ(resumed_archive.checksum(), full_archive.checksum());
  ASSERT_EQ(resumed_archive.shards.size(), full_archive.shards.size());
  for (std::size_t s = 0; s < full_archive.shards.size(); ++s) {
    EXPECT_TRUE(resumed_archive.shards[s] == full_archive.shards[s]) << "shard " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SnapshotResumeParity,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(1, 8),
                                            ::testing::Values(0, 64)));

// ---------------------------------------------------------------------------
// Deterministic timeline (the health-timeline headline contract): the
// deterministic section of every day record — the accumulator-derived
// `sim.fleet.*` gauges — is BITWISE identical across the whole (scheduler x
// threads x users_per_shard x predictor_batch) grid, and an SLO rule over a
// deterministic metric fires on the same fleet day in every cell. A
// companion test pins the same bytes across a checkpoint/kill/resume splice:
// leg timelines concatenate to the uninterrupted run's timeline.
// ---------------------------------------------------------------------------

class DeterministicTimeline : public ::testing::TestWithParam<SnapshotCase> {
 public:
  static constexpr std::uint64_t kSeed = 77;

  struct TimelineRun {
    sim::FleetAccumulator acc;
    std::vector<obs::TimelineRecord> records;
    std::vector<obs::HealthAlert> alerts;
  };

  /// Run the 8-user / 4-day grid fleet with the full health plane installed
  /// and return the decoded timeline. `rules` arms the SLO monitor.
  static TimelineRun run_with_timeline(const sim::FleetConfig& cfg,
                                       const std::vector<obs::SloRule>& rules,
                                       const std::string& tag) {
    const std::string path = ::testing::TempDir() + "/lingxi_dtl_" + tag + ".bin";
    TimelineRun out;
    {
      obs::Registry registry;
      obs::TimelineWriter writer(path);
      obs::HealthMonitor monitor(rules);
      obs::Registry::install(&registry);
      obs::TimelineWriter::install(&writer);
      obs::HealthMonitor::install(&monitor);
      sim::FleetRunner runner = SnapshotResumeParity::make_runner(cfg);
      out.acc = runner.run(kSeed);
      obs::Registry::install(nullptr);
      obs::TimelineWriter::install(nullptr);
      obs::HealthMonitor::install(nullptr);
      EXPECT_TRUE(writer.close().ok());
      out.alerts = monitor.alerts();
    }
    auto reader = obs::TimelineReader::open(path);
    EXPECT_TRUE(static_cast<bool>(reader)) << reader.error().message;
    auto records = reader->read_all();
    EXPECT_TRUE(static_cast<bool>(records)) << records.error().message;
    out.records = std::move(*records);
    std::filesystem::remove(path);
    return out;
  }

  /// Day records only (alert records interleave with them in file order).
  static std::vector<const obs::TimelineRecord*> day_records(const TimelineRun& run) {
    std::vector<const obs::TimelineRecord*> days;
    for (const obs::TimelineRecord& r : run.records) {
      if (r.type == obs::TimelineRecord::Type::kDay) days.push_back(&r);
    }
    return days;
  }

  static double det_gauge(const obs::TimelineRecord& day, std::string_view name) {
    for (const obs::MetricSnapshot& m : day.deterministic) {
      if (m.name == name) return m.value;
    }
    ADD_FAILURE() << "gauge " << name << " missing from deterministic section";
    return 0.0;
  }

  struct Reference {
    std::vector<obs::SloRule> rules;
    TimelineRun run;
  };

  /// Reference cell (per-user scheduler, serial, shard=2, scalar predictor)
  /// plus an SLO rule derived from a probe run so that the ceiling on the
  /// deterministic sessions_total is crossed mid-run — the alert must then
  /// land on the SAME day in every grid cell.
  static const Reference& reference() {
    static const Reference* ref = [] {
      auto* r = new Reference;
      const sim::FleetConfig cfg = SnapshotResumeParity::grid_config(0, 1, 2, 0);
      const TimelineRun probe = run_with_timeline(cfg, {}, "probe");
      auto days = day_records(probe);
      EXPECT_EQ(days.size(), 4u);
      const double day2 = det_gauge(*days[1], "sim.fleet.sessions_total");
      const double day3 = det_gauge(*days[2], "sim.fleet.sessions_total");
      EXPECT_LT(day2, day3);
      r->rules = {{obs::SloKind::kGaugeCeiling, "sim.fleet.sessions_total",
                   0.5 * (day2 + day3), "sessions-ceiling"}};
      r->run = run_with_timeline(cfg, r->rules, "ref");
      return r;
    }();
    return *ref;
  }
};

TEST_P(DeterministicTimeline, DetSectionBytesIdenticalAcrossGrid) {
  const Reference& ref = reference();
  const auto ref_days = day_records(ref.run);
  ASSERT_EQ(ref_days.size(), 4u);  // one record per fleet day
  // The derived ceiling fires exactly once, on day 3 (the first boundary
  // whose deterministic sessions_total exceeds it), and rides the timeline.
  ASSERT_EQ(ref.run.alerts.size(), 1u);
  EXPECT_EQ(ref.run.alerts[0].day, 3u);
  EXPECT_EQ(ref.run.alerts[0].rule, "sessions-ceiling");

  const auto [scheduler, threads, users_per_shard, batch] = GetParam();
  const std::string tag = std::to_string(scheduler) + "_" + std::to_string(threads) +
                          "_" + std::to_string(users_per_shard) + "_" +
                          std::to_string(batch);
  const TimelineRun run = run_with_timeline(
      SnapshotResumeParity::grid_config(scheduler, threads, users_per_shard, batch),
      ref.rules, tag);

  // Result parity first: arming the health plane changed no result bit.
  EXPECT_EQ(run.acc.checksum(), ref.run.acc.checksum()) << tag;

  // The deterministic section of every day record is bitwise identical.
  const auto days = day_records(run);
  ASSERT_EQ(days.size(), ref_days.size()) << tag;
  for (std::size_t d = 0; d < days.size(); ++d) {
    EXPECT_EQ(days[d]->day, ref_days[d]->day) << tag;
    EXPECT_EQ(days[d]->deterministic_bytes, ref_days[d]->deterministic_bytes)
        << tag << " day " << days[d]->day;
  }

  // The deterministic SLO rule fired on the same fleet day.
  ASSERT_EQ(run.alerts.size(), ref.run.alerts.size()) << tag;
  for (std::size_t a = 0; a < run.alerts.size(); ++a) {
    EXPECT_EQ(run.alerts[a].day, ref.run.alerts[a].day) << tag;
    EXPECT_EQ(run.alerts[a].rule, ref.run.alerts[a].rule) << tag;
    EXPECT_EQ(run.alerts[a].observed, ref.run.alerts[a].observed) << tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DeterministicTimeline,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(1, 8),
                                            ::testing::Values(0, 64)));

TEST(DeterministicTimelineSplice, LegTimelinesConcatenateToFullRun) {
  // Kill/resume through the snapshot subsystem's disk round trip: the
  // resumed process writes its own timeline with fresh obs sinks, and the
  // two legs' day records concatenate to the uninterrupted run's — same
  // days, same deterministic bytes — while the deterministic SLO alert
  // fires on the same day (it lands in leg 2, whose monitor starts cold).
  const auto& ref = DeterministicTimeline::reference();
  const sim::FleetConfig cfg = SnapshotResumeParity::grid_config(1, 4, 3, 7);

  const DeterministicTimeline::TimelineRun full =
      DeterministicTimeline::run_with_timeline(cfg, ref.rules, "splice_full");
  const auto full_days = DeterministicTimeline::day_records(full);
  ASSERT_EQ(full_days.size(), 4u);
  ASSERT_EQ(full.alerts.size(), 1u);
  ASSERT_EQ(full.alerts[0].day, 3u);

  // Leg 1: days [0, 2) with its own health plane, snapshotted to disk.
  const std::string dir = ::testing::TempDir() + "/lingxi_dtl_splice_snap";
  std::filesystem::remove_all(dir);
  DeterministicTimeline::TimelineRun leg1;
  sim::FleetDayState state;
  {
    const std::string path = ::testing::TempDir() + "/lingxi_dtl_leg1.bin";
    obs::Registry registry;
    obs::TimelineWriter writer(path);
    obs::HealthMonitor monitor(ref.rules);
    obs::Registry::install(&registry);
    obs::TimelineWriter::install(&writer);
    obs::HealthMonitor::install(&monitor);
    sim::FleetRunner runner = SnapshotResumeParity::make_runner(cfg);
    runner.run_days(DeterministicTimeline::kSeed, 0, 2, nullptr, &state);
    auto snap = snapshot::capture_snapshot(runner, DeterministicTimeline::kSeed,
                                           std::move(state), nullptr);
    obs::Registry::install(nullptr);
    obs::TimelineWriter::install(nullptr);
    obs::HealthMonitor::install(nullptr);
    ASSERT_TRUE(snap.has_value()) << snap.error().message;
    ASSERT_TRUE(snapshot::save_snapshot(*snap, dir, 3).ok());
    EXPECT_TRUE(writer.close().ok());
    leg1.alerts = monitor.alerts();
    auto reader = obs::TimelineReader::open(path);
    ASSERT_TRUE(static_cast<bool>(reader));
    auto records = reader->read_all();
    ASSERT_TRUE(static_cast<bool>(records)) << records.error().message;
    leg1.records = std::move(*records);
    std::filesystem::remove(path);
  }
  EXPECT_TRUE(leg1.alerts.empty());  // the ceiling is not yet crossed

  // Leg 2: a "new process" — fresh runner, restored predictor, fresh sinks.
  auto loaded = snapshot::load_snapshot(dir);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  ASSERT_TRUE(snapshot::check_compatible(*loaded, cfg, DeterministicTimeline::kSeed).ok());
  DeterministicTimeline::TimelineRun leg2;
  {
    const std::string path = ::testing::TempDir() + "/lingxi_dtl_leg2.bin";
    obs::Registry registry;
    obs::TimelineWriter writer(path);
    obs::HealthMonitor monitor(ref.rules);
    obs::Registry::install(&registry);
    obs::TimelineWriter::install(&writer);
    obs::HealthMonitor::install(&monitor);
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory(snapshot::resume_predictor_factory(
        SnapshotResumeParity::predictor_factory(), loaded->net_model));
    leg2.acc = runner.run_days(DeterministicTimeline::kSeed, 2, cfg.days, &loaded->state);
    obs::Registry::install(nullptr);
    obs::TimelineWriter::install(nullptr);
    obs::HealthMonitor::install(nullptr);
    EXPECT_TRUE(writer.close().ok());
    leg2.alerts = monitor.alerts();
    auto reader = obs::TimelineReader::open(path);
    ASSERT_TRUE(static_cast<bool>(reader));
    auto records = reader->read_all();
    ASSERT_TRUE(static_cast<bool>(records)) << records.error().message;
    leg2.records = std::move(*records);
    std::filesystem::remove(path);
  }
  std::filesystem::remove_all(dir);

  // Results splice bitwise (the snapshot contract, re-checked with obs on).
  EXPECT_EQ(leg2.acc.checksum(), full.acc.checksum());

  // Day records concatenate: leg1 holds days 1-2, leg2 days 3-4, and each
  // deterministic section matches the uninterrupted run byte for byte.
  const auto leg1_days = DeterministicTimeline::day_records(leg1);
  const auto leg2_days = DeterministicTimeline::day_records(leg2);
  ASSERT_EQ(leg1_days.size(), 2u);
  ASSERT_EQ(leg2_days.size(), 2u);
  const std::vector<const obs::TimelineRecord*> spliced = {
      leg1_days[0], leg1_days[1], leg2_days[0], leg2_days[1]};
  for (std::size_t d = 0; d < full_days.size(); ++d) {
    EXPECT_EQ(spliced[d]->day, full_days[d]->day) << "day index " << d;
    EXPECT_EQ(spliced[d]->deterministic_bytes, full_days[d]->deterministic_bytes)
        << "day " << full_days[d]->day;
  }

  // The deterministic alert fires in leg 2, on the same day as the full run.
  ASSERT_EQ(leg2.alerts.size(), 1u);
  EXPECT_EQ(leg2.alerts[0].day, full.alerts[0].day);
  EXPECT_EQ(leg2.alerts[0].rule, full.alerts[0].rule);
  EXPECT_EQ(leg2.alerts[0].observed, full.alerts[0].observed);
}

// ---------------------------------------------------------------------------
// Scenario determinism (the scenario subsystem's headline contract): with a
// script that fires every event kind — bandwidth shock, diurnal session
// curve, flash crowd, churn, cohort override — the merged accumulator
// checksum AND the telemetry archive bytes are identical across the whole
// (scheduler x threads x users_per_shard x predictor_batch) grid. Two
// companion tests pin the transparency half of the contract: an empty
// script is byte-for-byte the unscripted run, and a behaviorally NEUTRAL
// non-empty script (scale-1 shock, all-ones curve, day-0 flash crowd,
// default-config override) reproduces the unscripted accumulator and shard
// bytes while only the manifest — whose config digest pins the script —
// differs.
// ---------------------------------------------------------------------------

class ScenarioParity : public ::testing::TestWithParam<SnapshotCase> {
 public:
  static constexpr std::uint64_t kSeed = 77;

  /// Every event kind fires inside the 8-user / 4-day grid fleet. Cohorts
  /// deliberately cut across the users_per_shard=8 single-shard case and the
  /// users_per_shard=1 all-shards case alike; the override uses a stride so
  /// no cohort boundary aligns with a shard boundary.
  static scenario::ScenarioScript event_script() {
    scenario::ScenarioScript script;
    scenario::BandwidthShock shock;
    shock.cohort = {0, 4, 1, 0};
    shock.first_day = 1;
    shock.last_day = 3;
    shock.bandwidth_scale = 0.5;
    shock.sd_scale = 1.3;
    script.shocks.push_back(shock);

    scenario::SessionCurve curve;
    curve.cohort = {0, 8, 1, 0};
    curve.multipliers = {1.0, 1.5, 0.5, 1.0};
    script.curves.push_back(curve);

    scenario::FlashCrowd crowd;
    crowd.cohort = {6, 8, 1, 0};
    crowd.arrival_day = 1;
    script.flash_crowds.push_back(crowd);

    scenario::ChurnEvent churn;
    churn.cohort = {2, 4, 1, 0};
    churn.day = 2;
    script.churns.push_back(churn);

    scenario::CohortOverride mobile;  // slots 1 and 5
    mobile.cohort = {0, 8, 4, 1};
    mobile.population.sensitive_fraction = 0.50;
    mobile.population.threshold_fraction = 0.35;
    mobile.population.insensitive_fraction = 0.15;
    mobile.population.low_tolerance_fraction = 0.40;
    mobile.population.mid_tolerance_fraction = 0.45;
    mobile.population.high_tolerance_fraction = 0.10;
    mobile.population.very_high_tolerance_fraction = 0.05;
    script.cohorts.push_back(mobile);
    return script;
  }

  /// Non-empty but behaviorally inert: exercises the scenario-on code paths
  /// (override factory branch, arrival/curve/shock queries, override drift
  /// population) without perturbing a single random draw or result bit.
  static scenario::ScenarioScript neutral_script() {
    scenario::ScenarioScript script;
    scenario::BandwidthShock shock;
    shock.cohort = {0, 8, 1, 0};
    shock.first_day = 0;
    shock.last_day = 4;
    shock.bandwidth_scale = 1.0;
    shock.sd_scale = 1.0;
    script.shocks.push_back(shock);

    scenario::SessionCurve curve;
    curve.cohort = {0, 8, 1, 0};
    curve.multipliers = {1.0};
    script.curves.push_back(curve);

    scenario::FlashCrowd crowd;
    crowd.cohort = {0, 8, 1, 0};
    crowd.arrival_day = 0;  // present from day 0: nobody is ever absent
    script.flash_crowds.push_back(crowd);

    scenario::CohortOverride stock;  // default config == fleet population
    stock.cohort = {0, 8, 1, 0};
    script.cohorts.push_back(stock);
    return script;
  }

  static std::pair<sim::FleetAccumulator, telemetry::FleetArchive> run(
      const scenario::ScenarioScript& script, int scheduler, int threads,
      int users_per_shard, int batch) {
    sim::FleetConfig cfg =
        SnapshotResumeParity::grid_config(scheduler, threads, users_per_shard, batch);
    cfg.scenario = script;
    sim::FleetRunner runner = SnapshotResumeParity::make_runner(cfg);
    telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
    runner.set_telemetry_sink(&capture);
    const sim::FleetAccumulator acc = runner.run(kSeed);
    return std::make_pair(acc, capture.finish());
  }
};

TEST_P(ScenarioParity, ChecksumAndArchiveBytesIdenticalAcrossGrid) {
  static const auto reference = run(event_script(), 0, 1, 2, 0);
  // Meaningful only if the scripted world actually moved: the two churned
  // slots emit departure summaries on top of the 8 horizon summaries, and
  // LingXi kept optimizing through the events.
  ASSERT_EQ(reference.first.users, 10u);
  ASSERT_GT(reference.first.lingxi_optimizations, 0u);

  const auto [scheduler, threads, users_per_shard, batch] = GetParam();
  const auto [acc, archive] =
      run(event_script(), scheduler, threads, users_per_shard, batch);
  EXPECT_EQ(acc.checksum(), reference.first.checksum())
      << "scheduler=" << scheduler << " threads=" << threads
      << " users_per_shard=" << users_per_shard << " batch=" << batch;
  EXPECT_EQ(acc.sessions, reference.first.sessions);
  EXPECT_EQ(acc.users, reference.first.users);
  EXPECT_EQ(acc.watch_ticks, reference.first.watch_ticks);
  EXPECT_EQ(acc.stall_ticks, reference.first.stall_ticks);
  EXPECT_EQ(acc.bitrate_time_ticks, reference.first.bitrate_time_ticks);
  EXPECT_EQ(acc.lingxi_optimizations, reference.first.lingxi_optimizations);
  EXPECT_EQ(acc.lingxi_mc_evaluations, reference.first.lingxi_mc_evaluations);
  EXPECT_EQ(acc.adjusted_user_days, reference.first.adjusted_user_days);

  EXPECT_EQ(archive.checksum(), reference.second.checksum());
  ASSERT_EQ(archive.shards.size(), reference.second.shards.size());
  for (std::size_t s = 0; s < reference.second.shards.size(); ++s) {
    EXPECT_TRUE(archive.shards[s] == reference.second.shards[s]) << "shard " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ScenarioParity,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(1, 8),
                                            ::testing::Values(0, 64)));

TEST(ScenarioScript, EventScriptActuallyChangesTheRun) {
  // Non-vacuity for the grid above: the scripted run differs from the
  // unscripted one in exactly the expected shape — extra user summaries from
  // the churn departures and a different session tally from the curve +
  // flash-crowd absence.
  const auto scripted = ScenarioParity::run(ScenarioParity::event_script(), 0, 1, 2, 0);
  const auto plain = ScenarioParity::run(scenario::ScenarioScript{}, 0, 1, 2, 0);
  EXPECT_EQ(scripted.first.users, plain.first.users + 2);
  EXPECT_NE(scripted.first.sessions, plain.first.sessions);
  EXPECT_NE(scripted.first.checksum(), plain.first.checksum());
}

TEST(ScenarioScript, EmptyScriptIsByteForByteTheUnscriptedRun) {
  // Unscripted reference built WITHOUT touching FleetConfig::scenario.
  const sim::FleetConfig cfg = SnapshotResumeParity::grid_config(1, 4, 3, 7);
  sim::FleetRunner runner = SnapshotResumeParity::make_runner(cfg);
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
  runner.set_telemetry_sink(&capture);
  const sim::FleetAccumulator plain = runner.run(ScenarioParity::kSeed);
  const telemetry::FleetArchive plain_archive = capture.finish();

  const auto [acc, archive] = ScenarioParity::run(scenario::ScenarioScript{}, 1, 4, 3, 7);
  EXPECT_EQ(acc.checksum(), plain.checksum());
  // Full archive equality INCLUDING the manifest: the config digest skips
  // the scenario section when the script is empty, so existing archives and
  // snapshots keep their digests.
  EXPECT_EQ(archive.manifest.config_digest, plain_archive.manifest.config_digest);
  EXPECT_EQ(archive.checksum(), plain_archive.checksum());
  ASSERT_EQ(archive.shards.size(), plain_archive.shards.size());
  for (std::size_t s = 0; s < plain_archive.shards.size(); ++s) {
    EXPECT_TRUE(archive.shards[s] == plain_archive.shards[s]) << "shard " << s;
  }
}

TEST(ScenarioScript, NeutralScriptIsBitTransparent) {
  // The strong transparency property: a NON-empty script whose events are
  // all no-ops runs the scenario code paths yet reproduces the unscripted
  // results and shard bytes exactly. Only the manifest moves, because a
  // non-empty script is pinned into the config digest.
  const scenario::ScenarioScript script = ScenarioParity::neutral_script();
  ASSERT_FALSE(script.empty());
  const auto neutral = ScenarioParity::run(script, 0, 1, 2, 0);
  const auto plain = ScenarioParity::run(scenario::ScenarioScript{}, 0, 1, 2, 0);
  EXPECT_EQ(neutral.first.checksum(), plain.first.checksum());
  EXPECT_EQ(neutral.first.sessions, plain.first.sessions);
  EXPECT_EQ(neutral.first.users, plain.first.users);
  ASSERT_EQ(neutral.second.shards.size(), plain.second.shards.size());
  for (std::size_t s = 0; s < plain.second.shards.size(); ++s) {
    EXPECT_TRUE(neutral.second.shards[s] == plain.second.shards[s]) << "shard " << s;
  }
  EXPECT_NE(neutral.second.manifest.config_digest, plain.second.manifest.config_digest);
}

// ---------------------------------------------------------------------------
// Permutation invariance of batch assembly: the order in which queries are
// gathered into a predictor batch must not change any individual result —
// each row's forward is an independent, order-preserving accumulation.
// ---------------------------------------------------------------------------

TEST(PredictBatchAssembly, PermutationInvariantAndScalarExact) {
  Rng rng(31);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os = std::make_shared<predictor::OverallStatsModel>();
  for (std::size_t i = 0; i < 300; ++i) {
    os->observe(i % 4, static_cast<predictor::SwitchType>(i % 3), rng.bernoulli(0.04));
  }
  const predictor::HybridExitPredictor predictor(net, os);

  // Distinct engagement states (varied stall histories) -> distinct queries.
  constexpr std::size_t kQueries = 13;
  std::vector<predictor::EngagementState> states;
  for (std::size_t s = 0; s < kQueries; ++s) {
    Rng hist_rng(900 + s);
    predictor::EngagementState state;
    state.begin_session();
    for (std::size_t i = 0; i < 24; ++i) {
      sim::SegmentRecord seg;
      seg.index = i;
      seg.level = i % 4;
      seg.bitrate = hist_rng.uniform(300.0, 4000.0);
      seg.throughput = hist_rng.uniform(500.0, 8000.0);
      seg.stall_time = hist_rng.bernoulli(0.35) ? hist_rng.uniform(0.1, 3.0) : 0.0;
      state.on_segment(seg, 1.0);
      if (seg.stall_time > 0.0 && hist_rng.bernoulli(0.3)) state.on_stall_exit();
    }
    states.push_back(std::move(state));
  }

  std::vector<predictor::HybridExitPredictor::ExitQuery> queries(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    queries[i].state = &states[i];
    queries[i].level = i % 4;
    queries[i].stall_time = i % 4 == 0 ? 0.0 : 0.1 + 0.15 * static_cast<double>(i);
    queries[i].sw = static_cast<predictor::SwitchType>(i % 3);
  }

  std::vector<double> scalar(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) scalar[i] = predictor.predict(queries[i]);

  std::vector<double> in_order(kQueries);
  predictor.predict_batch(kQueries, queries.data(), in_order.data());

  // A fixed non-trivial permutation (reverse + interleave via stride 5,
  // coprime with 13).
  std::vector<std::size_t> perm;
  for (std::size_t i = 0; i < kQueries; ++i) perm.push_back((i * 5 + 3) % kQueries);
  std::vector<predictor::HybridExitPredictor::ExitQuery> shuffled;
  for (const std::size_t p : perm) shuffled.push_back(queries[p]);
  std::vector<double> permuted(kQueries);
  predictor.predict_batch(kQueries, shuffled.data(), permuted.data());

  for (std::size_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(in_order[i], scalar[i]) << "in-order query " << i;
    EXPECT_EQ(permuted[i], scalar[perm[i]]) << "permuted slot " << i;
  }
}

}  // namespace
}  // namespace lingxi
