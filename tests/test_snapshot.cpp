// Unit + integration tests for src/snapshot: state codecs (engagement, GP /
// OBO, per-user fleet state), on-disk snapshot round trips, corruption and
// compatibility rejection, and bitwise resume parity — in process and
// through a saved snapshot directory, accumulator checksums and telemetry
// archive bytes alike. The full (scheduler x threads x users_per_shard x
// predictor_batch) parity grid lives in test_properties.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "abr/hyb.h"
#include "bayesopt/obo.h"
#include "common/rng.h"
#include "logstore/record.h"
#include "nn/serialize.h"
#include "predictor/engagement_state.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"
#include "sim/fleet_runner.h"
#include "snapshot/snapshot.h"
#include "telemetry/capture.h"

namespace lingxi {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lingxi_snapshot_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Small stall-prone LingXi fleet: optimizations (and so evolving per-user
// state worth snapshotting) actually happen.
sim::FleetConfig fleet_config() {
  sim::FleetConfig cfg;
  cfg.users = 8;
  cfg.days = 4;
  cfg.sessions_per_user_day = 5;
  cfg.users_per_shard = 3;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.intervention_day = 1;
  cfg.network.median_bandwidth = 1100.0;
  cfg.network.sigma = 0.4;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.lingxi.obo_rounds = 2;
  cfg.lingxi.monte_carlo.samples = 6;
  cfg.lingxi.monte_carlo.sample_duration = 12.0;
  cfg.lingxi.monte_carlo.min_samples_before_prune = 3;
  return cfg;
}

sim::FleetRunner::PredictorFactory predictor_factory(std::uint64_t net_seed = 4242) {
  return [net_seed] {
    Rng net_rng(net_seed);
    return predictor::HybridExitPredictor(
        std::make_shared<predictor::StallExitNet>(net_rng),
        std::make_shared<predictor::OverallStatsModel>());
  };
}

sim::FleetRunner make_runner(const sim::FleetConfig& cfg) {
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory(predictor_factory());
  return runner;
}

// ---------------------------------------------------------------------------
// State codecs.
// ---------------------------------------------------------------------------

predictor::EngagementState stall_heavy_engagement(std::uint64_t seed) {
  Rng rng(seed);
  predictor::EngagementState state;
  state.begin_session();
  for (std::size_t i = 0; i < 40; ++i) {
    sim::SegmentRecord seg;
    seg.index = i;
    seg.level = i % 4;
    seg.bitrate = rng.uniform(300.0, 4000.0);
    seg.throughput = rng.uniform(500.0, 8000.0);
    seg.stall_time = rng.bernoulli(0.3) ? rng.uniform(0.1, 3.0) : 0.0;
    state.on_segment(seg, 1.0);
    if (seg.stall_time > 0.0 && rng.bernoulli(0.4)) state.on_stall_exit();
  }
  return state;
}

TEST(EngagementSnapshot, RoundTripContinuesBitwise) {
  predictor::EngagementState original = stall_heavy_engagement(5);
  predictor::EngagementState restored;
  restored.restore(original.snapshot());
  EXPECT_EQ(restored.snapshot(), original.snapshot());

  // Feed both the same future and compare the exact feature matrices — the
  // interval anchors must carry over, not re-anchor.
  original.begin_session();
  restored.begin_session();
  Rng rng(77);
  for (std::size_t i = 0; i < 16; ++i) {
    sim::SegmentRecord seg;
    seg.index = i;
    seg.bitrate = rng.uniform(300.0, 4000.0);
    seg.throughput = rng.uniform(500.0, 8000.0);
    seg.stall_time = i % 3 == 0 ? rng.uniform(0.1, 2.0) : 0.0;
    original.on_segment(seg, 1.0);
    restored.on_segment(seg, 1.0);
    if (seg.stall_time > 0.0 && i % 6 == 0) {
      original.on_stall_exit();
      restored.on_stall_exit();
    }
    const nn::Tensor a = original.features();
    const nn::Tensor b = restored.features();
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j], b[j]) << "segment " << i << " feature " << j;
    }
  }
}

TEST(GpState, RoundTripReproducesPosteriorBitwise) {
  bayesopt::GpConfig config;
  config.length_scale = 0.31;
  bayesopt::GaussianProcess gp(config);
  Rng rng(9);
  for (int i = 0; i < 12; ++i) {
    gp.observe({rng.uniform(), rng.uniform()}, rng.uniform());
  }
  bayesopt::GaussianProcess restored;
  restored.restore(gp.state());
  EXPECT_EQ(restored.state(), gp.state());
  EXPECT_EQ(restored.best_y(), gp.best_y());
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x{rng.uniform(), rng.uniform()};
    const auto a = gp.predict(x);
    const auto b = restored.predict(x);
    EXPECT_EQ(a.mean, b.mean) << "probe " << i;
    EXPECT_EQ(a.variance, b.variance) << "probe " << i;
  }
}

TEST(GpState, EmptyRoundTrip) {
  bayesopt::GaussianProcess gp;
  bayesopt::GaussianProcess restored;
  restored.restore(gp.state());
  const auto p = restored.predict({0.5});
  EXPECT_EQ(p.mean, 0.0);
  EXPECT_GT(p.variance, 0.0);
}

TEST(OboState, RoundTripContinuesCandidateSequenceBitwise) {
  bayesopt::OnlineBayesOpt obo(2);
  Rng rng(31);
  obo.warm_start({0.4, 0.6});
  for (int i = 0; i < 5; ++i) {
    const auto x = obo.next_candidate(rng);
    obo.update(x, rng.uniform());
  }
  // Checkpoint mid-round: optimizer state + rng position together must
  // reproduce the exact remaining candidate sequence.
  const auto obo_state = obo.state();
  const Rng::State rng_state = rng.state();

  bayesopt::OnlineBayesOpt resumed(2);
  resumed.restore(obo_state);
  Rng resumed_rng;
  resumed_rng.restore(rng_state);
  for (int i = 0; i < 5; ++i) {
    const auto a = obo.next_candidate(rng);
    const auto b = resumed.next_candidate(resumed_rng);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t d = 0; d < a.size(); ++d) EXPECT_EQ(a[d], b[d]) << "round " << i;
    const double y = rng.uniform();
    const double y2 = resumed_rng.uniform();
    EXPECT_EQ(y, y2);
    obo.update(a, y);
    resumed.update(b, y2);
  }
  EXPECT_EQ(resumed.state(), obo.state());
}

TEST(OboCodec, RoundTrip) {
  bayesopt::OnlineBayesOpt obo(3);
  Rng rng(17);
  obo.warm_start({0.1, 0.9, 0.5});
  for (int i = 0; i < 4; ++i) {
    const auto x = obo.next_candidate(rng);
    obo.update(x, rng.uniform());
  }
  const auto decoded = snapshot::decode_obo_state(snapshot::encode_obo_state(obo.state()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, obo.state());
}

TEST(OboCodec, RejectsTruncation) {
  bayesopt::OnlineBayesOpt obo(2);
  Rng rng(18);
  const auto x = obo.next_candidate(rng);
  obo.update(x, 0.25);
  auto bytes = snapshot::encode_obo_state(obo.state());
  bytes.resize(bytes.size() - 5);
  const auto decoded = snapshot::decode_obo_state(bytes);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, Error::Code::kCorrupt);
}

sim::UserFleetState sample_user_state() {
  sim::UserFleetState state;
  Rng rng(63);
  for (int i = 0; i < 19; ++i) rng.next();
  (void)rng.normal();  // exercise the cached-normal flag
  state.session_rng = rng.state();
  state.params.stall_penalty = 7.5;
  state.params.switch_penalty = 1.25;
  state.params.hyb_beta = 0.62;
  state.adjusted_days = 3;
  state.has_lingxi = true;
  state.lingxi.engagement = stall_heavy_engagement(8).snapshot();
  state.lingxi.bandwidth_window = {900.0, 1100.0, 1050.5, 980.25};
  state.lingxi.stalls_since_optimization = 2;
  state.lingxi.has_optimized = true;
  // The controller's adopted params differ from the live ABR params during
  // an AA period — the codec must carry both.
  state.lingxi.params.stall_penalty = 6.25;
  state.lingxi.params.switch_penalty = 0.5;
  state.lingxi.params.hyb_beta = 0.71;
  state.lingxi.stats.triggers = 5;
  state.lingxi.stats.optimizations_run = 4;
  state.lingxi.stats.pruned_preplay = 1;
  state.lingxi.stats.mc_evaluations = 9;
  state.lingxi.stats.mc_rollouts_pruned = 2;
  return state;
}

void expect_user_state_eq(const sim::UserFleetState& a, const sim::UserFleetState& b) {
  EXPECT_EQ(a.session_rng, b.session_rng);
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.adjusted_days, b.adjusted_days);
  ASSERT_EQ(a.has_lingxi, b.has_lingxi);
  if (a.has_lingxi) {
    EXPECT_EQ(a.lingxi.engagement, b.lingxi.engagement);
    EXPECT_EQ(a.lingxi.bandwidth_window, b.lingxi.bandwidth_window);
    EXPECT_EQ(a.lingxi.stalls_since_optimization, b.lingxi.stalls_since_optimization);
    EXPECT_EQ(a.lingxi.has_optimized, b.lingxi.has_optimized);
    EXPECT_EQ(a.lingxi.params, b.lingxi.params);
    EXPECT_EQ(a.lingxi.stats.triggers, b.lingxi.stats.triggers);
    EXPECT_EQ(a.lingxi.stats.optimizations_run, b.lingxi.stats.optimizations_run);
    EXPECT_EQ(a.lingxi.stats.pruned_preplay, b.lingxi.stats.pruned_preplay);
    EXPECT_EQ(a.lingxi.stats.mc_evaluations, b.lingxi.stats.mc_evaluations);
    EXPECT_EQ(a.lingxi.stats.mc_rollouts_pruned, b.lingxi.stats.mc_rollouts_pruned);
  }
}

TEST(UserStateCodec, RoundTrip) {
  const sim::UserFleetState state = sample_user_state();
  const auto decoded = snapshot::decode_user_state(snapshot::encode_user_state(42, state));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, 42u);
  expect_user_state_eq(decoded->second, state);
}

TEST(UserStateCodec, RoundTripWithoutLingxi) {
  sim::UserFleetState state;
  state.params.hyb_beta = 0.8;
  state.adjusted_days = 0;
  state.has_lingxi = false;
  const auto decoded = snapshot::decode_user_state(snapshot::encode_user_state(7, state));
  ASSERT_TRUE(decoded.has_value());
  expect_user_state_eq(decoded->second, state);
}

TEST(UserStateCodec, RejectsTruncation) {
  auto bytes = snapshot::encode_user_state(1, sample_user_state());
  bytes.resize(bytes.size() - 3);
  const auto decoded = snapshot::decode_user_state(bytes);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error().code, Error::Code::kCorrupt);
}

// ---------------------------------------------------------------------------
// On-disk snapshot round trip + corruption / compatibility rejection.
// ---------------------------------------------------------------------------

/// One leg [0, 2) of the standard fleet with a capture attached, snapshotted.
struct SavedLeg {
  sim::FleetConfig cfg;
  snapshot::FleetSnapshot snapshot;
};

SavedLeg make_saved_leg(std::uint64_t seed = 77) {
  SavedLeg leg;
  leg.cfg = fleet_config();
  sim::FleetRunner runner = make_runner(leg.cfg);
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
  runner.set_telemetry_sink(&capture);
  sim::FleetDayState state;
  runner.run_days(seed, 0, 2, nullptr, &state);
  auto snap = snapshot::capture_snapshot(runner, seed, std::move(state), &capture);
  EXPECT_TRUE(snap.has_value());
  leg.snapshot = std::move(*snap);
  return leg;
}

TEST(SnapshotDisk, SaveLoadRoundTrip) {
  const SavedLeg leg = make_saved_leg();
  const std::string dir = fresh_dir("roundtrip");
  // users_per_shard 3 forces a partial final state file.
  ASSERT_TRUE(snapshot::save_snapshot(leg.snapshot, dir, 3).ok());

  const auto loaded = snapshot::load_snapshot(dir);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  EXPECT_EQ(loaded->seed, leg.snapshot.seed);
  EXPECT_EQ(loaded->resume_digest, leg.snapshot.resume_digest);
  EXPECT_EQ(loaded->state.next_day, leg.snapshot.state.next_day);
  EXPECT_EQ(loaded->state.accumulated.checksum(),
            leg.snapshot.state.accumulated.checksum());
  ASSERT_EQ(loaded->state.users.size(), leg.snapshot.state.users.size());
  for (std::size_t u = 0; u < loaded->state.users.size(); ++u) {
    expect_user_state_eq(loaded->state.users[u], leg.snapshot.state.users[u]);
  }
  EXPECT_EQ(loaded->net_model, leg.snapshot.net_model);
  ASSERT_TRUE(loaded->has_capture);
  ASSERT_EQ(loaded->capture.size(), leg.snapshot.capture.size());
  for (std::size_t u = 0; u < loaded->capture.size(); ++u) {
    EXPECT_EQ(loaded->capture[u], leg.snapshot.capture[u]) << "user " << u;
  }
  EXPECT_TRUE(snapshot::check_compatible(*loaded, leg.cfg, 77).ok());
}

TEST(SnapshotDisk, MissingDirectoryIsIoError) {
  const auto loaded = snapshot::load_snapshot(fresh_dir("nonexistent"));
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kIo);
}

TEST(SnapshotDisk, DetectsFlippedByteInManifest) {
  const SavedLeg leg = make_saved_leg();
  const std::string dir = fresh_dir("manifest-flip");
  ASSERT_TRUE(snapshot::save_snapshot(leg.snapshot, dir).ok());
  const std::string path = dir + "/" + snapshot::manifest_filename();
  auto bytes = logstore::read_file(path);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] ^= 0x20;
  ASSERT_TRUE(logstore::write_file(path, *bytes).ok());
  const auto loaded = snapshot::load_snapshot(dir);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kCorrupt);
}

TEST(SnapshotDisk, RejectsBadFormatVersion) {
  const SavedLeg leg = make_saved_leg();
  const std::string dir = fresh_dir("bad-version");
  ASSERT_TRUE(snapshot::save_snapshot(leg.snapshot, dir).ok());
  const std::string path = dir + "/" + snapshot::manifest_filename();
  auto bytes = logstore::read_file(path);
  ASSERT_TRUE(bytes.has_value());
  std::size_t pos = 0;
  auto payload = logstore::read_record(*bytes, pos);
  ASSERT_TRUE(payload.has_value());
  // Clobber the leading format_version u32 and re-frame with a fresh record
  // CRC: only the version check can reject it.
  (*payload)[0] = 0x55;
  std::vector<unsigned char> framed;
  logstore::write_record(framed, *payload);
  ASSERT_TRUE(logstore::write_file(path, framed).ok());
  const auto loaded = snapshot::load_snapshot(dir);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kCorrupt);
}

TEST(SnapshotDisk, RejectsAbsurdUserCountInsteadOfAllocating) {
  // A manifest claiming 2^50 users must come back as kCorrupt from the
  // bounded decoder — never drive the user-table allocation (bad_alloc /
  // abort). Built by hand, following the format spec in snapshot.h.
  std::vector<unsigned char> payload;
  logstore::put_u32(payload, snapshot::kSnapshotFormatVersion);
  logstore::put_u64(payload, 77);        // seed
  logstore::put_u32(payload, 0);         // resume digest
  const std::uint64_t absurd_users = 1ULL << 50;
  logstore::put_u64(payload, absurd_users);
  logstore::put_u64(payload, 2);         // next_day
  logstore::put_u64(payload, 64);        // users_per_shard
  logstore::put_u32(payload, 0);         // has_net
  logstore::put_u32(payload, 0);         // net_crc
  logstore::put_u32(payload, 0);         // has_capture
  for (int i = 0; i < 19; ++i) logstore::put_u64(payload, 0);  // accumulator
  logstore::put_u64(payload, 1);         // shard_count
  logstore::put_u64(payload, 0);         // shard first_user
  logstore::put_u64(payload, absurd_users);
  logstore::put_u64(payload, 0);         // byte_count
  logstore::put_u32(payload, 0);         // crc

  const std::string dir = fresh_dir("absurd-users");
  std::filesystem::create_directories(dir);
  std::vector<unsigned char> framed;
  logstore::write_record(framed, payload);
  ASSERT_TRUE(logstore::write_file(dir + "/" + snapshot::manifest_filename(), framed).ok());

  const auto loaded = snapshot::load_snapshot(dir);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kCorrupt);
}

TEST(SnapshotDisk, DetectsTruncatedStateFile) {
  const SavedLeg leg = make_saved_leg();
  const std::string dir = fresh_dir("state-trunc");
  ASSERT_TRUE(snapshot::save_snapshot(leg.snapshot, dir).ok());
  const std::string path = dir + "/" + snapshot::state_filename(0);
  auto bytes = logstore::read_file(path);
  ASSERT_TRUE(bytes.has_value());
  bytes->resize(bytes->size() - 9);
  ASSERT_TRUE(logstore::write_file(path, *bytes).ok());
  const auto loaded = snapshot::load_snapshot(dir);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kCorrupt);
}

TEST(SnapshotDisk, DetectsNetContainerFlip) {
  const SavedLeg leg = make_saved_leg();
  ASSERT_FALSE(leg.snapshot.net_model.empty());
  const std::string dir = fresh_dir("net-flip");
  ASSERT_TRUE(snapshot::save_snapshot(leg.snapshot, dir).ok());
  const std::string path = dir + "/" + snapshot::net_filename();
  auto bytes = logstore::read_file(path);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 3] ^= 0x01;
  ASSERT_TRUE(logstore::write_file(path, *bytes).ok());
  const auto loaded = snapshot::load_snapshot(dir);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.error().code, Error::Code::kCorrupt);
}

TEST(SnapshotCompatibility, RejectsMismatches) {
  const SavedLeg leg = make_saved_leg(77);
  // Wrong seed.
  auto status = snapshot::check_compatible(leg.snapshot, leg.cfg, 78);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kInvalidArg);
  // Result-shaping config drift.
  sim::FleetConfig drifted = leg.cfg;
  drifted.network.median_bandwidth += 100.0;
  status = snapshot::check_compatible(leg.snapshot, drifted, 77);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Error::Code::kInvalidArg);
  // Horizon not past the boundary.
  sim::FleetConfig short_horizon = leg.cfg;
  short_horizon.days = 2;
  status = snapshot::check_compatible(leg.snapshot, short_horizon, 77);
  ASSERT_FALSE(status.ok());
  // Extending the horizon is explicitly allowed.
  sim::FleetConfig extended = leg.cfg;
  extended.days = 9;
  EXPECT_TRUE(snapshot::check_compatible(leg.snapshot, extended, 77).ok());
}

// ---------------------------------------------------------------------------
// Resume parity.
// ---------------------------------------------------------------------------

TEST(FleetRunDays, InProcessSplitMatchesFullRunAtEveryBoundary) {
  const sim::FleetConfig cfg = fleet_config();
  const sim::FleetRunner runner = make_runner(cfg);
  const sim::FleetAccumulator full = runner.run(77);
  ASSERT_GT(full.lingxi_optimizations, 0u);

  for (std::size_t boundary = 1; boundary < cfg.days; ++boundary) {
    sim::FleetDayState state;
    runner.run_days(77, 0, boundary, nullptr, &state);
    EXPECT_EQ(state.next_day, boundary);
    const sim::FleetAccumulator resumed = runner.run_days(77, boundary, cfg.days, &state);
    EXPECT_EQ(resumed.checksum(), full.checksum()) << "boundary " << boundary;
    EXPECT_EQ(resumed.watch_ticks, full.watch_ticks) << "boundary " << boundary;
    EXPECT_EQ(resumed.lingxi_mc_evaluations, full.lingxi_mc_evaluations)
        << "boundary " << boundary;
    EXPECT_EQ(resumed.adjusted_user_days, full.adjusted_user_days)
        << "boundary " << boundary;
  }
}

TEST(FleetRunDays, ChainedLegsMatchFullRun) {
  // Day-by-day legs: resume from a resume from a resume.
  const sim::FleetConfig cfg = fleet_config();
  const sim::FleetRunner runner = make_runner(cfg);
  const sim::FleetAccumulator full = runner.run(91);

  sim::FleetDayState state;
  runner.run_days(91, 0, 1, nullptr, &state);
  for (std::size_t day = 1; day + 1 < cfg.days; ++day) {
    sim::FleetDayState next;
    runner.run_days(91, day, day + 1, &state, &next);
    state = std::move(next);
  }
  const sim::FleetAccumulator resumed =
      runner.run_days(91, cfg.days - 1, cfg.days, &state);
  EXPECT_EQ(resumed.checksum(), full.checksum());
}

TEST(FleetRunDays, NonLingxiFleetSplitMatches) {
  sim::FleetConfig cfg = fleet_config();
  cfg.enable_lingxi = false;
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  const sim::FleetAccumulator full = runner.run(5);
  sim::FleetDayState state;
  runner.run_days(5, 0, 2, nullptr, &state);
  const sim::FleetAccumulator resumed = runner.run_days(5, 2, cfg.days, &state);
  EXPECT_EQ(resumed.checksum(), full.checksum());
}

TEST(SnapshotResume, DiskRoundTripMatchesFullRunIncludingArchiveBytes) {
  const sim::FleetConfig cfg = fleet_config();
  constexpr std::uint64_t kSeed = 77;
  constexpr std::size_t kBoundary = 2;

  // Reference: one uninterrupted run with a capture.
  sim::FleetRunner full_runner = make_runner(cfg);
  telemetry::ShardedCapture full_capture(telemetry::ShardedCapture::Config{4});
  full_runner.set_telemetry_sink(&full_capture);
  const sim::FleetAccumulator full = full_runner.run(kSeed);
  const telemetry::FleetArchive full_archive = full_capture.finish();
  ASSERT_GT(full.lingxi_optimizations, 0u);

  // Leg 1 + snapshot to disk.
  const SavedLeg leg = make_saved_leg(kSeed);
  const std::string dir = fresh_dir("resume-parity");
  ASSERT_TRUE(snapshot::save_snapshot(leg.snapshot, dir).ok());

  // Resume in a "new process": fresh runner, factory wrapped with the
  // snapshot's net weights, fresh capture restored from the cursors.
  const auto loaded = snapshot::load_snapshot(dir);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  ASSERT_TRUE(snapshot::check_compatible(*loaded, cfg, kSeed).ok());
  sim::FleetRunner resumed_runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  resumed_runner.set_predictor_factory(
      snapshot::resume_predictor_factory(predictor_factory(), loaded->net_model));
  telemetry::ShardedCapture resumed_capture(telemetry::ShardedCapture::Config{4});
  ASSERT_TRUE(snapshot::restore_capture(resumed_capture, cfg, *loaded).ok());
  resumed_runner.set_telemetry_sink(&resumed_capture);

  const sim::FleetAccumulator resumed =
      resumed_runner.run_days(kSeed, kBoundary, cfg.days, &loaded->state);
  EXPECT_EQ(resumed.checksum(), full.checksum());
  EXPECT_EQ(resumed.watch_ticks, full.watch_ticks);
  EXPECT_EQ(resumed.lingxi_mc_evaluations, full.lingxi_mc_evaluations);

  const telemetry::FleetArchive resumed_archive = resumed_capture.finish();
  EXPECT_EQ(resumed_archive.checksum(), full_archive.checksum());
  ASSERT_EQ(resumed_archive.shards.size(), full_archive.shards.size());
  for (std::size_t s = 0; s < full_archive.shards.size(); ++s) {
    EXPECT_TRUE(resumed_archive.shards[s] == full_archive.shards[s]) << "shard " << s;
  }
}

TEST(SnapshotResume, PredictorFactoryOverridesDriftedWeights) {
  // The resumed process hands capture_snapshot-era weights out even when its
  // own base factory drifted (different init seed): predictions match the
  // original factory's, not the drifted one's.
  const auto original = predictor_factory(4242)();
  const auto blob =
      nn::serialize_model(nn::kModelKindStallExitNet, original.net().weights());
  const auto wrapped =
      snapshot::resume_predictor_factory(predictor_factory(999), blob);
  auto restored = wrapped();

  const predictor::EngagementState state = stall_heavy_engagement(3);
  predictor::HybridExitPredictor::ExitQuery query;
  query.state = &state;
  query.level = 1;
  query.stall_time = 0.8;
  query.sw = predictor::SwitchType::kNone;
  auto original_copy = original;  // predict() is non-const on the net
  EXPECT_EQ(restored.predict(query), original_copy.predict(query));

  const auto drifted = predictor_factory(999)();
  auto drifted_copy = drifted;
  EXPECT_NE(restored.predict(query), drifted_copy.predict(query));
}

TEST(SnapshotResume, ExtendedHorizonMatchesLongerFullRun) {
  // Incremental-day experiment at the fleet layer: snapshot a 4-day fleet at
  // day 2, resume with a 6-day horizon; equal to a from-scratch 6-day run.
  sim::FleetConfig extended_cfg = fleet_config();
  extended_cfg.days = 6;
  const sim::FleetRunner extended_runner = make_runner(extended_cfg);
  const sim::FleetAccumulator full6 = extended_runner.run(77);

  const SavedLeg leg = make_saved_leg(77);
  const std::string dir = fresh_dir("extend");
  ASSERT_TRUE(snapshot::save_snapshot(leg.snapshot, dir).ok());
  const auto loaded = snapshot::load_snapshot(dir);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(snapshot::check_compatible(*loaded, extended_cfg, 77).ok());

  const sim::FleetRunner resumed_runner = make_runner(extended_cfg);
  const sim::FleetAccumulator resumed =
      resumed_runner.run_days(77, 2, 6, &loaded->state);
  EXPECT_EQ(resumed.checksum(), full6.checksum());
}

}  // namespace
}  // namespace lingxi
