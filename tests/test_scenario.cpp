// Scenario subsystem: pure (user, day) query semantics, script validation,
// the canonical demo script, scenario x checkpoint/resume splices (including
// a real fork + SIGKILL through the churn day), and the golden-fixture
// regression for the scenario analytics report.
//
// Regenerating the analytics fixture (after an intentional numbers change):
//   LINGXI_REGEN_SCENARIO_GOLDEN=1 ./test_scenario
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abr/hyb.h"
#include "analytics/scenario_report.h"
#include "common/rng.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"
#include "scenario/scenario.h"
#include "sim/fleet_runner.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"
#include "telemetry/capture.h"

#ifndef LINGXI_TEST_DATA_DIR
#define LINGXI_TEST_DATA_DIR "tests/data"
#endif

namespace lingxi {
namespace {

// ---------------------------------------------------------------------------
// Pure (user, day) query semantics.
// ---------------------------------------------------------------------------

TEST(ScenarioCohort, MembershipWithStrideAndPhase) {
  const scenario::Cohort everyone;  // defaults: [0, SIZE_MAX), stride 1
  EXPECT_TRUE(everyone.contains(0));
  EXPECT_TRUE(everyone.contains(123456));

  const scenario::Cohort strided{2, 11, 4, 1};  // 3, 7 (11 is out of range)
  EXPECT_FALSE(strided.contains(1));
  EXPECT_FALSE(strided.contains(2));
  EXPECT_TRUE(strided.contains(3));
  EXPECT_FALSE(strided.contains(4));
  EXPECT_TRUE(strided.contains(7));
  EXPECT_FALSE(strided.contains(11));
}

TEST(ScenarioQueries, ArrivalDayIsLatestMatchingFlashCrowd) {
  scenario::ScenarioScript script;
  script.flash_crowds.push_back({{4, 8, 1, 0}, 2});
  script.flash_crowds.push_back({{6, 8, 1, 0}, 3});
  EXPECT_EQ(script.arrival_day(0), 0u);  // initial fleet
  EXPECT_EQ(script.arrival_day(5), 2u);
  EXPECT_EQ(script.arrival_day(7), 3u);  // latest arrival wins
}

TEST(ScenarioQueries, GenerationBoundarySemantics) {
  scenario::ScenarioScript script;
  script.churns.push_back({{0, 4, 1, 0}, 2});
  script.churns.push_back({{0, 2, 1, 0}, 3});

  // A churn at day d belongs to the leg that simulates day d: strictly
  // before vs through differ exactly on the churn day.
  EXPECT_EQ(script.generations_before(0, 2), 0u);
  EXPECT_EQ(script.generations_through(0, 2), 1u);
  EXPECT_EQ(script.generations_before(0, 3), 1u);
  EXPECT_EQ(script.generations_through(0, 3), 2u);
  EXPECT_EQ(script.generations_through(0, 9), 2u);
  EXPECT_EQ(script.generations_through(2, 9), 1u);  // only the first churn
  EXPECT_EQ(script.generations_through(4, 9), 0u);  // never churned
}

TEST(ScenarioQueries, ShockScalesComposeMultiplicatively) {
  scenario::ScenarioScript script;
  script.shocks.push_back({{0, 4, 1, 0}, 1, 3, 0.5, 2.0});
  script.shocks.push_back({{0, 2, 1, 0}, 2, 4, 0.5, 3.0});
  EXPECT_EQ(script.bandwidth_scale(0, 0), 1.0);  // before both windows
  EXPECT_EQ(script.bandwidth_scale(0, 1), 0.5);
  EXPECT_EQ(script.bandwidth_scale(0, 2), 0.25);  // overlap composes
  EXPECT_EQ(script.bandwidth_scale(2, 2), 0.5);   // only the wide cohort
  EXPECT_EQ(script.bandwidth_scale(0, 3), 0.5);
  EXPECT_EQ(script.sd_scale(0, 2), 6.0);
  EXPECT_EQ(script.sd_scale(5, 2), 1.0);  // outside every cohort
}

TEST(ScenarioQueries, SessionCountsCurveFlashAndClamp) {
  scenario::ScenarioScript script;
  script.curves.push_back({{0, 8, 1, 0}, {1.0, 1.5, 0.0}});
  script.flash_crowds.push_back({{6, 8, 1, 0}, 1});

  EXPECT_EQ(script.sessions_on(0, 0, 6), 6u);
  EXPECT_EQ(script.sessions_on(0, 1, 6), 9u);   // round(6 * 1.5)
  EXPECT_EQ(script.sessions_on(0, 2, 6), 0u);   // multiplier 0: inactive day
  EXPECT_EQ(script.sessions_on(0, 3, 6), 6u);   // curve wraps (3 % 3 == 0)
  EXPECT_EQ(script.sessions_on(6, 0, 6), 0u);   // pre-arrival
  EXPECT_EQ(script.sessions_on(6, 1, 6), 9u);   // joins on the curve day

  // sessions_before is the running total — the warmup/session-stream cursor.
  EXPECT_EQ(script.sessions_before(0, 3, 6), 15u);
  EXPECT_EQ(script.sessions_before(6, 1, 6), 0u);  // absent day 0
  EXPECT_EQ(script.sessions_before(6, 3, 6), 9u);  // day 1 only (day 2 is 0)

  // The 16-bit session-stream slot bounds any single day.
  scenario::ScenarioScript huge;
  huge.curves.push_back({{0, 8, 1, 0}, {1e9}});
  EXPECT_EQ(huge.sessions_on(0, 0, 6), 65535u);
}

TEST(ScenarioQueries, FirstMatchingOverrideWins) {
  scenario::ScenarioScript script;
  scenario::CohortOverride first;
  first.cohort = {0, 4, 1, 0};
  first.population.sensitive_fraction = 0.9;
  first.population.threshold_fraction = 0.05;
  first.population.insensitive_fraction = 0.05;
  scenario::CohortOverride second;
  second.cohort = {0, 8, 1, 0};
  script.cohorts.push_back(first);
  script.cohorts.push_back(second);

  EXPECT_EQ(script.population_override(1), &script.cohorts[0].population);
  EXPECT_EQ(script.population_override(5), &script.cohorts[1].population);
  EXPECT_EQ(script.population_override(9), nullptr);
}

// ---------------------------------------------------------------------------
// Structural validation.
// ---------------------------------------------------------------------------

TEST(ScenarioValidate, AcceptsCanonicalScriptAndEmptyScript) {
  EXPECT_TRUE(scenario::ScenarioScript{}.validate(8, 4).ok());
  EXPECT_TRUE(scenario::canonical_script(8, 3).validate(8, 3).ok());
  EXPECT_TRUE(scenario::canonical_script(64, 14).validate(64, 14).ok());
}

TEST(ScenarioValidate, RejectsMalformedEvents) {
  const auto bad = [](const scenario::ScenarioScript& script) {
    return !script.validate(8, 4).ok();
  };

  {
    scenario::ScenarioScript s;  // zero stride
    s.shocks.push_back({{0, 8, 0, 0}, 0, 2, 0.5, 1.0});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // phase outside the stride
    s.shocks.push_back({{0, 8, 2, 2}, 0, 2, 0.5, 1.0});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // empty day window
    s.shocks.push_back({{0, 8, 1, 0}, 2, 2, 0.5, 1.0});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // window past the horizon
    s.shocks.push_back({{0, 8, 1, 0}, 1, 5, 0.5, 1.0});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // non-positive scale
    s.shocks.push_back({{0, 8, 1, 0}, 0, 2, 0.0, 1.0});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // empty multiplier list
    s.curves.push_back({{0, 8, 1, 0}, {}});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // negative multiplier
    s.curves.push_back({{0, 8, 1, 0}, {1.0, -0.5}});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // arrival outside the run
    s.flash_crowds.push_back({{0, 8, 1, 0}, 4});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // day-0 churn: the initial fleet IS gen 0
    s.churns.push_back({{0, 8, 1, 0}, 0});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // churn at/past the horizon
    s.churns.push_back({{0, 8, 1, 0}, 4});
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // override config not normalizable
    scenario::CohortOverride o;
    o.cohort = {0, 8, 1, 0};
    o.population.sensitive_fraction = 0.0;
    o.population.threshold_fraction = 0.0;
    o.population.insensitive_fraction = 0.0;
    s.cohorts.push_back(o);
    EXPECT_TRUE(bad(s));
  }
  {
    scenario::ScenarioScript s;  // fleet too large for the generation shift
    s.churns.push_back({{0, 8, 1, 0}, 1});
    EXPECT_FALSE(s.validate(std::size_t{1} << scenario::kGenerationShift, 4).ok());
  }
}

// ---------------------------------------------------------------------------
// Scenario x checkpoint/resume splices. The script fires a flash crowd on
// day 1 and a churn on day 2; checkpoints land exactly on those boundaries,
// so the splice exercises the strict-before/through generation semantics.
// ---------------------------------------------------------------------------

scenario::ScenarioScript splice_script() {
  scenario::ScenarioScript script;
  script.shocks.push_back({{0, 4, 1, 0}, 1, 3, 0.5, 1.3});
  script.curves.push_back({{0, 8, 1, 0}, {1.0, 1.5, 0.5, 1.0}});
  script.flash_crowds.push_back({{6, 8, 1, 0}, 1});
  script.churns.push_back({{2, 4, 1, 0}, 2});
  scenario::CohortOverride mobile;
  mobile.cohort = {0, 8, 4, 1};
  mobile.population.sensitive_fraction = 0.50;
  mobile.population.threshold_fraction = 0.35;
  mobile.population.insensitive_fraction = 0.15;
  script.cohorts.push_back(mobile);
  return script;
}

// Small stall-prone scripted LingXi fleet (single-threaded: the kill test
// forks).
sim::FleetConfig scripted_fleet_config() {
  sim::FleetConfig cfg;
  cfg.users = 8;
  cfg.days = 4;
  cfg.sessions_per_user_day = 5;
  cfg.users_per_shard = 3;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.intervention_day = 1;
  cfg.network.median_bandwidth = 1100.0;
  cfg.network.sigma = 0.4;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.lingxi.obo_rounds = 2;
  cfg.lingxi.monte_carlo.samples = 6;
  cfg.lingxi.monte_carlo.sample_duration = 12.0;
  cfg.lingxi.monte_carlo.min_samples_before_prune = 3;
  cfg.scenario = splice_script();
  return cfg;
}

sim::FleetRunner::PredictorFactory predictor_factory() {
  return [] {
    Rng net_rng(4242);
    return predictor::HybridExitPredictor(
        std::make_shared<predictor::StallExitNet>(net_rng),
        std::make_shared<predictor::OverallStatsModel>());
  };
}

sim::FleetRunner make_runner(const sim::FleetConfig& cfg) {
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory(predictor_factory());
  return runner;
}

struct Reference {
  sim::FleetAccumulator acc;
  telemetry::FleetArchive archive;
};

Reference reference_run(const sim::FleetConfig& cfg, std::uint64_t seed) {
  sim::FleetRunner runner = make_runner(cfg);
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
  runner.set_telemetry_sink(&capture);
  Reference ref;
  ref.acc = runner.run(seed);
  ref.archive = capture.finish();
  return ref;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lingxi_scenario_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_archive_parity(const telemetry::FleetArchive& archive,
                           const Reference& ref) {
  EXPECT_EQ(archive.checksum(), ref.archive.checksum());
  ASSERT_EQ(archive.shards.size(), ref.archive.shards.size());
  for (std::size_t s = 0; s < archive.shards.size(); ++s) {
    EXPECT_TRUE(archive.shards[s] == ref.archive.shards[s]) << "shard " << s;
  }
}

TEST(ScenarioSplice, SnapshotAtChurnDayResumesBitwise) {
  const sim::FleetConfig cfg = scripted_fleet_config();
  constexpr std::uint64_t kSeed = 77;
  constexpr std::size_t kBoundary = 2;  // exactly the scripted churn day
  const Reference ref = reference_run(cfg, kSeed);
  ASSERT_GT(ref.acc.lingxi_optimizations, 0u);
  ASSERT_EQ(ref.acc.users, 10u);  // 8 horizon summaries + 2 churn departures

  // Leg 1: [0, kBoundary), snapshotted through a disk round trip.
  sim::FleetRunner leg_runner = make_runner(cfg);
  telemetry::ShardedCapture leg_capture(telemetry::ShardedCapture::Config{4});
  leg_runner.set_telemetry_sink(&leg_capture);
  sim::FleetDayState state;
  leg_runner.run_days(kSeed, 0, kBoundary, nullptr, &state);
  auto snap =
      snapshot::capture_snapshot(leg_runner, kSeed, std::move(state), &leg_capture);
  ASSERT_TRUE(snap.has_value()) << snap.error().message;
  const std::string dir = fresh_dir("churn-boundary");
  ASSERT_TRUE(snapshot::save_snapshot(*snap, dir, 3).ok());

  // Leg 2: fresh runner + restored capture; the churn fires inside this leg.
  auto loaded = snapshot::load_snapshot(dir);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  ASSERT_TRUE(snapshot::check_compatible(*loaded, cfg, kSeed).ok());
  sim::FleetRunner resumed_runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  resumed_runner.set_predictor_factory(
      snapshot::resume_predictor_factory(predictor_factory(), loaded->net_model));
  telemetry::ShardedCapture resumed_capture(telemetry::ShardedCapture::Config{4});
  ASSERT_TRUE(snapshot::restore_capture(resumed_capture, cfg, *loaded).ok());
  resumed_runner.set_telemetry_sink(&resumed_capture);
  const sim::FleetAccumulator resumed =
      resumed_runner.run_days(kSeed, kBoundary, cfg.days, &loaded->state);

  EXPECT_EQ(resumed.checksum(), ref.acc.checksum());
  EXPECT_EQ(resumed.users, ref.acc.users);
  EXPECT_EQ(resumed.sessions, ref.acc.sessions);
  expect_archive_parity(resumed_capture.finish(), ref);
}

TEST(ScenarioSplice, SnapshotResumeParityAtEveryBoundary) {
  const sim::FleetConfig cfg = scripted_fleet_config();
  constexpr std::uint64_t kSeed = 91;
  const Reference ref = reference_run(cfg, kSeed);

  // Day 1 splits the flash-crowd arrival, day 2 the churn, day 3 the
  // post-event tail — every scripted discontinuity gets a boundary.
  for (std::size_t boundary = 1; boundary < cfg.days; ++boundary) {
    sim::FleetRunner leg_runner = make_runner(cfg);
    telemetry::ShardedCapture leg_capture(telemetry::ShardedCapture::Config{4});
    leg_runner.set_telemetry_sink(&leg_capture);
    sim::FleetDayState state;
    leg_runner.run_days(kSeed, 0, boundary, nullptr, &state);
    auto snap =
        snapshot::capture_snapshot(leg_runner, kSeed, std::move(state), &leg_capture);
    ASSERT_TRUE(snap.has_value()) << snap.error().message;

    sim::FleetRunner resumed_runner = make_runner(cfg);
    telemetry::ShardedCapture resumed_capture(telemetry::ShardedCapture::Config{4});
    ASSERT_TRUE(snapshot::restore_capture(resumed_capture, cfg, *snap).ok());
    resumed_runner.set_telemetry_sink(&resumed_capture);
    const sim::FleetAccumulator resumed =
        resumed_runner.run_days(kSeed, boundary, cfg.days, &snap->state);

    EXPECT_EQ(resumed.checksum(), ref.acc.checksum()) << "boundary=" << boundary;
    expect_archive_parity(resumed_capture.finish(), ref);
  }
}

// Commit-hook kill plan (file-scope: SaveCommitHook is a plain function
// pointer): SIGKILL inside the `at_save`-th save at the given stage.
int g_kill_at_save = 0;
int g_kill_stage = -1;
int g_saves_seen = 0;

bool kill_hook(snapshot::SaveStage stage) {
  if (stage == snapshot::SaveStage::kStateFilesStaged) ++g_saves_seen;
  if (g_saves_seen == g_kill_at_save &&
      stage == static_cast<snapshot::SaveStage>(g_kill_stage)) {
    std::raise(SIGKILL);
  }
  return true;
}

TEST(ScenarioSplice, AutoCheckpointKillAtChurnDayResumesBitwise) {
  const sim::FleetConfig cfg = scripted_fleet_config();  // threads = 1: fork-safe
  constexpr std::uint64_t kSeed = 77;
  const Reference ref = reference_run(cfg, kSeed);
  const std::string root = fresh_dir("sigkill");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: checkpoint every day; die by SIGKILL inside the day-2 commit
    // right before the rename. The staging dir is complete, just unnamed.
    g_kill_at_save = 2;
    g_kill_stage = static_cast<int>(snapshot::SaveStage::kStagingDurable);
    g_saves_seen = 0;
    snapshot::set_save_commit_hook(&kill_hook);
    sim::FleetRunner runner = make_runner(cfg);
    telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
    runner.set_telemetry_sink(&capture);
    snapshot::AutoCheckpointer ckpt(
        runner, kSeed, {root, /*every_k_days=*/1, /*retain=*/2, /*users_per_shard=*/4},
        &capture);
    ckpt.arm(runner);
    runner.run_days(kSeed, 0, cfg.days, nullptr, nullptr);
    _exit(7);  // only reached if the kill never fired
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited instead of dying by signal";
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Recovery adopts the complete day-2 staging; the resumed leg replays the
  // churn (scripted AT day 2) and the rest of the calendar bitwise.
  auto recovered = snapshot::find_latest_valid(root);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().message;
  EXPECT_EQ(recovered->snapshot.state.next_day, 2u);
  ASSERT_TRUE(snapshot::check_compatible(recovered->snapshot, cfg, kSeed).ok());

  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory(snapshot::resume_predictor_factory(
      predictor_factory(), recovered->snapshot.net_model));
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{4});
  ASSERT_TRUE(snapshot::restore_capture(capture, cfg, recovered->snapshot.seed,
                                        std::move(recovered->snapshot.capture))
                  .ok());
  runner.set_telemetry_sink(&capture);
  const sim::FleetAccumulator resumed = runner.run_days(
      kSeed, recovered->snapshot.state.next_day, cfg.days, &recovered->snapshot.state);

  EXPECT_EQ(resumed.checksum(), ref.acc.checksum());
  EXPECT_EQ(resumed.users, ref.acc.users);
  expect_archive_parity(capture.finish(), ref);
}

// ---------------------------------------------------------------------------
// Golden regression for the scenario analytics report: the canonical
// "CDN brownout + flash crowd + churn" script on a tiny A/B fleet, pinned
// to tests/data/scenario_golden.json. Any change to the scenario layer, the
// fleet substrate, the experiment driver or the DiD/bucket computation that
// moves the report's numbers fails loudly.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kGoldenSeed = 555;

analytics::ExperimentConfig golden_config() {
  analytics::ExperimentConfig cfg;
  cfg.users = 8;
  cfg.days = 6;
  cfg.sessions_per_user_day = 6;
  cfg.intervention_day = 0;  // post-deploy view: LingXi live from day 0
  // Bursty mid-bandwidth world (same rationale as the Fig. 13 fixture):
  // buffers build between dips, so beta flips decisions and stalls fire the
  // trigger — the report pins LingXi's response to the events, not plumbing.
  cfg.network.median_bandwidth = 2800.0;
  cfg.network.sigma = 0.35;
  cfg.network.relative_sd = 0.45;
  cfg.lingxi.obo_rounds = 3;
  cfg.lingxi.monte_carlo.samples = 4;
  cfg.lingxi.monte_carlo.sample_duration = 10.0;
  cfg.lingxi.adoption_margin = 0.0;
  cfg.scenario = scenario::canonical_script(cfg.users, cfg.days);
  return cfg;
}

std::function<predictor::HybridExitPredictor()> golden_predictor_factory() {
  return [] {
    Rng net_rng(7777);
    return predictor::HybridExitPredictor(
        std::make_shared<predictor::StallExitNet>(net_rng),
        std::make_shared<predictor::OverallStatsModel>());
  };
}

std::string run_scenario_report(std::size_t threads, std::size_t predictor_batch) {
  analytics::ExperimentConfig cfg = golden_config();
  cfg.threads = threads;
  cfg.predictor_batch = predictor_batch;
  const analytics::PopulationExperiment experiment(
      cfg, [] { return std::make_unique<abr::Hyb>(); }, golden_predictor_factory());
  const analytics::ExperimentResult control = experiment.run(false, kGoldenSeed);
  const analytics::ExperimentResult treatment = experiment.run(true, kGoldenSeed);
  const analytics::ScenarioReport report = analytics::summarize_scenario(
      cfg.scenario, cfg.users, cfg.days, control.user_days, treatment.user_days);

  // Shape sanity (not part of the fixture comparison): one window per event
  // and one bucket per scripted cohort plus the unscripted rest.
  EXPECT_EQ(report.events.size(), 3u);
  EXPECT_EQ(report.cohorts.size(), 5u);
  return analytics::to_json(report);
}

std::string golden_path() {
  return std::string(LINGXI_TEST_DATA_DIR) + "/scenario_golden.json";
}

/// Every numeric token in the text, in order (string labels contribute
/// identically on both sides, so sequence comparison is sound).
std::vector<double> numbers_in(const std::string& text) {
  std::vector<double> out;
  const char* p = text.c_str();
  const char* end = p + text.size();
  while (p < end) {
    if ((*p >= '0' && *p <= '9') ||
        (*p == '-' && p + 1 < end && p[1] >= '0' && p[1] <= '9')) {
      char* next = nullptr;
      out.push_back(std::strtod(p, &next));
      p = next;
    } else {
      ++p;
    }
  }
  return out;
}

TEST(ScenarioGolden, MatchesCommittedGolden) {
  const std::string actual = run_scenario_report(/*threads=*/1, /*predictor_batch=*/1);

  if (std::getenv("LINGXI_REGEN_SCENARIO_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    return;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing fixture " << golden_path()
                         << " (regenerate with LINGXI_REGEN_SCENARIO_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  const std::vector<double> want = numbers_in(golden);
  const std::vector<double> got = numbers_in(actual);
  ASSERT_EQ(got.size(), want.size()) << "fixture shape changed:\n" << actual;
  for (std::size_t i = 0; i < want.size(); ++i) {
    // Numeric (not string) comparison with a tight relative tolerance:
    // simulations are deterministic, but FP contraction may differ a ulp or
    // two across compilers.
    const double tol = std::max(1e-9, 1e-6 * std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol) << "token " << i << "\n" << actual;
  }
}

TEST(ScenarioGolden, IndependentOfThreadsAndBatch) {
  const std::string scalar = run_scenario_report(/*threads=*/1, /*predictor_batch=*/1);
  const std::string batched = run_scenario_report(/*threads=*/2, /*predictor_batch=*/7);
  // Byte-identical JSON: the report cannot depend on throughput knobs.
  EXPECT_EQ(scalar, batched);
}

}  // namespace
}  // namespace lingxi
