// Unit tests for lingxi_user: rule-based and data-driven user models and
// the population sampler (calibration against §2.3 / Fig. 5(a)).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "user/data_driven.h"
#include "user/rule_based.h"
#include "user/user_population.h"

namespace lingxi::user {
namespace {

sim::SegmentRecord make_segment(Seconds cum_stall, std::size_t stall_events,
                                Seconds stall_now = 0.0, std::size_t level = 2,
                                Kbps bitrate = 1850.0) {
  sim::SegmentRecord seg;
  seg.level = level;
  seg.bitrate = bitrate;
  seg.stall_time = stall_now;
  seg.cumulative_stall = cum_stall;
  seg.cumulative_stall_events = stall_events;
  return seg;
}

// -- RuleBasedUser ----------------------------------------------------------

TEST(RuleBasedUser, ExitsWhenStallTimeCrossesThreshold) {
  RuleBasedUser::Config cfg;
  cfg.stall_time_threshold = 5.0;
  cfg.stall_count_threshold = 100;
  RuleBasedUser u(cfg);
  EXPECT_DOUBLE_EQ(u.exit_probability(make_segment(4.9, 1)), 0.0);
  EXPECT_DOUBLE_EQ(u.exit_probability(make_segment(5.0, 1)), 0.0);  // not strictly greater
  EXPECT_DOUBLE_EQ(u.exit_probability(make_segment(5.1, 1)), 1.0);
}

TEST(RuleBasedUser, ExitsWhenStallCountCrossesThreshold) {
  RuleBasedUser::Config cfg;
  cfg.stall_time_threshold = 1e9;
  cfg.stall_count_threshold = 3;
  RuleBasedUser u(cfg);
  EXPECT_DOUBLE_EQ(u.exit_probability(make_segment(0.5, 3)), 0.0);
  EXPECT_DOUBLE_EQ(u.exit_probability(make_segment(0.5, 4)), 1.0);
}

TEST(RuleBasedUser, ContentExitRateApplies) {
  RuleBasedUser::Config cfg;
  cfg.content_exit_rate = 0.05;
  RuleBasedUser u(cfg);
  EXPECT_DOUBLE_EQ(u.exit_probability(make_segment(0.0, 0)), 0.05);
}

TEST(RuleBasedUser, ToleranceReportsThreshold) {
  RuleBasedUser::Config cfg;
  cfg.stall_time_threshold = 7.0;
  RuleBasedUser u(cfg);
  EXPECT_DOUBLE_EQ(u.tolerable_stall(), 7.0);
  EXPECT_EQ(u.archetype(), "rule");
}

TEST(RuleBasedUser, CloneIndependent) {
  RuleBasedUser::Config cfg;
  cfg.stall_time_threshold = 2.0;
  RuleBasedUser u(cfg);
  auto copy = u.clone();
  EXPECT_DOUBLE_EQ(copy->tolerable_stall(), 2.0);
}

// -- DataDrivenUser -----------------------------------------------------------

TEST(DataDrivenUser, StallHazardMonotoneInStallTime) {
  for (auto arch : {StallArchetype::kSensitive, StallArchetype::kThreshold,
                    StallArchetype::kInsensitive}) {
    DataDrivenUser::Config cfg;
    cfg.stall_archetype = arch;
    cfg.tolerance = 4.0;
    DataDrivenUser u(cfg);
    double prev = -1.0;
    for (double s = 0.0; s <= 20.0; s += 0.5) {
      const double h = u.stall_hazard(s, 1);
      EXPECT_GE(h, prev) << archetype_name(arch) << " at " << s;
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0);
      prev = h;
    }
  }
}

TEST(DataDrivenUser, SensitiveRisesFasterThanInsensitive) {
  DataDrivenUser::Config scfg, icfg;
  scfg.stall_archetype = StallArchetype::kSensitive;
  icfg.stall_archetype = StallArchetype::kInsensitive;
  scfg.tolerance = icfg.tolerance = 4.0;
  DataDrivenUser sensitive(scfg), insensitive(icfg);
  for (double s : {2.0, 4.0, 8.0}) {
    EXPECT_GT(sensitive.stall_hazard(s, 1), insensitive.stall_hazard(s, 1));
  }
}

TEST(DataDrivenUser, ThresholdJumpsAroundTolerance) {
  DataDrivenUser::Config cfg;
  cfg.stall_archetype = StallArchetype::kThreshold;
  cfg.tolerance = 5.0;
  cfg.stall_scale = 0.8;
  DataDrivenUser u(cfg);
  EXPECT_LT(u.stall_hazard(2.0, 1), 0.1);
  EXPECT_NEAR(u.stall_hazard(5.0, 1), 0.4, 0.05);  // midpoint = scale/2
  EXPECT_GT(u.stall_hazard(9.0, 1), 0.7);
}

TEST(DataDrivenUser, MultiStallBumpIncreasesHazard) {
  DataDrivenUser::Config cfg;
  cfg.stall_archetype = StallArchetype::kThreshold;
  cfg.tolerance = 3.0;
  DataDrivenUser u(cfg);
  EXPECT_GT(u.stall_hazard(3.0, 3), u.stall_hazard(3.0, 1));
}

TEST(DataDrivenUser, ZeroStallZeroHazard) {
  DataDrivenUser u(DataDrivenUser::Config{});
  EXPECT_DOUBLE_EQ(u.stall_hazard(0.0, 0), 0.0);
}

TEST(DataDrivenUser, QualityEffectSmall) {
  // Takeaway 1: quality effect ~1e-3.
  DataDrivenUser::Config cfg;
  cfg.base_content_rate = 0.05;
  DataDrivenUser u(cfg);
  u.begin_session();
  const double p_top = u.exit_probability(make_segment(0.0, 0, 0.0, 3, 4300.0));
  u.begin_session();
  const double p_low = u.exit_probability(make_segment(0.0, 0, 0.0, 0, 350.0));
  EXPECT_GT(p_low, p_top);
  EXPECT_LT(p_low - p_top, 0.01);
  EXPECT_GT(p_low - p_top, 0.0005);
}

TEST(DataDrivenUser, SwitchEffectMediumAndDownSwitchWorse) {
  DataDrivenUser::Config cfg;
  DataDrivenUser u(cfg);
  // No-switch baseline: same level twice.
  u.begin_session();
  u.exit_probability(make_segment(0.0, 0, 0.0, 2, 1850.0));
  const double p_same = u.exit_probability(make_segment(0.0, 0, 0.0, 2, 1850.0));
  // Up-switch.
  u.begin_session();
  u.exit_probability(make_segment(0.0, 0, 0.0, 1, 750.0));
  const double p_up = u.exit_probability(make_segment(0.0, 0, 0.0, 2, 1850.0));
  // Down-switch.
  u.begin_session();
  u.exit_probability(make_segment(0.0, 0, 0.0, 3, 4300.0));
  const double p_down = u.exit_probability(make_segment(0.0, 0, 0.0, 2, 1850.0));
  EXPECT_GT(p_up, p_same);
  EXPECT_GT(p_down, p_up);
  EXPECT_NEAR(p_up - p_same, cfg.switch_coeff, 5e-3);
}

TEST(DataDrivenUser, StallDominates) {
  // Takeaway 1: stall effect ~1e-1 dwarfs quality/smoothness.
  DataDrivenUser::Config cfg;
  cfg.stall_archetype = StallArchetype::kSensitive;
  cfg.tolerance = 2.0;
  DataDrivenUser u(cfg);
  u.begin_session();
  const double p_stall = u.exit_probability(make_segment(4.0, 1, 4.0));
  u.begin_session();
  const double p_clean = u.exit_probability(make_segment(0.0, 0, 0.0));
  EXPECT_GT(p_stall - p_clean, 0.1);
}

TEST(DataDrivenUser, BeginSessionResetsSwitchTracking) {
  DataDrivenUser u(DataDrivenUser::Config{});
  u.begin_session();
  u.exit_probability(make_segment(0.0, 0, 0.0, 3, 4300.0));
  u.begin_session();
  // First segment of a new session is never a "switch".
  const double p = u.exit_probability(make_segment(0.0, 0, 0.0, 0, 350.0));
  DataDrivenUser fresh(DataDrivenUser::Config{});
  fresh.begin_session();
  const double p_fresh = fresh.exit_probability(make_segment(0.0, 0, 0.0, 0, 350.0));
  EXPECT_DOUBLE_EQ(p, p_fresh);
}

TEST(DataDrivenUser, DriftedShiftsToleranceAndClamps) {
  DataDrivenUser::Config cfg;
  cfg.tolerance = 3.0;
  DataDrivenUser u(cfg);
  EXPECT_DOUBLE_EQ(u.drifted(2.0).tolerance, 5.0);
  EXPECT_DOUBLE_EQ(u.drifted(-10.0).tolerance, 0.5);
}

TEST(DataDrivenUser, ArchetypeNames) {
  EXPECT_STREQ(archetype_name(StallArchetype::kSensitive), "sensitive");
  EXPECT_STREQ(archetype_name(StallArchetype::kThreshold), "threshold");
  EXPECT_STREQ(archetype_name(StallArchetype::kInsensitive), "insensitive");
}

// -- UserPopulation ------------------------------------------------------------

TEST(UserPopulation, ToleranceDistributionMatchesFig5a) {
  const UserPopulation pop;
  Rng rng(1);
  int low = 0, over5 = 0, over10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto cfg = pop.sample_config(rng);
    if (cfg.tolerance < 2.0) ++low;
    if (cfg.tolerance > 5.0) ++over5;
    if (cfg.tolerance > 10.0) ++over10;
  }
  // ~20% minimal tolerance, ~30% above 5s (high+very high), ~10% above 10s.
  EXPECT_NEAR(low / static_cast<double>(n), 0.20, 0.02);
  EXPECT_NEAR(over5 / static_cast<double>(n), 0.30, 0.02);
  EXPECT_NEAR(over10 / static_cast<double>(n), 0.10, 0.015);
}

TEST(UserPopulation, ArchetypeMixtureRespected) {
  UserPopulation::Config cfg;
  cfg.sensitive_fraction = 1.0;
  cfg.threshold_fraction = 0.0;
  cfg.insensitive_fraction = 0.0;
  const UserPopulation pop(cfg);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pop.sample_config(rng).stall_archetype, StallArchetype::kSensitive);
  }
}

TEST(UserPopulation, DriftMixture) {
  const UserPopulation pop;
  Rng rng(3);
  int stable = 0, moderate = 0, tail = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = std::fabs(pop.sample_drift(rng));
    if (d < 1.0) ++stable;
    else if (d >= 2.0 && d <= 4.0) ++moderate;
    else if (d > 4.0) ++tail;
  }
  EXPECT_NEAR(stable / static_cast<double>(n), 0.60, 0.02);
  EXPECT_NEAR(moderate / static_cast<double>(n), 0.20, 0.02);
  EXPECT_GT(tail, 0);
}

TEST(UserPopulation, SampleManyCount) {
  const UserPopulation pop;
  Rng rng(4);
  EXPECT_EQ(pop.sample_many(17, rng).size(), 17u);
}

TEST(UserPopulation, SampledUsersAreUsable) {
  const UserPopulation pop;
  Rng rng(5);
  auto u = pop.sample(rng);
  u->begin_session();
  const double p = u->exit_probability(make_segment(1.0, 1, 1.0));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

// -- UserPopulation::Config::normalized (clamp + normalize policy) ----------

TEST(UserPopulationConfig, ExactUnityMixturesPassThroughUnchanged) {
  // The default config's mixtures sum to 1 within the 1e-9 epsilon, so
  // normalized() must not touch a single bit — every existing sampling
  // sequence is preserved.
  const UserPopulation::Config def;
  const auto norm = UserPopulation::Config::normalized(def);
  ASSERT_TRUE(norm.has_value());
  EXPECT_EQ(norm->sensitive_fraction, def.sensitive_fraction);
  EXPECT_EQ(norm->threshold_fraction, def.threshold_fraction);
  EXPECT_EQ(norm->insensitive_fraction, def.insensitive_fraction);
  EXPECT_EQ(norm->low_tolerance_fraction, def.low_tolerance_fraction);
  EXPECT_EQ(norm->mid_tolerance_fraction, def.mid_tolerance_fraction);
  EXPECT_EQ(norm->high_tolerance_fraction, def.high_tolerance_fraction);
  EXPECT_EQ(norm->very_high_tolerance_fraction, def.very_high_tolerance_fraction);
  EXPECT_EQ(norm->stable_fraction, def.stable_fraction);
  EXPECT_EQ(norm->moderate_fraction, def.moderate_fraction);
}

TEST(UserPopulationConfig, OverUnityMixtureIsRescaled) {
  UserPopulation::Config cfg;
  cfg.sensitive_fraction = 1.0;
  cfg.threshold_fraction = 2.0;
  cfg.insensitive_fraction = 1.0;
  const auto norm = UserPopulation::Config::normalized(cfg);
  ASSERT_TRUE(norm.has_value());
  EXPECT_NEAR(norm->sensitive_fraction, 0.25, 1e-12);
  EXPECT_NEAR(norm->threshold_fraction, 0.50, 1e-12);
  EXPECT_NEAR(norm->insensitive_fraction, 0.25, 1e-12);
  const double sum = norm->sensitive_fraction + norm->threshold_fraction +
                     norm->insensitive_fraction;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(UserPopulationConfig, UnderUnityMixtureIsRescaledUp) {
  UserPopulation::Config cfg;
  cfg.low_tolerance_fraction = 0.1;
  cfg.mid_tolerance_fraction = 0.1;
  cfg.high_tolerance_fraction = 0.1;
  cfg.very_high_tolerance_fraction = 0.1;
  const auto norm = UserPopulation::Config::normalized(cfg);
  ASSERT_TRUE(norm.has_value());
  EXPECT_NEAR(norm->low_tolerance_fraction, 0.25, 1e-12);
  EXPECT_NEAR(norm->very_high_tolerance_fraction, 0.25, 1e-12);
}

TEST(UserPopulationConfig, NegativeFractionsClampToZeroThenRescale) {
  UserPopulation::Config cfg;
  cfg.sensitive_fraction = -0.5;
  cfg.threshold_fraction = 0.5;
  cfg.insensitive_fraction = 1.5;
  const auto norm = UserPopulation::Config::normalized(cfg);
  ASSERT_TRUE(norm.has_value());
  EXPECT_EQ(norm->sensitive_fraction, 0.0);
  EXPECT_NEAR(norm->threshold_fraction, 0.25, 1e-12);
  EXPECT_NEAR(norm->insensitive_fraction, 0.75, 1e-12);
}

TEST(UserPopulationConfig, DriftPairOnlyRescaledWhenOverUnity) {
  // Under-unity is legal by design: the remainder is the exponential tail.
  UserPopulation::Config cfg;
  cfg.stable_fraction = 0.3;
  cfg.moderate_fraction = 0.1;
  auto norm = UserPopulation::Config::normalized(cfg);
  ASSERT_TRUE(norm.has_value());
  EXPECT_EQ(norm->stable_fraction, 0.3);
  EXPECT_EQ(norm->moderate_fraction, 0.1);

  cfg.stable_fraction = 1.2;
  cfg.moderate_fraction = 0.4;
  norm = UserPopulation::Config::normalized(cfg);
  ASSERT_TRUE(norm.has_value());
  EXPECT_NEAR(norm->stable_fraction, 0.75, 1e-12);
  EXPECT_NEAR(norm->moderate_fraction, 0.25, 1e-12);
  EXPECT_LE(norm->stable_fraction + norm->moderate_fraction, 1.0 + 1e-12);
}

TEST(UserPopulationConfig, AllZeroAndNonFiniteMixturesAreErrors) {
  {
    UserPopulation::Config cfg;  // every archetype weight clamps to zero
    cfg.sensitive_fraction = 0.0;
    cfg.threshold_fraction = -1.0;
    cfg.insensitive_fraction = 0.0;
    EXPECT_FALSE(UserPopulation::Config::normalized(cfg).has_value());
  }
  {
    UserPopulation::Config cfg;
    cfg.mid_tolerance_fraction = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(UserPopulation::Config::normalized(cfg).has_value());
  }
  {
    UserPopulation::Config cfg;
    cfg.sensitive_fraction = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(UserPopulation::Config::normalized(cfg).has_value());
  }
}

TEST(UserPopulationConfig, SamplersAcceptNormalizedOddMixtures) {
  // End to end: an over-unity + negative mixture still yields a usable
  // sampler (the constructor normalizes), and drift draws stay finite.
  UserPopulation::Config cfg;
  cfg.sensitive_fraction = 3.0;
  cfg.threshold_fraction = -2.0;
  cfg.insensitive_fraction = 1.0;
  cfg.stable_fraction = 0.9;
  cfg.moderate_fraction = 0.6;
  UserPopulation pop(cfg);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const auto user = pop.sample(rng);
    ASSERT_NE(user, nullptr);
    EXPECT_TRUE(std::isfinite(pop.sample_drift(rng)));
  }
}

}  // namespace
}  // namespace lingxi::user
