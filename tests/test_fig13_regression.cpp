// Golden regression for the Fig. 13 pipeline on its FleetRunner-backed
// driver: a tiny-population run is compared against a committed JSON fixture
// (tests/data/fig13_golden.json), so any change to the experiment driver,
// the fleet substrate, the batched predictor path, or the bucket computation
// that moves the figure's numbers fails loudly.
//
// The same run is repeated with worker threads and a batched predictor and
// must render byte-identical JSON — the figure is independent of every
// throughput knob.
//
// Regenerating the fixture (after an intentional numbers change):
//   LINGXI_REGEN_FIG13_GOLDEN=1 ./test_fig13_regression
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abr/hyb.h"
#include "analytics/fig13.h"
#include "common/rng.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"

#ifndef LINGXI_TEST_DATA_DIR
#define LINGXI_TEST_DATA_DIR "tests/data"
#endif

namespace lingxi {
namespace {

constexpr std::uint64_t kSeed = 555;

analytics::ExperimentConfig tiny_config() {
  analytics::ExperimentConfig cfg;
  cfg.users = 8;
  cfg.days = 4;
  cfg.sessions_per_user_day = 6;
  cfg.intervention_day = 0;  // post-deploy view, as in the full bench
  // Bursty mid-bandwidth world: buffers build between bandwidth dips, so
  // HYB's beta actually flips decisions AND stalls still fire the trigger —
  // the treatment arm measurably diverges from control (at these settings
  // LingXi cuts summed stall by ~20%), so the fixture pins LingXi's effect,
  // not just the plumbing. A purely starved world pins nothing: every
  // session runs at ladder level 0 whatever beta is.
  cfg.network.median_bandwidth = 2800.0;
  cfg.network.sigma = 0.35;
  cfg.network.relative_sd = 0.45;
  cfg.lingxi.obo_rounds = 3;
  cfg.lingxi.monte_carlo.samples = 4;
  cfg.lingxi.monte_carlo.sample_duration = 10.0;
  cfg.lingxi.adoption_margin = 0.0;
  return cfg;
}

std::function<predictor::HybridExitPredictor()> predictor_factory() {
  // Deterministic untrained net: the fixture pins the pipeline, not model
  // quality, and skipping training keeps the regression fast. The factory is
  // re-seeded per call so every arm/user sees identical weights.
  return [] {
    Rng net_rng(7777);
    return predictor::HybridExitPredictor(
        std::make_shared<predictor::StallExitNet>(net_rng),
        std::make_shared<predictor::OverallStatsModel>());
  };
}

std::string run_tiny_fig13(std::size_t threads, std::size_t predictor_batch) {
  analytics::ExperimentConfig cfg = tiny_config();
  cfg.threads = threads;
  cfg.predictor_batch = predictor_batch;
  const analytics::PopulationExperiment experiment(
      cfg, [] { return std::make_unique<abr::Hyb>(); }, predictor_factory());
  return analytics::to_json(analytics::run_fig13(experiment, kSeed));
}

std::string golden_path() {
  return std::string(LINGXI_TEST_DATA_DIR) + "/fig13_golden.json";
}

/// Every numeric token in the text, in order (labels like "0-2 Mbps"
/// contribute identically on both sides, so sequence comparison is sound).
std::vector<double> numbers_in(const std::string& text) {
  std::vector<double> out;
  const char* p = text.c_str();
  const char* end = p + text.size();
  while (p < end) {
    if ((*p >= '0' && *p <= '9') ||
        (*p == '-' && p + 1 < end && p[1] >= '0' && p[1] <= '9')) {
      char* next = nullptr;
      out.push_back(std::strtod(p, &next));
      p = next;
    } else {
      ++p;
    }
  }
  return out;
}

TEST(Fig13Regression, MatchesCommittedGolden) {
  const std::string actual = run_tiny_fig13(/*threads=*/1, /*predictor_batch=*/1);

  if (std::getenv("LINGXI_REGEN_FIG13_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    return;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing fixture " << golden_path()
                         << " (regenerate with LINGXI_REGEN_FIG13_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  const std::vector<double> want = numbers_in(golden);
  const std::vector<double> got = numbers_in(actual);
  ASSERT_EQ(got.size(), want.size()) << "fixture shape changed:\n" << actual;
  for (std::size_t i = 0; i < want.size(); ++i) {
    // Numeric (not string) comparison with a tight relative tolerance:
    // simulations are deterministic, but FP contraction may differ a ulp or
    // two across compilers.
    const double tol = std::max(1e-9, 1e-6 * std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol) << "token " << i << "\n" << actual;
  }
}

TEST(Fig13Regression, IndependentOfThreadsAndBatch) {
  const std::string scalar = run_tiny_fig13(/*threads=*/1, /*predictor_batch=*/1);
  const std::string batched = run_tiny_fig13(/*threads=*/2, /*predictor_batch=*/7);
  // Byte-identical JSON: the figure cannot depend on throughput knobs.
  EXPECT_EQ(scalar, batched);
}

}  // namespace
}  // namespace lingxi
