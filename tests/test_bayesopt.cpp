// Unit tests for lingxi_bayesopt: GP regression, acquisition functions and
// the online Bayesian optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "bayesopt/acquisition.h"
#include "bayesopt/gp.h"
#include "bayesopt/obo.h"
#include "common/rng.h"

namespace lingxi::bayesopt {
namespace {

TEST(Gp, PriorBeforeObservations) {
  GaussianProcess gp;
  const auto p = gp.predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);  // default signal variance
}

TEST(Gp, InterpolatesObservations) {
  GaussianProcess gp;
  gp.observe({0.2}, 1.0);
  gp.observe({0.8}, 3.0);
  const auto at_first = gp.predict({0.2});
  EXPECT_NEAR(at_first.mean, 1.0, 0.05);
  EXPECT_LT(at_first.variance, 0.01);
}

TEST(Gp, VarianceGrowsAwayFromData) {
  GaussianProcess gp;
  gp.observe({0.5}, 2.0);
  const auto near = gp.predict({0.52});
  const auto far = gp.predict({0.0});
  EXPECT_LT(near.variance, far.variance);
}

TEST(Gp, MeanRevertsToDataMeanFarAway) {
  GaussianProcess gp;
  gp.observe({0.4}, 10.0);
  gp.observe({0.6}, 20.0);
  // Far from data the posterior mean approaches the (centered) data mean.
  const auto p = gp.predict({100.0});
  EXPECT_NEAR(p.mean, 15.0, 1e-6);
}

TEST(Gp, BestTracksMinimum) {
  GaussianProcess gp;
  gp.observe({0.1}, 5.0);
  gp.observe({0.7}, 2.0);
  gp.observe({0.9}, 7.0);
  EXPECT_DOUBLE_EQ(gp.best_y(), 2.0);
  EXPECT_DOUBLE_EQ(gp.best_x()[0], 0.7);
}

TEST(Gp, MultiDimensional) {
  GaussianProcess gp;
  gp.observe({0.1, 0.9}, 1.0);
  gp.observe({0.9, 0.1}, 3.0);
  const auto p = gp.predict({0.1, 0.9});
  EXPECT_NEAR(p.mean, 1.0, 0.1);
}

TEST(Gp, NoisyObservationsDoNotBreakCholesky) {
  GpConfig cfg;
  cfg.noise_variance = 0.01;
  GaussianProcess gp(cfg);
  Rng rng(1);
  // Repeated x with different y would be singular without the noise term.
  for (int i = 0; i < 20; ++i) gp.observe({0.5}, rng.normal(2.0, 0.1));
  const auto p = gp.predict({0.5});
  EXPECT_NEAR(p.mean, 2.0, 0.15);
}

TEST(Acquisition, EiZeroWhenCertainAndWorse) {
  EXPECT_DOUBLE_EQ(expected_improvement(5.0, 0.0, 3.0), 0.0);
}

TEST(Acquisition, EiEqualsGapWhenCertainAndBetter) {
  EXPECT_DOUBLE_EQ(expected_improvement(1.0, 0.0, 3.0), 2.0);
}

TEST(Acquisition, EiIncreasesWithVariance) {
  const double lo = expected_improvement(3.0, 0.01, 3.0);
  const double hi = expected_improvement(3.0, 1.0, 3.0);
  EXPECT_GT(hi, lo);
}

TEST(Acquisition, PiBoundsAndMonotonicity) {
  EXPECT_NEAR(probability_of_improvement(3.0, 1.0, 3.0), 0.5, 1e-9);
  EXPECT_GT(probability_of_improvement(2.0, 1.0, 3.0), 0.5);
  EXPECT_LT(probability_of_improvement(4.0, 1.0, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(probability_of_improvement(2.0, 0.0, 3.0), 1.0);
}

TEST(Acquisition, LcbPrefersLowMeanHighVariance) {
  EXPECT_GT(lower_confidence_bound(1.0, 0.5), lower_confidence_bound(2.0, 0.5));
  EXPECT_GT(lower_confidence_bound(1.0, 2.0), lower_confidence_bound(1.0, 0.5));
}

TEST(Obo, WarmStartEvaluatedFirst) {
  OnlineBayesOpt obo(2);
  obo.warm_start({0.25, 0.75});
  Rng rng(2);
  const auto x = obo.next_candidate(rng);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.75);
}

TEST(Obo, CandidatesStayInUnitCube) {
  OnlineBayesOpt obo(3);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto x = obo.next_candidate(rng);
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    obo.update(x, rng.uniform());
  }
}

TEST(Obo, FindsMinimumOfSmooth1dFunction) {
  // f(x) = (x - 0.3)^2, minimum at 0.3.
  auto f = [](double x) { return (x - 0.3) * (x - 0.3); };
  OnlineBayesOpt obo(1);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto x = obo.next_candidate(rng);
    obo.update(x, f(x[0]));
  }
  EXPECT_NEAR(obo.best()[0], 0.3, 0.08);
  EXPECT_LT(obo.best_value(), 0.01);
}

TEST(Obo, BeatsRandomSearchOnAverage) {
  auto f = [](double x, double y) {
    return (x - 0.7) * (x - 0.7) + (y - 0.2) * (y - 0.2);
  };
  const int kTrials = 10;
  const int kBudget = 15;
  double obo_total = 0.0, random_total = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(100 + t);
    OnlineBayesOpt obo(2);
    for (int i = 0; i < kBudget; ++i) {
      const auto x = obo.next_candidate(rng);
      obo.update(x, f(x[0], x[1]));
    }
    obo_total += obo.best_value();

    Rng rng2(200 + t);
    double best_random = 1e9;
    for (int i = 0; i < kBudget; ++i) {
      best_random = std::min(best_random, f(rng2.uniform(), rng2.uniform()));
    }
    random_total += best_random;
  }
  EXPECT_LT(obo_total, random_total);
}

TEST(Obo, EvaluationCountTracked) {
  OnlineBayesOpt obo(1);
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const auto x = obo.next_candidate(rng);
    obo.update(x, 1.0);
  }
  EXPECT_EQ(obo.evaluations(), 5u);
}

}  // namespace
}  // namespace lingxi::bayesopt
