// Unit tests for lingxi_bayesopt: GP regression, acquisition functions and
// the online Bayesian optimizer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "bayesopt/acquisition.h"
#include "bayesopt/gp.h"
#include "bayesopt/obo.h"
#include "common/rng.h"

namespace lingxi::bayesopt {
namespace {

TEST(Gp, PriorBeforeObservations) {
  GaussianProcess gp;
  const auto p = gp.predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);  // default signal variance
}

TEST(Gp, InterpolatesObservations) {
  GaussianProcess gp;
  gp.observe({0.2}, 1.0);
  gp.observe({0.8}, 3.0);
  const auto at_first = gp.predict({0.2});
  EXPECT_NEAR(at_first.mean, 1.0, 0.05);
  EXPECT_LT(at_first.variance, 0.01);
}

TEST(Gp, VarianceGrowsAwayFromData) {
  GaussianProcess gp;
  gp.observe({0.5}, 2.0);
  const auto near = gp.predict({0.52});
  const auto far = gp.predict({0.0});
  EXPECT_LT(near.variance, far.variance);
}

TEST(Gp, MeanRevertsToDataMeanFarAway) {
  GaussianProcess gp;
  gp.observe({0.4}, 10.0);
  gp.observe({0.6}, 20.0);
  // Far from data the posterior mean approaches the (centered) data mean.
  const auto p = gp.predict({100.0});
  EXPECT_NEAR(p.mean, 15.0, 1e-6);
}

TEST(Gp, BestTracksMinimum) {
  GaussianProcess gp;
  gp.observe({0.1}, 5.0);
  gp.observe({0.7}, 2.0);
  gp.observe({0.9}, 7.0);
  EXPECT_DOUBLE_EQ(gp.best_y(), 2.0);
  EXPECT_DOUBLE_EQ(gp.best_x()[0], 0.7);
}

TEST(Gp, MultiDimensional) {
  GaussianProcess gp;
  gp.observe({0.1, 0.9}, 1.0);
  gp.observe({0.9, 0.1}, 3.0);
  const auto p = gp.predict({0.1, 0.9});
  EXPECT_NEAR(p.mean, 1.0, 0.1);
}

TEST(Gp, NoisyObservationsDoNotBreakCholesky) {
  GpConfig cfg;
  cfg.noise_variance = 0.01;
  GaussianProcess gp(cfg);
  Rng rng(1);
  // Repeated x with different y would be singular without the noise term.
  for (int i = 0; i < 20; ++i) gp.observe({0.5}, rng.normal(2.0, 0.1));
  const auto p = gp.predict({0.5});
  EXPECT_NEAR(p.mean, 2.0, 0.15);
}

TEST(Acquisition, EiZeroWhenCertainAndWorse) {
  EXPECT_DOUBLE_EQ(expected_improvement(5.0, 0.0, 3.0), 0.0);
}

TEST(Acquisition, EiEqualsGapWhenCertainAndBetter) {
  EXPECT_DOUBLE_EQ(expected_improvement(1.0, 0.0, 3.0), 2.0);
}

TEST(Acquisition, EiIncreasesWithVariance) {
  const double lo = expected_improvement(3.0, 0.01, 3.0);
  const double hi = expected_improvement(3.0, 1.0, 3.0);
  EXPECT_GT(hi, lo);
}

TEST(Acquisition, PiBoundsAndMonotonicity) {
  EXPECT_NEAR(probability_of_improvement(3.0, 1.0, 3.0), 0.5, 1e-9);
  EXPECT_GT(probability_of_improvement(2.0, 1.0, 3.0), 0.5);
  EXPECT_LT(probability_of_improvement(4.0, 1.0, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(probability_of_improvement(2.0, 0.0, 3.0), 1.0);
}

TEST(Acquisition, LcbPrefersLowMeanHighVariance) {
  EXPECT_GT(lower_confidence_bound(1.0, 0.5), lower_confidence_bound(2.0, 0.5));
  EXPECT_GT(lower_confidence_bound(1.0, 2.0), lower_confidence_bound(1.0, 0.5));
}

TEST(Obo, WarmStartEvaluatedFirst) {
  OnlineBayesOpt obo(2);
  obo.warm_start({0.25, 0.75});
  Rng rng(2);
  const auto x = obo.next_candidate(rng);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.75);
}

TEST(Obo, CandidatesStayInUnitCube) {
  OnlineBayesOpt obo(3);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto x = obo.next_candidate(rng);
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    obo.update(x, rng.uniform());
  }
}

TEST(Obo, FindsMinimumOfSmooth1dFunction) {
  // f(x) = (x - 0.3)^2, minimum at 0.3.
  auto f = [](double x) { return (x - 0.3) * (x - 0.3); };
  OnlineBayesOpt obo(1);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto x = obo.next_candidate(rng);
    obo.update(x, f(x[0]));
  }
  EXPECT_NEAR(obo.best()[0], 0.3, 0.08);
  EXPECT_LT(obo.best_value(), 0.01);
}

TEST(Obo, BeatsRandomSearchOnAverage) {
  auto f = [](double x, double y) {
    return (x - 0.7) * (x - 0.7) + (y - 0.2) * (y - 0.2);
  };
  const int kTrials = 10;
  const int kBudget = 15;
  double obo_total = 0.0, random_total = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(100 + t);
    OnlineBayesOpt obo(2);
    for (int i = 0; i < kBudget; ++i) {
      const auto x = obo.next_candidate(rng);
      obo.update(x, f(x[0], x[1]));
    }
    obo_total += obo.best_value();

    Rng rng2(200 + t);
    double best_random = 1e9;
    for (int i = 0; i < kBudget; ++i) {
      best_random = std::min(best_random, f(rng2.uniform(), rng2.uniform()));
    }
    random_total += best_random;
  }
  EXPECT_LT(obo_total, random_total);
}

TEST(Obo, EvaluationCountTracked) {
  OnlineBayesOpt obo(1);
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const auto x = obo.next_candidate(rng);
    obo.update(x, 1.0);
  }
  EXPECT_EQ(obo.evaluations(), 5u);
}

// ---------------------------------------------------------------------------
// Incremental Cholesky: observe() extends the packed factor with one new row
// instead of refactorizing. Row-ordered Cholesky computes row i from rows
// <= i only, so the incremental factor must equal the full refit bit for
// bit — every element, every alpha, for every prefix of every sequence.
// ---------------------------------------------------------------------------

TEST(GpIncremental, FactorMatchesFullRefitExactly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const std::size_t dims : {1u, 2u, 3u}) {
      Rng rng(seed * 101 + dims);
      GpConfig config;
      config.noise_variance = seed % 2 == 0 ? 1e-6 : 1e-3;
      GaussianProcess incremental(config);
      for (std::size_t n = 1; n <= 64; ++n) {
        std::vector<double> x(dims);
        for (double& v : x) v = rng.uniform();
        const double y = std::sin(6.0 * x[0]) + 0.1 * rng.normal(0.0, 1.0);
        incremental.observe(x, y);

        // A GP rebuilt from scratch under forced full refit must agree on
        // every factor element and every alpha coefficient, exactly.
        GaussianProcess::set_full_refit_for_testing(true);
        GaussianProcess full(config);
        full.restore(incremental.state());
        GaussianProcess::set_full_refit_for_testing(false);

        ASSERT_EQ(incremental.factor().size(), full.factor().size());
        for (std::size_t i = 0; i < full.factor().size(); ++i) {
          ASSERT_EQ(incremental.factor()[i], full.factor()[i])
              << "seed=" << seed << " dims=" << dims << " n=" << n << " element " << i;
        }
        ASSERT_EQ(incremental.alpha().size(), full.alpha().size());
        for (std::size_t i = 0; i < full.alpha().size(); ++i) {
          ASSERT_EQ(incremental.alpha()[i], full.alpha()[i])
              << "seed=" << seed << " dims=" << dims << " n=" << n << " alpha " << i;
        }
        ASSERT_EQ(incremental.best_y(), full.best_y());
      }
    }
  }
}

TEST(GpIncremental, RestoreReplaysThroughIncrementalPath) {
  // Snapshot/resume parity: a restored GP must predict bitwise identically
  // to the GP that observed the points one by one.
  Rng rng(7);
  GaussianProcess gp;
  for (int i = 0; i < 24; ++i) gp.observe({rng.uniform(), rng.uniform()}, rng.normal(0.0, 1.0));
  GaussianProcess restored;
  restored.restore(gp.state());
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> q{rng.uniform(), rng.uniform()};
    const auto a = gp.predict(q);
    const auto b = restored.predict(q);
    ASSERT_EQ(a.mean, b.mean);
    ASSERT_EQ(a.variance, b.variance);
  }
  ASSERT_EQ(gp.best_y(), restored.best_y());
  ASSERT_EQ(gp.best_x(), restored.best_x());
}

// ---------------------------------------------------------------------------
// Batched acquisition: predict_batch over a candidate panel must reproduce
// per-candidate predict() bit for bit (it shares the forward solve across
// candidates but keeps each candidate's accumulation order unchanged).
// ---------------------------------------------------------------------------

TEST(GpPredictBatch, MatchesScalarPredictExactly) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    Rng rng(seed);
    GpConfig config;
    GaussianProcess gp(config);
    for (int i = 0; i < 40; ++i) {
      gp.observe({rng.uniform(), rng.uniform(), rng.uniform()}, rng.normal(0.0, 1.0));
    }
    const std::size_t count = 96;
    std::vector<double> panel(count * 3);
    for (double& v : panel) v = rng.uniform();
    std::vector<GpPrediction> batch(count);
    GpWorkspace ws;
    gp.predict_batch(panel.data(), count, 3, batch.data(), ws);
    for (std::size_t c = 0; c < count; ++c) {
      const auto scalar =
          gp.predict({panel[c * 3], panel[c * 3 + 1], panel[c * 3 + 2]});
      ASSERT_EQ(batch[c].mean, scalar.mean) << "seed=" << seed << " candidate " << c;
      ASSERT_EQ(batch[c].variance, scalar.variance)
          << "seed=" << seed << " candidate " << c;
    }
  }
}

TEST(GpPredictBatch, EmptyAndSingleCandidateEdges) {
  GaussianProcess gp;
  gp.observe({0.3}, 1.0);
  gp.observe({0.7}, 2.0);
  GpWorkspace ws;
  // Zero candidates: legal no-op.
  gp.predict_batch(nullptr, 0, 1, nullptr, ws);
  // One candidate equals scalar predict.
  const double x = 0.4;
  GpPrediction one;
  gp.predict_batch(&x, 1, 1, &one, ws);
  const auto scalar = gp.predict({x});
  EXPECT_EQ(one.mean, scalar.mean);
  EXPECT_EQ(one.variance, scalar.variance);
}

TEST(GpPredictBatch, PriorOnEmptyGp) {
  GaussianProcess gp;
  const double x = 0.5;
  GpPrediction p;
  GpWorkspace ws;
  gp.predict_batch(&x, 1, 1, &p, ws);
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
}

}  // namespace
}  // namespace lingxi::bayesopt
