// Integration tests: full pipelines across modules — dataset -> predictor ->
// LingXi -> A/B experiment, plus persistence through logstore.
#include <gtest/gtest.h>

#include <memory>

#include "abr/hyb.h"
#include "abr/robust_mpc.h"
#include "analytics/experiment.h"
#include "common/rng.h"
#include "core/lingxi.h"
#include "logstore/state_store.h"
#include "predictor/dataset.h"
#include "sim/session.h"
#include "trace/population.h"
#include "user/user_population.h"

namespace lingxi {
namespace {

TEST(Integration, TrainedPredictorBeatsUntrainedOnStallData) {
  Rng rng(1);
  predictor::DatasetGenConfig gen;
  gen.users = 40;
  gen.sessions_per_user = 25;
  gen.filter = predictor::DatasetFilter::kStall;
  const auto dataset = predictor::generate_dataset(gen, rng);
  ASSERT_GT(dataset.size(), 50u);
  ASSERT_GT(dataset.positives(), 5u);

  const auto balanced = predictor::balance(dataset, rng);
  const auto split = predictor::stratified_split(balanced, 0.8, rng);

  predictor::StallExitNet net(rng);
  const auto before = predictor::evaluate(net, split.test);
  predictor::TrainConfig tcfg;
  tcfg.epochs = 10;
  predictor::train_exit_net(net, split.train, tcfg, rng);
  const auto after = predictor::evaluate(net, split.test);
  // Training must improve over random init on balanced data.
  EXPECT_GT(after.accuracy, 0.55);
  EXPECT_GE(after.accuracy + 0.05, before.accuracy);
}

TEST(Integration, SessionWithRealAbrAndUserModelProducesCoherentLogs) {
  Rng rng(2);
  const trace::VideoGenerator videos({});
  const trace::Video video = videos.sample(rng);
  trace::GaussMarkovBandwidth bw({.mean = 1500.0, .rho = 0.9, .noise_sd = 300.0});
  abr::RobustMpc mpc;
  user::UserPopulation pop;
  auto user_model = pop.sample(rng);
  const sim::SessionSimulator sim({});
  const auto session = sim.run(video, mpc, bw, user_model.get(), rng);

  ASSERT_FALSE(session.segments.empty());
  EXPECT_LE(session.segments.size(), video.segment_count());
  double cum = 0.0;
  for (const auto& seg : session.segments) {
    cum += seg.stall_time;
    EXPECT_NEAR(seg.cumulative_stall, cum, 1e-9);
    EXPECT_GT(seg.throughput, 0.0);
    EXPECT_LT(seg.level, video.ladder().levels());
  }
  EXPECT_NEAR(session.total_stall, cum, 1e-9);
}

TEST(Integration, LingXiStatePersistsThroughStore) {
  Rng rng(3);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os = std::make_shared<predictor::OverallStatsModel>();

  core::LingXiConfig cfg;
  cfg.obo_rounds = 2;
  cfg.monte_carlo.samples = 3;
  cfg.space.optimize_stall = false;
  cfg.space.optimize_switch = false;
  cfg.space.optimize_beta = true;

  const predictor::HybridExitPredictor lx_predictor(net, os);

  core::LingXi lx(cfg, lx_predictor,

                  trace::BitrateLadder::default_ladder());
  lx.begin_session();
  for (int i = 0; i < 5; ++i) {
    sim::SegmentRecord seg;
    seg.bitrate = 750.0;
    seg.level = 1;
    seg.throughput = 900.0;
    seg.stall_time = 1.2;
    lx.on_segment(seg);
  }
  lx.end_session(true);
  abr::Hyb hyb;
  Rng opt_rng(4);
  ASSERT_TRUE(lx.maybe_optimize(hyb, 1.5, opt_rng).has_value());

  // Persist "on app exit".
  logstore::StateStore store;
  store.put(42, lx.snapshot());
  const std::string path = ::testing::TempDir() + "/lingxi_integration_state.bin";
  ASSERT_TRUE(store.save(path).ok());

  // Restore "on next startup".
  logstore::StateStore store2;
  ASSERT_TRUE(store2.load(path).ok());
  const auto state = store2.get(42);
  ASSERT_TRUE(state.has_value());

  const predictor::HybridExitPredictor lx2_predictor(net, os);

  core::LingXi lx2(cfg, lx2_predictor,

                  trace::BitrateLadder::default_ladder());
  lx2.restore(*state);
  EXPECT_DOUBLE_EQ(lx2.current_params().hyb_beta, lx.current_params().hyb_beta);
  EXPECT_EQ(lx2.engagement().long_term().total_stall_events, 5u);
}

TEST(Integration, LingXiReducesStallExitsForSensitiveLowBandwidthUsers) {
  // End-to-end sanity on a small, stall-heavy world: with a predictor whose
  // OS model reflects the population, LingXi-treated sessions should not be
  // worse on stalls than the static default by a large margin.
  analytics::ExperimentConfig cfg;
  cfg.users = 16;
  cfg.days = 4;
  cfg.sessions_per_user_day = 8;
  cfg.intervention_day = 2;
  cfg.video.mean_duration = 20.0;
  // Heavily bandwidth-constrained world: both arms accumulate enough stall
  // seconds that the treatment/control ratio is statistically stable.
  cfg.network.median_bandwidth = 1000.0;
  cfg.network.sigma = 0.3;
  cfg.network.relative_sd = 0.4;
  cfg.lingxi.obo_rounds = 3;
  cfg.lingxi.monte_carlo.samples = 4;
  cfg.lingxi.monte_carlo.sample_duration = 10.0;

  // Population-fitted OS model.
  auto os = std::make_shared<predictor::OverallStatsModel>();
  {
    Rng rng(5);
    predictor::DatasetGenConfig gen;
    gen.users = 10;
    gen.sessions_per_user = 10;
    gen.filter = predictor::DatasetFilter::kAll;
    // Reuse the dataset generator's world to fit OS frequencies.
    const auto data = predictor::generate_dataset(gen, rng);
    for (const auto& sample : data.samples) {
      os->observe(1, predictor::SwitchType::kNone, sample.exited);
    }
  }
  // Stall net trained on the same world, so the Monte Carlo rollouts see
  // realistic stall-exit probabilities (an untrained net makes LingXi's
  // candidate ranking meaningless).
  Rng net_rng(6);
  auto net = std::make_shared<predictor::StallExitNet>(net_rng);
  {
    Rng rng(7);
    predictor::DatasetGenConfig gen;
    gen.users = 25;
    gen.sessions_per_user = 20;
    gen.filter = predictor::DatasetFilter::kStall;
    auto data = predictor::generate_dataset(gen, rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig tcfg;
    tcfg.epochs = 8;
    if (!balanced.samples.empty()) predictor::train_exit_net(*net, balanced, tcfg, rng);
  }

  analytics::PopulationExperiment exp(
      cfg, [] { return std::make_unique<abr::Hyb>(); },
      [&] { return predictor::HybridExitPredictor(net, os); });

  const auto control = exp.run(false, 77);
  const auto treatment = exp.run(true, 77);

  double control_stall = 0.0, treatment_stall = 0.0;
  for (std::size_t d = cfg.intervention_day; d < cfg.days; ++d) {
    control_stall += control.daily[d].total_stall_time();
    treatment_stall += treatment.daily[d].total_stall_time();
  }
  ASSERT_GT(control_stall, 0.0);
  // Loose bound: the treated arm must stay within 2x of control (typically
  // well below it); the precise improvement claim lives in the benches.
  EXPECT_LT(treatment_stall, 2.0 * control_stall);
}

TEST(Integration, MpcIntegrationSearchesStallSwitchSpace) {
  Rng rng(8);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os = std::make_shared<predictor::OverallStatsModel>();

  core::LingXiConfig cfg;
  cfg.obo_rounds = 4;
  cfg.monte_carlo.samples = 3;
  cfg.monte_carlo.sample_duration = 8.0;
  cfg.space.optimize_stall = true;
  cfg.space.optimize_switch = true;
  cfg.space.optimize_beta = false;

  const predictor::HybridExitPredictor lx_predictor(net, os);

  core::LingXi lx(cfg, lx_predictor,

                  trace::BitrateLadder::default_ladder());
  lx.begin_session();
  for (int i = 0; i < 5; ++i) {
    sim::SegmentRecord seg;
    seg.bitrate = 350.0;
    seg.level = 0;
    seg.throughput = 600.0;
    seg.stall_time = 1.0;
    lx.on_segment(seg);
  }
  abr::RobustMpc mpc;
  Rng opt_rng(9);
  const auto result = lx.maybe_optimize(mpc, 1.0, opt_rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->stall_penalty, cfg.space.stall_min);
  EXPECT_LE(result->stall_penalty, cfg.space.stall_max);
  EXPECT_GE(result->switch_penalty, cfg.space.switch_min);
  EXPECT_LE(result->switch_penalty, cfg.space.switch_max);
  EXPECT_DOUBLE_EQ(mpc.params().stall_penalty, result->stall_penalty);
}

}  // namespace
}  // namespace lingxi
