// Unit tests for lingxi_sim: Eq. 3 player dynamics, session simulation,
// QoE_lin, Monte Carlo evaluation and pruning.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "sim/monte_carlo.h"
#include "sim/player_env.h"
#include "sim/session.h"
#include "trace/bandwidth.h"
#include "trace/video.h"

namespace lingxi::sim {
namespace {

PlayerConfig zero_rtt_config() {
  PlayerConfig c;
  c.rtt = 0.0;
  return c;
}

TEST(PlayerEnv, NoStallWhenBufferCoversDownload) {
  PlayerConfig cfg = zero_rtt_config();
  cfg.startup_buffer = 5.0;
  PlayerEnv env(cfg);
  // 1s segment at 1000 kbps over 2000 kbps link: download = 0.5s < 5s buffer.
  const auto r = env.step(units::segment_bytes(1000.0, 1.0), 1.0, 2000.0);
  EXPECT_DOUBLE_EQ(r.download_time, 0.5);
  EXPECT_DOUBLE_EQ(r.stall_time, 0.0);
  // B' = (5 - 0.5) + 1 = 5.5, under the 8s cap.
  EXPECT_DOUBLE_EQ(r.buffer_after, 5.5);
}

TEST(PlayerEnv, StallIsDownloadMinusBuffer) {
  PlayerConfig cfg = zero_rtt_config();
  cfg.startup_buffer = 0.5;
  PlayerEnv env(cfg);
  // download = 2s, buffer = 0.5 -> stall 1.5s.
  const auto r = env.step(units::segment_bytes(1000.0, 1.0), 1.0, 500.0);
  EXPECT_DOUBLE_EQ(r.download_time, 2.0);
  EXPECT_NEAR(r.stall_time, 1.5, 1e-12);
  // Buffer fully drained, then one fresh segment.
  EXPECT_DOUBLE_EQ(r.buffer_after, 1.0);
  EXPECT_DOUBLE_EQ(env.total_stall(), 1.5);
}

TEST(PlayerEnv, BufferCapEnforcedViaWait) {
  PlayerConfig cfg = zero_rtt_config();
  cfg.base_buffer_max = 4.0;
  cfg.startup_buffer = 4.0;
  PlayerEnv env(cfg);
  // Instant-ish download pushes B_tmp over the cap; wait absorbs the excess.
  const auto r = env.step(units::segment_bytes(350.0, 1.0), 1.0, 100000.0);
  EXPECT_NEAR(r.buffer_after, 4.0, 1e-9);
  EXPECT_GT(r.wait_time, 0.0);
}

TEST(PlayerEnv, RttAlwaysAddsWait) {
  PlayerConfig cfg;
  cfg.rtt = 0.08;
  cfg.startup_buffer = 2.0;
  PlayerEnv env(cfg);
  const auto r = env.step(units::segment_bytes(350.0, 1.0), 1.0, 5000.0);
  EXPECT_GE(r.wait_time, 0.08);
}

TEST(PlayerEnv, WallClockAccumulates) {
  PlayerConfig cfg = zero_rtt_config();
  PlayerEnv env(cfg);
  const auto r1 = env.step(units::segment_bytes(1000.0, 1.0), 1.0, 1000.0);
  const auto r2 = env.step(units::segment_bytes(1000.0, 1.0), 1.0, 1000.0);
  EXPECT_NEAR(env.wall_clock(), r1.download_time + r1.wait_time + r2.download_time +
                                    r2.wait_time, 1e-12);
}

TEST(PlayerEnv, BufferNeverNegative) {
  PlayerConfig cfg = zero_rtt_config();
  PlayerEnv env(cfg);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double bw = rng.uniform(100.0, 8000.0);
    env.step(units::segment_bytes(4300.0, 1.0), 1.0, bw);
    EXPECT_GE(env.buffer(), 0.0);
  }
}

TEST(AdaptiveBufferMax, DecreasesWithBandwidth) {
  PlayerConfig cfg;
  const Seconds low = adaptive_buffer_max(cfg, 500.0, 100.0);
  const Seconds mid = adaptive_buffer_max(cfg, 4300.0, 0.0);
  const Seconds high = adaptive_buffer_max(cfg, 50000.0, 100.0);
  EXPECT_GT(low, mid);
  EXPECT_GE(mid, high);
  EXPECT_NEAR(mid, cfg.base_buffer_max, 1e-9);
}

TEST(AdaptiveBufferMax, Clamped) {
  PlayerConfig cfg;
  EXPECT_DOUBLE_EQ(adaptive_buffer_max(cfg, 1.0, 0.0), cfg.max_buffer_max);
  EXPECT_DOUBLE_EQ(adaptive_buffer_max(cfg, 1e9, 0.0), cfg.min_buffer_max);
}

TEST(AdaptiveBufferMax, VarianceIncreasesCap) {
  PlayerConfig cfg;
  EXPECT_GT(adaptive_buffer_max(cfg, 5000.0, 3000.0), adaptive_buffer_max(cfg, 5000.0, 0.0));
}

// -- session simulation -------------------------------------------------

/// Always selects a fixed level.
class FixedSelector final : public BitrateSelector {
 public:
  explicit FixedSelector(std::size_t level) : level_(level) {}
  std::size_t select(const AbrObservation&) override { return level_; }

 private:
  std::size_t level_;
};

/// Exits deterministically at a given segment index.
class ExitAtSegment final : public ExitModel {
 public:
  explicit ExitAtSegment(std::size_t index) : index_(index) {}
  double exit_probability(const SegmentRecord& seg) override {
    return seg.index == index_ ? 1.0 : 0.0;
  }

 private:
  std::size_t index_;
};

TEST(Session, CompletesWithoutExitModel) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 20, 1.0);
  trace::ConstantBandwidth bw(5000.0);
  FixedSelector abr(0);
  SessionSimulator sim({});
  Rng rng(2);
  const auto result = sim.run(video, abr, bw, nullptr, rng);
  EXPECT_FALSE(result.exited);
  EXPECT_TRUE(result.completed());
  EXPECT_EQ(result.segments.size(), 20u);
  EXPECT_DOUBLE_EQ(result.watch_time, 20.0);
  EXPECT_DOUBLE_EQ(result.mean_bitrate, 350.0);
  EXPECT_EQ(result.quality_switches, 0u);
}

TEST(Session, ExitModelStopsPlayback) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 20, 1.0);
  trace::ConstantBandwidth bw(5000.0);
  FixedSelector abr(0);
  ExitAtSegment exits(4);
  SessionSimulator sim({});
  Rng rng(3);
  const auto result = sim.run(video, abr, bw, &exits, rng);
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.segments.size(), 5u);  // segments 0..4 watched
  EXPECT_DOUBLE_EQ(result.watch_time, 5.0);
}

TEST(Session, CumulativeStallMonotone) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 30, 1.0);
  trace::ConstantBandwidth bw(300.0);  // below even the lowest rung -> stalls
  FixedSelector abr(0);
  SessionSimulator sim({});
  Rng rng(4);
  const auto result = sim.run(video, abr, bw, nullptr, rng);
  EXPECT_GT(result.total_stall, 0.0);
  for (std::size_t i = 1; i < result.segments.size(); ++i) {
    EXPECT_GE(result.segments[i].cumulative_stall,
              result.segments[i - 1].cumulative_stall);
    EXPECT_GE(result.segments[i].cumulative_stall_events,
              result.segments[i - 1].cumulative_stall_events);
  }
  const auto& last = result.segments.back();
  EXPECT_NEAR(last.cumulative_stall, result.total_stall, 1e-9);
}

TEST(Session, ThroughputHistoryWindowCapped) {
  // Selector that checks the observation invariants as it goes.
  class CheckingSelector final : public BitrateSelector {
   public:
    explicit CheckingSelector(std::size_t window) : window_(window) {}
    std::size_t select(const AbrObservation& obs) override {
      EXPECT_LE(obs.throughput_history.size(), window_);
      EXPECT_EQ(obs.throughput_history.size(), obs.download_time_history.size());
      return 0;
    }

   private:
    std::size_t window_;
  };

  SessionSimulator::Config cfg;
  cfg.throughput_window = 4;
  const trace::Video video(trace::BitrateLadder::default_ladder(), 15, 1.0);
  trace::ConstantBandwidth bw(2000.0);
  CheckingSelector abr(4);
  SessionSimulator sim(cfg);
  Rng rng(5);
  sim.run(video, abr, bw, nullptr, rng);
}

TEST(Session, SwitchCounting) {
  class Alternator final : public BitrateSelector {
   public:
    std::size_t select(const AbrObservation& obs) override { return obs.next_segment % 2; }
  };
  const trace::Video video(trace::BitrateLadder::default_ladder(), 10, 1.0);
  trace::ConstantBandwidth bw(10000.0);
  Alternator abr;
  SessionSimulator sim({});
  Rng rng(6);
  const auto result = sim.run(video, abr, bw, nullptr, rng);
  EXPECT_EQ(result.quality_switches, 9u);
}

TEST(QoeLin, HandComputed) {
  // Build a fake 3-segment session: levels 0,3,3; one 2s stall.
  SessionResult s;
  SegmentRecord a, b, c;
  a.level = 0;
  a.stall_time = 0.0;
  b.level = 3;
  b.stall_time = 2.0;
  c.level = 3;
  c.stall_time = 0.0;
  s.segments = {a, b, c};
  const auto ladder = trace::BitrateLadder::default_ladder();
  // quality = 0.35 + 4.3 + 4.3 = 8.95; stall = 2 * mu; switch = |4.3-0.35|.
  const double q = qoe_lin(s, ladder, trace::QualityMetric::kLinearMbps, 4.3, 1.0);
  EXPECT_NEAR(q, 8.95 - 4.3 * 2.0 - 3.95, 1e-9);
}

TEST(QoeLin, SwitchWeightScales) {
  SessionResult s;
  SegmentRecord a, b;
  a.level = 0;
  b.level = 3;
  s.segments = {a, b};
  const auto ladder = trace::BitrateLadder::default_ladder();
  const double q0 = qoe_lin(s, ladder, trace::QualityMetric::kLinearMbps, 1.0, 0.0);
  const double q2 = qoe_lin(s, ladder, trace::QualityMetric::kLinearMbps, 1.0, 2.0);
  EXPECT_NEAR(q0 - q2, 2.0 * 3.95, 1e-9);
}

// -- Monte Carlo ---------------------------------------------------------

/// Constant exit probability.
class ConstantExit final : public ExitModel {
 public:
  explicit ConstantExit(double p) : p_(p) {}
  double exit_probability(const SegmentRecord&) override { return p_; }

 private:
  double p_;
};

TEST(MonteCarlo, ZeroExitProbabilityGivesZeroRate) {
  MonteCarloConfig mc;
  mc.samples = 8;
  mc.sample_duration = 10.0;
  const MonteCarloEvaluator eval(mc, {});
  const auto ladder = trace::BitrateLadder::default_ladder();
  const trace::Video video = eval.make_virtual_video(ladder, 1.0);
  EXPECT_EQ(video.segment_count(), 10u);
  FixedSelector abr(0);
  ConstantExit exits(0.0);
  trace::NormalBandwidth bw(5000.0, 500.0);
  Rng rng(7);
  const auto r = eval.evaluate(video, abr, exits, bw, 0.0,
                               std::numeric_limits<double>::infinity(), rng);
  EXPECT_DOUBLE_EQ(r.exit_rate, 0.0);
  EXPECT_EQ(r.exited_count, 0u);
  EXPECT_EQ(r.watched_count, 80u);
  EXPECT_FALSE(r.pruned);
}

TEST(MonteCarlo, CertainExitGivesOneExitPerSample) {
  MonteCarloConfig mc;
  mc.samples = 10;
  mc.sample_duration = 20.0;
  mc.enable_pruning = false;
  const MonteCarloEvaluator eval(mc, {});
  const auto ladder = trace::BitrateLadder::default_ladder();
  const trace::Video video = eval.make_virtual_video(ladder, 1.0);
  FixedSelector abr(0);
  ConstantExit exits(1.0);
  trace::NormalBandwidth bw(5000.0, 0.0);
  Rng rng(8);
  const auto r = eval.evaluate(video, abr, exits, bw, 0.0,
                               std::numeric_limits<double>::infinity(), rng);
  EXPECT_EQ(r.exited_count, 10u);
  EXPECT_EQ(r.watched_count, 10u);  // every sample exits on its first segment
  EXPECT_DOUBLE_EQ(r.exit_rate, 1.0);
}

TEST(MonteCarlo, EstimatesModerateRate) {
  MonteCarloConfig mc;
  mc.samples = 200;
  mc.sample_duration = 30.0;
  mc.enable_pruning = false;
  const MonteCarloEvaluator eval(mc, {});
  const auto ladder = trace::BitrateLadder::default_ladder();
  const trace::Video video = eval.make_virtual_video(ladder, 1.0);
  FixedSelector abr(0);
  ConstantExit exits(0.1);
  trace::NormalBandwidth bw(5000.0, 0.0);
  Rng rng(9);
  const auto r = eval.evaluate(video, abr, exits, bw, 0.0,
                               std::numeric_limits<double>::infinity(), rng);
  // Geometric watching: per-segment exit prob 0.1 -> exit rate ~0.1 per
  // watched segment (most samples exit before the horizon).
  EXPECT_NEAR(r.exit_rate, 0.1, 0.03);
}

TEST(MonteCarlo, PruningStopsEarlyAgainstBetterAlternative) {
  MonteCarloConfig mc;
  mc.samples = 100;
  mc.sample_duration = 10.0;
  mc.enable_pruning = true;
  mc.min_samples_before_prune = 5;
  const MonteCarloEvaluator eval(mc, {});
  const auto ladder = trace::BitrateLadder::default_ladder();
  const trace::Video video = eval.make_virtual_video(ladder, 1.0);
  FixedSelector abr(0);
  ConstantExit exits(1.0);  // terrible candidate
  trace::NormalBandwidth bw(5000.0, 0.0);
  Rng rng(10);
  // Best known alternative has near-zero exit rate.
  const auto r = eval.evaluate(video, abr, exits, bw, 0.0, 0.001, rng);
  EXPECT_TRUE(r.pruned);
  EXPECT_LT(r.samples_run, 100u);
}

TEST(MonteCarlo, NoPruningWhenCandidateIsGood) {
  MonteCarloConfig mc;
  mc.samples = 30;
  mc.sample_duration = 10.0;
  const MonteCarloEvaluator eval(mc, {});
  const auto ladder = trace::BitrateLadder::default_ladder();
  const trace::Video video = eval.make_virtual_video(ladder, 1.0);
  FixedSelector abr(0);
  ConstantExit exits(0.0);
  trace::NormalBandwidth bw(5000.0, 0.0);
  Rng rng(11);
  const auto r = eval.evaluate(video, abr, exits, bw, 0.0, 0.5, rng);
  EXPECT_FALSE(r.pruned);
  EXPECT_EQ(r.samples_run, 30u);
}

TEST(MonteCarlo, InitialBufferSeedsVirtualPlayer) {
  // With a huge initial buffer and slow bandwidth, the early segments must
  // not stall; with zero initial buffer they must.
  MonteCarloConfig mc;
  mc.samples = 1;
  mc.sample_duration = 5.0;
  SessionSimulator::Config sess;
  sess.adaptive_buffer_max = false;
  sess.player.base_buffer_max = 30.0;
  sess.player.max_buffer_max = 30.0;
  const MonteCarloEvaluator eval(mc, sess);
  const auto ladder = trace::BitrateLadder::default_ladder();
  const trace::Video video = eval.make_virtual_video(ladder, 1.0);

  class StallProbe final : public ExitModel {
   public:
    double total_stall = 0.0;
    double exit_probability(const SegmentRecord& seg) override {
      total_stall += seg.stall_time;
      return 0.0;
    }
  };

  trace::ConstantBandwidth slow(200.0);
  FixedSelector abr(0);
  Rng rng(12);

  StallProbe with_buffer;
  eval.evaluate(video, abr, with_buffer, slow, 20.0,
                std::numeric_limits<double>::infinity(), rng);
  StallProbe without_buffer;
  eval.evaluate(video, abr, without_buffer, slow, 0.0,
                std::numeric_limits<double>::infinity(), rng);
  EXPECT_LT(with_buffer.total_stall, without_buffer.total_stall);
}

}  // namespace
}  // namespace lingxi::sim
