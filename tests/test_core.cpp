// Unit tests for lingxi_core: trigger logic, pruning, the OBO loop, fixed
// candidate mode and state persistence.
#include <gtest/gtest.h>

#include <memory>

#include "abr/hyb.h"
#include "common/rng.h"
#include "core/lingxi.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"

namespace lingxi::core {
namespace {

predictor::HybridExitPredictor make_predictor(std::uint64_t seed = 1) {
  Rng rng(seed);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os = std::make_shared<predictor::OverallStatsModel>();
  return {net, os};
}

sim::SegmentRecord make_segment(Kbps throughput, Seconds stall) {
  sim::SegmentRecord seg;
  seg.level = 1;
  seg.bitrate = 750.0;
  seg.throughput = throughput;
  seg.stall_time = stall;
  return seg;
}

LingXiConfig fast_config() {
  LingXiConfig cfg;
  cfg.obo_rounds = 3;
  cfg.monte_carlo.samples = 4;
  cfg.monte_carlo.sample_duration = 8.0;
  cfg.space.optimize_stall = false;
  cfg.space.optimize_switch = false;
  cfg.space.optimize_beta = true;
  return cfg;
}

TEST(LingXi, NoTriggerBeforeThreshold) {
  const auto lx_predictor = make_predictor();
  LingXi lx(fast_config(), lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  lx.on_segment(make_segment(1000.0, 1.0));
  lx.on_segment(make_segment(1000.0, 1.0));
  // eta = 2: exactly two stalls does not trigger (strictly greater required).
  EXPECT_FALSE(lx.should_optimize());
  lx.on_segment(make_segment(1000.0, 1.0));
  EXPECT_TRUE(lx.should_optimize());
}

TEST(LingXi, CleanSegmentsNeverTrigger) {
  const auto lx_predictor = make_predictor();
  LingXi lx(fast_config(), lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  for (int i = 0; i < 100; ++i) lx.on_segment(make_segment(5000.0, 0.0));
  EXPECT_FALSE(lx.should_optimize());
}

TEST(LingXi, MaybeOptimizeNoOpWithoutTrigger) {
  const auto lx_predictor = make_predictor();
  LingXi lx(fast_config(), lx_predictor, trace::BitrateLadder::default_ladder());
  abr::Hyb hyb;
  Rng rng(2);
  EXPECT_FALSE(lx.maybe_optimize(hyb, 2.0, rng).has_value());
  EXPECT_EQ(lx.stats().optimizations_run, 0u);
}

TEST(LingXi, OptimizationRunsAndUpdatesAbr) {
  const auto lx_predictor = make_predictor();
  LingXi lx(fast_config(), lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  for (int i = 0; i < 4; ++i) lx.on_segment(make_segment(800.0, 1.5));
  ASSERT_TRUE(lx.should_optimize());

  abr::Hyb hyb;
  Rng rng(3);
  const auto result = lx.maybe_optimize(hyb, 2.0, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(lx.stats().optimizations_run, 1u);
  EXPECT_GE(lx.stats().mc_evaluations, 3u);
  // The ABR received the optimized parameters.
  EXPECT_DOUBLE_EQ(hyb.params().hyb_beta, result->hyb_beta);
  // Parameters respect the box.
  const auto& space = lx.current_params();
  EXPECT_GE(space.hyb_beta, fast_config().space.beta_min);
  EXPECT_LE(space.hyb_beta, fast_config().space.beta_max);
  // Trigger counter was reset.
  EXPECT_FALSE(lx.should_optimize());
}

TEST(LingXi, PreplayPruningSkipsHighBandwidthUsers) {
  LingXiConfig cfg = fast_config();
  const auto lx_predictor = make_predictor();
  LingXi lx(cfg, lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  // Huge stable bandwidth with (synthetic) stalls: mu - 3 sigma > 4300.
  for (int i = 0; i < 4; ++i) lx.on_segment(make_segment(50000.0, 1.0));
  abr::Hyb hyb;
  Rng rng(4);
  EXPECT_FALSE(lx.maybe_optimize(hyb, 2.0, rng).has_value());
  EXPECT_EQ(lx.stats().pruned_preplay, 1u);
  EXPECT_EQ(lx.stats().optimizations_run, 0u);
}

TEST(LingXi, PreplayPruningCanBeDisabled) {
  LingXiConfig cfg = fast_config();
  cfg.enable_preplay_pruning = false;
  const auto lx_predictor = make_predictor();
  LingXi lx(cfg, lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  for (int i = 0; i < 4; ++i) lx.on_segment(make_segment(50000.0, 1.0));
  abr::Hyb hyb;
  Rng rng(5);
  EXPECT_TRUE(lx.maybe_optimize(hyb, 2.0, rng).has_value());
}

TEST(LingXi, FixedCandidateModePicksFromList) {
  LingXiConfig cfg = fast_config();
  abr::QoeParams a;
  a.hyb_beta = 0.5;
  abr::QoeParams b;
  b.hyb_beta = 0.9;
  cfg.fixed_candidates = {a, b};
  const auto lx_predictor = make_predictor();
  LingXi lx(cfg, lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  for (int i = 0; i < 4; ++i) lx.on_segment(make_segment(800.0, 1.5));
  abr::Hyb hyb;
  Rng rng(6);
  const auto result = lx.maybe_optimize(hyb, 2.0, rng);
  ASSERT_TRUE(result.has_value());
  // Either one of the fixed candidates won, or the incumbent default was
  // retained under the no-negative-influence margin.
  EXPECT_TRUE(result->hyb_beta == 0.5 || result->hyb_beta == 0.9 ||
              result->hyb_beta == cfg.default_params.hyb_beta);
  // Incumbent + the two fixed candidates.
  EXPECT_EQ(lx.stats().mc_evaluations, 3u);
}

TEST(LingXi, BandwidthEstimateTracksSegments) {
  const auto lx_predictor = make_predictor();
  LingXi lx(fast_config(), lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  for (int i = 0; i < 10; ++i) lx.on_segment(make_segment(2000.0, 0.0));
  const auto [mean, sd] = lx.bandwidth_estimate();
  EXPECT_NEAR(mean, 2000.0, 1e-9);
  EXPECT_NEAR(sd, 0.0, 1e-9);
}

TEST(LingXi, SnapshotRestoreRoundTrip) {
  const auto lx_predictor = make_predictor();
  LingXi lx(fast_config(), lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  for (int i = 0; i < 4; ++i) lx.on_segment(make_segment(800.0, 2.0));
  lx.end_session(true);
  abr::Hyb hyb;
  Rng rng(7);
  lx.maybe_optimize(hyb, 2.0, rng);
  const logstore::UserState snap = lx.snapshot();
  EXPECT_TRUE(snap.has_params);
  EXPECT_EQ(snap.engagement.total_stall_events, 4u);
  EXPECT_EQ(snap.engagement.total_stall_exits, 1u);

  const auto restored_predictor = make_predictor();

  LingXi restored(fast_config(), restored_predictor, trace::BitrateLadder::default_ladder());
  restored.restore(snap);
  EXPECT_DOUBLE_EQ(restored.current_params().hyb_beta, lx.current_params().hyb_beta);
  EXPECT_EQ(restored.engagement().long_term(), snap.engagement);
}

TEST(LingXi, RestoreClampsOutOfBoxParams) {
  logstore::UserState snap;
  snap.has_params = true;
  snap.best_params.hyb_beta = 5.0;  // way outside the box
  const auto lx_predictor = make_predictor();
  LingXi lx(fast_config(), lx_predictor, trace::BitrateLadder::default_ladder());
  lx.restore(snap);
  EXPECT_LE(lx.current_params().hyb_beta, fast_config().space.beta_max);
}

TEST(LingXi, EndSessionWithoutStallExitKeepsCounters) {
  const auto lx_predictor = make_predictor();
  LingXi lx(fast_config(), lx_predictor, trace::BitrateLadder::default_ladder());
  lx.begin_session();
  lx.on_segment(make_segment(800.0, 1.0));
  lx.end_session(false);
  EXPECT_EQ(lx.engagement().long_term().total_stall_exits, 0u);
}

TEST(LingXi, StallSensitiveUserGetsLowerBeta) {
  // Train nothing; instead bias the OS model so exits are expensive, and
  // check that LingXi's chosen beta for a user with many recent stall-exits
  // is not higher than for a user with none. This is a weak behavioural
  // check of the Fig. 14 mechanism (full check lives in the benches).
  LingXiConfig cfg = fast_config();
  cfg.obo_rounds = 6;
  cfg.monte_carlo.samples = 8;

  auto run_user = [&](bool add_exit_history, std::uint64_t seed) {
    const auto lx_predictor = make_predictor(42);
    LingXi lx(cfg, lx_predictor, trace::BitrateLadder::default_ladder());
    lx.begin_session();
    for (int i = 0; i < 4; ++i) {
      lx.on_segment(make_segment(900.0, 2.0));
      if (add_exit_history) lx.end_session(true);
    }
    abr::Hyb hyb;
    Rng rng(seed);
    const auto r = lx.maybe_optimize(hyb, 1.0, rng);
    return r.has_value() ? r->hyb_beta : -1.0;
  };
  const double beta_sensitive = run_user(true, 11);
  const double beta_tolerant = run_user(false, 11);
  ASSERT_GE(beta_sensitive, 0.0);
  ASSERT_GE(beta_tolerant, 0.0);
  // Not a strict inequality in every seed, but both must be in the box.
  EXPECT_GE(beta_sensitive, cfg.space.beta_min);
  EXPECT_LE(beta_tolerant, cfg.space.beta_max);
}

}  // namespace
}  // namespace lingxi::core
