// Unit tests for lingxi_common: RNG, running stats, CRC32, Expected, JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/expected.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/running_stats.h"
#include "common/units.h"

namespace lingxi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.5), 0.0);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(37);
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

// -- stream save/restore (snapshot subsystem) --------------------------------

TEST(RngState, RoundTripMidStreamContinuesIdentically) {
  Rng rng(1234);
  for (int i = 0; i < 37; ++i) rng.next();  // advance to an arbitrary position
  const Rng::State checkpoint = rng.state();

  // Reference continuation from the live generator.
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(rng.next());

  Rng resumed(999);  // different seed: restore must fully overwrite
  resumed.restore(checkpoint);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(resumed.next(), expected[i]) << "draw " << i;
}

TEST(RngState, PreservesCachedBoxMullerNormal) {
  Rng rng(7);
  (void)rng.normal();  // leaves the second variate cached
  const Rng::State mid = rng.state();
  EXPECT_TRUE(mid.has_cached_normal);

  Rng resumed;
  resumed.restore(mid);
  // The very next normal must be the cached variate, then the streams stay
  // bit-identical through further distribution draws.
  EXPECT_EQ(rng.normal(), resumed.normal());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(rng.normal(3.0, 2.0), resumed.normal(3.0, 2.0));
    EXPECT_EQ(rng.uniform(), resumed.uniform());
  }
}

TEST(RngState, RoundTripAcrossForkBoundaries) {
  // fork() mixes the parent state AND advances it; a snapshot taken before a
  // fork must reproduce both the child stream and the parent continuation.
  Rng rng(88);
  for (int i = 0; i < 11; ++i) rng.next();
  const Rng::State before_fork = rng.state();

  Rng child = rng.fork();
  std::vector<std::uint64_t> child_draws, parent_draws;
  for (int i = 0; i < 16; ++i) child_draws.push_back(child.next());
  for (int i = 0; i < 16; ++i) parent_draws.push_back(rng.next());

  Rng resumed;
  resumed.restore(before_fork);
  Rng resumed_child = resumed.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(resumed_child.next(), child_draws[i]);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(resumed.next(), parent_draws[i]);

  // And the child's own state round-trips independently of the parent.
  const Rng::State child_mid = resumed_child.state();
  Rng resumed_grandchild;
  resumed_grandchild.restore(child_mid);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(resumed_grandchild.next(), resumed_child.next());
}

TEST(RngState, StateEqualityTracksPosition) {
  Rng a(5), b(5);
  EXPECT_EQ(a.state(), b.state());
  a.next();
  EXPECT_FALSE(a.state() == b.state());
  b.next();
  EXPECT_EQ(a.state(), b.state());
}

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(43);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i < 200 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStats, MergeBothEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeSingletons) {
  // Two one-sample accumulators combine into the exact two-sample stats.
  RunningStats a, b;
  a.add(2.0);
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);  // ((2-4)^2 + (6-4)^2) / (2-1)
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(RunningStats, MergeSingletonIntoEmpty) {
  RunningStats empty_acc, single;
  single.add(5.0);
  empty_acc.merge(single);
  EXPECT_EQ(empty_acc.count(), 1u);
  EXPECT_DOUBLE_EQ(empty_acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(empty_acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(empty_acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(empty_acc.max(), 5.0);
}

TEST(RunningStats, MergeAssociativity) {
  // (a + b) + c and a + (b + c) must agree with the sequential accumulation
  // of all samples — the property that lets per-shard timing stats reduce
  // in any tree shape.
  Rng rng(91);
  std::vector<double> xs(300);
  for (double& x : xs) x = rng.normal(-1.0, 4.0);

  RunningStats a, b, c, all;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 100 ? a : i < 180 ? b : c).add(xs[i]);
    all.add(xs[i]);
  }

  RunningStats left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  RunningStats bc = b;  // a + (b + c)
  bc.merge(c);
  RunningStats right = a;
  right.merge(bc);

  for (const RunningStats* m : {&left, &right}) {
    EXPECT_EQ(m->count(), all.count());
    EXPECT_NEAR(m->mean(), all.mean(), 1e-9);
    EXPECT_NEAR(m->variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(m->min(), all.min());
    EXPECT_DOUBLE_EQ(m->max(), all.max());
  }
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-12);
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 test vector.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, std::strlen(s)), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32("", 0), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const char* s = "the quick brown fox jumps over the lazy dog";
  const std::size_t n = std::strlen(s);
  const std::uint32_t whole = crc32(s, n);
  std::uint32_t inc = 0;
  inc = crc32_update(inc, s, 10);
  inc = crc32_update(inc, s + 10, n - 10);
  EXPECT_EQ(inc, whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  unsigned char data[32];
  for (int i = 0; i < 32; ++i) data[i] = static_cast<unsigned char>(i * 7);
  const std::uint32_t before = crc32(data, sizeof(data));
  data[13] ^= 0x08;
  EXPECT_NE(crc32(data, sizeof(data)), before);
}

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(Error::io("disk on fire"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, Error::Code::kIo);
  EXPECT_EQ(e.error().message, "disk on fire");
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  Status s(Error::corrupt("bad crc"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Error::Code::kCorrupt);
}

TEST(Units, SegmentBytesRoundTrip) {
  // 1 second at 4300 kbps = 537500 bytes.
  EXPECT_DOUBLE_EQ(units::segment_bytes(4300.0, 1.0), 537500.0);
  // Downloading it at 4300 kbps takes exactly 1 second.
  EXPECT_DOUBLE_EQ(units::download_time(537500.0, 4300.0), 1.0);
  EXPECT_DOUBLE_EQ(units::throughput_kbps(537500.0, 1.0), 4300.0);
}

TEST(Units, MbpsConversion) { EXPECT_DOUBLE_EQ(units::mbps(2.5), 2500.0); }

// ---------------------------------------------------------------------------
// JSON parser (consumed by the bench_compare perf gate).
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsAndStructure) {
  auto doc = parse_json(
      R"({"name": "fleet", "pass": true, "skip": false, "none": null,
          "rate": 1234.5, "neg": -3e2,
          "tags": ["a", "b"], "nested": {"speedup": 1.4}})");
  ASSERT_TRUE(static_cast<bool>(doc)) << doc.error().message;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("name")->as_string(), "fleet");
  EXPECT_TRUE(doc->find("pass")->as_bool());
  EXPECT_FALSE(doc->find("skip")->as_bool());
  EXPECT_TRUE(doc->find("none")->is_null());
  EXPECT_DOUBLE_EQ(doc->find("rate")->as_number(), 1234.5);
  EXPECT_DOUBLE_EQ(doc->find("neg")->as_number(), -300.0);
  const auto& tags = doc->find("tags")->as_array();
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[1].as_string(), "b");
  // Dotted-path lookup through nested objects.
  const JsonValue* speedup = doc->find_path("nested.speedup");
  ASSERT_NE(speedup, nullptr);
  EXPECT_DOUBLE_EQ(speedup->as_number(), 1.4);
  EXPECT_EQ(doc->find_path("nested.missing"), nullptr);
  EXPECT_EQ(doc->find("absent"), nullptr);
}

TEST(Json, StringEscapesRoundTrip) {
  auto doc = parse_json(R"(["a\"b", "tab\there", "\u0041\u00e9", "slash\/\\"])");
  ASSERT_TRUE(static_cast<bool>(doc));
  const auto& a = doc->as_array();
  EXPECT_EQ(a[0].as_string(), "a\"b");
  EXPECT_EQ(a[1].as_string(), "tab\there");
  EXPECT_EQ(a[2].as_string(), "A\xc3\xa9");  // \u escapes decode to UTF-8
  EXPECT_EQ(a[3].as_string(), "slash/\\");
}

TEST(Json, SeventeenDigitDoublesRoundTrip) {
  // The repo's writers emit %.17g; the parser must hand the bits back.
  const double v = 0.1234567890123456789;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.17g]", v);
  auto doc = parse_json(buf);
  ASSERT_TRUE(static_cast<bool>(doc));
  EXPECT_EQ(doc->as_array()[0].as_number(), v);  // bitwise, not approximate
}

TEST(Json, MalformedInputIsParseErrorNotUb) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
                          "\"unterminated", "{\"a\":1} trailing", "1.2.3",
                          "[\"bad\\x\"]"}) {
    auto doc = parse_json(bad);
    EXPECT_FALSE(static_cast<bool>(doc)) << "input '" << bad << "' should not parse";
    if (!doc) {
      EXPECT_EQ(doc.error().code, Error::Code::kParse) << bad;
    }
  }
}

TEST(Json, DepthLimitStopsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  auto doc = parse_json(deep);
  ASSERT_FALSE(static_cast<bool>(doc));
  EXPECT_EQ(doc.error().code, Error::Code::kParse);
}

TEST(Json, FileRoundTripAndMissingFile) {
  const std::string path = "json_test_doc.json";
  {
    std::ofstream os(path);
    os << "{\"x\": 42}\n";
  }
  auto doc = parse_json_file(path);
  ASSERT_TRUE(static_cast<bool>(doc));
  EXPECT_DOUBLE_EQ(doc->find("x")->as_number(), 42.0);
  std::remove(path.c_str());
  auto missing = parse_json_file("json_test_no_such_file.json");
  ASSERT_FALSE(static_cast<bool>(missing));
  EXPECT_EQ(missing.error().code, Error::Code::kIo);
}

}  // namespace
}  // namespace lingxi
