// Unit tests for lingxi_stats: descriptive stats, special functions,
// hypothesis tests, correlation, regression, ECDF, DiD.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/did.h"
#include "stats/ecdf.h"
#include "stats/regression.h"
#include "stats/special.h"
#include "stats/ttest.h"

namespace lingxi::stats {
namespace {

TEST(Descriptive, MeanAndVariance) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(min(xs), 2.0);
  EXPECT_DOUBLE_EQ(max(xs), 9.0);
  EXPECT_DOUBLE_EQ(sum(xs), 40.0);
}

TEST(Descriptive, EmptyIsZero) {
  std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(stderr_mean(xs), 0.0);
}

TEST(Descriptive, QuantileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Descriptive, QuantileUnsortedInput) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Descriptive, NormalizeByMean) {
  std::vector<double> xs{2.0, 4.0, 6.0};
  const auto n = normalize_by_mean(xs);
  EXPECT_DOUBLE_EQ(n[0], 0.5);
  EXPECT_DOUBLE_EQ(n[1], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 1.5);
}

TEST(Special, LogGammaKnownValues) {
  // lgamma(5) = log(4!) = log(24)
  EXPECT_NEAR(lgamma_fn(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(lgamma_fn(1.0), 0.0, 1e-10);
  EXPECT_NEAR(lgamma_fn(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(Special, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Special, IncompleteBetaBoundsAndSymmetry) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a)
  EXPECT_NEAR(incomplete_beta(2.5, 1.5, 0.3), 1.0 - incomplete_beta(1.5, 2.5, 0.7), 1e-10);
  // I_0.5(a,a) = 0.5
  EXPECT_NEAR(incomplete_beta(3.0, 3.0, 0.5), 0.5, 1e-10);
}

TEST(Special, StudentTCdfAgainstKnownValues) {
  // t=0 is always 0.5.
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  // df=1 (Cauchy): CDF(1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
  // Large df approaches the normal.
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
  // Symmetry.
  EXPECT_NEAR(student_t_cdf(-2.0, 7.0), 1.0 - student_t_cdf(2.0, 7.0), 1e-12);
}

TEST(TTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto r = welch_t_test(a, a);
  EXPECT_NEAR(r.t, 0.0, 1e-12);
  EXPECT_NEAR(r.p_two_sided, 1.0, 1e-9);
}

TEST(TTest, ClearlySeparatedSamplesSignificant) {
  std::vector<double> a{10.1, 10.2, 9.9, 10.0, 10.1};
  std::vector<double> b{1.1, 0.9, 1.0, 1.2, 0.8};
  const auto r = welch_t_test(a, b);
  EXPECT_GT(r.t, 10.0);
  EXPECT_LT(r.p_two_sided, 1e-6);
  EXPECT_NEAR(r.mean_diff, 9.06, 1e-9);
}

TEST(TTest, KnownTValue) {
  // Hand-checked Welch example.
  std::vector<double> a{3.0, 4.0, 5.0, 6.0, 7.0};        // mean 5, var 2.5
  std::vector<double> b{1.0, 2.0, 3.0, 4.0, 5.0};        // mean 3, var 2.5
  const auto r = welch_t_test(a, b);
  // t = 2 / sqrt(2.5/5 + 2.5/5) = 2.
  EXPECT_NEAR(r.t, 2.0, 1e-12);
  EXPECT_NEAR(r.df, 8.0, 1e-9);
}

TEST(TTest, OneSample) {
  std::vector<double> xs{4.9, 5.1, 5.0, 5.2, 4.8};
  const auto r = one_sample_t_test(xs, 5.0);
  EXPECT_NEAR(r.mean_diff, 0.0, 1e-9);
  EXPECT_GT(r.p_two_sided, 0.9);
  const auto r2 = one_sample_t_test(xs, 3.0);
  EXPECT_LT(r2.p_two_sided, 1e-4);
}

TEST(TTest, ZeroVarianceHandled) {
  std::vector<double> a{2.0, 2.0, 2.0};
  std::vector<double> b{2.0, 2.0, 2.0};
  const auto r = welch_t_test(a, b);
  EXPECT_DOUBLE_EQ(r.t, 0.0);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Correlation, IndependentSeriesNearZero) {
  Rng rng(99);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Correlation, SpearmanMonotonicNonlinear) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y{1.0, 8.0, 27.0, 64.0, 125.0};  // monotone, nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, SpearmanHandlesTies) {
  std::vector<double> x{1.0, 2.0, 2.0, 3.0};
  std::vector<double> y{1.0, 2.0, 2.0, 3.0};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Regression, ExactLine) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 21.0, 1e-12);
}

TEST(Regression, ConstantXFallsBack) {
  std::vector<double> x{2.0, 2.0, 2.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  const auto fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Regression, NoisyLineRecoversSlope) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double xi = rng.uniform(0.0, 10.0);
    x.push_back(xi);
    y.push_back(3.0 * xi - 2.0 + rng.normal(0.0, 0.5));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_NEAR(fit.intercept, -2.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.97);
}

TEST(Ecdf, StepValues) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Ecdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

TEST(Ecdf, InverseQuantile) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  const Ecdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 50.0);
}

TEST(Ecdf, UnsortedInputHandled) {
  std::vector<double> xs{3.0, 1.0, 2.0};
  const Ecdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf(1.5), 1.0 / 3.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.density(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Did, EffectIsPostMinusPreGap) {
  std::vector<double> pre{0.001, -0.002, 0.0005, 0.0015, -0.001};
  std::vector<double> post{0.0025, 0.0018, 0.0030, 0.0010, 0.0022};
  const auto r = difference_in_differences(pre, post);
  EXPECT_NEAR(r.pre_gap, mean(pre), 1e-12);
  EXPECT_NEAR(r.post_gap, mean(post), 1e-12);
  EXPECT_NEAR(r.effect, mean(post) - mean(pre), 1e-12);
  EXPECT_LT(r.p_two_sided, 0.05);  // clear shift
}

TEST(Did, NoEffectWhenGapsMatch) {
  std::vector<double> pre{0.01, 0.02, 0.015, 0.012};
  std::vector<double> post{0.013, 0.018, 0.016, 0.01};
  const auto r = difference_in_differences(pre, post);
  EXPECT_NEAR(r.effect, mean(post) - mean(pre), 1e-12);
  EXPECT_GT(r.p_two_sided, 0.4);
}

}  // namespace
}  // namespace lingxi::stats
