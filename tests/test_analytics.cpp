// Unit tests for lingxi_analytics: metric accumulation and the population
// experiment driver.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "abr/hyb.h"
#include "analytics/bench_gate.h"
#include "analytics/experiment.h"
#include "analytics/health_report.h"
#include "analytics/metrics.h"
#include "common/json.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"

namespace lingxi::analytics {
namespace {

sim::SessionResult make_session(double watch, double stall, double bitrate, bool exited,
                                std::size_t stall_events = 1) {
  sim::SessionResult s;
  s.watch_time = watch;
  s.total_stall = stall;
  s.mean_bitrate = bitrate;
  s.exited = exited;
  s.stall_events = stall_events;
  s.quality_switches = 2;
  return s;
}

TEST(MetricAccumulator, BasicAggregation) {
  MetricAccumulator m;
  m.add(make_session(10.0, 1.0, 1000.0, false));
  m.add(make_session(30.0, 3.0, 3000.0, true));
  EXPECT_DOUBLE_EQ(m.total_watch_time(), 40.0);
  EXPECT_DOUBLE_EQ(m.total_stall_time(), 4.0);
  // Time-weighted bitrate: (1000*10 + 3000*30)/40 = 2500.
  EXPECT_DOUBLE_EQ(m.mean_bitrate(), 2500.0);
  EXPECT_DOUBLE_EQ(m.completion_rate(), 0.5);
  EXPECT_EQ(m.sessions(), 2u);
  EXPECT_EQ(m.stall_events(), 2u);
  EXPECT_EQ(m.quality_switches(), 4u);
  EXPECT_DOUBLE_EQ(m.stall_per_10k(), 1000.0);
}

TEST(MetricAccumulator, EmptyIsZero) {
  MetricAccumulator m;
  EXPECT_DOUBLE_EQ(m.mean_bitrate(), 0.0);
  EXPECT_DOUBLE_EQ(m.completion_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.stall_per_10k(), 0.0);
}

TEST(MetricAccumulator, MergeMatchesSequential) {
  MetricAccumulator a, b, all;
  const auto s1 = make_session(10.0, 1.0, 1000.0, false);
  const auto s2 = make_session(20.0, 0.5, 2000.0, true);
  a.add(s1);
  b.add(s2);
  all.add(s1);
  all.add(s2);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_watch_time(), all.total_watch_time());
  EXPECT_DOUBLE_EQ(a.mean_bitrate(), all.mean_bitrate());
  EXPECT_EQ(a.sessions(), all.sessions());
}

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.users = 6;
  cfg.days = 4;
  cfg.sessions_per_user_day = 3;
  cfg.intervention_day = 2;
  cfg.video.mean_duration = 15.0;
  cfg.network.median_bandwidth = 2500.0;  // stall-prone world
  cfg.lingxi.obo_rounds = 2;
  cfg.lingxi.monte_carlo.samples = 3;
  cfg.lingxi.monte_carlo.sample_duration = 8.0;
  return cfg;
}

std::function<predictor::HybridExitPredictor()> predictor_factory() {
  // Shared across users, as in production (one global model).
  auto net_rng = std::make_shared<Rng>(123);
  return [net_rng]() {
    auto net = std::make_shared<predictor::StallExitNet>(*net_rng);
    auto os = std::make_shared<predictor::OverallStatsModel>();
    return predictor::HybridExitPredictor(net, os);
  };
}

TEST(PopulationExperiment, ShapesAreConsistent) {
  const auto cfg = small_config();
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto control = exp.run(false, 7);
  EXPECT_EQ(control.daily.size(), cfg.days);
  EXPECT_EQ(control.user_days.size(), cfg.users * cfg.days);
  for (const auto& day : control.daily) {
    EXPECT_EQ(day.sessions(), cfg.users * cfg.sessions_per_user_day);
    EXPECT_GT(day.total_watch_time(), 0.0);
  }
}

TEST(PopulationExperiment, ControlParamsStayAtDefault) {
  const auto cfg = small_config();
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto control = exp.run(false, 7);
  for (const auto& rec : control.user_days) {
    EXPECT_DOUBLE_EQ(rec.mean_beta, cfg.lingxi.default_params.hyb_beta);
  }
}

TEST(PopulationExperiment, TreatmentAdjustsParamsOnlyAfterIntervention) {
  const auto cfg = small_config();
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto treatment = exp.run(true, 7);
  bool any_adjusted_post = false;
  for (const auto& rec : treatment.user_days) {
    if (rec.day < cfg.intervention_day) {
      EXPECT_DOUBLE_EQ(rec.mean_beta, cfg.lingxi.default_params.hyb_beta)
          << "user " << rec.user << " day " << rec.day;
    } else if (rec.mean_beta != cfg.lingxi.default_params.hyb_beta) {
      any_adjusted_post = true;
    }
  }
  EXPECT_TRUE(any_adjusted_post);
}

TEST(PopulationExperiment, SameSeedIsReproducible) {
  const auto cfg = small_config();
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto a = exp.run(false, 42);
  const auto b = exp.run(false, 42);
  for (std::size_t d = 0; d < cfg.days; ++d) {
    EXPECT_DOUBLE_EQ(a.daily[d].total_watch_time(), b.daily[d].total_watch_time());
    EXPECT_DOUBLE_EQ(a.daily[d].total_stall_time(), b.daily[d].total_stall_time());
  }
}

TEST(PopulationExperiment, StallEventRecordingOptIn) {
  auto cfg = small_config();
  cfg.record_stall_events = true;
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto treatment = exp.run(true, 9);
  // Low-bandwidth world: some stall events must have been recorded.
  EXPECT_FALSE(treatment.stall_events.empty());
  for (const auto& ev : treatment.stall_events) {
    EXPECT_GT(ev.stall_time, 0.0);
    EXPECT_GE(ev.param_beta_after, cfg.lingxi.space.beta_min);
    EXPECT_LE(ev.param_beta_after, cfg.lingxi.space.beta_max);
  }
}

// A pure predictor factory (fresh rng per call -> identical weights every
// call) — required by the FleetRunner factory contract, and doubly so for
// checkpoint/resume where the invocation count depends on the leg split.
std::function<predictor::HybridExitPredictor()> pure_predictor_factory() {
  return [] {
    Rng net_rng(123);
    auto net = std::make_shared<predictor::StallExitNet>(net_rng);
    auto os = std::make_shared<predictor::OverallStatsModel>();
    return predictor::HybridExitPredictor(net, os);
  };
}

void expect_results_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.daily.size(), b.daily.size());
  for (std::size_t d = 0; d < a.daily.size(); ++d) {
    EXPECT_EQ(a.daily[d].sessions(), b.daily[d].sessions()) << "day " << d;
    EXPECT_EQ(a.daily[d].total_watch_time(), b.daily[d].total_watch_time()) << "day " << d;
    EXPECT_EQ(a.daily[d].total_stall_time(), b.daily[d].total_stall_time()) << "day " << d;
    EXPECT_EQ(a.daily[d].mean_bitrate(), b.daily[d].mean_bitrate()) << "day " << d;
  }
  ASSERT_EQ(a.user_days.size(), b.user_days.size());
  for (std::size_t i = 0; i < a.user_days.size(); ++i) {
    const auto& x = a.user_days[i];
    const auto& y = b.user_days[i];
    EXPECT_EQ(x.user, y.user) << "record " << i;
    EXPECT_EQ(x.day, y.day) << "record " << i;
    EXPECT_EQ(x.mean_beta, y.mean_beta) << "record " << i;
    EXPECT_EQ(x.mean_stall_penalty, y.mean_stall_penalty) << "record " << i;
    EXPECT_EQ(x.stall_events, y.stall_events) << "record " << i;
    EXPECT_EQ(x.stall_exits, y.stall_exits) << "record " << i;
    EXPECT_EQ(x.stall_time, y.stall_time) << "record " << i;
    EXPECT_EQ(x.watch_time, y.watch_time) << "record " << i;
    EXPECT_EQ(x.mean_bandwidth, y.mean_bandwidth) << "record " << i;
  }
  ASSERT_EQ(a.stall_events.size(), b.stall_events.size());
  for (std::size_t i = 0; i < a.stall_events.size(); ++i) {
    const auto& x = a.stall_events[i];
    const auto& y = b.stall_events[i];
    EXPECT_EQ(x.user, y.user) << "event " << i;
    EXPECT_EQ(x.event_index, y.event_index) << "event " << i;
    EXPECT_EQ(x.stall_time, y.stall_time) << "event " << i;
    EXPECT_EQ(x.param_beta_after, y.param_beta_after) << "event " << i;
    EXPECT_EQ(x.exited, y.exited) << "event " << i;
  }
}

TEST(PopulationExperiment, BatchingStatsMergeAcrossLegs) {
  // Incremental legs must MERGE the predictor-pool counters, not drop them:
  // a run_to_day+resume split reports its own legs' flushes, and the query
  // total — one count per parked query, schedule-independent — matches the
  // unsplit run exactly. (Flush/wave counts may legitimately differ across
  // the split: a leg boundary synchronizes the shard's tasks, changing wave
  // composition but never which queries run.)
  auto cfg = small_config();
  cfg.predictor_batch = 4;  // pooled flushes need a batch
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           pure_predictor_factory());
  // Seed chosen so both legs of the day-3 split run optimizations that park
  // predictor queries (most seeds only trigger in the prefix leg at this
  // tiny population size).
  const std::uint64_t seed = 15;
  const auto full = exp.run(true, seed);
  ASSERT_GT(full.batching.pool_flushes, 0u);
  ASSERT_GT(full.batching.pool_queries, 0u);

  // Split after the intervention day so the prefix leg has pool activity.
  const auto checkpoint = exp.run_to_day(true, seed, 3);
  EXPECT_GT(checkpoint.prefix.batching.pool_flushes, 0u);
  const auto resumed = exp.resume(true, seed, checkpoint);
  EXPECT_EQ(resumed.batching.pool_queries, full.batching.pool_queries);
  EXPECT_GT(resumed.batching.pool_flushes, checkpoint.prefix.batching.pool_flushes);
  EXPECT_GE(resumed.batching.pool_max_flush,
            checkpoint.prefix.batching.pool_max_flush);
  EXPECT_GE(resumed.batching.pool_net_batches, resumed.batching.pool_flushes);
  EXPECT_GT(resumed.batching.mean_flush_occupancy(), 0.0);
}

TEST(PopulationExperiment, IncrementalDayResumeMatchesFullRun) {
  // The snapshot contract at the analytics layer: checkpoint an arm at day
  // D, resume, and every record — float sums included — is identical to the
  // unsplit run (no accumulation crosses a day boundary).
  auto cfg = small_config();
  cfg.record_stall_events = true;
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           pure_predictor_factory());
  for (const bool treatment : {false, true}) {
    const auto full = exp.run(treatment, 11);
    const auto checkpoint = exp.run_to_day(treatment, 11, 2);
    EXPECT_EQ(checkpoint.fleet.next_day, 2u);
    EXPECT_EQ(checkpoint.prefix.user_days.size(), cfg.users * 2);
    const auto resumed = exp.resume(treatment, 11, checkpoint);
    expect_results_identical(resumed, full);
  }
}

TEST(PopulationExperiment, ResumeExtendsHorizonWithoutResimulating) {
  // Intervention-day continuation: extend a finished D-day A/B fleet by K
  // days from its checkpoint; the spliced result must equal a from-scratch
  // experiment over D+K days.
  const auto cfg = small_config();  // 4 days, intervention at 2
  auto extended_cfg = cfg;
  extended_cfg.days = 6;
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           pure_predictor_factory());
  PopulationExperiment extended_exp(extended_cfg,
                                    [] { return std::make_unique<abr::Hyb>(); },
                                    pure_predictor_factory());
  const auto full6 = extended_exp.run(true, 13);
  const auto checkpoint = exp.run_to_day(true, 13, 3);
  const auto extended = exp.resume(true, 13, checkpoint, 6);
  expect_results_identical(extended, full6);
}

TEST(RelativeDailyGap, ComputesPerDayRelativeDifference) {
  ExperimentResult control, treatment;
  control.daily.resize(2);
  treatment.daily.resize(2);
  control.daily[0].add(make_session(10.0, 1.0, 1000.0, false));
  treatment.daily[0].add(make_session(11.0, 1.0, 1000.0, false));
  control.daily[1].add(make_session(20.0, 1.0, 1000.0, false));
  treatment.daily[1].add(make_session(19.0, 1.0, 1000.0, false));
  const auto gaps =
      relative_daily_gap(treatment, control, &MetricAccumulator::total_watch_time);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_NEAR(gaps[0], 0.1, 1e-9);
  EXPECT_NEAR(gaps[1], -0.05, 1e-9);
}

// ---------------------------------------------------------------------------
// Health report: timeline summarization and A/B comparison.

TEST(HealthReport, SummarizesTimelineSeriesDigestsAndAlerts) {
  const std::string path = ::testing::TempDir() + "/lingxi_health_report_timeline.bin";
  {
    obs::Registry reg;
    obs::TimelineWriter writer(path);
    static const obs::HistogramSpec spec({10.0, 20.0});
    reg.set("sim.fleet.sessions_total", 100.0);
    reg.set("sim.fleet.day", 1.0);
    reg.add("predictor.pool.queries", 4);
    reg.observe("snapshot.save.total_us", spec, 5.0);
    writer.append_day(1, reg.snapshot());
    reg.set("sim.fleet.sessions_total", 250.0);
    reg.set("sim.fleet.day", 2.0);
    reg.add("predictor.pool.queries", 6);
    reg.observe("snapshot.save.total_us", spec, 15.0);
    reg.observe("snapshot.save.total_us", spec, 15.0);
    writer.append_day(2, reg.snapshot());
    obs::HealthAlert alert;
    alert.day = 2;
    alert.rule = "sessions-ceiling";
    alert.metric = "sim.fleet.sessions_total";
    alert.observed = 250.0;
    alert.threshold = 200.0;
    alert.message = "gauge above ceiling";
    writer.append_alert(alert);
    ASSERT_TRUE(writer.close().ok());
  }

  const auto summary = summarize_timeline(path);
  ASSERT_TRUE(summary.has_value()) << summary.error().message;
  EXPECT_EQ(summary->day_records, 2u);
  EXPECT_EQ(summary->first_day, 1u);
  EXPECT_EQ(summary->last_day, 2u);

  const MetricDaySeries* sessions = summary->find("sim.fleet.sessions_total");
  ASSERT_NE(sessions, nullptr);
  EXPECT_TRUE(sessions->deterministic);
  EXPECT_EQ(sessions->kind, obs::MetricKind::kGauge);
  ASSERT_EQ(sessions->values.size(), 2u);
  EXPECT_DOUBLE_EQ(sessions->first, 100.0);
  EXPECT_DOUBLE_EQ(sessions->last, 250.0);
  EXPECT_DOUBLE_EQ(sessions->min, 100.0);
  EXPECT_DOUBLE_EQ(sessions->max, 250.0);
  EXPECT_DOUBLE_EQ(sessions->mean, 175.0);

  // Counters are process-lifetime, not splice-invariant, so they live in the
  // wall-clock section; the series still tracks their cumulative trajectory.
  const MetricDaySeries* queries = summary->find("predictor.pool.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_FALSE(queries->deterministic);
  EXPECT_EQ(queries->kind, obs::MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(queries->first, 4.0);
  EXPECT_DOUBLE_EQ(queries->last, 10.0);

  // Digest is over the FINAL day's histogram: {5, 15, 15} in buckets
  // (<=10, <=20] -> p50 interpolates to 12.5, p95/p99 clamp to observed max.
  ASSERT_EQ(summary->histograms.size(), 1u);
  const HistogramDigest& d = summary->histograms[0];
  EXPECT_EQ(d.name, "snapshot.save.total_us");
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.sum, 35.0);
  EXPECT_DOUBLE_EQ(d.p50, 12.5);
  EXPECT_DOUBLE_EQ(d.p95, 15.0);
  EXPECT_DOUBLE_EQ(d.p99, 15.0);

  ASSERT_EQ(summary->alerts.size(), 1u);
  EXPECT_EQ(summary->alerts[0].day, 2u);
  EXPECT_EQ(summary->alerts[0].rule, "sessions-ceiling");
  EXPECT_DOUBLE_EQ(summary->alerts[0].observed, 250.0);

  // The JSON report must itself parse under the repo's JSON reader.
  std::ostringstream os;
  summary->write_json(os);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value()) << doc.error().message;
  const JsonValue* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "lingxi.obs.health_report/v1");
  const JsonValue* days = doc->find("day_records");
  ASSERT_NE(days, nullptr);
  EXPECT_DOUBLE_EQ(days->as_number(), 2.0);

  std::remove(path.c_str());
}

TEST(HealthReport, CorruptOrMissingTimelineIsErrorNotUb) {
  const std::string garbage = ::testing::TempDir() + "/lingxi_health_report_garbage.bin";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a timeline";
  }
  const auto corrupt = summarize_timeline(garbage);
  ASSERT_FALSE(corrupt.has_value());
  EXPECT_EQ(corrupt.error().code, Error::Code::kCorrupt);
  std::remove(garbage.c_str());

  const auto missing = summarize_timeline(::testing::TempDir() + "/no_such_timeline.bin");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, Error::Code::kIo);
}

TEST(HealthReport, CompareTimelinesFlagsMovedMetrics) {
  const auto series = [](const char* name, double last) {
    MetricDaySeries s;
    s.name = name;
    s.last = last;
    return s;
  };
  TimelineSummary base, cand;
  base.series = {series("a.shared", 100.0), series("b.gone", 1.0), series("c.zero", 0.0),
                 series("d.steady", 50.0)};
  cand.series = {series("a.shared", 120.0), series("c.zero", 2.0), series("d.steady", 50.0),
                 series("e.new", 5.0)};
  base.alerts.emplace_back();

  const TimelineComparison cmp = compare_timelines(base, cand, 0.1);
  // Sorted by |rel_change| descending: the zero-base sentinel outranks +20%.
  ASSERT_EQ(cmp.flagged.size(), 2u);
  EXPECT_EQ(cmp.flagged[0].name, "c.zero");
  EXPECT_GT(cmp.flagged[0].rel_change, 1e8);
  EXPECT_EQ(cmp.flagged[1].name, "a.shared");
  EXPECT_NEAR(cmp.flagged[1].rel_change, 0.2, 1e-12);
  ASSERT_EQ(cmp.base_only.size(), 1u);
  EXPECT_EQ(cmp.base_only[0], "b.gone");
  ASSERT_EQ(cmp.candidate_only.size(), 1u);
  EXPECT_EQ(cmp.candidate_only[0], "e.new");
  EXPECT_EQ(cmp.base_alerts, 1u);
  EXPECT_EQ(cmp.candidate_alerts, 0u);
  EXPECT_FALSE(cmp.clean());

  const TimelineComparison self = compare_timelines(base, base, 0.1);
  EXPECT_TRUE(self.clean());
}

// ---------------------------------------------------------------------------
// Bench gate: baseline spec parsing and regression evaluation.

TEST(BenchGate, ParsesBaselineSpec) {
  const auto doc = parse_json(R"({
    "schema": "lingxi.bench.baseline/v1",
    "max_regression": 0.2,
    "checks": [
      {"name": "batched-speedup", "input": "scaling",
       "metric": "batched.sessions_per_sec", "divide_by": "scalar.sessions_per_sec",
       "baseline": 2.0},
      {"name": "p99-latency", "input": "scaling", "metric": "p99_ms",
       "baseline": 10.0, "higher_is_better": false, "max_regression": 0.5}
    ]
  })");
  ASSERT_TRUE(doc.has_value()) << doc.error().message;
  const auto spec = BaselineSpec::parse(*doc);
  ASSERT_TRUE(spec.has_value()) << spec.error().message;
  EXPECT_DOUBLE_EQ(spec->default_max_regression, 0.2);
  ASSERT_EQ(spec->checks.size(), 2u);
  EXPECT_EQ(spec->checks[0].name, "batched-speedup");
  EXPECT_EQ(spec->checks[0].divide_by, "scalar.sessions_per_sec");
  EXPECT_TRUE(spec->checks[0].higher_is_better);
  EXPECT_LT(spec->checks[0].max_regression, 0.0);  // inherits the default
  EXPECT_FALSE(spec->checks[1].higher_is_better);
  EXPECT_DOUBLE_EQ(spec->checks[1].max_regression, 0.5);
}

TEST(BenchGate, RejectsMalformedBaselineSpec) {
  const char* bad_docs[] = {
      R"({"schema": "lingxi.bench.baseline/v2", "checks": []})",
      R"({"checks": [{"name": "x", "input": "i", "metric": "m", "baseline": 1}]})",
      R"({"schema": "lingxi.bench.baseline/v1"})",
      R"({"schema": "lingxi.bench.baseline/v1", "checks": []})",
      R"({"schema": "lingxi.bench.baseline/v1",
          "checks": [{"name": "x", "input": "i", "metric": "m"}]})",
      R"({"schema": "lingxi.bench.baseline/v1", "max_regression": -0.1,
          "checks": [{"name": "x", "input": "i", "metric": "m", "baseline": 1}]})",
  };
  for (const char* text : bad_docs) {
    const auto doc = parse_json(text);
    ASSERT_TRUE(doc.has_value()) << text;
    const auto spec = BaselineSpec::parse(*doc);
    ASSERT_FALSE(spec.has_value()) << text;
    EXPECT_EQ(spec.error().code, Error::Code::kParse) << text;
  }
}

TEST(BenchGate, EvaluatesRatiosAndCatchesRegressions) {
  BaselineSpec spec;
  spec.default_max_regression = 0.2;
  BaselineCheck ratio;
  ratio.name = "batched-speedup";
  ratio.input = "scaling";
  ratio.metric = "batched.sessions_per_sec";
  ratio.divide_by = "scalar.sessions_per_sec";
  ratio.baseline = 2.0;
  BaselineCheck latency;
  latency.name = "p99-latency";
  latency.input = "scaling";
  latency.metric = "p99_ms";
  latency.baseline = 10.0;
  latency.higher_is_better = false;
  latency.max_regression = 0.5;
  spec.checks = {ratio, latency};

  std::map<std::string, JsonValue> inputs;
  const auto healthy = parse_json(
      R"({"batched": {"sessions_per_sec": 300.0},
          "scalar": {"sessions_per_sec": 100.0}, "p99_ms": 12.0})");
  ASSERT_TRUE(healthy.has_value());
  inputs.emplace("scaling", *healthy);
  const GateReport good = evaluate_baseline(spec, inputs);
  ASSERT_EQ(good.results.size(), 2u);
  EXPECT_TRUE(good.ok());
  EXPECT_DOUBLE_EQ(good.results[0].observed, 3.0);  // 300/100 via divide_by
  EXPECT_NEAR(good.results[0].rel_change, 0.5, 1e-12);
  EXPECT_TRUE(good.results[1].ok);  // 12 <= 10 * (1 + 0.5)

  // Higher-is-better regression: ratio 1.5 < floor 2.0 * (1 - 0.2) = 1.6.
  inputs.clear();
  const auto regressed = parse_json(
      R"({"batched": {"sessions_per_sec": 150.0},
          "scalar": {"sessions_per_sec": 100.0}, "p99_ms": 16.0})");
  ASSERT_TRUE(regressed.has_value());
  inputs.emplace("scaling", *regressed);
  const GateReport bad = evaluate_baseline(spec, inputs);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.results[0].ok);
  EXPECT_FALSE(bad.results[1].ok);  // 16 > ceiling 15

  // Missing input label and missing metric path fail the check, not the
  // process.
  inputs.clear();
  const auto sparse = parse_json(R"({"scalar": {"sessions_per_sec": 100.0}})");
  ASSERT_TRUE(sparse.has_value());
  inputs.emplace("other-label", *sparse);
  const GateReport missing_input = evaluate_baseline(spec, inputs);
  EXPECT_FALSE(missing_input.ok());
  EXPECT_NE(missing_input.results[0].detail.find("no --input"), std::string::npos);

  inputs.clear();
  inputs.emplace("scaling", *sparse);
  const GateReport missing_metric = evaluate_baseline(spec, inputs);
  EXPECT_FALSE(missing_metric.ok());
  EXPECT_NE(missing_metric.results[0].detail.find("missing or non-numeric"),
            std::string::npos);
}

}  // namespace
}  // namespace lingxi::analytics
