// Unit tests for lingxi_analytics: metric accumulation and the population
// experiment driver.
#include <gtest/gtest.h>

#include <memory>

#include "abr/hyb.h"
#include "analytics/experiment.h"
#include "analytics/metrics.h"
#include "common/rng.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"

namespace lingxi::analytics {
namespace {

sim::SessionResult make_session(double watch, double stall, double bitrate, bool exited,
                                std::size_t stall_events = 1) {
  sim::SessionResult s;
  s.watch_time = watch;
  s.total_stall = stall;
  s.mean_bitrate = bitrate;
  s.exited = exited;
  s.stall_events = stall_events;
  s.quality_switches = 2;
  return s;
}

TEST(MetricAccumulator, BasicAggregation) {
  MetricAccumulator m;
  m.add(make_session(10.0, 1.0, 1000.0, false));
  m.add(make_session(30.0, 3.0, 3000.0, true));
  EXPECT_DOUBLE_EQ(m.total_watch_time(), 40.0);
  EXPECT_DOUBLE_EQ(m.total_stall_time(), 4.0);
  // Time-weighted bitrate: (1000*10 + 3000*30)/40 = 2500.
  EXPECT_DOUBLE_EQ(m.mean_bitrate(), 2500.0);
  EXPECT_DOUBLE_EQ(m.completion_rate(), 0.5);
  EXPECT_EQ(m.sessions(), 2u);
  EXPECT_EQ(m.stall_events(), 2u);
  EXPECT_EQ(m.quality_switches(), 4u);
  EXPECT_DOUBLE_EQ(m.stall_per_10k(), 1000.0);
}

TEST(MetricAccumulator, EmptyIsZero) {
  MetricAccumulator m;
  EXPECT_DOUBLE_EQ(m.mean_bitrate(), 0.0);
  EXPECT_DOUBLE_EQ(m.completion_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.stall_per_10k(), 0.0);
}

TEST(MetricAccumulator, MergeMatchesSequential) {
  MetricAccumulator a, b, all;
  const auto s1 = make_session(10.0, 1.0, 1000.0, false);
  const auto s2 = make_session(20.0, 0.5, 2000.0, true);
  a.add(s1);
  b.add(s2);
  all.add(s1);
  all.add(s2);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_watch_time(), all.total_watch_time());
  EXPECT_DOUBLE_EQ(a.mean_bitrate(), all.mean_bitrate());
  EXPECT_EQ(a.sessions(), all.sessions());
}

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.users = 6;
  cfg.days = 4;
  cfg.sessions_per_user_day = 3;
  cfg.intervention_day = 2;
  cfg.video.mean_duration = 15.0;
  cfg.network.median_bandwidth = 2500.0;  // stall-prone world
  cfg.lingxi.obo_rounds = 2;
  cfg.lingxi.monte_carlo.samples = 3;
  cfg.lingxi.monte_carlo.sample_duration = 8.0;
  return cfg;
}

std::function<predictor::HybridExitPredictor()> predictor_factory() {
  // Shared across users, as in production (one global model).
  auto net_rng = std::make_shared<Rng>(123);
  return [net_rng]() {
    auto net = std::make_shared<predictor::StallExitNet>(*net_rng);
    auto os = std::make_shared<predictor::OverallStatsModel>();
    return predictor::HybridExitPredictor(net, os);
  };
}

TEST(PopulationExperiment, ShapesAreConsistent) {
  const auto cfg = small_config();
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto control = exp.run(false, 7);
  EXPECT_EQ(control.daily.size(), cfg.days);
  EXPECT_EQ(control.user_days.size(), cfg.users * cfg.days);
  for (const auto& day : control.daily) {
    EXPECT_EQ(day.sessions(), cfg.users * cfg.sessions_per_user_day);
    EXPECT_GT(day.total_watch_time(), 0.0);
  }
}

TEST(PopulationExperiment, ControlParamsStayAtDefault) {
  const auto cfg = small_config();
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto control = exp.run(false, 7);
  for (const auto& rec : control.user_days) {
    EXPECT_DOUBLE_EQ(rec.mean_beta, cfg.lingxi.default_params.hyb_beta);
  }
}

TEST(PopulationExperiment, TreatmentAdjustsParamsOnlyAfterIntervention) {
  const auto cfg = small_config();
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto treatment = exp.run(true, 7);
  bool any_adjusted_post = false;
  for (const auto& rec : treatment.user_days) {
    if (rec.day < cfg.intervention_day) {
      EXPECT_DOUBLE_EQ(rec.mean_beta, cfg.lingxi.default_params.hyb_beta)
          << "user " << rec.user << " day " << rec.day;
    } else if (rec.mean_beta != cfg.lingxi.default_params.hyb_beta) {
      any_adjusted_post = true;
    }
  }
  EXPECT_TRUE(any_adjusted_post);
}

TEST(PopulationExperiment, SameSeedIsReproducible) {
  const auto cfg = small_config();
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto a = exp.run(false, 42);
  const auto b = exp.run(false, 42);
  for (std::size_t d = 0; d < cfg.days; ++d) {
    EXPECT_DOUBLE_EQ(a.daily[d].total_watch_time(), b.daily[d].total_watch_time());
    EXPECT_DOUBLE_EQ(a.daily[d].total_stall_time(), b.daily[d].total_stall_time());
  }
}

TEST(PopulationExperiment, StallEventRecordingOptIn) {
  auto cfg = small_config();
  cfg.record_stall_events = true;
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           predictor_factory());
  const auto treatment = exp.run(true, 9);
  // Low-bandwidth world: some stall events must have been recorded.
  EXPECT_FALSE(treatment.stall_events.empty());
  for (const auto& ev : treatment.stall_events) {
    EXPECT_GT(ev.stall_time, 0.0);
    EXPECT_GE(ev.param_beta_after, cfg.lingxi.space.beta_min);
    EXPECT_LE(ev.param_beta_after, cfg.lingxi.space.beta_max);
  }
}

// A pure predictor factory (fresh rng per call -> identical weights every
// call) — required by the FleetRunner factory contract, and doubly so for
// checkpoint/resume where the invocation count depends on the leg split.
std::function<predictor::HybridExitPredictor()> pure_predictor_factory() {
  return [] {
    Rng net_rng(123);
    auto net = std::make_shared<predictor::StallExitNet>(net_rng);
    auto os = std::make_shared<predictor::OverallStatsModel>();
    return predictor::HybridExitPredictor(net, os);
  };
}

void expect_results_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.daily.size(), b.daily.size());
  for (std::size_t d = 0; d < a.daily.size(); ++d) {
    EXPECT_EQ(a.daily[d].sessions(), b.daily[d].sessions()) << "day " << d;
    EXPECT_EQ(a.daily[d].total_watch_time(), b.daily[d].total_watch_time()) << "day " << d;
    EXPECT_EQ(a.daily[d].total_stall_time(), b.daily[d].total_stall_time()) << "day " << d;
    EXPECT_EQ(a.daily[d].mean_bitrate(), b.daily[d].mean_bitrate()) << "day " << d;
  }
  ASSERT_EQ(a.user_days.size(), b.user_days.size());
  for (std::size_t i = 0; i < a.user_days.size(); ++i) {
    const auto& x = a.user_days[i];
    const auto& y = b.user_days[i];
    EXPECT_EQ(x.user, y.user) << "record " << i;
    EXPECT_EQ(x.day, y.day) << "record " << i;
    EXPECT_EQ(x.mean_beta, y.mean_beta) << "record " << i;
    EXPECT_EQ(x.mean_stall_penalty, y.mean_stall_penalty) << "record " << i;
    EXPECT_EQ(x.stall_events, y.stall_events) << "record " << i;
    EXPECT_EQ(x.stall_exits, y.stall_exits) << "record " << i;
    EXPECT_EQ(x.stall_time, y.stall_time) << "record " << i;
    EXPECT_EQ(x.watch_time, y.watch_time) << "record " << i;
    EXPECT_EQ(x.mean_bandwidth, y.mean_bandwidth) << "record " << i;
  }
  ASSERT_EQ(a.stall_events.size(), b.stall_events.size());
  for (std::size_t i = 0; i < a.stall_events.size(); ++i) {
    const auto& x = a.stall_events[i];
    const auto& y = b.stall_events[i];
    EXPECT_EQ(x.user, y.user) << "event " << i;
    EXPECT_EQ(x.event_index, y.event_index) << "event " << i;
    EXPECT_EQ(x.stall_time, y.stall_time) << "event " << i;
    EXPECT_EQ(x.param_beta_after, y.param_beta_after) << "event " << i;
    EXPECT_EQ(x.exited, y.exited) << "event " << i;
  }
}

TEST(PopulationExperiment, BatchingStatsMergeAcrossLegs) {
  // Incremental legs must MERGE the predictor-pool counters, not drop them:
  // a run_to_day+resume split reports its own legs' flushes, and the query
  // total — one count per parked query, schedule-independent — matches the
  // unsplit run exactly. (Flush/wave counts may legitimately differ across
  // the split: a leg boundary synchronizes the shard's tasks, changing wave
  // composition but never which queries run.)
  auto cfg = small_config();
  cfg.predictor_batch = 4;  // pooled flushes need a batch
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           pure_predictor_factory());
  // Seed chosen so both legs of the day-3 split run optimizations that park
  // predictor queries (most seeds only trigger in the prefix leg at this
  // tiny population size).
  const std::uint64_t seed = 15;
  const auto full = exp.run(true, seed);
  ASSERT_GT(full.batching.pool_flushes, 0u);
  ASSERT_GT(full.batching.pool_queries, 0u);

  // Split after the intervention day so the prefix leg has pool activity.
  const auto checkpoint = exp.run_to_day(true, seed, 3);
  EXPECT_GT(checkpoint.prefix.batching.pool_flushes, 0u);
  const auto resumed = exp.resume(true, seed, checkpoint);
  EXPECT_EQ(resumed.batching.pool_queries, full.batching.pool_queries);
  EXPECT_GT(resumed.batching.pool_flushes, checkpoint.prefix.batching.pool_flushes);
  EXPECT_GE(resumed.batching.pool_max_flush,
            checkpoint.prefix.batching.pool_max_flush);
  EXPECT_GE(resumed.batching.pool_net_batches, resumed.batching.pool_flushes);
  EXPECT_GT(resumed.batching.mean_flush_occupancy(), 0.0);
}

TEST(PopulationExperiment, IncrementalDayResumeMatchesFullRun) {
  // The snapshot contract at the analytics layer: checkpoint an arm at day
  // D, resume, and every record — float sums included — is identical to the
  // unsplit run (no accumulation crosses a day boundary).
  auto cfg = small_config();
  cfg.record_stall_events = true;
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           pure_predictor_factory());
  for (const bool treatment : {false, true}) {
    const auto full = exp.run(treatment, 11);
    const auto checkpoint = exp.run_to_day(treatment, 11, 2);
    EXPECT_EQ(checkpoint.fleet.next_day, 2u);
    EXPECT_EQ(checkpoint.prefix.user_days.size(), cfg.users * 2);
    const auto resumed = exp.resume(treatment, 11, checkpoint);
    expect_results_identical(resumed, full);
  }
}

TEST(PopulationExperiment, ResumeExtendsHorizonWithoutResimulating) {
  // Intervention-day continuation: extend a finished D-day A/B fleet by K
  // days from its checkpoint; the spliced result must equal a from-scratch
  // experiment over D+K days.
  const auto cfg = small_config();  // 4 days, intervention at 2
  auto extended_cfg = cfg;
  extended_cfg.days = 6;
  PopulationExperiment exp(cfg, [] { return std::make_unique<abr::Hyb>(); },
                           pure_predictor_factory());
  PopulationExperiment extended_exp(extended_cfg,
                                    [] { return std::make_unique<abr::Hyb>(); },
                                    pure_predictor_factory());
  const auto full6 = extended_exp.run(true, 13);
  const auto checkpoint = exp.run_to_day(true, 13, 3);
  const auto extended = exp.resume(true, 13, checkpoint, 6);
  expect_results_identical(extended, full6);
}

TEST(RelativeDailyGap, ComputesPerDayRelativeDifference) {
  ExperimentResult control, treatment;
  control.daily.resize(2);
  treatment.daily.resize(2);
  control.daily[0].add(make_session(10.0, 1.0, 1000.0, false));
  treatment.daily[0].add(make_session(11.0, 1.0, 1000.0, false));
  control.daily[1].add(make_session(20.0, 1.0, 1000.0, false));
  treatment.daily[1].add(make_session(19.0, 1.0, 1000.0, false));
  const auto gaps =
      relative_daily_gap(treatment, control, &MetricAccumulator::total_watch_time);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_NEAR(gaps[0], 0.1, 1e-9);
  EXPECT_NEAR(gaps[1], -0.05, 1e-9);
}

}  // namespace
}  // namespace lingxi::analytics
