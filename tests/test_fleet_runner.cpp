// FleetRunner: thread-count-independent determinism, exact shard-merge
// algebra, and degenerate fleet shapes.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "abr/hyb.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"
#include "sim/fleet_runner.h"

namespace lingxi {
namespace {

sim::FleetConfig small_fleet() {
  sim::FleetConfig cfg;
  cfg.users = 24;
  cfg.days = 2;
  cfg.sessions_per_user_day = 4;
  cfg.users_per_shard = 3;
  cfg.drift_user_tolerance = true;
  cfg.session_jitter_sigma = 0.3;
  cfg.network.median_bandwidth = 1500.0;
  cfg.network.sigma = 0.5;
  cfg.network.relative_sd = 0.4;
  cfg.video.mean_duration = 20.0;
  return cfg;
}

sim::FleetRunner::AbrFactory hyb_factory() {
  return [] { return std::make_unique<abr::Hyb>(); };
}

/// Small untrained-but-deterministic predictor for LingXi fleets.
sim::FleetRunner::PredictorFactory test_predictor_factory() {
  Rng rng(1234);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os_model = std::make_shared<predictor::OverallStatsModel>();
  for (int i = 0; i < 200; ++i) {
    os_model->observe(1, predictor::SwitchType::kNone, i % 9 == 0);
  }
  return [net, os_model] { return predictor::HybridExitPredictor(net, os_model); };
}

sim::FleetAccumulator run_with_threads(sim::FleetConfig cfg, std::size_t threads,
                                       std::uint64_t seed, bool lingxi = false) {
  cfg.threads = threads;
  cfg.enable_lingxi = lingxi;
  if (lingxi) {
    cfg.lingxi.space.optimize_stall = false;
    cfg.lingxi.space.optimize_switch = false;
    cfg.lingxi.space.optimize_beta = true;
    cfg.lingxi.obo_rounds = 2;
    cfg.lingxi.monte_carlo.samples = 4;
  }
  sim::FleetRunner runner(cfg, hyb_factory());
  if (lingxi) runner.set_predictor_factory(test_predictor_factory());
  return runner.run(seed);
}

void expect_identical(const sim::FleetAccumulator& a, const sim::FleetAccumulator& b) {
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.stall_events, b.stall_events);
  EXPECT_EQ(a.stall_exits, b.stall_exits);
  EXPECT_EQ(a.watch_ticks, b.watch_ticks);
  EXPECT_EQ(a.stall_ticks, b.stall_ticks);
  EXPECT_EQ(a.bitrate_time_ticks, b.bitrate_time_ticks);
  EXPECT_EQ(a.lingxi_optimizations, b.lingxi_optimizations);
  EXPECT_EQ(a.adjusted_user_days, b.adjusted_user_days);
}

TEST(FleetRunner, DeterministicAcrossThreadCounts) {
  const auto reference = run_with_threads(small_fleet(), 1, 42);
  EXPECT_GT(reference.sessions, 0u);
  for (std::size_t threads : {2, 3, 8, 16}) {
    expect_identical(reference, run_with_threads(small_fleet(), threads, 42));
  }
}

TEST(FleetRunner, DeterministicAcrossThreadCountsWithLingXi) {
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 8;
  cfg.users_per_shard = 2;
  cfg.network.median_bandwidth = 1000.0;  // stalls so the trigger fires
  const auto reference = run_with_threads(cfg, 1, 7, /*lingxi=*/true);
  EXPECT_GT(reference.lingxi_triggers, 0u);
  for (std::size_t threads : {2, 4}) {
    expect_identical(reference, run_with_threads(cfg, threads, 7, /*lingxi=*/true));
  }
}

TEST(FleetRunner, ShardSizeDoesNotChangeTheResult) {
  sim::FleetConfig cfg = small_fleet();
  const auto reference = run_with_threads(cfg, 2, 9);
  for (std::size_t shard_users : {1, 5, 24, 1000}) {
    sim::FleetConfig alt = cfg;
    alt.users_per_shard = shard_users;
    expect_identical(reference, run_with_threads(alt, 2, 9));
  }
}

TEST(FleetRunner, DegenerateShardSizesAreClampedNotUndefined) {
  // The users_per_shard doc promises "results identical for any value" —
  // including the degenerate ones: 0 (explicitly clamped to 1 at
  // construction), 1 (one user per shard) and far-larger-than-fleet (one
  // whole-fleet shard). All must reproduce the reference bitwise, with and
  // without LingXi in the loop.
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 8;
  cfg.network.median_bandwidth = 1000.0;
  for (const bool lingxi : {false, true}) {
    const auto reference = run_with_threads(cfg, 2, 9, lingxi);
    for (std::size_t shard_users : {std::size_t{0}, std::size_t{1}, std::size_t{10000}}) {
      sim::FleetConfig alt = cfg;
      alt.users_per_shard = shard_users;
      sim::FleetRunner runner(alt, hyb_factory());
      // 0 is not a shard size; the runner must normalize it (documented
      // clamp to 1) rather than divide by zero in shard bookkeeping.
      EXPECT_GE(runner.config().users_per_shard, 1u) << "shard_users=" << shard_users;
      expect_identical(reference, run_with_threads(alt, 2, 9, lingxi));
    }
  }
}

TEST(FleetRunner, SchedulerModesProduceIdenticalResults) {
  // kPerUser and kCohortWaves are pure scheduling choices; the merged
  // accumulator must agree bitwise (the full grid lives in
  // test_properties.cpp — this is the direct two-mode probe).
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 8;
  cfg.users_per_shard = 4;
  cfg.network.median_bandwidth = 1000.0;  // stalls so optimizations happen
  for (const bool lingxi : {false, true}) {
    sim::FleetConfig per_user = cfg;
    per_user.scheduler = sim::SchedulerMode::kPerUser;
    sim::FleetConfig cohort = cfg;
    cohort.scheduler = sim::SchedulerMode::kCohortWaves;
    const auto a = run_with_threads(per_user, 2, 7, lingxi);
    const auto b = run_with_threads(cohort, 2, 7, lingxi);
    if (lingxi) {
      EXPECT_GT(a.lingxi_optimizations, 0u);
    }
    expect_identical(a, b);
  }
}

TEST(FleetRunner, DifferentSeedsDiffer) {
  const auto a = run_with_threads(small_fleet(), 2, 1);
  const auto b = run_with_threads(small_fleet(), 2, 2);
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(FleetAccumulator, MergeIsAssociativeAndCommutative) {
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 6;
  const auto a = run_with_threads(cfg, 1, 101);
  const auto b = run_with_threads(cfg, 1, 202);
  const auto c = run_with_threads(cfg, 1, 303);

  // (a + b) + c
  sim::FleetAccumulator left = a;
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  sim::FleetAccumulator bc = b;
  bc.merge(c);
  sim::FleetAccumulator right = a;
  right.merge(bc);
  // c + b + a
  sim::FleetAccumulator reversed = c;
  reversed.merge(b);
  reversed.merge(a);

  expect_identical(left, right);
  expect_identical(left, reversed);
  EXPECT_EQ(left.sessions, a.sessions + b.sessions + c.sessions);
  EXPECT_EQ(left.users, a.users + b.users + c.users);
}

TEST(FleetAccumulator, MergeWithEmptyIsIdentity) {
  const auto a = run_with_threads(small_fleet(), 1, 5);
  sim::FleetAccumulator merged = a;
  merged.merge(sim::FleetAccumulator{});
  expect_identical(a, merged);
}

TEST(FleetRunner, EmptyFleet) {
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 0;
  sim::FleetRunner runner(cfg, hyb_factory());
  const auto result = runner.run(77);
  EXPECT_EQ(result.sessions, 0u);
  EXPECT_EQ(result.users, 0u);
  EXPECT_DOUBLE_EQ(result.completion_rate(), 0.0);
  EXPECT_DOUBLE_EQ(result.exit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(result.mean_bitrate(), 0.0);
  EXPECT_EQ(result.checksum(), sim::FleetAccumulator{}.checksum());
}

TEST(FleetRunner, SingleUserFleet) {
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 1;
  cfg.days = 3;
  cfg.sessions_per_user_day = 5;
  cfg.threads = 4;  // more workers than shards must be harmless
  sim::FleetRunner runner(cfg, hyb_factory());
  const auto result = runner.run(13);
  EXPECT_EQ(result.users, 1u);
  EXPECT_EQ(result.sessions, 15u);
  EXPECT_GT(result.total_watch_time(), 0.0);
}

TEST(FleetRunner, WarmupWindowExcludesEarlySessions) {
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 4;
  cfg.days = 1;
  cfg.sessions_per_user_day = 6;
  cfg.warmup_sessions = 2;
  sim::FleetRunner runner(cfg, hyb_factory());
  const auto result = runner.run(21);
  EXPECT_EQ(result.sessions, 24u);
  EXPECT_EQ(result.measured_sessions, 16u);  // (6 - 2) x 4 users
  EXPECT_LE(result.measured_completed, result.completed);
}

TEST(FleetRunner, PureAaRunMatchesControlSessionForSession) {
  // With intervention_day == days, LingXi observes but never optimizes: the
  // session-level results must equal a control fleet pinned to the same
  // defaults (the paired AA property of the Fig. 12 protocol).
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 8;
  cfg.users_per_shard = 2;
  cfg.network.median_bandwidth = 1000.0;
  cfg.intervention_day = cfg.days;  // pure AA
  cfg.fixed_params = cfg.lingxi.default_params;

  sim::FleetConfig control_cfg = cfg;
  control_cfg.enable_lingxi = false;
  sim::FleetRunner control(control_cfg, hyb_factory());
  const auto control_acc = control.run(77);

  sim::FleetConfig aa_cfg = cfg;
  aa_cfg.enable_lingxi = true;
  aa_cfg.lingxi.space.optimize_beta = true;
  sim::FleetRunner aa(aa_cfg, hyb_factory());
  aa.set_predictor_factory(test_predictor_factory());
  const auto aa_acc = aa.run(77);

  EXPECT_EQ(aa_acc.lingxi_optimizations, 0u);
  EXPECT_EQ(aa_acc.adjusted_user_days, 0u);
  EXPECT_EQ(aa_acc.sessions, control_acc.sessions);
  EXPECT_EQ(aa_acc.completed, control_acc.completed);
  EXPECT_EQ(aa_acc.stall_events, control_acc.stall_events);
  EXPECT_EQ(aa_acc.watch_ticks, control_acc.watch_ticks);
  EXPECT_EQ(aa_acc.stall_ticks, control_acc.stall_ticks);
  EXPECT_EQ(aa_acc.bitrate_time_ticks, control_acc.bitrate_time_ticks);
}

TEST(FleetRunner, InterventionDayLimitsAdjustedDays) {
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 8;
  cfg.users_per_shard = 2;
  cfg.network.median_bandwidth = 1000.0;
  cfg.intervention_day = 1;  // day 0 is AA
  const auto acc = run_with_threads(cfg, 2, 7, /*lingxi=*/true);
  // Pre-intervention days are pinned to the defaults, so at most the
  // post-intervention days can end adjusted.
  EXPECT_LE(acc.adjusted_user_days,
            cfg.users * (cfg.days - cfg.intervention_day));
}

TEST(FleetRunner, CustomUserFactoryReceivesUserIndex) {
  sim::FleetConfig cfg = small_fleet();
  cfg.users = 5;
  cfg.days = 1;
  cfg.drift_user_tolerance = false;
  sim::FleetRunner runner(cfg, hyb_factory());
  runner.set_user_factory([](std::size_t user_index, Rng&) {
    user::DataDrivenUser::Config ucfg;
    ucfg.tolerance = 1.0 + static_cast<double>(user_index);
    return std::make_unique<user::DataDrivenUser>(ucfg);
  });
  const auto result = runner.run(3);
  EXPECT_EQ(result.users, 5u);
  EXPECT_EQ(result.sessions, 20u);
}

// ---------------------------------------------------------------------------
// Overflow boundary: the fixed-point sums saturate at INT64_MAX and latch
// `overflowed` (in every build type) instead of wrapping — and the latch
// merges sticky, so shard partitioning cannot hide an overflow.
// ---------------------------------------------------------------------------

TEST(FleetAccumulator, AddSessionSaturatesAndLatchesAtInt64Max) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  sim::SessionResult one_second;
  one_second.watch_time = 1.0;  // exactly 1'000'000 ticks

  // Exactly filling the headroom is NOT an overflow: the sum lands on
  // INT64_MAX without clamping and the latch stays clear.
  sim::FleetAccumulator exact;
  exact.watch_ticks = kMax - 1'000'000;
  exact.add_session(one_second, /*measured=*/true);
  EXPECT_EQ(exact.watch_ticks, kMax);
  EXPECT_FALSE(exact.has_overflow());

  // One tick less headroom and the same session overflows: the sum clamps
  // to INT64_MAX and the latch sets.
  sim::FleetAccumulator over;
  over.watch_ticks = kMax - 999'999;
  over.add_session(one_second, /*measured=*/true);
  EXPECT_EQ(over.watch_ticks, kMax);
  EXPECT_TRUE(over.has_overflow());

  // The latch is part of the checksum, so a saturated accumulator can never
  // pass for the equal-valued non-saturated one.
  EXPECT_NE(exact.checksum(), over.checksum());
}

TEST(FleetAccumulator, MergeSaturatesAndPropagatesLatch) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

  // Merge itself can overflow: two in-range halves whose total is out of
  // range clamp and latch.
  sim::FleetAccumulator a;
  sim::FleetAccumulator b;
  a.stall_ticks = kMax / 2 + 1;
  b.stall_ticks = kMax / 2 + 1;
  a.merge(b);
  EXPECT_EQ(a.stall_ticks, kMax);
  EXPECT_TRUE(a.has_overflow());

  // Sticky across merges: an already-latched shard taints the total even
  // when the merged sums are far from the bound.
  sim::FleetAccumulator tainted;
  tainted.overflowed = 1;
  sim::FleetAccumulator total;
  total.watch_ticks = 123;
  total.merge(tainted);
  EXPECT_EQ(total.watch_ticks, 123);
  EXPECT_TRUE(total.has_overflow());
}

}  // namespace
}  // namespace lingxi
