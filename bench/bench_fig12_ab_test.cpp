// Figure 12: "The A/B Experiment of LingXi" (§5.3).
//
// 10-day difference-in-differences A/B test: days 1-5 are an AA period
// (LingXi built but inactive), days 6-10 the AB period (LingXi tunes HYB's
// beta per user). Reports the paper's three series — relative improvement in
// overall watch time, bitrate and stall time — plus the DiD estimate with
// t statistic and p value.
//
// Paper numbers for reference: watch time +0.146% +- 0.043% (t=3.40,
// p<0.01), bitrate +0.103% +- 0.015%, stall time -1.287% +- 0.103%.
// Our population is far smaller and biased toward the low-bandwidth tail
// (where LingXi acts), so magnitudes are larger; the shape — AA gap ~0,
// positive watch/bitrate effect, strongly negative stall effect — is what
// this bench checks.
#include <cstdio>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "analytics/experiment.h"
#include "bench_util.h"
#include "stats/did.h"

using namespace lingxi;

int main() {
  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(808, 0.7);

  analytics::ExperimentConfig cfg;
  cfg.users = 400;
  cfg.days = 10;
  cfg.sessions_per_user_day = 12;
  cfg.intervention_day = 5;
  cfg.network.median_bandwidth = 4000.0;  // mixed population with low-BW tail
  cfg.network.sigma = 0.8;
  cfg.lingxi.obo_rounds = 5;
  cfg.lingxi.monte_carlo.samples = 8;
  cfg.lingxi.monte_carlo.sample_duration = 30.0;

  analytics::PopulationExperiment experiment(
      cfg, [] { return std::make_unique<abr::Hyb>(); },
      [&] { return predictor.make(); });

  std::printf("running control arm (static beta=%.2f)...\n",
              cfg.lingxi.default_params.hyb_beta);
  const auto control = experiment.run(false, 31337);
  std::printf("running treatment arm (LingXi from day %zu)...\n",
              cfg.intervention_day + 1);
  const auto treatment = experiment.run(true, 31337);

  struct Metric {
    const char* name;
    double (analytics::MetricAccumulator::*fn)() const;
    const char* paper;
  };
  const Metric metrics[3] = {
      {"(a) Overall watch time", &analytics::MetricAccumulator::total_watch_time,
       "+0.146% +- 0.043%"},
      {"(b) Bitrate", &analytics::MetricAccumulator::mean_bitrate, "+0.103% +- 0.015%"},
      {"(c) Stall time", &analytics::MetricAccumulator::total_stall_time,
       "-1.287% +- 0.103%"},
  };

  for (const auto& metric : metrics) {
    const auto gaps = analytics::relative_daily_gap(treatment, control, metric.fn);
    bench::print_header(std::string("Figure 12") + metric.name);
    std::printf("%-6s %-14s\n", "day", "relative gap %");
    for (std::size_t d = 0; d < gaps.size(); ++d) {
      std::printf("%-6zu %+10.3f%s\n", d + 1, gaps[d] * 100.0,
                  d + 1 == cfg.intervention_day ? "   <- LingXi starts next day" : "");
    }
    const std::vector<double> pre(gaps.begin(),
                                  gaps.begin() + static_cast<long>(cfg.intervention_day));
    const std::vector<double> post(gaps.begin() + static_cast<long>(cfg.intervention_day),
                                   gaps.end());
    const auto did = stats::difference_in_differences(pre, post);
    std::printf("DiD: %+.3f%% +- %.3f%% (t=%.3f, p=%.4f) | paper: %s\n",
                did.effect * 100.0, did.stderr_effect * 100.0, did.t, did.p_two_sided,
                metric.paper);
  }
  return 0;
}
