// Figure 12: "The A/B Experiment of LingXi" (§5.3) — on the fleet telemetry
// pipeline.
//
// 10-day difference-in-differences A/B test: days 1-5 are an AA period
// (LingXi built but inactive), days 6-10 the AB period (LingXi tunes HYB's
// beta per user). Each arm is simulated ONCE on sim::FleetRunner with a
// telemetry::ShardedCapture attached; every reported series is then computed
// by telemetry::Replay from the on-disk archive, and the replayed
// accumulator checksum is verified against the live run — the
// capture-once / query-many contract.
//
// Paper numbers for reference: watch time +0.146% +- 0.043% (t=3.40,
// p<0.01), bitrate +0.103% +- 0.015%, stall time -1.287% +- 0.103%.
// Our population is far smaller and biased toward the low-bandwidth tail
// (where LingXi acts), so magnitudes are larger; the shape — AA gap ~0,
// positive watch/bitrate effect, strongly negative stall effect — is what
// this bench checks.
//
// Usage: bench_fig12_ab_test [--users N] [--days N] [--sessions N]
//                            [--archive-dir PATH] [--json PATH]
//                            [--metrics-json PATH] [--trace-out PATH]
//                            [--timeline-out PATH] [--slo SPEC]...
//
// --metrics-json dumps the obs registry (both arms' counters and timing
// histograms) and --trace-out a Chrome trace_event JSON of the instrumented
// spans. Tracing also arms an AutoCheckpointer on the treatment arm (one
// mid-run checkpoint under the archive dir) so the trace exercises the
// checkpoint.commit span alongside wave.flush and obo.refit — the shape the
// CI smoke validates.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "abr/hyb.h"
#include "bench_util.h"
#include "sim/fleet_runner.h"
#include "snapshot/checkpoint.h"
#include "stats/did.h"
#include "telemetry/capture.h"
#include "telemetry/replay.h"

using namespace lingxi;

namespace {

struct Args {
  std::size_t users = 400;
  std::size_t days = 10;
  std::size_t sessions = 12;
  std::string archive_dir;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string timeline_path;
  std::vector<std::string> slo_specs;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--users") == 0) {
      args.users = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--days") == 0) {
      args.days = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      args.sessions = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--archive-dir") == 0) {
      args.archive_dir = next();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json_path = next();
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      args.metrics_path = next();
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      args.trace_path = next();
    } else if (std::strcmp(argv[i], "--timeline-out") == 0) {
      args.timeline_path = next();
    } else if (std::strcmp(argv[i], "--slo") == 0) {
      args.slo_specs.emplace_back(next());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (args.users == 0 || args.days < 4 || args.sessions == 0) {
    // DiD needs at least two AA and two AB days.
    std::fprintf(stderr, "need users >= 1, days >= 4, sessions >= 1\n");
    std::exit(2);
  }
  if (args.archive_dir.empty()) {
    args.archive_dir =
        (std::filesystem::temp_directory_path() / "lingxi_fig12_archives").string();
  }
  return args;
}

struct ArmResult {
  telemetry::ReplayResult replay;
  bool checksum_match = false;
  std::uint64_t archive_bytes = 0;
};

/// Simulate one arm once, archive it, and recompute everything via replay.
/// A non-empty `checkpoint_root` arms an AutoCheckpointer (one mid-run
/// checkpoint) so the run exercises the snapshot commit path — used by the
/// trace smoke; checkpointing never perturbs the simulation itself, so the
/// replay/live checksum contract is unchanged.
ArmResult run_arm(const sim::FleetConfig& base, bool treatment,
                  const bench::TrainedPredictor& predictor, std::uint64_t seed,
                  const std::string& dir, const std::string& checkpoint_root = "") {
  sim::FleetConfig cfg = base;
  cfg.enable_lingxi = treatment;
  telemetry::ShardedCapture capture;
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  if (treatment) {
    runner.set_predictor_factory([&predictor] { return predictor.make(); });
  }
  runner.set_telemetry_sink(&capture);
  std::unique_ptr<snapshot::AutoCheckpointer> checkpointer;
  if (!checkpoint_root.empty()) {
    snapshot::CheckpointPolicy policy;
    policy.root = checkpoint_root;
    policy.every_k_days = std::max<std::size_t>(cfg.days / 2, 1);
    policy.retain = 1;
    checkpointer = std::make_unique<snapshot::AutoCheckpointer>(runner, seed, policy,
                                                                &capture);
    checkpointer->arm(runner);
  }
  const sim::FleetAccumulator live = runner.run(seed);
  if (checkpointer && !checkpointer->status()) {
    std::fprintf(stderr, "auto-checkpoint failed: %s\n",
                 checkpointer->status().error().message.c_str());
    std::exit(1);
  }

  const telemetry::FleetArchive archive = capture.finish();
  if (auto s = archive.write(dir); !s) {
    std::fprintf(stderr, "archive write failed: %s\n", s.error().message.c_str());
    std::exit(1);
  }
  auto replayed = telemetry::Replay::run(dir);
  if (!replayed) {
    std::fprintf(stderr, "replay failed: %s\n", replayed.error().message.c_str());
    std::exit(1);
  }
  ArmResult result{std::move(*replayed), false, archive.total_bytes()};
  result.checksum_match = result.replay.fleet.checksum() == live.checksum();
  std::printf("  %s arm: %llu sessions -> %s (%.1f MiB), replay checksum %s\n",
              treatment ? "treatment" : "control",
              static_cast<unsigned long long>(live.sessions), dir.c_str(),
              static_cast<double>(result.archive_bytes) / (1024.0 * 1024.0),
              result.checksum_match ? "MATCH" : "MISMATCH");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  std::vector<obs::SloRule> slo_rules;
  if (!bench::parse_slo_flags(args.slo_specs, slo_rules)) return 2;
  const bench::ObsScope obs(args.metrics_path, args.trace_path, args.timeline_path,
                            std::move(slo_rules));

  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(808, 0.7);

  sim::FleetConfig cfg;
  cfg.users = args.users;
  cfg.days = args.days;
  cfg.sessions_per_user_day = args.sessions;
  cfg.intervention_day = args.days / 2;  // 5 AA days at the paper's 10
  cfg.threads = 0;  // hardware concurrency
  cfg.drift_user_tolerance = true;
  cfg.network.median_bandwidth = 4000.0;  // mixed population with low-BW tail
  cfg.network.sigma = 0.8;
  cfg.lingxi.obo_rounds = 5;
  cfg.lingxi.monte_carlo.samples = 8;
  cfg.lingxi.monte_carlo.sample_duration = 30.0;
  // The production A/B test tunes HYB's beta (§5.3): search beta only.
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.fixed_params = cfg.lingxi.default_params;

  std::printf("simulating both arms once (%zu users x %zu days, capture on)...\n",
              cfg.users, cfg.days);
  const auto control =
      run_arm(cfg, false, predictor, 31337, args.archive_dir + "/control");
  // When tracing, the treatment arm also cuts one mid-run checkpoint so the
  // trace covers the snapshot commit path.
  const std::string checkpoint_root =
      args.trace_path.empty() ? "" : args.archive_dir + "/treatment-checkpoints";
  const auto treatment = run_arm(cfg, true, predictor, 31337,
                                 args.archive_dir + "/treatment", checkpoint_root);

  struct Metric {
    const char* name;
    const char* key;
    double (analytics::MetricAccumulator::*fn)() const;
    const char* paper;
  };
  const Metric metrics[3] = {
      {"(a) Overall watch time", "watch_time",
       &analytics::MetricAccumulator::total_watch_time, "+0.146% +- 0.043%"},
      {"(b) Bitrate", "bitrate", &analytics::MetricAccumulator::mean_bitrate,
       "+0.103% +- 0.015%"},
      {"(c) Stall time", "stall_time", &analytics::MetricAccumulator::total_stall_time,
       "-1.287% +- 0.103%"},
  };

  struct DidRow {
    const char* key;
    stats::DidResult did;
  };
  std::vector<DidRow> did_rows;

  for (const auto& metric : metrics) {
    const auto gaps =
        analytics::relative_daily_gap(treatment.replay.daily, control.replay.daily, metric.fn);
    bench::print_header(std::string("Figure 12") + metric.name + " (replayed)");
    std::printf("%-6s %-14s\n", "day", "relative gap %");
    for (std::size_t d = 0; d < gaps.size(); ++d) {
      std::printf("%-6zu %+10.3f%s\n", d + 1, gaps[d] * 100.0,
                  d + 1 == cfg.intervention_day ? "   <- LingXi starts next day" : "");
    }
    const std::vector<double> pre(gaps.begin(),
                                  gaps.begin() + static_cast<long>(cfg.intervention_day));
    const std::vector<double> post(gaps.begin() + static_cast<long>(cfg.intervention_day),
                                   gaps.end());
    const auto did = stats::difference_in_differences(pre, post);
    std::printf("DiD: %+.3f%% +- %.3f%% (t=%.3f, p=%.4f) | paper: %s\n",
                did.effect * 100.0, did.stderr_effect * 100.0, did.t, did.p_two_sided,
                metric.paper);
    did_rows.push_back({metric.key, did});
  }

  const bool all_match = control.checksum_match && treatment.checksum_match;
  std::printf("\nreplay-vs-live accumulator checksums: %s\n",
              all_match ? "both arms MATCH" : "MISMATCH (capture bug!)");

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"users\": %zu,\n  \"days\": %zu,\n  \"sessions_per_user_day\": "
                 "%zu,\n  \"intervention_day\": %zu,\n  \"checksum_match\": %s,\n",
                 cfg.users, cfg.days, cfg.sessions_per_user_day, cfg.intervention_day,
                 all_match ? "true" : "false");
    std::fprintf(f, "  \"metrics\": {\n");
    for (std::size_t i = 0; i < did_rows.size(); ++i) {
      std::fprintf(f,
                   "    \"%s\": {\"did_pct\": %.6f, \"stderr_pct\": %.6f, \"t\": %.4f, "
                   "\"p\": %.6f}%s\n",
                   did_rows[i].key, did_rows[i].did.effect * 100.0,
                   did_rows[i].did.stderr_effect * 100.0, did_rows[i].did.t,
                   did_rows[i].did.p_two_sided, i + 1 < did_rows.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", args.json_path.c_str());
  }

  if (!obs.write()) return 1;
  if (!all_match) return 1;
  if (!obs.slo_ok()) return 3;
  return 0;
}
