// Figure 5: "A Thousand Faces: Personalized Perception of Stall Time" (§2.3).
//
//   (a) CDF of per-user average tolerable stall time, and the CDF of the
//       day-over-day tolerance difference — ~20% of users tolerate almost
//       nothing, ~20% tolerate >5s, ~10% tolerate >10s; drift is mostly
//       small with a 2-4s band and a long tail;
//   (b) individual exit-rate-vs-stall-time curves for the three archetypes
//       (sensitive / sensitive-to-threshold / insensitive).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "stats/ecdf.h"
#include "user/user_population.h"

using namespace lingxi;

int main() {
  const user::UserPopulation population;
  Rng rng(17);

  bench::print_header("Figure 5(a): CDF of average tolerable stall time");
  std::vector<double> tolerances;
  std::vector<double> drifts;
  const int kUsers = 20000;
  for (int i = 0; i < kUsers; ++i) {
    const auto cfg = population.sample_config(rng);
    tolerances.push_back(cfg.tolerance);
    drifts.push_back(std::abs(population.sample_drift(rng)));
  }
  const stats::Ecdf tol_cdf(tolerances);
  const stats::Ecdf drift_cdf(drifts);
  std::printf("%-10s %-22s %-22s\n", "time (s)", "tolerable stall CDF", "day1-day2 diff CDF");
  for (double t : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0}) {
    std::printf("%-10.0f %-22.4f %-22.4f\n", t, tol_cdf(t), drift_cdf(t));
  }
  std::printf("\nkey fractions (paper): <=2s ~20%%; >5s ~30%%; >10s ~10%%\n");
  std::printf("measured: <=2s %.3f; >5s %.3f; >10s %.3f\n", tol_cdf(2.0),
              1.0 - tol_cdf(5.0), 1.0 - tol_cdf(10.0));

  bench::print_header("Figure 5(b): per-user exit rate vs stall time, by archetype");
  // Three representative users near the 90th engagement percentile.
  user::DataDrivenUser::Config sensitive;
  sensitive.stall_archetype = user::StallArchetype::kSensitive;
  sensitive.tolerance = 2.0;
  user::DataDrivenUser::Config threshold;
  threshold.stall_archetype = user::StallArchetype::kThreshold;
  threshold.tolerance = 4.0;
  user::DataDrivenUser::Config insensitive;
  insensitive.stall_archetype = user::StallArchetype::kInsensitive;
  insensitive.tolerance = 10.0;

  const user::DataDrivenUser users[3] = {user::DataDrivenUser(sensitive),
                                         user::DataDrivenUser(threshold),
                                         user::DataDrivenUser(insensitive)};
  std::printf("%-10s %-14s %-20s %-14s\n", "stall(s)", "sensitive", "sens-to-threshold",
              "insensitive");
  for (double s = 0.0; s <= 8.0; s += 1.0) {
    std::printf("%-10.0f %-14.4f %-20.4f %-14.4f\n", s, users[0].stall_hazard(s, 1),
                users[1].stall_hazard(s, 1), users[2].stall_hazard(s, 1));
  }
  std::printf("\nExpected shapes: sensitive rises steeply from the first second;\n"
              "threshold jumps around its personal tolerance (4s); insensitive stays"
              " low.\n");
  return 0;
}
