// Figure 1: "When the garden is well-tended — QoS metrics meet their limits".
//
// Reproduces the 5-day A/B test of §2.1: three RobustMPC variants with
// different optimization preferences —
//   Alg1: stall-averse   (high mu)
//   Alg2: production default
//   Alg3: quality-first  (low mu)
// Reported per day, normalized to the cross-algorithm mean (the paper's
// "Norm." axes): bitrate, stall time, QoE_lin, overall watch time.
//
// Expected shape: Alg3 wins bitrate, Alg1 wins stall time and QoE_lin, and
// watch time shows no consistent winner — differences stay within a fraction
// of a percent, the paper's saturation argument.
#include <cstdio>
#include <memory>

#include "abr/robust_mpc.h"
#include "analytics/metrics.h"
#include "bench_util.h"
#include "sim/session.h"
#include "stats/descriptive.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/user_population.h"

using namespace lingxi;

namespace {

struct DayOutcome {
  double bitrate = 0.0;
  double stall = 0.0;
  double qoe_lin = 0.0;
  double watch = 0.0;
};

DayOutcome simulate_day(const abr::QoeParams& params, std::uint64_t seed) {
  const std::size_t kUsers = 70;
  const std::size_t kSessions = 8;
  const trace::PopulationModel networks;
  const trace::VideoGenerator videos({});
  const user::UserPopulation population;
  const sim::SessionSimulator simulator({});

  analytics::MetricAccumulator acc;
  double qoe_total = 0.0;
  Rng rng(seed);
  for (std::size_t u = 0; u < kUsers; ++u) {
    const auto profile = networks.sample(rng);
    auto user_model = population.sample(rng);
    abr::RobustMpc mpc;
    mpc.set_params(params);
    for (std::size_t s = 0; s < kSessions; ++s) {
      const trace::Video video = videos.sample(rng);
      auto bw = profile.make_session_model();
      const auto session = simulator.run(video, mpc, *bw, user_model.get(), rng);
      acc.add(session);
      qoe_total += sim::qoe_lin(session, video.ladder(), trace::QualityMetric::kLinearMbps,
                                params.stall_penalty, params.switch_penalty);
    }
  }
  DayOutcome out;
  out.bitrate = acc.mean_bitrate();
  out.stall = acc.total_stall_time();
  out.qoe_lin = qoe_total;
  out.watch = acc.total_watch_time();
  return out;
}

}  // namespace

int main() {
  bench::print_header("Figure 1: QoS saturation under different objectives (5-day A/B)");

  abr::QoeParams alg1;  // stall-averse
  alg1.stall_penalty = 7.0;
  abr::QoeParams alg2;  // production default (mu = max quality)
  alg2.stall_penalty = 4.3;
  abr::QoeParams alg3;  // quality-first
  alg3.stall_penalty = 2.5;
  const abr::QoeParams algs[3] = {alg1, alg2, alg3};

  const int kDays = 5;
  DayOutcome results[3][kDays];
  for (int a = 0; a < 3; ++a) {
    for (int d = 0; d < kDays; ++d) {
      // Same seed per day across algorithms: paired comparison.
      results[a][d] = simulate_day(algs[a], 1000 + static_cast<std::uint64_t>(d));
    }
  }

  const char* metric_names[4] = {"(a) Norm. Bitrate", "(b) Norm. Stall Time",
                                 "(c) Norm. QoE_lin", "(d) Norm. Overall Watch Time"};
  for (int m = 0; m < 4; ++m) {
    std::printf("\n%s\n%-6s %-10s %-10s %-10s\n", metric_names[m], "day", "Alg1", "Alg2",
                "Alg3");
    for (int d = 0; d < kDays; ++d) {
      double v[3];
      for (int a = 0; a < 3; ++a) {
        const auto& r = results[a][d];
        v[a] = m == 0 ? r.bitrate : m == 1 ? r.stall : m == 2 ? r.qoe_lin : r.watch;
      }
      const double mean = (v[0] + v[1] + v[2]) / 3.0;
      std::printf("Day%-3d %-10.4f %-10.4f %-10.4f\n", d + 1, v[0] / mean, v[1] / mean,
                  v[2] / mean);
    }
  }

  // Summary: who wins each metric how often.
  int bitrate_wins[3] = {0, 0, 0}, stall_wins[3] = {0, 0, 0}, qoe_wins[3] = {0, 0, 0},
      watch_wins[3] = {0, 0, 0};
  for (int d = 0; d < kDays; ++d) {
    int bb = 0, bs = 0, bq = 0, bw = 0;
    for (int a = 1; a < 3; ++a) {
      if (results[a][d].bitrate > results[bb][d].bitrate) bb = a;
      if (results[a][d].stall < results[bs][d].stall) bs = a;
      if (results[a][d].qoe_lin > results[bq][d].qoe_lin) bq = a;
      if (results[a][d].watch > results[bw][d].watch) bw = a;
    }
    ++bitrate_wins[bb];
    ++stall_wins[bs];
    ++qoe_wins[bq];
    ++watch_wins[bw];
  }
  std::printf("\nwins over %d days (Alg1/Alg2/Alg3):\n", kDays);
  std::printf("  bitrate:    %d/%d/%d (expect Alg3)\n", bitrate_wins[0], bitrate_wins[1],
              bitrate_wins[2]);
  std::printf("  stall time: %d/%d/%d (expect Alg1)\n", stall_wins[0], stall_wins[1],
              stall_wins[2]);
  std::printf("  QoE_lin:    %d/%d/%d (expect Alg1)\n", qoe_wins[0], qoe_wins[1],
              qoe_wins[2]);
  std::printf("  watch time: %d/%d/%d (expect mixed: no consistent winner)\n",
              watch_wins[0], watch_wins[1], watch_wins[2]);
  return 0;
}
