// Timeline analytics CLI: summarize one obs timeline (day-over-day metric
// trajectories, bucket-interpolated latency quantiles, alert listing) or
// compare two timelines from two builds.
//
// Usage:
//   bench_health_report --timeline <path> [--json <out.json>]
//   bench_health_report --timeline <base> --compare <candidate>
//       [--threshold 0.10]
//
// Exit codes: 0 clean, 1 the summarized timeline contains alerts (or the
// comparison flags a moved metric), 2 bad usage or a corrupt/unreadable
// timeline.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "analytics/health_report.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_health_report --timeline <path> [--json <out.json>] "
               "[--compare <path> [--threshold <frac>]]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  namespace analytics = lingxi::analytics;

  std::string timeline_path;
  std::string compare_path;
  std::string json_path;
  double threshold = 0.10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--timeline") {
      const char* v = next();
      if (v == nullptr) return usage();
      timeline_path = v;
    } else if (arg == "--compare") {
      const char* v = next();
      if (v == nullptr) return usage();
      compare_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage();
      json_path = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return usage();
      threshold = std::atof(v);
    } else {
      std::fprintf(stderr, "bench_health_report: unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (timeline_path.empty()) return usage();

  auto summary = analytics::summarize_timeline(timeline_path);
  if (!summary) {
    std::fprintf(stderr, "bench_health_report: %s\n", summary.error().message.c_str());
    return 2;
  }

  if (!compare_path.empty()) {
    auto candidate = analytics::summarize_timeline(compare_path);
    if (!candidate) {
      std::fprintf(stderr, "bench_health_report: %s\n", candidate.error().message.c_str());
      return 2;
    }
    const analytics::TimelineComparison cmp =
        analytics::compare_timelines(*summary, *candidate, threshold);
    cmp.write_text(std::cout);
    return cmp.clean() ? 0 : 1;
  }

  summary->write_text(std::cout);
  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "bench_health_report: cannot write %s\n", json_path.c_str());
      return 2;
    }
    summary->write_json(os);
    os.flush();
    if (!os) {
      std::fprintf(stderr, "bench_health_report: write failed for %s\n", json_path.c_str());
      return 2;
    }
    std::printf("health report json written to %s\n", json_path.c_str());
  }
  return summary->alerts.empty() ? 0 : 1;
}
