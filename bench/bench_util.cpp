#include "bench_util.h"

#include <algorithm>

namespace lingxi::bench {

TrainedPredictor train_predictor(std::uint64_t seed, double scale) {
  Rng rng(seed);
  TrainedPredictor out;
  out.os_model = std::make_shared<predictor::OverallStatsModel>();
  out.net = std::make_shared<predictor::StallExitNet>(rng);

  const auto users = static_cast<std::size_t>(std::max(4.0, 30.0 * scale));
  const auto sessions = static_cast<std::size_t>(std::max(4.0, 15.0 * scale));

  // OS model: population frequencies from an unfiltered log.
  {
    predictor::DatasetGenConfig gen;
    gen.users = users;
    gen.sessions_per_user = sessions;
    gen.filter = predictor::DatasetFilter::kAll;
    const auto data = predictor::generate_dataset(gen, rng);
    for (const auto& s : data.samples) {
      out.os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  // Stall net: balanced stall subset.
  {
    predictor::DatasetGenConfig gen;
    gen.users = users;
    gen.sessions_per_user = sessions;
    gen.filter = predictor::DatasetFilter::kStall;
    auto data = predictor::generate_dataset(gen, rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig cfg;
    cfg.epochs = 6;
    if (!balanced.samples.empty()) predictor::train_exit_net(*out.net, balanced, cfg, rng);
  }
  return out;
}

TrainedPredictor train_predictor_for_world(
    const std::function<std::unique_ptr<user::UserModel>(Rng&)>& user_factory,
    const trace::PopulationModel::Config& network,
    const trace::VideoGenerator::Config& video, std::uint64_t seed) {
  Rng rng(seed);
  TrainedPredictor out;
  out.os_model = std::make_shared<predictor::OverallStatsModel>();
  out.net = std::make_shared<predictor::StallExitNet>(rng);

  auto make_gen = [&](predictor::DatasetFilter filter) {
    predictor::DatasetGenConfig gen;
    gen.users = 72;
    gen.sessions_per_user = 20;
    gen.filter = filter;
    gen.network = network;
    gen.video = video;
    gen.user_factory = user_factory;
    return gen;
  };
  {
    const auto data =
        predictor::generate_dataset(make_gen(predictor::DatasetFilter::kAll), rng);
    for (const auto& s : data.samples) {
      out.os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  {
    auto data =
        predictor::generate_dataset(make_gen(predictor::DatasetFilter::kStall), rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig cfg;
    cfg.epochs = 12;
    if (!balanced.samples.empty()) predictor::train_exit_net(*out.net, balanced, cfg, rng);
  }
  return out;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_row(const std::vector<double>& values, int precision) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("%.*f%s", precision, values[i], i + 1 == values.size() ? "\n" : "\t");
  }
}

}  // namespace lingxi::bench
