#include "bench_util.h"

#include <algorithm>

namespace lingxi::bench {

TrainedPredictor train_predictor(std::uint64_t seed, double scale) {
  Rng rng(seed);
  TrainedPredictor out;
  out.os_model = std::make_shared<predictor::OverallStatsModel>();
  out.net = std::make_shared<predictor::StallExitNet>(rng);

  const auto users = static_cast<std::size_t>(std::max(4.0, 30.0 * scale));
  const auto sessions = static_cast<std::size_t>(std::max(4.0, 15.0 * scale));

  // OS model: population frequencies from an unfiltered log.
  {
    predictor::DatasetGenConfig gen;
    gen.users = users;
    gen.sessions_per_user = sessions;
    gen.filter = predictor::DatasetFilter::kAll;
    const auto data = predictor::generate_dataset(gen, rng);
    for (const auto& s : data.samples) {
      out.os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  // Stall net: balanced stall subset.
  {
    predictor::DatasetGenConfig gen;
    gen.users = users;
    gen.sessions_per_user = sessions;
    gen.filter = predictor::DatasetFilter::kStall;
    auto data = predictor::generate_dataset(gen, rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig cfg;
    cfg.epochs = 6;
    if (!balanced.samples.empty()) predictor::train_exit_net(*out.net, balanced, cfg, rng);
  }
  return out;
}

TrainedPredictor train_predictor_for_world(
    const std::function<std::unique_ptr<user::UserModel>(Rng&)>& user_factory,
    const trace::PopulationModel::Config& network,
    const trace::VideoGenerator::Config& video, std::uint64_t seed) {
  Rng rng(seed);
  TrainedPredictor out;
  out.os_model = std::make_shared<predictor::OverallStatsModel>();
  out.net = std::make_shared<predictor::StallExitNet>(rng);

  auto make_gen = [&](predictor::DatasetFilter filter) {
    predictor::DatasetGenConfig gen;
    gen.users = 72;
    gen.sessions_per_user = 20;
    gen.filter = filter;
    gen.network = network;
    gen.video = video;
    gen.user_factory = user_factory;
    return gen;
  };
  {
    const auto data =
        predictor::generate_dataset(make_gen(predictor::DatasetFilter::kAll), rng);
    for (const auto& s : data.samples) {
      out.os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  {
    auto data =
        predictor::generate_dataset(make_gen(predictor::DatasetFilter::kStall), rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig cfg;
    cfg.epochs = 12;
    if (!balanced.samples.empty()) predictor::train_exit_net(*out.net, balanced, cfg, rng);
  }
  return out;
}

ObsScope::ObsScope(std::string metrics_path, std::string trace_path)
    : ObsScope(std::move(metrics_path), std::move(trace_path), {}, {}) {}

ObsScope::ObsScope(std::string metrics_path, std::string trace_path,
                   std::string timeline_path, std::vector<obs::SloRule> slo_rules)
    : metrics_path_(std::move(metrics_path)),
      trace_path_(std::move(trace_path)),
      timeline_path_(std::move(timeline_path)) {
  if (!metrics_path_.empty() || !timeline_path_.empty() || !slo_rules.empty()) {
    registry_ = std::make_unique<obs::Registry>();
    obs::Registry::install(registry_.get());
  }
  if (!trace_path_.empty()) {
    tracer_ = std::make_unique<obs::Tracer>();
    obs::Tracer::install(tracer_.get());
  }
  if (!timeline_path_.empty()) {
    timeline_ = std::make_unique<obs::TimelineWriter>(timeline_path_);
    obs::TimelineWriter::install(timeline_.get());
  }
  if (!slo_rules.empty()) {
    monitor_ = std::make_unique<obs::HealthMonitor>(std::move(slo_rules));
    obs::HealthMonitor::install(monitor_.get());
  }
}

ObsScope::~ObsScope() {
  if (registry_) obs::Registry::install(nullptr);
  if (tracer_) obs::Tracer::install(nullptr);
  if (timeline_) obs::TimelineWriter::install(nullptr);
  if (monitor_) obs::HealthMonitor::install(nullptr);
}

bool ObsScope::write() const {
  bool ok = true;
  if (registry_ && !metrics_path_.empty() &&
      !registry_->write_json_file(metrics_path_)) {
    std::fprintf(stderr, "cannot write metrics json %s\n", metrics_path_.c_str());
    ok = false;
  } else if (registry_ && !metrics_path_.empty()) {
    std::printf("metrics json written to %s\n", metrics_path_.c_str());
  }
  if (tracer_ && !tracer_->write_json_file(trace_path_)) {
    std::fprintf(stderr, "cannot write trace json %s\n", trace_path_.c_str());
    ok = false;
  } else if (tracer_) {
    std::printf("trace written to %s\n", trace_path_.c_str());
  }
  if (timeline_) {
    if (!timeline_->close().ok()) {
      std::fprintf(stderr, "cannot write timeline %s: %s\n", timeline_path_.c_str(),
                   timeline_->status().error().message.c_str());
      ok = false;
    } else {
      std::printf("timeline written to %s (%llu day records)\n", timeline_path_.c_str(),
                  static_cast<unsigned long long>(timeline_->days_written()));
    }
  }
  return ok;
}

bool ObsScope::slo_ok() const {
  if (!monitor_) return true;
  for (const obs::HealthAlert& alert : monitor_->alerts()) {
    std::fprintf(stderr, "SLO violated on day %llu: [%s] %s\n",
                 static_cast<unsigned long long>(alert.day), alert.rule.c_str(),
                 alert.message.c_str());
  }
  return monitor_->healthy();
}

bool parse_slo_flags(const std::vector<std::string>& specs,
                     std::vector<obs::SloRule>& out) {
  for (const std::string& spec : specs) {
    auto rule = obs::parse_slo_rule(spec);
    if (!rule) {
      std::fprintf(stderr, "%s\n", rule.error().message.c_str());
      return false;
    }
    out.push_back(std::move(*rule));
  }
  return true;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_row(const std::vector<double>& values, int precision) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("%.*f%s", precision, values[i], i + 1 == values.size() ? "\n" : "\t");
  }
}

}  // namespace lingxi::bench
