#include "bench_util.h"

#include <algorithm>

namespace lingxi::bench {

TrainedPredictor train_predictor(std::uint64_t seed, double scale) {
  Rng rng(seed);
  TrainedPredictor out;
  out.os_model = std::make_shared<predictor::OverallStatsModel>();
  out.net = std::make_shared<predictor::StallExitNet>(rng);

  const auto users = static_cast<std::size_t>(std::max(4.0, 30.0 * scale));
  const auto sessions = static_cast<std::size_t>(std::max(4.0, 15.0 * scale));

  // OS model: population frequencies from an unfiltered log.
  {
    predictor::DatasetGenConfig gen;
    gen.users = users;
    gen.sessions_per_user = sessions;
    gen.filter = predictor::DatasetFilter::kAll;
    const auto data = predictor::generate_dataset(gen, rng);
    for (const auto& s : data.samples) {
      out.os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  // Stall net: balanced stall subset.
  {
    predictor::DatasetGenConfig gen;
    gen.users = users;
    gen.sessions_per_user = sessions;
    gen.filter = predictor::DatasetFilter::kStall;
    auto data = predictor::generate_dataset(gen, rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig cfg;
    cfg.epochs = 6;
    if (!balanced.samples.empty()) predictor::train_exit_net(*out.net, balanced, cfg, rng);
  }
  return out;
}

TrainedPredictor train_predictor_for_world(
    const std::function<std::unique_ptr<user::UserModel>(Rng&)>& user_factory,
    const trace::PopulationModel::Config& network,
    const trace::VideoGenerator::Config& video, std::uint64_t seed) {
  Rng rng(seed);
  TrainedPredictor out;
  out.os_model = std::make_shared<predictor::OverallStatsModel>();
  out.net = std::make_shared<predictor::StallExitNet>(rng);

  auto make_gen = [&](predictor::DatasetFilter filter) {
    predictor::DatasetGenConfig gen;
    gen.users = 72;
    gen.sessions_per_user = 20;
    gen.filter = filter;
    gen.network = network;
    gen.video = video;
    gen.user_factory = user_factory;
    return gen;
  };
  {
    const auto data =
        predictor::generate_dataset(make_gen(predictor::DatasetFilter::kAll), rng);
    for (const auto& s : data.samples) {
      out.os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  {
    auto data =
        predictor::generate_dataset(make_gen(predictor::DatasetFilter::kStall), rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig cfg;
    cfg.epochs = 12;
    if (!balanced.samples.empty()) predictor::train_exit_net(*out.net, balanced, cfg, rng);
  }
  return out;
}

ObsScope::ObsScope(std::string metrics_path, std::string trace_path)
    : metrics_path_(std::move(metrics_path)), trace_path_(std::move(trace_path)) {
  if (!metrics_path_.empty()) {
    registry_ = std::make_unique<obs::Registry>();
    obs::Registry::install(registry_.get());
  }
  if (!trace_path_.empty()) {
    tracer_ = std::make_unique<obs::Tracer>();
    obs::Tracer::install(tracer_.get());
  }
}

ObsScope::~ObsScope() {
  if (registry_) obs::Registry::install(nullptr);
  if (tracer_) obs::Tracer::install(nullptr);
}

bool ObsScope::write() const {
  bool ok = true;
  if (registry_ && !registry_->write_json_file(metrics_path_)) {
    std::fprintf(stderr, "cannot write metrics json %s\n", metrics_path_.c_str());
    ok = false;
  } else if (registry_) {
    std::printf("metrics json written to %s\n", metrics_path_.c_str());
  }
  if (tracer_ && !tracer_->write_json_file(trace_path_)) {
    std::fprintf(stderr, "cannot write trace json %s\n", trace_path_.c_str());
    ok = false;
  } else if (tracer_) {
    std::printf("trace written to %s\n", trace_path_.c_str());
  }
  return ok;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_row(const std::vector<double>& values, int precision) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("%.*f%s", precision, values[i], i + 1 == values.size() ? "\n" : "\t");
  }
}

}  // namespace lingxi::bench
