// Figure 15: "The Details of User Updates to the ABR Parameter" (§5.5.2) —
// on the fleet telemetry pipeline.
//
// Per-stall-event trajectories for four representative users — two with high
// stall tolerance, two stall-sensitive — showing stall time, whether the
// user exited, and the beta parameter after LingXi's update. The fleet is
// simulated ONCE with capture enabled; the stall-event trajectories are then
// reconstructed by telemetry::Replay from the per-segment traces in the
// archive (ground-truth tolerance comes from the per-user summary records),
// and the replayed accumulator checksum is verified against the live run.
// Expected narrative: tolerant users stabilize in the upper beta range;
// sensitive users converge to the lower range, with dips after exit bursts.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "bench_util.h"
#include "common/running_stats.h"
#include "sim/fleet_runner.h"
#include "telemetry/capture.h"
#include "telemetry/replay.h"

using namespace lingxi;

int main() {
  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(222, 0.7);

  sim::FleetConfig cfg;
  cfg.users = 60;
  cfg.days = 5;
  cfg.sessions_per_user_day = 12;
  cfg.intervention_day = 0;
  cfg.threads = 0;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.network.median_bandwidth = 1200.0;  // stall-heavy
  cfg.network.relative_sd = 0.45;
  cfg.network.sigma = 0.4;
  cfg.lingxi.obo_rounds = 5;
  cfg.lingxi.monte_carlo.samples = 8;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;

  telemetry::ShardedCapture capture;
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory([&predictor] { return predictor.make(); });
  runner.set_telemetry_sink(&capture);
  std::printf("simulating the fleet once (capture on)...\n");
  const sim::FleetAccumulator live = runner.run(4242);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "lingxi_fig15_archive").string();
  const telemetry::FleetArchive archive = capture.finish();
  if (auto s = archive.write(dir); !s) {
    std::fprintf(stderr, "archive write failed: %s\n", s.error().message.c_str());
    return 1;
  }
  telemetry::Replay::Options opts;
  opts.collect_stall_events = true;
  const auto replayed = telemetry::Replay::run(dir, opts);
  if (!replayed) {
    std::fprintf(stderr, "replay failed: %s\n", replayed.error().message.c_str());
    return 1;
  }
  const bool match = replayed->fleet.checksum() == live.checksum();
  std::printf("archived %llu sessions -> %s; replay checksum %s\n",
              static_cast<unsigned long long>(live.sessions), dir.c_str(),
              match ? "MATCH" : "MISMATCH");

  // Group stall events per user; keep users with enough events to plot.
  std::map<std::size_t, std::vector<analytics::StallEventRecord>> by_user;
  for (const auto& ev : replayed->stall_events) by_user[ev.user].push_back(ev);

  struct Candidate {
    std::size_t user;
    double tolerance;
    std::size_t events;
  };
  std::vector<Candidate> candidates;
  for (const auto& [user, events] : by_user) {
    if (events.size() >= 12) {
      candidates.push_back({user, events.front().user_tolerance, events.size()});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.tolerance > b.tolerance; });
  if (candidates.size() < 4) {
    std::printf("not enough stall-active users recorded (%zu)\n", candidates.size());
    return 1;
  }

  const Candidate picks[4] = {candidates.front(), candidates[1],
                              candidates[candidates.size() - 2], candidates.back()};
  const char* labels[4] = {"User 1 (high tolerance)", "User 2 (high tolerance)",
                           "User 3 (stall-sensitive)", "User 4 (stall-sensitive)"};

  for (int i = 0; i < 4; ++i) {
    bench::print_header(std::string("Figure 15: ") + labels[i]);
    const auto& events = by_user[picks[i].user];
    std::printf("ground-truth tolerance: %.1fs, %zu stall events\n", picks[i].tolerance,
                events.size());
    std::printf("%-8s %-12s %-10s %-8s\n", "event", "stall(s)", "beta", "exited");
    const std::size_t n = std::min<std::size_t>(events.size(), 18);
    RunningStats beta;
    for (std::size_t e = 0; e < n; ++e) {
      std::printf("%-8zu %-12.2f %-10.3f %-8s\n", e + 1, events[e].stall_time,
                  events[e].param_beta_after, events[e].exited ? "EXIT" : "-");
    }
    for (const auto& ev : events) beta.add(ev.param_beta_after);
    std::printf("mean beta across all events: %.3f\n", beta.mean());
  }

  // Aggregate check: tolerant half vs sensitive half.
  RunningStats tol_beta, sens_beta;
  for (const auto& c : candidates) {
    RunningStats b;
    for (const auto& ev : by_user[c.user]) b.add(ev.param_beta_after);
    (c.tolerance >= 5.0 ? tol_beta : sens_beta).add(b.mean());
  }
  if (!tol_beta.empty() && !sens_beta.empty()) {
    std::printf("\nmean beta, tolerant users (tolerance>=5s): %.3f vs sensitive: %.3f\n",
                tol_beta.mean(), sens_beta.mean());
    std::printf("(expect tolerant >= sensitive: the Fig. 15 classification behaviour)\n");
  }
  return match ? 0 : 1;
}
