// Figure 15: "The Details of User Updates to the ABR Parameter" (§5.5.2).
//
// Per-stall-event trajectories for four representative users — two with high
// stall tolerance, two stall-sensitive — showing stall time, whether the
// user exited, and the beta parameter after LingXi's update. Expected
// narrative: tolerant users stabilize in the upper beta range; sensitive
// users converge to the lower range, with dips after exit bursts.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "analytics/experiment.h"
#include "bench_util.h"
#include "common/running_stats.h"

using namespace lingxi;

int main() {
  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(222, 0.7);

  analytics::ExperimentConfig cfg;
  cfg.users = 60;
  cfg.days = 5;
  cfg.sessions_per_user_day = 12;
  cfg.intervention_day = 0;
  cfg.record_stall_events = true;
  cfg.network.median_bandwidth = 1200.0;  // stall-heavy
  cfg.network.relative_sd = 0.45;
  cfg.network.sigma = 0.4;
  cfg.lingxi.obo_rounds = 5;
  cfg.lingxi.monte_carlo.samples = 8;

  analytics::PopulationExperiment experiment(
      cfg, [] { return std::make_unique<abr::Hyb>(); },
      [&] { return predictor.make(); });
  const auto result = experiment.run(true, 4242);

  // Group stall events per user; keep users with enough events to plot.
  std::map<std::size_t, std::vector<analytics::StallEventRecord>> by_user;
  for (const auto& ev : result.stall_events) by_user[ev.user].push_back(ev);

  struct Candidate {
    std::size_t user;
    double tolerance;
    std::size_t events;
  };
  std::vector<Candidate> candidates;
  for (const auto& [user, events] : by_user) {
    if (events.size() >= 12) {
      candidates.push_back({user, events.front().user_tolerance, events.size()});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.tolerance > b.tolerance; });
  if (candidates.size() < 4) {
    std::printf("not enough stall-active users recorded (%zu)\n", candidates.size());
    return 1;
  }

  const Candidate picks[4] = {candidates.front(), candidates[1],
                              candidates[candidates.size() - 2], candidates.back()};
  const char* labels[4] = {"User 1 (high tolerance)", "User 2 (high tolerance)",
                           "User 3 (stall-sensitive)", "User 4 (stall-sensitive)"};

  for (int i = 0; i < 4; ++i) {
    bench::print_header(std::string("Figure 15: ") + labels[i]);
    const auto& events = by_user[picks[i].user];
    std::printf("ground-truth tolerance: %.1fs, %zu stall events\n", picks[i].tolerance,
                events.size());
    std::printf("%-8s %-12s %-10s %-8s\n", "event", "stall(s)", "beta", "exited");
    const std::size_t n = std::min<std::size_t>(events.size(), 18);
    RunningStats beta;
    for (std::size_t e = 0; e < n; ++e) {
      std::printf("%-8zu %-12.2f %-10.3f %-8s\n", e + 1, events[e].stall_time,
                  events[e].param_beta_after, events[e].exited ? "EXIT" : "-");
    }
    for (const auto& ev : events) beta.add(ev.param_beta_after);
    std::printf("mean beta across all events: %.3f\n", beta.mean());
  }

  // Aggregate check: tolerant half vs sensitive half.
  RunningStats tol_beta, sens_beta;
  for (const auto& c : candidates) {
    RunningStats b;
    for (const auto& ev : by_user[c.user]) b.add(ev.param_beta_after);
    (c.tolerance >= 5.0 ? tol_beta : sens_beta).add(b.mean());
  }
  if (!tol_beta.empty() && !sens_beta.empty()) {
    std::printf("\nmean beta, tolerant users (tolerance>=5s): %.3f vs sensitive: %.3f\n",
                tol_beta.mean(), sens_beta.mean());
    std::printf("(expect tolerant >= sensitive: the Fig. 15 classification behaviour)\n");
  }
  return 0;
}
