// Warm-start benchmark: resume a fleet from a day-D snapshot instead of
// re-simulating days [0, D) — the wall-time payoff of src/snapshot/.
//
// Protocol (default: 512-user LingXi fleet, D = K = 2):
//   1. full run      — simulate days [0, D+K) in one go, capture attached;
//   2. checkpoint    — simulate days [0, D), snapshot state + capture
//                      cursors to disk (manifest + framed shard state files);
//   3. warm start    — in "another process": load the snapshot, restore the
//                      capture, resume days [D, D+K) only.
//
// The resumed run must reproduce the full run bitwise — FleetAccumulator
// checksum AND telemetry archive bytes — or the bench exits non-zero (the
// scripts/ci.sh snapshot smoke runs it in Debug and Release). The figure of
// merit is wall(full) / wall(load + resume): the resumed leg skips
// ~D/(D+K) of the simulation, so at D = K the expected reduction is ~2x.
//
// Flags: --users N (default 512), --days N (total, default 4), --resume-at D
// (default days/2), --threads N (default 4), --dir PATH (snapshot directory,
// default ./warm-start-snapshot), --json PATH, --smoke (64-user fleet),
// --metrics-json PATH (obs registry snapshot: snapshot save/load stage
// timings and the fleet counters), --trace-out PATH (Chrome trace JSON).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "abr/hyb.h"
#include "bench_util.h"
#include "sim/fleet_runner.h"
#include "snapshot/snapshot.h"
#include "telemetry/capture.h"

using namespace lingxi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t users = 512;
  std::size_t days = 4;
  std::size_t resume_at = 0;  // 0 = days / 2
  std::size_t threads = 4;
  std::string dir = "warm-start-snapshot";
  const char* json_path = nullptr;
  std::string metrics_path;
  std::string trace_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--resume-at") == 0 && i + 1 < argc) {
      resume_at = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--users N] [--days N] [--resume-at D] [--threads N] "
                   "[--dir PATH] [--json PATH] [--metrics-json PATH] "
                   "[--trace-out PATH] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  const bench::ObsScope obs(metrics_path, trace_path);
  if (smoke) users = std::min<std::size_t>(users, 64);
  if (resume_at == 0) resume_at = days / 2;
  if (resume_at == 0 || resume_at >= days) {
    std::fprintf(stderr, "resume-at must be in [1, days)\n");
    return 2;
  }
  constexpr std::uint64_t kSeed = 2024;

  std::printf("training shared exit-rate predictor...\n");
  const auto trained = bench::train_predictor(91, smoke ? 0.1 : 0.25);
  const auto predictor_factory = [&] { return trained.make(); };

  // The Fig. 12 A/B treatment-arm shape: LingXi from day 0, stall-prone
  // world, per-user tolerance drift.
  sim::FleetConfig cfg;
  cfg.users = users;
  cfg.days = days;
  cfg.sessions_per_user_day = 8;
  cfg.threads = threads;
  cfg.users_per_shard = 16;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.network.median_bandwidth = 1500.0;
  cfg.network.sigma = 0.5;
  cfg.network.relative_sd = 0.35;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.lingxi.obo_rounds = 4;
  cfg.lingxi.monte_carlo.samples = 16;
  std::printf("fleet: %zu users x %zu days x %zu sessions, %zu threads, resume at day %zu\n",
              cfg.users, cfg.days, cfg.sessions_per_user_day, threads, resume_at);

  // --- 1. Full run [0, days), the cold-start reference. ---------------------
  bench::print_header("Full run (cold start)");
  sim::FleetRunner full_runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  full_runner.set_predictor_factory(predictor_factory);
  telemetry::ShardedCapture full_capture(telemetry::ShardedCapture::Config{64});
  full_runner.set_telemetry_sink(&full_capture);
  const auto full_start = std::chrono::steady_clock::now();
  const sim::FleetAccumulator full = full_runner.run(kSeed);
  const double full_wall = seconds_since(full_start);
  const telemetry::FleetArchive full_archive = full_capture.finish();
  std::printf("wall %.3fs, %llu sessions, %llu optimizations, checksum 0x%08x\n",
              full_wall, static_cast<unsigned long long>(full.sessions),
              static_cast<unsigned long long>(full.lingxi_optimizations), full.checksum());

  // --- 2. Checkpoint leg [0, D) -> snapshot directory. ----------------------
  bench::print_header("Checkpoint leg + snapshot save");
  std::filesystem::remove_all(dir);
  sim::FleetRunner leg_runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  leg_runner.set_predictor_factory(predictor_factory);
  telemetry::ShardedCapture leg_capture(telemetry::ShardedCapture::Config{64});
  leg_runner.set_telemetry_sink(&leg_capture);
  const auto leg_start = std::chrono::steady_clock::now();
  sim::FleetDayState state;
  leg_runner.run_days(kSeed, 0, resume_at, nullptr, &state);
  const double leg_wall = seconds_since(leg_start);
  const auto save_start = std::chrono::steady_clock::now();
  auto snap = snapshot::capture_snapshot(leg_runner, kSeed, std::move(state), &leg_capture);
  if (!snap) {
    std::fprintf(stderr, "capture_snapshot failed: %s\n", snap.error().message.c_str());
    return 1;
  }
  if (auto s = snapshot::save_snapshot(*snap, dir, 64); !s) {
    std::fprintf(stderr, "save_snapshot failed: %s\n", s.error().message.c_str());
    return 1;
  }
  const double save_wall = seconds_since(save_start);
  const std::uint64_t snapshot_bytes = dir_bytes(dir);
  std::printf("days [0, %zu) simulated in %.3fs; snapshot saved in %.3fs (%.2f MB -> %s)\n",
              resume_at, leg_wall, save_wall,
              static_cast<double>(snapshot_bytes) / 1e6, dir.c_str());

  // --- 3. Warm start: load + resume [D, days) in a fresh context. -----------
  bench::print_header("Warm start (load snapshot, resume)");
  const auto resume_start = std::chrono::steady_clock::now();
  auto loaded = snapshot::load_snapshot(dir);
  if (!loaded) {
    std::fprintf(stderr, "load_snapshot failed: %s\n", loaded.error().message.c_str());
    return 1;
  }
  if (auto s = snapshot::check_compatible(*loaded, cfg, kSeed); !s) {
    std::fprintf(stderr, "snapshot incompatible: %s\n", s.error().message.c_str());
    return 1;
  }
  const double load_wall = seconds_since(resume_start);
  sim::FleetRunner resumed_runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  resumed_runner.set_predictor_factory(
      snapshot::resume_predictor_factory(predictor_factory, loaded->net_model));
  telemetry::ShardedCapture resumed_capture(telemetry::ShardedCapture::Config{64});
  // Moving form: the loaded snapshot's cursor bytes are not needed again, so
  // the resumed capture adopts them without duplicating the archive.
  if (auto s = snapshot::restore_capture(resumed_capture, cfg, loaded->seed,
                                         std::move(loaded->capture));
      !s) {
    std::fprintf(stderr, "restore_capture failed: %s\n", s.error().message.c_str());
    return 1;
  }
  resumed_runner.set_telemetry_sink(&resumed_capture);
  const sim::FleetAccumulator resumed =
      resumed_runner.run_days(kSeed, resume_at, days, &loaded->state);
  const double resume_wall = seconds_since(resume_start);
  const telemetry::FleetArchive resumed_archive = resumed_capture.finish();
  std::printf("snapshot loaded in %.3fs; days [%zu, %zu) resumed; total warm wall %.3fs\n",
              load_wall, resume_at, days, resume_wall);

  // --- Verification + summary. ----------------------------------------------
  const bool checksum_match = resumed.checksum() == full.checksum();
  const bool archive_match = resumed_archive.checksum() == full_archive.checksum() &&
                             resumed_archive.shards == full_archive.shards;
  const double speedup = resume_wall > 0.0 ? full_wall / resume_wall : 0.0;
  const double skipped = static_cast<double>(resume_at) / static_cast<double>(days);

  bench::print_header("Warm-start summary");
  std::printf("%-26s %-12s %-12s %-10s\n", "run", "wall (s)", "days", "checksum");
  std::printf("%-26s %-12.3f [0, %zu)     0x%08x\n", "full (cold)", full_wall, days,
              full.checksum());
  std::printf("%-26s %-12.3f [%zu, %zu)     0x%08x\n", "resume (warm)", resume_wall,
              resume_at, days, resumed.checksum());
  std::printf("skipped %.0f%% of the calendar; wall-time reduction %.2fx\n",
              100.0 * skipped, speedup);
  std::printf("accumulator bitwise identical: %s\n",
              checksum_match ? "yes" : "NO — RESUME PARITY BUG");
  std::printf("archive bytes bitwise identical: %s\n",
              archive_match ? "yes" : "NO — RESUME PARITY BUG");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"smoke\": %s,\n"
                 "  \"users\": %zu,\n"
                 "  \"days\": %zu,\n"
                 "  \"resume_at\": %zu,\n"
                 "  \"threads\": %zu,\n"
                 "  \"full_wall_s\": %.4f,\n"
                 "  \"checkpoint_leg_wall_s\": %.4f,\n"
                 "  \"snapshot_save_s\": %.4f,\n"
                 "  \"snapshot_load_s\": %.4f,\n"
                 "  \"resume_wall_s\": %.4f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"calendar_skipped\": %.3f,\n"
                 "  \"snapshot_bytes\": %llu,\n"
                 "  \"checksum\": \"0x%08x\",\n"
                 "  \"checksums_match\": %s,\n"
                 "  \"archive_bytes_match\": %s\n"
                 "}\n",
                 smoke ? "true" : "false", users, days, resume_at, threads, full_wall,
                 leg_wall, save_wall, load_wall, resume_wall, speedup, skipped,
                 static_cast<unsigned long long>(snapshot_bytes), resumed.checksum(),
                 checksum_match ? "true" : "false", archive_match ? "true" : "false");
    std::fclose(f);
    std::printf("json summary written to %s\n", json_path);
  }

  if (!obs.write()) return 2;
  return checksum_match && archive_match ? 0 : 1;
}
