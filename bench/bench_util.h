// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "predictor/dataset.h"
#include "predictor/exit_net.h"
#include "predictor/hybrid.h"
#include "predictor/os_model.h"

namespace lingxi::bench {

/// Trained predictor components shared by the LingXi benches: an OS model
/// fitted on an ALL-segments synthetic log and a stall-exit net trained on
/// the balanced stall subset. Deterministic for a given seed.
struct TrainedPredictor {
  std::shared_ptr<predictor::StallExitNet> net;
  std::shared_ptr<predictor::OverallStatsModel> os_model;

  predictor::HybridExitPredictor make() const { return {net, os_model}; }
};

/// Train on a synthetic production log. `scale` multiplies the dataset size
/// (1.0 ~ a few thousand stall samples, trains in seconds).
TrainedPredictor train_predictor(std::uint64_t seed, double scale = 1.0);

/// Train on logs from a specific world: user behaviours supplied by
/// `user_factory`, network and video models as given. Mirrors fitting the
/// production predictor on production logs.
TrainedPredictor train_predictor_for_world(
    const std::function<std::unique_ptr<user::UserModel>(Rng&)>& user_factory,
    const trace::PopulationModel::Config& network,
    const trace::VideoGenerator::Config& video, std::uint64_t seed);

/// The benches' --metrics-json / --trace-out / --timeline-out / --slo
/// flags: owns a registry, tracer, timeline writer and health monitor (one
/// per requested output) and installs them as the process-global sinks for
/// the scope's lifetime; write() dumps the files. A timeline or SLO rules
/// imply a registry even without --metrics-json (the health plane reads
/// registry snapshots). With nothing requested the scope is a no-op and the
/// instrumented code runs on the disabled (single-branch) path.
class ObsScope {
 public:
  ObsScope(std::string metrics_path, std::string trace_path);
  ObsScope(std::string metrics_path, std::string trace_path, std::string timeline_path,
           std::vector<obs::SloRule> slo_rules);
  ~ObsScope();
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  /// Write whichever outputs were requested and close the timeline; false
  /// (with a stderr diagnostic) if a file cannot be written.
  bool write() const;

  /// True while no SLO rule has fired. Fired alerts are printed to stderr;
  /// benches turn false into a non-zero exit (the watchdog contract).
  bool slo_ok() const;

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string timeline_path_;
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::TimelineWriter> timeline_;
  std::unique_ptr<obs::HealthMonitor> monitor_;
};

/// Parse each `--slo` spec via obs::parse_slo_rule; on a malformed spec,
/// print the diagnostic to stderr and return false.
bool parse_slo_flags(const std::vector<std::string>& specs,
                     std::vector<obs::SloRule>& out);

/// Section header in bench output.
void print_header(const std::string& title);

/// "x y1 y2 ..." row printing with fixed precision.
void print_row(const std::vector<double>& values, int precision = 4);

}  // namespace lingxi::bench
