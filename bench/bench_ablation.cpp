// Ablation benches for the design choices called out in DESIGN.md / §4-§6:
//   1. Monte Carlo sample count vs decision quality (exit-rate estimate
//      variance) — why M need not be large;
//   2. virtual-playback pruning on/off — samples saved at equal decisions;
//   3. trigger threshold eta sweep — optimizations run vs stall outcome;
//   4. Bayesian optimization vs random search at equal budget.
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "bayesopt/obo.h"
#include "bench_util.h"
#include "common/running_stats.h"
#include "core/lingxi.h"
#include "sim/fleet_runner.h"
#include "sim/monte_carlo.h"
#include "trace/bandwidth.h"
#include "trace/video.h"

using namespace lingxi;

namespace {

void ablate_mc_samples(const bench::TrainedPredictor& predictor) {
  bench::print_header("Ablation 1: Monte Carlo sample count vs estimate spread");
  // Fixed user state and candidate; the exit-rate estimate across reruns
  // should tighten as M grows.
  predictor::EngagementState state;
  state.begin_session();
  for (int i = 0; i < 3; ++i) {
    sim::SegmentRecord seg;
    seg.bitrate = 750.0;
    seg.level = 1;
    seg.throughput = 900.0;
    seg.stall_time = 1.5;
    seg.cumulative_stall = 1.5 * (i + 1);
    seg.cumulative_stall_events = static_cast<std::size_t>(i + 1);
    state.on_segment(seg, 1.0);
  }
  std::printf("%-10s %-14s %-14s\n", "samples", "mean R_exit", "sd across runs");
  for (std::size_t samples : {2, 4, 8, 16, 32, 64}) {
    sim::MonteCarloConfig mc;
    mc.samples = samples;
    mc.enable_pruning = false;
    const sim::MonteCarloEvaluator eval(mc, {});
    const auto video = eval.make_virtual_video(trace::BitrateLadder::default_ladder(), 1.0);
    RunningStats runs;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      abr::Hyb hyb;
      predictor::PredictorExitModel exit_model(predictor.make(), state, 1.0);
      trace::NormalBandwidth bw(900.0, 300.0);
      Rng rng(seed);
      runs.add(eval.evaluate(video, hyb, exit_model, bw, 2.0,
                             std::numeric_limits<double>::infinity(), rng)
                   .exit_rate);
    }
    std::printf("%-10zu %-14.4f %-14.4f\n", samples, runs.mean(), runs.stddev());
  }
}

void ablate_pruning(const bench::TrainedPredictor& predictor) {
  bench::print_header("Ablation 2: virtual-playback pruning");
  for (bool pruning : {false, true}) {
    core::LingXiConfig cfg;
    cfg.space.optimize_beta = true;
    cfg.space.optimize_stall = false;
    cfg.space.optimize_switch = false;
    cfg.obo_rounds = 8;
    cfg.monte_carlo.samples = 16;
    cfg.monte_carlo.enable_pruning = pruning;

    const auto lingxi_predictor = predictor.make();
    core::LingXi lingxi(cfg, lingxi_predictor, trace::BitrateLadder::default_ladder());
    lingxi.begin_session();
    for (int i = 0; i < 5; ++i) {
      sim::SegmentRecord seg;
      seg.bitrate = 750.0;
      seg.level = 1;
      seg.throughput = 900.0;
      seg.stall_time = 1.2;
      lingxi.on_segment(seg);
    }
    abr::Hyb hyb;
    Rng rng(99);
    const auto params = lingxi.maybe_optimize(hyb, 2.0, rng);
    std::printf("pruning=%-5s beta=%.3f evaluations=%llu rollouts_pruned=%llu\n",
                pruning ? "on" : "off", params ? params->hyb_beta : -1.0,
                static_cast<unsigned long long>(lingxi.stats().mc_evaluations),
                static_cast<unsigned long long>(lingxi.stats().mc_rollouts_pruned));
  }
  std::printf("(pruned evaluations stop early yet the chosen beta should be similar)\n");
}

void ablate_trigger(const bench::TrainedPredictor& predictor) {
  bench::print_header("Ablation 3: trigger threshold eta");
  std::printf("%-6s %-16s %-16s %-14s %-14s\n", "eta", "optimizations",
              "adjusted u-days", "stall (s)", "watch (s)");
  for (std::size_t eta : {0, 1, 2, 4, 8}) {
    sim::FleetConfig fleet;
    fleet.users = 40;
    fleet.days = 3;
    fleet.sessions_per_user_day = 8;
    fleet.threads = 0;  // result is thread-count independent
    fleet.enable_lingxi = true;
    fleet.drift_user_tolerance = true;
    // Low-bandwidth, high-variability world: the eta sweep is only
    // informative when stalls actually happen.
    fleet.network.median_bandwidth = 1300.0;
    fleet.network.sigma = 0.5;
    fleet.network.relative_sd = 0.45;
    fleet.session_jitter_sigma = 0.4;
    // Match the production A/B setup (§5.3): search HYB's beta only.
    fleet.lingxi.space.optimize_stall = false;
    fleet.lingxi.space.optimize_switch = false;
    fleet.lingxi.space.optimize_beta = true;
    fleet.lingxi.trigger_stall_threshold = eta;
    fleet.lingxi.obo_rounds = 4;
    fleet.lingxi.monte_carlo.samples = 6;

    sim::FleetRunner runner(fleet, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory([&] { return predictor.make(); });
    const sim::FleetAccumulator result = runner.run(12345);
    std::printf("%-6zu %-16llu %-16llu %-14.1f %-14.1f\n", eta,
                static_cast<unsigned long long>(result.lingxi_optimizations),
                static_cast<unsigned long long>(result.adjusted_user_days),
                result.total_stall_time(), result.total_watch_time());
  }
  std::printf("(small eta = more frequent personalization; eta=2 is the paper's "
              "compromise)\n");
}

void ablate_bo_vs_random() {
  bench::print_header("Ablation 4: Bayesian optimization vs random search");
  // Optimize a synthetic exit-rate-like objective: smooth 2d bowl + noise.
  auto objective = [](double x, double y, Rng& rng) {
    return 0.3 * (x - 0.65) * (x - 0.65) + 0.2 * (y - 0.25) * (y - 0.25) +
           rng.normal(0.0, 0.002);
  };
  std::printf("%-10s %-16s %-16s\n", "budget", "BO best (mean)", "random best (mean)");
  for (int budget : {5, 10, 20}) {
    RunningStats bo, random_search;
    for (std::uint64_t trial = 0; trial < 20; ++trial) {
      Rng rng(trial * 31 + static_cast<std::uint64_t>(budget));
      bayesopt::OnlineBayesOpt obo(2);
      for (int i = 0; i < budget; ++i) {
        const auto x = obo.next_candidate(rng);
        obo.update(x, objective(x[0], x[1], rng));
      }
      bo.add(obo.best_value());

      Rng rng2(trial * 37 + static_cast<std::uint64_t>(budget));
      double best = 1e9;
      for (int i = 0; i < budget; ++i) {
        best = std::min(best, objective(rng2.uniform(), rng2.uniform(), rng2));
      }
      random_search.add(best);
    }
    std::printf("%-10d %-16.5f %-16.5f\n", budget, bo.mean(), random_search.mean());
  }
  std::printf("(BO should match or beat random search, increasingly so with budget)\n");
}

}  // namespace

int main() {
  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(333, 0.5);
  ablate_mc_samples(predictor);
  ablate_pruning(predictor);
  ablate_trigger(predictor);
  ablate_bo_vs_random();
  return 0;
}
