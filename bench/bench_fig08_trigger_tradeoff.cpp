// Figure 8: "Trade-offs between Stall Counts and Recall" (§4 Trigger).
//
//   (a) CDF of daily stall counts per bandwidth bucket — stalls are rare in
//       high-bandwidth segments (>95% stall-free above 4 Mbps);
//   (b) predictor recall vs the number of accumulated stall events in the
//       user's history — recall improves with history, with a notable jump
//       between one and two events; the paper picks eta = 2.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "abr/hyb.h"
#include "bench_util.h"
#include "predictor/dataset.h"
#include "sim/session.h"
#include "stats/ecdf.h"
#include "trace/population.h"
#include "trace/video.h"

using namespace lingxi;

int main() {
  Rng rng(19);

  bench::print_header("Figure 8(a): daily stall count CDF per bandwidth bucket");
  const trace::VideoGenerator videos({});
  const sim::SessionSimulator simulator({});
  constexpr std::size_t kBuckets = 6;
  std::vector<std::vector<double>> bucket_counts(kBuckets);

  const int kUsers = 2400;
  trace::PopulationModel::Config netcfg;
  netcfg.median_bandwidth = 6000.0;
  netcfg.sigma = 1.0;  // wide spread so every bucket is populated
  const trace::PopulationModel networks(netcfg);
  for (int u = 0; u < kUsers; ++u) {
    const auto profile = networks.sample(rng);
    abr::Hyb hyb;
    std::size_t stalls = 0;
    for (int s = 0; s < 10; ++s) {  // one simulated day
      const trace::Video video = videos.sample(rng);
      auto bw = profile.make_session_model();
      stalls += simulator.run(video, hyb, *bw, nullptr, rng).stall_events;
    }
    bucket_counts[trace::bandwidth_bucket(profile.mean_bandwidth)].push_back(
        static_cast<double>(stalls));
  }
  std::printf("%-12s", "stalls<=");
  for (std::size_t b = 0; b < kBuckets; ++b) {
    std::printf("%-14s", trace::bucket_label(b).c_str());
  }
  std::printf("\n");
  for (int c : {0, 1, 2, 4, 6, 8, 10}) {
    std::printf("%-12d", c);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (bucket_counts[b].empty()) {
        std::printf("%-14s", "-");
      } else {
        const stats::Ecdf cdf(bucket_counts[b]);
        std::printf("%-14.3f", cdf(static_cast<double>(c)));
      }
    }
    std::printf("\n");
  }

  bench::print_header("Figure 8(b): recall vs accumulated stall events");
  // Train on the stall dataset, then evaluate recall on test samples
  // bucketed by how many stall events the user had accumulated (the fill
  // level of the stall-history channel).
  predictor::DatasetGenConfig gen;
  gen.users = 60;
  gen.sessions_per_user = 30;
  gen.filter = predictor::DatasetFilter::kStall;
  auto dataset = predictor::generate_dataset(gen, rng);
  auto balanced = predictor::balance(dataset, rng);
  auto split = predictor::stratified_split(balanced, 0.8, rng);
  predictor::StallExitNet net(rng);
  predictor::TrainConfig tcfg;
  tcfg.epochs = 8;
  predictor::train_exit_net(net, split.train, tcfg, rng);

  // Measure recall when the model only sees the user's last k stall events:
  // truncate the long-term channels (stall durations / intervals /
  // stall-exit intervals) of every test sample to its most recent k entries.
  // This is exactly the operating point of a user who has accumulated only
  // k stall events when LingXi triggers.
  std::printf("%-14s %-10s %-10s\n", "stall events", "recall", "exit samples");
  for (std::size_t k = 1; k <= predictor::kHistoryLen; ++k) {
    std::size_t tp = 0, fn = 0;
    for (const auto& s : split.test.samples) {
      if (!s.exited) continue;
      nn::Tensor f = s.features;
      for (std::size_t ch = 2; ch < predictor::kChannels; ++ch) {
        for (std::size_t i = 0; i + k < predictor::kHistoryLen; ++i) f.at(ch, i) = 0.0;
      }
      const bool hit = net.predict(f) >= 0.5;
      tp += hit ? 1 : 0;
      fn += hit ? 0 : 1;
    }
    const double recall = (tp + fn) > 0
                              ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                              : 0.0;
    std::printf("%-14zu %-10.3f %-10zu\n", k, recall, tp + fn);
  }
  std::printf("\nDeployment choice: eta = 2 — the paper's compromise between recall\n"
              "and how long a user must be observed before personalization starts.\n");
  return 0;
}
