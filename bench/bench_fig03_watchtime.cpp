// Figure 3: "The Impact of QoS Metrics on Watch Time" (§2.2).
//
//   (a) normalized watch time by video quality tier — watch time is a noisy,
//       long-horizon metric, so the per-tier ordering is weak;
//   (b) normalized watch time vs stall time (s per 10000s) — decreasing, but
//       with substantial scatter. This motivates the exit rate as the
//       fine-grained QoE metric.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "abr/hyb.h"
#include "analytics/metrics.h"
#include "bench_util.h"
#include "sim/session.h"
#include "stats/descriptive.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/user_population.h"

using namespace lingxi;

namespace {

/// Fixed-level selector: pins playback to one quality tier.
class FixedLevel final : public sim::BitrateSelector {
 public:
  explicit FixedLevel(std::size_t level) : level_(level) {}
  std::size_t select(const sim::AbrObservation&) override { return level_; }

 private:
  std::size_t level_;
};

}  // namespace

int main() {
  bench::print_header("Figure 3(a): watch time by video quality tier");
  const trace::PopulationModel networks;
  const trace::VideoGenerator videos({});
  const user::UserPopulation population;
  const sim::SessionSimulator simulator({});
  Rng rng(11);

  std::vector<double> tier_watch(4, 0.0);
  const int kUsersPerTier = 400;
  for (std::size_t tier = 0; tier < 4; ++tier) {
    analytics::MetricAccumulator acc;
    Rng tier_rng(100 + tier);  // same users per tier for pairing
    for (int u = 0; u < kUsersPerTier; ++u) {
      const auto profile = networks.sample(tier_rng);
      auto user_model = population.sample(tier_rng);
      FixedLevel abr(tier);
      for (int s = 0; s < 4; ++s) {
        const trace::Video video = videos.sample(tier_rng);
        auto bw = profile.make_session_model();
        acc.add(simulator.run(video, abr, *bw, user_model.get(), tier_rng));
      }
    }
    tier_watch[tier] = acc.total_watch_time();
  }
  const double max_watch = stats::max(tier_watch);
  std::printf("%-10s %-18s\n", "tier", "norm. watch time");
  const char* tiers[4] = {"LD", "SD", "HD", "Full HD"};
  for (std::size_t t = 0; t < 4; ++t) {
    std::printf("%-10s %-18.4f\n", tiers[t], tier_watch[t] / max_watch);
  }

  bench::print_header("Figure 3(b): watch time vs stall time (s/10000s)");
  // Bucket users by their stall density and report mean normalized watch.
  struct UserPoint {
    double stall_per_10k;
    double watch;
  };
  std::vector<UserPoint> points;
  const int kUsers = 4000;
  trace::PopulationModel::Config lowcfg;
  lowcfg.median_bandwidth = 3000.0;  // include enough stall-prone users
  lowcfg.sigma = 0.9;
  lowcfg.relative_sd = 0.35;
  const trace::PopulationModel stall_networks(lowcfg);
  for (int u = 0; u < kUsers; ++u) {
    const auto profile = stall_networks.sample(rng);
    auto user_model = population.sample(rng);
    abr::Hyb abr;  // the production algorithm, so stall density varies smoothly
    analytics::MetricAccumulator acc;
    for (int s = 0; s < 5; ++s) {
      const trace::Video video = videos.sample(rng);
      auto bw = profile.make_session_model();
      acc.add(simulator.run(video, abr, *bw, user_model.get(), rng));
    }
    points.push_back({acc.stall_per_10k(), acc.total_watch_time()});
  }
  // Bin by stall density 0..30 s/10000s (paper's x-range).
  const int kBins = 10;
  std::vector<double> bin_watch(kBins, 0.0);
  std::vector<int> bin_count(kBins, 0);
  for (const auto& p : points) {
    int b = static_cast<int>(p.stall_per_10k / 3.0);
    if (b >= kBins) b = kBins - 1;
    bin_watch[b] += p.watch;
    ++bin_count[b];
  }
  // Normalize to the stall-free bin (the paper's y-axis anchor).
  const double norm = bin_count[0] > 0 ? bin_watch[0] / bin_count[0] : 1.0;
  std::printf("%-22s %-18s %-8s\n", "stall (s/10000s)", "norm. watch time", "users");
  for (int b = 0; b < kBins; ++b) {
    if (bin_count[b] < 20) continue;  // suppress noise-only bins
    std::printf("%5.1f - %-13.1f %-18.4f %-8d\n", b * 3.0, (b + 1) * 3.0,
                (bin_watch[b] / bin_count[b]) / norm, bin_count[b]);
  }
  std::printf("\nTakeaway: watch time responds to stalls but is noisy — the paper's\n"
              "argument for the segment-level exit rate as the QoE metric.\n");
  return 0;
}
