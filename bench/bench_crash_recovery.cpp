// Crash/recovery driver: kill a checkpointing fleet mid-run (or mid-commit)
// and prove the resumed run is bitwise identical to one that never crashed.
//
// Three modes, designed to be run as separate processes (scripts/ci.sh does,
// with a real `kill -9` window; the --kill-* flags raise SIGKILL from inside
// the snapshot commit hook for surgically placed crashes):
//
//   --reference --json P
//       Uninterrupted run over the full calendar, capture attached. Emits
//       the FleetAccumulator checksum and archive checksum to P.
//
//   --run --root DIR --every K [--kill-at-checkpoint N]
//         [--kill-during-commit STAGE]
//       Run with an AutoCheckpointer cutting a checkpoint every K days into
//       DIR. --kill-at-checkpoint N raises SIGKILL right after the Nth
//       checkpoint commits (mid-day-crash coverage); --kill-during-commit
//       STAGE (state-files | manifest | durable | committed, applied to the
//       Nth checkpoint, N defaulting to 1) raises SIGKILL inside the commit
//       protocol itself (torn-commit coverage). Without kill flags the run
//       completes and reports its own parity.
//
//   --resume --root DIR --json P [--expect-checksum 0xC]
//            [--expect-archive-checksum 0xA]
//       Recover via snapshot::find_latest_valid, resume to the horizon, and
//       exit non-zero unless the accumulator checksum AND archive checksum
//       match the expectations (from the --reference JSON).
//
// Shared flags: --users N (default 512), --days N (default 6), --threads N
// (default 4), --smoke (64-user fleet, cheap predictor training).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "abr/hyb.h"
#include "bench_util.h"
#include "sim/fleet_runner.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"
#include "telemetry/capture.h"

using namespace lingxi;

namespace {

constexpr std::uint64_t kSeed = 2024;

// Commit-hook kill plan (file-scope: SaveCommitHook is a plain function
// pointer). kill_during_stage < 0 means "kill after commit N", else kill at
// that SaveStage of the Nth save.
int g_kill_at_save = 0;
int g_kill_during_stage = -1;
int g_saves_started = 0;
int g_saves_committed = 0;

bool kill_hook(snapshot::SaveStage stage) {
  if (stage == snapshot::SaveStage::kStateFilesStaged) ++g_saves_started;
  if (g_kill_during_stage >= 0 && g_saves_started == g_kill_at_save &&
      stage == static_cast<snapshot::SaveStage>(g_kill_during_stage)) {
    std::raise(SIGKILL);
  }
  if (stage == snapshot::SaveStage::kCommitted) {
    ++g_saves_committed;
    if (g_kill_during_stage < 0 && g_kill_at_save > 0 &&
        g_saves_committed == g_kill_at_save) {
      std::raise(SIGKILL);
    }
  }
  return true;
}

int parse_stage(const char* name) {
  if (std::strcmp(name, "state-files") == 0) return 0;
  if (std::strcmp(name, "manifest") == 0) return 1;
  if (std::strcmp(name, "durable") == 0) return 2;
  if (std::strcmp(name, "committed") == 0) return 3;
  return -1;
}

// The Fig. 12 treatment-arm fleet shape shared by every mode — the three
// processes must agree on every result-shaping knob for parity to hold.
sim::FleetConfig make_config(std::size_t users, std::size_t days, std::size_t threads) {
  sim::FleetConfig cfg;
  cfg.users = users;
  cfg.days = days;
  cfg.sessions_per_user_day = 8;
  cfg.threads = threads;
  cfg.users_per_shard = 16;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.network.median_bandwidth = 1500.0;
  cfg.network.sigma = 0.5;
  cfg.network.relative_sd = 0.35;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.lingxi.obo_rounds = 4;
  cfg.lingxi.monte_carlo.samples = 16;
  return cfg;
}

int write_json(const char* path, std::uint32_t checksum, std::uint32_t archive_checksum,
               bool match) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 2;
  }
  std::fprintf(f,
               "{\n"
               "  \"checksum\": \"0x%08x\",\n"
               "  \"archive_checksum\": \"0x%08x\",\n"
               "  \"match\": %s\n"
               "}\n",
               checksum, archive_checksum, match ? "true" : "false");
  std::fclose(f);
  std::printf("json summary written to %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kNone, kReference, kRun, kResume };
  Mode mode = Mode::kNone;
  std::size_t users = 512;
  std::size_t days = 6;
  std::size_t threads = 4;
  std::size_t every = 2;
  std::string root = "crash-recovery-checkpoints";
  const char* json_path = nullptr;
  std::uint32_t expect_checksum = 0;
  std::uint32_t expect_archive = 0;
  bool have_expect_checksum = false;
  bool have_expect_archive = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reference") == 0) {
      mode = Mode::kReference;
    } else if (std::strcmp(argv[i], "--run") == 0) {
      mode = Mode::kRun;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      mode = Mode::kResume;
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--every") == 0 && i + 1 < argc) {
      every = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--kill-at-checkpoint") == 0 && i + 1 < argc) {
      g_kill_at_save = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--kill-during-commit") == 0 && i + 1 < argc) {
      g_kill_during_stage = parse_stage(argv[++i]);
      if (g_kill_during_stage < 0) {
        std::fprintf(stderr,
                     "--kill-during-commit wants state-files|manifest|durable|committed\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--expect-checksum") == 0 && i + 1 < argc) {
      expect_checksum = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
      have_expect_checksum = true;
    } else if (std::strcmp(argv[i], "--expect-archive-checksum") == 0 && i + 1 < argc) {
      expect_archive = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
      have_expect_archive = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s (--reference | --run | --resume) [--root DIR] [--every K]\n"
                   "       [--kill-at-checkpoint N] [--kill-during-commit STAGE]\n"
                   "       [--expect-checksum 0xC] [--expect-archive-checksum 0xA]\n"
                   "       [--users N] [--days N] [--threads N] [--json PATH] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  if (mode == Mode::kNone) {
    std::fprintf(stderr, "pick a mode: --reference, --run or --resume\n");
    return 2;
  }
  if (smoke) users = std::min<std::size_t>(users, 64);
  if (g_kill_during_stage >= 0 && g_kill_at_save == 0) g_kill_at_save = 1;

  std::printf("training shared exit-rate predictor...\n");
  const auto trained = bench::train_predictor(91, smoke ? 0.1 : 0.25);
  const auto predictor_factory = [&] { return trained.make(); };
  const sim::FleetConfig cfg = make_config(users, days, threads);
  std::printf("fleet: %zu users x %zu days x %zu sessions, %zu threads\n", cfg.users,
              cfg.days, cfg.sessions_per_user_day, threads);

  if (mode == Mode::kReference) {
    bench::print_header("Reference run (never interrupted)");
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory(predictor_factory);
    telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{64});
    runner.set_telemetry_sink(&capture);
    const sim::FleetAccumulator acc = runner.run(kSeed);
    const telemetry::FleetArchive archive = capture.finish();
    if (acc.has_overflow()) {
      std::fprintf(stderr, "accumulator overflow latched — totals saturated\n");
      return 1;
    }
    std::printf("checksum 0x%08x, archive checksum 0x%08x\n", acc.checksum(),
                archive.checksum());
    if (json_path != nullptr) {
      return write_json(json_path, acc.checksum(), archive.checksum(), true);
    }
    return 0;
  }

  if (mode == Mode::kRun) {
    bench::print_header("Checkpointing run (crash target)");
    if (every == 0) {
      std::fprintf(stderr, "--every must be >= 1\n");
      return 2;
    }
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory(predictor_factory);
    telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{64});
    runner.set_telemetry_sink(&capture);
    snapshot::AutoCheckpointer ckpt(
        runner, kSeed, {root, every, /*retain=*/2, /*users_per_shard=*/64}, &capture);
    ckpt.arm(runner);
    if (g_kill_at_save > 0) snapshot::set_save_commit_hook(&kill_hook);
    std::printf("checkpoint every %zu days into %s", every, root.c_str());
    if (g_kill_at_save > 0) {
      static const char* kStageNames[] = {"state-files", "manifest", "durable",
                                          "committed"};
      if (g_kill_during_stage >= 0) {
        std::printf("; SIGKILL armed at checkpoint %d, commit stage %s", g_kill_at_save,
                    kStageNames[g_kill_during_stage]);
      } else {
        std::printf("; SIGKILL armed after checkpoint %d commits", g_kill_at_save);
      }
    }
    std::printf("\n");
    const sim::FleetAccumulator acc = runner.run_days(kSeed, 0, days, nullptr, nullptr);
    // Only reached when no kill fired (or none was armed).
    const telemetry::FleetArchive archive = capture.finish();
    if (!ckpt.status()) {
      std::fprintf(stderr, "checkpointing failed: %s\n",
                   ckpt.status().error().message.c_str());
      return 1;
    }
    if (acc.has_overflow()) {
      std::fprintf(stderr, "accumulator overflow latched — totals saturated\n");
      return 1;
    }
    std::printf("run completed uninterrupted: %zu checkpoints, checksum 0x%08x, "
                "archive checksum 0x%08x\n",
                ckpt.checkpoints_committed(), acc.checksum(), archive.checksum());
    if (json_path != nullptr) {
      return write_json(json_path, acc.checksum(), archive.checksum(), true);
    }
    return 0;
  }

  // --- Mode::kResume ---------------------------------------------------------
  bench::print_header("Recovery (find_latest_valid + resume)");
  auto recovered = snapshot::find_latest_valid(root);
  if (!recovered) {
    std::fprintf(stderr, "recovery failed: %s\n", recovered.error().message.c_str());
    return 1;
  }
  std::printf("recovered day-%zu checkpoint from %s\n",
              recovered->snapshot.state.next_day, recovered->dir.c_str());
  if (auto s = snapshot::check_compatible(recovered->snapshot, cfg, kSeed); !s) {
    std::fprintf(stderr, "checkpoint incompatible: %s\n", s.error().message.c_str());
    return 1;
  }
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory(
      snapshot::resume_predictor_factory(predictor_factory, recovered->snapshot.net_model));
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{64});
  if (auto s = snapshot::restore_capture(capture, cfg, recovered->snapshot.seed,
                                         std::move(recovered->snapshot.capture));
      !s) {
    std::fprintf(stderr, "restore_capture failed: %s\n", s.error().message.c_str());
    return 1;
  }
  runner.set_telemetry_sink(&capture);
  const std::size_t resume_day = recovered->snapshot.state.next_day;
  const sim::FleetAccumulator acc =
      runner.run_days(kSeed, resume_day, days, &recovered->snapshot.state);
  const telemetry::FleetArchive archive = capture.finish();
  if (acc.has_overflow()) {
    std::fprintf(stderr, "accumulator overflow latched — totals saturated\n");
    return 1;
  }
  const bool checksum_match = !have_expect_checksum || acc.checksum() == expect_checksum;
  const bool archive_match = !have_expect_archive || archive.checksum() == expect_archive;
  std::printf("resumed days [%zu, %zu): checksum 0x%08x, archive checksum 0x%08x\n",
              resume_day, days, acc.checksum(), archive.checksum());
  if (have_expect_checksum) {
    std::printf("accumulator bitwise identical to reference: %s\n",
                checksum_match ? "yes" : "NO — RECOVERY PARITY BUG");
  }
  if (have_expect_archive) {
    std::printf("archive bytes bitwise identical to reference: %s\n",
                archive_match ? "yes" : "NO — RECOVERY PARITY BUG");
  }
  int rc = checksum_match && archive_match ? 0 : 1;
  if (json_path != nullptr) {
    const int jrc =
        write_json(json_path, acc.checksum(), archive.checksum(), rc == 0);
    if (rc == 0) rc = jrc;
  }
  return rc;
}
