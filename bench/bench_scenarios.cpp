// Scenario driver: the canonical "CDN brownout + flash crowd + churn"
// script end to end on an A/B fleet, with every determinism claim of the
// scenario layer verified bitwise in one invocation:
//
//   1. empty-script parity — a run with an explicitly empty script must be
//      byte-for-byte (accumulator checksum + archive bytes) the unscripted
//      run;
//   2. grid determinism — the scripted run must reproduce the same
//      accumulator checksum and archive bytes across scheduler mode,
//      threads, users_per_shard and predictor_batch;
//   3. checkpoint/kill/resume — a forked child auto-checkpoints the
//      scripted run and SIGKILLs itself inside the commit that lands on the
//      churn day; the parent recovers via find_latest_valid and resumes
//      through the event days, and the spliced run must match the
//      uninterrupted reference bitwise;
//   4. analytics — both arms of the scripted A/B experiment are summarized
//      into per-event difference-in-differences windows and per-cohort
//      Fig. 13-style buckets (analytics/scenario_report).
//
// Exits non-zero when ANY bitwise check fails. Flags:
//   --users N --days N --threads N   fleet shape (defaults 192 x 9 x 4)
//   --smoke                          64-user / 6-day fleet, cheap training
//   --json PATH                      machine-readable summary + report
//   --metrics-json PATH              obs registry snapshot (bench_util)
//   --timeline-out PATH              per-day health timeline (obs/timeline)
//   --slo SPEC                       kind:metric:threshold[:name] SLO rule,
//                                    repeatable; a fired rule exits 3
//   --archive-dir PATH               keep the scripted reference archive
//   --root PATH                      checkpoint root for the kill leg
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "abr/hyb.h"
#include "analytics/scenario_report.h"
#include "bench_util.h"
#include "obs/timeline.h"
#include "scenario/scenario.h"
#include "sim/fleet_runner.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"
#include "telemetry/capture.h"

using namespace lingxi;

namespace {

constexpr std::uint64_t kSeed = 2025;

// Kill plan for the checkpoint leg (file-scope: SaveCommitHook is a plain
// function pointer): SIGKILL inside the N-th save once its staging is
// durable — the commit landed on disk but was never renamed.
int g_kill_at_save = 0;
int g_saves_started = 0;

bool kill_hook(snapshot::SaveStage stage) {
  if (stage == snapshot::SaveStage::kStateFilesStaged) ++g_saves_started;
  if (g_saves_started == g_kill_at_save &&
      stage == snapshot::SaveStage::kStagingDurable) {
    std::raise(SIGKILL);
  }
  return true;
}

// The treatment-arm fleet shape shared by every leg. Every result-shaping
// knob must agree across legs for the parity checks to mean anything;
// scheduler / threads / users_per_shard / predictor_batch are the knobs the
// grid sweeps.
sim::FleetConfig make_fleet_config(std::size_t users, std::size_t days,
                                   std::size_t threads,
                                   const scenario::ScenarioScript& script) {
  sim::FleetConfig cfg;
  cfg.users = users;
  cfg.days = days;
  cfg.sessions_per_user_day = 8;
  cfg.threads = threads;
  cfg.users_per_shard = 16;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.network.median_bandwidth = 1500.0;
  cfg.network.sigma = 0.5;
  cfg.network.relative_sd = 0.35;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.lingxi.obo_rounds = 4;
  cfg.lingxi.monte_carlo.samples = 16;
  cfg.scenario = script;
  return cfg;
}

struct RunResult {
  sim::FleetAccumulator acc;
  telemetry::FleetArchive archive;
};

RunResult run_fleet(const sim::FleetConfig& cfg,
                    const std::function<predictor::HybridExitPredictor()>& factory) {
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory(factory);
  telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{16});
  runner.set_telemetry_sink(&capture);
  RunResult result;
  result.acc = runner.run(kSeed);
  result.archive = capture.finish();
  return result;
}

bool archives_identical(const telemetry::FleetArchive& a,
                        const telemetry::FleetArchive& b) {
  if (a.checksum() != b.checksum() || a.shards.size() != b.shards.size()) return false;
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    if (!(a.shards[s] == b.shards[s])) return false;
  }
  return true;
}

const char* verdict(bool ok) { return ok ? "yes" : "NO — PARITY BUG"; }

}  // namespace

int main(int argc, char** argv) {
  std::size_t users = 192;
  std::size_t days = 9;
  std::size_t threads = 4;
  bool smoke = false;
  const char* json_path = nullptr;
  std::string metrics_path;
  std::string timeline_path;
  std::vector<std::string> slo_specs;
  std::string archive_dir;
  std::string root = "scenario-checkpoints";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeline-out") == 0 && i + 1 < argc) {
      timeline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slo") == 0 && i + 1 < argc) {
      slo_specs.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--archive-dir") == 0 && i + 1 < argc) {
      archive_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--users N] [--days N] [--threads N] [--smoke]\n"
                   "       [--json PATH] [--metrics-json PATH] [--timeline-out PATH]\n"
                   "       [--slo SPEC] [--archive-dir PATH] [--root PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    users = std::min<std::size_t>(users, 64);
    days = std::min<std::size_t>(days, 6);
  }
  if (users < 8 || days < 3) {
    std::fprintf(stderr, "canonical script needs --users >= 8 and --days >= 3\n");
    return 2;
  }

  std::vector<obs::SloRule> slo_rules;
  if (!bench::parse_slo_flags(slo_specs, slo_rules)) return 2;
  const bench::ObsScope obs(metrics_path, "", timeline_path, std::move(slo_rules));

  const scenario::ScenarioScript script = scenario::canonical_script(users, days);
  if (const Status valid = script.validate(users, days); !valid) {
    std::fprintf(stderr, "canonical script invalid: %s\n",
                 valid.error().message.c_str());
    return 2;
  }
  const std::size_t churn_day = script.churns.front().day;
  std::size_t departures = 0;
  for (std::size_t u = 0; u < users; ++u) {
    departures += script.generations_through(u, days - 1);
  }

  std::printf("training shared exit-rate predictor...\n");
  const auto trained = bench::train_predictor(91, smoke ? 0.1 : 0.25);
  const auto predictor_factory = [&] { return trained.make(); };
  std::printf("fleet: %zu users x %zu days x 8 sessions, %zu threads\n", users, days,
              threads);
  std::printf("script: brownout days [%zu, %zu), flash crowd day %zu, churn day %zu "
              "(%zu departures), 7-day diurnal curve, mobile cohort\n",
              script.shocks.front().first_day, script.shocks.front().last_day,
              script.flash_crowds.front().arrival_day, churn_day, departures);

  // --- 1. Empty-script parity ----------------------------------------------
  bench::print_header("Empty-script parity (scenario layer off == absent)");
  const sim::FleetConfig plain_cfg = make_fleet_config(users, days, threads, {});
  const RunResult unscripted = run_fleet(plain_cfg, predictor_factory);
  const RunResult empty_scripted = run_fleet(plain_cfg, predictor_factory);
  const bool empty_parity =
      unscripted.acc.checksum() == empty_scripted.acc.checksum() &&
      archives_identical(unscripted.archive, empty_scripted.archive);
  std::printf("unscripted checksum 0x%08x, archive 0x%08x — byte-identical: %s\n",
              unscripted.acc.checksum(), unscripted.archive.checksum(),
              verdict(empty_parity));

  // --- 2. Scripted grid determinism ----------------------------------------
  bench::print_header("Scenario-on grid determinism (canonical script)");
  sim::FleetConfig ref_cfg = make_fleet_config(users, days, threads, script);
  const RunResult reference = run_fleet(ref_cfg, predictor_factory);
  const bool churn_fired = reference.acc.users == users + departures;
  std::printf("reference checksum 0x%08x, archive 0x%08x, %llu sessions, "
              "%llu user summaries (churn fired: %s)\n",
              reference.acc.checksum(), reference.archive.checksum(),
              static_cast<unsigned long long>(reference.acc.sessions),
              static_cast<unsigned long long>(reference.acc.users),
              verdict(churn_fired));

  struct GridCase {
    sim::SchedulerMode mode;
    std::size_t threads;
    std::size_t users_per_shard;
    std::size_t batch;
  };
  const GridCase grid[] = {
      {sim::SchedulerMode::kPerUser, 1, ref_cfg.users_per_shard, 0},
      {sim::SchedulerMode::kPerUser, threads, 1, 7},
      {sim::SchedulerMode::kCohortWaves, 1, 4, 0},
      {sim::SchedulerMode::kCohortWaves, threads, ref_cfg.users_per_shard, 64},
  };
  bool grid_match = true;
  for (const GridCase& c : grid) {
    sim::FleetConfig cfg = ref_cfg;
    cfg.scheduler = c.mode;
    cfg.threads = c.threads;
    cfg.users_per_shard = c.users_per_shard;
    cfg.predictor_batch = c.batch;
    const RunResult r = run_fleet(cfg, predictor_factory);
    const bool ok = r.acc.checksum() == reference.acc.checksum() &&
                    archives_identical(r.archive, reference.archive);
    grid_match = grid_match && ok;
    std::printf("  scheduler=%s threads=%zu users_per_shard=%zu batch=%zu: %s\n",
                c.mode == sim::SchedulerMode::kPerUser ? "per-user" : "cohort-waves",
                c.threads, c.users_per_shard, c.batch, verdict(ok));
  }

  // --- 3. Checkpoint / SIGKILL / resume through the churn day ---------------
  bench::print_header("Checkpoint + SIGKILL + resume through the event days");
  std::filesystem::remove_all(root);
  const pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "fork failed\n");
    return 1;
  }
  if (pid == 0) {
    // Child: checkpoint every day; die inside the commit whose staging
    // covers days [0, churn_day) — the resumed leg must replay the churn.
    // The child inherits the parent's installed TimelineWriter along with
    // its open descriptor and shared file offset; uninstall it so the
    // doomed leg's day records (and its torn final write) never interleave
    // with the parent's timeline frames.
    obs::TimelineWriter::install(nullptr);
    g_kill_at_save = static_cast<int>(churn_day);
    g_saves_started = 0;
    snapshot::set_save_commit_hook(&kill_hook);
    sim::FleetRunner runner(ref_cfg, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory(predictor_factory);
    telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{16});
    runner.set_telemetry_sink(&capture);
    snapshot::AutoCheckpointer ckpt(
        runner, kSeed, {root, /*every_k_days=*/1, /*retain=*/2, /*users_per_shard=*/16},
        &capture);
    ckpt.arm(runner);
    runner.run_days(kSeed, 0, days, nullptr, nullptr);
    _exit(7);  // only reached if the kill never fired
  }
  int wstatus = 0;
  bool resume_match = false;
  std::size_t resume_day = 0;
  std::uint32_t resumed_checksum = 0;
  if (waitpid(pid, &wstatus, 0) != pid || !WIFSIGNALED(wstatus) ||
      WTERMSIG(wstatus) != SIGKILL) {
    std::fprintf(stderr, "checkpointing child did not die by SIGKILL as planned\n");
  } else {
    std::printf("child killed inside the day-%zu commit; recovering from %s\n",
                churn_day, root.c_str());
    auto recovered = snapshot::find_latest_valid(root);
    if (!recovered) {
      std::fprintf(stderr, "recovery failed: %s\n", recovered.error().message.c_str());
    } else {
      resume_day = recovered->snapshot.state.next_day;
      std::printf("recovered day-%zu checkpoint (churn replays %s resume)\n",
                  resume_day, resume_day <= churn_day ? "after" : "before");
      if (auto s = snapshot::check_compatible(recovered->snapshot, ref_cfg, kSeed); !s) {
        std::fprintf(stderr, "checkpoint incompatible: %s\n",
                     s.error().message.c_str());
      } else {
        sim::FleetRunner runner(ref_cfg, [] { return std::make_unique<abr::Hyb>(); });
        runner.set_predictor_factory(snapshot::resume_predictor_factory(
            predictor_factory, recovered->snapshot.net_model));
        telemetry::ShardedCapture capture(telemetry::ShardedCapture::Config{16});
        if (auto s = snapshot::restore_capture(capture, ref_cfg,
                                               recovered->snapshot.seed,
                                               std::move(recovered->snapshot.capture));
            !s) {
          std::fprintf(stderr, "restore_capture failed: %s\n",
                       s.error().message.c_str());
        } else {
          runner.set_telemetry_sink(&capture);
          const sim::FleetAccumulator resumed =
              runner.run_days(kSeed, resume_day, days, &recovered->snapshot.state);
          const telemetry::FleetArchive resumed_archive = capture.finish();
          resumed_checksum = resumed.checksum();
          resume_match = resumed.checksum() == reference.acc.checksum() &&
                         archives_identical(resumed_archive, reference.archive);
          std::printf("resumed days [%zu, %zu): checksum 0x%08x — bitwise identical "
                      "to uninterrupted run: %s\n",
                      resume_day, days, resumed.checksum(), verdict(resume_match));
        }
      }
    }
  }

  // --- 4. A/B analytics: DiD windows + cohort buckets -----------------------
  bench::print_header("Scenario analytics (paired A/B, DiD per event window)");
  analytics::ExperimentConfig exp_cfg;
  exp_cfg.users = users;
  exp_cfg.days = days;
  exp_cfg.sessions_per_user_day = 8;
  exp_cfg.intervention_day = 0;  // post-deploy view: LingXi live from day 0
  exp_cfg.threads = threads;
  exp_cfg.network = ref_cfg.network;
  exp_cfg.lingxi = ref_cfg.lingxi;
  exp_cfg.scenario = script;
  const analytics::PopulationExperiment experiment(
      exp_cfg, [] { return std::make_unique<abr::Hyb>(); }, predictor_factory);
  const analytics::ExperimentResult control = experiment.run(false, kSeed);
  const analytics::ExperimentResult treatment = experiment.run(true, kSeed);
  const analytics::ScenarioReport report = analytics::summarize_scenario(
      script, users, days, control.user_days, treatment.user_days);
  for (const auto& e : report.events) {
    std::printf("  %-15s window [%zu, %zu): control DiD %+.3f (p=%.3f), "
                "treatment DiD %+.3f (p=%.3f)%s\n",
                e.kind.c_str(), e.first_day, e.last_day, e.control_stall_did.effect,
                e.control_stall_did.p_two_sided, e.treatment_stall_did.effect,
                e.treatment_stall_did.p_two_sided,
                e.has_did ? "" : "  [window means only]");
  }
  for (const auto& c : report.cohorts) {
    std::printf("  cohort %-8s %3zu users, %4zu user-days: stall %+.2f%% "
                "(treatment vs control)\n",
                c.name.c_str(), c.cohort_users, c.user_days, c.stall_diff_pct());
  }

  if (!archive_dir.empty()) {
    if (const Status s = reference.archive.write(archive_dir); !s) {
      std::fprintf(stderr, "cannot write archive to %s: %s\n", archive_dir.c_str(),
                   s.error().message.c_str());
    } else {
      std::printf("scripted reference archive written to %s\n", archive_dir.c_str());
    }
  }

  const bool all_ok = empty_parity && grid_match && resume_match && churn_fired;
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"users\": %zu,\n"
                 "  \"days\": %zu,\n"
                 "  \"churn_day\": %zu,\n"
                 "  \"departures\": %zu,\n"
                 "  \"reference_checksum\": \"0x%08x\",\n"
                 "  \"reference_archive_checksum\": \"0x%08x\",\n"
                 "  \"resume_day\": %zu,\n"
                 "  \"resumed_checksum\": \"0x%08x\",\n"
                 "  \"empty_script_parity\": %s,\n"
                 "  \"grid_match\": %s,\n"
                 "  \"resume_match\": %s,\n"
                 "  \"churn_fired\": %s,\n"
                 "  \"match\": %s,\n"
                 "  \"report\": ",
                 users, days, churn_day, departures, reference.acc.checksum(),
                 reference.archive.checksum(), resume_day, resumed_checksum,
                 empty_parity ? "true" : "false", grid_match ? "true" : "false",
                 resume_match ? "true" : "false", churn_fired ? "true" : "false",
                 all_ok ? "true" : "false");
    const std::string report_json = analytics::to_json(report);
    std::fwrite(report_json.data(), 1, report_json.size(), f);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("json summary written to %s\n", json_path);
  }
  if (!obs.write()) return 2;

  std::printf("\nall bitwise checks passed: %s\n", verdict(all_ok));
  if (!all_ok) return 1;
  if (!obs.slo_ok()) return 3;
  return 0;
}
