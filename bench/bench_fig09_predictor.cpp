// Figure 9: "Exit Rate Predictor in Different Settings" (§5.1).
//
//   (a) accuracy / precision / recall / F1 for predictors trained on three
//       dataset compositions — ALL segments, Event segments (stall or
//       switch), Stall segments only. Five seeds, standard errors.
//       Expected shape: ALL is poisoned by random content exits; Stall-only
//       is clean and all metrics are high.
//   (b) Stall dataset with vs without balanced sampling — recall (and F1)
//       drop without balancing.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/running_stats.h"
#include "predictor/dataset.h"

using namespace lingxi;

namespace {

struct MetricStats {
  RunningStats acc, prec, recall, f1;
  void add(const predictor::ClassificationMetrics& m) {
    acc.add(m.accuracy);
    prec.add(m.precision);
    recall.add(m.recall);
    f1.add(m.f1);
  }
};

MetricStats run_setting(predictor::DatasetFilter filter, bool balanced_sampling) {
  MetricStats out;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 101);
    predictor::DatasetGenConfig gen;
    gen.users = 50;
    gen.sessions_per_user = 25;
    gen.filter = filter;
    auto dataset = predictor::generate_dataset(gen, rng);
    if (balanced_sampling) dataset = predictor::balance(dataset, rng);
    const auto split = predictor::stratified_split(dataset, 0.8, rng);
    predictor::StallExitNet net(rng);
    predictor::TrainConfig tcfg;
    tcfg.epochs = 10;
    predictor::train_exit_net(net, split.train, tcfg, rng);
    out.add(predictor::evaluate(net, split.test));
  }
  return out;
}

void print_metrics(const char* label, const MetricStats& m) {
  std::printf("%-12s acc=%.3f+-%.3f prec=%.3f+-%.3f recall=%.3f+-%.3f f1=%.3f+-%.3f\n",
              label, m.acc.mean(), m.acc.stderr_mean(), m.prec.mean(),
              m.prec.stderr_mean(), m.recall.mean(), m.recall.stderr_mean(),
              m.f1.mean(), m.f1.stderr_mean());
}

}  // namespace

int main() {
  bench::print_header("Figure 9(a): predictor quality by dataset composition (5 seeds)");
  const auto all = run_setting(predictor::DatasetFilter::kAll, true);
  const auto event = run_setting(predictor::DatasetFilter::kEvent, true);
  const auto stall = run_setting(predictor::DatasetFilter::kStall, true);
  print_metrics("ALL", all);
  print_metrics("Event", event);
  print_metrics("Stall", stall);
  std::printf("\nExpected ordering: Stall > Event > ALL on precision/F1 — random\n"
              "content exits in the unfiltered log prevent learning (paper §5.1).\n");

  bench::print_header("Figure 9(b): with vs without balanced sampling (Stall dataset)");
  const auto unbalanced = run_setting(predictor::DatasetFilter::kStall, false);
  print_metrics("Stall", stall);
  print_metrics("Stall_WOB", unbalanced);
  std::printf("\nExpected: recall drops without balancing (the majority class\n"
              "dominates the gradient; the paper reports a ~2%% recall loss).\n");
  return 0;
}
