// Fleet scaling: sessions/sec of sim::FleetRunner at 1/2/4/8 worker threads.
//
// Two fleets are measured:
//   * a raw-simulation fleet (no LingXi) — pure session-loop throughput;
//   * a LingXi treatment fleet — adds the OBO + Monte Carlo optimization
//     load, the shape of the Fig. 10-12 experiments.
//
// For each fleet the merged FleetAccumulator checksum must be identical at
// every thread count: sharding is a pure function of the user count, every
// random stream derives from (seed, user, day, session), and the accumulator
// is integer-valued, so the merge is exact. A checksum mismatch is a bug.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "bench_util.h"
#include "sim/fleet_runner.h"

using namespace lingxi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void run_scaling(const char* title, const sim::FleetConfig& base,
                 const sim::FleetRunner::PredictorFactory& predictor_factory,
                 std::uint64_t seed) {
  bench::print_header(title);
  std::printf("%-10s %-12s %-14s %-12s %-10s\n", "threads", "wall (s)", "sessions/s",
              "speedup", "checksum");

  double serial_rate = 0.0;
  std::uint32_t reference_checksum = 0;
  bool checksums_match = true;

  for (std::size_t threads : {1, 2, 4, 8}) {
    sim::FleetConfig cfg = base;
    cfg.threads = threads;
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    if (predictor_factory) runner.set_predictor_factory(predictor_factory);

    const auto start = std::chrono::steady_clock::now();
    const sim::FleetAccumulator result = runner.run(seed);
    const double wall = seconds_since(start);

    const double rate = wall > 0.0 ? static_cast<double>(result.sessions) / wall : 0.0;
    if (threads == 1) {
      serial_rate = rate;
      reference_checksum = result.checksum();
    }
    checksums_match = checksums_match && result.checksum() == reference_checksum;
    std::printf("%-10zu %-12.3f %-14.0f %-12.2f 0x%08x\n", threads, wall, rate,
                serial_rate > 0.0 ? rate / serial_rate : 0.0, result.checksum());
  }
  std::printf("merged metrics bitwise identical across thread counts: %s\n",
              checksums_match ? "yes" : "NO — DETERMINISM BUG");
}

}  // namespace

int main() {
  sim::FleetConfig raw;
  raw.users = 256;
  raw.days = 2;
  raw.sessions_per_user_day = 12;
  raw.users_per_shard = 8;
  raw.enable_lingxi = false;
  raw.drift_user_tolerance = true;
  raw.session_jitter_sigma = 0.3;
  raw.network.median_bandwidth = 2500.0;
  raw.network.sigma = 0.6;
  raw.video.mean_duration = 40.0;
  run_scaling("Fleet scaling: raw session simulation (256 users x 2 days x 12 sessions)",
              raw, nullptr, 7);

  std::printf("\ntraining shared exit-rate predictor for the LingXi fleet...\n");
  const auto predictor = bench::train_predictor(91, 0.25);

  sim::FleetConfig treated;
  treated.users = 64;
  treated.days = 2;
  treated.sessions_per_user_day = 8;
  treated.users_per_shard = 4;
  treated.enable_lingxi = true;
  treated.drift_user_tolerance = true;
  treated.network.median_bandwidth = 1500.0;
  treated.network.sigma = 0.5;
  treated.network.relative_sd = 0.35;
  treated.lingxi.space.optimize_stall = false;
  treated.lingxi.space.optimize_switch = false;
  treated.lingxi.space.optimize_beta = true;
  treated.lingxi.obo_rounds = 4;
  treated.lingxi.monte_carlo.samples = 8;
  run_scaling("Fleet scaling: LingXi treatment fleet (64 users x 2 days x 8 sessions)",
              treated, [&] { return predictor.make(); }, 11);
  return 0;
}
