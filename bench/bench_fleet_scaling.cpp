// Fleet scaling: sessions/sec of sim::FleetRunner at 1/2/4/8 worker threads,
// and batched predictor inference on the LingXi fleet.
//
// Four sections:
//   * a raw-simulation fleet (no LingXi) — pure session-loop throughput;
//   * a LingXi treatment fleet with the scalar predictor path (monte_carlo
//     batch_size 1) — the Fig. 10-12 experiment shape;
//   * the same fleet with per-optimization batching (--batch N, default 16):
//     Monte Carlo rollouts advance in lockstep and the stall-exit net
//     evaluates whole waves per forward, scoped to one optimization;
//   * cross-user vs per-optimization (a larger fleet, 512 users full mode):
//     the cohort wave scheduler pools every stalled exit query across the
//     shard's users into one flush, reported with the mean batch occupancy
//     per flush of both schedules.
//
// Checksum contract: within a section the merged FleetAccumulator checksum
// must be identical at every thread count; the batched sections must
// reproduce the scalar section's checksum bit for bit; and both schedulers
// must agree bitwise on the comparison fleet. A mismatch is a determinism
// bug and exits non-zero — CI runs this binary as the batched-path smoke.
//
// Flags: --batch N (lockstep batch, default 16), --users-per-shard N
// (override the comparison fleet's shard size), --opt-threads N (pooled
// round-boundary optimizer fits on the comparison fleet; 0 = inline),
// --json PATH (machine-readable summary), --smoke (shrunk configs + {1,2}
// threads for CI), --metrics-json PATH (obs registry snapshot across all
// sections), --trace-out PATH (Chrome trace_event JSON of the instrumented
// spans), --timeline-out PATH (per-day health timeline across all sections),
// --slo SPEC (repeatable kind:metric:threshold[:name] SLO rules; a fired
// rule exits 3). The dense kernel ISA follows nn::dense_isa() and is
// reported in the summary; force it with LINGXI_DENSE_ISA.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "abr/hyb.h"
#include "bench_util.h"
#include "nn/dense.h"
#include "sim/fleet_runner.h"

using namespace lingxi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct ScalingRun {
  std::vector<double> rates;  ///< sessions/sec per thread count
  std::uint32_t checksum = 0;
  bool checksums_match = true;
};

ScalingRun run_scaling(const char* title, const sim::FleetConfig& base,
                       const sim::FleetRunner::PredictorFactory& predictor_factory,
                       std::uint64_t seed, const std::vector<std::size_t>& thread_counts) {
  bench::print_header(title);
  std::printf("%-10s %-12s %-14s %-12s %-10s\n", "threads", "wall (s)", "sessions/s",
              "speedup", "checksum");

  ScalingRun out;
  double serial_rate = 0.0;
  for (std::size_t threads : thread_counts) {
    sim::FleetConfig cfg = base;
    cfg.threads = threads;
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    if (predictor_factory) runner.set_predictor_factory(predictor_factory);

    const auto start = std::chrono::steady_clock::now();
    const sim::FleetAccumulator result = runner.run(seed);
    const double wall = seconds_since(start);

    const double rate = wall > 0.0 ? static_cast<double>(result.sessions) / wall : 0.0;
    out.rates.push_back(rate);
    if (threads == thread_counts.front()) {
      serial_rate = rate;
      out.checksum = result.checksum();
    }
    out.checksums_match = out.checksums_match && result.checksum() == out.checksum;
    std::printf("%-10zu %-12.3f %-14.0f %-12.2f 0x%08x\n", threads, wall, rate,
                serial_rate > 0.0 ? rate / serial_rate : 0.0, result.checksum());
  }
  std::printf("merged metrics bitwise identical across thread counts: %s\n",
              out.checksums_match ? "yes" : "NO — DETERMINISM BUG");
  return out;
}

/// One scheduler arm of the cross-user comparison section.
struct SchedulerRun {
  double rate = 0.0;            ///< sessions/s, first (serial) thread count
  double rate_threaded = 0.0;   ///< sessions/s, last thread count
  std::uint32_t checksum = 0;
  bool checksums_match = true;
  sim::FleetRunStats stats;     ///< from the serial run
};

SchedulerRun run_scheduler_arm(const sim::FleetConfig& base, sim::SchedulerMode mode,
                               const sim::FleetRunner::PredictorFactory& predictor_factory,
                               std::uint64_t seed,
                               const std::vector<std::size_t>& thread_counts) {
  SchedulerRun out;
  bool first = true;
  for (std::size_t threads : thread_counts) {
    sim::FleetConfig cfg = base;
    cfg.scheduler = mode;
    cfg.threads = threads;
    sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
    runner.set_predictor_factory(predictor_factory);
    sim::FleetRunStats stats;
    const auto start = std::chrono::steady_clock::now();
    const sim::FleetAccumulator result = runner.run(seed, &stats);
    const double wall = seconds_since(start);
    const double rate = wall > 0.0 ? static_cast<double>(result.sessions) / wall : 0.0;
    if (first) {
      out.rate = rate;
      out.checksum = result.checksum();
      out.stats = stats;
      first = false;
    }
    out.rate_threaded = rate;
    out.checksums_match = out.checksums_match && result.checksum() == out.checksum;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t batch = 16;
  std::size_t users_per_shard = 0;  // 0 = per-section defaults
  std::size_t optimizer_threads = 0;
  const char* json_path = nullptr;
  std::string metrics_path;
  std::string trace_path;
  std::string timeline_path;
  std::vector<std::string> slo_specs;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--users-per-shard") == 0 && i + 1 < argc) {
      users_per_shard = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--opt-threads") == 0 && i + 1 < argc) {
      optimizer_threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeline-out") == 0 && i + 1 < argc) {
      timeline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slo") == 0 && i + 1 < argc) {
      slo_specs.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--batch N] [--users-per-shard N] [--opt-threads N] "
                   "[--json PATH] [--metrics-json PATH] [--trace-out PATH] "
                   "[--timeline-out PATH] [--slo SPEC] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<obs::SloRule> slo_rules;
  if (!bench::parse_slo_flags(slo_specs, slo_rules)) return 2;
  const bench::ObsScope obs(metrics_path, trace_path, timeline_path, std::move(slo_rules));
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};

  sim::FleetConfig raw;
  raw.users = smoke ? 64 : 256;
  raw.days = 2;
  raw.sessions_per_user_day = 12;
  raw.users_per_shard = 8;
  raw.enable_lingxi = false;
  raw.drift_user_tolerance = true;
  raw.session_jitter_sigma = 0.3;
  raw.network.median_bandwidth = 2500.0;
  raw.network.sigma = 0.6;
  raw.video.mean_duration = 40.0;
  std::printf("raw fleet: %zu users x %zu days x %zu sessions\n", raw.users, raw.days,
              raw.sessions_per_user_day);
  run_scaling("Fleet scaling: raw session simulation", raw, nullptr, 7, thread_counts);

  std::printf("\ntraining shared exit-rate predictor for the LingXi fleet...\n");
  const auto predictor = bench::train_predictor(91, smoke ? 0.1 : 0.25);
  const auto predictor_factory = [&] { return predictor.make(); };

  sim::FleetConfig treated;
  treated.users = smoke ? 16 : 64;
  treated.days = 2;
  treated.sessions_per_user_day = 8;
  treated.users_per_shard = 4;
  // Sections 2-3 measure the per-optimization batching path (the PR 3
  // shape); the cross-user comparison section below flips the scheduler.
  treated.scheduler = sim::SchedulerMode::kPerUser;
  treated.enable_lingxi = true;
  treated.drift_user_tolerance = true;
  treated.network.median_bandwidth = 1500.0;
  treated.network.sigma = 0.5;
  treated.network.relative_sd = 0.35;
  treated.lingxi.space.optimize_stall = false;
  treated.lingxi.space.optimize_switch = false;
  treated.lingxi.space.optimize_beta = true;
  treated.lingxi.obo_rounds = 4;
  treated.lingxi.monte_carlo.samples = 16;
  std::printf("lingxi fleet: %zu users x %zu days x %zu sessions, %zu MC samples\n",
              treated.users, treated.days, treated.sessions_per_user_day,
              treated.lingxi.monte_carlo.samples);

  treated.predictor_batch = 1;
  const ScalingRun scalar = run_scaling("Fleet scaling: LingXi fleet, scalar inference",
                                        treated, predictor_factory, 11, thread_counts);

  treated.predictor_batch = batch;
  char title[96];
  std::snprintf(title, sizeof(title),
                "Fleet scaling: LingXi fleet, batched inference (batch %zu)", batch);
  const ScalingRun batched =
      run_scaling(title, treated, predictor_factory, 11, thread_counts);

  bench::print_header("Batched vs scalar (same seed, same checksum contract)");
  std::printf("%-10s %-16s %-16s %-10s\n", "threads", "scalar sess/s", "batched sess/s",
              "speedup");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%-10zu %-16.0f %-16.0f %-10.2f\n", thread_counts[i], scalar.rates[i],
                batched.rates[i],
                scalar.rates[i] > 0.0 ? batched.rates[i] / scalar.rates[i] : 0.0);
  }
  const bool parity = scalar.checksum == batched.checksum;
  std::printf("scalar checksum 0x%08x, batched checksum 0x%08x: %s\n", scalar.checksum,
              batched.checksum,
              parity ? "bitwise identical" : "MISMATCH — PARITY BUG");

  // Cross-user wave scheduler vs per-optimization batching, at realistic
  // occupancy: many users per shard, all mid-optimization work pooled.
  sim::FleetConfig cohort = treated;
  cohort.users = smoke ? 24 : 512;
  cohort.users_per_shard = users_per_shard != 0 ? users_per_shard : (smoke ? 3 : 64);
  cohort.predictor_batch = batch;
  cohort.optimizer_threads = optimizer_threads;
  std::printf(
      "\ncross-user fleet: %zu users x %zu days x %zu sessions, shard %zu, batch %zu, "
      "opt-threads %zu, dense isa %s\n",
      cohort.users, cohort.days, cohort.sessions_per_user_day, cohort.users_per_shard,
      batch, optimizer_threads, nn::dense_isa_name(nn::dense_isa()));

  const SchedulerRun per_opt = run_scheduler_arm(cohort, sim::SchedulerMode::kPerUser,
                                                 predictor_factory, 11, thread_counts);
  const SchedulerRun cross = run_scheduler_arm(cohort, sim::SchedulerMode::kCohortWaves,
                                               predictor_factory, 11, thread_counts);

  bench::print_header("Cross-user waves vs per-optimization batching");
  std::printf("%-18s %-14s %-14s %-16s %-14s %-10s\n", "scheduler", "sess/s (1t)",
              "sess/s (max t)", "mean batch/flush", "mean net rows", "checksum");
  std::printf("%-18s %-14.0f %-14.0f %-16.1f %-14.1f 0x%08x\n", "per-optimization",
              per_opt.rate, per_opt.rate_threaded, per_opt.stats.mean_flush_occupancy(),
              per_opt.stats.mean_net_batch(), per_opt.checksum);
  std::printf("%-18s %-14.0f %-14.0f %-16.1f %-14.1f 0x%08x\n", "cross-user waves",
              cross.rate, cross.rate_threaded, cross.stats.mean_flush_occupancy(),
              cross.stats.mean_net_batch(), cross.checksum);
  const double cohort_speedup = per_opt.rate > 0.0 ? cross.rate / per_opt.rate : 0.0;
  std::printf("cross-user speedup (1 thread): %.2fx; max flush %llu vs %llu queries\n",
              cohort_speedup,
              static_cast<unsigned long long>(cross.stats.pool_max_flush),
              static_cast<unsigned long long>(per_opt.stats.pool_max_flush));
  const bool scheduler_parity = per_opt.checksum == cross.checksum &&
                                per_opt.checksums_match && cross.checksums_match;
  std::printf("scheduler checksums: %s\n",
              scheduler_parity ? "bitwise identical" : "MISMATCH — PARITY BUG");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"smoke\": %s,\n"
                 "  \"batch\": %zu,\n"
                 "  \"dense_isa\": \"%s\",\n"
                 "  \"optimizer_threads\": %zu,\n"
                 "  \"scalar_sessions_per_sec\": %.1f,\n"
                 "  \"batched_sessions_per_sec\": %.1f,\n"
                 "  \"cross_user\": {\n"
                 "    \"users\": %zu,\n"
                 "    \"users_per_shard\": %zu,\n"
                 "    \"per_opt_sessions_per_sec\": %.1f,\n"
                 "    \"cross_user_sessions_per_sec\": %.1f,\n"
                 "    \"speedup\": %.3f,\n"
                 "    \"per_opt_mean_flush_occupancy\": %.2f,\n"
                 "    \"cross_user_mean_flush_occupancy\": %.2f,\n"
                 "    \"per_opt_mean_net_rows\": %.2f,\n"
                 "    \"cross_user_mean_net_rows\": %.2f,\n"
                 "    \"checksum\": \"0x%08x\",\n"
                 "    \"checksums_match\": %s\n"
                 "  },\n"
                 "  \"all_checksums_match\": %s\n"
                 "}\n",
                 smoke ? "true" : "false", batch, nn::dense_isa_name(nn::dense_isa()),
                 optimizer_threads, scalar.rates.front(),
                 batched.rates.front(), cohort.users, cohort.users_per_shard, per_opt.rate,
                 cross.rate, cohort_speedup, per_opt.stats.mean_flush_occupancy(),
                 cross.stats.mean_flush_occupancy(), per_opt.stats.mean_net_batch(),
                 cross.stats.mean_net_batch(), cross.checksum,
                 scheduler_parity ? "true" : "false",
                 scalar.checksums_match && batched.checksums_match && parity &&
                         scheduler_parity
                     ? "true"
                     : "false");
    std::fclose(f);
    std::printf("json summary written to %s\n", json_path);
  }

  if (!obs.write()) return 2;

  if (!scalar.checksums_match || !batched.checksums_match || !parity ||
      !scheduler_parity) {
    return 1;
  }
  if (!obs.slo_ok()) return 3;
  return 0;
}
