// Figure 14: "The Relationship between Stall Exit Rate and ABR Parameter"
// (§5.5.1).
//
// For each of six post-deployment days, scatter (per-user stall exit rate,
// LingXi-assigned beta) over users with enough stall events, fit a least
// squares trend line and report the Pearson correlation. The paper finds a
// robust negative correlation (-0.23 .. -0.52): users who exit on stalls get
// lower (more conservative) beta.
#include <cstdio>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "analytics/experiment.h"
#include "bench_util.h"
#include "stats/correlation.h"
#include "stats/regression.h"

using namespace lingxi;

int main() {
  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(111, 0.7);

  analytics::ExperimentConfig cfg;
  cfg.users = 220;
  cfg.days = 6;
  cfg.sessions_per_user_day = 12;
  cfg.intervention_day = 0;  // post-deployment view
  cfg.network.median_bandwidth = 1200.0;  // stall-heavy so exit rates have support
  cfg.network.relative_sd = 0.45;
  cfg.network.sigma = 0.5;
  cfg.lingxi.obo_rounds = 5;
  cfg.lingxi.monte_carlo.samples = 8;

  analytics::PopulationExperiment experiment(
      cfg, [] { return std::make_unique<abr::Hyb>(); },
      [&] { return predictor.make(); });
  const auto treatment = experiment.run(true, 777);

  bench::print_header("Figure 14: daily stall-exit-rate vs beta correlation");
  // The paper computes exit rates only for users with >10 stalls/day; our
  // sessions-per-day is smaller, so the support threshold scales down.
  constexpr double kMinStallEvents = 5.0;
  for (std::size_t day = 0; day < cfg.days; ++day) {
    std::vector<double> exit_rates, betas;
    for (const auto& rec : treatment.user_days) {
      if (rec.day != day || rec.stall_events < kMinStallEvents) continue;
      exit_rates.push_back(rec.stall_exit_rate());
      betas.push_back(rec.mean_beta);
    }
    if (exit_rates.size() < 10) {
      std::printf("Day %zu: insufficient users with >=%.0f stalls (%zu)\n", day + 1,
                  kMinStallEvents, exit_rates.size());
      continue;
    }
    const double corr = stats::pearson(exit_rates, betas);
    const auto fit = stats::linear_fit(exit_rates, betas);
    std::printf("Day %zu: n=%-4zu corr=%+.3f trend: beta = %.3f %+.3f * exit_rate\n",
                day + 1, exit_rates.size(), corr, fit.intercept, fit.slope);
  }
  std::printf("\n(paper: Pearson correlation between -0.23 and -0.52, negative slope)\n");
  return 0;
}
