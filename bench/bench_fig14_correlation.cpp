// Figure 14: "The Relationship between Stall Exit Rate and ABR Parameter"
// (§5.5.1) — on the fleet telemetry pipeline.
//
// The post-deployment population is simulated ONCE on sim::FleetRunner with
// capture enabled; the per-user-day (stall exit rate, LingXi-assigned beta)
// records are then recomputed by telemetry::Replay from the archive, and the
// replayed accumulator checksum is verified against the live run. For each
// of six days, fit a least squares trend line and report the Pearson
// correlation. The paper finds a robust negative correlation (-0.23 ..
// -0.52): users who exit on stalls get lower (more conservative) beta.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "bench_util.h"
#include "sim/fleet_runner.h"
#include "stats/correlation.h"
#include "stats/regression.h"
#include "telemetry/capture.h"
#include "telemetry/replay.h"

using namespace lingxi;

int main() {
  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(111, 0.7);

  sim::FleetConfig cfg;
  cfg.users = 220;
  cfg.days = 6;
  cfg.sessions_per_user_day = 12;
  cfg.intervention_day = 0;  // post-deployment view
  cfg.threads = 0;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.network.median_bandwidth = 1200.0;  // stall-heavy so exit rates have support
  cfg.network.relative_sd = 0.45;
  cfg.network.sigma = 0.5;
  cfg.lingxi.obo_rounds = 5;
  cfg.lingxi.monte_carlo.samples = 8;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;

  telemetry::ShardedCapture capture;
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory([&predictor] { return predictor.make(); });
  runner.set_telemetry_sink(&capture);
  std::printf("simulating the fleet once (capture on)...\n");
  const sim::FleetAccumulator live = runner.run(777);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "lingxi_fig14_archive").string();
  const telemetry::FleetArchive archive = capture.finish();
  if (auto s = archive.write(dir); !s) {
    std::fprintf(stderr, "archive write failed: %s\n", s.error().message.c_str());
    return 1;
  }
  const auto replayed = telemetry::Replay::run(dir);
  if (!replayed) {
    std::fprintf(stderr, "replay failed: %s\n", replayed.error().message.c_str());
    return 1;
  }
  const bool match = replayed->fleet.checksum() == live.checksum();
  std::printf("archived %llu sessions -> %s; replay checksum %s\n",
              static_cast<unsigned long long>(live.sessions), dir.c_str(),
              match ? "MATCH" : "MISMATCH");

  bench::print_header("Figure 14: daily stall-exit-rate vs beta correlation (replayed)");
  // The paper computes exit rates only for users with >10 stalls/day; our
  // sessions-per-day is smaller, so the support threshold scales down.
  constexpr double kMinStallEvents = 5.0;
  for (std::size_t day = 0; day < cfg.days; ++day) {
    std::vector<double> exit_rates, betas;
    for (const auto& rec : replayed->user_days) {
      if (rec.day != day || rec.stall_events < kMinStallEvents) continue;
      exit_rates.push_back(rec.stall_exit_rate());
      betas.push_back(rec.mean_beta);
    }
    if (exit_rates.size() < 10) {
      std::printf("Day %zu: insufficient users with >=%.0f stalls (%zu)\n", day + 1,
                  kMinStallEvents, exit_rates.size());
      continue;
    }
    const double corr = stats::pearson(exit_rates, betas);
    const auto fit = stats::linear_fit(exit_rates, betas);
    std::printf("Day %zu: n=%-4zu corr=%+.3f trend: beta = %.3f %+.3f * exit_rate\n",
                day + 1, exit_rates.size(), corr, fit.intercept, fit.slope);
  }
  std::printf("\n(paper: Pearson correlation between -0.23 and -0.52, negative slope)\n");
  return match ? 0 : 1;
}
