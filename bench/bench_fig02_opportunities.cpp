// Figure 2: "Optimization Opportunities in Production System".
//
//   (a) CDF of per-user average bandwidth against the ladder's max bitrate —
//       roughly 10% of users sit below it;
//   (b) CDF of per-user daily stall counts — >90% of users stall-free,
//       >99% with at most two stalls.
#include <cstdio>

#include "abr/hyb.h"
#include "bench_util.h"
#include "sim/session.h"
#include "stats/ecdf.h"
#include "trace/population.h"
#include "trace/video.h"

using namespace lingxi;

int main() {
  bench::print_header("Figure 2(a): bandwidth CDF vs max bitrate");
  const trace::PopulationModel networks;
  Rng rng(7);

  std::vector<double> user_bw;
  const int kUsers = 20000;
  for (int i = 0; i < kUsers; ++i) user_bw.push_back(networks.sample(rng).mean_bandwidth);
  const stats::Ecdf bw_cdf(user_bw);

  std::printf("%-12s %-8s\n", "BW (Mbps)", "CDF");
  for (double mbps : {1.0, 2.0, 4.0, 4.3, 6.0, 10.0, 20.0, 30.0, 50.0}) {
    std::printf("%-12.1f %-8.4f\n", mbps, bw_cdf(mbps * 1000.0));
  }
  const double below_max = bw_cdf(4300.0);
  std::printf("fraction below max bitrate (4300 kbps): %.3f (paper: ~0.10)\n", below_max);

  bench::print_header("Figure 2(b): per-user daily stall counts CDF");
  // Simulate one "day" (10 sessions) per user with the production ABR.
  const trace::VideoGenerator videos({});
  const sim::SessionSimulator simulator({});
  std::vector<double> stall_counts;
  const int kDayUsers = 2000;
  for (int u = 0; u < kDayUsers; ++u) {
    const auto profile = networks.sample(rng);
    abr::Hyb hyb;
    std::size_t stalls = 0;
    for (int s = 0; s < 10; ++s) {
      const trace::Video video = videos.sample(rng);
      auto bw = profile.make_session_model();
      const auto session = simulator.run(video, hyb, *bw, nullptr, rng);
      stalls += session.stall_events;
    }
    stall_counts.push_back(static_cast<double>(stalls));
  }
  const stats::Ecdf stall_cdf(stall_counts);
  std::printf("%-14s %-8s\n", "stall count", "CDF");
  for (int c : {0, 1, 2, 3, 5, 8, 10}) {
    std::printf("<= %-11d %-8.4f\n", c, stall_cdf(static_cast<double>(c)));
  }
  std::printf("stall-free users: %.3f (paper: >0.90)\n", stall_cdf(0.0));
  std::printf("at most two stalls: %.4f (paper: >0.99)\n", stall_cdf(2.0));
  return 0;
}
