// Observability overhead gate: sessions/sec of the LingXi treatment fleet
// (the bench_fleet_scaling shape) with the obs layer disabled vs fully
// enabled (metrics registry + span tracer + per-day health timeline + SLO
// monitor installed — the full health plane, including the in-band per-day
// accumulator totals run_days collects for interior day records).
//
// Protocol: one untimed warmup run, then N timed repetitions, each an
// adjacent obs-off / obs-on pair whose arm order alternates per rep (even
// reps run off first, odd reps run on first) so that time-correlated
// frequency/thermal drift, which taxes whichever arm runs second, cancels
// across reps instead of compounding. Runs are timed in PROCESS CPU TIME,
// not wall time: on a shared CI runner, preemption by unrelated work
// inflates wall clocks by tens of percent, while CPU time charges each mode
// exactly the work it did — which is the quantity the gate is about. The
// gated figure is BEST-OF-N per arm: overhead = (best_off - best_on) /
// best_off in sessions per CPU-second. CPU-time noise is one-sided —
// interference can only ADD charged work (cache/TLB pollution, migration,
// and on virtualized runners host-side vCPU steal that the guest clock
// charges to the process) — so each arm's best rate converges on its
// intrinsic cost floor, while per-pair ratios inherit the full +-5-25%
// per-run swing observed on shared runners and their median still strays
// past a few-percent gate. The per-pair overheads are printed as
// diagnostics. Because a steal burst can outlast one attempt's whole run
// window and blanket every sample of one arm, an over-gate attempt is
// re-measured from scratch up to --attempts times (default 3) — attempts
// are separated in time and sample independent host conditions, and since
// noise only ever inflates an arm, a measurement that passes is faithful
// while a genuine regression fails every attempt.
//
// The gate: overhead = (off - on) / off in sessions/sec must stay below
// --threshold percent (default 3), or the bench exits 1 — scripts/ci.sh runs
// this in Release as the obs fast-path regression gate. The run also verifies
// the obs-on checksum is bitwise identical to obs-off (the determinism
// contract test_properties pins across the full grid).
//
// Flags: --reps N (timed pairs, default 3), --attempts N (re-measure cap,
// default 3), --threshold PCT (default 3.0), --json PATH, --smoke (shrunk
// fleet for CI).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "bench_util.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "sim/fleet_runner.h"

using namespace lingxi;

namespace {

/// CPU seconds consumed by the whole process (all threads). Falls back to
/// wall time where the POSIX clock is unavailable.
double process_cpu_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TimedRun {
  double rate = 0.0;  ///< sessions per CPU-second
  std::uint32_t checksum = 0;
};

TimedRun run_once(const sim::FleetConfig& cfg,
                  const sim::FleetRunner::PredictorFactory& predictor_factory,
                  std::uint64_t seed) {
  sim::FleetRunner runner(cfg, [] { return std::make_unique<abr::Hyb>(); });
  runner.set_predictor_factory(predictor_factory);
  const double start = process_cpu_seconds();
  const sim::FleetAccumulator result = runner.run(seed);
  const double cpu = process_cpu_seconds() - start;
  TimedRun out;
  out.rate = cpu > 0.0 ? static_cast<double>(result.sessions) / cpu : 0.0;
  out.checksum = result.checksum();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 3;
  std::size_t attempts = 3;
  double threshold = 3.0;
  const char* json_path = nullptr;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--attempts") == 0 && i + 1 < argc) {
      attempts = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--attempts N] [--threshold PCT] "
                   "[--json PATH] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps == 0) reps = 1;
  if (attempts == 0) attempts = 1;
  constexpr std::uint64_t kSeed = 11;

  std::printf("training shared exit-rate predictor...\n");
  const auto trained = bench::train_predictor(91, smoke ? 0.1 : 0.25);
  const auto predictor_factory = [&] { return trained.make(); };

  // The bench_fleet_scaling LingXi treatment shape, batched inference on the
  // cross-user cohort schedule — the hottest instrumented path (session
  // stepping, wave flushes, GP refits, acquisition evals all fire).
  sim::FleetConfig cfg;
  // Smoke keeps 32 users: small enough for CI, large enough that per-rep
  // walls dwarf scheduler jitter on a single-core runner.
  cfg.users = smoke ? 32 : 64;
  cfg.days = 2;
  cfg.sessions_per_user_day = 8;
  cfg.users_per_shard = 4;
  cfg.threads = 1;  // serial: per-session cost, no scheduler noise
  cfg.scheduler = sim::SchedulerMode::kCohortWaves;
  cfg.enable_lingxi = true;
  cfg.drift_user_tolerance = true;
  cfg.predictor_batch = 16;
  cfg.network.median_bandwidth = 1500.0;
  cfg.network.sigma = 0.5;
  cfg.network.relative_sd = 0.35;
  cfg.lingxi.space.optimize_stall = false;
  cfg.lingxi.space.optimize_switch = false;
  cfg.lingxi.space.optimize_beta = true;
  cfg.lingxi.obo_rounds = 4;
  cfg.lingxi.monte_carlo.samples = 16;
  std::printf("fleet: %zu users x %zu days x %zu sessions, %zu reps, gate %.1f%%\n",
              cfg.users, cfg.days, cfg.sessions_per_user_day, reps, threshold);

  run_once(cfg, predictor_factory, kSeed);  // warmup, untimed

  // The "on" arm is the FULL health plane: registry + tracer + per-day
  // timeline + SLO monitor (with rules that stay quiet), so the measured
  // overhead includes the in-band per-day totals and the day records'
  // snapshot/append at run end.
  const auto run_on = [&] {
    const std::string timeline_path =
        (std::filesystem::temp_directory_path() / "lingxi_obs_overhead_timeline.bin")
            .string();
    obs::Registry registry;
    obs::Tracer tracer;
    obs::TimelineWriter timeline(timeline_path);
    obs::HealthMonitor monitor({{obs::SloKind::kGaugeFloor, "sim.fleet.sessions_total",
                                 1.0, "sessions-floor"},
                                {obs::SloKind::kGaugeCeiling, "process.rss_bytes",
                                 1e15, "rss-ceiling"}});
    obs::Registry::install(&registry);
    obs::Tracer::install(&tracer);
    obs::TimelineWriter::install(&timeline);
    obs::HealthMonitor::install(&monitor);
    const TimedRun on = run_once(cfg, predictor_factory, kSeed);
    obs::Registry::install(nullptr);
    obs::Tracer::install(nullptr);
    obs::TimelineWriter::install(nullptr);
    obs::HealthMonitor::install(nullptr);
    timeline.close();
    std::filesystem::remove(timeline_path);
    return on;
  };

  double best_off = 0.0;
  double best_on = 0.0;
  double overhead_pct = 0.0;
  std::uint32_t checksum_off = 0;
  std::uint32_t checksum_on = 0;
  bool checksum_match = true;
  bool over_threshold = true;
  std::size_t attempts_run = 0;
  for (std::size_t attempt = 0; attempt < attempts && over_threshold; ++attempt) {
    ++attempts_run;
    bench::print_header(attempt == 0
                            ? "Obs overhead: alternating off/on pairs"
                            : "Obs overhead: retry (prior attempt over gate)");
    std::printf("%-6s %-16s %-16s %-12s\n", "rep", "off sess/s", "on sess/s",
                "overhead %");
    best_off = 0.0;
    best_on = 0.0;
    std::vector<double> pair_overheads;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      // Alternate which arm runs first: CPU-frequency and thermal drift are
      // correlated in time and systematically tax whichever arm of a pair
      // runs second, so a fixed order biases every pair the same way while
      // alternation cancels the bias across pairs.
      TimedRun off;
      TimedRun on;
      if (rep % 2 == 0) {
        off = run_once(cfg, predictor_factory, kSeed);
        on = run_on();
      } else {
        on = run_on();
        off = run_once(cfg, predictor_factory, kSeed);
      }

      best_off = std::max(best_off, off.rate);
      best_on = std::max(best_on, on.rate);
      const double pair =
          off.rate > 0.0 ? (off.rate - on.rate) / off.rate * 100.0 : 0.0;
      pair_overheads.push_back(pair);
      checksum_off = off.checksum;
      checksum_on = on.checksum;
      checksum_match = checksum_match && off.checksum == on.checksum;
      std::printf("%-6zu %-16.0f %-16.0f %+-12.2f\n", rep + 1, off.rate, on.rate, pair);
    }

    std::sort(pair_overheads.begin(), pair_overheads.end());
    const std::size_t n = pair_overheads.size();
    const double median_pair_pct =
        n % 2 == 1 ? pair_overheads[n / 2]
                   : 0.5 * (pair_overheads[n / 2 - 1] + pair_overheads[n / 2]);
    overhead_pct = best_off > 0.0 ? (best_off - best_on) / best_off * 100.0 : 0.0;
    over_threshold = overhead_pct > threshold;
    std::printf("attempt %zu: best off %.0f, best on %.0f sessions/s -> "
                "best-of-%zu overhead %.2f%% (median pair %+.2f%%, diagnostic)\n",
                attempt + 1, best_off, best_on, reps, overhead_pct, median_pair_pct);
  }

  bench::print_header("Obs overhead summary");
  std::printf("best-of-%zu overhead: %.2f%% after %zu attempt(s) (gate %.1f%%): %s\n",
              reps, overhead_pct, attempts_run, threshold,
              over_threshold ? "FAIL — OBS FAST-PATH REGRESSION" : "ok");
  std::printf("obs-on checksum 0x%08x vs obs-off 0x%08x: %s\n", checksum_on, checksum_off,
              checksum_match ? "bitwise identical" : "MISMATCH — DETERMINISM BUG");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"smoke\": %s,\n"
                 "  \"reps\": %zu,\n"
                 "  \"attempts\": %zu,\n"
                 "  \"users\": %zu,\n"
                 "  \"off_sessions_per_sec\": %.1f,\n"
                 "  \"on_sessions_per_sec\": %.1f,\n"
                 "  \"overhead_pct\": %.3f,\n"
                 "  \"threshold_pct\": %.3f,\n"
                 "  \"checksums_match\": %s,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 smoke ? "true" : "false", reps, attempts_run, cfg.users, best_off,
                 best_on, overhead_pct, threshold, checksum_match ? "true" : "false",
                 !over_threshold && checksum_match ? "true" : "false");
    std::fclose(f);
    std::printf("json summary written to %s\n", json_path);
  }

  return !over_threshold && checksum_match ? 0 : 1;
}
