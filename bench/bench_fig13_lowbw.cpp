// Figure 13: "LingXi Performance under Different BW" (§5.4) — the long-tail
// story.
//
//   (a) LingXi-assigned beta (mean, SD) per bandwidth bucket — beta grows
//       with bandwidth (conservative when stalls threaten, aggressive when
//       they don't);
//   (b) relative stall-time change vs the static-beta control per bucket —
//       large reductions below 2000 kbps (paper: up to -15%), converging to
//       ~0 at high bandwidth.
//
// Both arms run on sim::FleetRunner (via analytics::PopulationExperiment)
// with batched predictor inference; the bucket computation itself lives in
// analytics::fig13 and is locked by tests/test_fig13_regression.cpp.
#include <cstdio>
#include <memory>

#include "abr/hyb.h"
#include "analytics/fig13.h"
#include "bench_util.h"

using namespace lingxi;

int main() {
  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(909, 0.7);

  analytics::ExperimentConfig cfg;
  cfg.users = 400;
  cfg.days = 6;
  cfg.sessions_per_user_day = 12;
  cfg.intervention_day = 0;  // LingXi active the whole time (post-deploy view)
  cfg.threads = 0;           // fleet-parallel: all hardware threads
  cfg.predictor_batch = 16;  // batched candidate-session inference
  cfg.network.median_bandwidth = 3500.0;
  cfg.network.sigma = 0.9;        // wide spread across buckets
  cfg.network.relative_sd = 0.45;  // bursty links: stalls happen while the
                                   // buffer still matters, so beta has bite
  cfg.lingxi.obo_rounds = 6;
  cfg.lingxi.monte_carlo.samples = 16;
  cfg.lingxi.adoption_margin = 0.1;

  const analytics::PopulationExperiment experiment(
      cfg, [] { return std::make_unique<abr::Hyb>(); },
      [&] { return predictor.make(); });
  const analytics::Fig13Result fig = analytics::run_fig13(experiment, 555);

  bench::print_header("Figure 13(a): LingXi beta vs bandwidth");
  std::printf("%-14s %-10s %-10s %-8s\n", "bandwidth", "mean beta", "sd", "user-days");
  for (const auto& b : fig.buckets) {
    if (b.user_days == 0) continue;
    std::printf("%-14s %-10.3f %-10.3f %-8zu\n", b.label.c_str(), b.mean_beta, b.sd_beta,
                b.user_days);
  }
  std::printf("(expect mean beta increasing with bandwidth)\n");

  bench::print_header("Figure 13(b): relative stall-time change vs baseline");
  std::printf("%-14s %-18s %-14s %-14s\n", "bandwidth", "stall diff (%)",
              "control (s)", "treatment (s)");
  for (const auto& b : fig.buckets) {
    if (b.control_stall <= 0.0) continue;
    std::printf("%-14s %+-18.1f %-14.1f %-14.1f\n", b.label.c_str(), b.stall_diff_pct(),
                b.control_stall, b.treatment_stall);
  }
  std::printf("(paper: up to -15%% below 2000 kbps; ~0 at high bandwidth)\n");
  return 0;
}
