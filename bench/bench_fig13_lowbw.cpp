// Figure 13: "LingXi Performance under Different BW" (§5.4) — the long-tail
// story.
//
//   (a) LingXi-assigned beta (mean, SD) per bandwidth bucket — beta grows
//       with bandwidth (conservative when stalls threaten, aggressive when
//       they don't);
//   (b) relative stall-time change vs the static-beta control per bucket —
//       large reductions below 2000 kbps (paper: up to -15%), converging to
//       ~0 at high bandwidth.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "abr/hyb.h"
#include "analytics/experiment.h"
#include "bench_util.h"
#include "common/running_stats.h"
#include "trace/population.h"

using namespace lingxi;

int main() {
  std::printf("training shared exit-rate predictor...\n");
  const auto predictor = bench::train_predictor(909, 0.7);

  analytics::ExperimentConfig cfg;
  cfg.users = 400;
  cfg.days = 6;
  cfg.sessions_per_user_day = 12;
  cfg.intervention_day = 0;  // LingXi active the whole time (post-deploy view)
  cfg.network.median_bandwidth = 3500.0;
  cfg.network.sigma = 0.9;  // wide spread across buckets
  cfg.lingxi.obo_rounds = 6;
  cfg.lingxi.monte_carlo.samples = 16;
  cfg.lingxi.adoption_margin = 0.1;

  analytics::PopulationExperiment experiment(
      cfg, [] { return std::make_unique<abr::Hyb>(); },
      [&] { return predictor.make(); });

  const auto control = experiment.run(false, 555);
  const auto treatment = experiment.run(true, 555);

  bench::print_header("Figure 13(a): LingXi beta vs bandwidth");
  constexpr std::size_t kBuckets = 6;
  RunningStats beta_stats[kBuckets];
  for (const auto& rec : treatment.user_days) {
    beta_stats[trace::bandwidth_bucket(rec.mean_bandwidth)].add(rec.mean_beta);
  }
  std::printf("%-14s %-10s %-10s %-8s\n", "bandwidth", "mean beta", "sd", "user-days");
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (beta_stats[b].empty()) continue;
    std::printf("%-14s %-10.3f %-10.3f %-8zu\n", trace::bucket_label(b).c_str(),
                beta_stats[b].mean(), beta_stats[b].stddev(), beta_stats[b].count());
  }
  std::printf("(expect mean beta increasing with bandwidth)\n");

  bench::print_header("Figure 13(b): relative stall-time change vs baseline");
  double control_stall[kBuckets] = {}, treatment_stall[kBuckets] = {};
  for (const auto& rec : control.user_days) {
    control_stall[trace::bandwidth_bucket(rec.mean_bandwidth)] += rec.stall_time;
  }
  for (const auto& rec : treatment.user_days) {
    treatment_stall[trace::bandwidth_bucket(rec.mean_bandwidth)] += rec.stall_time;
  }
  std::printf("%-14s %-18s %-14s %-14s\n", "bandwidth", "stall diff (%)",
              "control (s)", "treatment (s)");
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (control_stall[b] <= 0.0) continue;
    const double diff = (treatment_stall[b] - control_stall[b]) / control_stall[b] * 100.0;
    std::printf("%-14s %+-18.1f %-14.1f %-14.1f\n", trace::bucket_label(b).c_str(), diff,
                control_stall[b], treatment_stall[b]);
  }
  std::printf("(paper: up to -15%% below 2000 kbps; ~0 at high bandwidth)\n");
  return 0;
}
