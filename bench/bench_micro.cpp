// Microbenchmarks (google-benchmark): per-operation costs behind the §6
// overhead discussion — "LingXi's overhead is primarily determined by
// personalized predictor invocations, which typically consume hundreds of
// times more computational resources than conventional ABR decisions."
#include <benchmark/benchmark.h>

#include <filesystem>
#include <limits>
#include <memory>
#include <string>

#include "abr/hyb.h"
#include "abr/pensieve.h"
#include "abr/robust_mpc.h"
#include "bayesopt/gp.h"
#include "bayesopt/obo.h"
#include "bench_util.h"
#include "nn/dense.h"
#include "predictor/exit_net.h"
#include "sim/monte_carlo.h"
#include "snapshot/snapshot.h"
#include "trace/bandwidth.h"
#include "trace/video.h"

using namespace lingxi;

namespace {

sim::AbrObservation make_observation(const trace::Video& video) {
  sim::AbrObservation obs;
  obs.video = &video;
  obs.buffer = 4.0;
  obs.buffer_max = 8.0;
  obs.next_segment = 5;
  obs.first_segment = false;
  obs.last_level = 1;
  obs.throughput_history = {1200.0, 1500.0, 900.0, 1100.0, 1300.0};
  obs.download_time_history = {0.5, 0.4, 0.7, 0.6, 0.5};
  return obs;
}

void BM_HybDecision(benchmark::State& state) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 60, 1.0);
  auto obs = make_observation(video);
  abr::Hyb hyb;
  for (auto _ : state) benchmark::DoNotOptimize(hyb.select(obs));
}
BENCHMARK(BM_HybDecision);

void BM_RobustMpcDecision(benchmark::State& state) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 60, 1.0);
  auto obs = make_observation(video);
  abr::RobustMpc::Config cfg;
  cfg.horizon = static_cast<std::size_t>(state.range(0));
  abr::RobustMpc mpc(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(mpc.select(obs));
}
BENCHMARK(BM_RobustMpcDecision)->Arg(3)->Arg(5);

void BM_PensieveDecision(benchmark::State& state) {
  const trace::Video video(trace::BitrateLadder::default_ladder(), 60, 1.0);
  auto obs = make_observation(video);
  Rng rng(1);
  abr::Pensieve policy(4, rng);
  for (auto _ : state) benchmark::DoNotOptimize(policy.select(obs));
}
BENCHMARK(BM_PensieveDecision);

// Dense::forward_batch at the stall-exit net's fc1 shape (64 x 1600, the
// layer whose weight traffic dominates batched inference). rows/s is the
// figure of merit: the 8-row block + SIMD panel kernel should hold it
// roughly flat from 8 rows up, while 1-row batches pay the full weight
// stream per row.
void BM_DenseForwardBatch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kIn = 1600, kOut = 64;
  Rng rng(6);
  nn::Dense layer(kIn, kOut, rng);
  std::vector<double> in(rows * kIn);
  std::vector<double> out(rows * kOut);
  for (double& x : in) x = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    layer.forward_batch({in.data(), rows, kIn}, {out.data(), rows, kOut});
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rows),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseForwardBatch)->Arg(1)->Arg(4)->Arg(8)->Arg(64)->Arg(512);

// The same fc1-shaped panel under each dispatchable ISA (args: isa, rows).
// All variants are bitwise identical (lanes across rows); this bench is why
// the runtime default is AVX2 — the 512-bit variant measures slower on
// downclocking server parts despite the wider panel.
void BM_DenseForwardBatchIsa(benchmark::State& state) {
  const auto requested = static_cast<nn::DenseIsa>(state.range(0));
  const auto rows = static_cast<std::size_t>(state.range(1));
  if (!nn::dense_isa_supported(requested)) {
    state.SkipWithError("isa not supported on this cpu");
    return;
  }
  const nn::DenseIsa before = nn::dense_isa();
  nn::set_dense_isa_for_testing(requested);
  state.SetLabel(nn::dense_isa_name(requested));
  constexpr std::size_t kIn = 1600, kOut = 64;
  Rng rng(6);
  nn::Dense layer(kIn, kOut, rng);
  std::vector<double> in(rows * kIn);
  std::vector<double> out(rows * kOut);
  for (double& x : in) x = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    layer.forward_batch({in.data(), rows, kIn}, {out.data(), rows, kOut});
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  nn::set_dense_isa_for_testing(before);
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rows),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseForwardBatchIsa)
    ->ArgsProduct({{0, 1, 2, 3}, {8, 64, 512}});

void BM_ExitNetInference(benchmark::State& state) {
  Rng rng(2);
  predictor::StallExitNet net(rng);
  nn::Tensor f({predictor::kChannels, predictor::kHistoryLen});
  f.fill(0.4);
  for (auto _ : state) benchmark::DoNotOptimize(net.predict(f));
}
BENCHMARK(BM_ExitNetInference);

void BM_MonteCarloEvaluation(benchmark::State& state) {
  Rng rng(3);
  auto net = std::make_shared<predictor::StallExitNet>(rng);
  auto os = std::make_shared<predictor::OverallStatsModel>();
  predictor::EngagementState seed;

  sim::MonteCarloConfig mc;
  mc.samples = static_cast<std::size_t>(state.range(0));
  mc.enable_pruning = false;
  const sim::MonteCarloEvaluator eval(mc, {});
  const auto video = eval.make_virtual_video(trace::BitrateLadder::default_ladder(), 1.0);
  abr::Hyb hyb;
  trace::NormalBandwidth bw(1200.0, 300.0);
  for (auto _ : state) {
    predictor::PredictorExitModel exits({net, os}, seed, 1.0);
    benchmark::DoNotOptimize(eval.evaluate(video, hyb, exits, bw, 2.0,
                                           std::numeric_limits<double>::infinity(), rng));
  }
}
BENCHMARK(BM_MonteCarloEvaluation)->Arg(8)->Arg(32);

void BM_GpUpdateAndPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    bayesopt::GaussianProcess gp;
    for (std::size_t i = 0; i < n; ++i) {
      gp.observe({rng.uniform(), rng.uniform()}, rng.uniform());
    }
    benchmark::DoNotOptimize(gp.predict({0.5, 0.5}));
  }
}
BENCHMARK(BM_GpUpdateAndPredict)->Arg(8)->Arg(32);

// Building an n-observation GP one observe() at a time: the incremental
// rank-1 Cholesky extension (production path, O(n^2) per observation) vs
// the forced full refactorization (O(n^3) per observation). Both produce
// identical factors bit for bit; the gap is the point of the fast path.
void BM_GpRefitIncremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    bayesopt::GaussianProcess gp;
    for (std::size_t i = 0; i < n; ++i) {
      gp.observe({rng.uniform(), rng.uniform()}, rng.uniform());
    }
    benchmark::DoNotOptimize(gp.factor().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GpRefitIncremental)->Arg(4)->Arg(16)->Arg(64);

void BM_GpRefitFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  bayesopt::GaussianProcess::set_full_refit_for_testing(true);
  for (auto _ : state) {
    bayesopt::GaussianProcess gp;
    for (std::size_t i = 0; i < n; ++i) {
      gp.observe({rng.uniform(), rng.uniform()}, rng.uniform());
    }
    benchmark::DoNotOptimize(gp.factor().data());
  }
  bayesopt::GaussianProcess::set_full_refit_for_testing(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GpRefitFull)->Arg(4)->Arg(16)->Arg(64);

// One acquisition sweep (OnlineBayesOpt::next_candidate) against an
// n-observation GP: 256 grid + 32 perturbation candidates through
// predict_batch (one k_star panel, shared triangular solves, zero hot-path
// allocations after the first sweep). candidates/s is the figure of merit.
void BM_AcquisitionBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  bayesopt::OnlineBayesOpt obo(2);
  for (std::size_t i = 0; i < n; ++i) {
    obo.update({rng.uniform(), rng.uniform()}, rng.uniform());
  }
  const std::size_t candidates =
      bayesopt::OnlineBayesOpt::Config{}.candidate_grid +
      bayesopt::OnlineBayesOpt::Config{}.local_perturbations;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obo.next_candidate(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(candidates));
  state.counters["candidates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(candidates),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AcquisitionBatch)->Arg(8)->Arg(32);

void BM_PlayerEnvStep(benchmark::State& state) {
  sim::PlayerEnv env(sim::PlayerConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step(100000.0, 1.0, 2000.0));
  }
}
BENCHMARK(BM_PlayerEnvStep);

// Snapshot save/load throughput (MB/s and users/s): serialization
// regressions in the checkpoint subsystem show up here before they show up
// as warm-start wall time. The synthetic per-user state carries a full
// engagement history + bandwidth window, the shape a stall-heavy LingXi
// fleet produces.
sim::UserFleetState synthetic_user_state(std::uint64_t seed) {
  Rng rng(seed);
  sim::UserFleetState user;
  for (int i = 0; i < 7; ++i) rng.next();
  user.session_rng = rng.state();
  user.params.hyb_beta = 0.4 + 0.5 * rng.uniform();
  user.adjusted_days = 3;
  user.has_lingxi = true;
  auto& lx = user.lingxi;
  for (std::size_t i = 0; i < predictor::kHistoryLen; ++i) {
    lx.engagement.long_term.stall_durations.push_back(rng.uniform(0.1, 3.0));
    lx.engagement.long_term.stall_intervals.push_back(rng.uniform(5.0, 200.0));
    lx.engagement.long_term.stall_exit_intervals.push_back(rng.uniform(60.0, 900.0));
  }
  lx.engagement.long_term.total_watch_time = 5400.0;
  lx.engagement.long_term.total_stall_events = 48;
  lx.engagement.long_term.total_stall_exits = 9;
  lx.engagement.last_stall_at = 5333.0;
  lx.engagement.last_stall_exit_at = 5100.0;
  for (int i = 0; i < 64; ++i) lx.bandwidth_window.push_back(rng.uniform(400.0, 6000.0));
  lx.stalls_since_optimization = 1;
  lx.has_optimized = true;
  lx.stats.triggers = 12;
  lx.stats.optimizations_run = 9;
  lx.stats.mc_evaluations = 36;
  return user;
}

snapshot::FleetSnapshot synthetic_snapshot(std::size_t users) {
  snapshot::FleetSnapshot snap;
  snap.seed = 7;
  snap.state.next_day = 2;
  snap.state.users.reserve(users);
  for (std::size_t u = 0; u < users; ++u) {
    snap.state.users.push_back(synthetic_user_state(100 + u));
  }
  snap.state.accumulated.sessions = users * 16;
  snap.state.accumulated.users = 0;
  return snap;
}

void BM_SnapshotUserStateCodec(benchmark::State& state) {
  const sim::UserFleetState user = synthetic_user_state(42);
  const auto bytes = snapshot::encode_user_state(0, user);
  std::uint64_t total = 0;
  for (auto _ : state) {
    const auto encoded = snapshot::encode_user_state(0, user);
    auto decoded = snapshot::decode_user_state(encoded);
    benchmark::DoNotOptimize(decoded);
    total += encoded.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(total));
  state.counters["users/s"] = benchmark::Counter(static_cast<double>(state.iterations()),
                                                 benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotUserStateCodec);

void BM_SnapshotSave(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  const snapshot::FleetSnapshot snap = synthetic_snapshot(users);
  const std::string dir = std::filesystem::temp_directory_path() / "lingxi_bm_snap_save";
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto status = snapshot::save_snapshot(snap, dir, 64);
    if (!status.ok()) {
      state.SkipWithError("save_snapshot failed");
      break;
    }
    bytes += snapshot::encode_user_state(0, snap.state.users[0]).size() * users;
  }
  std::filesystem::remove_all(dir);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users));
  state.counters["users/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(users),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotSave)->Arg(64)->Arg(512);

void BM_SnapshotLoad(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  const snapshot::FleetSnapshot snap = synthetic_snapshot(users);
  const std::string dir = std::filesystem::temp_directory_path() / "lingxi_bm_snap_load";
  if (!snapshot::save_snapshot(snap, dir, 64).ok()) {
    state.SkipWithError("save_snapshot failed");
    return;
  }
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto loaded = snapshot::load_snapshot(dir);
    if (!loaded.has_value()) {
      state.SkipWithError("load_snapshot failed");
      break;
    }
    benchmark::DoNotOptimize(loaded);
    bytes += snapshot::encode_user_state(0, snap.state.users[0]).size() * users;
  }
  std::filesystem::remove_all(dir);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users));
  state.counters["users/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(users),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotLoad)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
