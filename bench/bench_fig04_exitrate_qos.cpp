// Figure 4: "The Impact of QoS metrics on Exit Rates" (§2.2) — the analysis
// behind Takeaway 1: the hierarchical effect magnitudes
//   video quality ~ 1e-3, smoothness ~ 1e-2, stall time ~ 1e-1.
//
// Generates a large synthetic trajectory log (the paper's 1.5M-trajectory
// analysis, scaled down) and bins per-segment exit frequencies by quality
// tier, switch granularity, and stall time, plus the compound-effect slices
// (sessions beyond 20s, Full HD, multiple stalls).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "abr/hyb.h"
#include "bench_util.h"
#include "sim/session.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/user_population.h"

using namespace lingxi;

namespace {

struct SegmentObservation {
  std::size_t level;
  int switch_granularity;  ///< level delta vs previous segment (-3..3)
  double stall_time;       ///< this segment's stall
  double cumulative_stall;
  std::size_t stall_events;
  double position;  ///< watch seconds before this segment
  bool exited;
};

struct RateAccumulator {
  double exits = 0.0;
  double count = 0.0;
  void add(bool exited) {
    exits += exited ? 1.0 : 0.0;
    count += 1.0;
  }
  double rate() const { return count > 0.0 ? exits / count : 0.0; }
};

}  // namespace

int main() {
  // Stall-prone world so the stall axis has support.
  trace::PopulationModel::Config netcfg;
  netcfg.median_bandwidth = 3000.0;
  netcfg.sigma = 0.9;
  netcfg.relative_sd = 0.4;  // mobile-grade variability so stalls have support
  const trace::PopulationModel networks(netcfg);
  const trace::VideoGenerator videos({});
  const user::UserPopulation population;
  const sim::SessionSimulator simulator({});
  Rng rng(13);

  std::vector<SegmentObservation> log;
  const int kUsers = 1500;
  const int kSessions = 12;
  for (int u = 0; u < kUsers; ++u) {
    const auto profile = networks.sample(rng);
    auto user_model = population.sample(rng);
    abr::Hyb hyb;
    for (int s = 0; s < kSessions; ++s) {
      const trace::Video video = videos.sample(rng);
      auto bw = profile.make_session_model();
      const auto session = simulator.run(video, hyb, *bw, user_model.get(), rng);
      for (std::size_t k = 0; k < session.segments.size(); ++k) {
        const auto& seg = session.segments[k];
        SegmentObservation obs;
        obs.level = seg.level;
        obs.switch_granularity =
            k == 0 ? 0
                   : static_cast<int>(seg.level) -
                         static_cast<int>(session.segments[k - 1].level);
        obs.stall_time = seg.stall_time;
        obs.cumulative_stall = seg.cumulative_stall;
        obs.stall_events = seg.cumulative_stall_events;
        obs.position = static_cast<double>(k) * video.segment_duration();
        obs.exited = session.exited && k + 1 == session.segments.size();
        log.push_back(obs);
      }
    }
  }
  std::printf("synthetic log: %zu segment observations\n", log.size());

  bench::print_header("Figure 4(a): exit rate by video quality (stall-free segments)");
  RateAccumulator by_tier[4];
  for (const auto& o : log) {
    if (o.stall_time <= 0.05 && o.switch_granularity == 0) by_tier[o.level].add(o.exited);
  }
  const char* tiers[4] = {"LD", "SD", "HD", "Full HD"};
  for (int t = 0; t < 4; ++t) {
    std::printf("%-10s exit_rate=%.5f (n=%.0f)\n", tiers[t], by_tier[t].rate(),
                by_tier[t].count);
  }
  std::printf("quality effect magnitude: %.1e (paper: ~1e-3)\n",
              by_tier[0].rate() - by_tier[3].rate());

  bench::print_header("Figure 4(b): exit rate by switch granularity (stall-free)");
  RateAccumulator by_switch[7];  // -3..3 -> index 0..6
  for (const auto& o : log) {
    if (o.stall_time <= 0.05) by_switch[o.switch_granularity + 3].add(o.exited);
  }
  const double baseline_a = by_switch[3].rate();
  std::printf("baseline a (no switch) = %.5f\n", baseline_a);
  for (int g = -2; g <= 2; ++g) {
    const auto& acc = by_switch[g + 3];
    if (acc.count < 50) continue;
    std::printf("granularity %+d: a%+.5f (n=%.0f)\n", g, acc.rate() - baseline_a,
                acc.count);
  }
  double max_switch_effect = 0.0;
  for (int g = 0; g < 7; ++g) {
    if (g != 3 && by_switch[g].count >= 50) {
      max_switch_effect = std::max(max_switch_effect, by_switch[g].rate() - baseline_a);
    }
  }
  std::printf("smoothness effect magnitude: %.1e (paper: ~1e-2)\n", max_switch_effect);

  bench::print_header("Figure 4(c): exit rate by cumulative stall time");
  auto stall_bin = [](double s) { return std::min(10, static_cast<int>(s / 2.0)); };
  RateAccumulator by_stall[11];
  for (const auto& o : log) {
    if (o.stall_time > 0.05) by_stall[stall_bin(o.cumulative_stall)].add(o.exited);
  }
  RateAccumulator clean;
  for (const auto& o : log) {
    if (o.stall_time <= 0.05) clean.add(o.exited);
  }
  const double baseline_b = clean.rate();
  std::printf("baseline b (no stall) = %.5f\n", baseline_b);
  for (int bin = 0; bin <= 10; ++bin) {
    if (by_stall[bin].count < 20) continue;
    std::printf("stall %2d-%2ds: b%+.4f (n=%.0f)\n", bin * 2, bin * 2 + 2,
                by_stall[bin].rate() - baseline_b, by_stall[bin].count);
  }
  double max_stall_effect = 0.0;
  for (int bin = 0; bin <= 10; ++bin) {
    if (by_stall[bin].count >= 20) {
      max_stall_effect = std::max(max_stall_effect, by_stall[bin].rate() - baseline_b);
    }
  }
  std::printf("stall effect magnitude: %.1e (paper: ~1e-1, max diff ~0.3)\n",
              max_stall_effect);

  bench::print_header("Figure 4(d): compound effects on stall-driven exits");
  // Slices are conditioned on a matched cumulative-stall band (2-6s) so the
  // modifier effects are not confounded by different stall severities, the
  // same way the paper compares curves at equal x.
  auto in_band = [](const SegmentObservation& o) {
    return o.stall_time > 0.05 && o.cumulative_stall >= 2.0 && o.cumulative_stall < 6.0;
  };
  RateAccumulator overall, beyond20, fullhd, multi;
  for (const auto& o : log) {
    if (!in_band(o)) continue;
    overall.add(o.exited);
    if (o.position > 20.0) beyond20.add(o.exited);
    if (o.level >= 2) fullhd.add(o.exited);  // HD/FullHD renditions
    if (o.stall_events >= 3) multi.add(o.exited);
  }
  std::printf("%-24s %-12s %-8s (cumulative stall 2-6s)\n", "slice", "exit rate", "n");
  std::printf("%-24s %-12.4f %-8.0f\n", "Overall", overall.rate(), overall.count);
  std::printf("%-24s %-12.4f %-8.0f (expect < overall: stall tolerance grows)\n",
              "Beyond 20s", beyond20.rate(), beyond20.count);
  std::printf("%-24s %-12.4f %-8.0f (expect >= overall: less tolerance at HD+)\n",
              "HD/Full HD", fullhd.rate(), fullhd.count);
  std::printf("%-24s %-12.4f %-8.0f (expect > overall: multiple stalls)\n",
              "Multiple stalls", multi.rate(), multi.count);
  return 0;
}
