// Figure 10: "The Simulation Experiment of LingXi" (§5.2) — the headline
// pre-deployment result.
//
// Video completion rate under:
//   * fixed QoE_lin parameters (stall parameter 1..20 x switch parameter
//     0..4) — the shaded region / per-switch lines of the paper;
//   * L(F): LingXi with a fixed candidate set;
//   * L(B): LingXi with online Bayesian optimization;
// for two user-model families (rule-based 8x8 threshold grid, data-driven
// archetype users) and two baseline ABRs (RobustMPC, Pensieve).
//
// Every panel cell is one sim::FleetRunner fleet: the runner shards the user
// population across worker threads and the merged result is bitwise
// independent of the thread count, so this bench reports identical numbers
// on a laptop and a 64-core box.
//
// Expected shape: fixed parameters barely move the completion rate; L(F)
// clearly improves on the best fixed parameters; L(B) improves further.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "abr/pensieve.h"
#include "abr/robust_mpc.h"
#include "bench_util.h"
#include "common/running_stats.h"
#include "sim/fleet_runner.h"
#include "sim/session.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/rule_based.h"
#include "user/user_population.h"

using namespace lingxi;

namespace {

constexpr std::size_t kSessionsPerUser = 24;
/// Sessions excluded from the completion statistic for every method: LingXi
/// needs a few sessions of history before its first optimization, and the
/// paper's steady-state numbers likewise exclude cold start.
constexpr std::size_t kWarmupSessions = 8;
constexpr double kContentExitRate = 0.055;

// Harsh low-bandwidth world: dips below the lowest rung are possible, so no
// fixed parameter corner is stall-free (matching the paper's trace set where
// fixed parameters move completion only from 7.3% to 7.6%).
trace::PopulationModel::Config network_config() {
  trace::PopulationModel::Config cfg;
  cfg.median_bandwidth = 1300.0;
  cfg.sigma = 0.4;
  cfg.relative_sd = 0.45;
  // Cap of the per-session jittered mean (see session_jitter_sigma below).
  cfg.max_bandwidth = 30000.0;
  return cfg;
}

trace::VideoGenerator::Config video_config() {
  trace::VideoGenerator::Config cfg;
  cfg.mean_duration = 40.0;
  return cfg;
}

using AbrFactory = sim::FleetRunner::AbrFactory;
using UserFactory = sim::FleetRunner::UserFactory;

/// Base fleet shared by the fixed-parameter and LingXi arms. The session
/// jitter models session-level nonstationarity: a user's sessions happen on
/// different networks (cellular commute, home Wi-Fi, ...), which is what
/// gives *online* re-tuning an edge over any per-user fixed parameter.
sim::FleetConfig base_fleet(std::size_t users) {
  sim::FleetConfig fleet;
  fleet.users = users;
  fleet.days = 1;
  fleet.sessions_per_user_day = kSessionsPerUser;
  fleet.warmup_sessions = kWarmupSessions;
  fleet.threads = 0;  // all cores; the merged result does not depend on this
  fleet.network = network_config();
  fleet.video = video_config();
  fleet.session_jitter_sigma = 0.5;
  return fleet;
}

/// Completion rate with fixed QoE parameters over the user panel.
double run_fixed(const AbrFactory& make_abr, const UserFactory& users,
                 std::size_t user_count, const abr::QoeParams& params,
                 std::uint64_t seed) {
  sim::FleetConfig fleet = base_fleet(user_count);
  fleet.enable_lingxi = false;
  fleet.fixed_params = params;
  sim::FleetRunner runner(fleet, make_abr);
  runner.set_user_factory(users);
  return runner.run(seed).measured_completion_rate();
}

/// Completion rate with LingXi adjusting parameters online.
/// `fixed_candidates` empty = L(B); non-empty = L(F).
double run_lingxi(const AbrFactory& make_abr, const UserFactory& users,
                  std::size_t user_count, const bench::TrainedPredictor& predictor,
                  const std::vector<abr::QoeParams>& fixed_candidates,
                  std::uint64_t seed) {
  sim::FleetConfig fleet = base_fleet(user_count);
  fleet.enable_lingxi = true;
  fleet.lingxi.space.optimize_stall = true;
  fleet.lingxi.space.optimize_switch = true;
  fleet.lingxi.space.optimize_beta = false;
  fleet.lingxi.obo_rounds = 10;
  fleet.lingxi.obo.bootstrap_samples = 1;  // the warm start already seeds the GP
  fleet.lingxi.monte_carlo.samples = 32;
  fleet.lingxi.monte_carlo.sample_duration = 30.0;
  fleet.lingxi.fixed_candidates = fixed_candidates;

  sim::FleetRunner runner(fleet, make_abr);
  runner.set_user_factory(users);
  runner.set_predictor_factory([&predictor] { return predictor.make(); });
  return runner.run(seed).measured_completion_rate();
}

UserFactory rule_based_users() {
  return [](std::size_t user_index, Rng&) -> std::unique_ptr<user::UserModel> {
    // 8x8 grid over (stall count threshold, stall time threshold) in 2..9.
    const int count_thr = 2 + static_cast<int>(user_index / 8 % 8);
    const int time_thr = 2 + static_cast<int>(user_index % 8);
    user::RuleBasedUser::Config cfg;
    cfg.stall_count_threshold = static_cast<std::size_t>(count_thr);
    cfg.stall_time_threshold = static_cast<double>(time_thr);
    cfg.content_exit_rate = kContentExitRate;
    return std::make_unique<user::RuleBasedUser>(cfg);
  };
}

UserFactory data_driven_users() {
  const user::UserPopulation population;
  return [population](std::size_t, Rng& rng) -> std::unique_ptr<user::UserModel> {
    auto cfg = population.sample_config(rng);
    cfg.base_content_rate = kContentExitRate;
    return std::make_unique<user::DataDrivenUser>(cfg);
  };
}

std::vector<abr::QoeParams> lf_candidates() {
  std::vector<abr::QoeParams> out;
  for (double stall : {2.0, 6.0, 12.0, 18.0}) {
    for (double sw : {1.0, 4.0}) {
      abr::QoeParams p;
      p.stall_penalty = stall;
      p.switch_penalty = sw;
      out.push_back(p);
    }
  }
  return out;
}

/// Fit the hybrid predictor on logs from THIS panel's world (user family +
/// network), as the production predictor is fitted on production logs.
bench::TrainedPredictor train_matched_predictor(const UserFactory& users,
                                                std::size_t user_count,
                                                std::uint64_t seed) {
  Rng rng(seed);
  bench::TrainedPredictor out;
  out.os_model = std::make_shared<predictor::OverallStatsModel>();
  out.net = std::make_shared<predictor::StallExitNet>(rng);

  auto make_gen = [&](predictor::DatasetFilter filter) {
    predictor::DatasetGenConfig gen;
    gen.users = 48;
    gen.sessions_per_user = 16;
    gen.filter = filter;
    gen.network = network_config();
    gen.video = video_config();
    std::size_t next = 0;
    gen.user_factory = [&users, user_count, next](Rng& user_rng) mutable {
      return users(next++ % user_count, user_rng);
    };
    return gen;
  };
  {
    const auto data = predictor::generate_dataset(make_gen(predictor::DatasetFilter::kAll),
                                                  rng);
    for (const auto& s : data.samples) {
      out.os_model->observe(1, predictor::SwitchType::kNone, s.exited);
    }
  }
  {
    auto data =
        predictor::generate_dataset(make_gen(predictor::DatasetFilter::kStall), rng);
    auto balanced = predictor::balance(data, rng);
    predictor::TrainConfig tcfg;
    tcfg.epochs = 8;
    if (!balanced.samples.empty()) predictor::train_exit_net(*out.net, balanced, tcfg, rng);
  }
  return out;
}

void run_panel(const char* title, const AbrFactory& make_abr, const UserFactory& users,
               std::size_t user_count, const bench::TrainedPredictor& predictor,
               std::uint64_t seed) {
  bench::print_header(title);
  std::printf("%-14s", "stall param");
  for (int sw = 0; sw <= 4; ++sw) std::printf("Sw:%-8d", sw);
  std::printf("\n");

  RunningStats fixed_all;
  double best_fixed = 0.0;
  for (double stall : {1.0, 5.0, 10.0, 15.0, 20.0}) {
    std::printf("%-14.0f", stall);
    for (int sw = 0; sw <= 4; ++sw) {
      abr::QoeParams p;
      p.stall_penalty = stall;
      p.switch_penalty = static_cast<double>(sw);
      const double rate = run_fixed(make_abr, users, user_count, p, seed);
      fixed_all.add(rate);
      best_fixed = std::max(best_fixed, rate);
      std::printf("%-11.4f", rate);
    }
    std::printf("\n");
  }

  const double lf = run_lingxi(make_abr, users, user_count, predictor, lf_candidates(), seed);
  const double lb = run_lingxi(make_abr, users, user_count, predictor, {}, seed);
  std::printf("\nfixed params: mean %.4f, range [%.4f, %.4f]\n", fixed_all.mean(),
              fixed_all.min(), fixed_all.max());
  std::printf("L(F) fixed candidates : %.4f (%+.1f%% vs best fixed, %+.1f%% vs mean)\n",
              lf, best_fixed > 0 ? (lf / best_fixed - 1.0) * 100.0 : 0.0,
              fixed_all.mean() > 0 ? (lf / fixed_all.mean() - 1.0) * 100.0 : 0.0);
  std::printf("L(B) Bayesian optimum : %.4f (%+.1f%% vs best fixed, %+.1f%% vs mean)\n",
              lb, best_fixed > 0 ? (lb / best_fixed - 1.0) * 100.0 : 0.0,
              fixed_all.mean() > 0 ? (lb / fixed_all.mean() - 1.0) * 100.0 : 0.0);
}

}  // namespace

int main() {
  std::printf("training Pensieve policy (QoE params in state, randomized reward)...\n");
  Rng prng(505);
  auto pensieve = std::make_shared<abr::Pensieve>(4, prng);
  {
    abr::PensieveTrainConfig tcfg;
    tcfg.episodes = 600;
    tcfg.max_segments = 45;
    tcfg.entropy_beta = 0.01;
    tcfg.lr = 1e-3;
    const trace::VideoGenerator videos(video_config());
    // Train across a broad bandwidth population: the policy must see worlds
    // where aggressive play pays off AND worlds where it stalls, or it can
    // never become sensitive to the QoE parameters in its state.
    trace::PopulationModel::Config train_net_cfg;
    train_net_cfg.median_bandwidth = 2000.0;
    train_net_cfg.sigma = 0.8;
    train_net_cfg.relative_sd = 0.5;
    const trace::PopulationModel networks(train_net_cfg);
    const auto report = abr::train_pensieve(*pensieve, videos, networks, tcfg, prng);
    std::printf("  mean return first/last 10%% of episodes: %.2f -> %.2f\n",
                report.initial_mean_return, report.final_mean_return);

    // Parameter-sensitivity probe: the same observation under stall-averse
    // vs quality-first objectives should not always map to the same action.
    const trace::Video probe_video(video_config().ladder, 45, 1.0);
    sim::AbrObservation probe;
    probe.video = &probe_video;
    probe.buffer = 4.0;
    probe.buffer_max = 8.0;
    probe.next_segment = 10;
    probe.first_segment = false;
    probe.last_level = 1;
    probe.throughput_history = {1800.0, 2200.0, 2000.0, 1900.0, 2100.0};
    probe.download_time_history = {0.5, 0.4, 0.45, 0.5, 0.42};
    abr::QoeParams averse;
    averse.stall_penalty = 20.0;
    abr::QoeParams eager;
    eager.stall_penalty = 1.0;
    pensieve->set_params(averse);
    const std::size_t a1 = pensieve->select(probe);
    pensieve->set_params(eager);
    const std::size_t a2 = pensieve->select(probe);
    pensieve->set_params(abr::QoeParams{});
    std::printf("  param sensitivity probe: action %zu (stall-averse) vs %zu "
                "(quality-first)\n", a1, a2);
  }

  const auto rule_users = rule_based_users();
  const auto data_users = data_driven_users();
  constexpr std::size_t kRuleUserCount = 64;
  constexpr std::size_t kDataUserCount = 40;

  std::printf("fitting per-world exit-rate predictors...\n");
  const auto rule_predictor = train_matched_predictor(rule_users, kRuleUserCount, 404);
  const auto data_predictor = train_matched_predictor(data_users, kDataUserCount, 405);

  // Horizon 4 keeps the 4^H sequence enumeration fast enough for the sweep
  // without changing MPC's qualitative behaviour.
  const AbrFactory make_mpc = [] {
    abr::RobustMpc::Config cfg;
    cfg.horizon = 4;
    return std::make_unique<abr::RobustMpc>(cfg);
  };
  const AbrFactory make_pensieve = [pensieve]() -> std::unique_ptr<abr::AbrAlgorithm> {
    return pensieve->clone();
  };

  run_panel("Figure 10(a): rule-based users x RobustMPC", make_mpc, rule_users,
            kRuleUserCount, rule_predictor, 1);
  run_panel("Figure 10(b): rule-based users x Pensieve", make_pensieve, rule_users,
            kRuleUserCount, rule_predictor, 2);
  run_panel("Figure 10(c): data-driven users x RobustMPC", make_mpc, data_users,
            kDataUserCount, data_predictor, 3);
  run_panel("Figure 10(d): data-driven users x Pensieve", make_pensieve, data_users,
            kDataUserCount, data_predictor, 4);
  return 0;
}
