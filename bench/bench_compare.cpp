// Perf-regression gate CLI: compares bench --json summaries against the
// committed baseline (bench/baseline.json) and exits non-zero on a
// regression past the per-check threshold — CI's run-to-run perf signal.
//
// Usage:
//   bench_compare --baseline bench/baseline.json \
//     --input fleet_scaling=out/fleet_scaling.json \
//     [--input fig12=out/fig12.json ...]
//
// Checks read dimensionless ratios (metric / divide_by measured in the same
// process) so the committed baseline values transfer across machines; see
// analytics/bench_gate.h for the baseline schema and comparison rule.
// Exit codes: 0 all checks pass, 1 regression(s), 2 bad usage or unreadable
// input.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analytics/bench_gate.h"
#include "common/json.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare --baseline <baseline.json> "
               "--input <label>=<bench.json> [--input ...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using lingxi::JsonValue;
  using lingxi::parse_json_file;
  namespace analytics = lingxi::analytics;

  std::string baseline_path;
  std::map<std::string, JsonValue> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage();
      baseline_path = v;
    } else if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return usage();
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v || eq[1] == '\0') {
        std::fprintf(stderr, "bench_compare: --input wants <label>=<path>, got '%s'\n", v);
        return 2;
      }
      const std::string label(v, static_cast<std::size_t>(eq - v));
      auto doc = parse_json_file(eq + 1);
      if (!doc) {
        std::fprintf(stderr, "bench_compare: %s\n", doc.error().message.c_str());
        return 2;
      }
      inputs.insert_or_assign(label, std::move(*doc));
    } else {
      std::fprintf(stderr, "bench_compare: unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (baseline_path.empty() || inputs.empty()) return usage();

  auto spec = analytics::BaselineSpec::load(baseline_path);
  if (!spec) {
    std::fprintf(stderr, "bench_compare: %s\n", spec.error().message.c_str());
    return 2;
  }

  const analytics::GateReport report = analytics::evaluate_baseline(*spec, inputs);
  std::printf("bench_compare: %zu check(s) against %s\n", spec->checks.size(),
              baseline_path.c_str());
  report.write_text(std::cout);
  if (!report.ok()) {
    std::fprintf(stderr, "bench_compare: perf regression detected\n");
    return 1;
  }
  std::printf("bench_compare: all checks within tolerance\n");
  return 0;
}
