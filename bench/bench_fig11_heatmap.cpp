// Figure 11: "Heatmap of Stall Parameters under Different Sensitivities"
// (§5.2 Detailed Analysis) — on the fleet telemetry pipeline.
//
// For every rule-based user in the 8x8 (stall count threshold x stall time
// threshold) grid, runs a small LingXi L(B) fleet on top of RobustMPC /
// Pensieve with telemetry capture, archives it, and reports the mean stall
// parameter LingXi converged to — computed by scanning the archive's
// measured session records (an ArchiveReader range query, not live state).
// Each cell also replays its archive and checks the accumulator checksum
// against the live run. Expected shape: the right side (higher exit
// thresholds = more stall-tolerant users) carries smaller stall parameters —
// darker in the paper's heatmap.
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>

#include "abr/pensieve.h"
#include "abr/robust_mpc.h"
#include "bench_util.h"
#include "common/running_stats.h"
#include "sim/fleet_runner.h"
#include "telemetry/capture.h"
#include "telemetry/replay.h"
#include "user/rule_based.h"

using namespace lingxi;

namespace {

constexpr std::size_t kSessions = 28;
constexpr std::size_t kWarmup = 8;
constexpr std::size_t kUsersPerCell = 3;

trace::PopulationModel::Config network_config() {
  trace::PopulationModel::Config cfg;
  cfg.median_bandwidth = 1300.0;
  cfg.sigma = 0.4;
  cfg.relative_sd = 0.45;
  return cfg;
}

user::RuleBasedUser::Config rule_config(int count_thr, int time_thr) {
  user::RuleBasedUser::Config ucfg;
  ucfg.stall_count_threshold = static_cast<std::size_t>(count_thr);
  ucfg.stall_time_threshold = static_cast<double>(time_thr);
  ucfg.content_exit_rate = 0.055;
  return ucfg;
}

struct CellStats {
  double mean_stall_param = 0.0;
  bool checksum_match = false;
};

/// One grid cell: simulate a kUsersPerCell-user LingXi fleet once, archive
/// it, and answer the "what stall parameter did LingXi settle on" query from
/// the archive alone.
CellStats run_cell(const sim::FleetRunner::AbrFactory& abr_factory,
                   const bench::TrainedPredictor& predictor, int count_thr, int time_thr,
                   std::uint64_t seed, const std::string& dir) {
  sim::FleetConfig cfg;
  cfg.users = kUsersPerCell;
  cfg.days = 1;
  cfg.sessions_per_user_day = kSessions;
  cfg.warmup_sessions = kWarmup;
  cfg.users_per_shard = 1;
  cfg.threads = 0;
  cfg.enable_lingxi = true;
  cfg.network = network_config();
  cfg.lingxi.space.optimize_stall = true;
  cfg.lingxi.space.optimize_switch = true;
  cfg.lingxi.space.optimize_beta = false;
  cfg.lingxi.obo_rounds = 8;
  cfg.lingxi.monte_carlo.samples = 24;
  cfg.lingxi.monte_carlo.sample_duration = 25.0;

  sim::FleetRunner runner(cfg, abr_factory);
  runner.set_user_factory([count_thr, time_thr](std::size_t, Rng&) {
    return std::make_unique<user::RuleBasedUser>(rule_config(count_thr, time_thr));
  });
  runner.set_predictor_factory([&predictor] { return predictor.make(); });
  telemetry::ShardedCapture capture;
  runner.set_telemetry_sink(&capture);
  const sim::FleetAccumulator live = runner.run(seed);

  CellStats cell;
  const telemetry::FleetArchive archive = capture.finish();
  if (auto s = archive.write(dir); !s) {
    std::fprintf(stderr, "archive write failed: %s\n", s.error().message.c_str());
    return cell;
  }

  const auto reader = telemetry::ArchiveReader::open(dir);
  if (!reader) {
    std::fprintf(stderr, "archive open failed: %s\n", reader.error().message.c_str());
    return cell;
  }
  // The Fig. 11 query: mean LingXi-chosen stall penalty over measured
  // (post-warmup) sessions, straight off the archived session records.
  RunningStats chosen;
  const auto status =
      reader->scan([&](const telemetry::ArchiveSessionRecord& rec) {
        if (rec.measured) chosen.add(rec.params_after.stall_penalty);
      },
                   nullptr);
  if (!status.ok()) {
    std::fprintf(stderr, "archive scan failed: %s\n", status.error().message.c_str());
    return cell;
  }
  cell.mean_stall_param = chosen.mean();

  const auto replayed = telemetry::Replay::run(*reader);
  cell.checksum_match =
      replayed.has_value() && replayed->fleet.checksum() == live.checksum();
  return cell;
}

void heatmap(const char* title, const sim::FleetRunner::AbrFactory& abr_factory,
             const bench::TrainedPredictor& predictor, std::uint64_t seed,
             const std::string& archive_root, std::size_t& matches, std::size_t& cells) {
  bench::print_header(title);
  std::printf("rows: stall-time threshold (s); cols: stall-count threshold\n");
  std::printf("%-8s", "");
  for (int count_thr = 2; count_thr <= 9; ++count_thr) std::printf("%-8d", count_thr);
  std::printf("\n");
  double left_sum = 0.0, right_sum = 0.0;
  for (int time_thr = 2; time_thr <= 9; ++time_thr) {
    std::printf("%-8d", time_thr);
    for (int count_thr = 2; count_thr <= 9; ++count_thr) {
      const CellStats cell = run_cell(
          abr_factory, predictor, count_thr, time_thr,
          seed + static_cast<std::uint64_t>(time_thr * 100 + count_thr),
          archive_root + "/cell");
      ++cells;
      if (cell.checksum_match) ++matches;
      // "Left" = least tolerant quadrant, "right" = most tolerant.
      if (count_thr <= 5 && time_thr <= 5) left_sum += cell.mean_stall_param;
      if (count_thr > 5 && time_thr > 5) right_sum += cell.mean_stall_param;
      std::printf("%-8.2f", cell.mean_stall_param);
    }
    std::printf("\n");
  }
  std::printf("mean stall parameter: sensitive quadrant %.2f vs tolerant quadrant %.2f\n"
              "(expect lower for tolerant users: they do not need stall protection)\n",
              left_sum / 16.0, right_sum / 16.0);
}

}  // namespace

int main() {
  std::printf("fitting exit-rate predictor on the rule-based world...\n");
  const auto rule_factory = [](Rng& rng) -> std::unique_ptr<user::UserModel> {
    // The log world spans the same rule grid the evaluation uses.
    const int count_thr = 2 + static_cast<int>(rng.uniform_int(0, 7));
    const int time_thr = 2 + static_cast<int>(rng.uniform_int(0, 7));
    return std::make_unique<user::RuleBasedUser>(rule_config(count_thr, time_thr));
  };
  const auto predictor =
      bench::train_predictor_for_world(rule_factory, network_config(), {}, 606);

  const std::string archive_root =
      (std::filesystem::temp_directory_path() / "lingxi_fig11_archives").string();
  std::size_t matches = 0, cells = 0;

  abr::RobustMpc::Config mpc_cfg;
  mpc_cfg.horizon = 4;
  heatmap("Figure 11(a): RobustMPC",
          [mpc_cfg] { return std::make_unique<abr::RobustMpc>(mpc_cfg); }, predictor,
          10000, archive_root, matches, cells);

  Rng prng(707);
  abr::Pensieve pensieve(4, prng);
  {
    abr::PensieveTrainConfig tcfg;
    tcfg.episodes = 400;
    tcfg.max_segments = 40;
    tcfg.entropy_beta = 0.01;
    tcfg.lr = 1e-3;
    const trace::VideoGenerator videos({});
    trace::PopulationModel::Config train_cfg;
    train_cfg.median_bandwidth = 2000.0;
    train_cfg.sigma = 0.8;
    train_cfg.relative_sd = 0.5;
    const trace::PopulationModel networks(train_cfg);
    abr::train_pensieve(pensieve, videos, networks, tcfg, prng);
  }
  heatmap("Figure 11(b): Pensieve",
          [pensieve] { return std::make_unique<abr::Pensieve>(pensieve); }, predictor,
          20000, archive_root, matches, cells);

  std::printf("\nreplay-vs-live accumulator checksums: %zu/%zu cells MATCH\n", matches,
              cells);
  return matches == cells ? 0 : 1;
}
