// Figure 11: "Heatmap of Stall Parameters under Different Sensitivities"
// (§5.2 Detailed Analysis).
//
// For every rule-based user in the 8x8 (stall count threshold x stall time
// threshold) grid, runs LingXi L(B) on top of RobustMPC / Pensieve and
// reports the mean stall parameter LingXi converged to, averaged over
// several users per cell. Expected shape: the right side (higher exit
// thresholds = more stall-tolerant users) carries smaller stall parameters —
// darker in the paper's heatmap.
#include <cstdio>
#include <memory>

#include "abr/pensieve.h"
#include "abr/robust_mpc.h"
#include "bench_util.h"
#include "common/running_stats.h"
#include "core/lingxi.h"
#include "sim/session.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/rule_based.h"

using namespace lingxi;

namespace {

constexpr std::size_t kSessions = 28;
constexpr std::size_t kWarmup = 8;
constexpr std::size_t kUsersPerCell = 3;

trace::PopulationModel::Config network_config() {
  trace::PopulationModel::Config cfg;
  cfg.median_bandwidth = 1300.0;
  cfg.sigma = 0.4;
  cfg.relative_sd = 0.45;
  return cfg;
}

user::RuleBasedUser::Config rule_config(int count_thr, int time_thr) {
  user::RuleBasedUser::Config ucfg;
  ucfg.stall_count_threshold = static_cast<std::size_t>(count_thr);
  ucfg.stall_time_threshold = static_cast<double>(time_thr);
  ucfg.content_exit_rate = 0.055;
  return ucfg;
}

double mean_chosen_stall_param(abr::AbrAlgorithm& abr_algo,
                               const bench::TrainedPredictor& predictor, int count_thr,
                               int time_thr, std::uint64_t seed) {
  const trace::PopulationModel networks(network_config());
  const trace::VideoGenerator videos({});
  const sim::SessionSimulator simulator({});

  core::LingXiConfig cfg;
  cfg.space.optimize_stall = true;
  cfg.space.optimize_switch = true;
  cfg.space.optimize_beta = false;
  cfg.obo_rounds = 8;
  cfg.monte_carlo.samples = 24;
  cfg.monte_carlo.sample_duration = 25.0;

  RunningStats chosen;
  for (std::size_t u = 0; u < kUsersPerCell; ++u) {
    Rng rng(seed + u * 104729);
    user::RuleBasedUser user_model(rule_config(count_thr, time_thr));
    const auto profile = networks.sample(rng);
    core::LingXi lingxi(cfg, predictor.make(), trace::BitrateLadder::default_ladder());
    abr_algo.set_params(cfg.default_params);

    for (std::size_t s = 0; s < kSessions; ++s) {
      const trace::Video video = videos.sample(rng);
      auto bw = profile.make_session_model();
      lingxi.begin_session();
      const auto session = simulator.run(video, abr_algo, *bw, &user_model, rng);
      for (const auto& seg : session.segments) lingxi.on_segment(seg);
      const bool stall_exit = session.exited && !session.segments.empty() &&
                              session.segments.back().stall_time > 0.05;
      lingxi.end_session(stall_exit);
      const Seconds buffer =
          session.segments.empty() ? 0.0 : session.segments.back().buffer_after;
      lingxi.maybe_optimize(abr_algo, buffer, rng);
      if (s >= kWarmup) chosen.add(abr_algo.params().stall_penalty);
    }
  }
  return chosen.mean();
}

void heatmap(const char* title, abr::AbrAlgorithm& abr_algo,
             const bench::TrainedPredictor& predictor, std::uint64_t seed) {
  bench::print_header(title);
  std::printf("rows: stall-time threshold (s); cols: stall-count threshold\n");
  std::printf("%-8s", "");
  for (int count_thr = 2; count_thr <= 9; ++count_thr) std::printf("%-8d", count_thr);
  std::printf("\n");
  double left_sum = 0.0, right_sum = 0.0;
  for (int time_thr = 2; time_thr <= 9; ++time_thr) {
    std::printf("%-8d", time_thr);
    for (int count_thr = 2; count_thr <= 9; ++count_thr) {
      const double p = mean_chosen_stall_param(
          abr_algo, predictor, count_thr, time_thr,
          seed + static_cast<std::uint64_t>(time_thr * 100 + count_thr));
      // "Left" = least tolerant quadrant, "right" = most tolerant.
      if (count_thr <= 5 && time_thr <= 5) left_sum += p;
      if (count_thr > 5 && time_thr > 5) right_sum += p;
      std::printf("%-8.2f", p);
    }
    std::printf("\n");
  }
  std::printf("mean stall parameter: sensitive quadrant %.2f vs tolerant quadrant %.2f\n"
              "(expect lower for tolerant users: they do not need stall protection)\n",
              left_sum / 16.0, right_sum / 16.0);
}

}  // namespace

int main() {
  std::printf("fitting exit-rate predictor on the rule-based world...\n");
  const auto rule_factory = [](Rng& rng) -> std::unique_ptr<user::UserModel> {
    // The log world spans the same rule grid the evaluation uses.
    const int count_thr = 2 + static_cast<int>(rng.uniform_int(0, 7));
    const int time_thr = 2 + static_cast<int>(rng.uniform_int(0, 7));
    return std::make_unique<user::RuleBasedUser>(rule_config(count_thr, time_thr));
  };
  const auto predictor =
      bench::train_predictor_for_world(rule_factory, network_config(), {}, 606);

  abr::RobustMpc::Config mpc_cfg;
  mpc_cfg.horizon = 4;
  abr::RobustMpc mpc(mpc_cfg);
  heatmap("Figure 11(a): RobustMPC", mpc, predictor, 10000);

  Rng prng(707);
  abr::Pensieve pensieve(4, prng);
  {
    abr::PensieveTrainConfig tcfg;
    tcfg.episodes = 400;
    tcfg.max_segments = 40;
    tcfg.entropy_beta = 0.01;
    tcfg.lr = 1e-3;
    const trace::VideoGenerator videos({});
    trace::PopulationModel::Config train_cfg;
    train_cfg.median_bandwidth = 2000.0;
    train_cfg.sigma = 0.8;
    train_cfg.relative_sd = 0.5;
    const trace::PopulationModel networks(train_cfg);
    abr::train_pensieve(pensieve, videos, networks, tcfg, prng);
  }
  heatmap("Figure 11(b): Pensieve", pensieve, predictor, 20000);
  return 0;
}
