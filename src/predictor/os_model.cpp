#include "predictor/os_model.h"

#include "common/assert.h"

namespace lingxi::predictor {

void OverallStatsModel::observe(std::size_t quality_level, SwitchType sw, bool exited) {
  LINGXI_ASSERT(quality_level < kMaxLevels);
  Bucket& b = buckets_[quality_level][static_cast<std::size_t>(sw)];
  ++b.count;
  if (exited) ++b.exits;
  ++total_count_;
  if (exited) ++total_exits_;
}

double OverallStatsModel::global_rate() const {
  if (total_count_ == 0) return 0.05;  // neutral prior before any data
  return static_cast<double>(total_exits_) / static_cast<double>(total_count_);
}

double OverallStatsModel::predict(std::size_t quality_level, SwitchType sw) const {
  LINGXI_ASSERT(quality_level < kMaxLevels);
  const Bucket& b = buckets_[quality_level][static_cast<std::size_t>(sw)];
  // Laplace smoothing toward the global rate: (exits + k*g) / (count + k).
  constexpr double kPrior = 50.0;
  const double g = global_rate();
  return (static_cast<double>(b.exits) + kPrior * g) /
         (static_cast<double>(b.count) + kPrior);
}

void OverallStatsModel::fit_session(const sim::SessionResult& session) {
  for (std::size_t i = 0; i < session.segments.size(); ++i) {
    const bool exited_here = session.exited && i + 1 == session.segments.size();
    observe(session.segments[i].level, switch_type(session, i), exited_here);
  }
}

SwitchType switch_type(const sim::SessionResult& session, std::size_t segment_index) {
  LINGXI_ASSERT(segment_index < session.segments.size());
  if (segment_index == 0) return SwitchType::kNone;
  const auto cur = session.segments[segment_index].level;
  const auto prev = session.segments[segment_index - 1].level;
  if (cur == prev) return SwitchType::kNone;
  return cur > prev ? SwitchType::kUp : SwitchType::kDown;
}

}  // namespace lingxi::predictor
