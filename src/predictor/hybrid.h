// Hybrid exit-rate predictor — Equation 4:
//
//   R_exit = NN(Stall) + OS(Quality, Smoothness)   if the segment stalled
//          = OS(Quality, Smoothness)               otherwise
//
// The NN term personalizes the dominant (1e-1) stall effect from the user's
// engagement history; the OS term pools the small (1e-3 / 1e-2) quality and
// smoothness effects across the population.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "predictor/engagement_state.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"

namespace lingxi::predictor {

class HybridExitPredictor {
 public:
  struct Config {
    /// Blend between the learned stall term and the user's empirical
    /// stall-exit frequency (exits per stall event, smoothed toward
    /// `prior_rate`). The empirical term is the strongest personal signal —
    /// it is computed directly from the engagement counters the state
    /// already persists — while the net captures severity and context.
    double nn_weight = 0.35;
    double prior_rate = 0.25;
    double prior_strength = 4.0;
  };

  /// Both components are shared: the OS model is population-level, the net
  /// may be shared (global) or per-user (personalized fine-tune).
  HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                      std::shared_ptr<const OverallStatsModel> os_model);
  HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                      std::shared_ptr<const OverallStatsModel> os_model, Config config);

  /// One exit-probability evaluation in batched-friendly form: everything
  /// predict() reads, decoupled from SegmentRecord. `state` must already
  /// include the segment being queried.
  struct ExitQuery {
    const EngagementState* state = nullptr;
    std::size_t level = 0;
    Seconds stall_time = 0.0;
    SwitchType sw = SwitchType::kNone;
  };

  /// Reusable scratch for predict_batch: query/feature staging plus the
  /// net's own workspace, so a lockstep Monte Carlo run allocates once.
  struct BatchScratch {
    StallExitNet::BatchWorkspace net;
    std::vector<HybridExitPredictor::ExitQuery> queries;
    std::vector<double> features;
    std::vector<double> nn_terms;
    std::vector<std::size_t> stalled;
  };

  /// R_exit for the segment just downloaded. `state` must already include
  /// this segment (EngagementState::on_segment called).
  double predict(const EngagementState& state, const sim::SegmentRecord& segment,
                 SwitchType sw) const;
  /// predict() in query form — the shared scalar implementation.
  double predict(const ExitQuery& query) const;
  /// Finish a stalled query given its net output — the per-query tail of
  /// predict_batch (OS lookup + blend), bitwise identical to it. Exposed so
  /// ExitQueryPool can batch net forwards across predictors that share a net
  /// while every query's OS/blend still runs through its own predictor.
  double finish_stalled(const ExitQuery& query, double nn_term) const;
  /// Batched predict over `count` queries: the stalled queries' features are
  /// gathered into one matrix and their net forwards run as a single
  /// StallExitNet::predict_batch call. Bitwise identical per item to
  /// predict(). `scratch` may be null; passing one amortizes buffers.
  void predict_batch(std::size_t count, const ExitQuery* queries, double* out,
                     BatchScratch* scratch = nullptr) const;

  StallExitNet& net() { return *net_; }
  const StallExitNet& net() const { return *net_; }
  const OverallStatsModel& os_model() const { return *os_model_; }

  /// Copy of this predictor whose net is deep-copied instead of shared.
  /// predict() runs forward passes that cache per-layer activations, so a
  /// shared net must not be used from multiple threads; fleet workers take a
  /// private copy per user (the OS model stays shared — it is const here).
  HybridExitPredictor with_private_net() const;

 private:
  /// Blend the net's stall term with the personal empirical rate and the OS
  /// term — shared tail of the scalar and batched paths.
  double combine(const EngagementState& state, double nn_term, double os) const;

  std::shared_ptr<StallExitNet> net_;
  std::shared_ptr<const OverallStatsModel> os_model_;
  Config config_;
};

/// Bridges the hybrid predictor into the session simulator / Monte Carlo
/// engine as a sim::ExitModel. Clones the seed engagement state at every
/// begin_session() so each rollout starts from the live user state
/// (Algorithm 2 line 3: S_sim <- S).
class PredictorExitModel final : public sim::ExitModel {
 public:
  /// `rollout_tag` is bookkeeping only (it never changes a prediction): the
  /// rollout half of the (user, rollout, segment) key the fleet-wide
  /// ExitQueryPool files parked queries under.
  PredictorExitModel(HybridExitPredictor predictor, EngagementState seed_state,
                     Seconds segment_duration, std::uint32_t rollout_tag = 0);

  void begin_session() override;
  double exit_probability(const sim::SegmentRecord& segment) override;

  /// The state-mutation half of exit_probability(): advance the rollout
  /// state with `segment` and build the predict query for it. Split out so
  /// the lockstep Monte Carlo path can batch the predictor evaluation across
  /// rollouts; exit_probability() is predict(prepare(segment)).
  HybridExitPredictor::ExitQuery prepare(const sim::SegmentRecord& segment);

  std::uint32_t rollout_tag() const noexcept { return rollout_tag_; }

 private:
  HybridExitPredictor predictor_;
  EngagementState seed_state_;
  EngagementState state_;
  Seconds segment_duration_;
  std::uint32_t rollout_tag_ = 0;
  bool prev_valid_ = false;
  std::size_t prev_level_ = 0;
};

/// Fleet-wide parking lot for stalled exit queries — the shared flush plane
/// of the cross-user wave scheduler (sim::ShardScheduler).
///
/// Concurrent Monte Carlo evaluations (different users, different
/// candidates) park queries here instead of flushing per evaluation; one
/// flush() then evaluates everything parked since the previous flush.
/// Because treatment users may own private nets, a flush sub-batches per
/// net: queries are grouped by the net they must be evaluated under (stable
/// first-seen order, park order within a group), each group runs as one
/// StallExitNet::predict_batch, and each query's OS/blend tail runs through
/// its own predictor. Per-row forwards are bitwise independent of batch
/// composition, so pooling across users changes no result bit — only how
/// many rows each forward amortizes weight streaming over.
///
/// Tickets: park() returns a ticket valid until the next flush() after that
/// flush()'s probabilities have been superseded — i.e. each parked ticket
/// must be read (prob()) or discarded before queries parked after the next
/// flush are flushed again. The wave scheduler guarantees this by resuming
/// every parked evaluation exactly once between flushes. Not thread-safe:
/// one pool belongs to one shard, driven by one worker at a time.
class ExitQueryPool {
 public:
  /// Deterministic identity of a parked query, for diagnostics and ordering
  /// assertions — replays are deterministic because park order is a pure
  /// function of (seed, shard composition), never of wall-clock timing.
  struct QueryTag {
    std::uint32_t user = 0;
    std::uint32_t rollout = 0;
    std::uint32_t segment = 0;
  };

  /// Aggregate batching telemetry (sim::FleetRunStats reports these).
  struct Stats {
    std::uint64_t flushes = 0;       ///< flush() calls with >= 1 query
    std::uint64_t queries = 0;       ///< stalled queries evaluated
    std::uint64_t net_batches = 0;   ///< per-net predict_batch calls
    std::uint64_t max_flush = 0;     ///< largest single flush
  };

  /// Park one stalled query to be evaluated under `predictor`'s net at the
  /// next flush(). The query's state pointer must stay valid until then.
  std::size_t park(const HybridExitPredictor& predictor,
                   const HybridExitPredictor::ExitQuery& query, QueryTag tag);
  /// Drop a pending ticket unevaluated (its rollout was abandoned by
  /// pruning). The slot is skipped at flush time.
  void discard(std::size_t ticket);
  /// Evaluate every pending query (per-net sub-batches), publish their
  /// probabilities for prob(), and clear the pending set.
  void flush();
  /// Probability for a ticket parked before the most recent flush().
  double prob(std::size_t ticket) const;

  std::size_t pending() const noexcept { return pending_.size(); }
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    HybridExitPredictor::ExitQuery query;
    const HybridExitPredictor* predictor = nullptr;  ///< null = discarded
    QueryTag tag;
  };

  std::vector<Entry> pending_;
  std::vector<double> probs_;
  // flush() scratch, reused across flushes.
  struct NetGroup {
    const StallExitNet* net = nullptr;
    std::vector<std::size_t> members;  ///< pending_ indices, park order
  };
  std::vector<NetGroup> groups_;
  std::vector<double> features_;
  std::vector<double> nn_terms_;
  StallExitNet::BatchWorkspace ws_;
  Stats stats_;
};

/// Bridges the hybrid predictor into the lockstep Monte Carlo engine
/// (sim::MonteCarloEvaluator::evaluate_rollouts / sim::RolloutWave): hands
/// out per-rollout PredictorExitModel instances seeded with the live user
/// state, and evaluates their pending queries with one batched net forward
/// per step. Two flush scopes:
///   * standalone (pool == nullptr): parked queries stay in the evaluator
///     and flush() computes the batch itself — one flush per wave of one
///     evaluation (the per-optimization batching baseline);
///   * pooled: parked queries go to a shared ExitQueryPool under the
///     (user, rollout, segment) key, the pool owner flushes once per
///     scheduler wave across ALL users' evaluations, and flush() here just
///     collects this evaluator's probabilities in park order.
/// Both scopes are bitwise identical per query. The referenced predictor,
/// seed state and pool must outlive the evaluator.
class BatchPredictorExitEvaluator final : public sim::BatchExitEvaluator {
 public:
  BatchPredictorExitEvaluator(const HybridExitPredictor& predictor,
                              const EngagementState& seed_state, Seconds segment_duration,
                              ExitQueryPool* pool = nullptr, std::uint32_t user_tag = 0)
      : predictor_(predictor),
        seed_state_(seed_state),
        segment_duration_(segment_duration),
        pool_(pool),
        user_tag_(user_tag) {}

  std::unique_ptr<sim::ExitModel> make_model() const override;
  /// Non-stalled segments resolve inline through the OS-only path; stalled
  /// ones park for a batched net forward. `model` must be a make_model()
  /// instance of this evaluator.
  bool prepare(sim::ExitModel& model, const sim::SegmentRecord& segment,
               double& out) const override;
  std::size_t flush(double* out) const override;
  void discard_parked() const override;

 private:
  const HybridExitPredictor& predictor_;
  const EngagementState& seed_state_;
  Seconds segment_duration_;
  ExitQueryPool* pool_ = nullptr;
  std::uint32_t user_tag_ = 0;
  mutable std::uint32_t next_rollout_tag_ = 0;
  mutable std::vector<std::size_t> tickets_;  ///< pool tickets, park order
  mutable HybridExitPredictor::BatchScratch scratch_;
};

}  // namespace lingxi::predictor
