// Hybrid exit-rate predictor — Equation 4:
//
//   R_exit = NN(Stall) + OS(Quality, Smoothness)   if the segment stalled
//          = OS(Quality, Smoothness)               otherwise
//
// The NN term personalizes the dominant (1e-1) stall effect from the user's
// engagement history; the OS term pools the small (1e-3 / 1e-2) quality and
// smoothness effects across the population.
#pragma once

#include <memory>

#include "predictor/engagement_state.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"

namespace lingxi::predictor {

class HybridExitPredictor {
 public:
  struct Config {
    /// Blend between the learned stall term and the user's empirical
    /// stall-exit frequency (exits per stall event, smoothed toward
    /// `prior_rate`). The empirical term is the strongest personal signal —
    /// it is computed directly from the engagement counters the state
    /// already persists — while the net captures severity and context.
    double nn_weight = 0.35;
    double prior_rate = 0.25;
    double prior_strength = 4.0;
  };

  /// Both components are shared: the OS model is population-level, the net
  /// may be shared (global) or per-user (personalized fine-tune).
  HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                      std::shared_ptr<const OverallStatsModel> os_model);
  HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                      std::shared_ptr<const OverallStatsModel> os_model, Config config);

  /// R_exit for the segment just downloaded. `state` must already include
  /// this segment (EngagementState::on_segment called).
  double predict(const EngagementState& state, const sim::SegmentRecord& segment,
                 SwitchType sw) const;

  StallExitNet& net() { return *net_; }
  const OverallStatsModel& os_model() const { return *os_model_; }

  /// Copy of this predictor whose net is deep-copied instead of shared.
  /// predict() runs forward passes that cache per-layer activations, so a
  /// shared net must not be used from multiple threads; fleet workers take a
  /// private copy per user (the OS model stays shared — it is const here).
  HybridExitPredictor with_private_net() const;

 private:
  std::shared_ptr<StallExitNet> net_;
  std::shared_ptr<const OverallStatsModel> os_model_;
  Config config_;
};

/// Bridges the hybrid predictor into the session simulator / Monte Carlo
/// engine as a sim::ExitModel. Clones the seed engagement state at every
/// begin_session() so each rollout starts from the live user state
/// (Algorithm 2 line 3: S_sim <- S).
class PredictorExitModel final : public sim::ExitModel {
 public:
  PredictorExitModel(HybridExitPredictor predictor, EngagementState seed_state,
                     Seconds segment_duration);

  void begin_session() override;
  double exit_probability(const sim::SegmentRecord& segment) override;

 private:
  HybridExitPredictor predictor_;
  EngagementState seed_state_;
  EngagementState state_;
  Seconds segment_duration_;
  bool prev_valid_ = false;
  std::size_t prev_level_ = 0;
};

}  // namespace lingxi::predictor
