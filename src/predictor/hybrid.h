// Hybrid exit-rate predictor — Equation 4:
//
//   R_exit = NN(Stall) + OS(Quality, Smoothness)   if the segment stalled
//          = OS(Quality, Smoothness)               otherwise
//
// The NN term personalizes the dominant (1e-1) stall effect from the user's
// engagement history; the OS term pools the small (1e-3 / 1e-2) quality and
// smoothness effects across the population.
#pragma once

#include <memory>

#include "predictor/engagement_state.h"
#include "predictor/exit_net.h"
#include "predictor/os_model.h"

namespace lingxi::predictor {

class HybridExitPredictor {
 public:
  struct Config {
    /// Blend between the learned stall term and the user's empirical
    /// stall-exit frequency (exits per stall event, smoothed toward
    /// `prior_rate`). The empirical term is the strongest personal signal —
    /// it is computed directly from the engagement counters the state
    /// already persists — while the net captures severity and context.
    double nn_weight = 0.35;
    double prior_rate = 0.25;
    double prior_strength = 4.0;
  };

  /// Both components are shared: the OS model is population-level, the net
  /// may be shared (global) or per-user (personalized fine-tune).
  HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                      std::shared_ptr<const OverallStatsModel> os_model);
  HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                      std::shared_ptr<const OverallStatsModel> os_model, Config config);

  /// One exit-probability evaluation in batched-friendly form: everything
  /// predict() reads, decoupled from SegmentRecord. `state` must already
  /// include the segment being queried.
  struct ExitQuery {
    const EngagementState* state = nullptr;
    std::size_t level = 0;
    Seconds stall_time = 0.0;
    SwitchType sw = SwitchType::kNone;
  };

  /// Reusable scratch for predict_batch: query/feature staging plus the
  /// net's own workspace, so a lockstep Monte Carlo run allocates once.
  struct BatchScratch {
    StallExitNet::BatchWorkspace net;
    std::vector<HybridExitPredictor::ExitQuery> queries;
    std::vector<double> features;
    std::vector<double> nn_terms;
    std::vector<std::size_t> stalled;
  };

  /// R_exit for the segment just downloaded. `state` must already include
  /// this segment (EngagementState::on_segment called).
  double predict(const EngagementState& state, const sim::SegmentRecord& segment,
                 SwitchType sw) const;
  /// predict() in query form — the shared scalar implementation.
  double predict(const ExitQuery& query) const;
  /// Batched predict over `count` queries: the stalled queries' features are
  /// gathered into one matrix and their net forwards run as a single
  /// StallExitNet::predict_batch call. Bitwise identical per item to
  /// predict(). `scratch` may be null; passing one amortizes buffers.
  void predict_batch(std::size_t count, const ExitQuery* queries, double* out,
                     BatchScratch* scratch = nullptr) const;

  StallExitNet& net() { return *net_; }
  const OverallStatsModel& os_model() const { return *os_model_; }

  /// Copy of this predictor whose net is deep-copied instead of shared.
  /// predict() runs forward passes that cache per-layer activations, so a
  /// shared net must not be used from multiple threads; fleet workers take a
  /// private copy per user (the OS model stays shared — it is const here).
  HybridExitPredictor with_private_net() const;

 private:
  /// Blend the net's stall term with the personal empirical rate and the OS
  /// term — shared tail of the scalar and batched paths.
  double combine(const EngagementState& state, double nn_term, double os) const;

  std::shared_ptr<StallExitNet> net_;
  std::shared_ptr<const OverallStatsModel> os_model_;
  Config config_;
};

/// Bridges the hybrid predictor into the session simulator / Monte Carlo
/// engine as a sim::ExitModel. Clones the seed engagement state at every
/// begin_session() so each rollout starts from the live user state
/// (Algorithm 2 line 3: S_sim <- S).
class PredictorExitModel final : public sim::ExitModel {
 public:
  PredictorExitModel(HybridExitPredictor predictor, EngagementState seed_state,
                     Seconds segment_duration);

  void begin_session() override;
  double exit_probability(const sim::SegmentRecord& segment) override;

  /// The state-mutation half of exit_probability(): advance the rollout
  /// state with `segment` and build the predict query for it. Split out so
  /// the lockstep Monte Carlo path can batch the predictor evaluation across
  /// rollouts; exit_probability() is predict(prepare(segment)).
  HybridExitPredictor::ExitQuery prepare(const sim::SegmentRecord& segment);

 private:
  HybridExitPredictor predictor_;
  EngagementState seed_state_;
  EngagementState state_;
  Seconds segment_duration_;
  bool prev_valid_ = false;
  std::size_t prev_level_ = 0;
};

/// Bridges the hybrid predictor into the lockstep Monte Carlo engine
/// (sim::MonteCarloEvaluator::evaluate_rollouts): hands out per-rollout
/// PredictorExitModel instances seeded with the live user state, and
/// evaluates their pending queries with one batched net forward per step.
/// The referenced predictor and seed state must outlive the evaluator.
class BatchPredictorExitEvaluator final : public sim::BatchExitEvaluator {
 public:
  BatchPredictorExitEvaluator(const HybridExitPredictor& predictor,
                              const EngagementState& seed_state, Seconds segment_duration)
      : predictor_(predictor), seed_state_(seed_state), segment_duration_(segment_duration) {}

  std::unique_ptr<sim::ExitModel> make_model() const override;
  /// Non-stalled segments resolve inline through the OS-only path; stalled
  /// ones park for a batched net forward. `model` must be a make_model()
  /// instance of this evaluator.
  bool prepare(sim::ExitModel& model, const sim::SegmentRecord& segment,
               double& out) const override;
  std::size_t flush(double* out) const override;
  void discard_parked() const override { scratch_.queries.clear(); }

 private:
  const HybridExitPredictor& predictor_;
  const EngagementState& seed_state_;
  Seconds segment_duration_;
  mutable HybridExitPredictor::BatchScratch scratch_;
};

}  // namespace lingxi::predictor
