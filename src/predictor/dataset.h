// Dataset generation, sampling and evaluation for the exit-rate predictor.
//
// Mirrors §3.3 "Dataset and Preprocessing" and the §5.1 ablations:
//   * three dataset compositions — ALL segments, EVENT segments (stall or
//     bitrate switch), STALL segments only (Fig. 9(a));
//   * 80:20 stratified train/test split;
//   * balanced sampling — random undersampling of the majority class
//     (continued watch) to parity with exits (Fig. 9(b));
//   * accuracy / precision / recall / F1 with "exit" as the positive class.
//
// Data comes from the synthetic production environment: user models from
// lingxi::user watching videos over sampled network profiles, HYB as the
// serving ABR (the paper's production algorithm).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "abr/abr.h"
#include "common/rng.h"
#include "nn/tensor.h"
#include "predictor/engagement_state.h"
#include "predictor/exit_net.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/user_population.h"

namespace lingxi::predictor {

enum class DatasetFilter { kAll, kEvent, kStall };

const char* filter_name(DatasetFilter f) noexcept;

struct Sample {
  nn::Tensor features;  ///< 5x8 engagement matrix at decision time
  bool exited = false;  ///< label: user left at this segment
};

struct Dataset {
  std::vector<Sample> samples;

  std::size_t size() const noexcept { return samples.size(); }
  std::size_t positives() const noexcept;  ///< exit samples
  std::size_t negatives() const noexcept;
};

struct DatasetGenConfig {
  std::size_t users = 60;
  std::size_t sessions_per_user = 40;
  DatasetFilter filter = DatasetFilter::kStall;
  /// Bias the network population low so stalls are frequent enough to
  /// learn from (the paper draws its 100k entries from stall-bearing logs).
  trace::PopulationModel::Config network;
  trace::VideoGenerator::Config video;
  user::UserPopulation::Config population;
  /// Optional override for the user behaviour: when set, each simulated user
  /// is drawn from this factory instead of the data-driven population. Lets
  /// callers fit the predictor on the same world it will serve (e.g. the
  /// rule-based §5.2 evaluation).
  std::function<std::unique_ptr<user::UserModel>(Rng&)> user_factory;

  DatasetGenConfig();
};

/// Simulate sessions and harvest (features, label) pairs under `filter`.
Dataset generate_dataset(const DatasetGenConfig& config, Rng& rng);

/// Random undersampling of the majority class to label parity.
Dataset balance(const Dataset& dataset, Rng& rng);

/// Stratified split: `train_fraction` of each class goes to train.
struct SplitDataset {
  Dataset train;
  Dataset test;
};
SplitDataset stratified_split(const Dataset& dataset, double train_fraction, Rng& rng);

struct TrainConfig {
  std::size_t epochs = 8;
  std::size_t batch_size = 32;
  double lr = 1e-3;
};

/// Minibatch Adam + softmax cross-entropy (Eq. 5). Returns mean loss of the
/// final epoch.
double train_exit_net(StallExitNet& net, const Dataset& train_set, const TrainConfig& config,
                      Rng& rng);

struct ClassificationMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t true_pos = 0, false_pos = 0, true_neg = 0, false_neg = 0;
};

/// Evaluate at P(exit) >= `threshold`.
ClassificationMetrics evaluate(StallExitNet& net, const Dataset& test_set,
                               double threshold = 0.5);

}  // namespace lingxi::predictor
