// The personalized stall-exit network (§3.3, Fig. 7).
//
// Architecture, verbatim from the paper: each of the five input dimensions
// passes through its own 1D-CNN (1 -> 64 channels, kernel 1x4) over the
// length-8 history; the five feature maps are merged (flatten + concat) and
// fed to a 64-unit fully connected layer, then a 2-unit layer; softmax gives
// [P(continue), P(exit)].
#pragma once

#include <vector>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "predictor/engagement_state.h"

namespace lingxi::predictor {

class StallExitNet {
 public:
  explicit StallExitNet(Rng& rng);

  /// P(exit) for a 5x8 feature tensor.
  double predict(const nn::Tensor& features);
  /// Raw logits [continue, exit].
  nn::Tensor logits(const nn::Tensor& features);

  /// Reusable scratch for predict_batch: the merged / hidden / logit
  /// matrices, kept by callers that evaluate many batches (one lockstep
  /// Monte Carlo step each) so the buffers are allocated once.
  struct BatchWorkspace {
    std::vector<double> merged;
    std::vector<double> hidden;
    std::vector<double> logits;
  };

  /// Batched P(exit): each row of `features` is one 5x8 feature matrix
  /// flattened row-major (the layout EngagementState::write_features emits).
  /// Writes features.rows probabilities to `out`. Every row is bitwise
  /// identical to predict() on the same features — the batched path reorders
  /// no accumulation (see nn::Dense::forward_batch). Inference only: no
  /// layer caches are touched, so this is const and safe on a net shared
  /// across rollouts. `ws` may be null; passing one amortizes scratch.
  void predict_batch(nn::ConstBatchView features, double* out,
                     BatchWorkspace* ws = nullptr) const;
  /// Backprop a gradient w.r.t. logits (accumulates parameter grads).
  void backward(const nn::Tensor& grad_logits);

  nn::ParamSet param_set();

  /// Weight (de)serialization for checkpointing.
  std::vector<const nn::Tensor*> weights() const;
  /// Restore from tensors in the same order as weights(). Fails (returns
  /// false) on shape mismatch.
  bool load_weights(const std::vector<nn::Tensor>& tensors);

 private:
  std::vector<nn::Conv1D> branches_;  // one per input channel
  std::vector<nn::ReLU> branch_relu_;
  nn::Dense fc1_;
  nn::ReLU relu1_;
  nn::Dense fc2_;
  // backward() bookkeeping
  std::size_t conv_out_len_ = 0;
};

}  // namespace lingxi::predictor
