#include "predictor/exit_net.h"

#include "common/assert.h"
#include "nn/loss.h"

namespace lingxi::predictor {
namespace {

constexpr std::size_t kConvChannels = 64;
constexpr std::size_t kKernel = 4;
constexpr std::size_t kConvOutLen = kHistoryLen - kKernel + 1;  // 5
constexpr std::size_t kMergedSize = kChannels * kConvChannels * kConvOutLen;
constexpr std::size_t kFc1Size = 64;

}  // namespace

StallExitNet::StallExitNet(Rng& rng)
    : fc1_(kMergedSize, kFc1Size, rng), fc2_(kFc1Size, 2, rng) {
  branches_.reserve(kChannels);
  branch_relu_.resize(kChannels);
  for (std::size_t c = 0; c < kChannels; ++c) {
    branches_.emplace_back(1, kConvChannels, kKernel, rng);
  }
  conv_out_len_ = kConvOutLen;
}

nn::Tensor StallExitNet::logits(const nn::Tensor& features) {
  LINGXI_ASSERT(features.rank() == 2);
  LINGXI_ASSERT(features.dim(0) == kChannels && features.dim(1) == kHistoryLen);

  std::vector<nn::Tensor> merged_parts;
  merged_parts.reserve(kChannels);
  for (std::size_t c = 0; c < kChannels; ++c) {
    // Slice channel c as a [1, 8] tensor.
    nn::Tensor channel({1, kHistoryLen});
    for (std::size_t i = 0; i < kHistoryLen; ++i) channel.at(0, i) = features.at(c, i);
    nn::Tensor out = branch_relu_[c].forward(branches_[c].forward(channel));
    merged_parts.push_back(out.reshaped({kConvChannels * kConvOutLen}));
  }
  const nn::Tensor merged = nn::concat(merged_parts);
  return fc2_.forward(relu1_.forward(fc1_.forward(merged)));
}

void StallExitNet::backward(const nn::Tensor& grad_logits) {
  const nn::Tensor grad_merged = fc1_.backward(relu1_.backward(fc2_.backward(grad_logits)));
  LINGXI_ASSERT(grad_merged.size() == kMergedSize);
  for (std::size_t c = 0; c < kChannels; ++c) {
    nn::Tensor grad_branch({kConvChannels, kConvOutLen});
    const std::size_t offset = c * kConvChannels * kConvOutLen;
    for (std::size_t i = 0; i < kConvChannels * kConvOutLen; ++i) {
      grad_branch[i] = grad_merged[offset + i];
    }
    branches_[c].backward(branch_relu_[c].backward(grad_branch));
  }
}

double StallExitNet::predict(const nn::Tensor& features) {
  const nn::Tensor probs = nn::softmax(logits(features));
  return probs[1];
}

void StallExitNet::predict_batch(nn::ConstBatchView features, double* out,
                                 BatchWorkspace* ws) const {
  if (features.rows == 0) return;
  LINGXI_ASSERT(features.cols == kChannels * kHistoryLen);
  BatchWorkspace local;
  BatchWorkspace& w = ws != nullptr ? *ws : local;
  const std::size_t batch = features.rows;
  constexpr std::size_t kBranchCols = kConvChannels * kConvOutLen;
  w.merged.resize(batch * kMergedSize);
  w.hidden.resize(batch * kFc1Size);
  w.logits.resize(batch * 2);

  // Each branch convolves channel c of every row ([1, 8] inputs, strided
  // straight out of the feature matrix) and writes its [64, 5] map into the
  // channel-c block of the merged matrix — the same (branch, oc, t) layout
  // the scalar path produces via reshape + concat.
  for (std::size_t c = 0; c < kChannels; ++c) {
    const nn::ConstBatchView channel(features.data + c * kHistoryLen, batch, kHistoryLen,
                                     features.stride);
    const nn::BatchView block(w.merged.data() + c * kBranchCols, batch, kBranchCols,
                              kMergedSize);
    branches_[c].forward_batch(channel, block);
    nn::relu_rows(block);
  }

  const nn::BatchView merged(w.merged.data(), batch, kMergedSize);
  const nn::BatchView hidden(w.hidden.data(), batch, kFc1Size);
  fc1_.forward_batch(merged, hidden);
  nn::relu_rows(hidden);
  const nn::BatchView logit_rows(w.logits.data(), batch, 2);
  fc2_.forward_batch(hidden, logit_rows);
  nn::softmax_rows(logit_rows);
  for (std::size_t b = 0; b < batch; ++b) out[b] = logit_rows.row(b)[1];
}

nn::ParamSet StallExitNet::param_set() {
  nn::ParamSet set;
  for (auto& b : branches_) set.add(b);
  set.add(fc1_);
  set.add(fc2_);
  return set;
}

std::vector<const nn::Tensor*> StallExitNet::weights() const {
  std::vector<const nn::Tensor*> out;
  for (const auto& b : branches_) {
    for (const nn::Tensor* t : const_cast<nn::Conv1D&>(b).parameters()) out.push_back(t);
  }
  for (const nn::Tensor* t : const_cast<nn::Dense&>(fc1_).parameters()) out.push_back(t);
  for (const nn::Tensor* t : const_cast<nn::Dense&>(fc2_).parameters()) out.push_back(t);
  return out;
}

bool StallExitNet::load_weights(const std::vector<nn::Tensor>& tensors) {
  std::vector<nn::Tensor*> targets;
  for (auto& b : branches_) {
    for (nn::Tensor* t : b.parameters()) targets.push_back(t);
  }
  for (nn::Tensor* t : fc1_.parameters()) targets.push_back(t);
  for (nn::Tensor* t : fc2_.parameters()) targets.push_back(t);
  if (tensors.size() != targets.size()) return false;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!targets[i]->same_shape(tensors[i])) return false;
  }
  for (std::size_t i = 0; i < targets.size(); ++i) *targets[i] = tensors[i];
  return true;
}

}  // namespace lingxi::predictor
