#include "predictor/engagement_state.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::predictor {
namespace {

void push_capped(std::vector<double>& v, double x) {
  v.push_back(x);
  if (v.size() > kHistoryLen) v.erase(v.begin());
}

// Right-align: most recent sample in the last column of the length-8 row.
void fill_row(double* row, const std::vector<double>& values, double scale) {
  const std::size_t n = std::min(values.size(), kHistoryLen);
  for (std::size_t i = 0; i < n; ++i) {
    row[kHistoryLen - n + i] = values[values.size() - n + i] / scale;
  }
}

/// Interval channels use a saturating recency encoding exp(-interval/scale):
/// frequent events (short intervals) map near 1, rare ones near 0, and the
/// zero padding of users with no events coincides with "never happens" —
/// which is exactly the informative extreme. A raw interval/scale encoding
/// leaves the personalization signal at 1e-2 magnitude, too weak for the
/// stall-dominant channels not to drown it.
void fill_recency_row(double* row, const std::vector<double>& values, double scale) {
  const std::size_t n = std::min(values.size(), kHistoryLen);
  for (std::size_t i = 0; i < n; ++i) {
    row[kHistoryLen - n + i] = std::exp(-values[values.size() - n + i] / scale);
  }
}

}  // namespace

EngagementState::EngagementState() : EngagementState(Config{}) {}

EngagementState::EngagementState(Config config) : config_(config) {
  LINGXI_ASSERT(config_.max_bitrate > 0.0);
  LINGXI_ASSERT(config_.throughput_scale > 0.0);
}

void EngagementState::begin_session() {
  bitrates_.clear();
  throughputs_.clear();
}

void EngagementState::on_segment(const sim::SegmentRecord& segment, Seconds segment_duration) {
  bitrates_.push_back(segment.bitrate / config_.max_bitrate);
  throughputs_.push_back(segment.throughput / config_.throughput_scale);
  if (bitrates_.size() > kHistoryLen) {
    bitrates_.pop_front();
    throughputs_.pop_front();
  }
  long_term_.total_watch_time += segment_duration;

  if (segment.stall_time > config_.stall_event_threshold) {
    push_capped(long_term_.stall_durations, segment.stall_time);
    const Seconds now = long_term_.total_watch_time;
    if (last_stall_at_ >= 0.0) {
      push_capped(long_term_.stall_intervals, std::max(0.0, now - last_stall_at_));
    }
    last_stall_at_ = now;
    ++long_term_.total_stall_events;
    long_term_rows_valid_ = false;
  }
}

void EngagementState::on_stall_exit() {
  const Seconds now = long_term_.total_watch_time;
  if (last_stall_exit_at_ >= 0.0) {
    push_capped(long_term_.stall_exit_intervals, std::max(0.0, now - last_stall_exit_at_));
  }
  last_stall_exit_at_ = now;
  ++long_term_.total_stall_exits;
  long_term_rows_valid_ = false;
}

void EngagementState::refresh_long_term_rows() const {
  if (long_term_rows_valid_) return;
  long_term_rows_.fill(0.0);
  fill_row(long_term_rows_.data(), long_term_.stall_durations, config_.stall_scale);
  fill_recency_row(long_term_rows_.data() + kHistoryLen, long_term_.stall_intervals,
                   config_.interval_scale);
  fill_recency_row(long_term_rows_.data() + 2 * kHistoryLen,
                   long_term_.stall_exit_intervals, config_.exit_interval_scale);
  long_term_rows_valid_ = true;
}

void EngagementState::write_features(double* dst) const {
  std::fill(dst, dst + 2 * kHistoryLen, 0.0);
  // Short-term channels straight from the deques (bitrate/throughput are
  // normalized at push time), right-aligned like every channel.
  const std::size_t n = bitrates_.size();  // capped at kHistoryLen
  for (std::size_t i = 0; i < n; ++i) {
    dst[kHistoryLen - n + i] = bitrates_[i];
    dst[2 * kHistoryLen - n + i] = throughputs_[i];
  }
  refresh_long_term_rows();
  std::copy(long_term_rows_.begin(), long_term_rows_.end(), dst + 2 * kHistoryLen);
}

nn::Tensor EngagementState::features() const {
  nn::Tensor t({kChannels, kHistoryLen});
  write_features(t.data());
  return t;
}

EngagementState::Snapshot EngagementState::snapshot() const {
  Snapshot s;
  s.long_term = long_term_;
  s.last_stall_at = last_stall_at_;
  s.last_stall_exit_at = last_stall_exit_at_;
  return s;
}

void EngagementState::restore(const Snapshot& snapshot) {
  long_term_ = snapshot.long_term;
  last_stall_at_ = snapshot.last_stall_at;
  last_stall_exit_at_ = snapshot.last_stall_exit_at;
  bitrates_.clear();
  throughputs_.clear();
  long_term_rows_valid_ = false;
}

void EngagementState::restore_long_term(LongTermState state) {
  long_term_ = std::move(state);
  // Interval anchors restart from the restored watch-time origin.
  last_stall_at_ = long_term_.total_stall_events > 0 ? long_term_.total_watch_time : -1.0;
  last_stall_exit_at_ = long_term_.total_stall_exits > 0 ? long_term_.total_watch_time : -1.0;
  long_term_rows_valid_ = false;
}

}  // namespace lingxi::predictor
