// Overall-statistics (OS) exit model for quality and smoothness (§3.3).
//
// Takeaway 1: quality and smoothness move exit rates at 1e-3 / 1e-2 —
// too small to model per-user without drowning in content noise. The OS
// model therefore pools the whole population: empirical exit frequencies
// bucketed by (quality tier, switch type), with Laplace smoothing.
#pragma once

#include <array>
#include <cstdint>

#include "sim/session.h"
#include "trace/video.h"

namespace lingxi::predictor {

enum class SwitchType { kNone = 0, kUp = 1, kDown = 2 };

class OverallStatsModel {
 public:
  /// Record one observed segment outcome (exited or not).
  void observe(std::size_t quality_level, SwitchType sw, bool exited);

  /// Smoothed P(exit | quality tier, switch type). Falls back to the global
  /// rate for unseen buckets.
  double predict(std::size_t quality_level, SwitchType sw) const;

  /// Population-wide exit rate across all observations.
  double global_rate() const;

  std::uint64_t observations() const noexcept { return total_count_; }

  /// Fit from complete sessions (convenience over per-segment observe()).
  void fit_session(const sim::SessionResult& session);

 private:
  static constexpr std::size_t kMaxLevels = 8;
  struct Bucket {
    std::uint64_t exits = 0;
    std::uint64_t count = 0;
  };
  std::array<std::array<Bucket, 3>, kMaxLevels> buckets_{};
  std::uint64_t total_exits_ = 0;
  std::uint64_t total_count_ = 0;
};

/// Classify the transition into this segment.
SwitchType switch_type(const sim::SessionResult& session, std::size_t segment_index);

}  // namespace lingxi::predictor
