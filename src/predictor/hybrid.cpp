#include "predictor/hybrid.h"

#include <algorithm>

#include "common/assert.h"

namespace lingxi::predictor {

HybridExitPredictor::HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                                         std::shared_ptr<const OverallStatsModel> os_model)
    : HybridExitPredictor(std::move(net), std::move(os_model), Config{}) {}

HybridExitPredictor::HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                                         std::shared_ptr<const OverallStatsModel> os_model,
                                         Config config)
    : net_(std::move(net)), os_model_(std::move(os_model)), config_(config) {
  LINGXI_ASSERT(net_ != nullptr);
  LINGXI_ASSERT(os_model_ != nullptr);
  LINGXI_ASSERT(config_.nn_weight >= 0.0 && config_.nn_weight <= 1.0);
}

HybridExitPredictor HybridExitPredictor::with_private_net() const {
  return {std::make_shared<StallExitNet>(*net_), os_model_, config_};
}

namespace {
/// Sub-perceptual stalls skip the personalized stall term entirely.
constexpr Seconds kNnStallThreshold = 0.05;
}  // namespace

double HybridExitPredictor::predict(const EngagementState& state,
                                    const sim::SegmentRecord& segment, SwitchType sw) const {
  return predict(ExitQuery{&state, segment.level, segment.stall_time, sw});
}

double HybridExitPredictor::predict(const ExitQuery& query) const {
  const double os = os_model_->predict(query.level, query.sw);
  if (query.stall_time <= kNnStallThreshold) return std::clamp(os, 0.0, 1.0);
  const double nn_term = net_->predict(query.state->features());
  return combine(*query.state, nn_term, os);
}

double HybridExitPredictor::combine(const EngagementState& state, double nn_term,
                                    double os) const {
  // Personal empirical stall-exit rate, smoothed toward the prior so new
  // users start population-typical.
  const auto& lt = state.long_term();
  const double personal =
      (static_cast<double>(lt.total_stall_exits) + config_.prior_strength * config_.prior_rate) /
      (static_cast<double>(lt.total_stall_events) + config_.prior_strength);
  const double stall_term =
      config_.nn_weight * nn_term + (1.0 - config_.nn_weight) * std::min(1.0, personal);
  return std::clamp(stall_term + os, 0.0, 1.0);
}

void HybridExitPredictor::predict_batch(std::size_t count, const ExitQuery* queries,
                                        double* out, BatchScratch* scratch) const {
  BatchScratch local;
  BatchScratch& s = scratch != nullptr ? *scratch : local;

  // Gather the stalled queries' feature matrices; only they need the net.
  s.stalled.clear();
  for (std::size_t i = 0; i < count; ++i) {
    if (queries[i].stall_time > kNnStallThreshold) s.stalled.push_back(i);
  }
  constexpr std::size_t kFeatureLen = kChannels * kHistoryLen;
  s.features.resize(s.stalled.size() * kFeatureLen);
  for (std::size_t j = 0; j < s.stalled.size(); ++j) {
    queries[s.stalled[j]].state->write_features(s.features.data() + j * kFeatureLen);
  }
  s.nn_terms.resize(s.stalled.size());
  net_->predict_batch({s.features.data(), s.stalled.size(), kFeatureLen},
                      s.nn_terms.data(), &s.net);

  std::size_t j = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ExitQuery& q = queries[i];
    const double os = os_model_->predict(q.level, q.sw);
    if (q.stall_time <= kNnStallThreshold) {
      out[i] = std::clamp(os, 0.0, 1.0);
    } else {
      out[i] = combine(*q.state, s.nn_terms[j++], os);
    }
  }
}

PredictorExitModel::PredictorExitModel(HybridExitPredictor predictor,
                                       EngagementState seed_state, Seconds segment_duration)
    : predictor_(std::move(predictor)),
      seed_state_(std::move(seed_state)),
      state_(seed_state_),
      segment_duration_(segment_duration) {
  LINGXI_ASSERT(segment_duration_ > 0.0);
}

void PredictorExitModel::begin_session() {
  state_ = seed_state_;  // S_sim <- S
  state_.begin_session();
  prev_valid_ = false;
  prev_level_ = 0;
}

double PredictorExitModel::exit_probability(const sim::SegmentRecord& segment) {
  return predictor_.predict(prepare(segment));
}

HybridExitPredictor::ExitQuery PredictorExitModel::prepare(const sim::SegmentRecord& segment) {
  state_.on_segment(segment, segment_duration_);
  SwitchType sw = SwitchType::kNone;
  if (prev_valid_ && segment.level != prev_level_) {
    sw = segment.level > prev_level_ ? SwitchType::kUp : SwitchType::kDown;
  }
  prev_valid_ = true;
  prev_level_ = segment.level;
  return {&state_, segment.level, segment.stall_time, sw};
}

std::unique_ptr<sim::ExitModel> BatchPredictorExitEvaluator::make_model() const {
  return std::make_unique<PredictorExitModel>(predictor_, seed_state_, segment_duration_);
}

bool BatchPredictorExitEvaluator::prepare(sim::ExitModel& model,
                                          const sim::SegmentRecord& segment,
                                          double& out) const {
  // Safe: the contract restricts `model` to our make_model() instances.
  const HybridExitPredictor::ExitQuery query =
      static_cast<PredictorExitModel&>(model).prepare(segment);
  if (query.stall_time <= kNnStallThreshold) {
    out = predictor_.predict(query);  // OS-only path, no net forward
    return true;
  }
  scratch_.queries.push_back(query);
  return false;
}

std::size_t BatchPredictorExitEvaluator::flush(double* out) const {
  // The parked queries' state pointers stay valid until their rollouts
  // resolve — parked rollouts do not advance before the flush.
  const std::size_t count = scratch_.queries.size();
  predictor_.predict_batch(count, scratch_.queries.data(), out, &scratch_);
  scratch_.queries.clear();
  return count;
}

}  // namespace lingxi::predictor
