#include "predictor/hybrid.h"

#include <algorithm>

#include "common/assert.h"

namespace lingxi::predictor {

HybridExitPredictor::HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                                         std::shared_ptr<const OverallStatsModel> os_model)
    : HybridExitPredictor(std::move(net), std::move(os_model), Config{}) {}

HybridExitPredictor::HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                                         std::shared_ptr<const OverallStatsModel> os_model,
                                         Config config)
    : net_(std::move(net)), os_model_(std::move(os_model)), config_(config) {
  LINGXI_ASSERT(net_ != nullptr);
  LINGXI_ASSERT(os_model_ != nullptr);
  LINGXI_ASSERT(config_.nn_weight >= 0.0 && config_.nn_weight <= 1.0);
}

HybridExitPredictor HybridExitPredictor::with_private_net() const {
  return {std::make_shared<StallExitNet>(*net_), os_model_, config_};
}

double HybridExitPredictor::predict(const EngagementState& state,
                                    const sim::SegmentRecord& segment, SwitchType sw) const {
  const double os = os_model_->predict(segment.level, sw);
  if (segment.stall_time <= 0.05) return std::clamp(os, 0.0, 1.0);
  const double nn_term = net_->predict(state.features());
  // Personal empirical stall-exit rate, smoothed toward the prior so new
  // users start population-typical.
  const auto& lt = state.long_term();
  const double personal =
      (static_cast<double>(lt.total_stall_exits) + config_.prior_strength * config_.prior_rate) /
      (static_cast<double>(lt.total_stall_events) + config_.prior_strength);
  const double stall_term =
      config_.nn_weight * nn_term + (1.0 - config_.nn_weight) * std::min(1.0, personal);
  return std::clamp(stall_term + os, 0.0, 1.0);
}

PredictorExitModel::PredictorExitModel(HybridExitPredictor predictor,
                                       EngagementState seed_state, Seconds segment_duration)
    : predictor_(std::move(predictor)),
      seed_state_(std::move(seed_state)),
      state_(seed_state_),
      segment_duration_(segment_duration) {
  LINGXI_ASSERT(segment_duration_ > 0.0);
}

void PredictorExitModel::begin_session() {
  state_ = seed_state_;  // S_sim <- S
  state_.begin_session();
  prev_valid_ = false;
  prev_level_ = 0;
}

double PredictorExitModel::exit_probability(const sim::SegmentRecord& segment) {
  state_.on_segment(segment, segment_duration_);
  SwitchType sw = SwitchType::kNone;
  if (prev_valid_ && segment.level != prev_level_) {
    sw = segment.level > prev_level_ ? SwitchType::kUp : SwitchType::kDown;
  }
  prev_valid_ = true;
  prev_level_ = segment.level;
  return predictor_.predict(state_, segment, sw);
}

}  // namespace lingxi::predictor
