#include "predictor/hybrid.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace lingxi::predictor {

HybridExitPredictor::HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                                         std::shared_ptr<const OverallStatsModel> os_model)
    : HybridExitPredictor(std::move(net), std::move(os_model), Config{}) {}

HybridExitPredictor::HybridExitPredictor(std::shared_ptr<StallExitNet> net,
                                         std::shared_ptr<const OverallStatsModel> os_model,
                                         Config config)
    : net_(std::move(net)), os_model_(std::move(os_model)), config_(config) {
  LINGXI_ASSERT(net_ != nullptr);
  LINGXI_ASSERT(os_model_ != nullptr);
  LINGXI_ASSERT(config_.nn_weight >= 0.0 && config_.nn_weight <= 1.0);
}

HybridExitPredictor HybridExitPredictor::with_private_net() const {
  return {std::make_shared<StallExitNet>(*net_), os_model_, config_};
}

namespace {
/// Sub-perceptual stalls skip the personalized stall term entirely.
constexpr Seconds kNnStallThreshold = 0.05;
}  // namespace

double HybridExitPredictor::predict(const EngagementState& state,
                                    const sim::SegmentRecord& segment, SwitchType sw) const {
  return predict(ExitQuery{&state, segment.level, segment.stall_time, sw});
}

double HybridExitPredictor::predict(const ExitQuery& query) const {
  const double os = os_model_->predict(query.level, query.sw);
  if (query.stall_time <= kNnStallThreshold) return std::clamp(os, 0.0, 1.0);
  const double nn_term = net_->predict(query.state->features());
  return combine(*query.state, nn_term, os);
}

double HybridExitPredictor::finish_stalled(const ExitQuery& query, double nn_term) const {
  return combine(*query.state, nn_term, os_model_->predict(query.level, query.sw));
}

double HybridExitPredictor::combine(const EngagementState& state, double nn_term,
                                    double os) const {
  // Personal empirical stall-exit rate, smoothed toward the prior so new
  // users start population-typical.
  const auto& lt = state.long_term();
  const double personal =
      (static_cast<double>(lt.total_stall_exits) + config_.prior_strength * config_.prior_rate) /
      (static_cast<double>(lt.total_stall_events) + config_.prior_strength);
  const double stall_term =
      config_.nn_weight * nn_term + (1.0 - config_.nn_weight) * std::min(1.0, personal);
  return std::clamp(stall_term + os, 0.0, 1.0);
}

void HybridExitPredictor::predict_batch(std::size_t count, const ExitQuery* queries,
                                        double* out, BatchScratch* scratch) const {
  BatchScratch local;
  BatchScratch& s = scratch != nullptr ? *scratch : local;

  // Gather the stalled queries' feature matrices; only they need the net.
  s.stalled.clear();
  for (std::size_t i = 0; i < count; ++i) {
    if (queries[i].stall_time > kNnStallThreshold) s.stalled.push_back(i);
  }
  constexpr std::size_t kFeatureLen = kChannels * kHistoryLen;
  s.features.resize(s.stalled.size() * kFeatureLen);
  for (std::size_t j = 0; j < s.stalled.size(); ++j) {
    queries[s.stalled[j]].state->write_features(s.features.data() + j * kFeatureLen);
  }
  s.nn_terms.resize(s.stalled.size());
  net_->predict_batch({s.features.data(), s.stalled.size(), kFeatureLen},
                      s.nn_terms.data(), &s.net);

  std::size_t j = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ExitQuery& q = queries[i];
    const double os = os_model_->predict(q.level, q.sw);
    if (q.stall_time <= kNnStallThreshold) {
      out[i] = std::clamp(os, 0.0, 1.0);
    } else {
      out[i] = combine(*q.state, s.nn_terms[j++], os);
    }
  }
}

PredictorExitModel::PredictorExitModel(HybridExitPredictor predictor,
                                       EngagementState seed_state, Seconds segment_duration,
                                       std::uint32_t rollout_tag)
    : predictor_(std::move(predictor)),
      seed_state_(std::move(seed_state)),
      state_(seed_state_),
      segment_duration_(segment_duration),
      rollout_tag_(rollout_tag) {
  LINGXI_ASSERT(segment_duration_ > 0.0);
}

void PredictorExitModel::begin_session() {
  state_ = seed_state_;  // S_sim <- S
  state_.begin_session();
  prev_valid_ = false;
  prev_level_ = 0;
}

double PredictorExitModel::exit_probability(const sim::SegmentRecord& segment) {
  return predictor_.predict(prepare(segment));
}

HybridExitPredictor::ExitQuery PredictorExitModel::prepare(const sim::SegmentRecord& segment) {
  state_.on_segment(segment, segment_duration_);
  SwitchType sw = SwitchType::kNone;
  if (prev_valid_ && segment.level != prev_level_) {
    sw = segment.level > prev_level_ ? SwitchType::kUp : SwitchType::kDown;
  }
  prev_valid_ = true;
  prev_level_ = segment.level;
  return {&state_, segment.level, segment.stall_time, sw};
}

std::unique_ptr<sim::ExitModel> BatchPredictorExitEvaluator::make_model() const {
  // Rollout tags count up in make_model() order — rollout order, which is
  // deterministic — so a parked query's (user, rollout, segment) key names
  // the same rollout in every replay.
  return std::make_unique<PredictorExitModel>(predictor_, seed_state_, segment_duration_,
                                              next_rollout_tag_++);
}

bool BatchPredictorExitEvaluator::prepare(sim::ExitModel& model,
                                          const sim::SegmentRecord& segment,
                                          double& out) const {
  // Safe: the contract restricts `model` to our make_model() instances.
  auto& exit_model = static_cast<PredictorExitModel&>(model);
  const HybridExitPredictor::ExitQuery query = exit_model.prepare(segment);
  if (query.stall_time <= kNnStallThreshold) {
    out = predictor_.predict(query);  // OS-only path, no net forward
    return true;
  }
  if (pool_ != nullptr) {
    tickets_.push_back(pool_->park(
        predictor_, query,
        {user_tag_, exit_model.rollout_tag(), static_cast<std::uint32_t>(segment.index)}));
  } else {
    scratch_.queries.push_back(query);
  }
  return false;
}

std::size_t BatchPredictorExitEvaluator::flush(double* out) const {
  if (pool_ != nullptr) {
    // Pooled scope: the pool already evaluated this wave's queries (the
    // scheduler flushes it between waves); collect ours in park order.
    const std::size_t count = tickets_.size();
    for (std::size_t i = 0; i < count; ++i) out[i] = pool_->prob(tickets_[i]);
    tickets_.clear();
    return count;
  }
  // The parked queries' state pointers stay valid until their rollouts
  // resolve — parked rollouts do not advance before the flush.
  const std::size_t count = scratch_.queries.size();
  predictor_.predict_batch(count, scratch_.queries.data(), out, &scratch_);
  scratch_.queries.clear();
  return count;
}

void BatchPredictorExitEvaluator::discard_parked() const {
  if (pool_ != nullptr) {
    for (const std::size_t ticket : tickets_) pool_->discard(ticket);
    tickets_.clear();
    return;
  }
  scratch_.queries.clear();
}

std::size_t ExitQueryPool::park(const HybridExitPredictor& predictor,
                                const HybridExitPredictor::ExitQuery& query,
                                QueryTag tag) {
  LINGXI_DASSERT(query.state != nullptr);
  pending_.push_back(Entry{query, &predictor, tag});
  return pending_.size() - 1;
}

void ExitQueryPool::discard(std::size_t ticket) {
  LINGXI_ASSERT(ticket < pending_.size());
  pending_[ticket].predictor = nullptr;
}

double ExitQueryPool::prob(std::size_t ticket) const {
  LINGXI_ASSERT(ticket < probs_.size());
  return probs_[ticket];
}

void ExitQueryPool::flush() {
  OBS_TIMED("predictor.pool.flush_us");
  probs_.assign(pending_.size(), 0.0);
  if (pending_.empty()) return;

#ifndef NDEBUG
  // Determinism bookkeeping check on the (user, rollout, segment) keys: a
  // rollout parks at most one query per flush (it pauses until resolved),
  // so the (user, rollout) pairs of live entries must be unique. A repeat
  // means a rollout advanced past an unresolved query — exactly the bug
  // class that would make batch composition schedule-dependent.
  {
    std::vector<std::uint64_t> keys;
    keys.reserve(pending_.size());
    for (const Entry& entry : pending_) {
      if (entry.predictor == nullptr) continue;
      keys.push_back((static_cast<std::uint64_t>(entry.tag.user) << 32) |
                     entry.tag.rollout);
    }
    std::sort(keys.begin(), keys.end());
    LINGXI_DASSERT(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  }
#endif

  // Group pending queries per net (stable first-seen order; park order
  // within a group). One shard usually holds one net — every user shares
  // the shard predictor's copy — so this is typically a single group; it
  // stays correct when users carry genuinely private (fine-tuned) nets.
  // groups_ entries persist across flushes (only the first `group_count`
  // are live) so the member index vectors keep their capacity.
  std::size_t group_count = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Entry& entry = pending_[i];
    if (entry.predictor == nullptr) continue;  // discarded by pruning
    const StallExitNet* net = &entry.predictor->net();
    NetGroup* group = nullptr;
    for (std::size_t g = 0; g < group_count; ++g) {
      if (groups_[g].net == net) {
        group = &groups_[g];
        break;
      }
    }
    if (group == nullptr) {
      if (group_count == groups_.size()) groups_.emplace_back();
      group = &groups_[group_count++];
      group->net = net;
      group->members.clear();
    }
    group->members.push_back(i);
  }

  constexpr std::size_t kFeatureLen = kChannels * kHistoryLen;
  std::uint64_t evaluated = 0;
  std::uint64_t batches = 0;
  for (std::size_t g = 0; g < group_count; ++g) {
    NetGroup& group = groups_[g];
    // Gather the group's feature matrix and run one batched forward. Every
    // parked query is a stalled one (prepare() resolves sub-perceptual
    // stalls inline), so each row needs the net.
    features_.resize(group.members.size() * kFeatureLen);
    for (std::size_t j = 0; j < group.members.size(); ++j) {
      const Entry& entry = pending_[group.members[j]];
      LINGXI_DASSERT(entry.query.stall_time > kNnStallThreshold);
      entry.query.state->write_features(features_.data() + j * kFeatureLen);
    }
    nn_terms_.resize(group.members.size());
    group.net->predict_batch({features_.data(), group.members.size(), kFeatureLen},
                             nn_terms_.data(), &ws_);
    // Per-query tail through the query's own predictor (OS lookup + blend),
    // bitwise identical to HybridExitPredictor::predict_batch.
    for (std::size_t j = 0; j < group.members.size(); ++j) {
      const Entry& entry = pending_[group.members[j]];
      probs_[group.members[j]] = entry.predictor->finish_stalled(entry.query, nn_terms_[j]);
    }
    evaluated += group.members.size();
    ++stats_.net_batches;
    ++batches;
  }
  if (evaluated > 0) {
    ++stats_.flushes;
    stats_.queries += evaluated;
    stats_.max_flush = std::max(stats_.max_flush, evaluated);
    // Fleet-wide registry view of the same counters the per-run
    // FleetRunStats struct reports (that struct stays the per-run API;
    // the registry aggregates across runners, legs and threads).
    if (obs::Registry* reg = obs::Registry::active()) {
      reg->add("predictor.pool.flushes");
      reg->add("predictor.pool.queries", evaluated);
      reg->add("predictor.pool.net_batches", batches);
      reg->observe("predictor.pool.flush_rows", obs::HistogramSpec::rows(),
                   static_cast<double>(evaluated));
    }
  }
  pending_.clear();
}

}  // namespace lingxi::predictor
