// User engagement state: the 5 x 8 input matrix of the exit-rate predictor
// (§3.3 "Input") plus the counters behind it.
//
// Channels (length 8, zero-padded at the front, most recent last):
//   0  bitrate of the last 8 segments            (short-term)
//   1  throughput of the last 8 segments         (short-term)
//   2  durations of the last 8 stall events      (long-term)
//   3  intervals between the last 8 stalls       (long-term)
//   4  intervals between the last 8 stall-exits  (long-term engagement)
//
// Channels 0-1 reset per session; channels 2-4 and the counters persist
// across sessions (they are the "long-term state" serialized by
// lingxi::logstore on app exit, §4 Seamless Integration).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "nn/tensor.h"
#include "sim/session.h"

namespace lingxi::predictor {

constexpr std::size_t kChannels = 5;
constexpr std::size_t kHistoryLen = 8;

/// The persistent slice of the engagement state.
struct LongTermState {
  std::vector<double> stall_durations;      ///< last 8, seconds
  std::vector<double> stall_intervals;      ///< last 8, seconds of watch time
  std::vector<double> stall_exit_intervals; ///< last 8, seconds of watch time
  double total_watch_time = 0.0;            ///< cumulative across sessions
  std::uint64_t total_stall_events = 0;
  std::uint64_t total_stall_exits = 0;

  bool operator==(const LongTermState&) const = default;
};

class EngagementState {
 public:
  struct Config {
    Kbps max_bitrate = 4300.0;       ///< bitrate normalization
    Kbps throughput_scale = 8000.0;
    Seconds stall_scale = 10.0;
    Seconds interval_scale = 100.0;
    Seconds exit_interval_scale = 600.0;
    Seconds stall_event_threshold = 0.05;
  };

  EngagementState();  // default config
  explicit EngagementState(Config config);

  /// Start a new playback session: clears short-term channels only.
  void begin_session();

  /// Record a downloaded segment (and any stall it carried).
  void on_segment(const sim::SegmentRecord& segment, Seconds segment_duration);

  /// Record that the user exited during/right after a stall (drives the
  /// stall-exit interval channel and the stall-exit counters).
  void on_stall_exit();

  /// Build the 5x8 normalized input tensor.
  nn::Tensor features() const;

  /// Write the same 5x8 features (row-major, kChannels * kHistoryLen
  /// doubles) into `dst` without allocating — the batched-assembly path.
  /// Channels 2-4 derive only from the long-term event vectors, which change
  /// on stall / stall-exit events rather than per segment, so their rows are
  /// cached and re-derived lazily instead of being rebuilt on every predict.
  void write_features(double* dst) const;

  const LongTermState& long_term() const noexcept { return long_term_; }
  void restore_long_term(LongTermState state);

  /// Complete cross-session state at a session boundary: the long-term
  /// vectors/counters plus the interval anchors they cannot reproduce (only
  /// the differences are stored in LongTermState). Unlike restore_long_term
  /// — which re-anchors the interval clocks at the restored watch-time
  /// origin — restore(snapshot()) is exact: every future feature matrix is
  /// bitwise identical to the uncheckpointed continuation. Short-term
  /// channels are excluded by design; they are cleared by the
  /// begin_session() that precedes any read, so a snapshot is only valid
  /// between sessions (the fleet snapshots at day boundaries).
  struct Snapshot {
    LongTermState long_term;
    Seconds last_stall_at = -1.0;
    Seconds last_stall_exit_at = -1.0;

    bool operator==(const Snapshot&) const = default;
  };

  Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

  std::uint64_t stall_events() const noexcept { return long_term_.total_stall_events; }
  Seconds watch_time() const noexcept { return long_term_.total_watch_time; }

 private:
  void refresh_long_term_rows() const;

  Config config_;
  LongTermState long_term_;
  std::deque<double> bitrates_;     // short-term
  std::deque<double> throughputs_;  // short-term
  Seconds last_stall_at_ = -1.0;    // watch-time timestamp of last stall
  Seconds last_stall_exit_at_ = -1.0;
  // Cached channels 2-4 of the feature matrix, invalidated when the
  // long-term event vectors change.
  mutable std::array<double, 3 * kHistoryLen> long_term_rows_{};
  mutable bool long_term_rows_valid_ = false;
};

}  // namespace lingxi::predictor
