#include "predictor/dataset.h"

#include <algorithm>
#include <numeric>

#include "abr/hyb.h"
#include "common/assert.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "sim/session.h"

namespace lingxi::predictor {

const char* filter_name(DatasetFilter f) noexcept {
  switch (f) {
    case DatasetFilter::kAll: return "ALL";
    case DatasetFilter::kEvent: return "Event";
    case DatasetFilter::kStall: return "Stall";
  }
  return "?";
}

std::size_t Dataset::positives() const noexcept {
  std::size_t n = 0;
  for (const auto& s : samples) n += s.exited ? 1 : 0;
  return n;
}

std::size_t Dataset::negatives() const noexcept { return samples.size() - positives(); }

DatasetGenConfig::DatasetGenConfig() {
  // Low-bandwidth-biased world: stalls must actually occur to be learnable.
  network.median_bandwidth = 2500.0;
  network.sigma = 0.6;
  network.relative_sd = 0.45;
}

Dataset generate_dataset(const DatasetGenConfig& config, Rng& rng) {
  Dataset dataset;
  const trace::PopulationModel networks(config.network);
  const trace::VideoGenerator videos(config.video);
  const user::UserPopulation users(config.population);
  const sim::SessionSimulator simulator(sim::SessionSimulator::Config{});

  for (std::size_t u = 0; u < config.users; ++u) {
    std::unique_ptr<user::UserModel> user_model =
        config.user_factory ? config.user_factory(rng) : users.sample(rng);
    const trace::NetworkProfile profile = networks.sample(rng);
    EngagementState state;  // persists across this user's sessions

    for (std::size_t s = 0; s < config.sessions_per_user; ++s) {
      const trace::Video video = videos.sample(rng);
      auto bw = profile.make_session_model();
      abr::Hyb abr_algo;
      const sim::SessionResult session =
          simulator.run(video, abr_algo, *bw, user_model.get(), rng);

      state.begin_session();
      for (std::size_t k = 0; k < session.segments.size(); ++k) {
        const auto& seg = session.segments[k];
        state.on_segment(seg, video.segment_duration());
        const bool exited_here = session.exited && k + 1 == session.segments.size();

        const bool had_stall = seg.stall_time > 0.05;
        const bool had_switch = k > 0 && seg.level != session.segments[k - 1].level;
        bool keep = false;
        switch (config.filter) {
          case DatasetFilter::kAll: keep = true; break;
          case DatasetFilter::kEvent: keep = had_stall || had_switch; break;
          case DatasetFilter::kStall: keep = had_stall; break;
        }
        if (keep) dataset.samples.push_back({state.features(), exited_here});
        if (exited_here && had_stall) state.on_stall_exit();
      }
    }
  }
  return dataset;
}

Dataset balance(const Dataset& dataset, Rng& rng) {
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < dataset.samples.size(); ++i) {
    (dataset.samples[i].exited ? pos : neg).push_back(i);
  }
  auto& majority = pos.size() > neg.size() ? pos : neg;
  auto& minority = pos.size() > neg.size() ? neg : pos;
  // Fisher-Yates partial shuffle, then keep |minority| of the majority.
  for (std::size_t i = 0; i < majority.size(); ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(majority.size()) - 1));
    std::swap(majority[i], majority[j]);
  }
  Dataset out;
  for (std::size_t i : minority) out.samples.push_back(dataset.samples[i]);
  const std::size_t keep = std::min(majority.size(), minority.size());
  for (std::size_t i = 0; i < keep; ++i) out.samples.push_back(dataset.samples[majority[i]]);
  return out;
}

SplitDataset stratified_split(const Dataset& dataset, double train_fraction, Rng& rng) {
  LINGXI_ASSERT(train_fraction > 0.0 && train_fraction < 1.0);
  SplitDataset out;
  for (bool label : {false, true}) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < dataset.samples.size(); ++i) {
      if (dataset.samples[i].exited == label) idx.push_back(i);
    }
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(idx.size()) - 1));
      std::swap(idx[i], idx[j]);
    }
    const auto cut = static_cast<std::size_t>(train_fraction * static_cast<double>(idx.size()));
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < cut ? out.train : out.test).samples.push_back(dataset.samples[idx[i]]);
    }
  }
  return out;
}

double train_exit_net(StallExitNet& net, const Dataset& train_set, const TrainConfig& config,
                      Rng& rng) {
  LINGXI_ASSERT(!train_set.samples.empty());
  nn::ParamSet params = net.param_set();
  nn::Adam::Config adam_cfg;
  adam_cfg.lr = config.lr;
  nn::Adam adam(params.params, params.grads, adam_cfg);

  std::vector<std::size_t> order(train_set.samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double final_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(order.size()) - 1));
      std::swap(order[i], order[j]);
    }
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    params.zero_grad();
    for (std::size_t i = 0; i < order.size(); ++i) {
      const Sample& sample = train_set.samples[order[i]];
      const nn::Tensor z = net.logits(sample.features);
      nn::Tensor grad;
      epoch_loss += nn::softmax_cross_entropy(z, sample.exited ? 1u : 0u, grad);
      grad.scale(1.0 / static_cast<double>(config.batch_size));
      net.backward(grad);
      if (++in_batch == config.batch_size || i + 1 == order.size()) {
        adam.step();
        params.zero_grad();
        in_batch = 0;
      }
    }
    final_epoch_loss = epoch_loss / static_cast<double>(order.size());
  }
  return final_epoch_loss;
}

ClassificationMetrics evaluate(StallExitNet& net, const Dataset& test_set, double threshold) {
  ClassificationMetrics m;
  for (const Sample& s : test_set.samples) {
    const bool predicted_exit = net.predict(s.features) >= threshold;
    if (predicted_exit && s.exited) ++m.true_pos;
    else if (predicted_exit && !s.exited) ++m.false_pos;
    else if (!predicted_exit && s.exited) ++m.false_neg;
    else ++m.true_neg;
  }
  const double total = static_cast<double>(test_set.samples.size());
  if (total == 0.0) return m;
  m.accuracy = static_cast<double>(m.true_pos + m.true_neg) / total;
  const double pp = static_cast<double>(m.true_pos + m.false_pos);
  const double ap = static_cast<double>(m.true_pos + m.false_neg);
  m.precision = pp > 0.0 ? static_cast<double>(m.true_pos) / pp : 0.0;
  m.recall = ap > 0.0 ? static_cast<double>(m.true_pos) / ap : 0.0;
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

}  // namespace lingxi::predictor
