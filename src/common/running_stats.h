// Streaming first/second-moment accumulation (Welford's algorithm).
//
// Used throughout the simulator and analytics code to aggregate metrics
// without buffering every sample: bandwidth estimation windows, A/B daily
// aggregates, Monte Carlo rollup, GP observation normalization.
#pragma once

#include <cstddef>

namespace lingxi {

/// Numerically stable running mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator (parallel reduction), Chan et al. update.
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  /// Mean of the samples; 0 when empty.
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  /// Square root of variance().
  double stddev() const noexcept;
  /// Population variance (divide by n); 0 when empty.
  double population_variance() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lingxi
