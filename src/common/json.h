// Minimal JSON document model + recursive-descent parser.
//
// The repo emits JSON in several places (bench --json summaries, the
// lingxi.obs.metrics/v1 dump) but until now never consumed it: the
// perf-regression gate (analytics/bench_gate.h, bench/bench_compare.cpp)
// needs to read those files back without growing a dependency. This is a
// deliberately small strict parser — UTF-8 passthrough, no comments, no
// trailing commas, doubles only (the repo's writers emit %.17g, which a
// double round-trips) — returning Expected so malformed input is a
// diagnosis, not UB.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.h"

namespace lingxi {

/// One parsed JSON value. Object member order is not preserved (members are
/// name-sorted via std::map) — fine for data files, not a re-serializer.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; the wrong type asserts (probe with is_*() first).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member by name; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Dotted-path lookup through nested objects (`"cross_user.speedup"`);
  /// nullptr when any step is absent.
  const JsonValue* find_path(std::string_view dotted) const noexcept;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage is Error::kParse, with a byte offset in the message).
Expected<JsonValue> parse_json(std::string_view text);
/// parse_json over a file's contents; unopenable file is Error::kIo.
Expected<JsonValue> parse_json_file(const std::string& path);

}  // namespace lingxi
