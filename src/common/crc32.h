// CRC-32 (IEEE 802.3 polynomial, reflected).
//
// Used by lingxi::logstore to checksum persisted state records so corrupt
// or truncated files are detected at load time instead of poisoning the
// per-user personalization state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lingxi {

/// One-shot CRC-32 of `len` bytes at `data`.
std::uint32_t crc32(const void* data, std::size_t len) noexcept;

/// Incremental form: seed with 0, feed chunks, result is identical to
/// the one-shot call over the concatenation.
std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t len) noexcept;

}  // namespace lingxi
