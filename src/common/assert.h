// Contract-checking macros.
//
// LINGXI_ASSERT   — precondition / invariant check, active in all build types.
//                   Violations indicate a programming error and abort.
// LINGXI_DASSERT  — debug-only assert for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lingxi::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "lingxi: contract violation: (%s) at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace lingxi::detail

#define LINGXI_ASSERT(expr)                                            \
  do {                                                                 \
    if (!(expr)) ::lingxi::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (false)

#ifdef NDEBUG
#define LINGXI_DASSERT(expr) ((void)0)
#else
#define LINGXI_DASSERT(expr) LINGXI_ASSERT(expr)
#endif
