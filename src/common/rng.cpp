#include "common/rng.h"

#include <cmath>

#include "common/assert.h"

namespace lingxi {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t x = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b * 0xc2b2ae3d27d4eb4fULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

Rng::State Rng::state() const noexcept {
  State st;
  for (std::size_t i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::restore(const State& state) noexcept {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 significand bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  LINGXI_DASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  LINGXI_DASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; avoid log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sd) noexcept {
  LINGXI_DASSERT(sd >= 0.0);
  return mean + sd * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double lambda) noexcept {
  LINGXI_DASSERT(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::size_t Rng::discrete(const std::vector<double>& weights) noexcept {
  LINGXI_DASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    LINGXI_DASSERT(w >= 0.0);
    total += w;
  }
  LINGXI_DASSERT(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept {
  // Mix the full state into a fresh seed; the child is re-expanded through
  // splitmix64 so parent/child sequences do not overlap in practice.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 41) ^ next();
  return Rng{mix};
}

}  // namespace lingxi
