#include "common/json.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/assert.h"

namespace lingxi {

bool JsonValue::as_bool() const {
  LINGXI_ASSERT(is_bool());
  return bool_;
}

double JsonValue::as_number() const {
  LINGXI_ASSERT(is_number());
  return number_;
}

const std::string& JsonValue::as_string() const {
  LINGXI_ASSERT(is_string());
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  LINGXI_ASSERT(is_array());
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  LINGXI_ASSERT(is_object());
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::find_path(std::string_view dotted) const noexcept {
  const JsonValue* node = this;
  std::size_t start = 0;
  while (node != nullptr && start <= dotted.size()) {
    std::size_t dot = dotted.find('.', start);
    std::string_view key =
        dot == std::string_view::npos ? dotted.substr(start) : dotted.substr(start, dot - start);
    node = node->find(key);
    if (dot == std::string_view::npos) return node;
    start = dot + 1;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over the raw text. Depth-limited so adversarial
/// nesting fails cleanly instead of overflowing the stack.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  static constexpr int kMaxDepth = 128;

  Error err(const std::string& what) const {
    return Error::parse("json: " + what + " at byte " + std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  Expected<JsonValue> value(int depth) {
    if (depth > kMaxDepth) return err("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return err("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') {
      auto s = string();
      if (!s) return s.error();
      return JsonValue(std::move(*s));
    }
    if (consume_word("null")) return JsonValue();
    if (consume_word("true")) return JsonValue(true);
    if (consume_word("false")) return JsonValue(false);
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    return err(std::string("unexpected character '") + c + "'");
  }

  Expected<JsonValue> number() {
    double v = 0.0;
    auto [end, ec] = std::from_chars(text.data() + pos, text.data() + text.size(), v);
    if (ec != std::errc{} || end == text.data() + pos) return err("malformed number");
    pos = static_cast<std::size_t>(end - text.data());
    return JsonValue(v);
  }

  Expected<std::string> string() {
    if (!consume('"')) return err("expected string");
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return err("malformed \\u escape");
            }
            pos += 4;
            // Encode the code point as UTF-8 (surrogate pairs are passed
            // through as their individual halves — the repo's writers never
            // emit them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return err(std::string("unknown escape '\\") + e + "'");
        }
        continue;
      }
      out.push_back(c);
    }
    return err("unterminated string");
  }

  Expected<JsonValue> array(int depth) {
    consume('[');
    JsonValue::Array out;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(out));
    while (true) {
      auto v = value(depth + 1);
      if (!v) return v.error();
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return JsonValue(std::move(out));
      if (!consume(',')) return err("expected ',' or ']' in array");
    }
  }

  Expected<JsonValue> object(int depth) {
    consume('{');
    JsonValue::Object out;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(out));
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return key.error();
      skip_ws();
      if (!consume(':')) return err("expected ':' after object key");
      auto v = value(depth + 1);
      if (!v) return v.error();
      out.insert_or_assign(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return JsonValue(std::move(out));
      if (!consume(',')) return err("expected ',' or '}' in object");
    }
  }
};

}  // namespace

Expected<JsonValue> parse_json(std::string_view text) {
  Parser parser{text};
  auto v = parser.value(0);
  if (!v) return v.error();
  parser.skip_ws();
  if (parser.pos != text.size()) return parser.err("trailing garbage after document");
  return v;
}

Expected<JsonValue> parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error::io("json: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Error::io("json: read failed for " + path);
  return parse_json(buffer.str());
}

}  // namespace lingxi
