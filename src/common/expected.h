// Lightweight Expected<T> error channel.
//
// Recoverable failures (I/O, parse errors, bad configuration files) are
// returned as values; exceptions are reserved for contract violations.
// This mirrors std::expected (C++23), which is not yet available on the
// pinned toolchain.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace lingxi {

/// Error category + human-readable message.
struct Error {
  enum class Code {
    kIo,            ///< file open/read/write failure
    kCorrupt,       ///< checksum / magic / version mismatch in stored data
    kParse,         ///< malformed text input
    kInvalidArg,    ///< caller-supplied configuration rejected
    kNotFound,      ///< requested record absent
  };

  Code code;
  std::string message;

  static Error io(std::string msg) { return {Code::kIo, std::move(msg)}; }
  static Error corrupt(std::string msg) { return {Code::kCorrupt, std::move(msg)}; }
  static Error parse(std::string msg) { return {Code::kParse, std::move(msg)}; }
  static Error invalid_arg(std::string msg) { return {Code::kInvalidArg, std::move(msg)}; }
  static Error not_found(std::string msg) { return {Code::kNotFound, std::move(msg)}; }
};

/// Holds either a T or an Error. Access to the wrong alternative asserts.
template <typename T>
class Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Expected(Error error) : v_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  bool has_value() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & {
    LINGXI_ASSERT(has_value());
    return std::get<T>(v_);
  }
  const T& value() const& {
    LINGXI_ASSERT(has_value());
    return std::get<T>(v_);
  }
  T&& value() && {
    LINGXI_ASSERT(has_value());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    LINGXI_ASSERT(!has_value());
    return std::get<Error>(v_);
  }

  T value_or(T fallback) const& { return has_value() ? std::get<T>(v_) : std::move(fallback); }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> v_;
};

/// Expected<void> analogue for operations with no result payload.
class Status {
 public:
  Status() = default;                                     // success
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  const Error& error() const {
    LINGXI_ASSERT(!ok_);
    return error_;
  }

 private:
  Error error_{Error::Code::kIo, {}};
  bool ok_ = true;
};

}  // namespace lingxi
