// Domain units and conversions.
//
// The streaming stack mixes kilobits-per-second (ladder bitrates, throughput),
// bytes (segment sizes) and seconds (buffer, stall, durations). To keep call
// sites readable without a heavyweight unit library we use doubles with
// suffix-named helpers and centralize every conversion here.
#pragma once

namespace lingxi {

/// Kilobits per second. All ladder bitrates and throughputs use this unit.
using Kbps = double;
/// Seconds. All durations (buffer, stall, segment length, RTT) use this unit.
using Seconds = double;
/// Bytes. Segment sizes on the wire.
using Bytes = double;

namespace units {

constexpr double kBitsPerByte = 8.0;
constexpr double kBitsPerKilobit = 1000.0;

/// Size in bytes of `duration` seconds of media encoded at `bitrate` kbps.
constexpr Bytes segment_bytes(Kbps bitrate, Seconds duration) {
  return bitrate * kBitsPerKilobit / kBitsPerByte * duration;
}

/// Time to download `size` bytes at `throughput` kbps. throughput must be > 0.
constexpr Seconds download_time(Bytes size, Kbps throughput) {
  return size * kBitsPerByte / (throughput * kBitsPerKilobit);
}

/// Throughput in kbps achieved downloading `size` bytes in `time` seconds.
constexpr Kbps throughput_kbps(Bytes size, Seconds time) {
  return size * kBitsPerByte / kBitsPerKilobit / time;
}

constexpr Kbps mbps(double v) { return v * 1000.0; }

}  // namespace units
}  // namespace lingxi
