// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit Rng so that
// simulations, training runs and benchmarks are reproducible bit-for-bit.
// The engine is xoshiro256++ (Blackman & Vigna), seeded via splitmix64;
// it satisfies std::uniform_random_bit_generator so it can also drive
// <random> distributions if ever needed.
#pragma once

#include <cstdint>
#include <vector>

namespace lingxi {

/// Derive a stream seed from (seed, a, b) via splitmix64-style mixing.
/// Shared by the population drivers (PopulationExperiment, FleetRunner) so
/// "user u, purpose b" always names the same stream: determinism depends on
/// the derivation, never on execution order. Distinct (a, b) pairs must be
/// used for distinct purposes — callers tag the high bits of `b`.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256++ PRNG with convenience samplers.
///
/// `fork()` derives an independent substream, which lets a parent component
/// hand child components their own generators without correlated streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Complete generator state — the xoshiro words plus the Box–Muller
  /// carry — so a stream position can be checkpointed and resumed exactly:
  /// restore(state()) reproduces the identical draw sequence, including a
  /// pending cached normal. The snapshot subsystem persists this per user.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;

    bool operator==(const State&) const = default;
  };

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Checkpoint / resume the stream position (see State).
  State state() const noexcept;
  void restore(const State& state) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;
  /// Normal with given mean / standard deviation (sd >= 0).
  double normal(double mean, double sd) noexcept;
  /// Lognormal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;
  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Sample an index from a discrete distribution given non-negative weights.
  /// Returns weights.size()-1 on accumulated rounding. Requires total > 0.
  std::size_t discrete(const std::vector<double>& weights) noexcept;

  /// Derive an independent child generator (jump via re-seeding with
  /// splitmix64 of the current state mix; streams are de-correlated).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lingxi
