#include "common/crc32.h"

#include <array>

namespace lingxi {
namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;  // reflected IEEE polynomial

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return ~crc;
}

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  return crc32_update(0u, data, len);
}

}  // namespace lingxi
