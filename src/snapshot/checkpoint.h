// Auto-checkpoint policy and crash recovery on top of snapshot.h.
//
// The fleet runner itself stays snapshot-agnostic (sim must not depend on
// snapshot): FleetRunner exposes a generic CheckpointHook called at day
// boundaries, and this layer supplies the policy — where checkpoints live,
// how often they are cut, how many are retained — plus the recovery scan a
// restarted process uses to find the newest intact checkpoint.
//
// Durability model (see snapshot.h for the per-checkpoint commit protocol):
// every checkpoint directory under the root is committed transactionally,
// so after a kill -9 at ANY point the root contains only (a) fully valid
// checkpoint directories, possibly under a `.tmp`/`.old` crash-leftover
// name, and (b) torn directories whose manifest is absent or fails
// CRC/structural validation. find_latest_valid content-validates every
// candidate and returns the newest recoverable state, so recovery never
// trusts a name over the bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.h"
#include "sim/fleet_runner.h"
#include "snapshot/snapshot.h"
#include "telemetry/capture.h"

namespace lingxi::snapshot {

/// Where and how often AutoCheckpointer cuts checkpoints.
struct CheckpointPolicy {
  /// Directory holding the checkpoint-day-NNNNNN subdirectories (created on
  /// first checkpoint if absent).
  std::string root;
  /// Cut a checkpoint every k simulated days (FleetRunner interior
  /// boundaries: first_day + k, + 2k, ... < last_day).
  std::size_t every_k_days = 1;
  /// Keep the newest `retain` committed checkpoints; older ones (and their
  /// stale `.tmp`/`.old` siblings) are removed after each commit. Clamped to
  /// at least 1 — the policy never deletes the only recovery point.
  std::size_t retain = 2;
  /// State-file granularity forwarded to save_snapshot.
  std::size_t users_per_shard = 64;
};

/// Name of the checkpoint directory for a day boundary: "checkpoint-day-"
/// + zero-padded next_day, so lexicographic order is day order.
std::string checkpoint_dirname(std::uint64_t next_day);

/// Cuts checkpoints at FleetRunner day boundaries, serving-style: a failed
/// checkpoint is recorded (first error wins, see status()) but never stops
/// the run — a durability gap is recoverable, a killed fleet is not.
///
/// Usage:
///   AutoCheckpointer ckpt(runner, seed, {.root = dir, .every_k_days = 5});
///   ckpt.arm(runner);
///   auto acc = runner.run_days(seed, days);   // checkpoints cut en route
///   if (!ckpt.status()) ...                   // durability report
///
/// The checkpointer borrows the runner and the optional capture; both must
/// outlive it. Not thread-safe: arm on one runner, run on one thread (the
/// hook fires on the run_days caller's thread between legs).
class AutoCheckpointer {
 public:
  AutoCheckpointer(const sim::FleetRunner& runner, std::uint64_t seed,
                   CheckpointPolicy policy,
                   const telemetry::ShardedCapture* capture = nullptr);

  /// Install this checkpointer as `runner`'s checkpoint hook with the
  /// policy's cadence. The runner reference must be the one passed to the
  /// constructor (the hook captures `this`).
  void arm(sim::FleetRunner& runner);

  /// First checkpoint failure, if any (OK while everything committed).
  const Status& status() const { return status_; }
  /// Checkpoints successfully committed so far.
  std::size_t checkpoints_committed() const { return committed_dirs_total_; }
  /// Committed checkpoint directories still on disk, oldest first.
  const std::vector<std::string>& committed_dirs() const { return committed_dirs_; }

  /// The hook body (public so tests can drive boundaries directly).
  void on_boundary(const sim::FleetDayState& state);

 private:
  void note_failure(Error error);
  void prune();

  const sim::FleetRunner* runner_;
  std::uint64_t seed_;
  CheckpointPolicy policy_;
  const telemetry::ShardedCapture* capture_;
  Status status_;
  std::vector<std::string> committed_dirs_;
  std::size_t committed_dirs_total_ = 0;
};

/// A recovered checkpoint: the loaded snapshot plus the directory it came
/// from (possibly a `.tmp`/`.old` crash leftover — the bytes, not the name,
/// were validated).
struct RecoveredCheckpoint {
  FleetSnapshot snapshot;
  std::string dir;
};

/// Scan `root` for the newest recoverable checkpoint: every subdirectory is
/// content-validated via load_snapshot (CRCs, version, structure), torn or
/// partially staged directories are skipped, and candidates are ranked by
/// next_day (committed names outrank `.tmp`/`.old` leftovers of the same
/// day). kNotFound when nothing under `root` is recoverable, kIo when the
/// root itself cannot be read.
Expected<RecoveredCheckpoint> find_latest_valid(const std::string& root);

}  // namespace lingxi::snapshot
