// Fleet snapshot/checkpoint subsystem — warm-start & incremental-day runs.
//
// A snapshot serializes the complete evolving state of a fleet at a day
// boundary (sim::FleetDayState: per-user engagement, bandwidth windows,
// trigger counters, adopted QoE parameters, optimizer counters, rng stream
// positions, plus the merged FleetAccumulator), the predictor net weights
// (a versioned nn model container) and, optionally, the telemetry capture
// cursors — so a later process can resume the fleet at day D and produce
// results bitwise identical to a run that never stopped (the parity grid in
// tests/test_properties.cpp and the scripts/ci.sh smoke pin this).
//
// ## Snapshot format spec (version 1)
//
// A snapshot is a directory, mirroring the telemetry archive discipline
// (manifest + framed per-shard files, everything CRC-protected through
// logstore/record.h and common/crc32, failures surfacing through
// common/expected.h):
//
//   <dir>/manifest.lxm     one framed record
//   <dir>/net.lxnw         optional: nn::serialize model container
//                          (kModelKindStallExitNet) with the predictor
//                          factory's net weights; absent when the fleet has
//                          no predictor
//   <dir>/state-NNNN.lxst  framed per-user state records for users
//                          [NNNN * users_per_shard, (NNNN+1) * users_per_shard)
//
// Manifest payload (little-endian, logstore primitive codecs):
//   u32 format_version    kSnapshotFormatVersion
//   u64 seed              fleet seed the snapshot was taken at
//   u32 resume_digest     telemetry::config_digest over the FleetConfig with
//                         `days` forced to 0 — a resumed run may EXTEND the
//                         calendar (incremental-day experiments) but every
//                         result-shaping knob must match
//   u64 users
//   u64 next_day          first day a resumed run simulates (the boundary D)
//   u64 users_per_shard   state-file granularity (users per state file)
//   u32 has_net           0/1; u32 net_crc — CRC32 of net.lxnw's bytes
//   u32 has_capture       0/1: capture-cursor records follow each user state
//   accumulator           18 u64 fields of the merged FleetAccumulator over
//                         days [0, next_day), declaration order
//   u64 shard_count
//   per shard:            u64 first_user | u64 user_count | u64 byte_count |
//                         u32 crc32(state file bytes)
//
// State-file record payloads, discriminated by a leading u32 type tag:
//   kUserStateRecord (1):     u64 user | rng (4x u64 state words,
//                             f64 cached normal, u32 has flag) | 3x f64 QoE
//                             params | u64 adjusted_days | u32 has_lingxi |
//                             [lingxi section: engagement snapshot (3 event
//                             vectors as u64 count + f64s, f64 watch time,
//                             u64 stall events, u64 stall exits, 2x f64
//                             interval anchors), bandwidth window (u64 count
//                             + f64s, oldest first), u64 trigger counter,
//                             u32 has_optimized, 3x f64 adopted QoE params
//                             (the controller's warm start — distinct from
//                             the ABR params during an AA period),
//                             5x u64 optimizer counters]
//   kCaptureCursorRecord (2): u64 user | u64 records |
//                             u64 next_expected_at_least | u64 byte_count |
//                             raw buffered archive bytes
//
// Within a state file, records are user-major in ascending user order; when
// has_capture is set each user's state record is followed by that user's
// capture cursor record.
//
// OBO/GP optimizer state: day-boundary snapshots never carry an in-flight
// OBO round — a LingXi optimization completes within the session that
// triggered it, and its GP is rebuilt per round from the persisted warm
// start (LingXi::PersistentState::params). The bayesopt layer is still
// exactly checkpointable (bayesopt::OnlineBayesOpt::State), and
// encode_obo_state/decode_obo_state round-trip the GP observation history
// and hyperparameters for tooling and future mid-session snapshots; the
// fleet format reserves record type 3 for them.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bayesopt/obo.h"
#include "common/expected.h"
#include "sim/fleet_runner.h"
#include "telemetry/capture.h"

namespace lingxi::snapshot {

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// A fleet checkpoint materialized in memory: the deterministic output of
/// capture_snapshot(), ready to be written out (save_snapshot) or resumed
/// from directly.
struct FleetSnapshot {
  std::uint64_t seed = 0;
  std::uint32_t resume_digest = 0;
  /// Day-boundary state: per-user evolving state + accumulator (next_day=D).
  sim::FleetDayState state;
  /// nn::serialize model container with the predictor net weights; empty
  /// when the fleet runs without a predictor.
  std::vector<unsigned char> net_model;
  /// Telemetry capture positions (one per user) when a ShardedCapture was
  /// snapshotted alongside the fleet.
  bool has_capture = false;
  std::vector<telemetry::ShardedCapture::CaptureCursor> capture;
};

/// telemetry::config_digest with the calendar length (`days`) zeroed out: a
/// resumed run must match every result-shaping knob but may extend the
/// horizon (that is the point of incremental-day experiments).
std::uint32_t resume_digest(const sim::FleetConfig& config);

/// File names inside a snapshot directory.
std::string manifest_filename();
std::string state_filename(std::size_t shard_index);
std::string net_filename();

/// Assemble a snapshot from a runner's exported day state: stamps seed and
/// resume digest, serializes the predictor factory's net (the fleet factory
/// is pure configuration, so one container covers every deep copy), and
/// exports `capture`'s cursors when given. Fails with kInvalidArg when the
/// state's user count disagrees with the config.
Expected<FleetSnapshot> capture_snapshot(const sim::FleetRunner& runner,
                                         std::uint64_t seed, sim::FleetDayState state,
                                         const telemetry::ShardedCapture* capture = nullptr);

/// Write manifest + net + per-shard state files into `dir` (created if
/// missing). `users_per_shard` is the state-file granularity.
Status save_snapshot(const FleetSnapshot& snapshot, const std::string& dir,
                     std::size_t users_per_shard = 64);

/// Read a snapshot back. Every CRC, version and structural invariant is
/// checked (Error::kCorrupt on mismatch) — including that the net container
/// deserializes and the shard table tiles the user range — so a resumed
/// fleet never starts from silently corrupt state.
Expected<FleetSnapshot> load_snapshot(const std::string& dir);

/// Resumability check: seed, user count, result-shaping config digest and
/// day boundary must all line up with the fleet about to resume
/// (kInvalidArg with a specific message otherwise).
Status check_compatible(const FleetSnapshot& snapshot, const sim::FleetConfig& config,
                        std::uint64_t seed);

/// Wrap a predictor factory so every predictor it hands out carries the
/// snapshot's net weights — resume is then robust against factory drift
/// between the saving and resuming processes. With an empty `net_model` the
/// base factory is returned unchanged. The blob must have been validated
/// (load_snapshot does); weight/shape mismatches are a contract violation.
sim::FleetRunner::PredictorFactory resume_predictor_factory(
    sim::FleetRunner::PredictorFactory base, std::vector<unsigned char> net_model);

/// Re-arm a capture for a resumed leg: begin_fleet(config, snapshot seed)
/// then restore the snapshot's cursors, so the resumed run appends days
/// [D, ...) and finish() emits archive bytes identical to an unsplit run.
/// Copies the cursor bytes (the whole captured archive so far); a resume
/// path that is done with the snapshot's cursors should hand them to the
/// moving overload instead.
Status restore_capture(telemetry::ShardedCapture& capture, const sim::FleetConfig& config,
                       const FleetSnapshot& snapshot);
/// Moving form: same checks, but the cursors are consumed (pass
/// `snapshot.seed, std::move(snapshot.capture)`), so resuming does not
/// transiently duplicate the captured archive bytes.
Status restore_capture(telemetry::ShardedCapture& capture, const sim::FleetConfig& config,
                       std::uint64_t seed,
                       std::vector<telemetry::ShardedCapture::CaptureCursor> cursors);

/// Per-user state codec (exposed for tests and bench_micro).
std::vector<unsigned char> encode_user_state(std::uint64_t user,
                                             const sim::UserFleetState& state);
Expected<std::pair<std::uint64_t, sim::UserFleetState>> decode_user_state(
    const std::vector<unsigned char>& payload);

/// OBO/GP optimizer-state codec (see the header comment: reserved record
/// type 3; not embedded by day-boundary snapshots).
std::vector<unsigned char> encode_obo_state(const bayesopt::OnlineBayesOpt::State& state);
Expected<bayesopt::OnlineBayesOpt::State> decode_obo_state(
    const std::vector<unsigned char>& payload);

}  // namespace lingxi::snapshot
