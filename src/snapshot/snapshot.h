// Fleet snapshot/checkpoint subsystem — warm-start & incremental-day runs.
//
// A snapshot serializes the complete evolving state of a fleet at a day
// boundary (sim::FleetDayState: per-user engagement, bandwidth windows,
// trigger counters, adopted QoE parameters, optimizer counters, rng stream
// positions, plus the merged FleetAccumulator), the predictor net weights
// (a versioned nn model container) and, optionally, the telemetry capture
// cursors — so a later process can resume the fleet at day D and produce
// results bitwise identical to a run that never stopped (the parity grid in
// tests/test_properties.cpp and the scripts/ci.sh smoke pin this).
//
// ## Snapshot format spec (version 2)
//
// v2: the manifest accumulator block grew the sticky overflow latch
// (19 u64 fields, declaration order); v1 snapshots fail the version check
// rather than misparse.
//
// A snapshot is a directory, mirroring the telemetry archive discipline
// (manifest + framed per-shard files, everything CRC-protected through
// logstore/record.h and common/crc32, failures surfacing through
// common/expected.h):
//
//   <dir>/manifest.lxm     one framed record
//   <dir>/net.lxnw         optional: nn::serialize model container
//                          (kModelKindStallExitNet) with the predictor
//                          factory's net weights; absent when the fleet has
//                          no predictor
//   <dir>/state-NNNN.lxst  framed per-user state records for users
//                          [NNNN * users_per_shard, (NNNN+1) * users_per_shard)
//
// Manifest payload (little-endian, logstore primitive codecs):
//   u32 format_version    kSnapshotFormatVersion
//   u64 seed              fleet seed the snapshot was taken at
//   u32 resume_digest     telemetry::config_digest over the FleetConfig with
//                         `days` forced to 0 — a resumed run may EXTEND the
//                         calendar (incremental-day experiments) but every
//                         result-shaping knob must match
//   u64 users
//   u64 next_day          first day a resumed run simulates (the boundary D)
//   u64 users_per_shard   state-file granularity (users per state file)
//   u32 has_net           0/1; u32 net_crc — CRC32 of net.lxnw's bytes
//   u32 has_capture       0/1: capture-cursor records follow each user state
//   accumulator           19 u64 fields of the merged FleetAccumulator over
//                         days [0, next_day), declaration order (the last is
//                         the sticky overflow latch)
//   u64 shard_count
//   per shard:            u64 first_user | u64 user_count | u64 byte_count |
//                         u32 crc32(state file bytes)
//
// State-file record payloads, discriminated by a leading u32 type tag:
//   kUserStateRecord (1):     u64 user | rng (4x u64 state words,
//                             f64 cached normal, u32 has flag) | 3x f64 QoE
//                             params | u64 adjusted_days | u32 has_lingxi |
//                             [lingxi section: engagement snapshot (3 event
//                             vectors as u64 count + f64s, f64 watch time,
//                             u64 stall events, u64 stall exits, 2x f64
//                             interval anchors), bandwidth window (u64 count
//                             + f64s, oldest first), u64 trigger counter,
//                             u32 has_optimized, 3x f64 adopted QoE params
//                             (the controller's warm start — distinct from
//                             the ABR params during an AA period),
//                             5x u64 optimizer counters]
//   kCaptureCursorRecord (2): u64 user | u64 records |
//                             u64 next_expected_at_least | u64 byte_count |
//                             raw buffered archive bytes
//
// Within a state file, records are user-major in ascending user order; when
// has_capture is set each user's state record is followed by that user's
// capture cursor record.
//
// OBO/GP optimizer state: day-boundary snapshots never carry an in-flight
// OBO round — a LingXi optimization completes within the session that
// triggered it, and its GP is rebuilt per round from the persisted warm
// start (LingXi::PersistentState::params). The bayesopt layer is still
// exactly checkpointable (bayesopt::OnlineBayesOpt::State), and
// encode_obo_state/decode_obo_state round-trip the GP observation history
// and hyperparameters for tooling and future mid-session snapshots; the
// fleet format reserves record type 3 for them.
//
// ## Durability contract (crash-safe commit)
//
// save_snapshot commits a checkpoint transactionally:
//
//   1. everything is STAGED into a sibling directory `<dir>.tmp` (a stale
//      staging dir from a crashed save is cleared first);
//   2. state files and the net container are written before the MANIFEST,
//      which is written LAST — a directory with a valid manifest is
//      therefore complete by construction;
//   3. every file write is itself atomic-durable (logstore::write_file:
//      temp file, fsync, checked close, rename) and the staging directory
//      is fsynced before the commit;
//   4. the staging directory is RENAMED into place: onto a fresh `<dir>`
//      directly, or — when re-checkpointing over an existing snapshot —
//      via an atomic exchange (renameat2) with a rename-aside fallback
//      (`<dir>` -> `<dir>.old`, staging -> `<dir>`), so the previous good
//      checkpoint is never clobbered by a torn commit.
//
// A crash (kill -9, power loss, full disk) at ANY point leaves a state
// snapshot::find_latest_valid (checkpoint.h) recovers from: either the new
// checkpoint is fully committed, or the previous one is intact — possibly
// under its `.old`/`.tmp` staging name, which recovery content-validates
// like any other candidate. Torn or partially staged directories fail CRC /
// structural validation and are skipped.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bayesopt/obo.h"
#include "common/expected.h"
#include "sim/fleet_runner.h"
#include "telemetry/capture.h"

namespace lingxi::snapshot {

inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/// A fleet checkpoint materialized in memory: the deterministic output of
/// capture_snapshot(), ready to be written out (save_snapshot) or resumed
/// from directly.
struct FleetSnapshot {
  std::uint64_t seed = 0;
  std::uint32_t resume_digest = 0;
  /// Day-boundary state: per-user evolving state + accumulator (next_day=D).
  sim::FleetDayState state;
  /// nn::serialize model container with the predictor net weights; empty
  /// when the fleet runs without a predictor.
  std::vector<unsigned char> net_model;
  /// Telemetry capture positions (one per user) when a ShardedCapture was
  /// snapshotted alongside the fleet.
  bool has_capture = false;
  std::vector<telemetry::ShardedCapture::CaptureCursor> capture;
};

/// telemetry::config_digest with the calendar length (`days`) zeroed out: a
/// resumed run must match every result-shaping knob but may extend the
/// horizon (that is the point of incremental-day experiments).
std::uint32_t resume_digest(const sim::FleetConfig& config);

/// File names inside a snapshot directory.
std::string manifest_filename();
std::string state_filename(std::size_t shard_index);
std::string net_filename();

/// Assemble a snapshot from a runner's exported day state: stamps seed and
/// resume digest, serializes the predictor factory's net (the fleet factory
/// is pure configuration, so one container covers every deep copy), and
/// exports `capture`'s cursors when given. Fails with kInvalidArg when the
/// state's user count disagrees with the config.
Expected<FleetSnapshot> capture_snapshot(const sim::FleetRunner& runner,
                                         std::uint64_t seed, sim::FleetDayState state,
                                         const telemetry::ShardedCapture* capture = nullptr);

/// Commit manifest + net + per-shard state files into `dir` transactionally
/// (stage into `<dir>.tmp`, manifest last, fsync, atomic rename — see the
/// durability contract above). `users_per_shard` is the state-file
/// granularity. An existing snapshot at `dir` is replaced atomically and is
/// never clobbered by a torn commit.
Status save_snapshot(const FleetSnapshot& snapshot, const std::string& dir,
                     std::size_t users_per_shard = 64);

/// Stages of save_snapshot's commit sequence, in order, as observed by the
/// test-only commit hook (crash-injection harness).
enum class SaveStage {
  kStateFilesStaged,  ///< state files + net written into the staging dir
  kManifestStaged,    ///< manifest written (last) into the staging dir
  kStagingDurable,    ///< staging dir fsynced; the commit rename is next
  kCommitted,         ///< staging renamed into place (cleanup may follow)
};

/// Test-only crash injection: the hook observes every SaveStage; returning
/// false aborts save_snapshot right there (Error::kIo), leaving the partial
/// on-disk state exactly as a crash at that point would — the crash-recovery
/// tests then assert find_latest_valid skips or recovers it. The hook may
/// also raise SIGKILL itself for real kill -9 coverage (bench_crash_recovery
/// does). Pass nullptr to clear. Not thread-safe; set before the run.
using SaveCommitHook = bool (*)(SaveStage);
void set_save_commit_hook(SaveCommitHook hook);

/// Read a snapshot back. Every CRC, version and structural invariant is
/// checked (Error::kCorrupt on mismatch) — including that the net container
/// deserializes and the shard table tiles the user range — so a resumed
/// fleet never starts from silently corrupt state.
Expected<FleetSnapshot> load_snapshot(const std::string& dir);

/// Resumability check: seed, user count, result-shaping config digest and
/// day boundary must all line up with the fleet about to resume
/// (kInvalidArg with a specific message otherwise).
Status check_compatible(const FleetSnapshot& snapshot, const sim::FleetConfig& config,
                        std::uint64_t seed);

/// Wrap a predictor factory so every predictor it hands out carries the
/// snapshot's net weights — resume is then robust against factory drift
/// between the saving and resuming processes. With an empty `net_model` the
/// base factory is returned unchanged. The blob must have been validated
/// (load_snapshot does); weight/shape mismatches are a contract violation.
sim::FleetRunner::PredictorFactory resume_predictor_factory(
    sim::FleetRunner::PredictorFactory base, std::vector<unsigned char> net_model);

/// Re-arm a capture for a resumed leg: begin_fleet(config, snapshot seed)
/// then restore the snapshot's cursors, so the resumed run appends days
/// [D, ...) and finish() emits archive bytes identical to an unsplit run.
/// Copies the cursor bytes (the whole captured archive so far); a resume
/// path that is done with the snapshot's cursors should hand them to the
/// moving overload instead.
Status restore_capture(telemetry::ShardedCapture& capture, const sim::FleetConfig& config,
                       const FleetSnapshot& snapshot);
/// Moving form: same checks, but the cursors are consumed (pass
/// `snapshot.seed, std::move(snapshot.capture)`), so resuming does not
/// transiently duplicate the captured archive bytes.
Status restore_capture(telemetry::ShardedCapture& capture, const sim::FleetConfig& config,
                       std::uint64_t seed,
                       std::vector<telemetry::ShardedCapture::CaptureCursor> cursors);

/// Per-user state codec (exposed for tests and bench_micro).
std::vector<unsigned char> encode_user_state(std::uint64_t user,
                                             const sim::UserFleetState& state);
Expected<std::pair<std::uint64_t, sim::UserFleetState>> decode_user_state(
    const std::vector<unsigned char>& payload);

/// OBO/GP optimizer-state codec (see the header comment: reserved record
/// type 3; not embedded by day-boundary snapshots).
std::vector<unsigned char> encode_obo_state(const bayesopt::OnlineBayesOpt::State& state);
Expected<bayesopt::OnlineBayesOpt::State> decode_obo_state(
    const std::vector<unsigned char>& payload);

}  // namespace lingxi::snapshot
