#include "snapshot/snapshot.h"

#include <fcntl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "common/assert.h"
#include "common/crc32.h"
#include "logstore/record.h"
#include "nn/serialize.h"
#include "obs/timer.h"
#include "telemetry/archive.h"

namespace lingxi::snapshot {
namespace {

// State-file record type tags (leading u32 of every record payload).
constexpr std::uint32_t kUserStateRecord = 1;
constexpr std::uint32_t kCaptureCursorRecord = 2;
// Type 3 is reserved for in-flight OBO state (see snapshot.h).

// Sanity caps for decoded containers: the engagement vectors are capped at
// kHistoryLen and the bandwidth window at LingXiConfig::bandwidth_window by
// construction, but a decoder must never let a corrupt length field drive an
// allocation.
constexpr std::uint64_t kMaxVectorLen = 1u << 20;
// Largest fleet a snapshot may claim (16M users): load_snapshot pre-sizes
// the user-state table from the manifest, so the count must be bounded
// before it drives an allocation — a corrupt count surfaces as
// Error::kCorrupt, never as bad_alloc.
constexpr std::uint64_t kMaxSnapshotUsers = 1u << 24;

void put_vector(std::vector<unsigned char>& p, const std::vector<double>& v) {
  logstore::put_u64(p, v.size());
  for (double x : v) logstore::put_f64(p, x);
}

bool get_vector(const std::vector<unsigned char>& in, std::size_t& pos,
                std::vector<double>& v) {
  std::uint64_t n = 0;
  if (!logstore::get_u64(in, pos, n) || n > kMaxVectorLen) return false;
  v.resize(static_cast<std::size_t>(n));
  for (auto& x : v) {
    if (!logstore::get_f64(in, pos, x)) return false;
  }
  return true;
}

std::uint32_t record_type(const std::vector<unsigned char>& payload) {
  std::size_t pos = 0;
  std::uint32_t type = 0;
  if (!logstore::get_u32(payload, pos, type)) return 0;
  return type;
}

std::vector<unsigned char> encode_capture_cursor(
    std::uint64_t user, const telemetry::ShardedCapture::CaptureCursor& cursor) {
  std::vector<unsigned char> p;
  logstore::put_u32(p, kCaptureCursorRecord);
  logstore::put_u64(p, user);
  logstore::put_u64(p, cursor.records);
  logstore::put_u64(p, cursor.next_expected_at_least);
  logstore::put_u64(p, cursor.bytes.size());
  p.insert(p.end(), cursor.bytes.begin(), cursor.bytes.end());
  return p;
}

Expected<std::pair<std::uint64_t, telemetry::ShardedCapture::CaptureCursor>>
decode_capture_cursor(const std::vector<unsigned char>& payload) {
  std::size_t pos = 4;  // past the type tag
  std::uint64_t user = 0, byte_count = 0;
  telemetry::ShardedCapture::CaptureCursor cursor;
  if (!logstore::get_u64(payload, pos, user) ||
      !logstore::get_u64(payload, pos, cursor.records) ||
      !logstore::get_u64(payload, pos, cursor.next_expected_at_least) ||
      !logstore::get_u64(payload, pos, byte_count)) {
    return Error::corrupt("truncated capture cursor record");
  }
  if (pos + byte_count != payload.size()) {
    return Error::corrupt("capture cursor byte count disagrees with record size");
  }
  cursor.bytes.assign(payload.begin() + static_cast<long>(pos), payload.end());
  return std::make_pair(user, std::move(cursor));
}

/// The 19 integer fields of FleetAccumulator in declaration order — the same
/// serialization checksum() hashes (overflow latch last).
void put_accumulator(std::vector<unsigned char>& p, const sim::FleetAccumulator& acc) {
  for (std::uint64_t v :
       {acc.sessions, acc.completed, acc.measured_sessions, acc.measured_completed,
        acc.stall_events, acc.stall_exits, acc.quality_switches, acc.users,
        static_cast<std::uint64_t>(acc.watch_ticks),
        static_cast<std::uint64_t>(acc.stall_ticks),
        static_cast<std::uint64_t>(acc.startup_ticks),
        static_cast<std::uint64_t>(acc.bitrate_time_ticks), acc.lingxi_triggers,
        acc.lingxi_optimizations, acc.lingxi_pruned_preplay, acc.lingxi_mc_evaluations,
        acc.lingxi_mc_rollouts_pruned, acc.adjusted_user_days, acc.overflowed}) {
    logstore::put_u64(p, v);
  }
}

bool get_accumulator(const std::vector<unsigned char>& in, std::size_t& pos,
                     sim::FleetAccumulator& acc) {
  std::uint64_t f[19];
  for (auto& v : f) {
    if (!logstore::get_u64(in, pos, v)) return false;
  }
  acc.sessions = f[0];
  acc.completed = f[1];
  acc.measured_sessions = f[2];
  acc.measured_completed = f[3];
  acc.stall_events = f[4];
  acc.stall_exits = f[5];
  acc.quality_switches = f[6];
  acc.users = f[7];
  acc.watch_ticks = static_cast<std::int64_t>(f[8]);
  acc.stall_ticks = static_cast<std::int64_t>(f[9]);
  acc.startup_ticks = static_cast<std::int64_t>(f[10]);
  acc.bitrate_time_ticks = static_cast<std::int64_t>(f[11]);
  acc.lingxi_triggers = f[12];
  acc.lingxi_optimizations = f[13];
  acc.lingxi_pruned_preplay = f[14];
  acc.lingxi_mc_evaluations = f[15];
  acc.lingxi_mc_rollouts_pruned = f[16];
  acc.adjusted_user_days = f[17];
  acc.overflowed = f[18];
  return true;
}

struct Manifest {
  std::uint64_t seed = 0;
  std::uint32_t resume_digest = 0;
  std::uint64_t users = 0;
  std::uint64_t next_day = 0;
  std::uint64_t users_per_shard = 0;
  bool has_net = false;
  std::uint32_t net_crc = 0;
  bool has_capture = false;
  sim::FleetAccumulator accumulated;
  struct Shard {
    std::uint64_t first_user = 0;
    std::uint64_t user_count = 0;
    std::uint64_t byte_count = 0;
    std::uint32_t crc = 0;
  };
  std::vector<Shard> shards;
};

std::vector<unsigned char> encode_manifest(const Manifest& m) {
  std::vector<unsigned char> p;
  logstore::put_u32(p, kSnapshotFormatVersion);
  logstore::put_u64(p, m.seed);
  logstore::put_u32(p, m.resume_digest);
  logstore::put_u64(p, m.users);
  logstore::put_u64(p, m.next_day);
  logstore::put_u64(p, m.users_per_shard);
  logstore::put_u32(p, m.has_net ? 1u : 0u);
  logstore::put_u32(p, m.net_crc);
  logstore::put_u32(p, m.has_capture ? 1u : 0u);
  put_accumulator(p, m.accumulated);
  logstore::put_u64(p, m.shards.size());
  for (const auto& shard : m.shards) {
    logstore::put_u64(p, shard.first_user);
    logstore::put_u64(p, shard.user_count);
    logstore::put_u64(p, shard.byte_count);
    logstore::put_u32(p, shard.crc);
  }
  return p;
}

Expected<Manifest> decode_manifest(const std::vector<unsigned char>& payload) {
  Manifest m;
  std::size_t pos = 0;
  std::uint32_t format = 0, net_flag = 0, capture_flag = 0;
  if (!logstore::get_u32(payload, pos, format)) {
    return Error::corrupt("truncated snapshot manifest");
  }
  if (format != kSnapshotFormatVersion) {
    return Error::corrupt("unsupported snapshot format version");
  }
  std::uint64_t shard_count = 0;
  const bool ok = logstore::get_u64(payload, pos, m.seed) &&
                  logstore::get_u32(payload, pos, m.resume_digest) &&
                  logstore::get_u64(payload, pos, m.users) &&
                  logstore::get_u64(payload, pos, m.next_day) &&
                  logstore::get_u64(payload, pos, m.users_per_shard) &&
                  logstore::get_u32(payload, pos, net_flag) &&
                  logstore::get_u32(payload, pos, m.net_crc) &&
                  logstore::get_u32(payload, pos, capture_flag) &&
                  get_accumulator(payload, pos, m.accumulated) &&
                  logstore::get_u64(payload, pos, shard_count);
  if (!ok) return Error::corrupt("truncated snapshot manifest");
  if (shard_count > (1u << 20)) return Error::corrupt("snapshot shard count out of range");
  if (m.users > kMaxSnapshotUsers) {
    return Error::corrupt("snapshot user count out of range");
  }
  m.has_net = net_flag != 0;
  m.has_capture = capture_flag != 0;
  m.shards.resize(static_cast<std::size_t>(shard_count));
  for (auto& shard : m.shards) {
    if (!logstore::get_u64(payload, pos, shard.first_user) ||
        !logstore::get_u64(payload, pos, shard.user_count) ||
        !logstore::get_u64(payload, pos, shard.byte_count) ||
        !logstore::get_u32(payload, pos, shard.crc)) {
      return Error::corrupt("truncated snapshot shard index");
    }
  }
  if (pos != payload.size()) {
    return Error::corrupt("trailing bytes in snapshot manifest");
  }
  // The shard table must tile [0, users) contiguously, or per-user state
  // would be silently missing at resume time.
  std::uint64_t next_user = 0;
  for (const auto& shard : m.shards) {
    if (shard.first_user != next_user || shard.user_count == 0 ||
        shard.user_count > m.users) {
      return Error::corrupt("snapshot shard table does not tile the user range");
    }
    next_user += shard.user_count;  // bounded: <= 2^20 shards x users cap
  }
  if (next_user != m.users) {
    return Error::corrupt("snapshot shard table disagrees with manifest user count");
  }
  return m;
}

}  // namespace

std::uint32_t resume_digest(const sim::FleetConfig& config) {
  sim::FleetConfig undated = config;
  undated.days = 0;
  return telemetry::config_digest(undated);
}

std::string manifest_filename() { return "manifest.lxm"; }

std::string state_filename(std::size_t shard_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "state-%04zu.lxst", shard_index);
  return buf;
}

std::string net_filename() { return "net.lxnw"; }

std::vector<unsigned char> encode_user_state(std::uint64_t user,
                                             const sim::UserFleetState& state) {
  std::vector<unsigned char> p;
  logstore::put_u32(p, kUserStateRecord);
  logstore::put_u64(p, user);
  for (std::uint64_t word : state.session_rng.s) logstore::put_u64(p, word);
  logstore::put_f64(p, state.session_rng.cached_normal);
  logstore::put_u32(p, state.session_rng.has_cached_normal ? 1u : 0u);
  logstore::put_f64(p, state.params.stall_penalty);
  logstore::put_f64(p, state.params.switch_penalty);
  logstore::put_f64(p, state.params.hyb_beta);
  logstore::put_u64(p, state.adjusted_days);
  logstore::put_u32(p, state.has_lingxi ? 1u : 0u);
  if (state.has_lingxi) {
    const core::LingXi::PersistentState& lx = state.lingxi;
    put_vector(p, lx.engagement.long_term.stall_durations);
    put_vector(p, lx.engagement.long_term.stall_intervals);
    put_vector(p, lx.engagement.long_term.stall_exit_intervals);
    logstore::put_f64(p, lx.engagement.long_term.total_watch_time);
    logstore::put_u64(p, lx.engagement.long_term.total_stall_events);
    logstore::put_u64(p, lx.engagement.long_term.total_stall_exits);
    logstore::put_f64(p, lx.engagement.last_stall_at);
    logstore::put_f64(p, lx.engagement.last_stall_exit_at);
    put_vector(p, lx.bandwidth_window);
    logstore::put_u64(p, lx.stalls_since_optimization);
    logstore::put_u32(p, lx.has_optimized ? 1u : 0u);
    logstore::put_f64(p, lx.params.stall_penalty);
    logstore::put_f64(p, lx.params.switch_penalty);
    logstore::put_f64(p, lx.params.hyb_beta);
    logstore::put_u64(p, lx.stats.triggers);
    logstore::put_u64(p, lx.stats.optimizations_run);
    logstore::put_u64(p, lx.stats.pruned_preplay);
    logstore::put_u64(p, lx.stats.mc_evaluations);
    logstore::put_u64(p, lx.stats.mc_rollouts_pruned);
  }
  return p;
}

Expected<std::pair<std::uint64_t, sim::UserFleetState>> decode_user_state(
    const std::vector<unsigned char>& payload) {
  std::size_t pos = 4;  // past the type tag
  std::uint64_t user = 0;
  sim::UserFleetState state;
  std::uint32_t cached_flag = 0, lingxi_flag = 0;
  bool ok = logstore::get_u64(payload, pos, user);
  for (auto& word : state.session_rng.s) ok = ok && logstore::get_u64(payload, pos, word);
  ok = ok && logstore::get_f64(payload, pos, state.session_rng.cached_normal) &&
       logstore::get_u32(payload, pos, cached_flag) &&
       logstore::get_f64(payload, pos, state.params.stall_penalty) &&
       logstore::get_f64(payload, pos, state.params.switch_penalty) &&
       logstore::get_f64(payload, pos, state.params.hyb_beta) &&
       logstore::get_u64(payload, pos, state.adjusted_days) &&
       logstore::get_u32(payload, pos, lingxi_flag);
  if (!ok) return Error::corrupt("truncated user state record");
  state.session_rng.has_cached_normal = cached_flag != 0;
  state.has_lingxi = lingxi_flag != 0;
  if (state.has_lingxi) {
    core::LingXi::PersistentState& lx = state.lingxi;
    std::uint32_t optimized_flag = 0;
    ok = get_vector(payload, pos, lx.engagement.long_term.stall_durations) &&
         get_vector(payload, pos, lx.engagement.long_term.stall_intervals) &&
         get_vector(payload, pos, lx.engagement.long_term.stall_exit_intervals) &&
         logstore::get_f64(payload, pos, lx.engagement.long_term.total_watch_time) &&
         logstore::get_u64(payload, pos, lx.engagement.long_term.total_stall_events) &&
         logstore::get_u64(payload, pos, lx.engagement.long_term.total_stall_exits) &&
         logstore::get_f64(payload, pos, lx.engagement.last_stall_at) &&
         logstore::get_f64(payload, pos, lx.engagement.last_stall_exit_at) &&
         get_vector(payload, pos, lx.bandwidth_window) &&
         logstore::get_u64(payload, pos, lx.stalls_since_optimization) &&
         logstore::get_u32(payload, pos, optimized_flag) &&
         logstore::get_f64(payload, pos, lx.params.stall_penalty) &&
         logstore::get_f64(payload, pos, lx.params.switch_penalty) &&
         logstore::get_f64(payload, pos, lx.params.hyb_beta) &&
         logstore::get_u64(payload, pos, lx.stats.triggers) &&
         logstore::get_u64(payload, pos, lx.stats.optimizations_run) &&
         logstore::get_u64(payload, pos, lx.stats.pruned_preplay) &&
         logstore::get_u64(payload, pos, lx.stats.mc_evaluations) &&
         logstore::get_u64(payload, pos, lx.stats.mc_rollouts_pruned);
    if (!ok) return Error::corrupt("truncated user state record");
    lx.has_optimized = optimized_flag != 0;
  }
  if (pos != payload.size()) return Error::corrupt("trailing bytes in user state record");
  return std::make_pair(user, std::move(state));
}

std::vector<unsigned char> encode_obo_state(const bayesopt::OnlineBayesOpt::State& state) {
  std::vector<unsigned char> p;
  logstore::put_f64(p, state.gp.config.length_scale);
  logstore::put_f64(p, state.gp.config.signal_variance);
  logstore::put_f64(p, state.gp.config.noise_variance);
  logstore::put_u64(p, state.gp.xs.size());
  for (std::size_t i = 0; i < state.gp.xs.size(); ++i) {
    put_vector(p, state.gp.xs[i]);
    logstore::put_f64(p, state.gp.ys[i]);
  }
  logstore::put_u32(p, state.has_warm_start ? 1u : 0u);
  put_vector(p, state.warm_start);
  logstore::put_u32(p, state.warm_start_used ? 1u : 0u);
  return p;
}

Expected<bayesopt::OnlineBayesOpt::State> decode_obo_state(
    const std::vector<unsigned char>& payload) {
  bayesopt::OnlineBayesOpt::State state;
  std::size_t pos = 0;
  std::uint64_t n = 0;
  if (!logstore::get_f64(payload, pos, state.gp.config.length_scale) ||
      !logstore::get_f64(payload, pos, state.gp.config.signal_variance) ||
      !logstore::get_f64(payload, pos, state.gp.config.noise_variance) ||
      !logstore::get_u64(payload, pos, n) || n > kMaxVectorLen) {
    return Error::corrupt("truncated OBO state");
  }
  state.gp.xs.resize(static_cast<std::size_t>(n));
  state.gp.ys.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < state.gp.xs.size(); ++i) {
    if (!get_vector(payload, pos, state.gp.xs[i]) ||
        !logstore::get_f64(payload, pos, state.gp.ys[i])) {
      return Error::corrupt("truncated OBO observation");
    }
  }
  std::uint32_t warm_flag = 0, used_flag = 0;
  if (!logstore::get_u32(payload, pos, warm_flag) ||
      !get_vector(payload, pos, state.warm_start) ||
      !logstore::get_u32(payload, pos, used_flag)) {
    return Error::corrupt("truncated OBO warm start");
  }
  state.has_warm_start = warm_flag != 0;
  state.warm_start_used = used_flag != 0;
  if (pos != payload.size()) return Error::corrupt("trailing bytes in OBO state");
  return state;
}

Expected<FleetSnapshot> capture_snapshot(const sim::FleetRunner& runner,
                                         std::uint64_t seed, sim::FleetDayState state,
                                         const telemetry::ShardedCapture* capture) {
  const sim::FleetConfig& config = runner.config();
  if (state.users.size() != config.users) {
    return Error::invalid_arg("day state user count disagrees with fleet config");
  }
  if (state.next_day == 0) {
    return Error::invalid_arg("day state is not a resumable day boundary");
  }
  FleetSnapshot snapshot;
  snapshot.seed = seed;
  snapshot.resume_digest = resume_digest(config);
  snapshot.state = std::move(state);
  if (config.enable_lingxi && runner.predictor_factory() != nullptr) {
    // The fleet's predictor factory is pure configuration (every call yields
    // equivalent weights), so one serialized net covers every per-user /
    // per-shard deep copy.
    predictor::HybridExitPredictor predictor = runner.predictor_factory()();
    snapshot.net_model =
        nn::serialize_model(nn::kModelKindStallExitNet, predictor.net().weights());
  }
  if (capture != nullptr) {
    snapshot.has_capture = true;
    snapshot.capture = capture->cursors();
    if (snapshot.capture.size() != config.users) {
      return Error::invalid_arg("capture user count disagrees with fleet config");
    }
  }
  return snapshot;
}

namespace {

// renameat2 flag value (RENAME_EXCHANGE); spelled out because <fcntl.h> only
// defines it with _GNU_SOURCE and the raw syscall needs just the number.
constexpr unsigned int kRenameExchange = 1u << 1;

SaveCommitHook g_save_commit_hook = nullptr;

/// The injected-crash result: save stops right here, cleanup included, so
/// the on-disk state is exactly what a real crash at this stage leaves.
Status simulated_crash() {
  return Error::io("snapshot commit aborted by commit hook (simulated crash)");
}

bool commit_stage(SaveStage stage) {
  return g_save_commit_hook == nullptr || g_save_commit_hook(stage);
}

/// Atomically replace `dir` with the fully staged, durable `staging`
/// directory. The previous snapshot at `dir` (if any) survives every torn
/// interleaving: fresh target -> one rename; existing target -> renameat2
/// RENAME_EXCHANGE when the kernel/filesystem supports it (no window at
/// all), else rename-aside (`dir` -> `dir`.old, staging -> `dir`) whose
/// only crash window leaves the old snapshot under `.old` and the new one
/// complete under `.tmp` — both content-validated candidates for
/// find_latest_valid.
Status commit_directory(const std::string& staging, const std::string& dir) {
  std::error_code ec;
  const bool target_exists = std::filesystem::exists(dir, ec);
  if (ec) return Error::io("cannot stat snapshot directory: " + dir);
  if (!target_exists) {
    if (std::rename(staging.c_str(), dir.c_str()) != 0) {
      return Error::io("snapshot commit rename failed: " + staging + " -> " + dir);
    }
  } else {
    bool exchanged = false;
#if defined(__linux__) && defined(SYS_renameat2)
    if (::syscall(SYS_renameat2, AT_FDCWD, staging.c_str(), AT_FDCWD, dir.c_str(),
                  kRenameExchange) == 0) {
      // `staging` now holds the superseded snapshot; best-effort cleanup (a
      // leftover is a valid, older candidate that recovery simply outranks).
      exchanged = true;
      std::filesystem::remove_all(staging, ec);
    }
#endif
    if (!exchanged) {
      const std::string old = dir + ".old";
      std::filesystem::remove_all(old, ec);
      if (ec) return Error::io("cannot clear stale snapshot: " + old);
      if (std::rename(dir.c_str(), old.c_str()) != 0) {
        return Error::io("snapshot commit rename-aside failed: " + dir + " -> " + old);
      }
      if (std::rename(staging.c_str(), dir.c_str()) != 0) {
        return Error::io("snapshot commit rename failed: " + staging + " -> " + dir);
      }
      std::filesystem::remove_all(old, ec);  // best-effort; stale .old is inert
    }
  }
  // Final durability point: the parent directory entry for `dir`.
  const std::filesystem::path parent = std::filesystem::path(dir).parent_path();
  return logstore::fsync_directory(parent.empty() ? "." : parent.string());
}

}  // namespace

void set_save_commit_hook(SaveCommitHook hook) { g_save_commit_hook = hook; }

namespace {

Status stage_snapshot(const FleetSnapshot& snapshot, const std::string& dir,
                      std::size_t users_per_shard) {
  Manifest manifest;
  manifest.seed = snapshot.seed;
  manifest.resume_digest = snapshot.resume_digest;
  manifest.users = snapshot.state.users.size();
  manifest.next_day = snapshot.state.next_day;
  manifest.users_per_shard = users_per_shard;
  manifest.has_capture = snapshot.has_capture;
  manifest.accumulated = snapshot.state.accumulated;
  {
    OBS_TIMED("snapshot.save.state_us");
    if (!snapshot.net_model.empty()) {
      manifest.has_net = true;
      manifest.net_crc = crc32(snapshot.net_model.data(), snapshot.net_model.size());
      if (auto s = logstore::write_file(dir + "/" + net_filename(), snapshot.net_model);
          !s) {
        return s;
      }
    }

    const std::size_t users = snapshot.state.users.size();
    const std::size_t shard_count = (users + users_per_shard - 1) / users_per_shard;
    manifest.shards.resize(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::size_t first = s * users_per_shard;
      const std::size_t last = std::min(first + users_per_shard, users);
      std::vector<unsigned char> bytes;
      for (std::size_t u = first; u < last; ++u) {
        logstore::write_record(bytes, encode_user_state(u, snapshot.state.users[u]));
        if (snapshot.has_capture) {
          logstore::write_record(bytes, encode_capture_cursor(u, snapshot.capture[u]));
        }
      }
      auto& info = manifest.shards[s];
      info.first_user = first;
      info.user_count = last - first;
      info.byte_count = bytes.size();
      info.crc = crc32(bytes.data(), bytes.size());
      if (auto st = logstore::write_file(dir + "/" + state_filename(s), bytes); !st) {
        return st;
      }
    }
  }

  if (!commit_stage(SaveStage::kStateFilesStaged)) return simulated_crash();

  // The manifest is written LAST: a directory holding a valid manifest is
  // complete by construction, which is what lets recovery content-validate
  // `.tmp`/`.old` leftovers as first-class candidates.
  {
    OBS_TIMED("snapshot.save.manifest_us");
    std::vector<unsigned char> framed;
    logstore::write_record(framed, encode_manifest(manifest));
    if (auto s = logstore::write_file(dir + "/" + manifest_filename(), framed); !s) {
      return s;
    }
  }
  if (!commit_stage(SaveStage::kManifestStaged)) return simulated_crash();
  return {};
}

}  // namespace

Status save_snapshot(const FleetSnapshot& snapshot, const std::string& dir,
                     std::size_t users_per_shard) {
  OBS_SPAN("snapshot.save");
  OBS_TIMED("snapshot.save.total_us");
  if (users_per_shard == 0) return Error::invalid_arg("users_per_shard must be >= 1");
  if (snapshot.has_capture && snapshot.capture.size() != snapshot.state.users.size()) {
    return Error::invalid_arg("capture cursor count disagrees with user state count");
  }
  const std::string staging = dir + ".tmp";
  std::error_code ec;
  std::filesystem::remove_all(staging, ec);
  if (ec) return Error::io("cannot clear stale snapshot staging: " + staging);
  std::filesystem::create_directories(staging, ec);
  if (ec) return Error::io("cannot create snapshot staging directory: " + staging);
  if (auto s = stage_snapshot(snapshot, staging, users_per_shard); !s) return s;
  {
    OBS_TIMED("snapshot.save.durable_us");
    if (auto s = logstore::fsync_directory(staging); !s) return s;
  }
  if (!commit_stage(SaveStage::kStagingDurable)) return simulated_crash();
  {
    OBS_TIMED("snapshot.save.commit_us");
    if (auto s = commit_directory(staging, dir); !s) return s;
  }
  commit_stage(SaveStage::kCommitted);
  return {};
}

Expected<FleetSnapshot> load_snapshot(const std::string& dir) {
  OBS_SPAN("snapshot.load");
  OBS_TIMED("snapshot.load.total_us");
  auto manifest_bytes = logstore::read_file(dir + "/" + manifest_filename());
  if (!manifest_bytes) return manifest_bytes.error();
  std::size_t pos = 0;
  auto payload = logstore::read_record(*manifest_bytes, pos);
  if (!payload) return payload.error();
  if (pos != manifest_bytes->size()) {
    return Error::corrupt("trailing bytes after snapshot manifest");
  }
  auto manifest = decode_manifest(*payload);
  if (!manifest) return manifest.error();

  FleetSnapshot snapshot;
  snapshot.seed = manifest->seed;
  snapshot.resume_digest = manifest->resume_digest;
  snapshot.state.next_day = static_cast<std::size_t>(manifest->next_day);
  snapshot.state.accumulated = manifest->accumulated;
  snapshot.state.users.assign(static_cast<std::size_t>(manifest->users),
                              sim::UserFleetState{});
  snapshot.has_capture = manifest->has_capture;
  if (manifest->has_capture) {
    snapshot.capture.assign(snapshot.state.users.size(),
                            telemetry::ShardedCapture::CaptureCursor{});
  }

  if (manifest->has_net) {
    auto net = logstore::read_file(dir + "/" + net_filename());
    if (!net) return net.error();
    if (crc32(net->data(), net->size()) != manifest->net_crc) {
      return Error::corrupt("snapshot net container CRC mismatch");
    }
    // Validate the container end to end now, not at resume time inside a
    // predictor factory that has no error channel.
    auto tensors = nn::deserialize_model(nn::kModelKindStallExitNet, *net);
    if (!tensors) return tensors.error();
    snapshot.net_model = std::move(*net);
  }

  for (std::size_t s = 0; s < manifest->shards.size(); ++s) {
    const auto& info = manifest->shards[s];
    const std::string path = dir + "/" + state_filename(s);
    auto bytes = logstore::read_file(path);
    if (!bytes) return bytes.error();
    if (bytes->size() != info.byte_count ||
        crc32(bytes->data(), bytes->size()) != info.crc) {
      return Error::corrupt("snapshot state file disagrees with manifest: " + path);
    }
    std::size_t shard_pos = 0;
    for (std::uint64_t u = info.first_user; u < info.first_user + info.user_count; ++u) {
      auto record = logstore::read_record(*bytes, shard_pos);
      if (!record) return record.error();
      if (record_type(*record) != kUserStateRecord) {
        return Error::corrupt("unexpected record type in snapshot state file");
      }
      auto user_state = decode_user_state(*record);
      if (!user_state) return user_state.error();
      if (user_state->first != u) {
        return Error::corrupt("snapshot user state out of order");
      }
      snapshot.state.users[static_cast<std::size_t>(u)] = std::move(user_state->second);
      if (manifest->has_capture) {
        auto cursor_record = logstore::read_record(*bytes, shard_pos);
        if (!cursor_record) return cursor_record.error();
        if (record_type(*cursor_record) != kCaptureCursorRecord) {
          return Error::corrupt("missing capture cursor record");
        }
        auto cursor = decode_capture_cursor(*cursor_record);
        if (!cursor) return cursor.error();
        if (cursor->first != u) return Error::corrupt("capture cursor out of order");
        snapshot.capture[static_cast<std::size_t>(u)] = std::move(cursor->second);
      }
    }
    if (shard_pos != bytes->size()) {
      return Error::corrupt("trailing bytes in snapshot state file: " + path);
    }
  }
  return snapshot;
}

Status check_compatible(const FleetSnapshot& snapshot, const sim::FleetConfig& config,
                        std::uint64_t seed) {
  if (snapshot.seed != seed) return Error::invalid_arg("snapshot seed mismatch");
  if (snapshot.state.users.size() != config.users) {
    return Error::invalid_arg("snapshot user count disagrees with fleet config");
  }
  if (snapshot.resume_digest != resume_digest(config)) {
    return Error::invalid_arg("snapshot config digest mismatch");
  }
  if (snapshot.state.next_day >= config.days) {
    return Error::invalid_arg("snapshot day boundary is past the configured horizon");
  }
  return {};
}

sim::FleetRunner::PredictorFactory resume_predictor_factory(
    sim::FleetRunner::PredictorFactory base, std::vector<unsigned char> net_model) {
  if (net_model.empty() || base == nullptr) return base;
  auto tensors = nn::deserialize_model(nn::kModelKindStallExitNet, net_model);
  // load_snapshot validated the container; a hand-built blob must be valid.
  LINGXI_ASSERT(tensors.has_value());
  auto weights = std::make_shared<std::vector<nn::Tensor>>(std::move(*tensors));
  return [base = std::move(base), weights]() {
    predictor::HybridExitPredictor predictor = base();
    const bool loaded = predictor.net().load_weights(*weights);
    LINGXI_ASSERT(loaded);
    return predictor;
  };
}

Status restore_capture(telemetry::ShardedCapture& capture, const sim::FleetConfig& config,
                       const FleetSnapshot& snapshot) {
  if (!snapshot.has_capture) {
    return Error::invalid_arg("snapshot carries no capture state");
  }
  return restore_capture(capture, config, snapshot.seed, snapshot.capture);
}

Status restore_capture(telemetry::ShardedCapture& capture, const sim::FleetConfig& config,
                       std::uint64_t seed,
                       std::vector<telemetry::ShardedCapture::CaptureCursor> cursors) {
  if (cursors.size() != config.users) {
    return Error::invalid_arg("snapshot capture user count disagrees with fleet config");
  }
  capture.begin_fleet(config, seed);
  capture.restore_cursors(std::move(cursors));
  return {};
}

}  // namespace lingxi::snapshot
