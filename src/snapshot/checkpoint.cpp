#include "snapshot/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace lingxi::snapshot {
namespace {

constexpr const char kDirPrefix[] = "checkpoint-day-";

bool strip_suffix(std::string& name, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  if (name.size() < n || name.compare(name.size() - n, n, suffix) != 0) return false;
  name.resize(name.size() - n);
  return true;
}

/// Parse "checkpoint-day-NNNNNN[.tmp|.old]"; reports the day and whether the
/// name is a committed one (no crash-leftover suffix). Rejects anything else
/// so pruning and recovery never touch foreign directories.
bool parse_checkpoint_name(std::string name, std::uint64_t& day, bool& committed) {
  committed = !(strip_suffix(name, ".tmp") || strip_suffix(name, ".old"));
  const std::size_t prefix_len = std::char_traits<char>::length(kDirPrefix);
  if (name.size() <= prefix_len || name.compare(0, prefix_len, kDirPrefix) != 0) {
    return false;
  }
  day = 0;
  for (std::size_t i = prefix_len; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    day = day * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

}  // namespace

std::string checkpoint_dirname(std::uint64_t next_day) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%06llu", kDirPrefix,
                static_cast<unsigned long long>(next_day));
  return buf;
}

AutoCheckpointer::AutoCheckpointer(const sim::FleetRunner& runner, std::uint64_t seed,
                                   CheckpointPolicy policy,
                                   const telemetry::ShardedCapture* capture)
    : runner_(&runner), seed_(seed), policy_(std::move(policy)), capture_(capture) {
  if (policy_.retain == 0) policy_.retain = 1;
}

void AutoCheckpointer::arm(sim::FleetRunner& runner) {
  runner.set_checkpoint_hook(
      [this](const sim::FleetDayState& state) { on_boundary(state); },
      policy_.every_k_days);
}

void AutoCheckpointer::note_failure(Error error) {
  if (status_) status_ = std::move(error);  // first failure wins
}

void AutoCheckpointer::on_boundary(const sim::FleetDayState& state) {
  OBS_SPAN("checkpoint.commit");
  OBS_TIMED("snapshot.checkpoint.commit_us");
  obs::Registry* const reg = obs::Registry::active();
  std::error_code ec;
  std::filesystem::create_directories(policy_.root, ec);
  if (ec) {
    if (reg != nullptr) reg->add("snapshot.checkpoint.failures");
    note_failure(Error::io("cannot create checkpoint root: " + policy_.root));
    return;
  }
  // The hook only observes the boundary state; capture_snapshot wants its
  // own copy to freeze.
  auto snap = capture_snapshot(*runner_, seed_, state, capture_);
  if (!snap) {
    if (reg != nullptr) reg->add("snapshot.checkpoint.failures");
    note_failure(snap.error());
    return;
  }
  const std::string dir =
      policy_.root + "/" + checkpoint_dirname(state.next_day);
  if (auto s = save_snapshot(*snap, dir, policy_.users_per_shard); !s) {
    if (reg != nullptr) reg->add("snapshot.checkpoint.failures");
    note_failure(s.error());
    return;
  }
  if (reg != nullptr) reg->add("snapshot.checkpoint.committed");
  committed_dirs_.push_back(dir);
  ++committed_dirs_total_;
  prune();
}

void AutoCheckpointer::prune() {
  if (committed_dirs_.size() <= policy_.retain) return;
  // Cutoff: the oldest day we keep. Everything strictly older goes —
  // including `.tmp`/`.old` crash leftovers, which would otherwise pin disk
  // forever (they only matter until a newer checkpoint commits).
  const std::string& oldest_kept =
      committed_dirs_[committed_dirs_.size() - policy_.retain];
  std::uint64_t cutoff_day = 0;
  bool committed = false;
  if (!parse_checkpoint_name(
          std::filesystem::path(oldest_kept).filename().string(), cutoff_day,
          committed)) {
    return;  // defensive: never prune on an unparseable own entry
  }
  std::error_code ec;
  std::filesystem::directory_iterator it(policy_.root, ec);
  if (ec) return;  // best-effort: pruning failure is not a durability failure
  for (const auto& entry : it) {
    std::uint64_t day = 0;
    if (!parse_checkpoint_name(entry.path().filename().string(), day, committed)) {
      continue;
    }
    if (day < cutoff_day) {
      std::filesystem::remove_all(entry.path(), ec);
      if (!ec) {
        if (obs::Registry* reg = obs::Registry::active()) {
          reg->add("snapshot.checkpoint.pruned_dirs");
        }
      }
    }
  }
  committed_dirs_.erase(committed_dirs_.begin(),
                        committed_dirs_.end() - static_cast<long>(policy_.retain));
}

Expected<RecoveredCheckpoint> find_latest_valid(const std::string& root) {
  std::error_code ec;
  std::filesystem::directory_iterator it(root, ec);
  if (ec) return Error::io("cannot read checkpoint root: " + root);
  bool found = false;
  bool best_committed = false;
  std::string best_name;
  RecoveredCheckpoint best;
  for (const auto& entry : it) {
    if (!entry.is_directory(ec) || ec) {
      ec.clear();
      continue;
    }
    const std::string name = entry.path().filename().string();
    std::uint64_t day = 0;
    bool committed = false;
    if (!parse_checkpoint_name(name, day, committed)) continue;
    if (obs::Registry* reg = obs::Registry::active()) {
      reg->add("snapshot.recovery.candidates");
    }
    // The name told us where to look; the bytes decide whether it counts.
    auto snap = load_snapshot(entry.path().string());
    if (!snap) {
      if (obs::Registry* reg = obs::Registry::active()) {
        reg->add("snapshot.recovery.rejected");
      }
      continue;
    }
    const std::uint64_t next_day = snap->state.next_day;
    const bool better =
        !found || next_day > best.snapshot.state.next_day ||
        (next_day == best.snapshot.state.next_day &&
         ((committed && !best_committed) ||
          (committed == best_committed && name < best_name)));
    if (better) {
      best.snapshot = std::move(*snap);
      best.dir = entry.path().string();
      best_committed = committed;
      best_name = name;
      found = true;
    }
  }
  if (!found) {
    return Error::not_found("no valid checkpoint under: " + root);
  }
  return best;
}

}  // namespace lingxi::snapshot
