#include "stats/did.h"

#include "stats/descriptive.h"

namespace lingxi::stats {

DidResult difference_in_differences(std::span<const double> pre_diffs,
                                    std::span<const double> post_diffs) {
  const TTestResult tt = welch_t_test(post_diffs, pre_diffs);
  DidResult r;
  r.pre_gap = mean(pre_diffs);
  r.post_gap = mean(post_diffs);
  r.effect = tt.mean_diff;
  r.stderr_effect = tt.stderr_diff;
  r.t = tt.t;
  r.p_two_sided = tt.p_two_sided;
  return r;
}

}  // namespace lingxi::stats
