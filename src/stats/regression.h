// Ordinary least-squares simple linear regression.
//
// Used for the trend lines in the Fig. 14 scatter plots (stall exit rate
// vs. assigned ABR parameter).
#pragma once

#include <span>

namespace lingxi::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  double predict(double x) const noexcept { return slope * x + intercept; }
};

/// Fit y = slope*x + intercept. Requires sizes equal and >= 2.
/// A constant x series yields slope 0 / intercept mean(y).
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace lingxi::stats
