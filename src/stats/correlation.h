// Correlation coefficients.
//
// Fig. 14 of the paper reports Pearson correlations between per-user stall
// exit rates and the HYB beta parameter (range -0.23 .. -0.52).
#pragma once

#include <span>

namespace lingxi::stats {

/// Pearson product-moment correlation. Requires xs.size() == ys.size() >= 2.
/// Returns 0 when either series is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson over average ranks; handles ties).
double spearman(std::span<const double> xs, std::span<const double> ys);

}  // namespace lingxi::stats
