#include "stats/regression.h"

#include "common/assert.h"
#include "stats/descriptive.h"

namespace lingxi::stats {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LINGXI_ASSERT(xs.size() == ys.size());
  LINGXI_ASSERT(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    fit.slope = 0.0;
    fit.intercept = my;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace lingxi::stats
