// Descriptive statistics over sample vectors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lingxi::stats {

double mean(std::span<const double> xs) noexcept;
/// Unbiased sample variance; 0 for fewer than two samples.
double variance(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;
/// Standard error of the mean; 0 for fewer than two samples.
double stderr_mean(std::span<const double> xs) noexcept;
double min(std::span<const double> xs) noexcept;
double max(std::span<const double> xs) noexcept;
double sum(std::span<const double> xs) noexcept;

/// Linear-interpolation quantile, q in [0,1]. Requires non-empty input.
/// The input need not be sorted (a sorted copy is made).
double quantile(std::span<const double> xs, double q);

/// Median = quantile(0.5).
double median(std::span<const double> xs);

/// Normalize values so their mean is 1 (used for "Norm." plots in the paper).
/// Returns empty for empty input; if the mean is 0 returns the input copy.
std::vector<double> normalize_by_mean(std::span<const double> xs);

}  // namespace lingxi::stats
