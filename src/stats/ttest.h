// Welch's unequal-variance t-test.
//
// The paper reports its A/B results as "t = 3.395, p < 0.01" style
// statistics over daily difference series; this is the estimator behind
// those numbers.
#pragma once

#include <span>

namespace lingxi::stats {

struct TTestResult {
  double t = 0.0;        ///< t statistic
  double df = 0.0;       ///< Welch–Satterthwaite degrees of freedom
  double p_two_sided = 1.0;
  double mean_diff = 0.0;   ///< mean(a) - mean(b)
  double stderr_diff = 0.0; ///< standard error of the difference
};

/// Two-sample Welch t-test. Each sample needs at least two observations.
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// One-sample t-test of H0: mean(xs) == mu0. Needs at least two observations.
TTestResult one_sample_t_test(std::span<const double> xs, double mu0);

}  // namespace lingxi::stats
