#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double stderr_mean(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) noexcept {
  LINGXI_DASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) noexcept {
  LINGXI_DASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) noexcept {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double quantile(std::span<const double> xs, double q) {
  LINGXI_ASSERT(!xs.empty());
  LINGXI_ASSERT(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

std::vector<double> normalize_by_mean(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  const double m = mean(xs);
  if (m == 0.0) return out;
  for (double& x : out) x /= m;
  return out;
}

}  // namespace lingxi::stats
