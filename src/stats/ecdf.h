// Empirical CDF and fixed-bin histograms.
//
// Several paper figures are CDFs (Fig. 2 bandwidth / stall counts,
// Fig. 5(a) tolerable stall time, Fig. 8(a) daily stall counts per
// bandwidth bucket); the benches evaluate this estimator at the paper's
// x-axis points.
#pragma once

#include <span>
#include <vector>

namespace lingxi::stats {

/// Empirical cumulative distribution function of a sample.
class Ecdf {
 public:
  /// Builds from an arbitrary (unsorted) sample. Requires non-empty input.
  explicit Ecdf(std::span<const double> sample);

  /// P(X <= x) under the empirical distribution.
  double operator()(double x) const noexcept;

  /// Smallest sample value v with P(X <= v) >= q, q in (0, 1].
  double inverse(double q) const;

  std::size_t size() const noexcept { return sorted_.size(); }
  const std::vector<double>& sorted() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// samples clamp to the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const;
  std::size_t total() const noexcept { return total_; }
  /// Fraction of samples in bin i (0 when empty).
  double density(std::size_t i) const;
  double bin_center(std::size_t i) const;
  std::size_t bins() const noexcept { return counts_.size(); }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace lingxi::stats
