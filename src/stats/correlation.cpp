#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/assert.h"

namespace lingxi::stats {
namespace {

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double pearson(std::span<const double> xs, std::span<const double> ys) {
  LINGXI_ASSERT(xs.size() == ys.size());
  LINGXI_ASSERT(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  LINGXI_ASSERT(xs.size() == ys.size());
  const auto rx = average_ranks(xs);
  const auto ry = average_ranks(ys);
  return pearson(rx, ry);
}

}  // namespace lingxi::stats
