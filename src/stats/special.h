// Special functions needed by the hypothesis tests.
//
// Self-contained implementations (log-gamma via Lanczos, regularized
// incomplete beta via Lentz's continued fraction) so the statistics layer
// has no external dependency.
#pragma once

namespace lingxi::stats {

/// Natural log of the gamma function for x > 0.
double lgamma_fn(double x) noexcept;

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
double incomplete_beta(double a, double b, double x) noexcept;

/// CDF of Student's t distribution with `df` degrees of freedom.
double student_t_cdf(double t, double df) noexcept;

/// Standard normal CDF.
double normal_cdf(double z) noexcept;

}  // namespace lingxi::stats
