// Difference-in-differences estimator.
//
// The paper's §5.3 A/B methodology: 5 AA days measure the baseline gap
// between experiment and control groups, 5 AB days measure the gap under
// intervention; the treatment effect is the difference of those gaps.
#pragma once

#include <span>

#include "stats/ttest.h"

namespace lingxi::stats {

struct DidResult {
  double effect = 0.0;       ///< DiD point estimate (relative units of the input series)
  double stderr_effect = 0.0;
  double t = 0.0;
  double p_two_sided = 1.0;
  double pre_gap = 0.0;      ///< mean experiment-minus-control gap before intervention
  double post_gap = 0.0;     ///< mean gap after intervention
};

/// `pre_diffs`  — daily (experiment - control)/control gaps before intervention.
/// `post_diffs` — daily gaps after intervention.
/// Each series needs at least two days.
DidResult difference_in_differences(std::span<const double> pre_diffs,
                                    std::span<const double> post_diffs);

}  // namespace lingxi::stats
