#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::stats {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  LINGXI_ASSERT(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double q) const {
  LINGXI_ASSERT(q > 0.0 && q <= 1.0);
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  LINGXI_ASSERT(hi > lo);
  LINGXI_ASSERT(bins > 0);
}

void Histogram::add(double x) noexcept {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long long>(std::floor((x - lo_) / w));
  raw = std::clamp(raw, 0LL, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  LINGXI_ASSERT(i < counts_.size());
  return counts_[i];
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bin_count(i)) / static_cast<double>(total_);
}

double Histogram::bin_center(std::size_t i) const {
  LINGXI_ASSERT(i < counts_.size());
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

}  // namespace lingxi::stats
