#include "stats/ttest.h"

#include <cmath>

#include "common/assert.h"
#include "stats/descriptive.h"
#include "stats/special.h"

namespace lingxi::stats {

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  LINGXI_ASSERT(a.size() >= 2 && b.size() >= 2);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = variance(a) / na;
  const double vb = variance(b) / nb;
  TTestResult r;
  r.mean_diff = mean(a) - mean(b);
  r.stderr_diff = std::sqrt(va + vb);
  if (r.stderr_diff == 0.0) {
    r.t = 0.0;
    r.df = na + nb - 2.0;
    r.p_two_sided = r.mean_diff == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t = r.mean_diff / r.stderr_diff;
  const double denom = va * va / (na - 1.0) + vb * vb / (nb - 1.0);
  r.df = denom > 0.0 ? (va + vb) * (va + vb) / denom : na + nb - 2.0;
  r.p_two_sided = 2.0 * (1.0 - student_t_cdf(std::fabs(r.t), r.df));
  return r;
}

TTestResult one_sample_t_test(std::span<const double> xs, double mu0) {
  LINGXI_ASSERT(xs.size() >= 2);
  TTestResult r;
  r.mean_diff = mean(xs) - mu0;
  r.stderr_diff = stderr_mean(xs);
  r.df = static_cast<double>(xs.size() - 1);
  if (r.stderr_diff == 0.0) {
    r.t = 0.0;
    r.p_two_sided = r.mean_diff == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t = r.mean_diff / r.stderr_diff;
  r.p_two_sided = 2.0 * (1.0 - student_t_cdf(std::fabs(r.t), r.df));
  return r;
}

}  // namespace lingxi::stats
