// Dense row-major tensor (rank <= 3) for the small networks in this library:
// the exit-rate predictor (5-branch 1D-CNN, §3.3) and the Pensieve policy.
//
// Sizes are tiny (hundreds to a few thousand parameters per layer), so the
// implementation favors clarity and assert-heavy indexing over vectorized
// kernels.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.h"

namespace lingxi::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<double> data);

  static Tensor zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor vector(std::vector<double> values);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t dim(std::size_t i) const {
    LINGXI_DASSERT(i < shape_.size());
    return shape_[i];
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  double& operator[](std::size_t i) {
    LINGXI_DASSERT(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    LINGXI_DASSERT(i < data_.size());
    return data_[i];
  }

  double& at(std::size_t i, std::size_t j) {
    LINGXI_DASSERT(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  double at(std::size_t i, std::size_t j) const {
    LINGXI_DASSERT(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  double& at(std::size_t i, std::size_t j, std::size_t k) {
    LINGXI_DASSERT(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  double at(std::size_t i, std::size_t j, std::size_t k) const {
    LINGXI_DASSERT(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  void fill(double v) noexcept;
  /// Element-wise in-place add. Shapes must match.
  void add(const Tensor& other);
  /// In-place scale.
  void scale(double s) noexcept;

  bool same_shape(const Tensor& other) const noexcept { return shape_ == other.shape_; }

  /// View the same data as a flat vector (shape change only).
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<double> data_;
};

/// Concatenate rank-1 tensors into one long vector.
Tensor concat(const std::vector<Tensor>& parts);

/// Non-owning view of a batch: `rows` feature rows of width `cols`, with row
/// r starting at data + r * stride (stride >= cols). This is the batched
/// counterpart of passing one rank-1/rank-2 tensor per item: layers expose
/// forward_batch(ConstBatchView, BatchView) overloads whose per-row results
/// are bitwise identical to their scalar forward(). rows == 0 (the empty
/// batch) is valid — every batched kernel is a no-op on it.
struct ConstBatchView {
  const double* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;  ///< doubles between consecutive rows

  ConstBatchView() = default;
  ConstBatchView(const double* d, std::size_t r, std::size_t c) : ConstBatchView(d, r, c, c) {}
  ConstBatchView(const double* d, std::size_t r, std::size_t c, std::size_t s)
      : data(d), rows(r), cols(c), stride(s) {
    LINGXI_DASSERT(stride >= cols);
    LINGXI_DASSERT(rows == 0 || data != nullptr);
  }

  const double* row(std::size_t r) const {
    LINGXI_DASSERT(r < rows);
    return data + r * stride;
  }
};

/// Mutable variant of ConstBatchView.
struct BatchView {
  double* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;

  BatchView() = default;
  BatchView(double* d, std::size_t r, std::size_t c) : BatchView(d, r, c, c) {}
  BatchView(double* d, std::size_t r, std::size_t c, std::size_t s)
      : data(d), rows(r), cols(c), stride(s) {
    LINGXI_DASSERT(stride >= cols);
    LINGXI_DASSERT(rows == 0 || data != nullptr);
  }

  double* row(std::size_t r) const {
    LINGXI_DASSERT(r < rows);
    return data + r * stride;
  }

  operator ConstBatchView() const { return {data, rows, cols, stride}; }
};

}  // namespace lingxi::nn
