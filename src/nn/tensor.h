// Dense row-major tensor (rank <= 3) for the small networks in this library:
// the exit-rate predictor (5-branch 1D-CNN, §3.3) and the Pensieve policy.
//
// Sizes are tiny (hundreds to a few thousand parameters per layer), so the
// implementation favors clarity and assert-heavy indexing over vectorized
// kernels.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.h"

namespace lingxi::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<double> data);

  static Tensor zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor vector(std::vector<double> values);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t dim(std::size_t i) const {
    LINGXI_DASSERT(i < shape_.size());
    return shape_[i];
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  double& operator[](std::size_t i) {
    LINGXI_DASSERT(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    LINGXI_DASSERT(i < data_.size());
    return data_[i];
  }

  double& at(std::size_t i, std::size_t j) {
    LINGXI_DASSERT(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  double at(std::size_t i, std::size_t j) const {
    LINGXI_DASSERT(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  double& at(std::size_t i, std::size_t j, std::size_t k) {
    LINGXI_DASSERT(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  double at(std::size_t i, std::size_t j, std::size_t k) const {
    LINGXI_DASSERT(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  void fill(double v) noexcept;
  /// Element-wise in-place add. Shapes must match.
  void add(const Tensor& other);
  /// In-place scale.
  void scale(double s) noexcept;

  bool same_shape(const Tensor& other) const noexcept { return shape_ == other.shape_; }

  /// View the same data as a flat vector (shape change only).
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<double> data_;
};

/// Concatenate rank-1 tensors into one long vector.
Tensor concat(const std::vector<Tensor>& parts);

}  // namespace lingxi::nn
