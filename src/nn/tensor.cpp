#include "nn/tensor.h"

#include <numeric>

namespace lingxi::nn {
namespace {

std::size_t shape_size(const std::vector<std::size_t>& shape) {
  LINGXI_ASSERT(!shape.empty());
  std::size_t n = 1;
  for (std::size_t d : shape) {
    LINGXI_ASSERT(d > 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<double> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  LINGXI_ASSERT(shape_size(shape_) == data_.size());
}

Tensor Tensor::vector(std::vector<double> values) {
  LINGXI_ASSERT(!values.empty());
  const std::size_t n = values.size();
  return Tensor({n}, std::move(values));
}

void Tensor::fill(double v) noexcept {
  for (double& x : data_) x = v;
}

void Tensor::add(const Tensor& other) {
  LINGXI_ASSERT(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale(double s) noexcept {
  for (double& x : data_) x *= s;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  LINGXI_ASSERT(shape_size(new_shape) == data_.size());
  return Tensor(std::move(new_shape), data_);
}

Tensor concat(const std::vector<Tensor>& parts) {
  LINGXI_ASSERT(!parts.empty());
  std::size_t total = 0;
  for (const Tensor& p : parts) total += p.size();
  Tensor out({total});
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    for (std::size_t i = 0; i < p.size(); ++i) out[offset + i] = p[i];
    offset += p.size();
  }
  return out;
}

}  // namespace lingxi::nn
