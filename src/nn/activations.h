// Activation layers and softmax helpers.
#pragma once

#include "nn/layer.h"

namespace lingxi::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor last_input_;
};

/// Numerically stable softmax over a rank-1 tensor.
Tensor softmax(const Tensor& logits);

/// In-place batched ReLU over every row of the view. Bitwise identical per
/// element to ReLU::forward.
void relu_rows(BatchView x) noexcept;

/// In-place row-wise numerically stable softmax. Per-row operation order
/// matches softmax() exactly, so each row is bitwise identical to the scalar
/// path. Rows must be non-empty (cols >= 1).
void softmax_rows(BatchView x) noexcept;

}  // namespace lingxi::nn
