// Activation layers and softmax helpers.
#pragma once

#include "nn/layer.h"

namespace lingxi::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor last_input_;
};

/// Numerically stable softmax over a rank-1 tensor.
Tensor softmax(const Tensor& logits);

}  // namespace lingxi::nn
