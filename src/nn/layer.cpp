#include "nn/layer.h"

#include <cmath>

namespace lingxi::nn {

void he_init(Tensor& weights, std::size_t fan_in, Rng& rng) {
  LINGXI_ASSERT(fan_in > 0);
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = rng.uniform(-limit, limit);
}

}  // namespace lingxi::nn
