#include "nn/dense.h"

namespace lingxi::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_({out_features, in_features}),
      b_({out_features}),
      gw_({out_features, in_features}),
      gb_({out_features}) {
  he_init(w_, in_features, rng);
}

Tensor Dense::forward(const Tensor& input) {
  LINGXI_ASSERT(input.rank() == 1 && input.dim(0) == in_);
  last_input_ = input;
  Tensor out({out_});
  for (std::size_t o = 0; o < out_; ++o) {
    double acc = b_[o];
    const double* wrow = w_.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) acc += wrow[i] * input[i];
    out[o] = acc;
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  LINGXI_ASSERT(grad_output.rank() == 1 && grad_output.dim(0) == out_);
  LINGXI_ASSERT(last_input_.size() == in_);
  Tensor grad_in({in_});
  for (std::size_t o = 0; o < out_; ++o) {
    const double go = grad_output[o];
    gb_[o] += go;
    double* gwrow = gw_.data() + o * in_;
    const double* wrow = w_.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) {
      gwrow[i] += go * last_input_[i];
      grad_in[i] += go * wrow[i];
    }
  }
  return grad_in;
}

}  // namespace lingxi::nn
