#include "nn/dense.h"

#include <algorithm>

namespace lingxi::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_({out_features, in_features}),
      b_({out_features}),
      gw_({out_features, in_features}),
      gb_({out_features}) {
  he_init(w_, in_features, rng);
}

Tensor Dense::forward(const Tensor& input) {
  LINGXI_ASSERT(input.rank() == 1 && input.dim(0) == in_);
  last_input_ = input;
  Tensor out({out_});
  for (std::size_t o = 0; o < out_; ++o) {
    double acc = b_[o];
    const double* wrow = w_.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) acc += wrow[i] * input[i];
    out[o] = acc;
  }
  return out;
}

namespace {

// One block of BN batch rows against the whole weight matrix. BN is a
// compile-time constant so the per-weight inner loop fully unrolls into BN
// independent fused-multiply chains — a runtime-bounded inner loop here
// costs ~3x (measured) because it defeats unrolling. Each chain accumulates
// in the same order as the scalar forward(), preserving bitwise parity.
template <std::size_t BN>
void dense_block(const double* w, const Tensor& bias, std::size_t in_features,
                 std::size_t out_features, const double* const* rows, double* const* dst) {
  for (std::size_t o = 0; o < out_features; ++o) {
    const double* wrow = w + o * in_features;
    double acc[BN];
    for (std::size_t j = 0; j < BN; ++j) acc[j] = bias[o];
    for (std::size_t i = 0; i < in_features; ++i) {
      const double wi = wrow[i];
      for (std::size_t j = 0; j < BN; ++j) acc[j] += wi * rows[j][i];
    }
    for (std::size_t j = 0; j < BN; ++j) dst[j][o] = acc[j];
  }
}

}  // namespace

void Dense::forward_batch(ConstBatchView in, BatchView out) const {
  LINGXI_ASSERT(in.rows == out.rows);
  LINGXI_ASSERT(in.cols == in_ && out.cols == out_);
  constexpr std::size_t kBlock = 8;
  std::size_t b0 = 0;
  while (b0 < in.rows) {
    const std::size_t bn = std::min(kBlock, in.rows - b0);
    const double* rows[kBlock];
    double* dst[kBlock];
    for (std::size_t j = 0; j < bn; ++j) {
      rows[j] = in.row(b0 + j);
      dst[j] = out.row(b0 + j);
    }
    switch (bn) {
      case 1: dense_block<1>(w_.data(), b_, in_, out_, rows, dst); break;
      case 2: dense_block<2>(w_.data(), b_, in_, out_, rows, dst); break;
      case 3: dense_block<3>(w_.data(), b_, in_, out_, rows, dst); break;
      case 4: dense_block<4>(w_.data(), b_, in_, out_, rows, dst); break;
      case 5: dense_block<5>(w_.data(), b_, in_, out_, rows, dst); break;
      case 6: dense_block<6>(w_.data(), b_, in_, out_, rows, dst); break;
      case 7: dense_block<7>(w_.data(), b_, in_, out_, rows, dst); break;
      default: dense_block<8>(w_.data(), b_, in_, out_, rows, dst); break;
    }
    b0 += bn;
  }
}

Tensor Dense::backward(const Tensor& grad_output) {
  LINGXI_ASSERT(grad_output.rank() == 1 && grad_output.dim(0) == out_);
  LINGXI_ASSERT(last_input_.size() == in_);
  Tensor grad_in({in_});
  for (std::size_t o = 0; o < out_; ++o) {
    const double go = grad_output[o];
    gb_[o] += go;
    double* gwrow = gw_.data() + o * in_;
    const double* wrow = w_.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) {
      gwrow[i] += go * last_input_[i];
      grad_in[i] += go * wrow[i];
    }
  }
  return grad_in;
}

}  // namespace lingxi::nn
