#include "nn/dense.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__GNUC__) && !defined(LINGXI_NO_DENSE_SIMD)
#define LINGXI_DENSE_SIMD 1
#if defined(__x86_64__)
#define LINGXI_DENSE_X86 1
#include <immintrin.h>
#endif
#endif

namespace lingxi::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_({out_features, in_features}),
      b_({out_features}),
      gw_({out_features, in_features}),
      gb_({out_features}) {
  he_init(w_, in_features, rng);
}

Tensor Dense::forward(const Tensor& input) {
  LINGXI_ASSERT(input.rank() == 1 && input.dim(0) == in_);
  last_input_ = input;
  Tensor out({out_});
  for (std::size_t o = 0; o < out_; ++o) {
    double acc = b_[o];
    const double* wrow = w_.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) acc += wrow[i] * input[i];
    out[o] = acc;
  }
  return out;
}

namespace {

// One block of BN batch rows against the whole weight matrix. BN is a
// compile-time constant so the per-weight inner loop fully unrolls into BN
// independent fused-multiply chains — a runtime-bounded inner loop here
// costs ~3x (measured) because it defeats unrolling. Each chain accumulates
// in the same order as the scalar forward(), preserving bitwise parity.
template <std::size_t BN>
void dense_block(const double* w, const Tensor& bias, std::size_t in_features,
                 std::size_t out_features, const double* const* rows, double* const* dst) {
  for (std::size_t o = 0; o < out_features; ++o) {
    const double* wrow = w + o * in_features;
    double acc[BN];
    for (std::size_t j = 0; j < BN; ++j) acc[j] = bias[o];
    for (std::size_t i = 0; i < in_features; ++i) {
      const double wi = wrow[i];
      for (std::size_t j = 0; j < BN; ++j) acc[j] += wi * rows[j][i];
    }
    for (std::size_t j = 0; j < BN; ++j) dst[j][o] = acc[j];
  }
}

#ifdef LINGXI_DENSE_SIMD
// Explicitly vectorized full block: SIMD lanes run ACROSS batch rows, never
// along the reduction, so each lane performs exactly the scalar kernel's
// accumulation sequence for its row — same adds, same order, bitwise parity
// with forward() by construction (reduction-order vectorization would
// reassociate and drift). The 8 rows are first packed into an interleaved
// [in_features][8] panel so every step loads four contiguous 2-lane vectors
// instead of gathering from 8 strided row pointers; the pack is a pure copy
// (no rounding) amortized over all out_features weight rows. The vector is
// the baseline 16-byte width — wider generic vectors get split into slow
// stack-spilling sequences on pre-AVX codegen (measured ~5x slower), while
// the native width runs ~1.6x faster than the unrolled scalar block. The
// fp-contraction decision is made under the same flags as the scalar path,
// keeping lane and scalar math identical.
typedef double v2df __attribute__((vector_size(16)));

void dense_block8_simd(const double* w, const Tensor& bias, std::size_t in_features,
                       std::size_t out_features, const double* panel,
                       double* const* dst) {
  for (std::size_t o = 0; o < out_features; ++o) {
    const double* wrow = w + o * in_features;
    const double b = bias[o];
    v2df acc0 = {b, b};
    v2df acc1 = {b, b};
    v2df acc2 = {b, b};
    v2df acc3 = {b, b};
    for (std::size_t i = 0; i < in_features; ++i) {
      const double wi = wrow[i];
      const v2df wv = {wi, wi};
      const double* p = panel + 8 * i;
      v2df r0, r1, r2, r3;
      __builtin_memcpy(&r0, p, sizeof r0);
      __builtin_memcpy(&r1, p + 2, sizeof r1);
      __builtin_memcpy(&r2, p + 4, sizeof r2);
      __builtin_memcpy(&r3, p + 6, sizeof r3);
      acc0 += wv * r0;
      acc1 += wv * r1;
      acc2 += wv * r2;
      acc3 += wv * r3;
    }
    dst[0][o] = acc0[0];
    dst[1][o] = acc0[1];
    dst[2][o] = acc1[0];
    dst[3][o] = acc1[1];
    dst[4][o] = acc2[0];
    dst[5][o] = acc2[1];
    dst[6][o] = acc3[0];
    dst[7][o] = acc3[1];
  }
}
#endif  // LINGXI_DENSE_SIMD

#ifdef LINGXI_DENSE_X86
// Wider per-ISA variants of the panel kernel, runtime-dispatched (the build
// stays baseline x86-64; the target attribute lets each function use its
// ISA). Same contract as dense_block8_simd: lanes across rows, each lane the
// exact scalar accumulation sequence. Two hazards are handled explicitly:
//  * fp contraction — this file is compiled with -ffp-contract=off, so the
//    mul-then-add below can never fuse into an FMA (AVX-512F brings FMA with
//    it; a fused step skips the intermediate rounding the scalar path takes
//    and would break bitwise parity);
//  * partial blocks — the panel is padded with zero lanes up to 8 rows, the
//    padded lanes compute bias + 0*w garbage-free, and only the first `bn`
//    lanes are stored. That lets blocks of 2..7 rows ride the wide kernels,
//    which the scalar path serviced one unrolled chain per row.
__attribute__((target("avx2"))) void dense_panel_avx2(
    const double* w, const Tensor& bias, std::size_t in_features,
    std::size_t out_features, const double* panel, std::size_t bn,
    double* const* dst) {
  for (std::size_t o = 0; o < out_features; ++o) {
    const double* wrow = w + o * in_features;
    const __m256d init = _mm256_set1_pd(bias[o]);
    __m256d acc0 = init;
    __m256d acc1 = init;
    for (std::size_t i = 0; i < in_features; ++i) {
      const __m256d wv = _mm256_set1_pd(wrow[i]);
      const double* p = panel + 8 * i;
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(wv, _mm256_loadu_pd(p)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(wv, _mm256_loadu_pd(p + 4)));
    }
    double lanes[8];
    _mm256_storeu_pd(lanes, acc0);
    _mm256_storeu_pd(lanes + 4, acc1);
    for (std::size_t j = 0; j < bn; ++j) dst[j][o] = lanes[j];
  }
}

__attribute__((target("avx512f"))) void dense_panel_avx512(
    const double* w, const Tensor& bias, std::size_t in_features,
    std::size_t out_features, const double* panel, std::size_t bn,
    double* const* dst) {
  for (std::size_t o = 0; o < out_features; ++o) {
    const double* wrow = w + o * in_features;
    __m512d acc = _mm512_set1_pd(bias[o]);
    for (std::size_t i = 0; i < in_features; ++i) {
      const __m512d wv = _mm512_set1_pd(wrow[i]);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(wv, _mm512_loadu_pd(panel + 8 * i)));
    }
    double lanes[8];
    _mm512_storeu_pd(lanes, acc);
    for (std::size_t j = 0; j < bn; ++j) dst[j][o] = lanes[j];
  }
}
#endif  // LINGXI_DENSE_X86

// Active ISA: -1 = undecided (read LINGXI_DENSE_ISA on first use).
std::atomic<int> g_dense_isa{-1};

DenseIsa clamp_to_supported(DenseIsa want) noexcept {
  int v = static_cast<int>(want);
  while (v > 0 && !dense_isa_supported(static_cast<DenseIsa>(v))) --v;
  return static_cast<DenseIsa>(v);
}

}  // namespace

const char* dense_isa_name(DenseIsa isa) noexcept {
  switch (isa) {
    case DenseIsa::kScalar: return "scalar";
    case DenseIsa::kSse2: return "sse2";
    case DenseIsa::kAvx2: return "avx2";
    case DenseIsa::kAvx512: return "avx512";
  }
  return "unknown";
}

bool dense_isa_supported(DenseIsa isa) noexcept {
  switch (isa) {
    case DenseIsa::kScalar:
      return true;
    case DenseIsa::kSse2:
#ifdef LINGXI_DENSE_SIMD
      return true;
#else
      return false;
#endif
    case DenseIsa::kAvx2:
#ifdef LINGXI_DENSE_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case DenseIsa::kAvx512:
#ifdef LINGXI_DENSE_X86
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

DenseIsa dense_isa() noexcept {
  int v = g_dense_isa.load(std::memory_order_relaxed);
  if (v < 0) {
    // AVX2 by default, not AVX-512: 512-bit ops trigger frequency licensing /
    // port splitting on many server parts, and the zmm variant measures
    // ~30% slower than the ymm one here (bench_micro per-ISA sections).
    // LINGXI_DENSE_ISA=avx512 opts in where the hardware likes it.
    DenseIsa want = DenseIsa::kAvx2;
    if (const char* e = std::getenv("LINGXI_DENSE_ISA"); e != nullptr && *e != '\0') {
      if (std::strcmp(e, "scalar") == 0) want = DenseIsa::kScalar;
      else if (std::strcmp(e, "sse2") == 0) want = DenseIsa::kSse2;
      else if (std::strcmp(e, "avx2") == 0) want = DenseIsa::kAvx2;
      else if (std::strcmp(e, "avx512") == 0) want = DenseIsa::kAvx512;
      // Unrecognized values fall through to the widest supported ISA.
    }
    v = static_cast<int>(clamp_to_supported(want));
    g_dense_isa.store(v, std::memory_order_relaxed);
  }
  return static_cast<DenseIsa>(v);
}

DenseIsa set_dense_isa_for_testing(DenseIsa isa) noexcept {
  const DenseIsa got = clamp_to_supported(isa);
  g_dense_isa.store(static_cast<int>(got), std::memory_order_relaxed);
  return got;
}

void Dense::forward_batch(ConstBatchView in, BatchView out) const {
  LINGXI_ASSERT(in.rows == out.rows);
  LINGXI_ASSERT(in.cols == in_ && out.cols == out_);
  constexpr std::size_t kBlock = 8;
  [[maybe_unused]] const DenseIsa isa = dense_isa();
#ifdef LINGXI_DENSE_SIMD
  // Interleaved row panel for the vector kernels, reused across blocks (and
  // calls) so a lockstep Monte Carlo run allocates it once per thread.
  static thread_local std::vector<double> panel;
  panel.resize(kBlock * in_);
#endif
  std::size_t b0 = 0;
  while (b0 < in.rows) {
    const std::size_t bn = std::min(kBlock, in.rows - b0);
    const double* rows[kBlock];
    double* dst[kBlock];
    for (std::size_t j = 0; j < bn; ++j) {
      rows[j] = in.row(b0 + j);
      dst[j] = out.row(b0 + j);
    }
#ifdef LINGXI_DENSE_X86
    // The wide kernels take any block of >= 2 rows (zero-padded lanes);
    // single rows stay on the scalar chain, where the pack cost cannot be
    // amortized on small weight matrices like the 64x2 head.
    if (isa >= DenseIsa::kAvx2 && bn >= 2) {
      for (std::size_t i = 0; i < in_; ++i) {
        double* p = panel.data() + 8 * i;
        std::size_t j = 0;
        for (; j < bn; ++j) p[j] = rows[j][i];
        for (; j < kBlock; ++j) p[j] = 0.0;
      }
      if (isa == DenseIsa::kAvx512) {
        dense_panel_avx512(w_.data(), b_, in_, out_, panel.data(), bn, dst);
      } else {
        dense_panel_avx2(w_.data(), b_, in_, out_, panel.data(), bn, dst);
      }
      b0 += bn;
      continue;
    }
#endif
    switch (bn) {
      case 1: dense_block<1>(w_.data(), b_, in_, out_, rows, dst); break;
      case 2: dense_block<2>(w_.data(), b_, in_, out_, rows, dst); break;
      case 3: dense_block<3>(w_.data(), b_, in_, out_, rows, dst); break;
      case 4: dense_block<4>(w_.data(), b_, in_, out_, rows, dst); break;
      case 5: dense_block<5>(w_.data(), b_, in_, out_, rows, dst); break;
      case 6: dense_block<6>(w_.data(), b_, in_, out_, rows, dst); break;
      case 7: dense_block<7>(w_.data(), b_, in_, out_, rows, dst); break;
      default:
#ifdef LINGXI_DENSE_SIMD
        if (isa >= DenseIsa::kSse2) {
          for (std::size_t i = 0; i < in_; ++i) {
            for (std::size_t j = 0; j < kBlock; ++j) panel[8 * i + j] = rows[j][i];
          }
          dense_block8_simd(w_.data(), b_, in_, out_, panel.data(), dst);
          break;
        }
#endif
        dense_block<8>(w_.data(), b_, in_, out_, rows, dst);
        break;
    }
    b0 += bn;
  }
}

Tensor Dense::backward(const Tensor& grad_output) {
  LINGXI_ASSERT(grad_output.rank() == 1 && grad_output.dim(0) == out_);
  LINGXI_ASSERT(last_input_.size() == in_);
  Tensor grad_in({in_});
  for (std::size_t o = 0; o < out_; ++o) {
    const double go = grad_output[o];
    gb_[o] += go;
    double* gwrow = gw_.data() + o * in_;
    const double* wrow = w_.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) {
      gwrow[i] += go * last_input_[i];
      grad_in[i] += go * wrow[i];
    }
  }
  return grad_in;
}

}  // namespace lingxi::nn
