// Softmax cross-entropy (Eq. 5 of the paper) and policy-gradient helpers.
#pragma once

#include <cstddef>

#include "nn/tensor.h"

namespace lingxi::nn {

/// Cross-entropy of softmax(logits) against a one-hot label.
/// Returns the loss; `grad_logits` (same shape as logits) receives
/// d loss / d logits = softmax(logits) - onehot(label).
double softmax_cross_entropy(const Tensor& logits, std::size_t label, Tensor& grad_logits);

/// REINFORCE gradient for one step: d(-log pi(a)) * advantage / d logits
/// = (softmax(logits) - onehot(action)) * advantage.
Tensor policy_gradient(const Tensor& logits, std::size_t action, double advantage);

}  // namespace lingxi::nn
