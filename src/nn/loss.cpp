#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "nn/activations.h"

namespace lingxi::nn {

double softmax_cross_entropy(const Tensor& logits, std::size_t label, Tensor& grad_logits) {
  LINGXI_ASSERT(logits.rank() == 1);
  LINGXI_ASSERT(label < logits.size());
  const Tensor probs = softmax(logits);
  grad_logits = probs;
  grad_logits[label] -= 1.0;
  // Clamp to avoid -inf on a (numerically) zero probability.
  return -std::log(std::max(probs[label], 1e-12));
}

Tensor policy_gradient(const Tensor& logits, std::size_t action, double advantage) {
  LINGXI_ASSERT(logits.rank() == 1);
  LINGXI_ASSERT(action < logits.size());
  Tensor grad = softmax(logits);
  grad[action] -= 1.0;
  grad.scale(advantage);
  return grad;
}

}  // namespace lingxi::nn
