// 1D convolution over [channels, length] inputs, stride 1, valid padding.
// This is the feature extractor of the paper's exit-rate predictor: each of
// the five input dimensions runs through a Conv1D(1 -> 64, kernel 4).
#pragma once

#include "nn/layer.h"

namespace lingxi::nn {

class Conv1D final : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel, Rng& rng);

  /// input: [in_channels, L] with L >= kernel; output: [out_channels, L-K+1].
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Batched inference: each input row holds one [in_channels, L] input
  /// flattened row-major (L = in.cols / in_channels), each output row the
  /// matching [out_channels, L-K+1] feature map. The accumulation order per
  /// output element matches forward() exactly, so every row is bitwise
  /// identical to the scalar path. Inference only (no backward caches).
  void forward_batch(ConstBatchView in, BatchView out) const;

  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&gw_, &gb_}; }

  std::size_t in_channels() const noexcept { return in_ch_; }
  std::size_t out_channels() const noexcept { return out_ch_; }
  std::size_t kernel() const noexcept { return kernel_; }

  /// Const parameter access for checkpointing (serialize.h).
  const Tensor& weight() const noexcept { return w_; }
  const Tensor& bias() const noexcept { return b_; }

 private:
  std::size_t in_ch_, out_ch_, kernel_;
  Tensor w_, b_;   // [out_ch, in_ch, K], [out_ch]
  Tensor gw_, gb_;
  Tensor last_input_;
};

}  // namespace lingxi::nn
