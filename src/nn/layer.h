// Layer interface: forward caches what backward needs; backward accumulates
// parameter gradients (so minibatch training is gradient accumulation +
// one optimizer step) and returns the gradient w.r.t. the layer input.
#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace lingxi::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters and their accumulated gradients, index-aligned.
  virtual std::vector<Tensor*> parameters() { return {}; }
  virtual std::vector<Tensor*> gradients() { return {}; }

  void zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0);
  }
};

/// He-uniform initialization for ReLU networks.
void he_init(Tensor& weights, std::size_t fan_in, Rng& rng);

}  // namespace lingxi::nn
