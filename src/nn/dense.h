// Fully connected layer: y = W x + b.
#pragma once

#include "nn/layer.h"

namespace lingxi::nn {

class Dense final : public Layer {
 public:
  /// Weights He-initialized from `rng`, biases zero.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&gw_, &gb_}; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_, out_;
  Tensor w_, b_;    // [out, in], [out]
  Tensor gw_, gb_;
  Tensor last_input_;
};

}  // namespace lingxi::nn
