// Fully connected layer: y = W x + b.
#pragma once

#include "nn/layer.h"

namespace lingxi::nn {

class Dense final : public Layer {
 public:
  /// Weights He-initialized from `rng`, biases zero.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Batched inference: out.row(b) = W in.row(b) + b for every row. Blocked
  /// over batch rows so each weight row is streamed once per block instead of
  /// once per item (the 64x1600 fc1 weight matrix of the stall-exit net does
  /// not fit in L1/L2, so weight traffic dominates the scalar path). The
  /// per-output accumulation order matches forward() exactly, making each
  /// output row bitwise identical to the scalar path. Inference only: does
  /// not touch the backward() caches, safe on a const layer.
  void forward_batch(ConstBatchView in, BatchView out) const;

  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&gw_, &gb_}; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

  /// Const parameter access for checkpointing (serialize.h).
  const Tensor& weight() const noexcept { return w_; }
  const Tensor& bias() const noexcept { return b_; }

 private:
  std::size_t in_, out_;
  Tensor w_, b_;    // [out, in], [out]
  Tensor gw_, gb_;
  Tensor last_input_;
};

}  // namespace lingxi::nn
