// Fully connected layer: y = W x + b.
#pragma once

#include "nn/layer.h"

namespace lingxi::nn {

/// Instruction set the batched dense kernel runs on. Every variant keeps
/// SIMD lanes ACROSS batch rows (never along the reduction), so all four
/// produce bitwise-identical outputs — pinned by the forced-ISA parity
/// tests. Ordered narrow to wide so clamping to hardware support is a min().
enum class DenseIsa {
  kScalar = 0,  ///< unrolled scalar blocks only
  kSse2 = 1,    ///< 16-byte generic vectors (the PR4 kernel), full blocks only
  kAvx2 = 2,    ///< 4-lane ymm panel, partial blocks >= 2 rows ride it too
  kAvx512 = 3,  ///< 8-lane zmm panel, partial blocks >= 2 rows ride it too
};

/// Name for logs / env parsing: "scalar", "sse2", "avx2", "avx512".
const char* dense_isa_name(DenseIsa isa) noexcept;

/// True when this build + CPU can run `isa`.
bool dense_isa_supported(DenseIsa isa) noexcept;

/// The ISA forward_batch currently dispatches to: AVX2 where supported (the
/// 512-bit variant downclocks on many server parts and measures slower, so
/// it is opt-in), unless LINGXI_DENSE_ISA (scalar|sse2|avx2|avx512, clamped
/// to hardware support) or set_dense_isa_for_testing() overrode it.
DenseIsa dense_isa() noexcept;

/// In-process override for tests and benches (the env var is only read
/// once). Clamped to dense_isa_supported(); returns the ISA actually set.
DenseIsa set_dense_isa_for_testing(DenseIsa isa) noexcept;

class Dense final : public Layer {
 public:
  /// Weights He-initialized from `rng`, biases zero.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Batched inference: out.row(b) = W in.row(b) + b for every row. Blocked
  /// over batch rows so each weight row is streamed once per block instead of
  /// once per item (the 64x1600 fc1 weight matrix of the stall-exit net does
  /// not fit in L1/L2, so weight traffic dominates the scalar path). The
  /// per-output accumulation order matches forward() exactly, making each
  /// output row bitwise identical to the scalar path. Inference only: does
  /// not touch the backward() caches, safe on a const layer.
  void forward_batch(ConstBatchView in, BatchView out) const;

  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&gw_, &gb_}; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

  /// Const parameter access for checkpointing (serialize.h).
  const Tensor& weight() const noexcept { return w_; }
  const Tensor& bias() const noexcept { return b_; }

 private:
  std::size_t in_, out_;
  Tensor w_, b_;    // [out, in], [out]
  Tensor gw_, gb_;
  Tensor last_input_;
};

}  // namespace lingxi::nn
