#include "nn/conv1d.h"

namespace lingxi::nn {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      w_({out_channels, in_channels, kernel}),
      b_({out_channels}),
      gw_({out_channels, in_channels, kernel}),
      gb_({out_channels}) {
  LINGXI_ASSERT(kernel_ > 0);
  he_init(w_, in_channels * kernel, rng);
}

Tensor Conv1D::forward(const Tensor& input) {
  LINGXI_ASSERT(input.rank() == 2 && input.dim(0) == in_ch_);
  const std::size_t len = input.dim(1);
  LINGXI_ASSERT(len >= kernel_);
  last_input_ = input;
  const std::size_t out_len = len - kernel_ + 1;
  Tensor out({out_ch_, out_len});
  for (std::size_t oc = 0; oc < out_ch_; ++oc) {
    for (std::size_t t = 0; t < out_len; ++t) {
      double acc = b_[oc];
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        for (std::size_t k = 0; k < kernel_; ++k) {
          acc += w_.at(oc, ic, k) * input.at(ic, t + k);
        }
      }
      out.at(oc, t) = acc;
    }
  }
  return out;
}

void Conv1D::forward_batch(ConstBatchView in, BatchView out) const {
  LINGXI_ASSERT(in.rows == out.rows);
  LINGXI_ASSERT(in_ch_ > 0 && in.cols % in_ch_ == 0);
  const std::size_t len = in.cols / in_ch_;
  LINGXI_ASSERT(len >= kernel_);
  const std::size_t out_len = len - kernel_ + 1;
  LINGXI_ASSERT(out.cols == out_ch_ * out_len);
  for (std::size_t b = 0; b < in.rows; ++b) {
    const double* src = in.row(b);
    double* dst = out.row(b);
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const double* wbase = w_.data() + oc * in_ch_ * kernel_;
      const double bias = b_[oc];
      for (std::size_t t = 0; t < out_len; ++t) {
        double acc = bias;
        for (std::size_t ic = 0; ic < in_ch_; ++ic) {
          const double* wk = wbase + ic * kernel_;
          const double* xk = src + ic * len + t;
          for (std::size_t k = 0; k < kernel_; ++k) acc += wk[k] * xk[k];
        }
        dst[oc * out_len + t] = acc;
      }
    }
  }
}

Tensor Conv1D::backward(const Tensor& grad_output) {
  const std::size_t len = last_input_.dim(1);
  const std::size_t out_len = len - kernel_ + 1;
  LINGXI_ASSERT(grad_output.rank() == 2 && grad_output.dim(0) == out_ch_ &&
                grad_output.dim(1) == out_len);
  Tensor grad_in({in_ch_, len});
  for (std::size_t oc = 0; oc < out_ch_; ++oc) {
    for (std::size_t t = 0; t < out_len; ++t) {
      const double go = grad_output.at(oc, t);
      gb_[oc] += go;
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        for (std::size_t k = 0; k < kernel_; ++k) {
          gw_.at(oc, ic, k) += go * last_input_.at(ic, t + k);
          grad_in.at(ic, t + k) += go * w_.at(oc, ic, k);
        }
      }
    }
  }
  return grad_in;
}

}  // namespace lingxi::nn
