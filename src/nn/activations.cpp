#include "nn/activations.h"

#include <algorithm>
#include <cmath>

namespace lingxi::nn {

Tensor ReLU::forward(const Tensor& input) {
  last_input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0, out[i]);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  LINGXI_ASSERT(grad_output.same_shape(last_input_));
  Tensor grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (last_input_[i] <= 0.0) grad_in[i] = 0.0;
  }
  return grad_in;
}

Tensor softmax(const Tensor& logits) {
  LINGXI_ASSERT(logits.rank() == 1);
  Tensor out = logits;
  double mx = out[0];
  for (std::size_t i = 1; i < out.size(); ++i) mx = std::max(mx, out[i]);
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp(out[i] - mx);
    sum += out[i];
  }
  for (std::size_t i = 0; i < out.size(); ++i) out[i] /= sum;
  return out;
}

void relu_rows(BatchView x) noexcept {
  for (std::size_t r = 0; r < x.rows; ++r) {
    double* row = x.row(r);
    for (std::size_t i = 0; i < x.cols; ++i) row[i] = std::max(0.0, row[i]);
  }
}

void softmax_rows(BatchView x) noexcept {
  LINGXI_DASSERT(x.rows == 0 || x.cols >= 1);
  for (std::size_t r = 0; r < x.rows; ++r) {
    double* row = x.row(r);
    double mx = row[0];
    for (std::size_t i = 1; i < x.cols; ++i) mx = std::max(mx, row[i]);
    double sum = 0.0;
    for (std::size_t i = 0; i < x.cols; ++i) {
      row[i] = std::exp(row[i] - mx);
      sum += row[i];
    }
    for (std::size_t i = 0; i < x.cols; ++i) row[i] /= sum;
  }
}

}  // namespace lingxi::nn
