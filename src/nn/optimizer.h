// Optimizers operating on (parameter, gradient) tensor pairs gathered from
// layers. Gradients are accumulated by Layer::backward; `step()` applies the
// update and the caller zeroes gradients between minibatches.
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace lingxi::nn {

class Optimizer {
 public:
  Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads);
  virtual ~Optimizer() = default;
  virtual void step() = 0;

 protected:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Tensor*> params, std::vector<Tensor*> grads, double lr);
  void step() override;

 private:
  double lr_;
};

class Adam final : public Optimizer {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
  };
  Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads);  // default config
  Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads, Config config);
  void step() override;

 private:
  Config config_;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

/// Convenience: collect parameters/gradients from several layers.
struct ParamSet {
  std::vector<Tensor*> params;
  std::vector<Tensor*> grads;

  template <typename LayerT>
  void add(LayerT& layer) {
    for (Tensor* p : layer.parameters()) params.push_back(p);
    for (Tensor* g : layer.gradients()) grads.push_back(g);
  }

  void zero_grad() {
    for (Tensor* g : grads) g->fill(0.0);
  }
};

}  // namespace lingxi::nn
