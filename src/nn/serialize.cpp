#include "nn/serialize.h"

#include <cstring>
#include <fstream>

#include "common/crc32.h"

// GCC 12's stringop-overflow/overread analysis misfires on the inlined
// std::vector growth paths in this file at -O2 (GCC PR 105329 and friends);
// the diagnostics point into libstdc++, not user code. Scoped here so the
// rest of the tree keeps the real diagnostics under -Werror.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Wstringop-overread"
#endif

namespace lingxi::nn {
namespace {

constexpr unsigned char kMagic[4] = {'L', 'X', 'N', 'N'};
constexpr unsigned char kContainerMagic[4] = {'L', 'X', 'N', 'C'};
constexpr std::uint32_t kVersion = kTensorBlobVersion;

template <typename T>
void append(std::vector<unsigned char>& out, const T& v) {
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &v, sizeof(T));
}

template <typename T>
bool read(const std::vector<unsigned char>& in, std::size_t& pos, T& v) {
  if (pos + sizeof(T) > in.size()) return false;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

std::vector<unsigned char> serialize_tensors(const std::vector<const Tensor*>& tensors) {
  std::vector<unsigned char> out;
  // Byte-wise append: GCC 12 misdiagnoses a 4-byte range insert here as a
  // stringop-overflow at -O2.
  for (unsigned char c : kMagic) out.push_back(c);
  append(out, kVersion);
  append(out, static_cast<std::uint32_t>(tensors.size()));
  for (const Tensor* t : tensors) {
    append(out, static_cast<std::uint32_t>(t->rank()));
    for (std::size_t d = 0; d < t->rank(); ++d) {
      append(out, static_cast<std::uint64_t>(t->dim(d)));
    }
    for (std::size_t i = 0; i < t->size(); ++i) append(out, (*t)[i]);
  }
  const std::uint32_t crc = crc32(out.data() + 4, out.size() - 4);
  append(out, crc);
  return out;
}

Expected<std::vector<Tensor>> deserialize_tensors(const std::vector<unsigned char>& bytes) {
  if (bytes.size() < 4 + sizeof(std::uint32_t) * 2 + sizeof(std::uint32_t)) {
    return Error::corrupt("tensor blob too small");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Error::corrupt("bad magic in tensor blob");
  }
  // Verify trailing CRC over everything between magic and CRC.
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(std::uint32_t),
              sizeof(std::uint32_t));
  const std::uint32_t computed =
      crc32(bytes.data() + 4, bytes.size() - 4 - sizeof(std::uint32_t));
  if (stored_crc != computed) return Error::corrupt("tensor blob CRC mismatch");

  std::size_t pos = 4;
  std::uint32_t version = 0, count = 0;
  if (!read(bytes, pos, version)) return Error::corrupt("truncated header");
  if (version != kVersion) return Error::corrupt("unsupported tensor blob version");
  if (!read(bytes, pos, count)) return Error::corrupt("truncated header");

  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t rank = 0;
    if (!read(bytes, pos, rank)) return Error::corrupt("truncated tensor rank");
    if (rank == 0 || rank > 3) return Error::corrupt("tensor rank out of range");
    std::vector<std::size_t> shape(rank);
    std::size_t numel = 1;
    for (auto& d : shape) {
      std::uint64_t dim = 0;
      if (!read(bytes, pos, dim)) return Error::corrupt("truncated tensor shape");
      if (dim == 0 || dim > (1u << 24)) return Error::corrupt("tensor dim out of range");
      d = static_cast<std::size_t>(dim);
      numel *= d;
    }
    std::vector<double> data(numel);
    for (auto& x : data) {
      if (!read(bytes, pos, x)) return Error::corrupt("truncated tensor data");
    }
    tensors.emplace_back(std::move(shape), std::move(data));
  }
  return tensors;
}

std::vector<unsigned char> serialize_model(std::uint32_t model_kind,
                                           const std::vector<const Tensor*>& tensors) {
  const auto blob = serialize_tensors(tensors);
  std::vector<unsigned char> out;
  for (unsigned char c : kContainerMagic) out.push_back(c);
  append(out, kModelContainerVersion);
  append(out, model_kind);
  append(out, static_cast<std::uint64_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
  const std::uint32_t crc = crc32(out.data() + 4, out.size() - 4);
  append(out, crc);
  return out;
}

Expected<std::vector<Tensor>> deserialize_model(std::uint32_t expected_kind,
                                                const std::vector<unsigned char>& bytes) {
  constexpr std::size_t kHeader =
      4 + sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) + sizeof(std::uint32_t);
  if (bytes.size() < kHeader) return Error::corrupt("model container too small");
  if (std::memcmp(bytes.data(), kContainerMagic, 4) != 0) {
    return Error::corrupt("bad magic in model container");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(std::uint32_t),
              sizeof(std::uint32_t));
  const std::uint32_t computed =
      crc32(bytes.data() + 4, bytes.size() - 4 - sizeof(std::uint32_t));
  if (stored_crc != computed) return Error::corrupt("model container CRC mismatch");

  std::size_t pos = 4;
  std::uint32_t version = 0, kind = 0;
  std::uint64_t blob_len = 0;
  if (!read(bytes, pos, version) || !read(bytes, pos, kind) || !read(bytes, pos, blob_len)) {
    return Error::corrupt("truncated model container header");
  }
  if (version != kModelContainerVersion) {
    return Error::corrupt("unsupported model container version");
  }
  if (kind != expected_kind) return Error::corrupt("model container kind mismatch");
  if (pos + blob_len + sizeof(std::uint32_t) != bytes.size()) {
    return Error::corrupt("model container length mismatch");
  }
  return deserialize_tensors(
      std::vector<unsigned char>(bytes.begin() + static_cast<long>(pos),
                                 bytes.end() - sizeof(std::uint32_t)));
}

namespace {

/// Shared tail of the typed layer loaders: unwrap the container, check the
/// tensor count and shapes against the destination parameters, then copy.
Status load_layer(std::uint32_t kind, const std::vector<Tensor*>& params,
                  const std::vector<unsigned char>& bytes) {
  auto tensors = deserialize_model(kind, bytes);
  if (!tensors) return tensors.error();
  if (tensors->size() != params.size()) {
    return Error::corrupt("layer checkpoint tensor count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!(*tensors)[i].same_shape(*params[i])) {
      return Error::corrupt("layer checkpoint shape mismatch");
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) *params[i] = std::move((*tensors)[i]);
  return {};
}

}  // namespace

std::vector<unsigned char> serialize_dense(const Dense& layer) {
  return serialize_model(kModelKindDense, {&layer.weight(), &layer.bias()});
}

std::vector<unsigned char> serialize_conv1d(const Conv1D& layer) {
  return serialize_model(kModelKindConv1D, {&layer.weight(), &layer.bias()});
}

Status load_dense(Dense& layer, const std::vector<unsigned char>& bytes) {
  return load_layer(kModelKindDense, layer.parameters(), bytes);
}

Status load_conv1d(Conv1D& layer, const std::vector<unsigned char>& bytes) {
  return load_layer(kModelKindConv1D, layer.parameters(), bytes);
}

Status save_tensors(const std::string& path, const std::vector<const Tensor*>& tensors) {
  const auto bytes = serialize_tensors(tensors);
  std::ofstream f(path, std::ios::binary);
  if (!f) return Error::io("cannot open for write: " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) return Error::io("write failed: " + path);
  return {};
}

Expected<std::vector<Tensor>> load_tensors(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Error::io("cannot open: " + path);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
  return deserialize_tensors(bytes);
}

}  // namespace lingxi::nn
