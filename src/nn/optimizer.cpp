#include "nn/optimizer.h"

#include <cmath>

namespace lingxi::nn {

Optimizer::Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads)
    : params_(std::move(params)), grads_(std::move(grads)) {
  LINGXI_ASSERT(params_.size() == grads_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    LINGXI_ASSERT(params_[i]->same_shape(*grads_[i]));
  }
}

Sgd::Sgd(std::vector<Tensor*> params, std::vector<Tensor*> grads, double lr)
    : Optimizer(std::move(params), std::move(grads)), lr_(lr) {
  LINGXI_ASSERT(lr > 0.0);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = *params_[i];
    const Tensor& g = *grads_[i];
    for (std::size_t j = 0; j < p.size(); ++j) p[j] -= lr_ * g[j];
  }
}

Adam::Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads)
    : Adam(std::move(params), std::move(grads), Config{}) {}

Adam::Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads, Config config)
    : Optimizer(std::move(params), std::move(grads)), config_(config) {
  LINGXI_ASSERT(config_.lr > 0.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Tensor* p : params_) {
    m_.emplace_back(p->shape());
    v_.emplace_back(p->shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = *params_[i];
    const Tensor& g = *grads_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = config_.beta1 * m[j] + (1.0 - config_.beta1) * g[j];
      v[j] = config_.beta2 * v[j] + (1.0 - config_.beta2) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p[j] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace lingxi::nn
