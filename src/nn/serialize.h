// Binary (de)serialization of tensor lists — model checkpoints.
//
// Two layers of format, both CRC-protected and versioned, both failing with
// Expected errors (never asserts) so corrupt or future-versioned files are
// recoverable conditions:
//
//   * tensor blob: magic "LXNN", u32 version, u32 tensor count, then per
//     tensor (u32 rank, u64 dims..., f64 data...), then CRC-32 of everything
//     after the magic;
//   * model container (snapshot subsystem): magic "LXNC", u32 container
//     version, u32 model kind tag, u64 blob length, tensor blob, CRC-32 of
//     everything after the magic. The kind tag names the architecture the
//     weights belong to, so a fleet snapshot cannot silently load one
//     model's tensors into another's layers.
//
// Typed layer helpers (Dense / Conv1D) round-trip a layer's parameters
// through a model container whose kind encodes the layer type and whose
// shape is validated against the destination layer on load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/tensor.h"

namespace lingxi::nn {

/// Version of the tensor-blob framing written by serialize_tensors.
inline constexpr std::uint32_t kTensorBlobVersion = 1;
/// Version of the model-container framing written by serialize_model.
inline constexpr std::uint32_t kModelContainerVersion = 1;

/// Well-known model kind tags. Callers may define further tags >= 100.
inline constexpr std::uint32_t kModelKindDense = 1;
inline constexpr std::uint32_t kModelKindConv1D = 2;
inline constexpr std::uint32_t kModelKindStallExitNet = 3;

/// Serialize tensors to an in-memory byte buffer.
std::vector<unsigned char> serialize_tensors(const std::vector<const Tensor*>& tensors);

/// Parse a byte buffer produced by serialize_tensors.
Expected<std::vector<Tensor>> deserialize_tensors(const std::vector<unsigned char>& bytes);

/// Wrap a tensor list in a versioned model container tagged `model_kind`.
std::vector<unsigned char> serialize_model(std::uint32_t model_kind,
                                           const std::vector<const Tensor*>& tensors);
/// Unwrap a model container: the version and CRC must check out and the kind
/// tag must equal `expected_kind` (Error::kCorrupt otherwise).
Expected<std::vector<Tensor>> deserialize_model(std::uint32_t expected_kind,
                                                const std::vector<unsigned char>& bytes);

/// Typed layer checkpoints: a model container holding [weight, bias].
std::vector<unsigned char> serialize_dense(const Dense& layer);
std::vector<unsigned char> serialize_conv1d(const Conv1D& layer);
/// Load a layer checkpoint; shape mismatches against the destination layer
/// are Error::kCorrupt (a checkpoint for a different architecture).
Status load_dense(Dense& layer, const std::vector<unsigned char>& bytes);
Status load_conv1d(Conv1D& layer, const std::vector<unsigned char>& bytes);

/// File convenience wrappers.
Status save_tensors(const std::string& path, const std::vector<const Tensor*>& tensors);
Expected<std::vector<Tensor>> load_tensors(const std::string& path);

}  // namespace lingxi::nn
