// Binary (de)serialization of tensor lists — model checkpoints.
//
// Format: magic "LXNN", u32 version, u32 tensor count, then per tensor
// (u32 rank, u64 dims..., f64 data...), then CRC-32 of everything after the
// magic. Fails loudly on any mismatch instead of loading garbage weights.
#pragma once

#include <string>
#include <vector>

#include "common/expected.h"
#include "nn/tensor.h"

namespace lingxi::nn {

/// Serialize tensors to an in-memory byte buffer.
std::vector<unsigned char> serialize_tensors(const std::vector<const Tensor*>& tensors);

/// Parse a byte buffer produced by serialize_tensors.
Expected<std::vector<Tensor>> deserialize_tensors(const std::vector<unsigned char>& bytes);

/// File convenience wrappers.
Status save_tensors(const std::string& path, const std::vector<const Tensor*>& tensors);
Expected<std::vector<Tensor>> load_tensors(const std::string& path);

}  // namespace lingxi::nn
