#include "user/user_population.h"

#include <cmath>

#include "common/assert.h"

namespace lingxi::user {

UserPopulation::UserPopulation() : config_(Config{}) {}

UserPopulation::UserPopulation(Config config) : config_(config) {
  const double archetype_sum = config_.sensitive_fraction + config_.threshold_fraction +
                               config_.insensitive_fraction;
  LINGXI_ASSERT(std::fabs(archetype_sum - 1.0) < 1e-9);
  const double tolerance_sum = config_.low_tolerance_fraction + config_.mid_tolerance_fraction +
                               config_.high_tolerance_fraction +
                               config_.very_high_tolerance_fraction;
  LINGXI_ASSERT(std::fabs(tolerance_sum - 1.0) < 1e-9);
  LINGXI_ASSERT(config_.stable_fraction + config_.moderate_fraction <= 1.0);
}

DataDrivenUser::Config UserPopulation::sample_config(Rng& rng) const {
  DataDrivenUser::Config c;
  const std::size_t arche = rng.discrete({config_.sensitive_fraction,
                                          config_.threshold_fraction,
                                          config_.insensitive_fraction});
  c.stall_archetype = static_cast<StallArchetype>(arche);

  const std::size_t band = rng.discrete(
      {config_.low_tolerance_fraction, config_.mid_tolerance_fraction,
       config_.high_tolerance_fraction, config_.very_high_tolerance_fraction});
  switch (band) {
    case 0: c.tolerance = rng.uniform(0.5, 2.0); break;
    case 1: c.tolerance = rng.uniform(2.0, 5.0); break;
    case 2: c.tolerance = rng.uniform(5.0, 10.0); break;
    default: c.tolerance = rng.uniform(10.0, 20.0); break;
  }
  // Mild heterogeneity in the non-stall terms.
  c.base_content_rate = rng.uniform(0.035, 0.06);
  c.stall_scale = rng.uniform(0.7, 0.95);
  return c;
}

std::unique_ptr<DataDrivenUser> UserPopulation::sample(Rng& rng) const {
  return std::make_unique<DataDrivenUser>(sample_config(rng));
}

std::vector<DataDrivenUser::Config> UserPopulation::sample_many(std::size_t n, Rng& rng) const {
  std::vector<DataDrivenUser::Config> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample_config(rng));
  return out;
}

Seconds UserPopulation::sample_drift(Rng& rng) const {
  const double tail_fraction = 1.0 - config_.stable_fraction - config_.moderate_fraction;
  const std::size_t band =
      rng.discrete({config_.stable_fraction, config_.moderate_fraction, tail_fraction});
  const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
  switch (band) {
    case 0: return sign * rng.uniform(0.0, 1.0);
    case 1: return sign * rng.uniform(2.0, 4.0);
    default: return sign * (4.0 + rng.exponential(0.5));  // long tail beyond 4s
  }
}

}  // namespace lingxi::user
