#include "user/user_population.h"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <string>
#include <utility>

#include "common/assert.h"

namespace lingxi::user {
namespace {

/// Clamp-and-normalize one mixture in place: negatives clamp to 0, and the
/// mixture rescales to sum to 1 unless it is already within 1e-9 of unity
/// (in which case the fractions pass through bitwise-unchanged — the
/// property that keeps every previously-valid config's sampling sequence
/// exact). Unrepairable mixtures (non-finite fraction, all-zero after
/// clamping) return an error.
Status normalize_mixture(std::initializer_list<double*> fractions, const char* what) {
  double sum = 0.0;
  for (double* f : fractions) {
    if (!std::isfinite(*f)) {
      return Error::invalid_arg(std::string("UserPopulation::Config: non-finite ") + what +
                                " fraction");
    }
    if (*f < 0.0) *f = 0.0;
    sum += *f;
  }
  if (sum <= 0.0) {
    return Error::invalid_arg(std::string("UserPopulation::Config: ") + what +
                              " mixture clamps to all-zero");
  }
  if (std::fabs(sum - 1.0) > 1e-9) {
    for (double* f : fractions) *f /= sum;
  }
  return {};
}

}  // namespace

Expected<UserPopulation::Config> UserPopulation::Config::normalized(Config config) {
  if (Status s = normalize_mixture({&config.sensitive_fraction, &config.threshold_fraction,
                                    &config.insensitive_fraction},
                                   "archetype");
      !s.ok()) {
    return s.error();
  }
  if (Status s = normalize_mixture(
          {&config.low_tolerance_fraction, &config.mid_tolerance_fraction,
           &config.high_tolerance_fraction, &config.very_high_tolerance_fraction},
          "tolerance");
      !s.ok()) {
    return s.error();
  }
  // Drift: stable + moderate bound the pair from above (the remainder is
  // the exponential tail), so only an over-unity pair needs rescaling.
  if (!std::isfinite(config.stable_fraction) || !std::isfinite(config.moderate_fraction)) {
    return Error::invalid_arg("UserPopulation::Config: non-finite drift fraction");
  }
  if (config.stable_fraction < 0.0) config.stable_fraction = 0.0;
  if (config.moderate_fraction < 0.0) config.moderate_fraction = 0.0;
  const double drift_sum = config.stable_fraction + config.moderate_fraction;
  if (drift_sum > 1.0) {
    config.stable_fraction /= drift_sum;
    config.moderate_fraction /= drift_sum;
  }
  return config;
}

UserPopulation::UserPopulation() : config_(Config{}) {}

UserPopulation::UserPopulation(Config config) {
  Expected<Config> normalized = Config::normalized(config);
  LINGXI_ASSERT(normalized.has_value());
  config_ = *std::move(normalized);
}

DataDrivenUser::Config UserPopulation::sample_config(Rng& rng) const {
  DataDrivenUser::Config c;
  const std::size_t arche = rng.discrete({config_.sensitive_fraction,
                                          config_.threshold_fraction,
                                          config_.insensitive_fraction});
  c.stall_archetype = static_cast<StallArchetype>(arche);

  const std::size_t band = rng.discrete(
      {config_.low_tolerance_fraction, config_.mid_tolerance_fraction,
       config_.high_tolerance_fraction, config_.very_high_tolerance_fraction});
  switch (band) {
    case 0: c.tolerance = rng.uniform(0.5, 2.0); break;
    case 1: c.tolerance = rng.uniform(2.0, 5.0); break;
    case 2: c.tolerance = rng.uniform(5.0, 10.0); break;
    default: c.tolerance = rng.uniform(10.0, 20.0); break;
  }
  // Mild heterogeneity in the non-stall terms.
  c.base_content_rate = rng.uniform(0.035, 0.06);
  c.stall_scale = rng.uniform(0.7, 0.95);
  return c;
}

std::unique_ptr<DataDrivenUser> UserPopulation::sample(Rng& rng) const {
  return std::make_unique<DataDrivenUser>(sample_config(rng));
}

std::vector<DataDrivenUser::Config> UserPopulation::sample_many(std::size_t n, Rng& rng) const {
  std::vector<DataDrivenUser::Config> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample_config(rng));
  return out;
}

Seconds UserPopulation::sample_drift(Rng& rng) const {
  // max() guards the normalized s + m == 1 edge, where the subtraction can
  // round to a tiny negative that discrete() would reject.
  const double tail_fraction =
      std::max(0.0, 1.0 - config_.stable_fraction - config_.moderate_fraction);
  const std::size_t band =
      rng.discrete({config_.stable_fraction, config_.moderate_fraction, tail_fraction});
  const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
  switch (band) {
    case 0: return sign * rng.uniform(0.0, 1.0);
    case 1: return sign * rng.uniform(2.0, 4.0);
    default: return sign * (4.0 + rng.exponential(0.5));  // long tail beyond 4s
  }
}

}  // namespace lingxi::user
