// User population sampling, calibrated to the paper's §2.3 findings:
// ~20% of users tolerate almost no stall, ~20% tolerate more than 5s,
// ~10% stay past 10s (Fig. 5(a) CDF); day-to-day tolerance drift is mostly
// small with a 2-4s band for ~20% of users and a long tail.
#pragma once

#include <memory>
#include <vector>

#include "common/expected.h"
#include "common/rng.h"
#include "user/data_driven.h"

namespace lingxi::user {

class UserPopulation {
 public:
  /// Mixture fractions are CLAMPED AND NORMALIZED, not rejected (the
  /// documented policy): Config::normalized() clamps negative fractions to
  /// zero and rescales each mixture to sum to 1 when it is off by more than
  /// 1e-9 — a mixture already within 1e-9 of unity passes through
  /// bitwise-unchanged, so every previously-valid config keeps its exact
  /// sampling sequence. Only configs that cannot be repaired (a non-finite
  /// fraction, or a mixture that clamps to all-zero) are rejected with
  /// Error::kInvalidArg. The constructor applies the same policy and
  /// asserts the config was repairable.
  struct Config {
    // Archetype mixture (normalized to sum to 1; see above).
    double sensitive_fraction = 0.35;
    double threshold_fraction = 0.45;
    double insensitive_fraction = 0.20;
    // Tolerance mixture matched to Fig. 5(a): fractions and uniform ranges.
    double low_tolerance_fraction = 0.20;   ///< 0.5 - 2 s
    double mid_tolerance_fraction = 0.50;   ///< 2 - 5 s
    double high_tolerance_fraction = 0.20;  ///< 5 - 10 s
    double very_high_tolerance_fraction = 0.10;  ///< 10 - 20 s
    // Day-to-day drift mixture (§2.3): stable / moderate / long tail.
    // stable + moderate may not exceed 1 (the remainder is the tail);
    // normalized() rescales the pair down when it does.
    double stable_fraction = 0.60;    ///< |drift| < 1 s
    double moderate_fraction = 0.20;  ///< |drift| in 2-4 s
    // Remainder: exponential long tail.

    /// Clamp-and-normalize `config` per the policy above.
    static Expected<Config> normalized(Config config);
  };

  UserPopulation();  // default config
  explicit UserPopulation(Config config);

  /// Sample a fresh user.
  DataDrivenUser::Config sample_config(Rng& rng) const;
  std::unique_ptr<DataDrivenUser> sample(Rng& rng) const;
  std::vector<DataDrivenUser::Config> sample_many(std::size_t n, Rng& rng) const;

  /// Sample a day-over-day tolerance drift (signed seconds).
  Seconds sample_drift(Rng& rng) const;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace lingxi::user
