#include "user/user_model.h"

// Currently interface-only; the translation unit anchors the vtable.
namespace lingxi::user {}
