// Rule-based user (§5.2 "Rule-Based Modeling"): exits deterministically when
// either cumulative stall time or stall count crosses its threshold. Both
// thresholds sweep 2..9 in the paper, giving the 64-rule grid of Fig. 11.
// A small content-driven per-segment exit probability models exits unrelated
// to QoS (the short-video reality that most sessions end early regardless).
#pragma once

#include "user/user_model.h"

namespace lingxi::user {

class RuleBasedUser final : public UserModel {
 public:
  struct Config {
    Seconds stall_time_threshold = 5.0;   ///< exit when cumulative stall exceeds
    std::size_t stall_count_threshold = 5;  ///< exit when stall events exceed
    double content_exit_rate = 0.0;       ///< QoS-independent exit probability/segment
  };

  explicit RuleBasedUser(Config config);

  void begin_session() override {}
  double exit_probability(const sim::SegmentRecord& segment) override;

  Seconds tolerable_stall() const override { return config_.stall_time_threshold; }
  std::string archetype() const override { return "rule"; }
  std::unique_ptr<UserModel> clone() const override;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace lingxi::user
