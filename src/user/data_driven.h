// Data-driven user model (§5.2 "Data-Driven Modeling", Fig. 5(b)).
//
// Per-segment exit hazard combining the paper's measured effect magnitudes
// (Takeaway 1 — quality 1e-3, smoothness 1e-2, stall 1e-1):
//
//   p = base_content_rate                        (content, not QoS)
//     + quality_coeff   * (1 - bitrate/max)      (~1e-3)
//     + switch_coeff    * [switched] (+down bump)(~1e-2)
//     + stall_response(cumulative stall)         (~1e-1, personalized)
//
// Three stall-response archetypes match the user cases in Fig. 5(b):
//   * kSensitive   — hazard rises steeply and linearly from the first stall
//   * kThreshold   — logistic jump around a personal tolerance theta
//   * kInsensitive — shallow linear rise, capped low
#pragma once

#include "user/user_model.h"

namespace lingxi::user {

enum class StallArchetype { kSensitive, kThreshold, kInsensitive };

const char* archetype_name(StallArchetype a) noexcept;

class DataDrivenUser final : public UserModel {
 public:
  struct Config {
    StallArchetype stall_archetype = StallArchetype::kThreshold;
    Seconds tolerance = 4.0;        ///< theta: personal tolerable stall time
    double stall_scale = 0.8;       ///< max stall-induced hazard
    double base_content_rate = 0.045;
    double quality_coeff = 2e-3;
    double switch_coeff = 1.2e-2;
    double down_switch_bump = 0.4;  ///< extra fraction for quality drops
    double multi_stall_bump = 0.8;  ///< hazard multiplier per extra stall event
    /// Compound effects (§2.2 Fig. 4(d)): stalls at higher quality are less
    /// tolerated; prolonged engagement increases stall tolerance.
    double quality_stall_interaction = 0.6;  ///< extra hazard fraction at top tier
    double engagement_relief = 0.5;           ///< max hazard reduction deep in a session
    Kbps max_bitrate = 4300.0;
  };

  explicit DataDrivenUser(Config config);

  void begin_session() override;
  double exit_probability(const sim::SegmentRecord& segment) override;

  /// Stall time where the stall-induced hazard reaches half its scale.
  Seconds tolerable_stall() const override;
  std::string archetype() const override { return archetype_name(config_.stall_archetype); }
  std::unique_ptr<UserModel> clone() const override;

  /// The isolated stall hazard term (used by Fig. 5(b) to plot response
  /// curves without content/quality noise).
  double stall_hazard(Seconds cumulative_stall, std::size_t stall_events) const;

  const Config& config() const noexcept { return config_; }
  /// Day-to-day drift: returns a copy with `tolerance` shifted by delta,
  /// clamped to >= 0.5s (temporal dynamics of §2.3).
  Config drifted(Seconds delta) const;

 private:
  Config config_;
  bool has_prev_ = false;
  std::size_t prev_level_ = 0;
  Kbps prev_bitrate_ = 0.0;
};

}  // namespace lingxi::user
