// User behaviour models — the "real users" of the synthetic production
// environment.
//
// The paper validates LingXi pre-deployment against two families (§5.2):
// deterministic rule-based users and data-driven users fitted from logs.
// Both are sim::ExitModel implementations, so the same session simulator
// drives them; additionally they expose ground-truth sensitivity so benches
// can check that LingXi's inferred parameters track true user tolerance
// (Figs. 5, 11, 14, 15).
#pragma once

#include <memory>
#include <string>

#include "sim/session.h"

namespace lingxi::user {

class UserModel : public sim::ExitModel {
 public:
  /// Ground-truth average stall time this user tolerates before the exit
  /// probability becomes substantial (~0.5). Basis of Fig. 5(a).
  virtual Seconds tolerable_stall() const = 0;
  /// Archetype label ("sensitive" / "threshold" / "insensitive" / "rule").
  virtual std::string archetype() const = 0;
  virtual std::unique_ptr<UserModel> clone() const = 0;
};

}  // namespace lingxi::user
