#include "user/rule_based.h"

#include "common/assert.h"

namespace lingxi::user {

RuleBasedUser::RuleBasedUser(Config config) : config_(config) {
  LINGXI_ASSERT(config_.stall_time_threshold >= 0.0);
  LINGXI_ASSERT(config_.content_exit_rate >= 0.0 && config_.content_exit_rate <= 1.0);
}

double RuleBasedUser::exit_probability(const sim::SegmentRecord& segment) {
  if (segment.cumulative_stall > config_.stall_time_threshold) return 1.0;
  if (segment.cumulative_stall_events > config_.stall_count_threshold) return 1.0;
  return config_.content_exit_rate;
}

std::unique_ptr<UserModel> RuleBasedUser::clone() const {
  return std::make_unique<RuleBasedUser>(*this);
}

}  // namespace lingxi::user
