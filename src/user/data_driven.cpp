#include "user/data_driven.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::user {

const char* archetype_name(StallArchetype a) noexcept {
  switch (a) {
    case StallArchetype::kSensitive: return "sensitive";
    case StallArchetype::kThreshold: return "threshold";
    case StallArchetype::kInsensitive: return "insensitive";
  }
  return "?";
}

DataDrivenUser::DataDrivenUser(Config config) : config_(config) {
  LINGXI_ASSERT(config_.tolerance > 0.0);
  LINGXI_ASSERT(config_.stall_scale > 0.0 && config_.stall_scale <= 1.0);
  LINGXI_ASSERT(config_.base_content_rate >= 0.0 && config_.base_content_rate < 1.0);
  LINGXI_ASSERT(config_.max_bitrate > 0.0);
}

void DataDrivenUser::begin_session() {
  has_prev_ = false;
  prev_level_ = 0;
  prev_bitrate_ = 0.0;
}

double DataDrivenUser::stall_hazard(Seconds cumulative_stall, std::size_t stall_events) const {
  if (cumulative_stall <= 0.0) return 0.0;
  double h = 0.0;
  switch (config_.stall_archetype) {
    case StallArchetype::kSensitive:
      // Steep linear ramp: saturates at ~1.5x tolerance.
      h = config_.stall_scale * std::min(1.0, cumulative_stall / (1.5 * config_.tolerance));
      break;
    case StallArchetype::kThreshold: {
      // Sharp logistic jump centered at the personal tolerance: exits are
      // near-deterministic once the threshold is crossed (§2.3's
      // "sensitive to threshold" users).
      const double k = 5.0;  // steepness (1/s)
      h = config_.stall_scale / (1.0 + std::exp(-k * (cumulative_stall - config_.tolerance)));
      break;
    }
    case StallArchetype::kInsensitive:
      // Shallow ramp, capped at 30% of scale.
      h = std::min(0.3 * config_.stall_scale,
                   0.05 * config_.stall_scale * cumulative_stall);
      break;
  }
  if (stall_events > 1) {
    h *= 1.0 + config_.multi_stall_bump * static_cast<double>(stall_events - 1);
  }
  return std::min(h, 1.0);
}

double DataDrivenUser::exit_probability(const sim::SegmentRecord& segment) {
  double p = config_.base_content_rate;
  // Quality term (1e-3 magnitude): dissatisfaction grows as bitrate drops.
  p += config_.quality_coeff * (1.0 - std::min(1.0, segment.bitrate / config_.max_bitrate));
  // Smoothness term (1e-2 magnitude).
  if (has_prev_ && segment.level != prev_level_) {
    double sw = config_.switch_coeff;
    if (segment.bitrate < prev_bitrate_) sw *= 1.0 + config_.down_switch_bump;
    p += sw;
  }
  // Stall term (1e-1 magnitude), only when this segment actually stalled:
  // the hazard is tied to the stall event, not re-charged every segment.
  if (segment.stall_time > 0.05) {
    double h = stall_hazard(segment.cumulative_stall, segment.cumulative_stall_events);
    // Compound effects (Fig. 4(d)): less stall tolerance at higher quality,
    // more tolerance once the viewer is invested in the video.
    h *= 1.0 + config_.quality_stall_interaction *
                   std::min(1.0, segment.bitrate / config_.max_bitrate);
    h *= 1.0 - config_.engagement_relief * std::min(1.0, segment.position / 20.0);
    p += std::min(h, 1.0);
  }
  has_prev_ = true;
  prev_level_ = segment.level;
  prev_bitrate_ = segment.bitrate;
  return std::clamp(p, 0.0, 1.0);
}

Seconds DataDrivenUser::tolerable_stall() const {
  switch (config_.stall_archetype) {
    case StallArchetype::kSensitive:
      return config_.tolerance;  // hazard = scale/2 at theta (ramp midpoint)
    case StallArchetype::kThreshold:
      return config_.tolerance;  // logistic midpoint
    case StallArchetype::kInsensitive:
      // Hazard never reaches scale/2; report the cap point.
      return std::max(config_.tolerance, 10.0);
  }
  return config_.tolerance;
}

std::unique_ptr<UserModel> DataDrivenUser::clone() const {
  return std::make_unique<DataDrivenUser>(*this);
}

DataDrivenUser::Config DataDrivenUser::drifted(Seconds delta) const {
  Config c = config_;
  c.tolerance = std::max(0.5, c.tolerance + delta);
  return c;
}

}  // namespace lingxi::user
