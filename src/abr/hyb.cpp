#include "abr/hyb.h"

#include "abr/estimator.h"
#include "common/assert.h"

namespace lingxi::abr {

std::size_t Hyb::select(const sim::AbrObservation& obs) {
  LINGXI_ASSERT(obs.video != nullptr);
  const auto& ladder = obs.video->ladder();

  if (obs.first_segment || obs.throughput_history.empty()) {
    return 0;  // conservative start
  }
  const Kbps estimate = harmonic_mean(obs.throughput_history);
  if (estimate <= 0.0) return 0;

  const double budget = params_.hyb_beta * obs.buffer;
  std::size_t best = 0;
  for (std::size_t level = 0; level < ladder.levels(); ++level) {
    const Bytes size = obs.video->segment_size(obs.next_segment, level);
    const Seconds dl = units::download_time(size, estimate);
    if (dl < budget) best = level;
  }
  return best;
}

std::unique_ptr<AbrAlgorithm> Hyb::clone() const { return std::make_unique<Hyb>(*this); }

}  // namespace lingxi::abr
