#include "abr/robust_mpc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "abr/estimator.h"
#include "common/assert.h"

namespace lingxi::abr {

std::size_t RobustMpc::select(const sim::AbrObservation& obs) {
  LINGXI_ASSERT(obs.video != nullptr);
  const auto& video = *obs.video;
  const auto& ladder = video.ladder();
  const std::size_t levels = ladder.levels();

  if (obs.throughput_history.empty()) return 0;

  const Kbps estimate = config_.robust ? robust_estimate(obs.throughput_history)
                                       : harmonic_mean(obs.throughput_history);
  if (estimate <= 0.0) return 0;

  const std::size_t remaining = video.segment_count() - obs.next_segment;
  const std::size_t horizon = std::min(config_.horizon, remaining);
  LINGXI_ASSERT(horizon >= 1);

  const Seconds L = video.segment_duration();
  const double last_quality =
      obs.first_segment ? -1.0 : ladder.quality(obs.last_level, config_.metric);

  // Enumerate all level sequences of length `horizon` (levels^horizon).
  std::size_t total = 1;
  for (std::size_t h = 0; h < horizon; ++h) total *= levels;

  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best_first = 0;

  for (std::size_t code = 0; code < total; ++code) {
    // Decode `code` into a level sequence (least significant digit first).
    Seconds buffer = obs.buffer;
    double score = 0.0;
    double prev_quality = last_quality;
    std::size_t c = code;
    std::size_t first_level = 0;
    for (std::size_t h = 0; h < horizon; ++h) {
      const std::size_t level = c % levels;
      c /= levels;
      if (h == 0) first_level = level;

      const Bytes size = video.segment_size(obs.next_segment + h, level);
      const Seconds dl = units::download_time(size, estimate);
      const Seconds stall = std::max(0.0, dl - buffer);
      buffer = std::max(0.0, buffer - dl) + L;
      buffer = std::min(buffer, std::max(obs.buffer_max, L));

      const double quality = ladder.quality(level, config_.metric);
      score += quality - params_.stall_penalty * stall;
      if (prev_quality >= 0.0) {
        score -= params_.switch_penalty * std::fabs(quality - prev_quality);
      }
      prev_quality = quality;
    }
    if (score > best_score) {
      best_score = score;
      best_first = first_level;
    }
  }
  return best_first;
}

std::unique_ptr<AbrAlgorithm> RobustMpc::clone() const {
  return std::make_unique<RobustMpc>(*this);
}

}  // namespace lingxi::abr
