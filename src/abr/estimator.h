// Throughput estimation used by the ABR algorithms.
//
// * harmonic mean of the recent window — the classic MPC predictor;
// * RobustMPC discounting — divide by (1 + max relative error observed
//   over the window), the lower-bound estimate of [Yin et al. '15];
// * EWMA — rate-based algorithms.
#pragma once

#include <cstddef>
#include <span>

#include "common/units.h"

namespace lingxi::abr {

/// Harmonic mean of positive samples; 0 if empty.
Kbps harmonic_mean(std::span<const Kbps> samples) noexcept;

/// Max relative prediction error of the one-step harmonic-mean predictor
/// over the window (RobustMPC's error term). 0 if fewer than 2 samples.
double max_relative_error(std::span<const Kbps> samples) noexcept;

/// RobustMPC lower-bound estimate: harmonic_mean / (1 + max_relative_error).
Kbps robust_estimate(std::span<const Kbps> samples) noexcept;

/// Exponentially weighted moving average with weight `alpha` on the newest
/// sample, iterated over the window (oldest first). 0 if empty.
Kbps ewma(std::span<const Kbps> samples, double alpha = 0.3) noexcept;

}  // namespace lingxi::abr
