#include "abr/rate_based.h"

#include "abr/estimator.h"
#include "common/assert.h"

namespace lingxi::abr {

std::size_t RateBased::select(const sim::AbrObservation& obs) {
  LINGXI_ASSERT(obs.video != nullptr);
  if (obs.throughput_history.empty()) return 0;
  const Kbps estimate = ewma(obs.throughput_history, config_.ewma_alpha);
  return obs.video->ladder().highest_level_below(config_.safety * estimate);
}

std::unique_ptr<AbrAlgorithm> RateBased::clone() const {
  return std::make_unique<RateBased>(*this);
}

}  // namespace lingxi::abr
