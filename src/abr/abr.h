// Base class for all ABR algorithms.
//
// An AbrAlgorithm is a sim::BitrateSelector whose behaviour is additionally
// governed by runtime-adjustable QoeParams — the hook LingXi uses to retune
// objectives without touching the algorithm internals (§4 "Seamless
// Integration").
#pragma once

#include <memory>
#include <string>

#include "abr/qoe.h"
#include "sim/session.h"

namespace lingxi::abr {

class AbrAlgorithm : public sim::BitrateSelector {
 public:
  /// Human-readable algorithm name for logs and bench output.
  virtual std::string name() const = 0;

  /// Runtime objective adjustment (thread-safety note: the production system
  /// applies this between segments from the playback thread).
  virtual void set_params(const QoeParams& params) { params_ = params; }
  const QoeParams& params() const noexcept { return params_; }

  /// Independent copy for Monte Carlo rollouts.
  virtual std::unique_ptr<AbrAlgorithm> clone() const = 0;

 protected:
  QoeParams params_;
};

}  // namespace lingxi::abr
