// The QoE parameter contract between LingXi and ABR algorithms.
//
// LingXi never replaces an ABR; it re-tunes the ABR's optimization objective
// at runtime (§3, §4). `QoeParams` is the full set of knobs any of the
// bundled algorithms understands:
//   * stall_penalty  (mu in Eq. 1)     — MPC/Pensieve-style explicit QoE
//   * switch_penalty (lambda in Eq. 1) — same
//   * hyb_beta       (beta, §5.3)      — implicit-objective algorithms (HYB)
// Each algorithm reads the subset that applies to it and ignores the rest.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace lingxi::abr {

struct QoeParams {
  /// mu: QoE_lin stall-time weight. Paper default: the maximum video quality
  /// value (4.3 for the default ladder under the linear-Mbps metric).
  double stall_penalty = 4.3;
  /// lambda: QoE_lin switching weight. Paper experiments sweep 0..4.
  double switch_penalty = 1.0;
  /// beta: HYB aggressiveness — download allowed while d(Q)/C < beta * B.
  double hyb_beta = 0.8;

  std::string to_string() const;
  bool operator==(const QoeParams&) const = default;
};

/// Box constraints for the parameter search, matching the sweeps in §5.2
/// (stall 1..20, switch 0..4) and §5.3/Fig. 13-15 (beta roughly 0.4..0.95).
struct ParamSpace {
  double stall_min = 1.0, stall_max = 20.0;
  double switch_min = 0.0, switch_max = 4.0;
  double beta_min = 0.4, beta_max = 0.95;

  /// Which coordinates the optimizer actually searches; un-searched
  /// coordinates keep their default value. (HYB integration searches only
  /// beta; MPC/Pensieve integrations search stall+switch.)
  bool optimize_stall = true;
  bool optimize_switch = true;
  bool optimize_beta = false;

  std::size_t dimensions() const noexcept;
  /// Map params to the searched coordinates, scaled to the unit cube.
  std::vector<double> to_unit(const QoeParams& p) const;
  /// Inverse of to_unit; unsearched coordinates come from `base`.
  QoeParams from_unit(const std::vector<double>& u, const QoeParams& base) const;
  /// Uniform random point in the unit cube of searched coordinates.
  std::vector<double> sample_unit(Rng& rng) const;
  /// Clamp every coordinate of `p` into the box.
  QoeParams clamp(const QoeParams& p) const;
};

}  // namespace lingxi::abr
