// HYB [Akhtar et al., SIGCOMM'18 §5.3 of the LingXi paper]: an
// implicit-objective algorithm. It picks the maximum bitrate whose expected
// download time stays within a beta fraction of the current buffer:
//     d_k(Q) / C_hat  <  beta * B_k
// beta trades bandwidth-estimate confidence against stall risk; it is the
// parameter LingXi tunes in the paper's production A/B test.
#pragma once

#include "abr/abr.h"

namespace lingxi::abr {

class Hyb final : public AbrAlgorithm {
 public:
  Hyb() = default;
  explicit Hyb(QoeParams params) { params_ = params; }

  std::string name() const override { return "HYB"; }
  std::size_t select(const sim::AbrObservation& obs) override;
  std::unique_ptr<AbrAlgorithm> clone() const override;
};

}  // namespace lingxi::abr
