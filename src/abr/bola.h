// BOLA [Spiteri et al., ToN'20]: Lyapunov-optimization-based bitrate choice.
// For each level m the score is
//     (V * (v_m + gamma * p) - B) / S_m
// with utility v_m = ln(S_m / S_0); the level maximizing a non-negative
// score is chosen, else the lowest level. V is derived from the buffer cap
// so the cushion maps onto the ladder; gamma*p rises with the configured
// stall penalty, making BOLA respond to LingXi's objective adjustments.
#pragma once

#include "abr/abr.h"

namespace lingxi::abr {

class Bola final : public AbrAlgorithm {
 public:
  Bola() = default;
  explicit Bola(QoeParams params) { params_ = params; }

  std::string name() const override { return "BOLA"; }
  std::size_t select(const sim::AbrObservation& obs) override;
  std::unique_ptr<AbrAlgorithm> clone() const override;
};

}  // namespace lingxi::abr
