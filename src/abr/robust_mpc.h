// RobustMPC [Yin et al., SIGCOMM'15]: model-predictive control over a short
// lookahead horizon. Enumerates all bitrate sequences for the next H
// segments, rolls the buffer model forward under a conservative
// (error-discounted harmonic mean) throughput estimate, and picks the first
// step of the sequence maximizing QoE_lin:
//     sum q(Q_k) - mu * sum stall_k - lambda * sum |q(Q_{k+1}) - q(Q_k)|
// mu / lambda come from QoeParams — the knobs LingXi retunes (§5.2).
#pragma once

#include "abr/abr.h"
#include "trace/video.h"

namespace lingxi::abr {

class RobustMpc final : public AbrAlgorithm {
 public:
  struct Config {
    std::size_t horizon = 5;
    trace::QualityMetric metric = trace::QualityMetric::kLinearMbps;
    /// Use the plain harmonic mean instead of the robust discounted estimate
    /// (plain MPC ablation).
    bool robust = true;
  };

  RobustMpc() : config_(Config{}) {}
  explicit RobustMpc(Config config) : config_(config) {}
  RobustMpc(Config config, QoeParams params) : config_(config) { params_ = params; }

  std::string name() const override { return config_.robust ? "RobustMPC" : "MPC"; }
  std::size_t select(const sim::AbrObservation& obs) override;
  std::unique_ptr<AbrAlgorithm> clone() const override;

 private:
  Config config_;
};

}  // namespace lingxi::abr
