#include "abr/bba.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::abr {

std::size_t Bba::select(const sim::AbrObservation& obs) {
  LINGXI_ASSERT(obs.video != nullptr);
  const std::size_t levels = obs.video->ladder().levels();
  const Seconds cushion_top = std::max(config_.reservoir + 0.1,
                                       config_.cushion_fraction * obs.buffer_max);
  if (obs.buffer <= config_.reservoir) return 0;
  if (obs.buffer >= cushion_top) return levels - 1;
  const double frac = (obs.buffer - config_.reservoir) / (cushion_top - config_.reservoir);
  const auto level = static_cast<std::size_t>(std::floor(frac * static_cast<double>(levels)));
  return std::min(level, levels - 1);
}

std::unique_ptr<AbrAlgorithm> Bba::clone() const { return std::make_unique<Bba>(*this); }

}  // namespace lingxi::abr
