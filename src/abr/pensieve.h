// Pensieve [Mao et al., SIGCOMM'17]: learned ABR policy, with the paper's
// §5.2 modification — the QoE parameters (stall penalty, switch penalty) are
// injected into the network state, and the training reward is QoE_lin under
// parameters randomized per episode. One trained policy therefore serves
// every optimization objective, and LingXi retunes it at inference time by
// changing the state inputs.
//
// The policy is a small MLP trained with REINFORCE (return baseline +
// entropy regularization) directly in the Eq. 3 simulator. The original
// uses A3C on a cluster; at this scale REINFORCE converges in seconds and
// exercises the same interface.
#pragma once

#include <optional>

#include "abr/abr.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "trace/population.h"
#include "trace/video.h"

namespace lingxi::abr {

/// Feature vector layout (see build_features): history windows are fixed at
/// 8 samples to match the paper's state matrices.
constexpr std::size_t kPensieveHistory = 8;

class Pensieve final : public AbrAlgorithm {
 public:
  /// `levels` must match the ladder the policy will be used with.
  Pensieve(std::size_t levels, Rng& rng);
  Pensieve(const Pensieve& other);
  Pensieve& operator=(const Pensieve& other);

  std::string name() const override { return "Pensieve"; }
  /// Greedy action (used online).
  std::size_t select(const sim::AbrObservation& obs) override;
  std::unique_ptr<AbrAlgorithm> clone() const override;

  /// Stochastic action + cached features, used during training.
  std::size_t sample_action(const sim::AbrObservation& obs, Rng& rng,
                            nn::Tensor* features_out = nullptr);

  /// Forward pass to logits for a prebuilt feature vector.
  nn::Tensor logits(const nn::Tensor& features);
  /// Backward pass for a gradient w.r.t. logits (training).
  void backward(const nn::Tensor& grad_logits);

  nn::ParamSet param_set();
  std::size_t levels() const noexcept { return levels_; }
  std::size_t feature_count() const;

  /// Encode observation + current QoE params into the network input.
  nn::Tensor build_features(const sim::AbrObservation& obs) const;

 private:
  std::size_t levels_;
  nn::Dense fc1_;
  nn::ReLU relu1_;
  nn::Dense fc2_;
  nn::ReLU relu2_;
  nn::Dense head_;
};

struct PensieveTrainConfig {
  std::size_t episodes = 400;
  double gamma = 0.99;          ///< return discount
  double lr = 2.5e-3;
  double entropy_beta = 0.02;   ///< exploration bonus weight
  std::size_t max_segments = 60;
  /// Randomize QoE params per episode inside `space` (the paper's dynamic
  /// reward). When false, trains against the fixed params on the policy.
  bool randomize_params = true;
  ParamSpace space;
  trace::QualityMetric metric = trace::QualityMetric::kLinearMbps;
};

struct PensieveTrainReport {
  double initial_mean_return = 0.0;  ///< mean return over first 10% episodes
  double final_mean_return = 0.0;    ///< mean return over last 10% episodes
};

/// REINFORCE training in the simulator; videos and network conditions are
/// drawn fresh per episode.
PensieveTrainReport train_pensieve(Pensieve& policy, const trace::VideoGenerator& videos,
                                   const trace::PopulationModel& population,
                                   const PensieveTrainConfig& config, Rng& rng);

}  // namespace lingxi::abr
