#include "abr/bola.h"

#include <cmath>

#include "common/assert.h"

namespace lingxi::abr {

std::size_t Bola::select(const sim::AbrObservation& obs) {
  LINGXI_ASSERT(obs.video != nullptr);
  const auto& ladder = obs.video->ladder();
  const std::size_t levels = ladder.levels();
  const Seconds L = obs.video->segment_duration();

  // Utilities relative to the lowest level.
  const double v_max = std::log(ladder.max_bitrate() / ladder.min_bitrate());
  // gamma*p grows with the stall penalty: a more stall-averse objective keeps
  // the buffer fuller. Normalized against the default penalty scale (~4.3).
  const double gp = 1.0 + params_.stall_penalty / 4.3;
  // Choose V so that the top level becomes attractive as the buffer
  // approaches the cap (standard BOLA-BASIC calibration).
  const double buffer_cap_segments = std::max(2.0, obs.buffer_max / L);
  const double V = (buffer_cap_segments - 1.0) / (v_max + gp);

  const double buffer_segments = obs.buffer / L;
  double best_score = 0.0;
  std::size_t best = 0;
  bool any_positive = false;
  for (std::size_t m = 0; m < levels; ++m) {
    const double v_m = std::log(ladder.bitrate(m) / ladder.min_bitrate());
    const double size_segments = ladder.bitrate(m) / ladder.min_bitrate();
    const double score = (V * (v_m + gp) - buffer_segments) / size_segments;
    if (score >= 0.0 && (!any_positive || score > best_score)) {
      best_score = score;
      best = m;
      any_positive = true;
    }
  }
  if (any_positive) return best;
  // All scores negative: either the buffer is above the Lyapunov target
  // (stream the top rendition — no stall risk) or it is empty enough that
  // only the safest choice is defensible.
  return buffer_segments >= V * (v_max + gp) ? levels - 1 : 0;
}

std::unique_ptr<AbrAlgorithm> Bola::clone() const { return std::make_unique<Bola>(*this); }

}  // namespace lingxi::abr
