#include "abr/qoe.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace lingxi::abr {
namespace {

double to_unit_coord(double v, double lo, double hi) {
  LINGXI_DASSERT(hi > lo);
  return std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
}

double from_unit_coord(double u, double lo, double hi) {
  return lo + std::clamp(u, 0.0, 1.0) * (hi - lo);
}

}  // namespace

std::string QoeParams::to_string() const {
  std::ostringstream ss;
  ss << "{stall=" << stall_penalty << ", switch=" << switch_penalty
     << ", beta=" << hyb_beta << "}";
  return ss.str();
}

std::size_t ParamSpace::dimensions() const noexcept {
  return static_cast<std::size_t>(optimize_stall) + static_cast<std::size_t>(optimize_switch) +
         static_cast<std::size_t>(optimize_beta);
}

std::vector<double> ParamSpace::to_unit(const QoeParams& p) const {
  std::vector<double> u;
  u.reserve(dimensions());
  if (optimize_stall) u.push_back(to_unit_coord(p.stall_penalty, stall_min, stall_max));
  if (optimize_switch) u.push_back(to_unit_coord(p.switch_penalty, switch_min, switch_max));
  if (optimize_beta) u.push_back(to_unit_coord(p.hyb_beta, beta_min, beta_max));
  return u;
}

QoeParams ParamSpace::from_unit(const std::vector<double>& u, const QoeParams& base) const {
  LINGXI_ASSERT(u.size() == dimensions());
  QoeParams p = base;
  std::size_t i = 0;
  if (optimize_stall) p.stall_penalty = from_unit_coord(u[i++], stall_min, stall_max);
  if (optimize_switch) p.switch_penalty = from_unit_coord(u[i++], switch_min, switch_max);
  if (optimize_beta) p.hyb_beta = from_unit_coord(u[i++], beta_min, beta_max);
  return p;
}

std::vector<double> ParamSpace::sample_unit(Rng& rng) const {
  std::vector<double> u(dimensions());
  for (double& x : u) x = rng.uniform();
  return u;
}

QoeParams ParamSpace::clamp(const QoeParams& p) const {
  QoeParams out = p;
  out.stall_penalty = std::clamp(out.stall_penalty, stall_min, stall_max);
  out.switch_penalty = std::clamp(out.switch_penalty, switch_min, switch_max);
  out.hyb_beta = std::clamp(out.hyb_beta, beta_min, beta_max);
  return out;
}

}  // namespace lingxi::abr
