// BBA [Huang et al., SIGCOMM'14]: pure buffer-based rate adaptation.
// Below the reservoir it plays the lowest rate; above the cushion, the
// highest; in between it maps buffer occupancy linearly onto the ladder.
#pragma once

#include "abr/abr.h"

namespace lingxi::abr {

class Bba final : public AbrAlgorithm {
 public:
  struct Config {
    Seconds reservoir = 1.5;      ///< play lowest rate below this buffer
    double cushion_fraction = 0.9;  ///< cushion top as a fraction of B_max
  };

  Bba() : config_(Config{}) {}
  explicit Bba(Config config) : config_(config) {}

  std::string name() const override { return "BBA"; }
  std::size_t select(const sim::AbrObservation& obs) override;
  std::unique_ptr<AbrAlgorithm> clone() const override;

 private:
  Config config_;
};

}  // namespace lingxi::abr
