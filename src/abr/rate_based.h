// Rate-based adaptation (FESTIVE/PANDA family): pick the highest ladder
// bitrate below a safety fraction of the smoothed throughput estimate.
#pragma once

#include "abr/abr.h"

namespace lingxi::abr {

class RateBased final : public AbrAlgorithm {
 public:
  struct Config {
    double safety = 0.85;   ///< usable fraction of the estimate
    double ewma_alpha = 0.3;
  };

  RateBased() : config_(Config{}) {}
  explicit RateBased(Config config) : config_(config) {}

  std::string name() const override { return "RateBased"; }
  std::size_t select(const sim::AbrObservation& obs) override;
  std::unique_ptr<AbrAlgorithm> clone() const override;

 private:
  Config config_;
};

}  // namespace lingxi::abr
