#include "abr/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lingxi::abr {

Kbps harmonic_mean(std::span<const Kbps> samples) noexcept {
  if (samples.empty()) return 0.0;
  double denom = 0.0;
  for (Kbps s : samples) {
    LINGXI_DASSERT(s > 0.0);
    denom += 1.0 / s;
  }
  return static_cast<double>(samples.size()) / denom;
}

double max_relative_error(std::span<const Kbps> samples) noexcept {
  if (samples.size() < 2) return 0.0;
  double max_err = 0.0;
  // Predict sample i from samples [0, i) with the harmonic mean, mirroring
  // what the controller would have predicted at that point.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const Kbps pred = harmonic_mean(samples.subspan(0, i));
    if (pred <= 0.0) continue;
    max_err = std::max(max_err, std::fabs(pred - samples[i]) / samples[i]);
  }
  return max_err;
}

Kbps robust_estimate(std::span<const Kbps> samples) noexcept {
  const Kbps hm = harmonic_mean(samples);
  return hm / (1.0 + max_relative_error(samples));
}

Kbps ewma(std::span<const Kbps> samples, double alpha) noexcept {
  if (samples.empty()) return 0.0;
  double est = samples.front();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    est = alpha * samples[i] + (1.0 - alpha) * est;
  }
  return est;
}

}  // namespace lingxi::abr
