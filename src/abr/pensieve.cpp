#include "abr/pensieve.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "sim/player_env.h"

namespace lingxi::abr {
namespace {

constexpr std::size_t kHidden = 64;
// Normalization scales keeping inputs roughly in [0, 1].
constexpr double kThroughputScale = 8000.0;  // kbps
constexpr double kBufferScale = 10.0;        // s
constexpr double kDownloadScale = 10.0;      // s

std::size_t feature_count_for(std::size_t levels) {
  return 3 + 2 * kPensieveHistory + levels + 1 + 3;
}

}  // namespace

Pensieve::Pensieve(std::size_t levels, Rng& rng)
    : levels_(levels),
      fc1_(feature_count_for(levels), kHidden, rng),
      fc2_(kHidden, kHidden, rng),
      head_(kHidden, levels, rng) {
  LINGXI_ASSERT(levels >= 2);
}

Pensieve::Pensieve(const Pensieve& other) = default;
Pensieve& Pensieve::operator=(const Pensieve& other) = default;

std::size_t Pensieve::feature_count() const { return feature_count_for(levels_); }

nn::Tensor Pensieve::build_features(const sim::AbrObservation& obs) const {
  LINGXI_ASSERT(obs.video != nullptr);
  const auto& ladder = obs.video->ladder();
  LINGXI_ASSERT(ladder.levels() == levels_);

  nn::Tensor f({feature_count()});
  std::size_t i = 0;
  // Last selected bitrate (0 before the first segment).
  f[i++] = obs.first_segment ? 0.0 : ladder.bitrate(obs.last_level) / ladder.max_bitrate();
  f[i++] = obs.buffer / kBufferScale;
  f[i++] = obs.buffer_max / 30.0;
  // Throughput / download-time history, zero-padded at the front.
  for (std::size_t k = 0; k < kPensieveHistory; ++k) {
    const std::size_t n = obs.throughput_history.size();
    f[i++] = (k < kPensieveHistory - n)
                 ? 0.0
                 : obs.throughput_history[k - (kPensieveHistory - n)] / kThroughputScale;
  }
  for (std::size_t k = 0; k < kPensieveHistory; ++k) {
    const std::size_t n = obs.download_time_history.size();
    f[i++] = (k < kPensieveHistory - n)
                 ? 0.0
                 : obs.download_time_history[k - (kPensieveHistory - n)] / kDownloadScale;
  }
  // Next-segment sizes across the ladder, relative to the top rendition.
  const Bytes top = units::segment_bytes(ladder.max_bitrate(), obs.video->segment_duration());
  for (std::size_t level = 0; level < levels_; ++level) {
    f[i++] = obs.video->segment_size(obs.next_segment, level) / top;
  }
  f[i++] = static_cast<double>(obs.video->segment_count() - obs.next_segment) /
           static_cast<double>(obs.video->segment_count());
  // The paper's modification: QoE parameters become state variables.
  f[i++] = params_.stall_penalty / 20.0;
  f[i++] = params_.switch_penalty / 4.0;
  f[i++] = params_.hyb_beta;
  LINGXI_ASSERT(i == feature_count());
  return f;
}

nn::Tensor Pensieve::logits(const nn::Tensor& features) {
  return head_.forward(relu2_.forward(fc2_.forward(relu1_.forward(fc1_.forward(features)))));
}

void Pensieve::backward(const nn::Tensor& grad_logits) {
  fc1_.backward(relu1_.backward(fc2_.backward(relu2_.backward(head_.backward(grad_logits)))));
}

std::size_t Pensieve::select(const sim::AbrObservation& obs) {
  const nn::Tensor z = logits(build_features(obs));
  std::size_t best = 0;
  for (std::size_t a = 1; a < levels_; ++a) {
    if (z[a] > z[best]) best = a;
  }
  return best;
}

std::size_t Pensieve::sample_action(const sim::AbrObservation& obs, Rng& rng,
                                    nn::Tensor* features_out) {
  nn::Tensor features = build_features(obs);
  const nn::Tensor probs = nn::softmax(logits(features));
  std::vector<double> w(probs.data(), probs.data() + probs.size());
  const std::size_t action = rng.discrete(w);
  if (features_out != nullptr) *features_out = std::move(features);
  return action;
}

std::unique_ptr<AbrAlgorithm> Pensieve::clone() const {
  return std::make_unique<Pensieve>(*this);
}

nn::ParamSet Pensieve::param_set() {
  nn::ParamSet set;
  set.add(fc1_);
  set.add(fc2_);
  set.add(head_);
  return set;
}

PensieveTrainReport train_pensieve(Pensieve& policy, const trace::VideoGenerator& videos,
                                   const trace::PopulationModel& population,
                                   const PensieveTrainConfig& config, Rng& rng) {
  LINGXI_ASSERT(config.episodes > 0);
  nn::ParamSet params = policy.param_set();
  nn::Adam::Config adam_cfg;
  adam_cfg.lr = config.lr;
  nn::Adam adam(params.params, params.grads, adam_cfg);

  struct StepRecord {
    nn::Tensor features;
    std::size_t action;
    double reward;
  };

  std::vector<double> episode_returns;
  episode_returns.reserve(config.episodes);
  const QoeParams base_params = policy.params();

  for (std::size_t ep = 0; ep < config.episodes; ++ep) {
    // Fresh world per episode.
    trace::Video video = videos.sample(rng);
    const std::size_t segments = std::min(video.segment_count(), config.max_segments);
    const trace::NetworkProfile profile = population.sample(rng);
    auto bw = profile.make_session_model();

    if (config.randomize_params) {
      policy.set_params(config.space.from_unit(config.space.sample_unit(rng), base_params));
    }
    const double mu = policy.params().stall_penalty;
    const double lambda = policy.params().switch_penalty;

    sim::PlayerEnv env(sim::PlayerConfig{});
    sim::AbrObservation obs;
    obs.video = &video;
    obs.rtt = env.config().rtt;

    std::vector<StepRecord> steps;
    steps.reserve(segments);
    double prev_quality = -1.0;

    for (std::size_t k = 0; k < segments; ++k) {
      obs.buffer = env.buffer();
      obs.buffer_max = env.buffer_max();
      obs.next_segment = k;
      obs.first_segment = (k == 0);

      StepRecord rec;
      rec.action = policy.sample_action(obs, rng, &rec.features);

      const Kbps current_bw = bw->sample(env.wall_clock(), rng);
      const Bytes size = video.segment_size(k, rec.action);
      const sim::StepResult step = env.step(size, video.segment_duration(), current_bw);

      const double quality = video.ladder().quality(rec.action, config.metric);
      rec.reward = quality - mu * step.stall_time;
      if (prev_quality >= 0.0) rec.reward -= lambda * std::fabs(quality - prev_quality);
      prev_quality = quality;

      obs.throughput_history.push_back(current_bw);
      obs.download_time_history.push_back(step.download_time);
      if (obs.throughput_history.size() > kPensieveHistory) {
        obs.throughput_history.erase(obs.throughput_history.begin());
        obs.download_time_history.erase(obs.download_time_history.begin());
      }
      obs.last_level = rec.action;
      steps.push_back(std::move(rec));
    }

    // Discounted returns-to-go, normalized within the episode.
    std::vector<double> returns(steps.size());
    double g = 0.0;
    for (std::size_t k = steps.size(); k-- > 0;) {
      g = steps[k].reward + config.gamma * g;
      returns[k] = g;
    }
    episode_returns.push_back(returns.empty() ? 0.0 : returns.front());

    double mean_g = 0.0;
    for (double r : returns) mean_g += r;
    mean_g /= std::max<std::size_t>(1, returns.size());
    double var_g = 0.0;
    for (double r : returns) var_g += (r - mean_g) * (r - mean_g);
    const double sd_g = std::sqrt(var_g / std::max<std::size_t>(1, returns.size())) + 1e-6;

    params.zero_grad();
    for (std::size_t k = 0; k < steps.size(); ++k) {
      const double advantage = (returns[k] - mean_g) / sd_g;
      const nn::Tensor z = policy.logits(steps[k].features);
      nn::Tensor grad = nn::policy_gradient(z, steps[k].action, advantage);
      if (config.entropy_beta > 0.0) {
        // Entropy bonus: push logits toward higher entropy.
        const nn::Tensor p = nn::softmax(z);
        double entropy = 0.0;
        for (std::size_t a = 0; a < p.size(); ++a) {
          entropy -= p[a] * std::log(std::max(p[a], 1e-12));
        }
        for (std::size_t a = 0; a < p.size(); ++a) {
          grad[a] += config.entropy_beta * p[a] *
                     (std::log(std::max(p[a], 1e-12)) + entropy);
        }
      }
      grad.scale(1.0 / static_cast<double>(steps.size()));
      policy.backward(grad);
    }
    adam.step();
  }
  policy.set_params(base_params);

  PensieveTrainReport report;
  const std::size_t tail = std::max<std::size_t>(1, config.episodes / 10);
  for (std::size_t i = 0; i < tail; ++i) {
    report.initial_mean_return += episode_returns[i];
    report.final_mean_return += episode_returns[episode_returns.size() - 1 - i];
  }
  report.initial_mean_return /= static_cast<double>(tail);
  report.final_mean_return /= static_cast<double>(tail);
  return report;
}

}  // namespace lingxi::abr
