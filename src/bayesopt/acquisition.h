// Acquisition functions (minimization convention): larger = more worth
// sampling. The paper's OBO maximizes an improvement-rate acquisition; we
// provide EI (default), PI and LCB for the ablation benches.
#pragma once

namespace lingxi::bayesopt {

enum class AcquisitionKind { kExpectedImprovement, kProbabilityOfImprovement, kLowerConfidenceBound };

/// Expected improvement below `best_y` at a point with posterior
/// (mean, variance).
double expected_improvement(double mean, double variance, double best_y) noexcept;

/// Probability of improving on `best_y`.
double probability_of_improvement(double mean, double variance, double best_y) noexcept;

/// Negated lower confidence bound (kappa-weighted exploration), so larger
/// is still better for minimization.
double lower_confidence_bound(double mean, double variance, double kappa = 2.0) noexcept;

double acquisition(AcquisitionKind kind, double mean, double variance, double best_y) noexcept;

}  // namespace lingxi::bayesopt
