// Online Bayesian Optimization (§3.1, Algorithm 1 inner loop).
//
// Works in the unit cube of searched coordinates. Each OBO round:
//   next_candidate() -> maximize the acquisition over a random candidate
//                       grid plus local perturbations of the incumbent;
//   update(x, y)     -> add the Monte Carlo-evaluated exit rate to the GP.
// Warm start: the previous round's optimum is re-seeded as the first
// candidate (the paper's "leverages previously optimized configurations as
// initialization points").
#pragma once

#include <cstddef>
#include <vector>

#include "bayesopt/acquisition.h"
#include "bayesopt/gp.h"
#include "common/rng.h"

namespace lingxi::bayesopt {

class OnlineBayesOpt {
 public:
  struct Config {
    GpConfig gp;
    AcquisitionKind acquisition = AcquisitionKind::kExpectedImprovement;
    std::size_t candidate_grid = 256;  ///< random acquisition candidates
    std::size_t local_perturbations = 32;
    double perturbation_sd = 0.08;
    /// First `bootstrap_samples` candidates are space-filling random draws
    /// (the GP has nothing to say yet).
    std::size_t bootstrap_samples = 2;
  };

  OnlineBayesOpt(std::size_t dimensions, Config config);
  OnlineBayesOpt(std::size_t dimensions);  // default config

  /// Seed the search with a known-good starting point (warm start). Must be
  /// called before the first next_candidate() if used.
  void warm_start(const std::vector<double>& x);

  /// Propose the next point to evaluate.
  std::vector<double> next_candidate(Rng& rng);

  /// Feed back the measured objective (exit rate) for `x`.
  void update(const std::vector<double>& x, double y);

  /// Best observed point / value so far.
  const std::vector<double>& best() const { return gp_.best_x(); }
  double best_value() const { return gp_.best_y(); }
  std::size_t evaluations() const noexcept { return gp_.observations(); }

  /// Checkpointable optimizer state: the GP observation history and
  /// hyperparameters plus the warm-start bookkeeping. restore(state())
  /// continues the candidate sequence bitwise identically given the same
  /// Rng stream — what lets a snapshot cut across an OBO round.
  struct State {
    GpState gp;
    std::vector<double> warm_start;
    bool has_warm_start = false;
    bool warm_start_used = false;

    bool operator==(const State&) const = default;
  };

  State state() const;
  void restore(const State& state);

 private:
  std::size_t dims_;
  Config config_;
  GaussianProcess gp_;
  std::vector<double> warm_start_;
  bool has_warm_start_ = false;
  bool warm_start_used_ = false;
  // Acquisition scratch, reused round to round so the hot path is
  // allocation-free: the flat candidate panel, the batched predictions and
  // the GP solve workspace. Deliberately not part of State.
  std::vector<double> candidates_;
  std::vector<GpPrediction> predictions_;
  GpWorkspace ws_;
};

}  // namespace lingxi::bayesopt
