#include "bayesopt/obo.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/timer.h"

namespace lingxi::bayesopt {

OnlineBayesOpt::OnlineBayesOpt(std::size_t dimensions, Config config)
    : dims_(dimensions), config_(config), gp_(config.gp) {
  LINGXI_ASSERT(dims_ >= 1);
  LINGXI_ASSERT(config_.candidate_grid >= 1);
}

OnlineBayesOpt::OnlineBayesOpt(std::size_t dimensions)
    : OnlineBayesOpt(dimensions, Config{}) {}

void OnlineBayesOpt::warm_start(const std::vector<double>& x) {
  LINGXI_ASSERT(x.size() == dims_);
  warm_start_ = x;
  has_warm_start_ = true;
  warm_start_used_ = false;
}

std::vector<double> OnlineBayesOpt::next_candidate(Rng& rng) {
  OBS_TIMED("bayesopt.obo.acquisition_us");
  // The warm-start point is always evaluated first: it anchors the GP at the
  // previous optimum.
  if (has_warm_start_ && !warm_start_used_) {
    warm_start_used_ = true;
    return warm_start_;
  }
  if (gp_.observations() < config_.bootstrap_samples) {
    std::vector<double> x(dims_);
    for (double& v : x) v = rng.uniform();
    return x;
  }

  const double best_y = gp_.best_y();
  const std::vector<double>& incumbent = gp_.best_x();

  // Draw every candidate up front into one flat panel — grid points first,
  // then local perturbations of the incumbent, exactly the order the scalar
  // loop drew them (predict consumes no rng, so hoisting the draws leaves
  // the stream identical) — then evaluate the GP over the whole panel at
  // once and argmax the acquisition with the same strict-> first-max rule.
  const std::size_t total = config_.candidate_grid + config_.local_perturbations;
  candidates_.resize(total * dims_);
  double* c = candidates_.data();
  for (std::size_t i = 0; i < config_.candidate_grid; ++i) {
    for (std::size_t d = 0; d < dims_; ++d) *c++ = rng.uniform();
  }
  for (std::size_t i = 0; i < config_.local_perturbations; ++i) {
    for (std::size_t d = 0; d < dims_; ++d) {
      *c++ = std::clamp(incumbent[d] + rng.normal(0.0, config_.perturbation_sd),
                        0.0, 1.0);
    }
  }

  predictions_.resize(total);
  gp_.predict_batch(candidates_.data(), total, dims_, predictions_.data(), ws_);

  std::size_t best = total;  // sentinel: no candidate taken yet
  double best_acq = -1e300;
  for (std::size_t i = 0; i < total; ++i) {
    const double a = acquisition(config_.acquisition, predictions_[i].mean,
                                 predictions_[i].variance, best_y);
    if (a > best_acq) {
      best_acq = a;
      best = i;
    }
  }
  LINGXI_ASSERT(best < total);
  return std::vector<double>(candidates_.begin() + best * dims_,
                             candidates_.begin() + (best + 1) * dims_);
}

OnlineBayesOpt::State OnlineBayesOpt::state() const {
  State s;
  s.gp = gp_.state();
  s.warm_start = warm_start_;
  s.has_warm_start = has_warm_start_;
  s.warm_start_used = warm_start_used_;
  return s;
}

void OnlineBayesOpt::restore(const State& state) {
  if (state.has_warm_start) LINGXI_ASSERT(state.warm_start.size() == dims_);
  for (const auto& x : state.gp.xs) LINGXI_ASSERT(x.size() == dims_);
  gp_.restore(state.gp);
  warm_start_ = state.warm_start;
  has_warm_start_ = state.has_warm_start;
  warm_start_used_ = state.warm_start_used;
}

void OnlineBayesOpt::update(const std::vector<double>& x, double y) {
  LINGXI_ASSERT(x.size() == dims_);
  gp_.observe(x, y);
}

}  // namespace lingxi::bayesopt
