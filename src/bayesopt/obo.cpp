#include "bayesopt/obo.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/timer.h"

namespace lingxi::bayesopt {

OnlineBayesOpt::OnlineBayesOpt(std::size_t dimensions, Config config)
    : dims_(dimensions), config_(config), gp_(config.gp) {
  LINGXI_ASSERT(dims_ >= 1);
  LINGXI_ASSERT(config_.candidate_grid >= 1);
}

OnlineBayesOpt::OnlineBayesOpt(std::size_t dimensions)
    : OnlineBayesOpt(dimensions, Config{}) {}

void OnlineBayesOpt::warm_start(const std::vector<double>& x) {
  LINGXI_ASSERT(x.size() == dims_);
  warm_start_ = x;
  has_warm_start_ = true;
  warm_start_used_ = false;
}

std::vector<double> OnlineBayesOpt::next_candidate(Rng& rng) {
  OBS_TIMED("bayesopt.obo.acquisition_us");
  // The warm-start point is always evaluated first: it anchors the GP at the
  // previous optimum.
  if (has_warm_start_ && !warm_start_used_) {
    warm_start_used_ = true;
    return warm_start_;
  }
  auto random_point = [&] {
    std::vector<double> x(dims_);
    for (double& v : x) v = rng.uniform();
    return x;
  };
  if (gp_.observations() < config_.bootstrap_samples) return random_point();

  const double best_y = gp_.best_y();
  const std::vector<double>& incumbent = gp_.best_x();

  std::vector<double> best_x;
  double best_acq = -1e300;
  auto consider = [&](std::vector<double> x) {
    const GpPrediction p = gp_.predict(x);
    const double a = acquisition(config_.acquisition, p.mean, p.variance, best_y);
    if (a > best_acq) {
      best_acq = a;
      best_x = std::move(x);
    }
  };

  for (std::size_t i = 0; i < config_.candidate_grid; ++i) consider(random_point());
  for (std::size_t i = 0; i < config_.local_perturbations; ++i) {
    std::vector<double> x = incumbent;
    for (double& v : x) {
      v = std::clamp(v + rng.normal(0.0, config_.perturbation_sd), 0.0, 1.0);
    }
    consider(std::move(x));
  }
  LINGXI_ASSERT(!best_x.empty());
  return best_x;
}

OnlineBayesOpt::State OnlineBayesOpt::state() const {
  State s;
  s.gp = gp_.state();
  s.warm_start = warm_start_;
  s.has_warm_start = has_warm_start_;
  s.warm_start_used = warm_start_used_;
  return s;
}

void OnlineBayesOpt::restore(const State& state) {
  if (state.has_warm_start) LINGXI_ASSERT(state.warm_start.size() == dims_);
  for (const auto& x : state.gp.xs) LINGXI_ASSERT(x.size() == dims_);
  gp_.restore(state.gp);
  warm_start_ = state.warm_start;
  has_warm_start_ = state.has_warm_start;
  warm_start_used_ = state.warm_start_used;
}

void OnlineBayesOpt::update(const std::vector<double>& x, double y) {
  LINGXI_ASSERT(x.size() == dims_);
  gp_.observe(x, y);
}

}  // namespace lingxi::bayesopt
