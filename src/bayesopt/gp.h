// Gaussian-process regression surrogate (§3.1).
//
// Squared-exponential kernel with observation noise, exact inference via
// Cholesky factorization. observe() extends the factor with one new row
// (O(n^2) incremental update); the factorization is row-ordered, so the
// extended factor is bitwise identical to a from-scratch refit — pinned by
// the IncrementalMatchesFullRefit property and forcible via the
// LINGXI_GP_FULL_REFIT escape hatch.
#pragma once

#include <cstddef>
#include <vector>

namespace lingxi::bayesopt {

struct GpConfig {
  double length_scale = 0.25;  ///< in unit-cube coordinates
  double signal_variance = 1.0;
  double noise_variance = 1e-4;

  bool operator==(const GpConfig&) const = default;
};

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

/// Caller-owned scratch for predict()/predict_batch(): the k_star panel and
/// the triangular-solve buffer. Reusing one workspace across calls keeps the
/// acquisition hot path allocation-free (the buffers only ever grow).
struct GpWorkspace {
  std::vector<double> panel;  ///< [n][count] k_star, overwritten by L^-1 k_star
};

/// Checkpointable GP state: the observation history plus the kernel
/// hyperparameters. The Cholesky factors are deliberately NOT part of the
/// state — they are a pure function of (config, xs, ys), and restore()
/// replays the observations through the same incremental row-extension path
/// observe() uses, recomputing them bitwise identically.
struct GpState {
  GpConfig config;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  bool operator==(const GpState&) const = default;
};

class GaussianProcess {
 public:
  GaussianProcess();  // default config
  explicit GaussianProcess(GpConfig config);

  /// Add one observation y = f(x). Points must share a dimension. Extends the
  /// Cholesky factor with one row (O(n^2)) and re-solves for alpha; the
  /// resulting factor is bitwise identical to a full O(n^3) refit.
  void observe(const std::vector<double>& x, double y);

  /// Posterior at `x` (prior if no observations yet). Targets are internally
  /// centered on their mean, so the prior mean tracks the data. The
  /// workspace overload is allocation-free once the workspace has grown.
  GpPrediction predict(const std::vector<double>& x) const;
  GpPrediction predict(const std::vector<double>& x, GpWorkspace& ws) const;

  /// Posterior at `count` points of dimension `dim`, packed row-major in
  /// `candidates`. Evaluates the k_star panel in one pass and shares the
  /// triangular solve across candidates; each candidate's result is bitwise
  /// identical to a scalar predict() call (lanes across candidates, never
  /// along the reduction). Zero allocations once `ws` has grown.
  void predict_batch(const double* candidates, std::size_t count, std::size_t dim,
                     GpPrediction* out, GpWorkspace& ws) const;

  std::size_t observations() const noexcept { return xs_.size(); }
  /// Lowest observed target and its location (minimization convention).
  /// Tracked at observe() time — O(1), first minimum wins on ties exactly
  /// like the std::min_element scan it replaced.
  double best_y() const;
  const std::vector<double>& best_x() const;

  /// Checkpoint / resume (see GpState): restore(state()) reproduces the
  /// identical posterior — predictions and best_x/best_y match bitwise.
  GpState state() const;
  void restore(const GpState& state);

  /// Packed lower-triangular Cholesky factor (row i at offset i*(i+1)/2) and
  /// the solved alpha = K^-1 (y - mean). Exposed so tests can pin the
  /// incremental-update path against a full refit exactly.
  const std::vector<double>& factor() const noexcept { return chol_; }
  const std::vector<double>& alpha() const noexcept { return alpha_; }

  /// When true (or when LINGXI_GP_FULL_REFIT is set in the environment),
  /// observe()/restore() refactor from scratch instead of extending the
  /// factor — the escape hatch the equality property is pinned against.
  static void set_full_refit_for_testing(bool force);

 private:
  void refit();
  void extend_factor(std::size_t i);
  void recompute_alpha();
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;
  static bool full_refit_forced();

  GpConfig config_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  double y_mean_ = 0.0;
  std::size_t best_index_ = 0;
  // Cholesky factor L of (K + noise*I), packed lower triangular (row i lives
  // at [i*(i+1)/2, i*(i+1)/2 + i]) so extending by one row is an append, and
  // alpha = K^-1 (y - mean).
  std::vector<double> chol_;
  std::vector<double> alpha_;
};

}  // namespace lingxi::bayesopt
