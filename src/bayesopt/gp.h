// Gaussian-process regression surrogate (§3.1).
//
// Squared-exponential kernel with observation noise, exact inference via
// Cholesky factorization. Observation counts in LingXi are tiny (one OBO
// round samples ~10 candidates), so O(n^3) refits are negligible.
#pragma once

#include <cstddef>
#include <vector>

namespace lingxi::bayesopt {

struct GpConfig {
  double length_scale = 0.25;  ///< in unit-cube coordinates
  double signal_variance = 1.0;
  double noise_variance = 1e-4;

  bool operator==(const GpConfig&) const = default;
};

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

/// Checkpointable GP state: the observation history plus the kernel
/// hyperparameters. The Cholesky factors are deliberately NOT part of the
/// state — every observe() refits from scratch, so they are a pure function
/// of (config, xs, ys) and restore() recomputes them bitwise identically.
struct GpState {
  GpConfig config;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  bool operator==(const GpState&) const = default;
};

class GaussianProcess {
 public:
  GaussianProcess();  // default config
  explicit GaussianProcess(GpConfig config);

  /// Add one observation y = f(x). Points must share a dimension.
  void observe(const std::vector<double>& x, double y);

  /// Posterior at `x` (prior if no observations yet). Targets are internally
  /// centered on their mean, so the prior mean tracks the data.
  GpPrediction predict(const std::vector<double>& x) const;

  std::size_t observations() const noexcept { return xs_.size(); }
  /// Lowest observed target and its location (minimization convention).
  double best_y() const;
  const std::vector<double>& best_x() const;

  /// Checkpoint / resume (see GpState): restore(state()) reproduces the
  /// identical posterior — predictions and best_x/best_y match bitwise.
  GpState state() const;
  void restore(const GpState& state);

 private:
  void refit();
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  GpConfig config_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  double y_mean_ = 0.0;
  // Cholesky factor L of (K + noise*I) and alpha = K^-1 (y - mean).
  std::vector<double> chol_;   // row-major lower triangular, n x n
  std::vector<double> alpha_;
};

}  // namespace lingxi::bayesopt
