#include "bayesopt/gp.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "obs/timer.h"

namespace lingxi::bayesopt {

GaussianProcess::GaussianProcess() : GaussianProcess(GpConfig{}) {}

GaussianProcess::GaussianProcess(GpConfig config) : config_(config) {
  LINGXI_ASSERT(config_.length_scale > 0.0);
  LINGXI_ASSERT(config_.signal_variance > 0.0);
  LINGXI_ASSERT(config_.noise_variance >= 0.0);
}

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  LINGXI_DASSERT(a.size() == b.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return config_.signal_variance *
         std::exp(-0.5 * d2 / (config_.length_scale * config_.length_scale));
}

void GaussianProcess::observe(const std::vector<double>& x, double y) {
  LINGXI_ASSERT(!x.empty());
  if (!xs_.empty()) LINGXI_ASSERT(x.size() == xs_.front().size());
  xs_.push_back(x);
  ys_.push_back(y);
  refit();
}

void GaussianProcess::refit() {
  // The O(n^3) cost ROADMAP item 3 wants to attack — spanned so a trace
  // shows refits stacked inside optimization rounds.
  OBS_SPAN("obo.refit");
  OBS_TIMED("bayesopt.gp.refit_us");
  const std::size_t n = xs_.size();
  y_mean_ = 0.0;
  for (double y : ys_) y_mean_ += y;
  y_mean_ /= static_cast<double>(n);

  // K + noise*I, then in-place Cholesky (lower).
  chol_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double v = kernel(xs_[i], xs_[j]);
      if (i == j) v += config_.noise_variance + 1e-10;  // jitter
      chol_[i * n + j] = v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = chol_[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= chol_[i * n + k] * chol_[j * n + k];
      if (i == j) {
        LINGXI_ASSERT(sum > 0.0);
        chol_[i * n + j] = std::sqrt(sum);
      } else {
        chol_[i * n + j] = sum / chol_[j * n + j];
      }
    }
  }
  // alpha = K^-1 (y - mean) via two triangular solves.
  alpha_.assign(n, 0.0);
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = ys_[i] - y_mean_;
    for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * n + k] * z[k];
    z[i] = sum / chol_[i * n + i];
  }
  for (std::size_t i = n; i-- > 0;) {
    double sum = z[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= chol_[k * n + i] * alpha_[k];
    alpha_[i] = sum / chol_[i * n + i];
  }
}

GpPrediction GaussianProcess::predict(const std::vector<double>& x) const {
  GpPrediction p;
  const std::size_t n = xs_.size();
  if (n == 0) {
    p.mean = 0.0;
    p.variance = config_.signal_variance;
    return p;
  }
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(x, xs_[i]);

  p.mean = y_mean_;
  for (std::size_t i = 0; i < n; ++i) p.mean += k_star[i] * alpha_[i];

  // v = L^-1 k_star; var = k(x,x) - v.v
  std::vector<double> v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = k_star[i];
    for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * n + k] * v[k];
    v[i] = sum / chol_[i * n + i];
  }
  double vv = 0.0;
  for (double vi : v) vv += vi * vi;
  p.variance = std::max(0.0, kernel(x, x) - vv);
  return p;
}

GpState GaussianProcess::state() const {
  GpState s;
  s.config = config_;
  s.xs = xs_;
  s.ys = ys_;
  return s;
}

void GaussianProcess::restore(const GpState& state) {
  LINGXI_ASSERT(state.xs.size() == state.ys.size());
  config_ = state.config;
  xs_ = state.xs;
  ys_ = state.ys;
  if (xs_.empty()) {
    y_mean_ = 0.0;
    chol_.clear();
    alpha_.clear();
  } else {
    refit();
  }
}

double GaussianProcess::best_y() const {
  LINGXI_ASSERT(!ys_.empty());
  return *std::min_element(ys_.begin(), ys_.end());
}

const std::vector<double>& GaussianProcess::best_x() const {
  LINGXI_ASSERT(!ys_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    if (ys_[i] < ys_[best]) best = i;
  }
  return xs_[best];
}

}  // namespace lingxi::bayesopt
