#include "bayesopt/gp.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/assert.h"
#include "obs/timer.h"

namespace lingxi::bayesopt {
namespace {

// Offset of packed lower-triangular row i.
constexpr std::size_t tri(std::size_t i) { return i * (i + 1) / 2; }

// -1 = read LINGXI_GP_FULL_REFIT on first use, 0/1 = decided.
std::atomic<int> g_full_refit{-1};

}  // namespace

void GaussianProcess::set_full_refit_for_testing(bool force) {
  g_full_refit.store(force ? 1 : 0, std::memory_order_relaxed);
}

bool GaussianProcess::full_refit_forced() {
  int v = g_full_refit.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("LINGXI_GP_FULL_REFIT");
    v = (e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) ? 1 : 0;
    g_full_refit.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

GaussianProcess::GaussianProcess() : GaussianProcess(GpConfig{}) {}

GaussianProcess::GaussianProcess(GpConfig config) : config_(config) {
  LINGXI_ASSERT(config_.length_scale > 0.0);
  LINGXI_ASSERT(config_.signal_variance > 0.0);
  LINGXI_ASSERT(config_.noise_variance >= 0.0);
}

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  LINGXI_DASSERT(a.size() == b.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return config_.signal_variance *
         std::exp(-0.5 * d2 / (config_.length_scale * config_.length_scale));
}

void GaussianProcess::observe(const std::vector<double>& x, double y) {
  LINGXI_ASSERT(!x.empty());
  if (!xs_.empty()) LINGXI_ASSERT(x.size() == xs_.front().size());
  xs_.push_back(x);
  ys_.push_back(y);
  // Strict < keeps the first minimum on ties, matching the min_element scan
  // this running index replaced.
  if (ys_.size() == 1 || y < ys_[best_index_]) best_index_ = ys_.size() - 1;
  if (full_refit_forced()) {
    refit();
  } else {
    extend_factor(xs_.size() - 1);
    recompute_alpha();
  }
}

// Appends row i to the packed factor. A row-ordered Cholesky computes row i
// from rows <= i only, so rows 0..i-1 are exactly the values a from-scratch
// factorization of the extended matrix would produce — extending is bitwise
// identical to refitting (the IncrementalMatchesFullRefit property pins
// this). Cost: O(i^2) instead of O(i^3).
void GaussianProcess::extend_factor(std::size_t i) {
  // Still spanned as "obo.refit": it IS the round's refit work, just O(n^2).
  OBS_SPAN("obo.refit");
  OBS_TIMED("bayesopt.gp.refit_us");
  LINGXI_ASSERT(chol_.size() == tri(i));
  chol_.resize(tri(i) + i + 1);
  double* row = chol_.data() + tri(i);
  for (std::size_t j = 0; j <= i; ++j) row[j] = kernel(xs_[i], xs_[j]);
  row[i] += config_.noise_variance + 1e-10;  // jitter
  for (std::size_t j = 0; j < i; ++j) {
    double sum = row[j];
    const double* rowj = chol_.data() + tri(j);
    for (std::size_t k = 0; k < j; ++k) sum -= row[k] * rowj[k];
    row[j] = sum / rowj[j];
  }
  double sum = row[i];
  for (std::size_t k = 0; k < i; ++k) sum -= row[k] * row[k];
  LINGXI_ASSERT(sum > 0.0);
  row[i] = std::sqrt(sum);
}

// alpha = K^-1 (y - mean) via two triangular solves, O(n^2). The forward
// solve writes z into alpha_ and the back substitution runs in place (entry
// i only reads already-updated entries k > i), so no scratch is needed. The
// op sequence matches the full refit()'s z/alpha loops exactly.
void GaussianProcess::recompute_alpha() {
  const std::size_t n = xs_.size();
  y_mean_ = 0.0;
  for (double y : ys_) y_mean_ += y;
  y_mean_ /= static_cast<double>(n);

  alpha_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = ys_[i] - y_mean_;
    const double* row = chol_.data() + tri(i);
    for (std::size_t k = 0; k < i; ++k) sum -= row[k] * alpha_[k];
    alpha_[i] = sum / row[i];
  }
  for (std::size_t i = n; i-- > 0;) {
    double sum = alpha_[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= chol_[tri(k) + i] * alpha_[k];
    alpha_[i] = sum / chol_[tri(i) + i];
  }
}

// Full O(n^3) refit — the LINGXI_GP_FULL_REFIT escape hatch, and the
// reference the incremental path is pinned against.
void GaussianProcess::refit() {
  OBS_SPAN("obo.refit");
  OBS_TIMED("bayesopt.gp.refit_us");
  const std::size_t n = xs_.size();

  // K + noise*I, then in-place Cholesky (lower, packed rows).
  chol_.assign(tri(n), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double v = kernel(xs_[i], xs_[j]);
      if (i == j) v += config_.noise_variance + 1e-10;  // jitter
      chol_[tri(i) + j] = v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double* row = chol_.data() + tri(i);
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = row[j];
      const double* rowj = chol_.data() + tri(j);
      for (std::size_t k = 0; k < j; ++k) sum -= row[k] * rowj[k];
      if (i == j) {
        LINGXI_ASSERT(sum > 0.0);
        row[j] = std::sqrt(sum);
      } else {
        row[j] = sum / rowj[j];
      }
    }
  }
  recompute_alpha();
}

GpPrediction GaussianProcess::predict(const std::vector<double>& x) const {
  GpWorkspace ws;
  return predict(x, ws);
}

GpPrediction GaussianProcess::predict(const std::vector<double>& x,
                                      GpWorkspace& ws) const {
  GpPrediction p;
  predict_batch(x.data(), 1, x.size(), &p, ws);
  return p;
}

void GaussianProcess::predict_batch(const double* candidates, std::size_t count,
                                    std::size_t dim, GpPrediction* out,
                                    GpWorkspace& ws) const {
  if (count == 0) return;
  const std::size_t n = xs_.size();
  if (n == 0) {
    for (std::size_t c = 0; c < count; ++c) {
      out[c].mean = 0.0;
      out[c].variance = config_.signal_variance;
    }
    return;
  }
  LINGXI_ASSERT(dim == xs_.front().size());

  // k_star panel, candidate-major within a row: panel[i*count + c] =
  // k(x_c, xs_i). One pass over the training points for all candidates, with
  // the kernel spelled exactly as kernel() spells it so the values match the
  // scalar path bitwise.
  ws.panel.resize(n * count);
  const double l2 = config_.length_scale * config_.length_scale;
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = xs_[i].data();
    double* dst = ws.panel.data() + i * count;
    for (std::size_t c = 0; c < count; ++c) {
      const double* xc = candidates + c * dim;
      double d2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = xc[d] - xi[d];
        d2 += diff * diff;
      }
      dst[c] = config_.signal_variance * std::exp(-0.5 * d2 / l2);
    }
  }

  // mean_c = y_mean + sum_i k_star[i] * alpha[i], accumulated in ascending i
  // for every candidate — the scalar predict()'s loop order per lane.
  for (std::size_t c = 0; c < count; ++c) out[c].mean = y_mean_;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = alpha_[i];
    const double* ks = ws.panel.data() + i * count;
    for (std::size_t c = 0; c < count; ++c) out[c].mean += ks[c] * a;
  }

  // In-place forward solve V = L^-1 K_star: panel row i holds k_star values
  // until it is transformed, and only already-transformed rows k < i are
  // read. Per candidate the accumulation runs k = 0..i-1 in order — the
  // scalar solve's sequence exactly, with lanes across candidates.
  for (std::size_t i = 0; i < n; ++i) {
    const double* lrow = chol_.data() + tri(i);
    double* vi = ws.panel.data() + i * count;
    for (std::size_t k = 0; k < i; ++k) {
      const double l = lrow[k];
      const double* vk = ws.panel.data() + k * count;
      for (std::size_t c = 0; c < count; ++c) vi[c] -= l * vk[c];
    }
    const double diag = lrow[i];
    for (std::size_t c = 0; c < count; ++c) vi[c] /= diag;
  }

  // var_c = max(0, k(x,x) - vv) with vv = sum_i v_i^2 accumulated in
  // ascending i and subtracted once — the scalar path's exact shape. The
  // prior term k(x,x) reduces to signal_variance exactly (d2 == 0.0 gives
  // exp(-0.0) == 1.0), matching kernel(x, x) bitwise. out[c].variance holds
  // vv until the final fixup.
  for (std::size_t c = 0; c < count; ++c) out[c].variance = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* vi = ws.panel.data() + i * count;
    for (std::size_t c = 0; c < count; ++c) out[c].variance += vi[c] * vi[c];
  }
  for (std::size_t c = 0; c < count; ++c) {
    out[c].variance = std::max(0.0, config_.signal_variance - out[c].variance);
  }
}

GpState GaussianProcess::state() const {
  GpState s;
  s.config = config_;
  s.xs = xs_;
  s.ys = ys_;
  return s;
}

void GaussianProcess::restore(const GpState& state) {
  LINGXI_ASSERT(state.xs.size() == state.ys.size());
  config_ = state.config;
  xs_ = state.xs;
  ys_ = state.ys;
  y_mean_ = 0.0;
  best_index_ = 0;
  chol_.clear();
  alpha_.clear();
  if (xs_.empty()) return;
  // Replay through the same incremental row-extension path observe() uses —
  // identical op sequence, so checkpoint/resume stays bitwise.
  if (full_refit_forced()) {
    refit();
  } else {
    chol_.reserve(tri(xs_.size()));
    for (std::size_t i = 0; i < xs_.size(); ++i) extend_factor(i);
    recompute_alpha();
  }
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    if (ys_[i] < ys_[best_index_]) best_index_ = i;
  }
}

double GaussianProcess::best_y() const {
  LINGXI_ASSERT(!ys_.empty());
  return ys_[best_index_];
}

const std::vector<double>& GaussianProcess::best_x() const {
  LINGXI_ASSERT(!ys_.empty());
  return xs_[best_index_];
}

}  // namespace lingxi::bayesopt
