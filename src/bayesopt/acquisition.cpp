#include "bayesopt/acquisition.h"

#include <cmath>

namespace lingxi::bayesopt {
namespace {

double normal_pdf(double z) noexcept {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double normal_cdf(double z) noexcept { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

double expected_improvement(double mean, double variance, double best_y) noexcept {
  const double sd = std::sqrt(variance);
  if (sd < 1e-12) return best_y - mean > 0.0 ? best_y - mean : 0.0;
  const double z = (best_y - mean) / sd;
  return (best_y - mean) * normal_cdf(z) + sd * normal_pdf(z);
}

double probability_of_improvement(double mean, double variance, double best_y) noexcept {
  const double sd = std::sqrt(variance);
  if (sd < 1e-12) return mean < best_y ? 1.0 : 0.0;
  return normal_cdf((best_y - mean) / sd);
}

double lower_confidence_bound(double mean, double variance, double kappa) noexcept {
  return -(mean - kappa * std::sqrt(variance));
}

double acquisition(AcquisitionKind kind, double mean, double variance,
                   double best_y) noexcept {
  switch (kind) {
    case AcquisitionKind::kExpectedImprovement:
      return expected_improvement(mean, variance, best_y);
    case AcquisitionKind::kProbabilityOfImprovement:
      return probability_of_improvement(mean, variance, best_y);
    case AcquisitionKind::kLowerConfidenceBound:
      return lower_confidence_bound(mean, variance);
  }
  return 0.0;
}

}  // namespace lingxi::bayesopt
