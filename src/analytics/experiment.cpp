#include "analytics/experiment.h"

#include <cmath>

#include "common/assert.h"
#include "user/data_driven.h"

namespace lingxi::analytics {
namespace {

constexpr Seconds kStallThreshold = 0.05;

/// Count stall events that were followed by an exit (0 or 1 per session —
/// the session ends at the exit).
std::size_t stall_exit_count(const sim::SessionResult& session) {
  return sim::exited_during_stall(session, kStallThreshold) ? 1u : 0u;
}

}  // namespace

ExperimentConfig::ExperimentConfig() {
  // The production A/B test tunes HYB's beta (§5.3): search beta only.
  lingxi.space.optimize_stall = false;
  lingxi.space.optimize_switch = false;
  lingxi.space.optimize_beta = true;
}

PopulationExperiment::PopulationExperiment(
    ExperimentConfig config, AbrFactory abr_factory,
    std::function<predictor::HybridExitPredictor()> make_predictor)
    : config_(std::move(config)),
      abr_factory_(std::move(abr_factory)),
      make_predictor_(std::move(make_predictor)) {
  LINGXI_ASSERT(abr_factory_ != nullptr);
  LINGXI_ASSERT(make_predictor_ != nullptr);
  LINGXI_ASSERT(config_.users > 0 && config_.days > 0);
}

ExperimentResult PopulationExperiment::run(bool treatment, std::uint64_t seed) const {
  ExperimentResult result;
  result.daily.resize(config_.days);

  const user::UserPopulation population(config_.population);
  const trace::PopulationModel networks(config_.network);
  const trace::VideoGenerator videos(config_.video);
  const sim::SessionSimulator simulator(config_.session);
  const trace::BitrateLadder& ladder = config_.video.ladder;

  for (std::size_t u = 0; u < config_.users; ++u) {
    // Population draws are arm-independent (paired experiment): same user
    // and network on both arms for a given seed.
    Rng pop_rng(mix_seed(seed, u, 0));
    const user::DataDrivenUser::Config base_user = population.sample_config(pop_rng);
    const trace::NetworkProfile profile = networks.sample(pop_rng);

    auto abr = abr_factory_();
    const abr::QoeParams default_params = config_.lingxi.default_params;
    abr->set_params(default_params);

    std::unique_ptr<core::LingXi> lingxi;
    if (treatment) {
      lingxi = std::make_unique<core::LingXi>(config_.lingxi, make_predictor_(), ladder);
    }

    std::size_t user_stall_event_counter = 0;

    for (std::size_t day = 0; day < config_.days; ++day) {
      // Day-to-day tolerance drift, identical across arms.
      user::DataDrivenUser::Config day_user_cfg = base_user;
      if (config_.drift_user_tolerance && day > 0) {
        Rng drift_rng(mix_seed(seed, u, 100 + day));
        day_user_cfg.tolerance =
            std::max(0.5, base_user.tolerance + population.sample_drift(drift_rng));
      }
      user::DataDrivenUser user_model(day_user_cfg);

      const bool lingxi_active = treatment && day >= config_.intervention_day;

      UserDayRecord rec;
      rec.user = u;
      rec.day = day;
      double param_beta_sum = 0.0, param_stall_sum = 0.0, bw_sum = 0.0;
      std::size_t bw_count = 0;

      for (std::size_t s = 0; s < config_.sessions_per_user_day; ++s) {
        // Paired arms: both arms replay the same per-session world (video,
        // bandwidth path, exit coin flips), so the treatment series differs
        // from control only through LingXi's parameter changes. This is the
        // variance-reduction analogue of the paper's 30M-user population.
        Rng session_rng(mix_seed(seed, u, (day << 16) | (s + 1)));
        const trace::Video video = videos.sample(session_rng);
        auto bw = profile.make_session_model();

        if (!lingxi_active) abr->set_params(default_params);
        const sim::SessionResult session =
            simulator.run(video, *abr, *bw, &user_model, session_rng);

        result.daily[day].add(session);
        rec.watch_time += session.watch_time;
        rec.stall_time += session.total_stall;
        rec.stall_events += static_cast<double>(session.stall_events);
        rec.stall_exits += static_cast<double>(stall_exit_count(session));
        for (const auto& seg : session.segments) {
          bw_sum += seg.throughput;
          ++bw_count;
        }

        if (treatment) {
          // Engagement state accumulates from day 0 so the predictor has
          // history when the intervention starts.
          lingxi->begin_session();
          for (const auto& seg : session.segments) lingxi->on_segment(seg);
          lingxi->end_session(sim::exited_during_stall(session, kStallThreshold));

          if (lingxi_active) {
            const Seconds buffer_seed =
                session.segments.empty() ? 0.0 : session.segments.back().buffer_after;
            lingxi->maybe_optimize(*abr, buffer_seed, session_rng);
          }
        }

        if (config_.record_stall_events && treatment && lingxi_active) {
          for (const auto& seg : session.segments) {
            if (seg.stall_time > kStallThreshold) {
              StallEventRecord ev;
              ev.user = u;
              ev.event_index = user_stall_event_counter++;
              ev.stall_time = seg.stall_time;
              ev.param_beta_after = abr->params().hyb_beta;
              ev.param_stall_after = abr->params().stall_penalty;
              ev.exited = session.exited && seg.index + 2 >= session.segments.size();
              ev.user_tolerance = day_user_cfg.tolerance;
              result.stall_events.push_back(ev);
            }
          }
        }

        param_beta_sum += abr->params().hyb_beta;
        param_stall_sum += abr->params().stall_penalty;
      }

      rec.mean_beta = param_beta_sum / static_cast<double>(config_.sessions_per_user_day);
      rec.mean_stall_penalty =
          param_stall_sum / static_cast<double>(config_.sessions_per_user_day);
      rec.mean_bandwidth = bw_count > 0 ? bw_sum / static_cast<double>(bw_count) : 0.0;
      result.user_days.push_back(rec);
    }
  }
  return result;
}

std::vector<double> relative_daily_gap(const std::vector<MetricAccumulator>& treatment,
                                       const std::vector<MetricAccumulator>& control,
                                       double (MetricAccumulator::*metric)() const) {
  LINGXI_ASSERT(treatment.size() == control.size());
  std::vector<double> gaps;
  gaps.reserve(control.size());
  for (std::size_t d = 0; d < control.size(); ++d) {
    const double c = (control[d].*metric)();
    const double t = (treatment[d].*metric)();
    gaps.push_back(c != 0.0 ? (t - c) / c : 0.0);
  }
  return gaps;
}

std::vector<double> relative_daily_gap(const ExperimentResult& treatment,
                                       const ExperimentResult& control,
                                       double (MetricAccumulator::*metric)() const) {
  return relative_daily_gap(treatment.daily, control.daily, metric);
}

}  // namespace lingxi::analytics
