#include "analytics/experiment.h"

#include "common/assert.h"
#include "sim/fleet_runner.h"
#include "telemetry/sink.h"

namespace lingxi::analytics {
namespace {

constexpr Seconds kStallThreshold = 0.05;

/// Count stall events that were followed by an exit (0 or 1 per session —
/// the session ends at the exit).
std::size_t stall_exit_count(const sim::SessionResult& session) {
  return sim::exited_during_stall(session, kStallThreshold) ? 1u : 0u;
}

/// In-memory telemetry sink assembling an ExperimentResult from FleetRunner
/// worker callbacks. Per-user buffers are written without locks — the
/// FleetRunner contract guarantees calls for one user come from a single
/// worker in (day, session) order, even under the cross-user wave scheduler
/// where a shard's users interleave between optimization park points — and
/// merged in user order afterwards, so the assembled result is identical at
/// any thread count, shard size and scheduler mode.
class ExperimentSink final : public telemetry::TelemetrySink {
 public:
  ExperimentSink(const ExperimentConfig& config, bool treatment)
      : config_(config), treatment_(treatment), users_(config.users) {
    for (auto& user : users_) user.days.resize(config_.days);
  }

  void begin_fleet(const sim::FleetConfig&, std::uint64_t) override {}

  void record_session(const telemetry::SessionContext& ctx,
                      const sim::SessionResult& session) override {
    UserBuffer& user = users_[ctx.user_index];
    DayBuffer& day = user.days[ctx.day];
    day.metrics.add(session);

    UserDayRecord& rec = day.rec;
    rec.watch_time += session.watch_time;
    rec.stall_time += session.total_stall;
    rec.stall_events += static_cast<double>(session.stall_events);
    rec.stall_exits += static_cast<double>(stall_exit_count(session));
    for (const auto& seg : session.segments) {
      day.bw_sum += seg.throughput;
      ++day.bw_count;
    }
    day.param_beta_sum += ctx.params_after.hyb_beta;
    day.param_stall_sum += ctx.params_after.stall_penalty;

    if (config_.record_stall_events && treatment_ && ctx.day >= config_.intervention_day) {
      for (const auto& seg : session.segments) {
        if (seg.stall_time > kStallThreshold) {
          StallEventRecord ev;
          ev.user = ctx.user_index;
          ev.event_index = user.stall_event_counter++;
          ev.stall_time = seg.stall_time;
          ev.param_beta_after = ctx.params_after.hyb_beta;
          ev.param_stall_after = ctx.params_after.stall_penalty;
          ev.exited = session.exited && seg.index + 2 >= session.segments.size();
          ev.user_tolerance = ctx.user_tolerance;
          user.stall_events.push_back(ev);
        }
      }
    }
  }

  void record_user(const telemetry::UserTelemetry&) override {}

  /// Deterministic user-order merge into the public result shape.
  ExperimentResult finish() {
    ExperimentResult result;
    result.daily.resize(config_.days);
    const double sessions = static_cast<double>(config_.sessions_per_user_day);
    for (std::size_t u = 0; u < users_.size(); ++u) {
      UserBuffer& user = users_[u];
      for (std::size_t d = 0; d < config_.days; ++d) {
        DayBuffer& day = user.days[d];
        result.daily[d].merge(day.metrics);
        day.rec.user = u;
        day.rec.day = d;
        day.rec.mean_beta = day.param_beta_sum / sessions;
        day.rec.mean_stall_penalty = day.param_stall_sum / sessions;
        day.rec.mean_bandwidth =
            day.bw_count > 0 ? day.bw_sum / static_cast<double>(day.bw_count) : 0.0;
        result.user_days.push_back(day.rec);
      }
      result.stall_events.insert(result.stall_events.end(), user.stall_events.begin(),
                                 user.stall_events.end());
    }
    return result;
  }

 private:
  struct DayBuffer {
    MetricAccumulator metrics;
    UserDayRecord rec;
    double param_beta_sum = 0.0;
    double param_stall_sum = 0.0;
    double bw_sum = 0.0;
    std::size_t bw_count = 0;
  };
  struct UserBuffer {
    std::vector<DayBuffer> days;
    std::vector<StallEventRecord> stall_events;
    std::size_t stall_event_counter = 0;
  };

  const ExperimentConfig& config_;
  bool treatment_;
  std::vector<UserBuffer> users_;
};

}  // namespace

ExperimentConfig::ExperimentConfig() {
  // The production A/B test tunes HYB's beta (§5.3): search beta only.
  lingxi.space.optimize_stall = false;
  lingxi.space.optimize_switch = false;
  lingxi.space.optimize_beta = true;
}

PopulationExperiment::PopulationExperiment(
    ExperimentConfig config, AbrFactory abr_factory,
    std::function<predictor::HybridExitPredictor()> make_predictor)
    : config_(std::move(config)),
      abr_factory_(std::move(abr_factory)),
      make_predictor_(std::move(make_predictor)) {
  LINGXI_ASSERT(abr_factory_ != nullptr);
  LINGXI_ASSERT(make_predictor_ != nullptr);
  LINGXI_ASSERT(config_.users > 0 && config_.days > 0);
}

ExperimentResult PopulationExperiment::run(bool treatment, std::uint64_t seed) const {
  // One fleet run per arm. Population, network and per-session worlds derive
  // from (seed, user, day, session) streams inside the runner, so control
  // and treatment arms are paired for a given seed: the treatment series
  // differs from control only through LingXi's parameter changes — the
  // variance-reduction analogue of the paper's 30M-user population.
  sim::FleetConfig fleet;
  fleet.users = config_.users;
  fleet.days = config_.days;
  fleet.sessions_per_user_day = config_.sessions_per_user_day;
  fleet.threads = config_.threads;
  fleet.enable_lingxi = treatment;
  fleet.intervention_day = treatment ? config_.intervention_day : 0;
  fleet.drift_user_tolerance = config_.drift_user_tolerance;
  fleet.predictor_batch = config_.predictor_batch;
  fleet.scheduler = config_.scheduler;
  fleet.fixed_params = config_.lingxi.default_params;  // control arm pins defaults
  fleet.population = config_.population;
  fleet.network = config_.network;
  fleet.video = config_.video;
  fleet.lingxi = config_.lingxi;
  fleet.session = config_.session;

  sim::FleetRunner runner(fleet, abr_factory_);
  if (treatment) runner.set_predictor_factory(make_predictor_);
  ExperimentSink sink(config_, treatment);
  runner.set_telemetry_sink(&sink);
  runner.run(seed);
  return sink.finish();
}

std::vector<double> relative_daily_gap(const std::vector<MetricAccumulator>& treatment,
                                       const std::vector<MetricAccumulator>& control,
                                       double (MetricAccumulator::*metric)() const) {
  LINGXI_ASSERT(treatment.size() == control.size());
  std::vector<double> gaps;
  gaps.reserve(control.size());
  for (std::size_t d = 0; d < control.size(); ++d) {
    const double c = (control[d].*metric)();
    const double t = (treatment[d].*metric)();
    gaps.push_back(c != 0.0 ? (t - c) / c : 0.0);
  }
  return gaps;
}

std::vector<double> relative_daily_gap(const ExperimentResult& treatment,
                                       const ExperimentResult& control,
                                       double (MetricAccumulator::*metric)() const) {
  return relative_daily_gap(treatment.daily, control.daily, metric);
}

}  // namespace lingxi::analytics
