#include "analytics/experiment.h"

#include "common/assert.h"
#include "sim/fleet_runner.h"
#include "telemetry/sink.h"

namespace lingxi::analytics {
namespace {

constexpr Seconds kStallThreshold = 0.05;

/// Count stall events that were followed by an exit (0 or 1 per session —
/// the session ends at the exit).
std::size_t stall_exit_count(const sim::SessionResult& session) {
  return sim::exited_during_stall(session, kStallThreshold) ? 1u : 0u;
}

/// In-memory telemetry sink assembling an ExperimentResult from FleetRunner
/// worker callbacks. Per-user buffers are written without locks — the
/// FleetRunner contract guarantees calls for one user come from a single
/// worker in (day, session) order, even under the cross-user wave scheduler
/// where a shard's users interleave between optimization park points — and
/// merged in user order afterwards, so the assembled result is identical at
/// any thread count, shard size and scheduler mode.
class ExperimentSink final : public telemetry::TelemetrySink {
 public:
  /// Assembles records for sessions of days [first_day, days) — one leg of
  /// an arm. A full run is the single leg [0, config.days); incremental-day
  /// legs splice their results in PopulationExperiment::resume().
  ExperimentSink(const ExperimentConfig& config, bool treatment, std::size_t first_day,
                 std::size_t days)
      : config_(config),
        treatment_(treatment),
        first_day_(first_day),
        days_(days),
        users_(config.users) {
    for (auto& user : users_) user.days.resize(days_);
  }

  /// Seed the per-user stall-event counters with a checkpoint's running
  /// counts so Fig. 15 event indices stay continuous across a day boundary.
  void set_stall_event_counts(const std::vector<std::size_t>& counts) {
    LINGXI_ASSERT(counts.size() == users_.size());
    for (std::size_t u = 0; u < counts.size(); ++u) {
      users_[u].stall_event_counter = counts[u];
    }
  }

  std::vector<std::size_t> stall_event_counts() const {
    std::vector<std::size_t> counts;
    counts.reserve(users_.size());
    for (const auto& user : users_) counts.push_back(user.stall_event_counter);
    return counts;
  }

  void begin_fleet(const sim::FleetConfig&, std::uint64_t) override {}

  void record_session(const telemetry::SessionContext& ctx,
                      const sim::SessionResult& session) override {
    UserBuffer& user = users_[ctx.user_index];
    DayBuffer& day = user.days[ctx.day];
    day.metrics.add(session);

    UserDayRecord& rec = day.rec;
    rec.watch_time += session.watch_time;
    rec.stall_time += session.total_stall;
    rec.stall_events += static_cast<double>(session.stall_events);
    rec.stall_exits += static_cast<double>(stall_exit_count(session));
    for (const auto& seg : session.segments) {
      day.bw_sum += seg.throughput;
      ++day.bw_count;
    }
    day.param_beta_sum += ctx.params_after.hyb_beta;
    day.param_stall_sum += ctx.params_after.stall_penalty;
    ++day.session_count;

    if (config_.record_stall_events && treatment_ && ctx.day >= config_.intervention_day) {
      for (const auto& seg : session.segments) {
        if (seg.stall_time > kStallThreshold) {
          StallEventRecord ev;
          ev.user = ctx.user_index;
          ev.event_index = user.stall_event_counter++;
          ev.stall_time = seg.stall_time;
          ev.param_beta_after = ctx.params_after.hyb_beta;
          ev.param_stall_after = ctx.params_after.stall_penalty;
          ev.exited = session.exited && seg.index + 2 >= session.segments.size();
          ev.user_tolerance = ctx.user_tolerance;
          user.stall_events.push_back(ev);
        }
      }
    }
  }

  void record_user(const telemetry::UserTelemetry&) override {}

  /// Deterministic user-order merge into the public result shape. Daily
  /// slots before first_day stay default-empty; resume() overwrites them
  /// from the checkpoint prefix.
  ExperimentResult finish() {
    ExperimentResult result;
    result.daily.resize(days_);
    for (std::size_t u = 0; u < users_.size(); ++u) {
      UserBuffer& user = users_[u];
      for (std::size_t d = first_day_; d < days_; ++d) {
        DayBuffer& day = user.days[d];
        result.daily[d].merge(day.metrics);
        day.rec.user = u;
        day.rec.day = d;
        // Divide by the sessions the day actually ran — under a scenario the
        // curve / flash-crowd count differs from the configured base (and a
        // zero-session day keeps the default-zero means).
        const double sessions = static_cast<double>(day.session_count);
        day.rec.mean_beta = day.session_count > 0 ? day.param_beta_sum / sessions : 0.0;
        day.rec.mean_stall_penalty =
            day.session_count > 0 ? day.param_stall_sum / sessions : 0.0;
        day.rec.mean_bandwidth =
            day.bw_count > 0 ? day.bw_sum / static_cast<double>(day.bw_count) : 0.0;
        result.user_days.push_back(day.rec);
      }
      result.stall_events.insert(result.stall_events.end(), user.stall_events.begin(),
                                 user.stall_events.end());
    }
    return result;
  }

 private:
  struct DayBuffer {
    MetricAccumulator metrics;
    UserDayRecord rec;
    double param_beta_sum = 0.0;
    double param_stall_sum = 0.0;
    double bw_sum = 0.0;
    std::size_t bw_count = 0;
    std::size_t session_count = 0;
  };
  struct UserBuffer {
    std::vector<DayBuffer> days;
    std::vector<StallEventRecord> stall_events;
    std::size_t stall_event_counter = 0;
  };

  const ExperimentConfig& config_;
  bool treatment_;
  std::size_t first_day_;
  std::size_t days_;
  std::vector<UserBuffer> users_;
};

}  // namespace

ExperimentConfig::ExperimentConfig() {
  // The production A/B test tunes HYB's beta (§5.3): search beta only.
  lingxi.space.optimize_stall = false;
  lingxi.space.optimize_switch = false;
  lingxi.space.optimize_beta = true;
}

PopulationExperiment::PopulationExperiment(
    ExperimentConfig config, AbrFactory abr_factory,
    std::function<predictor::HybridExitPredictor()> make_predictor)
    : config_(std::move(config)),
      abr_factory_(std::move(abr_factory)),
      make_predictor_(std::move(make_predictor)) {
  LINGXI_ASSERT(abr_factory_ != nullptr);
  LINGXI_ASSERT(make_predictor_ != nullptr);
  LINGXI_ASSERT(config_.users > 0 && config_.days > 0);
}

sim::FleetConfig PopulationExperiment::fleet_config(bool treatment,
                                                    std::size_t days) const {
  sim::FleetConfig fleet;
  fleet.users = config_.users;
  fleet.days = days;
  fleet.sessions_per_user_day = config_.sessions_per_user_day;
  fleet.threads = config_.threads;
  fleet.enable_lingxi = treatment;
  fleet.intervention_day = treatment ? config_.intervention_day : 0;
  fleet.drift_user_tolerance = config_.drift_user_tolerance;
  fleet.predictor_batch = config_.predictor_batch;
  fleet.scheduler = config_.scheduler;
  fleet.fixed_params = config_.lingxi.default_params;  // control arm pins defaults
  fleet.population = config_.population;
  fleet.network = config_.network;
  fleet.video = config_.video;
  fleet.lingxi = config_.lingxi;
  fleet.session = config_.session;
  fleet.scenario = config_.scenario;
  return fleet;
}

ExperimentResult PopulationExperiment::run(bool treatment, std::uint64_t seed) const {
  // One fleet run per arm. Population, network and per-session worlds derive
  // from (seed, user, day, session) streams inside the runner, so control
  // and treatment arms are paired for a given seed: the treatment series
  // differs from control only through LingXi's parameter changes — the
  // variance-reduction analogue of the paper's 30M-user population.
  sim::FleetRunner runner(fleet_config(treatment, config_.days), abr_factory_);
  if (treatment) runner.set_predictor_factory(make_predictor_);
  ExperimentSink sink(config_, treatment, 0, config_.days);
  runner.set_telemetry_sink(&sink);
  sim::FleetRunStats stats;
  runner.run(seed, &stats);
  ExperimentResult result = sink.finish();
  result.batching = stats;
  return result;
}

PopulationExperiment::ArmCheckpoint PopulationExperiment::run_to_day(
    bool treatment, std::uint64_t seed, std::size_t day) const {
  LINGXI_ASSERT(day > 0 && day < config_.days);
  sim::FleetRunner runner(fleet_config(treatment, config_.days), abr_factory_);
  if (treatment) runner.set_predictor_factory(make_predictor_);
  ExperimentSink sink(config_, treatment, 0, day);
  runner.set_telemetry_sink(&sink);
  ArmCheckpoint checkpoint;
  sim::FleetRunStats stats;
  runner.run_days(seed, 0, day, nullptr, &checkpoint.fleet, &stats);
  checkpoint.prefix = sink.finish();
  checkpoint.prefix.batching = stats;
  checkpoint.stall_event_counts = sink.stall_event_counts();
  return checkpoint;
}

ExperimentResult PopulationExperiment::resume(bool treatment, std::uint64_t seed,
                                              const ArmCheckpoint& checkpoint,
                                              std::size_t total_days) const {
  const std::size_t total = total_days != 0 ? total_days : config_.days;
  const std::size_t boundary = checkpoint.fleet.next_day;
  LINGXI_ASSERT(boundary > 0 && boundary < total);
  LINGXI_ASSERT(checkpoint.fleet.users.size() == config_.users);
  LINGXI_ASSERT(checkpoint.prefix.user_days.size() == config_.users * boundary);
  LINGXI_ASSERT(checkpoint.stall_event_counts.size() == config_.users);

  // Days before `boundary` never re-simulate: the fleet resumes from the
  // checkpointed per-user state. A horizon beyond config().days is legal —
  // no pre-boundary draw depends on the calendar length.
  sim::FleetRunner runner(fleet_config(treatment, total), abr_factory_);
  if (treatment) runner.set_predictor_factory(make_predictor_);
  ExperimentSink sink(config_, treatment, boundary, total);
  sink.set_stall_event_counts(checkpoint.stall_event_counts);
  runner.set_telemetry_sink(&sink);
  sim::FleetRunStats continuation_stats;
  runner.run_days(seed, boundary, total, &checkpoint.fleet, nullptr,
                  &continuation_stats);
  const ExperimentResult continuation = sink.finish();

  // Splice prefix + continuation into the shape a single full run produces.
  // Every record and accumulation is scoped to one (user, day) bucket, so
  // the split cannot change a single bit of any value.
  ExperimentResult result;
  result.daily = continuation.daily;
  for (std::size_t d = 0; d < boundary; ++d) result.daily[d] = checkpoint.prefix.daily[d];
  // Batching counters merge across legs — a spliced experiment reports the
  // same pool totals as an uninterrupted one (test_analytics.cpp pins this).
  result.batching = checkpoint.prefix.batching;
  result.batching.merge(continuation_stats);

  const std::size_t cont_days = total - boundary;
  result.user_days.reserve(config_.users * total);
  for (std::size_t u = 0; u < config_.users; ++u) {
    for (std::size_t d = 0; d < boundary; ++d) {
      result.user_days.push_back(checkpoint.prefix.user_days[u * boundary + d]);
    }
    for (std::size_t d = 0; d < cont_days; ++d) {
      result.user_days.push_back(continuation.user_days[u * cont_days + d]);
    }
  }

  // Stall-event records are user-major in both legs; interleave per user.
  std::size_t pi = 0, ci = 0;
  const auto& pre = checkpoint.prefix.stall_events;
  const auto& post = continuation.stall_events;
  result.stall_events.reserve(pre.size() + post.size());
  for (std::size_t u = 0; u < config_.users; ++u) {
    while (pi < pre.size() && pre[pi].user == u) result.stall_events.push_back(pre[pi++]);
    while (ci < post.size() && post[ci].user == u) {
      result.stall_events.push_back(post[ci++]);
    }
  }
  return result;
}

std::vector<double> relative_daily_gap(const std::vector<MetricAccumulator>& treatment,
                                       const std::vector<MetricAccumulator>& control,
                                       double (MetricAccumulator::*metric)() const) {
  LINGXI_ASSERT(treatment.size() == control.size());
  std::vector<double> gaps;
  gaps.reserve(control.size());
  for (std::size_t d = 0; d < control.size(); ++d) {
    const double c = (control[d].*metric)();
    const double t = (treatment[d].*metric)();
    gaps.push_back(c != 0.0 ? (t - c) / c : 0.0);
  }
  return gaps;
}

std::vector<double> relative_daily_gap(const ExperimentResult& treatment,
                                       const ExperimentResult& control,
                                       double (MetricAccumulator::*metric)() const) {
  return relative_daily_gap(treatment.daily, control.daily, metric);
}

}  // namespace lingxi::analytics
