// Population experiment driver — the synthetic stand-in for the paper's
// production A/B infrastructure (§5.3-§5.5).
//
// Simulates a fixed population of users over D days. Each user keeps a
// persistent network profile, user model (with optional day-to-day tolerance
// drift), and — in the treatment arm — a persistent LingXi instance whose
// long-term state carries across days. LingXi activates on
// `intervention_day` (AA period before, AB period after), exactly mirroring
// the difference-in-differences protocol of Fig. 12.
//
// The driver is a thin shell over sim::FleetRunner: each arm is one fleet
// run (control pins the default parameters, treatment enables LingXi), and
// an in-memory telemetry sink assembles the ExperimentResult from the
// runner's worker callbacks. Results are deterministic for a given seed and
// independent of `threads` / `predictor_batch` — the FleetRunner guarantees.
//
// The driver records:
//   * per-day aggregate metrics (watch time, bitrate, stall) per arm,
//   * per-user-per-day records (assigned parameter, stall exit rate, mean
//     bandwidth) for Figs. 13 and 14,
//   * per-stall-event trajectories (stall time, parameter after update,
//     exit) for Fig. 15.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "abr/abr.h"
#include "analytics/metrics.h"
#include "core/lingxi.h"
#include "predictor/hybrid.h"
#include "scenario/scenario.h"
#include "sim/fleet_runner.h"
#include "trace/population.h"
#include "trace/video.h"
#include "user/user_population.h"

namespace lingxi::analytics {

struct ExperimentConfig {
  std::size_t users = 150;
  std::size_t days = 10;
  std::size_t sessions_per_user_day = 12;
  /// Day (0-based) on which LingXi activates in the treatment arm; use
  /// days (== one past the end) for a pure AA run.
  std::size_t intervention_day = 5;
  bool drift_user_tolerance = true;
  bool record_stall_events = false;
  /// FleetRunner worker pool driving each arm (0 = hardware concurrency).
  /// Purely a throughput knob: results are identical at any value. Note the
  /// predictor factory is invoked from worker threads when > 1.
  std::size_t threads = 1;
  /// Lockstep batch for LingXi's Monte Carlo rollouts (0 = keep
  /// `lingxi.monte_carlo.batch_size`); results identical at any value.
  std::size_t predictor_batch = 0;
  /// Shard execution schedule (sim::SchedulerMode). The default cross-user
  /// cohort schedule pools predictor flushes across each shard's users;
  /// results are bitwise identical in both modes — the FleetRunner
  /// guarantee, which the archive/regression suites pin for this driver.
  sim::SchedulerMode scheduler = sim::SchedulerMode::kCohortWaves;

  user::UserPopulation::Config population;
  trace::PopulationModel::Config network;
  trace::VideoGenerator::Config video;
  core::LingXiConfig lingxi;
  sim::SessionSimulator::Config session;
  /// Scripted world events, applied identically to BOTH arms (the paired
  /// A/B design: the same shocks, arrivals and churn hit control and
  /// treatment, so arm differences isolate LingXi's response). Empty by
  /// default — byte-for-byte the unscripted experiment.
  scenario::ScenarioScript scenario;

  ExperimentConfig();
};

struct UserDayRecord {
  std::size_t user = 0;
  std::size_t day = 0;
  double mean_stall_penalty = 0.0;  ///< LingXi-assigned (or default) params
  double mean_beta = 0.0;
  double stall_events = 0.0;
  double stall_exits = 0.0;         ///< stalls followed by an exit
  double stall_time = 0.0;
  double watch_time = 0.0;
  Kbps mean_bandwidth = 0.0;
  double stall_exit_rate() const noexcept {
    return stall_events > 0.0 ? stall_exits / stall_events : 0.0;
  }
};

struct StallEventRecord {
  std::size_t user = 0;
  std::size_t event_index = 0;  ///< running stall-event count for this user
  double stall_time = 0.0;
  double param_beta_after = 0.0;
  double param_stall_after = 0.0;
  bool exited = false;
  double user_tolerance = 0.0;  ///< ground truth for the Fig. 15 narrative
};

struct ExperimentResult {
  std::vector<MetricAccumulator> daily;   ///< indexed by day
  std::vector<UserDayRecord> user_days;
  std::vector<StallEventRecord> stall_events;
  /// Predictor-pool batching counters for the whole arm. An incremental
  /// experiment merges every leg's counters, so a run_to_day+resume split
  /// reports the same totals as one uninterrupted run.
  sim::FleetRunStats batching;
};

class PopulationExperiment {
 public:
  using AbrFactory = std::function<std::unique_ptr<abr::AbrAlgorithm>()>;

  /// `make_predictor` supplies the (shared) hybrid predictor LingXi uses in
  /// the treatment arm.
  PopulationExperiment(ExperimentConfig config, AbrFactory abr_factory,
                       std::function<predictor::HybridExitPredictor()> make_predictor);

  /// Run one arm. `treatment` enables LingXi from intervention_day onward.
  /// The same `seed` reproduces the same user population / network worlds,
  /// so control and treatment arms are paired.
  ExperimentResult run(bool treatment, std::uint64_t seed) const;

  /// Incremental-day experiments (snapshot subsystem): one arm simulated in
  /// legs, with every leg boundary at a day boundary. The resumable state of
  /// one arm at day D: the fleet-day state (per-user engagement, parameters,
  /// optimizer counters, accumulator) plus the records already assembled for
  /// days [0, D) and the per-user stall-event counters that keep Fig. 15
  /// event indices continuous across the boundary.
  struct ArmCheckpoint {
    sim::FleetDayState fleet;
    ExperimentResult prefix;
    std::vector<std::size_t> stall_event_counts;  ///< per user
  };

  /// Simulate days [0, day) of one arm (day < config().days) and checkpoint.
  ArmCheckpoint run_to_day(bool treatment, std::uint64_t seed, std::size_t day) const;

  /// Continue a checkpointed arm through day `total_days` (0 = the
  /// configured horizon; larger values EXTEND the experiment — e.g. add K
  /// days to a finished A/B fleet without re-simulating the first D). The
  /// spliced result is identical to a single run over `total_days` with the
  /// same seed — bitwise, including the float per-day/per-user records: no
  /// accumulation crosses a day boundary, so splitting cannot reorder any
  /// sum (test_analytics.cpp pins this against run()).
  ExperimentResult resume(bool treatment, std::uint64_t seed,
                          const ArmCheckpoint& checkpoint,
                          std::size_t total_days = 0) const;

  const ExperimentConfig& config() const noexcept { return config_; }

 private:
  sim::FleetConfig fleet_config(bool treatment, std::size_t days) const;

  ExperimentConfig config_;
  AbrFactory abr_factory_;
  std::function<predictor::HybridExitPredictor()> make_predictor_;
};

/// Relative per-day gaps (treatment - control) / control for a metric series.
/// The vector overload also serves day series replayed from telemetry
/// archives (telemetry::Replay).
std::vector<double> relative_daily_gap(const std::vector<MetricAccumulator>& treatment,
                                       const std::vector<MetricAccumulator>& control,
                                       double (MetricAccumulator::*metric)() const);
std::vector<double> relative_daily_gap(const ExperimentResult& treatment,
                                       const ExperimentResult& control,
                                       double (MetricAccumulator::*metric)() const);

}  // namespace lingxi::analytics
