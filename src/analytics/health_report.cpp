#include "analytics/health_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <utility>

namespace lingxi::analytics {
namespace {

// Large finite stand-in for "divided by zero" so comparison sorting and
// thresholds stay well-defined.
constexpr double kInfChange = 1e9;

void write_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

const char* kind_word(obs::MetricKind kind) {
  switch (kind) {
    case obs::MetricKind::kCounter: return "counter";
    case obs::MetricKind::kGauge: return "gauge";
    case obs::MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

double metric_point(const obs::MetricSnapshot& m) {
  switch (m.kind) {
    case obs::MetricKind::kGauge: return m.value;
    case obs::MetricKind::kCounter: return static_cast<double>(m.count);
    case obs::MetricKind::kHistogram: return static_cast<double>(m.count);
  }
  return 0.0;
}

}  // namespace

const MetricDaySeries* TimelineSummary::find(std::string_view name) const noexcept {
  for (const MetricDaySeries& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Expected<TimelineSummary> summarize_timeline(const std::string& path) {
  auto reader = obs::TimelineReader::open(path);
  if (!reader) return reader.error();
  auto records = reader->read_all();
  if (!records) return records.error();

  TimelineSummary out;
  // Accumulate per-metric trajectories keyed by name; the map keeps the
  // final `series` name-sorted.
  std::map<std::string, MetricDaySeries> by_name;
  const std::vector<obs::MetricSnapshot>* last_day_metrics[2] = {nullptr, nullptr};
  bool first_day_seen = false;
  for (const obs::TimelineRecord& rec : *records) {
    if (rec.type == obs::TimelineRecord::Type::kAlert) {
      out.alerts.push_back(rec.alert);
      continue;
    }
    ++out.day_records;
    if (!first_day_seen) {
      out.first_day = rec.day;
      first_day_seen = true;
    }
    out.last_day = rec.day;
    last_day_metrics[0] = &rec.deterministic;
    last_day_metrics[1] = &rec.wallclock;
    const bool det_section[2] = {true, false};
    const std::vector<obs::MetricSnapshot>* sections[2] = {&rec.deterministic, &rec.wallclock};
    for (int s = 0; s < 2; ++s) {
      for (const obs::MetricSnapshot& m : *sections[s]) {
        MetricDaySeries& series = by_name[m.name];
        if (series.days.empty()) {
          series.name = m.name;
          series.kind = m.kind;
          series.deterministic = det_section[s];
        }
        series.days.push_back(rec.day);
        series.values.push_back(metric_point(m));
      }
    }
  }

  std::map<std::string, HistogramDigest> digests;
  for (int s = 0; s < 2; ++s) {
    if (last_day_metrics[s] == nullptr) continue;
    for (const obs::MetricSnapshot& m : *last_day_metrics[s]) {
      if (m.kind != obs::MetricKind::kHistogram) continue;
      HistogramDigest d;
      d.name = m.name;
      d.count = m.count;
      d.sum = m.value;
      d.p50 = m.quantile(0.50);
      d.p95 = m.quantile(0.95);
      d.p99 = m.quantile(0.99);
      digests.emplace(m.name, std::move(d));
    }
  }

  out.series.reserve(by_name.size());
  for (auto& [name, series] : by_name) {
    series.first = series.values.front();
    series.last = series.values.back();
    series.min = *std::min_element(series.values.begin(), series.values.end());
    series.max = *std::max_element(series.values.begin(), series.values.end());
    double sum = 0.0;
    for (double v : series.values) sum += v;
    series.mean = sum / static_cast<double>(series.values.size());
    out.series.push_back(std::move(series));
  }
  out.histograms.reserve(digests.size());
  for (auto& [name, digest] : digests) out.histograms.push_back(std::move(digest));
  return out;
}

void TimelineSummary::write_text(std::ostream& os) const {
  os << "timeline: " << day_records << " day records";
  if (day_records > 0) os << " (day " << first_day << " .. " << last_day << ")";
  os << ", " << alerts.size() << " alerts\n";
  os << "\nmetrics (first -> last over days, [det] = deterministic section):\n";
  for (const MetricDaySeries& s : series) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %-44s %-9s %s%g -> %g (min %g, max %g, mean %g)\n",
                  s.name.c_str(), kind_word(s.kind), s.deterministic ? "[det] " : "",
                  s.first, s.last, s.min, s.max, s.mean);
    os << line;
  }
  if (!histograms.empty()) {
    os << "\nlatency digests (final day, bucket-interpolated):\n";
    for (const HistogramDigest& d : histograms) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %-44s n=%llu p50=%g p95=%g p99=%g\n", d.name.c_str(),
                    static_cast<unsigned long long>(d.count), d.p50, d.p95, d.p99);
      os << line;
    }
  }
  if (!alerts.empty()) {
    os << "\nalerts:\n";
    for (const obs::HealthAlert& a : alerts) {
      os << "  day " << a.day << "  [" << a.rule << "] " << a.message << "\n";
    }
  }
}

void TimelineSummary::write_json(std::ostream& os) const {
  os << "{\"schema\": \"lingxi.obs.health_report/v1\", \"day_records\": " << day_records
     << ", \"first_day\": " << first_day << ", \"last_day\": " << last_day
     << ", \"metrics\": [";
  bool first = true;
  for (const MetricDaySeries& s : series) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": ";
    write_json_string(os, s.name);
    os << ", \"kind\": \"" << kind_word(s.kind) << "\", \"deterministic\": "
       << (s.deterministic ? "true" : "false") << ", \"first\": ";
    write_double(os, s.first);
    os << ", \"last\": ";
    write_double(os, s.last);
    os << ", \"min\": ";
    write_double(os, s.min);
    os << ", \"max\": ";
    write_double(os, s.max);
    os << ", \"mean\": ";
    write_double(os, s.mean);
    os << "}";
  }
  os << "], \"histograms\": [";
  first = true;
  for (const HistogramDigest& d : histograms) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": ";
    write_json_string(os, d.name);
    os << ", \"count\": " << d.count << ", \"sum\": ";
    write_double(os, d.sum);
    os << ", \"p50\": ";
    write_double(os, d.p50);
    os << ", \"p95\": ";
    write_double(os, d.p95);
    os << ", \"p99\": ";
    write_double(os, d.p99);
    os << "}";
  }
  os << "], \"alerts\": [";
  first = true;
  for (const obs::HealthAlert& a : alerts) {
    if (!first) os << ", ";
    first = false;
    os << "{\"day\": " << a.day << ", \"rule\": ";
    write_json_string(os, a.rule);
    os << ", \"metric\": ";
    write_json_string(os, a.metric);
    os << ", \"observed\": ";
    write_double(os, a.observed);
    os << ", \"threshold\": ";
    write_double(os, a.threshold);
    os << ", \"message\": ";
    write_json_string(os, a.message);
    os << "}";
  }
  os << "]}\n";
}

TimelineComparison compare_timelines(const TimelineSummary& base,
                                     const TimelineSummary& candidate,
                                     double threshold) {
  TimelineComparison out;
  out.base_alerts = base.alerts.size();
  out.candidate_alerts = candidate.alerts.size();
  for (const MetricDaySeries& b : base.series) {
    const MetricDaySeries* c = candidate.find(b.name);
    if (c == nullptr) {
      out.base_only.push_back(b.name);
      continue;
    }
    MetricDelta d;
    d.name = b.name;
    d.base = b.last;
    d.candidate = c->last;
    if (b.last == c->last) {
      d.rel_change = 0.0;
    } else if (b.last == 0.0) {
      d.rel_change = c->last > 0.0 ? kInfChange : -kInfChange;
    } else {
      d.rel_change = (c->last - b.last) / std::fabs(b.last);
    }
    if (std::fabs(d.rel_change) > threshold) out.flagged.push_back(std::move(d));
  }
  for (const MetricDaySeries& c : candidate.series) {
    if (base.find(c.name) == nullptr) out.candidate_only.push_back(c.name);
  }
  std::sort(out.flagged.begin(), out.flagged.end(),
            [](const MetricDelta& a, const MetricDelta& b) {
              return std::fabs(a.rel_change) > std::fabs(b.rel_change);
            });
  return out;
}

void TimelineComparison::write_text(std::ostream& os) const {
  os << "timeline A/B: " << flagged.size() << " metric(s) moved, " << base_only.size()
     << " base-only, " << candidate_only.size() << " candidate-only (alerts: base "
     << base_alerts << ", candidate " << candidate_alerts << ")\n";
  for (const MetricDelta& d : flagged) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %-44s %g -> %g (%+.1f%%)\n", d.name.c_str(),
                  d.base, d.candidate, d.rel_change * 100.0);
    os << line;
  }
  for (const std::string& name : base_only) os << "  missing from candidate: " << name << "\n";
  for (const std::string& name : candidate_only) os << "  new in candidate: " << name << "\n";
}

}  // namespace lingxi::analytics
