#include "analytics/metrics.h"

namespace lingxi::analytics {

void MetricAccumulator::add(const sim::SessionResult& session) {
  watch_time_ += session.watch_time;
  stall_time_ += session.total_stall;
  bitrate_time_ += session.mean_bitrate * session.watch_time;
  ++sessions_;
  if (session.completed()) ++completed_;
  stall_events_ += session.stall_events;
  switches_ += session.quality_switches;
}

void MetricAccumulator::merge(const MetricAccumulator& other) {
  watch_time_ += other.watch_time_;
  stall_time_ += other.stall_time_;
  bitrate_time_ += other.bitrate_time_;
  sessions_ += other.sessions_;
  completed_ += other.completed_;
  stall_events_ += other.stall_events_;
  switches_ += other.switches_;
}

double MetricAccumulator::mean_bitrate() const noexcept {
  return watch_time_ > 0.0 ? bitrate_time_ / watch_time_ : 0.0;
}

double MetricAccumulator::completion_rate() const noexcept {
  return sessions_ > 0 ? static_cast<double>(completed_) / static_cast<double>(sessions_)
                       : 0.0;
}

double MetricAccumulator::stall_per_10k() const noexcept {
  return watch_time_ > 0.0 ? stall_time_ / watch_time_ * 10000.0 : 0.0;
}

}  // namespace lingxi::analytics
