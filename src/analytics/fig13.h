// Figure 13 computation — "LingXi Performance under Different BW" (§5.4).
//
// Buckets the experiment's per-user-day records by mean bandwidth:
//   (a) the LingXi-assigned beta (mean, SD) per bucket — beta grows with
//       bandwidth (conservative when stalls threaten, aggressive when they
//       don't);
//   (b) relative stall-time change treatment-vs-control per bucket — large
//       reductions in the low-bandwidth long tail, ~0 at high bandwidth.
//
// Shared by bench_fig13_lowbw and tests/test_fig13_regression.cpp, which
// locks the FleetRunner-backed driver to a committed golden fixture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/experiment.h"

namespace lingxi::analytics {

struct Fig13Bucket {
  std::size_t bucket = 0;
  std::string label;
  /// Treatment user-days landing in the bucket.
  std::size_t user_days = 0;
  double mean_beta = 0.0;
  double sd_beta = 0.0;
  double control_stall = 0.0;    ///< summed stall seconds, control arm
  double treatment_stall = 0.0;  ///< summed stall seconds, treatment arm

  /// Relative stall-time change (%); 0 when the control bucket saw no stall.
  double stall_diff_pct() const noexcept {
    return control_stall > 0.0
               ? (treatment_stall - control_stall) / control_stall * 100.0
               : 0.0;
  }
};

struct Fig13Result {
  std::vector<Fig13Bucket> buckets;  ///< one per bandwidth bucket, in order
};

/// Run both arms of `experiment` (paired on `seed`) and bucket the records.
Fig13Result run_fig13(const PopulationExperiment& experiment, std::uint64_t seed);

/// Bucket pre-computed arm results (for callers that need the raw arms too).
Fig13Result summarize_fig13(const ExperimentResult& control,
                            const ExperimentResult& treatment);

/// Deterministic JSON rendering — the golden-fixture format.
std::string to_json(const Fig13Result& result);

}  // namespace lingxi::analytics
